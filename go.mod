module genealog

go 1.24.0
