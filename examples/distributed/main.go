// Distributed example: deploys Q1 across three SPE instances in one process
// — connected by in-memory *serialising* links, so tuples really cross a
// byte boundary — reproducing the paper's Fig. 7 topology:
//
//	SPE 1: Source -> Filter -> SU ==> SPE 2 (main) and SPE 3 (unfolded)
//	SPE 2: Aggregate -> Filter -> SU -> Sink, derived stream ==> SPE 3
//	SPE 3: MU (multi-stream unfolder) -> provenance collector
//
// Every non-SOURCE tuple arriving over a link is re-typed REMOTE; the MU
// joins the derived stream's REMOTE references with the upstream unfolded
// stream to recover the true source tuples (paper §6).
//
//	go run ./examples/distributed
//
// For a real three-process TCP deployment of the same topology, see
// cmd/spe-node.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/harness"
	"genealog/internal/linearroad"
	"genealog/internal/provenance"
	"genealog/internal/query"
	"genealog/internal/transport"
)

func main() {
	o := harness.Options{
		Query:      harness.Q1,
		Mode:       harness.ModeGL,
		Deployment: harness.Inter,
		LR: linearroad.Config{
			Cars: 20, Steps: 120, StopEvery: 10, StopDuration: 6, Seed: 42,
		},
	}

	// One in-memory serialising link per directed stream of Fig. 7.
	links := harness.InterLinks{
		Main:    []*transport.Link{transport.NewLink(transport.WithCounting())},
		U1:      []*transport.Link{transport.NewLink(transport.WithCounting())},
		Derived: transport.NewLink(transport.WithCounting()),
	}

	var mu sync.Mutex
	sinkTuples, provResults := 0, 0
	hooks := harness.InterHooks{
		OnSinkTuple: func(t core.Tuple) {
			mu.Lock()
			defer mu.Unlock()
			sinkTuples++
			s := t.(*linearroad.StoppedCar)
			if sinkTuples <= 5 {
				fmt.Printf("SPE2 sink: car %d stopped at pos %d (window@%ds)\n",
					s.CarID, s.LastPos, s.Timestamp())
			}
		},
		OnProvenance: func(r provenance.Result) {
			mu.Lock()
			defer mu.Unlock()
			provResults++
			if provResults <= 5 {
				provenance.SortSourcesByTs(&r)
				fmt.Printf("SPE3 provenance: sink@%ds <-", r.Sink.Timestamp())
				for _, s := range r.Sources {
					p := s.(*linearroad.PositionReport)
					fmt.Printf(" [t=%d car=%d]", p.Timestamp(), p.CarID)
				}
				fmt.Println()
			}
		},
		Store: baseline.NewStore(), // unused under GL; required only for BL
	}

	spe1, err := harness.BuildSPE1(o, links, hooks)
	must(err)
	spe2, err := harness.BuildSPE2(o, links, hooks)
	must(err)
	spe3, err := harness.BuildSPE3(o, links, hooks)
	must(err)

	var wg sync.WaitGroup
	for _, q := range []*query.Query{spe1, spe2, spe3} {
		wg.Add(1)
		go func(q *query.Query) {
			defer wg.Done()
			if err := q.Run(context.Background()); err != nil {
				log.Fatal(err)
			}
		}(q)
	}
	wg.Wait()

	fmt.Printf("\n%d sink tuples, %d provenance results (first 5 shown)\n", sinkTuples, provResults)
	fmt.Printf("link traffic: main %d B, unfolded %d B, derived %d B\n",
		links.Main[0].Count.Bytes(), links.U1[0].Count.Bytes(), links.Derived.Count.Bytes())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
