// Distributed example: deploys Q1 across three SPE instances in one process
// — connected by in-memory *serialising* links, so tuples really cross a
// byte boundary — reproducing the paper's Fig. 7 topology:
//
//	SPE 1: Source -> Filter -> SU ==> SPE 2 (main) and SPE 3 (unfolded)
//	SPE 2: Aggregate -> Filter -> SU -> Sink, derived stream ==> SPE 3
//	SPE 3: MU (multi-stream unfolder) -> provenance collector
//
// Every non-SOURCE tuple arriving over a link is re-typed REMOTE; the MU
// joins the derived stream's REMOTE references with the upstream unfolded
// stream to recover the true source tuples (paper §6).
//
//	go run ./examples/distributed
//
// With -store, SPE 3 additionally streams every assembled provenance result
// to a shared store node over TCP (start one with `spe-node -store-listen`),
// and after the run the example queries the *live* node — Stats, Backward,
// Forward — over the same kind of link, the full distributed serving path:
//
//	spe-node -store-listen 127.0.0.1:7432 -store-path /tmp/dist.glprov &
//	go run ./examples/distributed -store 127.0.0.1:7432
//	genealog-prov -connect 127.0.0.1:7432 -stats -list 3
//
// With -telemetry, all three instances register live per-operator metrics in
// one registry served over HTTP for the run's duration — Prometheus text at
// /metrics, a JSON snapshot at /telemetry.json, pprof at /debug/pprof.
// Watch it with cmd/genealog-top:
//
//	go run ./examples/distributed -telemetry 127.0.0.1:7070
//	genealog-top -addr 127.0.0.1:7070    # another shell
//
// For a real three-process TCP deployment of the same topology, see
// cmd/spe-node.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/harness"
	"genealog/internal/linearroad"
	"genealog/internal/provenance"
	"genealog/internal/provstore"
	"genealog/internal/query"
	"genealog/internal/telemetry"
	"genealog/internal/transport"
)

func main() {
	storeAddr := flag.String("store", "", "stream SPE 3's provenance to the store node at this address (spe-node -store-listen) and query it live after the run")
	telemetryAddr := flag.String("telemetry", "", "serve /metrics, /telemetry.json and /debug/pprof on this address during the run (watch with genealog-top)")
	rate := flag.Float64("rate", 0, "pace the source in tuples/second (0 = full speed; a full-speed run finishes in milliseconds, so pace it to watch telemetry live)")
	flag.Parse()
	o := harness.Options{
		Query:      harness.Q1,
		Mode:       harness.ModeGL,
		Deployment: harness.Inter,
		LR: linearroad.Config{
			Cars: 20, Steps: 120, StopEvery: 10, StopDuration: 6, Seed: 42,
		},
		SourceRate: *rate,
	}

	// One in-memory serialising link per directed stream of Fig. 7.
	links := harness.InterLinks{
		Main: []*transport.Link{transport.NewLink(
			transport.WithCounting(), transport.WithName("main-0"))},
		U1: []*transport.Link{transport.NewLink(
			transport.WithCounting(), transport.WithName("u1-0"))},
		Derived: transport.NewLink(
			transport.WithCounting(), transport.WithName("derived")),
	}

	if *telemetryAddr != "" {
		o.Telemetry = telemetry.NewRegistry()
		for _, l := range []*transport.Link{links.Main[0], links.U1[0], links.Derived} {
			count := l.Count
			o.Telemetry.RegisterGauge("genealog_link_bytes",
				[]telemetry.Label{{Name: "link", Value: l.Name}},
				func() float64 { return float64(count.Bytes()) })
		}
		tsrv, err := o.Telemetry.Listen(*telemetryAddr)
		must(err)
		defer tsrv.Close()
		fmt.Printf("telemetry on http://%s (try: genealog-top -addr %s)\n", tsrv.Addr(), tsrv.Addr())
	}

	var mu sync.Mutex
	sinkTuples, provResults := 0, 0
	hooks := harness.InterHooks{
		OnSinkTuple: func(t core.Tuple) {
			mu.Lock()
			defer mu.Unlock()
			sinkTuples++
			s := t.(*linearroad.StoppedCar)
			if sinkTuples <= 5 {
				fmt.Printf("SPE2 sink: car %d stopped at pos %d (window@%ds)\n",
					s.CarID, s.LastPos, s.Timestamp())
			}
		},
		OnProvenance: func(r provenance.Result) {
			mu.Lock()
			defer mu.Unlock()
			provResults++
			if provResults <= 5 {
				provenance.SortSourcesByTs(&r)
				fmt.Printf("SPE3 provenance: sink@%ds <-", r.Sink.Timestamp())
				for _, s := range r.Sources {
					p := s.(*linearroad.PositionReport)
					fmt.Printf(" [t=%d car=%d]", p.Timestamp(), p.CarID)
				}
				fmt.Println()
			}
		},
		Store: baseline.NewStore(), // unused under GL; required only for BL
	}

	// With -store, the provenance node streams its ingestion to the shared
	// store node instead of dropping it after the print.
	var remoteStore *provstore.Store
	if *storeAddr != "" {
		horizon, err := harness.StoreHorizon(o.Query)
		must(err)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		remoteStore, err = provstore.Connect(ctx, *storeAddr, provstore.Options{Horizon: horizon})
		cancel()
		must(err)
		hooks.ProvStore = remoteStore
	}

	spe1, err := harness.BuildSPE1(o, links, hooks)
	must(err)
	spe2, err := harness.BuildSPE2(o, links, hooks)
	must(err)
	spe3, err := harness.BuildSPE3(o, links, hooks)
	must(err)

	var wg sync.WaitGroup
	for _, q := range []*query.Query{spe1, spe2, spe3} {
		wg.Add(1)
		go func(q *query.Query) {
			defer wg.Done()
			if err := q.Run(context.Background()); err != nil {
				log.Fatal(err)
			}
		}(q)
	}
	wg.Wait()

	fmt.Printf("\n%d sink tuples, %d provenance results (first 5 shown)\n", sinkTuples, provResults)
	fmt.Printf("link traffic: main %d B, unfolded %d B, derived %d B\n",
		links.Main[0].Count.Bytes(), links.U1[0].Count.Bytes(), links.Derived.Count.Bytes())

	if remoteStore != nil {
		must(remoteStore.Close()) // flush the final batch; a lost ack is an error
		queryStoreNode(*storeAddr)
	}
}

// queryStoreNode asks the live store node what it now holds: the remote
// counterpart of the quickstart's cold-file replay.
func queryStoreNode(addr string) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := provstore.DialQuery(ctx, addr)
	must(err)
	defer c.Close()

	ss, err := c.Stats()
	must(err)
	fmt.Printf("\nstore node %s now holds %d sink entries over %d deduplicated sources (%.2fx, %d B)\n",
		addr, ss.Sinks, ss.Sources, ss.DedupRatio(), ss.Bytes)

	sinks, err := c.List(1)
	must(err)
	if len(sinks) == 0 {
		log.Fatal("store node holds no sink entries")
	}
	sink, sources, err := c.Backward(sinks[0].ID)
	must(err)
	fmt.Printf("backward(%d): %s <-", sink.ID, sink.Payload)
	for _, src := range sources {
		fmt.Printf(" [%s]", src.Payload)
	}
	fmt.Println()
	if len(sources) > 0 {
		src, fed, err := c.Forward(sources[0].ID)
		must(err)
		fmt.Printf("forward(%d): %s -> %d sink(s)\n", src.ID, src.Payload, len(fed))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
