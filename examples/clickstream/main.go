// Clickstream example: runs Q5 (hot-session detection) over the bursty
// click generator with adaptive batch sizing. The source alternates between
// a fast burst phase and a near-idle trickle — the regime fixed batch sizes
// handle badly — while the AIMD controller resizes every stream's batch
// size live from queue occupancy and batch fill. GeneaLog provenance links
// every hot-session alert back to the exact engaged clicks that produced
// it, byte-identical to what any fixed batch size would deliver.
//
//	go run ./examples/clickstream [-users 40] [-windows 30] [-adaptive=false]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"genealog/internal/clickstream"
	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/query"
)

func main() {
	users := flag.Int("users", 40, "number of simulated users")
	windows := flag.Int("windows", 30, "number of session windows to simulate")
	adaptive := flag.Bool("adaptive", true, "let the AIMD controller size stream batches (false = fixed batch 1)")
	flag.Parse()

	cfg := clickstream.Config{
		Users: *users, Windows: *windows,
		HotEvery: 5, Pages: 100, Seed: 23,
	}
	gen := clickstream.NewGenerator(cfg)

	mode := "fixed batch 1"
	opts := []query.Option{query.WithInstrumenter(&core.Genealog{})}
	if *adaptive {
		mode = "adaptive batch [1, 64]"
		opts = append(opts, query.WithAdaptiveBatching(1, 64))
	}
	fmt.Printf("== Q5: hot sessions (%d users, %d windows, bursty source, %s)\n",
		*users, *windows, mode)

	b := query.New("q5", opts...)
	src := b.AddSource("clicks", gen.SourceFunc())
	// The bursty pacer: 20ms at full tilt, then a 40ms trickle — the shape
	// that forces the controller to grow batches under the burst and shrink
	// them back when the queue drains.
	src.Burst = &ops.BurstPacing{
		BurstRate: 100_000, IdleRate: 1_000,
		BurstFor: 20 * time.Millisecond, IdleFor: 40 * time.Millisecond,
	}
	last := clickstream.AddQ5(b, src)
	so, u := provenance.AddSU(b, "su", last, provenance.SUConfig{})
	alerts := 0
	b.Connect(so, b.AddSink("alerts", func(t core.Tuple) error {
		alerts++
		if alerts <= 3 {
			a := t.(*clickstream.SessionCount)
			fmt.Printf("ALERT: user %d made %d engaged clicks in the session window starting at %ds\n",
				a.UserID, a.Clicks, a.Timestamp())
		}
		return nil
	}))
	provResults := 0
	provenance.AddCollector(b, "provenance", u, func(r provenance.Result) {
		provResults++
		if provResults > 3 {
			return
		}
		provenance.SortSourcesByTs(&r)
		pages := map[int32]int{}
		for _, s := range r.Sources {
			pages[s.(*clickstream.ClickEvent).PageID]++
		}
		fmt.Printf("  provenance: %d engaged clicks across %d page(s)\n", len(r.Sources), len(pages))
	})
	q, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	begin := time.Now()
	if err := q.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total: %d alerts over %d clicks in %v (first 3 shown)\n",
		alerts, gen.Tuples(), time.Since(begin).Round(time.Millisecond))
	if want := gen.Alerts(); alerts != want {
		log.Fatalf("expected %d alerts, got %d", want, alerts)
	}
}
