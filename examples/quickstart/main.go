// Quickstart: build a tiny continuous query with GeneaLog fine-grained
// provenance enabled, run it, and print — for every alert — the exact
// source tuples that caused it.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -store /tmp/quickstart.glprov
//
// The query watches a stream of temperature readings and raises an alert
// when three consecutive readings from the same sensor within a window
// average above a threshold; GeneaLog links each alert back to the readings
// involved. With -store the provenance survives the run: it is persisted
// into a durable store file, and after the query drains the example reopens
// the file and replays a backward and a forward query against it (the same
// file answers cmd/genealog-prov queries).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"

	"genealog/internal/core"
	"genealog/internal/csvio"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/provstore"
	"genealog/internal/query"
)

// Reading is an application tuple: embed core.Base and it can carry
// GeneaLog's fixed-size provenance meta-attributes.
type Reading struct {
	core.Base
	Sensor int
	TempC  float64
}

// CloneTuple lets the Multiplex operator copy readings when provenance is
// enabled.
func (r *Reading) CloneTuple() core.Tuple {
	cp := *r
	cp.ResetProvenance()
	return &cp
}

// Alert is the sink tuple: a sensor whose window average exceeded the
// threshold.
type Alert struct {
	core.Base
	Sensor int
	AvgC   float64
}

// CloneTuple lets the SU's Multiplex duplicate alerts toward the sink and
// the provenance unfolder.
func (a *Alert) CloneTuple() core.Tuple {
	cp := *a
	cp.ResetProvenance()
	return &cp
}

// registerFormats teaches csvio how to persist the example's tuple types:
// the provenance store encodes payloads through registered formats, so a
// store file is readable (and re-parsable) without the Go types.
func registerFormats() {
	csvio.RegisterFormat("quickstart.reading", &Reading{},
		func(fields []string) (core.Tuple, error) {
			ts, err := csvio.Int64Field(fields, 0)
			if err != nil {
				return nil, err
			}
			sensor, err := csvio.Int32Field(fields, 1)
			if err != nil {
				return nil, err
			}
			temp, err := csvio.Float64Field(fields, 2)
			if err != nil {
				return nil, err
			}
			return &Reading{Base: core.NewBase(ts), Sensor: int(sensor), TempC: temp}, nil
		},
		func(t core.Tuple) ([]string, error) {
			r := t.(*Reading)
			return []string{
				strconv.FormatInt(r.Timestamp(), 10),
				strconv.Itoa(r.Sensor),
				strconv.FormatFloat(r.TempC, 'f', 1, 64),
			}, nil
		})
	csvio.RegisterFormat("quickstart.alert", &Alert{},
		func(fields []string) (core.Tuple, error) {
			ts, err := csvio.Int64Field(fields, 0)
			if err != nil {
				return nil, err
			}
			sensor, err := csvio.Int32Field(fields, 1)
			if err != nil {
				return nil, err
			}
			avg, err := csvio.Float64Field(fields, 2)
			if err != nil {
				return nil, err
			}
			return &Alert{Base: core.NewBase(ts), Sensor: int(sensor), AvgC: avg}, nil
		},
		func(t core.Tuple) ([]string, error) {
			a := t.(*Alert)
			return []string{
				strconv.FormatInt(a.Timestamp(), 10),
				strconv.Itoa(a.Sensor),
				strconv.FormatFloat(a.AvgC, 'f', 1, 64),
			}, nil
		})
}

func main() {
	storePath := flag.String("store", "", "persist provenance into this store file and replay a query after the run")
	flag.Parse()

	// 1. A builder with the GeneaLog instrumenter: the same query built with
	//    core.Noop{} runs with zero provenance overhead. With -store, the
	//    provenance collector additionally persists every (alert, readings)
	//    pair it assembles into a durable store.
	opts := []query.Option{query.WithInstrumenter(&core.Genealog{})}
	var store *provstore.Store
	if *storePath != "" {
		registerFormats()
		var err error
		// Horizon 6 (two 3-second windows): once the watermark is 6 s past a
		// reading, no open window can reference it any more and its dedup
		// handle is retired.
		store, err = provstore.Create(*storePath, provstore.Options{Horizon: 6})
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, query.WithProvenanceStore(store))
	}
	b := query.New("quickstart", opts...)

	// 2. Source: six sensors, reading every second; sensor 3 overheats
	//    between t=10 and t=20.
	src := b.AddSource("readings", func(ctx context.Context, emit func(core.Tuple) error) error {
		for t := int64(0); t < 60; t++ {
			for s := 0; s < 6; s++ {
				temp := 20 + float64((int(t)+s)%5)
				if s == 3 && t >= 10 && t < 20 {
					temp = 90
				}
				r := &Reading{Base: core.NewBase(t), Sensor: s, TempC: temp}
				if err := emit(r); err != nil {
					return err
				}
			}
		}
		return nil
	})

	// 3. The analysis: keep hot readings, average them per sensor over a
	//    3-second tumbling window, alert when the window is full and hot.
	//    Parallel(4) shard-parallelises the keyed aggregate across four
	//    instances (hash-partitioned by sensor); alerts, their order and
	//    their provenance are identical to serial execution — only the core
	//    utilisation changes.
	hot := b.AddFilter("hot", func(t core.Tuple) bool { return t.(*Reading).TempC > 50 })
	avg := b.AddAggregate("avg", ops.AggregateSpec{
		WS: 3, WA: 3,
		Key: func(t core.Tuple) string { return strconv.Itoa(t.(*Reading).Sensor) },
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			var sum float64
			for _, t := range w {
				sum += t.(*Reading).TempC
			}
			sensor := w[0].(*Reading).Sensor
			if len(w) < 3 {
				return nil // partial window: no alert
			}
			return &Alert{Base: core.NewBase(start), Sensor: sensor, AvgC: sum / float64(len(w))}
		},
	}).Parallel(4)
	b.Connect(src, hot)
	b.Connect(hot, avg)

	// 4. Provenance: a single-stream unfolder before the sink (paper §5)
	//    turns each alert into (alert, contributing source tuples) pairs.
	so, u := provenance.AddSU(b, "su", avg, provenance.SUConfig{})
	sink := b.AddSink("alerts", func(t core.Tuple) error {
		a := t.(*Alert)
		fmt.Printf("ALERT sensor %d window@%ds avg %.1f°C\n", a.Sensor, a.Timestamp(), a.AvgC)
		return nil
	})
	b.Connect(so, sink)
	provenance.AddCollector(b, "provenance", u, func(r provenance.Result) {
		provenance.SortSourcesByTs(&r)
		fmt.Printf("  caused by %d readings:", len(r.Sources))
		for _, s := range r.Sources {
			fmt.Printf(" [t=%ds %.0f°C]", s.Timestamp(), s.(*Reading).TempC)
		}
		fmt.Println()
	})

	// 5. Build and run to completion. Build plans the physical graph first:
	//    the hot Filter is hoisted into the aggregate's four shard lanes
	//    (Explain shows the rewrite), with output and provenance identical
	//    to the unfused serial plan.
	q, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(q.Explain())
	if err := q.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// 6. Serving: with -store the provenance outlived the run. Close the
	//    store (final-watermark retirement + flush), reopen the file cold —
	//    as cmd/genealog-prov would — and ask it questions.
	if store == nil {
		return
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	replayQueries(*storePath)
}

// replayQueries reopens the store file and replays a backward and a forward
// query against it: everything printed here comes from disk, not from the
// run's memory.
func replayQueries(path string) {
	st, err := provstore.OpenRead(path)
	if err != nil {
		log.Fatal(err)
	}
	stats := st.Stats()
	fmt.Printf("\nstore %s: %d alerts, %d readings (referenced %d times, dedup %.2fx), %d bytes\n",
		path, stats.Sinks, stats.Sources, stats.SourceRefs, stats.DedupRatio(), stats.Bytes)

	// Backward: which readings caused the first alert?
	sinkIDs := st.HeadSinkIDs(1)
	if len(sinkIDs) == 0 {
		return
	}
	sink, sources, err := st.Backward(sinkIDs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed Backward(%d): alert [%s] caused by %d readings:", sink.ID, sink.Payload, len(sources))
	for _, s := range sources {
		fmt.Printf(" [%s]", s.Payload)
	}
	fmt.Println()
	if len(sources) == 0 {
		return
	}

	// Forward: which alerts did the first of those readings contribute to?
	src, sinks, err := st.Forward(sources[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed Forward(%d): reading [%s] contributed to %d alert(s):", src.ID, src.Payload, len(sinks))
	for _, s := range sinks {
		fmt.Printf(" [%s]", s.Payload)
	}
	fmt.Println()
}
