// Linear Road example: runs the paper's two vehicular queries — Q1
// (broken-down cars, Fig. 1) and Q2 (accidents, Fig. 9) — over the
// deterministic traffic generator, with GeneaLog provenance linking every
// alert back to the position reports that caused it.
//
//	go run ./examples/linearroad [-cars 50] [-steps 200]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"genealog/internal/core"
	"genealog/internal/linearroad"
	"genealog/internal/provenance"
	"genealog/internal/query"
)

func main() {
	cars := flag.Int("cars", 50, "number of cars on the expressway")
	steps := flag.Int("steps", 200, "number of 30-second reporting rounds")
	flag.Parse()

	cfg := linearroad.Config{
		Cars: *cars, Steps: *steps,
		StopEvery: 12, StopDuration: 6, AccidentEvery: 30, Seed: 42,
	}

	fmt.Printf("== Q1: broken-down cars (%d cars, %d rounds)\n", *cars, *steps)
	runLR(cfg, "q1", func(b *query.Builder, src *query.Node) *query.Node {
		return linearroad.AddQ1(b, src)
	}, func(t core.Tuple) string {
		s := t.(*linearroad.StoppedCar)
		return fmt.Sprintf("car %d stopped at pos %d (window@%ds)", s.CarID, s.LastPos, s.Timestamp())
	})

	fmt.Printf("\n== Q2: accidents (two cars stopped at the same position)\n")
	runLR(cfg, "q2", func(b *query.Builder, src *query.Node) *query.Node {
		return linearroad.AddQ2(b, src)
	}, func(t core.Tuple) string {
		a := t.(*linearroad.AccidentAlert)
		return fmt.Sprintf("%d cars stopped at pos %d (window@%ds)", a.Count, a.Pos, a.Timestamp())
	})
}

func runLR(cfg linearroad.Config, name string,
	add func(*query.Builder, *query.Node) *query.Node,
	describe func(core.Tuple) string) {
	b := query.New(name, query.WithInstrumenter(&core.Genealog{}))
	src := b.AddSource("reports", linearroad.NewGenerator(cfg).SourceFunc())
	last := add(b, src)
	so, u := provenance.AddSU(b, "su", last, provenance.SUConfig{})
	alerts := 0
	b.Connect(so, b.AddSink("alerts", func(t core.Tuple) error {
		alerts++
		if alerts <= 5 {
			fmt.Println("ALERT:", describe(t))
		}
		return nil
	}))
	provenance.AddCollector(b, "provenance", u, func(r provenance.Result) {
		if alerts > 5 {
			return
		}
		provenance.SortSourcesByTs(&r)
		fmt.Printf("  provenance (%d reports):", len(r.Sources))
		for _, s := range r.Sources {
			p := s.(*linearroad.PositionReport)
			fmt.Printf(" [t=%d car=%d pos=%d]", p.Timestamp(), p.CarID, p.Pos)
		}
		fmt.Println()
	})
	q, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total: %d alerts (first 5 shown)\n", alerts)
}
