// Smart Grid example: runs the paper's two energy queries — Q3 (long-term
// blackout detection, Fig. 10) and Q4 (midnight consumption anomalies,
// Fig. 11) — over the deterministic smart-meter generator, with GeneaLog
// provenance linking every alert back to the hourly readings that caused
// it.
//
//	go run ./examples/smartgrid [-meters 40] [-days 30]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"genealog/internal/core"
	"genealog/internal/provenance"
	"genealog/internal/query"
	"genealog/internal/smartgrid"
)

func main() {
	meters := flag.Int("meters", 40, "number of smart meters")
	days := flag.Int("days", 30, "number of simulated days")
	flag.Parse()

	cfg := smartgrid.Config{
		Meters: *meters, Days: *days,
		BlackoutEvery: 5, BlackoutMeters: smartgrid.BlackoutMeterThreshold + 1,
		AnomalyEvery: 4, AnomalyValue: 300, Seed: 7,
	}

	fmt.Printf("== Q3: long-term blackouts (%d meters, %d days)\n", *meters, *days)
	runSG(cfg, "q3", func(b *query.Builder, src *query.Node) *query.Node {
		return smartgrid.AddQ3(b, src)
	}, func(t core.Tuple) string {
		a := t.(*smartgrid.BlackoutAlert)
		return fmt.Sprintf("%d meters dark for the whole day starting hour %d", a.Count, a.Timestamp())
	})

	fmt.Printf("\n== Q4: midnight consumption anomalies\n")
	runSG(cfg, "q4", func(b *query.Builder, src *query.Node) *query.Node {
		return smartgrid.AddQ4(b, src)
	}, func(t core.Tuple) string {
		a := t.(*smartgrid.AnomalyAlert)
		return fmt.Sprintf("meter %d deviates by %.0f at midnight hour %d", a.MeterID, a.ConsDiff, a.Timestamp())
	})
}

func runSG(cfg smartgrid.Config, name string,
	add func(*query.Builder, *query.Node) *query.Node,
	describe func(core.Tuple) string) {
	b := query.New(name, query.WithInstrumenter(&core.Genealog{}))
	src := b.AddSource("readings", smartgrid.NewGenerator(cfg).SourceFunc())
	last := add(b, src)
	so, u := provenance.AddSU(b, "su", last, provenance.SUConfig{})
	alerts := 0
	b.Connect(so, b.AddSink("alerts", func(t core.Tuple) error {
		alerts++
		if alerts <= 3 {
			fmt.Println("ALERT:", describe(t))
		}
		return nil
	}))
	provenance.AddCollector(b, "provenance", u, func(r provenance.Result) {
		if alerts > 3 {
			return
		}
		provenance.SortSourcesByTs(&r)
		byMeter := map[int32]int{}
		for _, s := range r.Sources {
			byMeter[s.(*smartgrid.MeterReading).MeterID]++
		}
		fmt.Printf("  provenance: %d hourly readings across %d meter(s)\n", len(r.Sources), len(byMeter))
	})
	q, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total: %d alerts (first 3 shown)\n", alerts)
}
