package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Mux returns the exposition mux: Prometheus text at /metrics, the JSON
// snapshot at /telemetry.json, the runtime profiler under /debug/pprof/,
// and expvar at /debug/vars. Handlers snapshot at request time; the mux
// can be mounted before any query registers.
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, r.Snapshot()); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/telemetry.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "genealog telemetry\n\n/metrics\n/telemetry.json\n/debug/pprof/\n/debug/vars\n")
	})
	return mux
}

// Server is one listening exposition endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Listen starts serving the registry's Mux on addr (e.g. ":9414" or
// "127.0.0.1:0") in a background goroutine.
func (r *Registry) Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Mux()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
