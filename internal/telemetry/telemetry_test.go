package telemetry

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"genealog/internal/core"
)

type testTuple struct{ core.Base }

func (t *testTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

func tt(ts int64) core.Tuple { return &testTuple{Base: core.NewBase(ts)} }

// TestStreamStatsCounting exercises both ends of the per-stream hook struct
// and the operator aggregation the snapshot derives from them.
func TestStreamStatsCounting(t *testing.T) {
	r := NewRegistry()
	qt := r.Register("q")
	qt.Operator("src", "source", true)
	qt.Operator("agg", "aggregate", false)
	st := qt.Stream("src->agg", "src", "agg", func() int { return 4 }, func() (int, int) { return 2, 8 })

	st.NoteFlush([]core.Tuple{tt(10), tt(20), core.NewHeartbeat(30)}, 4)
	st.NoteFlush([]core.Tuple{tt(40)}, 4)
	st.NoteRecv([]core.Tuple{tt(10), tt(20), core.NewHeartbeat(30)})

	snap := r.Snapshot()
	if len(snap.Queries) != 1 {
		t.Fatalf("got %d queries, want 1", len(snap.Queries))
	}
	q := snap.Queries[0]
	byName := map[string]OperatorSnapshot{}
	for _, o := range q.Operators {
		byName[o.Name] = o
	}

	src := byName["src"]
	if src.TuplesOut != 3 || src.BatchesOut != 2 || src.HeartbeatsOut != 1 {
		t.Errorf("src out: tuples=%d batches=%d heartbeats=%d, want 3/2/1",
			src.TuplesOut, src.BatchesOut, src.HeartbeatsOut)
	}
	if !src.WatermarkOK || src.Watermark != 40 {
		t.Errorf("src watermark = %d (ok=%v), want 40", src.Watermark, src.WatermarkOK)
	}
	// 4 slots published over 2 batches of size 4.
	if src.FillRatio != 0.5 {
		t.Errorf("src fill ratio = %v, want 0.5", src.FillRatio)
	}

	agg := byName["agg"]
	if agg.TuplesIn != 3 || agg.BatchesIn != 1 {
		t.Errorf("agg in: tuples=%d batches=%d, want 3/1", agg.TuplesIn, agg.BatchesIn)
	}
	if agg.QueueLen != 2 || agg.QueueCap != 8 {
		t.Errorf("agg queue = %d/%d, want 2/8", agg.QueueLen, agg.QueueCap)
	}
	// agg has published nothing; its watermark falls back to what reached
	// it, and it lags the source by 0 only if caught up — here both report
	// the stream's high watermark.
	if !agg.WatermarkOK || agg.Watermark != 40 {
		t.Errorf("agg watermark = %d (ok=%v), want fallback 40", agg.Watermark, agg.WatermarkOK)
	}
	if !q.SourceWatermarkOK || q.SourceWatermark != 40 {
		t.Errorf("source watermark = %d (ok=%v), want 40", q.SourceWatermark, q.SourceWatermarkOK)
	}
}

// TestFillRatioAfterResize pins the fill-ratio semantics under adaptive
// batching: the denominator is the capacity in effect at each flush,
// recorded on the hot path, so resizing a stream mid-run cannot
// misattribute capacity to batches flushed under a different size.
func TestFillRatioAfterResize(t *testing.T) {
	r := NewRegistry()
	qt := r.Register("q")
	qt.Operator("src", "source", true)
	live := 64
	st := qt.Stream("src->sink", "src", "sink", func() int { return live }, nil)

	// Two full batches at size 64, then a resize to 4 and two full batches
	// at the new size: 136 slots over 136 capacity = fill ratio 1.0. The
	// old BatchesOut x BatchSize formula would report 136/(4 x live) and
	// drift with whatever size the scrape happens to observe.
	full := func(n int) []core.Tuple {
		b := make([]core.Tuple, n)
		for i := range b {
			b[i] = tt(int64(i + 1))
		}
		return b
	}
	st.NoteFlush(full(64), 64)
	st.NoteFlush(full(64), 64)
	live = 4
	st.NoteFlush(full(4), 4)
	st.NoteFlush(full(4), 4)

	q := r.Snapshot().Queries[0]
	var src OperatorSnapshot
	for _, o := range q.Operators {
		if o.Name == "src" {
			src = o
		}
	}
	if src.FillRatio != 1.0 {
		t.Errorf("fill ratio after resize = %v, want 1.0", src.FillRatio)
	}
	if src.BatchSize != 4 {
		t.Errorf("operator batch size = %d, want live value 4", src.BatchSize)
	}

	// A half-full batch at the small size moves the ratio by the small
	// capacity, not the large one: 138/140.
	st.NoteFlush(full(2), 4)
	q = r.Snapshot().Queries[0]
	for _, o := range q.Operators {
		if o.Name == "src" {
			src = o
		}
	}
	if want := float64(138) / 140; src.FillRatio != want {
		t.Errorf("fill ratio after partial flush = %v, want %v", src.FillRatio, want)
	}

	// An oversized batch (pending accumulated before a downward resize)
	// counts its own length as capacity rather than reporting fill > 1.
	over := new(StreamStats)
	over.NoteFlush(full(10), 4)
	if s, c := over.SlotsOut(), over.CapSlotsOut(); s != 10 || c != 10 {
		t.Errorf("oversized flush slots/cap = %d/%d, want 10/10", s, c)
	}
}

// TestWatermarkLag pins the lag computation: operators behind the most
// advanced source watermark report the positive distance, never negative.
func TestWatermarkLag(t *testing.T) {
	r := NewRegistry()
	qt := r.Register("q")
	qt.Operator("src", "source", true)
	fast := qt.Stream("src->a", "src", "a", nil, nil)
	slow := qt.Stream("a->b", "a", "b", nil, nil)
	fast.NoteFlush([]core.Tuple{tt(100)}, 1)
	slow.NoteFlush([]core.Tuple{tt(70)}, 1)

	q := r.Snapshot().Queries[0]
	lags := map[string]int64{}
	for _, o := range q.Operators {
		lags[o.Name] = o.WatermarkLag
	}
	if lags["src"] != 0 {
		t.Errorf("src lag = %d, want 0", lags["src"])
	}
	if lags["a"] != 30 {
		t.Errorf("a lag = %d, want 30", lags["a"])
	}
}

// TestSegmentAndSyntheticOperators checks segment counters surface on the
// fused node and that shard-internal stream ends the planner never
// registered are synthesized into the operator list.
func TestSegmentAndSyntheticOperators(t *testing.T) {
	r := NewRegistry()
	qt := r.Register("q")
	qt.Operator("vec[map+filter]", "vec-chain", false)
	seg := qt.Segment("vec[map+filter]")
	seg.NoteBatch(64)
	seg.NoteBatch(64)
	seg.NoteRun()
	// A shard-internal lane stream, attributed by name parsing alone.
	lane := qt.StreamNamed("agg/part->agg#0", func() int { return 4 }, nil)
	lane.NoteFlush([]core.Tuple{tt(5)}, 4)

	q := r.Snapshot().Queries[0]
	byName := map[string]OperatorSnapshot{}
	for _, o := range q.Operators {
		byName[o.Name] = o
	}
	v := byName["vec[map+filter]"]
	if v.SegBatches != 2 || v.SegTuples != 128 || v.SegRuns != 1 {
		t.Errorf("segment counters = %d/%d/%d, want 2/128/1", v.SegBatches, v.SegTuples, v.SegRuns)
	}
	if _, ok := byName["agg/part"]; !ok {
		t.Error("synthetic operator agg/part missing")
	}
	if got := byName["agg#0"]; got.TuplesIn != 0 || got.BatchesIn != 0 {
		t.Errorf("agg#0 in-counters = %d/%d before any recv, want 0/0", got.TuplesIn, got.BatchesIn)
	}
}

// TestRegisterReplaces pins the re-registration semantics the harness relies
// on: re-building a query under the same name supersedes the old bucket.
func TestRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	old := r.Register("q")
	old.Operator("stale", "map", false)
	fresh := r.Register("q")
	fresh.Operator("live", "map", false)

	snap := r.Snapshot()
	if len(snap.Queries) != 1 {
		t.Fatalf("got %d queries, want 1", len(snap.Queries))
	}
	ops := snap.Queries[0].Operators
	if len(ops) != 1 || ops[0].Name != "live" {
		t.Fatalf("operators after re-register = %+v, want only live", ops)
	}
}

// TestJSONSnapshotSchema pins the exposition's JSON key set: genealog-top
// and any external poller decode these names, so a rename is a breaking
// change this test makes loud.
func TestJSONSnapshotSchema(t *testing.T) {
	r := NewRegistry()
	qt := r.Register("q")
	qt.Operator("src", "source", true)
	st := qt.Stream("src->sink", "src", "sink", func() int { return 2 }, func() (int, int) { return 0, 4 })
	st.NoteFlush([]core.Tuple{tt(1)}, 2)
	st.NoteRecv([]core.Tuple{tt(1)})
	r.RegisterStore("store", func() StoreStats { return StoreStats{Sinks: 3} })
	r.RegisterGauge("genealog_link_bytes", []Label{{Name: "link", Value: "main-0"}}, func() float64 { return 7 })

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"taken_unix_nano", "uptime_seconds", "queries", "stores", "gauges"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("top-level key %q missing", key)
		}
	}
	q := doc["queries"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "source_watermark", "source_watermark_ok", "operators", "streams"} {
		if _, ok := q[key]; !ok {
			t.Errorf("query key %q missing", key)
		}
	}
	op := q["operators"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "tuples_in", "tuples_out", "batches_in", "batches_out",
		"heartbeats_out", "queue_len", "queue_cap", "fill_ratio", "watermark", "watermark_ok", "watermark_lag"} {
		if _, ok := op[key]; !ok {
			t.Errorf("operator key %q missing", key)
		}
	}
	s := q["streams"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "from", "to", "batch_size", "queue_len", "queue_cap",
		"batches_out", "tuples_out", "heartbeats_out", "batches_in", "tuples_in", "watermark", "watermark_ok"} {
		if _, ok := s[key]; !ok {
			t.Errorf("stream key %q missing", key)
		}
	}
	store := doc["stores"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "sinks", "sources", "source_refs", "live_sources",
		"retired_sources", "peak_live_sources", "re_encoded", "bytes", "watermark", "horizon",
		"instances", "min_watermark", "dedup_ratio"} {
		if _, ok := store[key]; !ok {
			t.Errorf("store key %q missing", key)
		}
	}
	g := doc["gauges"].([]any)[0].(map[string]any)
	if g["name"] != "genealog_link_bytes" || g["value"].(float64) != 7 {
		t.Errorf("gauge = %v, want genealog_link_bytes 7", g)
	}
}

// TestEmptyRegistryJSON pins that an idle registry serves "queries": [] —
// not null — so pollers can range without a nil check.
func TestEmptyRegistryJSON(t *testing.T) {
	raw, err := json.Marshal(NewRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"queries":[]`) {
		t.Errorf("idle snapshot = %s, want queries to be []", raw)
	}
}

// TestPrometheusGolden renders a fixed snapshot and compares against the
// expected text verbatim: format drift (family headers, label order,
// escaping, value formatting) fails loudly here before any scraper sees it.
func TestPrometheusGolden(t *testing.T) {
	snap := Snapshot{
		UptimeSeconds: 1.5,
		Queries: []QuerySnapshot{{
			Name: "q", SourceWatermark: 40, SourceWatermarkOK: true,
			Operators: []OperatorSnapshot{
				{Name: "src", Kind: "source", Source: true, TuplesOut: 3, BatchesOut: 2,
					HeartbeatsOut: 1, FillRatio: 0.5, Watermark: 40, WatermarkOK: true},
				{Name: `esc"ape\`, TuplesIn: 3, BatchesIn: 1, QueueLen: 2, QueueCap: 8,
					Watermark: 10, WatermarkOK: true, WatermarkLag: 30,
					SegBatches: 2, SegTuples: 128, SegRuns: 1},
			},
			Streams: []StreamSnapshot{{Name: "src->agg", From: "src", To: "agg",
				BatchSize: 4, QueueLen: 2, QueueCap: 8}},
		}},
		Stores: []StoreSnapshot{{Name: "store", StoreStats: StoreStats{Sinks: 3, DedupRatio: 1.25}}},
		Gauges: []GaugeSnapshot{{Name: "genealog_link_bytes",
			Labels: []Label{{Name: "link", Value: "main-0"}}, Value: 7}},
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, snap); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	for _, want := range []string{
		"# TYPE genealog_uptime_seconds gauge\ngenealog_uptime_seconds 1.5\n",
		`genealog_operator_tuples_out_total{query="q",op="src"} 3`,
		`genealog_operator_heartbeats_out_total{query="q",op="src"} 1`,
		`genealog_operator_queue_length{query="q",op="esc\"ape\\"} 2`,
		`genealog_operator_batch_fill_ratio{query="q",op="src"} 0.5`,
		`genealog_operator_watermark{query="q",op="src"} 40`,
		`genealog_operator_watermark_lag{query="q",op="esc\"ape\\"} 30`,
		`genealog_segment_tuples_total{query="q",op="esc\"ape\\"} 128`,
		`genealog_stream_queue_length{query="q",stream="src->agg"} 2`,
		`genealog_store_sink_entries_total{store="store"} 3`,
		`genealog_store_dedup_ratio{store="store"} 1.25`,
		`genealog_link_bytes{link="main-0"} 7`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, got)
		}
	}
	checkPrometheusText(t, got)
}

// TestPrometheusParsesCleanly round-trips a live registry's exposition
// through the minimal parser.
func TestPrometheusParsesCleanly(t *testing.T) {
	r := NewRegistry()
	qt := r.Register("q")
	qt.Operator("src", "source", true)
	st := qt.Stream("src->sink", "src", "sink", func() int { return 2 }, func() (int, int) { return 1, 4 })
	st.NoteFlush([]core.Tuple{tt(1), core.NewHeartbeat(2)}, 2)
	st.NoteRecv([]core.Tuple{tt(1)})
	r.RegisterStore("store", func() StoreStats { return StoreStats{Sinks: 1} })

	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	checkPrometheusText(t, sb.String())
}

// checkPrometheusText is a minimal text-format (0.0.4) parser: every sample
// line must be `name{label="value",...} number` with its family declared by
// a preceding # TYPE, families must be contiguous, and no (name, labelset)
// may repeat.
func checkPrometheusText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	seen := map[string]bool{}
	var family string
	closed := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge") {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			if typed[name] != "" {
				t.Fatalf("line %d: family %s declared twice", ln+1, name)
			}
			if family != "" {
				closed[family] = true
			}
			if closed[name] {
				t.Fatalf("line %d: family %s reopened — samples not contiguous", ln+1, name)
			}
			typed[name], family = typ, name
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		name := line
		rest := ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if typed[name] == "" {
			t.Fatalf("line %d: sample %q has no # TYPE", ln+1, name)
		}
		if name != family {
			t.Fatalf("line %d: sample %q inside family %q — not contiguous", ln+1, name, family)
		}
		labels := ""
		if strings.HasPrefix(rest, "{") {
			var ok bool
			labels, rest, ok = parseLabels(rest)
			if !ok {
				t.Fatalf("line %d: malformed label set in %q", ln+1, line)
			}
		}
		if seen[name+labels] {
			t.Fatalf("line %d: duplicate sample %s%s", ln+1, name, labels)
		}
		seen[name+labels] = true
		value := strings.TrimSpace(rest)
		if value == "" || strings.ContainsAny(value, " \t") {
			t.Fatalf("line %d: bad value %q", ln+1, value)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("line %d: value %q is not a number: %v", ln+1, value, err)
		}
		if strings.HasSuffix(name, "_total") && typed[name] != "counter" {
			t.Fatalf("_total metric %s typed %s", name, typed[name])
		}
	}
	if len(seen) == 0 {
		t.Fatal("exposition contained no samples")
	}
}

// parseLabels consumes a `{name="value",...}` prefix of s, honouring the
// format's backslash escapes inside values, and returns the consumed label
// block, the remainder, and whether the block was well-formed.
func parseLabels(s string) (labels, rest string, ok bool) {
	i := 1 // past '{'
	for {
		j := strings.IndexByte(s[i:], '=')
		if j < 0 || j == 0 {
			return "", "", false
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return "", "", false
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++ // escaped char
			}
			i++
		}
		if i >= len(s) {
			return "", "", false
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return s[:i+1], s[i+1:], true
		}
		return "", "", false
	}
}
