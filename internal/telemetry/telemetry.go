// Package telemetry is the engine's live observability substrate: a
// process-wide registry of per-operator and per-stream counters that a
// running node exposes over HTTP as Prometheus text and a JSON snapshot
// (plus pprof and expvar on the same mux).
//
// The design splits cleanly into a hot half and a cold half. The hot half
// is StreamStats and SegStats: plain structs of atomic counters that the
// stream transport and the fused/columnar chains bump once per *batch*
// behind a single nil-pointer check — when telemetry is off the pointer is
// nil and the cost is one predictable branch per batch, never per tuple.
// The cold half runs only at scrape time: queue occupancy is sampled
// through closures over channel length, per-operator figures are derived
// by summing the stream-end counters of each operator's inbound and
// outbound streams, and watermark lag is the distance from the query's
// most advanced source watermark.
//
// Streams are the unit of instrumentation because every materialised edge
// already carries a "producer->consumer" name taken from the physical
// plan (the same ids Explain prints: operator names, "fused[a+b]",
// "vec[a+b]", and the shard-internal "op/part", "op#i", "op/merge"
// instances), so operator attribution falls out of the plumbing that
// exists rather than new per-operator hooks in every inner loop.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"genealog/internal/core"
)

// StreamStats is the per-stream hook struct. A Stream holds at most one,
// attached at Build time; both halves are updated lock-free.
//
// The producer side (NoteFlush) runs when a pending batch is published:
// it counts the batch, splits data tuples from heartbeats, and records the
// batch's maximum timestamp — batches are timestamp-sorted, so the last
// slot is the watermark this stream has advertised downstream. The
// consumer side (NoteRecv) runs when a batch is dequeued.
type StreamStats struct {
	batchesOut    atomic.Int64
	tuplesOut     atomic.Int64 // data tuples published (heartbeats excluded)
	heartbeatsOut atomic.Int64
	slotsOut      atomic.Int64 // all slots published, the fill-ratio numerator
	capSlotsOut   atomic.Int64 // sum of capacity-at-flush, the fill-ratio denominator
	batchesIn     atomic.Int64
	tuplesIn      atomic.Int64 // all slots dequeued, heartbeats included
	watermark     atomic.Int64
	wmSet         atomic.Bool
}

// NoteFlush records one published batch and the batch capacity in effect at
// the moment of the flush. Recording the capacity here — rather than
// multiplying batch count by a nominal batch size at scrape time — keeps
// the fill ratio correct when the adaptive controller resizes the stream
// mid-run. The heartbeat scan runs only when telemetry is attached; the
// disabled path never reaches it.
func (s *StreamStats) NoteFlush(b []core.Tuple, capacity int) {
	n := len(b)
	if n == 0 {
		return
	}
	hb := 0
	for _, t := range b {
		if core.IsHeartbeat(t) {
			hb++
		}
	}
	s.batchesOut.Add(1)
	s.slotsOut.Add(int64(n))
	if capacity < n {
		// An oversized pending batch (accumulated before a downward
		// resize) flushes whole; it fills more than one nominal capacity.
		capacity = n
	}
	s.capSlotsOut.Add(int64(capacity))
	s.tuplesOut.Add(int64(n - hb))
	if hb > 0 {
		s.heartbeatsOut.Add(int64(hb))
	}
	s.watermark.Store(b[n-1].Timestamp())
	s.wmSet.Store(true)
}

// NoteRecv records one dequeued batch.
func (s *StreamStats) NoteRecv(b []core.Tuple) {
	s.batchesIn.Add(1)
	s.tuplesIn.Add(int64(len(b)))
}

// SlotsOut returns the cumulative published slots (the fill-ratio
// numerator); the adaptive controller reads per-tick deltas from it.
func (s *StreamStats) SlotsOut() int64 { return s.slotsOut.Load() }

// CapSlotsOut returns the cumulative capacity-at-flush sum (the fill-ratio
// denominator).
func (s *StreamStats) CapSlotsOut() int64 { return s.capSlotsOut.Load() }

// Watermark returns the maximum timestamp published on the stream and
// whether any batch has been published yet.
func (s *StreamStats) Watermark() (int64, bool) {
	if !s.wmSet.Load() {
		return 0, false
	}
	return s.watermark.Load(), true
}

// SegStats counts batches and tuples through one fused or vectorized
// segment ("fused[a+b]" / "vec[a+b]"): how much traffic the planner's
// fusion and columnar passes actually absorbed. Runs counts the
// contiguous data runs a columnar segment processed (row segments leave
// it at zero).
type SegStats struct {
	batches atomic.Int64
	tuples  atomic.Int64
	runs    atomic.Int64
}

// NoteBatch records one batch of n slots entering the segment.
func (s *SegStats) NoteBatch(n int) {
	s.batches.Add(1)
	s.tuples.Add(int64(n))
}

// NoteRun records one contiguous data run processed by a columnar segment.
func (s *SegStats) NoteRun() {
	s.runs.Add(1)
}

// StoreStats is a point-in-time view of a provenance store, mirroring
// provstore.Stats field-for-field (telemetry cannot import provstore — the
// conversion happens where the store is opened).
type StoreStats struct {
	Sinks           int64   `json:"sinks"`
	Sources         int64   `json:"sources"`
	SourceRefs      int64   `json:"source_refs"`
	LiveSources     int64   `json:"live_sources"`
	RetiredSources  int64   `json:"retired_sources"`
	PeakLiveSources int64   `json:"peak_live_sources"`
	ReEncoded       int64   `json:"re_encoded"`
	Bytes           int64   `json:"bytes"`
	Watermark       int64   `json:"watermark"`
	Horizon         int64   `json:"horizon"`
	Instances       int64   `json:"instances"`
	MinWatermark    int64   `json:"min_watermark"`
	DedupRatio      float64 `json:"dedup_ratio"`
}

// Registry is the process-wide root: queries, stores and free-form gauges
// registered under it are visible to every exposition endpoint. The zero
// value is not usable; construct with NewRegistry.
type Registry struct {
	mu      sync.Mutex
	start   time.Time
	queries map[string]*QueryTelemetry
	qOrder  []string
	stores  map[string]func() StoreStats
	sOrder  []string
	gauges  []gaugeFunc
}

type gaugeFunc struct {
	name   string
	labels []Label
	fn     func() float64
}

// Label is one exposition label pair.
type Label struct {
	Name  string
	Value string
}

// NewRegistry returns an empty registry; uptime is measured from this call.
func NewRegistry() *Registry {
	return &Registry{
		start:   time.Now(),
		queries: make(map[string]*QueryTelemetry),
		stores:  make(map[string]func() StoreStats),
	}
}

// Register creates the telemetry bucket for one built query, replacing any
// previous registration under the same name — re-building a query (the
// harness re-runs the same spec) supersedes the stale instance rather than
// accumulating dead streams.
func (r *Registry) Register(query string) *QueryTelemetry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.queries[query]; !ok {
		r.qOrder = append(r.qOrder, query)
	}
	qt := &QueryTelemetry{name: query, ops: make(map[string]*opEntry)}
	r.queries[query] = qt
	return qt
}

// RegisterStore exposes a provenance store's live Stats under the given
// name; the collector runs at scrape time only. A second registration
// under the same name replaces the first.
func (r *Registry) RegisterStore(name string, fn func() StoreStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.stores[name]; !ok {
		r.sOrder = append(r.sOrder, name)
	}
	r.stores[name] = fn
}

// RegisterGauge exposes one free-form scrape-time gauge (e.g. transport
// link byte counts) under a fully-qualified metric name.
func (r *Registry) RegisterGauge(name string, labels []Label, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, gaugeFunc{name: name, labels: labels, fn: fn})
}

// QueryTelemetry collects one query's registrations: its operators (plan
// node ids), its streams, and the fused/vec segment counters.
type QueryTelemetry struct {
	mu      sync.Mutex
	name    string
	ops     map[string]*opEntry
	opOrder []string
	streams []*streamEntry
}

type opEntry struct {
	name   string
	kind   string
	source bool
	seg    *SegStats
}

type streamEntry struct {
	name     string
	from, to string
	// batch samples the stream's live batch size at scrape time — a
	// closure, not a number, because the adaptive controller may resize
	// the stream while the query runs.
	batch func() int
	stats *StreamStats
	queue func() (length, capacity int)
}

// Operator records one plan node: its Explain id, a human kind label, and
// whether it is a source (sources anchor the watermark-lag baseline).
func (q *QueryTelemetry) Operator(name, kind string, source bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if e, ok := q.ops[name]; ok {
		e.kind, e.source = kind, source
		return
	}
	q.ops[name] = &opEntry{name: name, kind: kind, source: source}
	q.opOrder = append(q.opOrder, name)
}

// Segment attaches hit counters to a fused or vectorized plan node and
// returns the hook struct the chain bumps per batch.
func (q *QueryTelemetry) Segment(op string) *SegStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.ops[op]
	if !ok {
		e = &opEntry{name: op}
		q.ops[op] = e
		q.opOrder = append(q.opOrder, op)
	}
	if e.seg == nil {
		e.seg = new(SegStats)
	}
	return e.seg
}

// Stream registers one materialised stream. from and to are the plan node
// ids of the producer and consumer ends; batch samples the stream's live
// batch size and queue samples the channel's length and capacity, both at
// scrape time. Returns the hook struct the stream's Flush/Recv paths bump
// per batch.
func (q *QueryTelemetry) Stream(name, from, to string, batch func() int, queue func() (int, int)) *StreamStats {
	st := new(StreamStats)
	q.mu.Lock()
	defer q.mu.Unlock()
	q.streams = append(q.streams, &streamEntry{
		name: name, from: from, to: to, batch: batch, stats: st, queue: queue,
	})
	return st
}

// StreamNamed registers a stream whose ends are parsed from its
// "producer->consumer" name — the convention every materialised stream
// follows, including the shard-internal partition and merge lanes.
func (q *QueryTelemetry) StreamNamed(name string, batch func() int, queue func() (int, int)) *StreamStats {
	from, to, _ := strings.Cut(name, "->")
	return q.Stream(name, from, to, batch, queue)
}

// Snapshot is the JSON document served at /telemetry.json; genealog-top
// decodes into the same type. All counters are cumulative since process
// start — pollers derive rates from deltas.
type Snapshot struct {
	TakenUnixNano int64           `json:"taken_unix_nano"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Queries       []QuerySnapshot `json:"queries"`
	Stores        []StoreSnapshot `json:"stores,omitempty"`
	Gauges        []GaugeSnapshot `json:"gauges,omitempty"`
}

// QuerySnapshot is one query's operators and streams. SourceWatermark is
// the maximum watermark any source operator has published — the baseline
// operator lag is measured against.
type QuerySnapshot struct {
	Name              string             `json:"name"`
	SourceWatermark   int64              `json:"source_watermark"`
	SourceWatermarkOK bool               `json:"source_watermark_ok"`
	Operators         []OperatorSnapshot `json:"operators"`
	Streams           []StreamSnapshot   `json:"streams"`
}

// OperatorSnapshot aggregates one plan node's stream ends: in-counters sum
// its inbound streams' consumer sides, out-counters its outbound streams'
// producer sides, queue figures sample its inbound channels.
type OperatorSnapshot struct {
	Name          string  `json:"name"`
	Kind          string  `json:"kind,omitempty"`
	Source        bool    `json:"source,omitempty"`
	TuplesIn      int64   `json:"tuples_in"`
	TuplesOut     int64   `json:"tuples_out"`
	BatchesIn     int64   `json:"batches_in"`
	BatchesOut    int64   `json:"batches_out"`
	HeartbeatsOut int64   `json:"heartbeats_out"`
	QueueLen      int     `json:"queue_len"`
	QueueCap      int     `json:"queue_cap"`
	BatchSize     int     `json:"batch_size,omitempty"` // max live batch size over outbound streams
	FillRatio     float64 `json:"fill_ratio"`
	Watermark     int64   `json:"watermark"`
	WatermarkOK   bool    `json:"watermark_ok"`
	WatermarkLag  int64   `json:"watermark_lag"`
	SegBatches    int64   `json:"seg_batches,omitempty"`
	SegTuples     int64   `json:"seg_tuples,omitempty"`
	SegRuns       int64   `json:"seg_runs,omitempty"`
}

// StreamSnapshot is one edge's raw counters, for consumers that want the
// un-aggregated view.
type StreamSnapshot struct {
	Name          string `json:"name"`
	From          string `json:"from"`
	To            string `json:"to"`
	BatchSize     int    `json:"batch_size"`
	QueueLen      int    `json:"queue_len"`
	QueueCap      int    `json:"queue_cap"`
	BatchesOut    int64  `json:"batches_out"`
	TuplesOut     int64  `json:"tuples_out"`
	HeartbeatsOut int64  `json:"heartbeats_out"`
	BatchesIn     int64  `json:"batches_in"`
	TuplesIn      int64  `json:"tuples_in"`
	Watermark     int64  `json:"watermark"`
	WatermarkOK   bool   `json:"watermark_ok"`
}

// StoreSnapshot is one provenance store's StoreStats plus its name.
type StoreSnapshot struct {
	Name string `json:"name"`
	StoreStats
}

// GaugeSnapshot is one free-form gauge sample.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Snapshot samples every registration. Queue closures run here, so a
// scrape observes channel occupancy at this instant; counters are whatever
// the hot path has accumulated.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	qNames := append([]string(nil), r.qOrder...)
	queries := make([]*QueryTelemetry, 0, len(qNames))
	for _, n := range qNames {
		queries = append(queries, r.queries[n])
	}
	sNames := append([]string(nil), r.sOrder...)
	stores := make([]func() StoreStats, 0, len(sNames))
	for _, n := range sNames {
		stores = append(stores, r.stores[n])
	}
	gauges := append([]gaugeFunc(nil), r.gauges...)
	start := r.start
	r.mu.Unlock()

	snap := Snapshot{
		TakenUnixNano: time.Now().UnixNano(),
		UptimeSeconds: time.Since(start).Seconds(),
		// Non-nil so an idle registry serves "queries": [] — pollers can
		// rely on the key holding an array.
		Queries: make([]QuerySnapshot, 0, len(queries)),
	}
	for _, qt := range queries {
		snap.Queries = append(snap.Queries, qt.snapshot())
	}
	for i, fn := range stores {
		snap.Stores = append(snap.Stores, StoreSnapshot{Name: sNames[i], StoreStats: fn()})
	}
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: g.name, Labels: g.labels, Value: g.fn()})
	}
	return snap
}

func (q *QueryTelemetry) snapshot() QuerySnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()

	qs := QuerySnapshot{Name: q.name}

	// Sample streams once; operator figures are derived from these.
	type sSample struct {
		e  *streamEntry
		ss StreamSnapshot
	}
	samples := make([]sSample, 0, len(q.streams))
	for _, e := range q.streams {
		ql, qc := 0, 0
		if e.queue != nil {
			ql, qc = e.queue()
		}
		bs := 0
		if e.batch != nil {
			bs = e.batch()
		}
		wm, ok := e.stats.Watermark()
		samples = append(samples, sSample{e, StreamSnapshot{
			Name: e.name, From: e.from, To: e.to, BatchSize: bs,
			QueueLen: ql, QueueCap: qc,
			BatchesOut:    e.stats.batchesOut.Load(),
			TuplesOut:     e.stats.tuplesOut.Load(),
			HeartbeatsOut: e.stats.heartbeatsOut.Load(),
			BatchesIn:     e.stats.batchesIn.Load(),
			TuplesIn:      e.stats.tuplesIn.Load(),
			Watermark:     wm, WatermarkOK: ok,
		}})
	}

	// Operators in registration order, then any stream ends the planner
	// never registered explicitly (shard-internal instances) in stream
	// order, so "op/part", "op#0" ... "op/merge" group together.
	order := append([]string(nil), q.opOrder...)
	known := make(map[string]bool, len(order))
	for _, n := range order {
		known[n] = true
	}
	for _, s := range samples {
		for _, end := range [2]string{s.ss.From, s.ss.To} {
			if end != "" && !known[end] {
				known[end] = true
				order = append(order, end)
			}
		}
	}

	opSnaps := make([]OperatorSnapshot, 0, len(order))
	for _, name := range order {
		os := OperatorSnapshot{Name: name}
		if e, ok := q.ops[name]; ok {
			os.Kind, os.Source = e.kind, e.source
			if e.seg != nil {
				os.SegBatches = e.seg.batches.Load()
				os.SegTuples = e.seg.tuples.Load()
				os.SegRuns = e.seg.runs.Load()
			}
		}
		var slotsOut, capSlots int64
		for _, s := range samples {
			if s.ss.To == name { // inbound: consumer side + queue occupancy
				os.TuplesIn += s.ss.TuplesIn
				os.BatchesIn += s.ss.BatchesIn
				os.QueueLen += s.ss.QueueLen
				os.QueueCap += s.ss.QueueCap
			}
			if s.ss.From == name { // outbound: producer side + watermark
				os.TuplesOut += s.ss.TuplesOut
				os.BatchesOut += s.ss.BatchesOut
				os.HeartbeatsOut += s.ss.HeartbeatsOut
				slotsOut += s.e.stats.slotsOut.Load()
				// Capacity-at-flush, recorded on the hot path — not
				// batches x nominal size, which misattributes capacity
				// the moment the batch size changes mid-run.
				capSlots += s.e.stats.capSlotsOut.Load()
				if s.ss.BatchSize > os.BatchSize {
					os.BatchSize = s.ss.BatchSize
				}
				if s.ss.WatermarkOK && (!os.WatermarkOK || s.ss.Watermark > os.Watermark) {
					os.Watermark, os.WatermarkOK = s.ss.Watermark, true
				}
			}
		}
		if !os.WatermarkOK { // sinks: fall back to what was published to them
			for _, s := range samples {
				if s.ss.To == name && s.ss.WatermarkOK && (!os.WatermarkOK || s.ss.Watermark > os.Watermark) {
					os.Watermark, os.WatermarkOK = s.ss.Watermark, true
				}
			}
		}
		if capSlots > 0 {
			os.FillRatio = float64(slotsOut) / float64(capSlots)
		}
		opSnaps = append(opSnaps, os)
	}

	// Watermark lag: distance from the most advanced source watermark. A
	// query with no source operator (a downstream SPE instance fed over
	// links) measures against its own frontier — the most advanced
	// watermark any of its operators has published.
	for _, os := range opSnaps {
		if e, ok := q.ops[os.Name]; ok && e.source && os.WatermarkOK && (!qs.SourceWatermarkOK || os.Watermark > qs.SourceWatermark) {
			qs.SourceWatermark, qs.SourceWatermarkOK = os.Watermark, true
		}
	}
	if !qs.SourceWatermarkOK {
		for _, os := range opSnaps {
			if os.WatermarkOK && (!qs.SourceWatermarkOK || os.Watermark > qs.SourceWatermark) {
				qs.SourceWatermark, qs.SourceWatermarkOK = os.Watermark, true
			}
		}
	}
	if qs.SourceWatermarkOK {
		for i := range opSnaps {
			if opSnaps[i].WatermarkOK {
				if lag := qs.SourceWatermark - opSnaps[i].Watermark; lag > 0 {
					opSnaps[i].WatermarkLag = lag
				}
			}
		}
	}

	qs.Operators = opSnaps
	qs.Streams = make([]StreamSnapshot, 0, len(samples))
	for _, s := range samples {
		qs.Streams = append(qs.Streams, s.ss)
	}
	return qs
}

// OperatorNames returns the registered plan node ids, sorted — test
// support for asserting registry-name uniqueness across a plan.
func (q *QueryTelemetry) OperatorNames() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	names := append([]string(nil), q.opOrder...)
	sort.Strings(names)
	return names
}

// StreamNames returns the registered stream names in registration order.
func (q *QueryTelemetry) StreamNames() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	names := make([]string, 0, len(q.streams))
	for _, e := range q.streams {
		names = append(names, e.name)
	}
	return names
}
