package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per metric family,
// every sample of a family contiguous under its header, label values
// escaped per the format's rules. Counters carry the _total suffix;
// sampled values (queue occupancy, fill ratio, watermarks) are gauges.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	p := promWriter{w: w}

	p.family("genealog_uptime_seconds", "gauge", "Seconds since the telemetry registry was created.")
	p.sample("genealog_uptime_seconds", nil, fmtFloat(snap.UptimeSeconds))

	type opSample struct {
		q  string
		op OperatorSnapshot
	}
	var ops []opSample
	for _, q := range snap.Queries {
		for _, o := range q.Operators {
			ops = append(ops, opSample{q.Name, o})
		}
	}

	opCounter := func(name, help string, val func(OperatorSnapshot) int64) {
		p.family(name, "counter", help)
		for _, s := range ops {
			p.sample(name, opLabels(s.q, s.op.Name), fmtInt(val(s.op)))
		}
	}
	opGauge := func(name, help string, every bool, val func(OperatorSnapshot) (float64, bool)) {
		p.family(name, "gauge", help)
		for _, s := range ops {
			if v, ok := val(s.op); ok || every {
				p.sample(name, opLabels(s.q, s.op.Name), fmtFloat(v))
			}
		}
	}

	opCounter("genealog_operator_tuples_in_total", "Data tuples and heartbeats dequeued by the operator.",
		func(o OperatorSnapshot) int64 { return o.TuplesIn })
	opCounter("genealog_operator_tuples_out_total", "Data tuples published by the operator (heartbeats excluded).",
		func(o OperatorSnapshot) int64 { return o.TuplesOut })
	opCounter("genealog_operator_batches_in_total", "Batches dequeued by the operator.",
		func(o OperatorSnapshot) int64 { return o.BatchesIn })
	opCounter("genealog_operator_batches_out_total", "Batches published by the operator.",
		func(o OperatorSnapshot) int64 { return o.BatchesOut })
	opCounter("genealog_operator_heartbeats_out_total", "Heartbeats published by the operator.",
		func(o OperatorSnapshot) int64 { return o.HeartbeatsOut })
	opGauge("genealog_operator_queue_length", "Tuples buffered in the operator's inbound channels (sampled).", true,
		func(o OperatorSnapshot) (float64, bool) { return float64(o.QueueLen), true })
	opGauge("genealog_operator_queue_capacity", "Capacity of the operator's inbound channels.", true,
		func(o OperatorSnapshot) (float64, bool) { return float64(o.QueueCap), true })
	opGauge("genealog_operator_batch_fill_ratio", "Published slots over the batch capacity in effect at each flush.", true,
		func(o OperatorSnapshot) (float64, bool) { return o.FillRatio, true })
	opGauge("genealog_operator_watermark", "Event-time watermark the operator last published.", false,
		func(o OperatorSnapshot) (float64, bool) { return float64(o.Watermark), o.WatermarkOK })
	opGauge("genealog_operator_watermark_lag", "Event-time distance behind the query's most advanced source.", false,
		func(o OperatorSnapshot) (float64, bool) { return float64(o.WatermarkLag), o.WatermarkOK })

	segAny := false
	for _, s := range ops {
		if s.op.SegBatches > 0 || s.op.SegTuples > 0 || s.op.SegRuns > 0 {
			segAny = true
			break
		}
	}
	if segAny {
		seg := func(name, help string, val func(OperatorSnapshot) int64) {
			p.family(name, "counter", help)
			for _, s := range ops {
				if s.op.SegBatches > 0 || s.op.SegTuples > 0 || s.op.SegRuns > 0 {
					p.sample(name, opLabels(s.q, s.op.Name), fmtInt(val(s.op)))
				}
			}
		}
		seg("genealog_segment_batches_total", "Batches processed by the fused or vectorized segment.",
			func(o OperatorSnapshot) int64 { return o.SegBatches })
		seg("genealog_segment_tuples_total", "Tuple slots processed by the fused or vectorized segment.",
			func(o OperatorSnapshot) int64 { return o.SegTuples })
		seg("genealog_segment_runs_total", "Contiguous data runs processed by the vectorized segment.",
			func(o OperatorSnapshot) int64 { return o.SegRuns })
	}

	p.family("genealog_stream_queue_length", "gauge", "Tuples buffered in the stream's channel (sampled).")
	for _, q := range snap.Queries {
		for _, s := range q.Streams {
			p.sample("genealog_stream_queue_length", streamLabels(q.Name, s.Name), fmtInt(int64(s.QueueLen)))
		}
	}
	p.family("genealog_stream_queue_capacity", "gauge", "Capacity of the stream's channel, in tuples.")
	for _, q := range snap.Queries {
		for _, s := range q.Streams {
			p.sample("genealog_stream_queue_capacity", streamLabels(q.Name, s.Name), fmtInt(int64(s.QueueCap)))
		}
	}
	p.family("genealog_stream_batch_size", "gauge", "Current batch size of the stream; adaptive batching may change it at runtime.")
	for _, q := range snap.Queries {
		for _, s := range q.Streams {
			p.sample("genealog_stream_batch_size", streamLabels(q.Name, s.Name), fmtInt(int64(s.BatchSize)))
		}
	}

	if len(snap.Stores) > 0 {
		storeMetric := func(name, typ, help string, val func(StoreSnapshot) float64) {
			p.family(name, typ, help)
			for _, st := range snap.Stores {
				p.sample(name, []Label{{"store", st.Name}}, fmtFloat(val(st)))
			}
		}
		storeMetric("genealog_store_sink_entries_total", "counter", "Sink tuples ingested by the provenance store.",
			func(s StoreSnapshot) float64 { return float64(s.Sinks) })
		storeMetric("genealog_store_source_entries", "gauge", "Distinct source tuples currently held.",
			func(s StoreSnapshot) float64 { return float64(s.Sources) })
		storeMetric("genealog_store_source_refs_total", "counter", "Source references ingested (pre-deduplication).",
			func(s StoreSnapshot) float64 { return float64(s.SourceRefs) })
		storeMetric("genealog_store_live_sources", "gauge", "Source tuples not yet retired by the watermark.",
			func(s StoreSnapshot) float64 { return float64(s.LiveSources) })
		storeMetric("genealog_store_retired_sources_total", "counter", "Source tuples retired past the horizon.",
			func(s StoreSnapshot) float64 { return float64(s.RetiredSources) })
		storeMetric("genealog_store_peak_live_sources", "gauge", "High-water mark of live source tuples.",
			func(s StoreSnapshot) float64 { return float64(s.PeakLiveSources) })
		storeMetric("genealog_store_reencoded_total", "counter", "Payloads re-encoded on ingest.",
			func(s StoreSnapshot) float64 { return float64(s.ReEncoded) })
		storeMetric("genealog_store_bytes", "gauge", "Approximate bytes held by the store.",
			func(s StoreSnapshot) float64 { return float64(s.Bytes) })
		storeMetric("genealog_store_watermark", "gauge", "Maximum watermark advertised to the store.",
			func(s StoreSnapshot) float64 { return float64(s.Watermark) })
		storeMetric("genealog_store_min_watermark", "gauge", "Minimum watermark across reporting instances.",
			func(s StoreSnapshot) float64 { return float64(s.MinWatermark) })
		storeMetric("genealog_store_instances", "gauge", "Distinct SPE instances reporting watermarks.",
			func(s StoreSnapshot) float64 { return float64(s.Instances) })
		storeMetric("genealog_store_dedup_ratio", "gauge", "Source references per distinct stored source.",
			func(s StoreSnapshot) float64 { return s.DedupRatio })
	}

	// Free-form gauges grouped by name so families stay contiguous.
	done := map[string]bool{}
	for _, g := range snap.Gauges {
		if done[g.Name] {
			continue
		}
		done[g.Name] = true
		p.family(g.Name, "gauge", "Registered gauge.")
		for _, h := range snap.Gauges {
			if h.Name == g.Name {
				p.sample(h.Name, h.Labels, fmtFloat(h.Value))
			}
		}
	}
	return p.err
}

func opLabels(query, op string) []Label {
	return []Label{{"query", query}, {"op", op}}
}

func streamLabels(query, stream string) []Label {
	return []Label{{"query", query}, {"stream", stream}}
}

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) family(name, typ, help string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name string, labels []Label, value string) {
	if p.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(value)
	sb.WriteByte('\n')
	_, p.err = io.WriteString(p.w, sb.String())
}

// escapeLabel applies the text format's label-value escaping: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func fmtInt(v int64) string { return fmt.Sprintf("%d", v) }

func fmtFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}
