// Package driver runs the genealog-lint analyzers in the two modes the
// cmd/genealog-lint binary supports:
//
//   - standalone: `genealog-lint [-json] [-tests] ./...` loads packages
//     itself (internal/lint/load) and analyzes them — the mode CI uses to
//     annotate findings and developers use directly;
//   - unitchecker: when the go tool invokes the binary as a vet tool
//     (`go vet -vettool=$(which genealog-lint) ./...`), it passes a single
//     *.cfg JSON argument describing one package unit — source files plus
//     compiler export data for every dependency. The driver mirrors the
//     x/tools unitchecker protocol with the standard library only: -V=full
//     prints the content-hashed version line the go command uses as the
//     tool's build ID, -flags advertises the supported flags, and each cfg
//     run type-checks the unit and exits 0 (clean), 1 (operational error)
//     or 2 (diagnostics), writing facts output as an empty placeholder
//     (the analyzers are fact-free).
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"genealog/internal/lint/analysis"
	"genealog/internal/lint/load"
)

// options are the parsed command-line flags.
type options struct {
	jsonOut bool
	tests   bool
	enabled map[string]*bool
}

// Main is the entry point shared by cmd/genealog-lint. It returns the
// process exit code: 0 clean, 1 operational error, 2 diagnostics reported.
func Main(analyzers []*analysis.Analyzer) int {
	fs := flag.NewFlagSet("genealog-lint", flag.ExitOnError)
	vFlag := fs.String("V", "", "print version and exit (-V=full for the go command's tool ID)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit (go vet protocol)")
	opt := &options{enabled: make(map[string]*bool)}
	fs.BoolVar(&opt.jsonOut, "json", false, "emit diagnostics as JSON on stdout (exit 0)")
	fs.BoolVar(&opt.tests, "tests", false, "standalone mode: also analyze _test.go files")
	for _, a := range analyzers {
		summary := a.Doc
		if i := strings.IndexByte(summary, '\n'); i >= 0 {
			summary = summary[:i]
		}
		opt.enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+summary)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 1
	}

	if *vFlag != "" {
		return printVersion(*vFlag)
	}
	if *flagsFlag {
		return printFlags(fs)
	}

	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *opt.enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitchecker(args[0], active, opt)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	return standalone(args, active, opt)
}

// printVersion implements -V; with -V=full the go command records the
// output as the vet tool's build ID, so it must change whenever the binary
// does — we hash the executable, like x/tools' unitchecker.
func printVersion(v string) int {
	progname := "genealog-lint"
	if exe, err := os.Executable(); err == nil {
		progname = strings.TrimSuffix(exe[strings.LastIndexByte(exe, '/')+1:], ".exe")
	}
	if v != "full" {
		fmt.Printf("%s version devel\n", progname)
		return 0
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
	return 0
}

// printFlags implements -flags: the go command queries the tool's flag set
// before forwarding user-provided vet flags.
func printFlags(fs *flag.FlagSet) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	os.Stdout.Write(data)
	return 0
}

// diagnostic is one finding with its position resolved, ready to print.
type diagnostic struct {
	Posn     string `json:"posn"`
	Analyzer string `json:"-"`
	Message  string `json:"message"`
}

// runAnalyzers applies each analyzer to one type-checked package.
func runAnalyzers(analyzers []*analysis.Analyzer, pkg *load.Package) ([]diagnostic, error) {
	var out []diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, diagnostic{
				Posn:     pkg.Fset.Position(d.Pos).String(),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Posn < out[j].Posn })
	return out, nil
}

// emit prints diagnostics grouped per package: vet-style plain lines on
// stderr, or the vet -json object shape on stdout.
func emit(opt *options, perPkg map[string][]diagnostic) int {
	if opt.jsonOut {
		tree := make(map[string]map[string][]diagnostic)
		for pkg, diags := range perPkg {
			byAnalyzer := make(map[string][]diagnostic)
			for _, d := range diags {
				byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d)
			}
			tree[pkg] = byAnalyzer
		}
		data, err := json.MarshalIndent(tree, "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		os.Stdout.Write(data)
		os.Stdout.Write([]byte("\n"))
		return 0
	}
	n := 0
	var pkgs []string
	for pkg := range perPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		for _, d := range perPkg[pkg] {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Posn, d.Analyzer, d.Message)
			n++
		}
	}
	if n > 0 {
		return 2
	}
	return 0
}

// standalone loads the packages matching the patterns and analyzes them.
func standalone(patterns []string, analyzers []*analysis.Analyzer, opt *options) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, err := load.Packages(load.ModuleDir(wd), opt.tests, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	perPkg := make(map[string][]diagnostic)
	for _, pkg := range pkgs {
		diags, err := runAnalyzers(analyzers, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if len(diags) > 0 {
			perPkg[pkg.ImportPath] = diags
		}
	}
	return emit(opt, perPkg)
}

// vetConfig is the JSON the go command passes a vet tool for one package
// unit (the x/tools unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitchecker analyzes the single package unit described by cfgFile.
func unitchecker(cfgFile string, analyzers []*analysis.Analyzer, opt *options) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "genealog-lint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The analyzers are fact-free, so dependencies have nothing to compute;
	// the facts output must still exist for the go command's cache.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
	}
	if cfg.VetxOnly {
		if err := writeVetx(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	imp := unitImporter(fset, &cfg)
	files := cfg.GoFiles
	syntax, tpkg, info, err := load.Check(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "genealog-lint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := runAnalyzers(analyzers, &load.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		Info:       info,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := writeVetx(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	perPkg := map[string][]diagnostic{cfg.ImportPath: diags}
	return emit(opt, perPkg)
}

// unitImporter resolves the unit's imports through the config's import map
// and per-package export data files.
func unitImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	underlying := load.Importer(fset, exports)
	mapped := func(path string) (*types.Package, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return underlying.Import(path)
	}
	return importerFunc(mapped)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
