// Package lint: how to write a new genealog analyzer.
//
// # Anatomy
//
// An analyzer lives in its own package under internal/lint/<name> and
// exports a single
//
//	var Analyzer = &analysis.Analyzer{Name: "<name>", Doc: ..., Run: run}
//
// using the internal/lint/analysis mini-framework, which mirrors the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, Diagnostic,
// Reportf) with the standard library only — the module deliberately has no
// dependencies. Porting an analyzer to the real x/tools framework is a
// matter of changing the import path.
//
// Run receives a Pass with the package's parsed files (Pass.Files), the
// type-checked package (Pass.Pkg) and full type information
// (Pass.TypesInfo: Types, Defs, Uses, Selections, Implicits, Scopes).
// Report findings with Pass.Reportf(pos, format, ...). The shared helpers
// in internal/lint/analysisutil resolve static callees, match methods by
// (package, receiver, name), and canonicalize access paths ("rec.Orig",
// "c.outs[]") for flow-sensitive tracking.
//
// # Ground rules
//
//   - Bail out early. The vet driver runs every analyzer over every
//     package, standard library included; start Run with an
//     analysisutil.Imports check for the package whose API the analyzer
//     constrains, and return nil for everything else.
//   - Under-approximate. Analyze branch bodies under a copy of any
//     order-based state so a freeze/close in one arm does not leak past
//     the join; a missed violation is recoverable, a false positive
//     teaches people to ignore the tool. When real code legitimately
//     triggers a rule (see the partitioner's heartbeat fold, or SetNext
//     chain building), refine the analyzer rather than annotate the code.
//   - Make every diagnostic say why. The message must name the runtime
//     contract being broken and what goes wrong at runtime, not just the
//     syntax that matched.
//   - Stay fact-free. The driver's vetx outputs are empty placeholders;
//     an analyzer must not need results from dependency packages.
//
// # Checklist
//
//  1. Create internal/lint/<name>/<name>.go with the Analyzer and a
//     package comment stating the contract it enforces.
//  2. Register it in All() (internal/lint/lint.go). The driver derives a
//     -<name> opt-out flag automatically.
//  3. Add internal/lint/<name>/testdata/a/a.go with at least one positive
//     (`// want "regexp"`) and one negative case per distinct diagnostic,
//     importing the real genealog packages, plus a <name>_test.go calling
//     analysistest.Run.
//  4. Run the suite over the tree (`go run ./cmd/genealog-lint -tests
//     ./...`) and fix or triage every hit before wiring it into CI — a
//     new analyzer that fails the existing build blocks everyone.
package lint
