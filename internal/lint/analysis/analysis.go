// Package analysis is a self-contained, stdlib-only re-implementation of the
// golang.org/x/tools/go/analysis surface this repository's custom analyzers
// are written against. The repository deliberately has zero module
// dependencies, so instead of importing x/tools we mirror the small part of
// its contract we need: an Analyzer is a named check, a Pass hands it one
// type-checked package, and Report emits position-anchored diagnostics. The
// drivers in internal/lint/driver (standalone and `go vet -vettool`
// unitchecker modes) and the test harness in internal/lint/analysistest run
// the same Analyzer values, so a new analyzer written against this package
// works everywhere at once — and would port to the real x/tools API by
// changing only import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a vet-style pass over a single
// type-checked package. Analyzers must be stateless across passes — the
// drivers run one Analyzer value over many packages (and analysistest over
// testdata packages), concurrently in the standalone driver.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags (-<name>=false
	// disables it) and JSON output. By convention it is a single lowercase
	// word.
	Name string
	// Doc is the analyzer's long documentation: first line a one-sentence
	// summary, then the invariant it enforces and why it exists.
	Doc string
	// Run applies the check to one package. Diagnostics go through
	// pass.Report; the error return is for operational failures only (it
	// aborts the whole run, it is not a finding).
	Run func(*Pass) (any, error)
}

// Pass is one application of one analyzer to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report emits one diagnostic. The drivers install it; analyzers call
	// Reportf instead for convenience.
	Report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
