// Package provcheck is an errcheck-style pass for the provenance-durability
// API: every error returned by a provstore.Backend method, a provstore
// package function, or a provenance.Collector Add/Flush/emit must be
// consumed. These errors are the only signal that a provenance record was
// NOT durably appended — dropping one silently turns "provenance capture"
// into "provenance sampling", which invalidates every backward-trace answer
// built on the store.
//
// Accepted ways to consume the error:
//
//   - use the call in an expression context (assignment to a checked
//     variable, argument, condition, return value);
//   - explicitly discard with `_ = call(...)` — the opt-out that documents
//     intent and is greppable;
//   - `defer x.Close()` — the harness idiom keeps a deferred Close as a
//     safety net behind an error-checked close on the success path, and a
//     deferred call's error is unrecoverable anyway.
//
// Flagged: an error-returning provenance call as a bare statement, inside
// `go`, or deferred (other than Close).
package provcheck

import (
	"go/ast"
	"go/types"

	"genealog/internal/lint/analysis"
	"genealog/internal/lint/analysisutil"
)

const (
	provstorePath  = "genealog/internal/provstore"
	provenancePath = "genealog/internal/provenance"
)

// collectorMethods are the provenance.Collector methods whose error return
// reports a failed provenance append or flush.
var collectorMethods = map[string]bool{
	"Add": true, "Flush": true, "flushBefore": true, "emit": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "provcheck",
	Doc: "flags discarded error returns from provstore and provenance.Collector calls\n\n" +
		"A dropped error from AppendSource/Add/Flush/Close means a provenance record\n" +
		"may not be durable; backward traces built on the store silently lose lineage.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pkg := pass.Pkg.Path()
	if pkg != provstorePath && pkg != provenancePath &&
		!analysisutil.Imports(pass.Pkg, provstorePath) && !analysisutil.Imports(pass.Pkg, provenancePath) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				check(pass, n.X, "discarded")
			case *ast.GoStmt:
				check(pass, n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				if fn := analysisutil.Callee(pass.TypesInfo, n.Call); fn != nil && fn.Name() == "Close" {
					return true // deferred Close is the documented safety-net idiom
				}
				check(pass, n.Call, "discarded by defer")
			}
			return true
		})
	}
	return nil, nil
}

// check reports call (if it is a provenance call returning an error) whose
// result is dropped in the given way.
func check(pass *analysis.Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysisutil.Callee(pass.TypesInfo, call)
	if fn == nil || !returnsError(fn) || !isProvCall(fn) {
		return
	}
	target := fn.Name()
	if recv := analysisutil.Receiver(fn); recv != nil {
		target = recv.Obj().Name() + "." + target
	}
	pass.Reportf(call.Pos(), "error returned by %s is %s: a failed provenance append/flush is silent data loss (handle it or write `_ = ...` to opt out)", target, how)
}

// isProvCall reports whether fn belongs to the provenance-durability API:
// anything in internal/provstore (package functions, Backend and Store
// methods, client/server plumbing) or a Collector method in
// internal/provenance.
func isProvCall(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case provstorePath:
		return true
	case provenancePath:
		recv := analysisutil.Receiver(fn)
		return recv != nil && recv.Obj().Name() == "Collector" && collectorMethods[fn.Name()]
	}
	return false
}

// returnsError reports whether fn's last result is the builtin error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
