package provcheck_test

import (
	"testing"

	"genealog/internal/lint/analysistest"
	"genealog/internal/lint/provcheck"
)

func TestProvCheck(t *testing.T) {
	analysistest.Run(t, "testdata", provcheck.Analyzer, "a")
}
