// Seeded cases for the provcheck analyzer.
package a

import (
	"genealog/internal/provenance"
	"genealog/internal/provstore"
)

func bareAppend(be *provstore.Memory) {
	be.AppendSource(provstore.SourceEntry{}) // want `error returned by Memory.AppendSource is discarded`
}

func bareCollector(c *provenance.Collector, r *provenance.Record) {
	c.Add(r)  // want `error returned by Collector.Add is discarded`
	c.Flush() // want `error returned by Collector.Flush is discarded`
}

func inGoroutine(st *provstore.Store) {
	go st.Close() // want `error returned by Store.Close is discarded by go statement`
}

func deferredFlush(c *provenance.Collector) {
	defer c.Flush() // want `error returned by Collector.Flush is discarded by defer`
}

func deferredClose(st *provstore.Store) {
	defer st.Close() // the documented safety-net idiom: allowed
}

func checked(be *provstore.Memory) error {
	if err := be.AppendSink(provstore.SinkEntry{}); err != nil {
		return err
	}
	return be.AppendWatermark(0)
}

func optedOut(be *provstore.Memory) {
	_ = be.AppendWatermark(0) // explicit discard: allowed
}

func nonProvCall(fns []func() error) {
	for _, fn := range fns {
		fn() // not a provenance API: out of scope
	}
}
