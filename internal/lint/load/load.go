// Package load type-checks packages for the genealog-lint analyzers without
// depending on golang.org/x/tools/go/packages: it shells out to the go tool
// (`go list -deps -export -json`) to resolve the package graph and produce
// compiler export data, parses the target packages from source, and
// type-checks them with go/types importing every dependency from that
// export data — the same division of labour as `go vet`, where the build
// system compiles dependencies and the analysis tool sees only the target's
// syntax.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output we consume.
type listEntry struct {
	ImportPath  string
	Dir         string
	Export      string
	Standard    bool
	DepOnly     bool
	GoFiles     []string
	TestGoFiles []string
	Error       *struct{ Err string }
}

// run executes the go tool in dir and returns its stdout.
func run(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// list decodes the JSON stream of one `go list` invocation.
func list(dir string, args ...string) ([]*listEntry, error) {
	out, err := run(dir, append([]string{"list"}, args...)...)
	if err != nil {
		return nil, err
	}
	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, &e)
	}
	return entries, nil
}

// ExportMap builds export data for the packages matching patterns in dir and
// every dependency, and returns importPath -> export data file. extra
// patterns (e.g. stdlib packages testdata files import) may be appended.
func ExportMap(dir string, patterns ...string) (map[string]string, error) {
	entries, err := list(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// Importer returns a types.Importer resolving import paths through the
// export map. "unsafe" resolves to types.Unsafe.
func Importer(fset *token.FileSet, exports map[string]string) types.Importer {
	return ImporterLookup(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
}

// ImporterLookup returns a types.Importer resolving import paths to export
// data files through lookup. One call builds ONE gc importer with one
// package cache, so every dependency — imported directly or reached through
// another package's export data — resolves to the identical *types.Package;
// per-import importer instances would make `core.IDGen` from two routes two
// distinct types.
func ImporterLookup(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	compiler := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compiler.(types.ImporterFrom).ImportFrom(path, "", 0)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Check parses the given source files and type-checks them as one package
// with the given import path, importing dependencies through imp. goVersion
// ("go1.24", may be empty) bounds the language version, as the go command
// reports it for vet units.
func Check(fset *token.FileSet, importPath string, files []string, imp types.Importer, goVersion string) ([]*ast.File, *types.Package, *types.Info, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return syntax, pkg, info, nil
}

// Packages loads, parses and type-checks the packages matching patterns in
// module directory dir. With tests true, each package's in-package _test.go
// files are included (the test variant go vet analyzes); external _test
// packages are loaded as their own entries.
func Packages(dir string, tests bool, patterns ...string) ([]*Package, error) {
	listArgs := []string{"-deps", "-export", "-json=ImportPath,Export,Standard,DepOnly,Dir,GoFiles,TestGoFiles"}
	if tests {
		listArgs = append([]string{"-test"}, listArgs...)
	}
	entries, err := list(dir, append(listArgs, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	variants := make(map[string]bool) // base paths that have a test variant
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if i := strings.IndexByte(e.ImportPath, ' '); i >= 0 && !e.DepOnly {
			variants[e.ImportPath[:i]] = true
		}
	}
	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		// Skip the synthesized test-main package ("pkg.test") and, when a
		// test variant of a package is being analyzed, the plain package it
		// duplicates.
		if strings.HasSuffix(e.ImportPath, ".test") || variants[e.ImportPath] {
			continue
		}
		fset := token.NewFileSet()
		// A test variant ("p [p.test]") resolves its imports against the
		// variant export data of its group where present; a single importer
		// per unit keeps dependency package identity consistent.
		variant := ""
		if i := strings.IndexByte(e.ImportPath, ' '); i >= 0 {
			variant = e.ImportPath[i:] // " [p.test]"
		}
		imp := ImporterLookup(fset, func(path string) (string, bool) {
			if variant != "" {
				if f, ok := exports[path+variant]; ok {
					return f, true
				}
			}
			f, ok := exports[path]
			return f, ok
		})
		var files []string
		for _, f := range e.GoFiles {
			if !filepath.IsAbs(f) {
				f = filepath.Join(e.Dir, f)
			}
			files = append(files, f)
		}
		importPath := e.ImportPath
		if i := strings.IndexByte(importPath, ' '); i >= 0 {
			importPath = importPath[:i]
		}
		syntax, tpkg, info, err := Check(fset, importPath, files, imp, "")
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: e.ImportPath,
			Dir:        e.Dir,
			Fset:       fset,
			Files:      syntax,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// ModuleDir locates the enclosing module root of dir (the directory holding
// go.mod), falling back to dir itself.
func ModuleDir(dir string) string {
	d := dir
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}
