// Package analysistest runs an analyzer over seeded testdata packages and
// checks its diagnostics against `// want` annotations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	s.Send(ctx, t)
//	t.Speed = 0 // want `tuple .* mutated after .*Send`
//
// Each quoted or backquoted string after `want` is a regular expression that
// must match the message of one diagnostic reported on that line; lines
// without annotations must produce no diagnostics. Testdata packages import
// the real genealog packages — dependencies are type-checked from compiler
// export data produced once per test binary by `go list -deps -export` at
// the module root — so positive cases exercise exactly the API surface the
// analyzers match against.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"genealog/internal/lint/analysis"
	"genealog/internal/lint/load"
)

var (
	exportOnce sync.Once
	exportMap  map[string]string
	exportErr  error
)

// exports builds (once per test binary) the export-data map covering the
// whole module and the standard-library packages testdata may import.
func exports() (map[string]string, error) {
	exportOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			exportErr = err
			return
		}
		exportMap, exportErr = load.ExportMap(load.ModuleDir(wd),
			"./...", "fmt", "context", "errors", "strconv", "strings", "sort")
	})
	return exportMap, exportErr
}

// expectation is one `// want` annotation.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run applies a to each named package under testdata and reports any
// mismatch between its diagnostics and the packages' // want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	exp, err := exports()
	if err != nil {
		t.Fatalf("building export data: %v", err)
	}
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			t.Fatalf("%s: no Go files", dir)
		}
		fset := token.NewFileSet()
		syntax, tpkg, info, err := load.Check(fset, pkg, files, load.Importer(fset, exp), "")
		if err != nil {
			t.Fatalf("type-checking %s: %v", dir, err)
		}

		var wants []*expectation
		for _, f := range syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					ws, err := parseWants(c.Text)
					if err != nil {
						t.Fatalf("%s: %v", fset.Position(c.Pos()), err)
					}
					for _, rx := range ws {
						posn := fset.Position(c.Pos())
						wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, rx: rx})
					}
				}
			}
		}

		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     syntax,
			Pkg:       tpkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s on %s: %v", a.Name, pkg, err)
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

		for _, d := range diags {
			posn := fset.Position(d.Pos)
			found := false
			for _, w := range wants {
				if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.rx.MatchString(d.Message) {
					w.matched = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
			}
		}
	}
}

// parseWants extracts the regexps of a `// want "rx" `+"`rx`"+` ...`
// comment, or nil when the comment carries no annotation.
func parseWants(comment string) ([]*regexp.Regexp, error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "want ") && text != "want" {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	var out []*regexp.Regexp
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("want: unterminated %q", rest)
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("want: %v in %q", err, rest)
			}
			lit, rest = s, strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("want: unterminated %q", rest)
			}
			lit, rest = rest[1:end+1], strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("want: expected string literal, got %q", rest)
		}
		rx, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("want: bad regexp %q: %v", lit, err)
		}
		out = append(out, rx)
	}
	return out, nil
}
