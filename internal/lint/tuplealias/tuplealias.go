// Package tuplealias flags writes to a tuple after the tuple has been
// shared: passed to ops.Stream.Send, or captured into another tuple's
// contribution graph by an instrumenter hook or a core.Meta link setter.
//
// GeneaLog's whole low-overhead claim rests on aliasing discipline (paper
// §4): provenance is carried by sharing the *identical* tuple objects —
// across batches, fused chains, columnar meta columns and the provenance
// store — instead of copying annotations. The moment a producer mutates a
// tuple it has already sent (or linked as a contributor), every downstream
// contribution graph that pins the object silently changes under the
// traverser, a corruption only the expensive end-to-end equivalence grids
// can catch, after the fact. The zero-copy batch and ColBatch paths make
// this class of bug catastrophic, so it is checked at vet time.
//
// The analysis is per-function and order-based: within each function body it
// tracks, per access path (t, rec.Orig, ...), the first point the value is
// sent or captured, and reports any later write into the value — a field
// assignment, or a call to one of core.Meta's setters (directly, through an
// embedded core.Base, or via core.MetaOf). Assigning a new value to the
// variable itself ends tracking, since the path no longer holds the shared
// object. Branch bodies are analyzed under a copy of the state and do not
// leak freezes past their join point, so the checker under-approximates
// (it misses cross-iteration aliasing) but does not cry wolf.
package tuplealias

import (
	"go/ast"
	"go/token"
	"go/types"

	"genealog/internal/lint/analysis"
	"genealog/internal/lint/analysisutil"
)

const (
	opsPath      = "genealog/internal/ops"
	corePath     = "genealog/internal/core"
	baselinePath = "genealog/internal/baseline"
)

// metaSetters are the core.Meta methods that write provenance or payload
// metadata; calling one on a tuple that was already shared is a mutation.
var metaSetters = map[string]bool{
	"SetTimestamp": true, "SetStimulus": true, "MergeStimulus": true,
	"SetKind": true, "SetU1": true, "SetU2": true, "SetNext": true,
	"SetID": true, "SetAnnotation": true, "ResetProvenance": true,
}

// captures maps an instrumenter hook to the indices of the arguments it
// links into a contribution graph (the tuples that become some other
// tuple's U1/U2/N and must be immutable from then on). The hook's output
// tuple is not frozen — operators may keep filling its payload until they
// send it.
var captures = map[string][]int{
	"OnMap":           {1},
	"OnMultiplex":     {1},
	"OnJoin":          {1, 2},
	"OnAggregateLink": {0, 1},
}

var Analyzer = &analysis.Analyzer{
	Name: "tuplealias",
	Doc: "flags writes to a tuple after it was sent or captured into a contribution graph\n\n" +
		"Sent tuples are shared by identity with downstream operators, batches and\n" +
		"contribution graphs; mutating one corrupts provenance silently.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pkg := pass.Pkg.Path()
	if pkg != opsPath && pkg != corePath &&
		!analysisutil.Imports(pass.Pkg, opsPath) && !analysisutil.Imports(pass.Pkg, corePath) {
		return nil, nil
	}
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.walkStmts(n.Body.List, make(state))
				}
			case *ast.FuncLit:
				c.walkStmts(n.Body.List, make(state))
			}
			return true
		})
	}
	return nil, nil
}

// key identifies a tracked value: a root variable plus the access path that
// reaches the tuple (e.g. rec + ".Orig").
type key struct {
	root types.Object
	path string
}

// event records how and where a value became shared. linkOnly marks a
// freeze by a Meta link setter: a later SetNext on such a tuple is chain
// continuation (u1 -> next -> next is built front to back), not mutation.
type event struct {
	pos      token.Pos
	verb     string
	linkOnly bool
}

type state map[key]*event

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type checker struct {
	pass *analysis.Pass
}

func (c *checker) walkStmts(stmts []ast.Stmt, st state) {
	for _, s := range stmts {
		c.walkStmt(s, st)
	}
}

func (c *checker) walkStmt(stmt ast.Stmt, st state) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c.checkExpr(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkExpr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			c.checkWrite(lhs, st)
		}
	case *ast.IncDecStmt:
		c.checkWrite(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkExpr(r, st)
		}
	case *ast.DeferStmt:
		c.checkExpr(s.Call, st)
	case *ast.GoStmt:
		c.checkExpr(s.Call, st)
	case *ast.SendStmt:
		c.checkExpr(s.Value, st)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		c.checkExpr(s.Cond, st)
		c.walkStmts(s.Body.List, st.clone())
		if s.Else != nil {
			c.walkStmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, st)
		}
		body := st.clone()
		c.walkStmts(s.Body.List, body)
		if s.Post != nil {
			c.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		c.checkExpr(s.X, st)
		body := st.clone()
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e != nil {
				if root, path := analysisutil.Path(c.pass.TypesInfo, e); root != nil {
					kill(body, key{root, path})
				}
			}
		}
		c.walkStmts(s.Body.List, body)
	case *ast.BlockStmt:
		c.walkStmts(s.List, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, st)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(clause.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(clause.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				branch := st.clone()
				if clause.Comm != nil {
					c.walkStmt(clause.Comm, branch)
				}
				c.walkStmts(clause.Body, branch)
			}
		}
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, st)
	}
}

// checkWrite handles one assignment target: a plain variable (or a path
// that is itself frozen) ends tracking for everything it held, while a
// write that reaches *into* a frozen value is a violation.
func (c *checker) checkWrite(lhs ast.Expr, st state) {
	root, path := analysisutil.Path(c.pass.TypesInfo, lhs)
	if root == nil {
		return
	}
	for k, ev := range st {
		if k.root != root {
			continue
		}
		if analysisutil.HasPrefix(k.path, path) {
			// The written location holds (or contains) the tracked value:
			// the path no longer refers to the shared object.
			delete(st, k)
			continue
		}
		if analysisutil.HasPrefix(path, k.path) {
			c.pass.Reportf(lhs.Pos(), "tuple %s%s is written after it was %s (shared by identity with downstream contribution graphs; copy it or finish it before sharing)",
				root.Name(), k.path, ev.verb)
		}
	}
}

// checkExpr scans an expression for sends, captures and setter-call
// mutations. Function literals are skipped: they run at another time and
// are analyzed as their own scope.
func (c *checker) checkExpr(e ast.Expr, st state) {
	info := c.pass.TypesInfo
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysisutil.Callee(info, call)
		if fn == nil {
			return true
		}
		name := fn.Name()
		recv := analysisutil.Receiver(fn)
		recvPkg := ""
		if recv != nil && recv.Obj().Pkg() != nil {
			recvPkg = recv.Obj().Pkg().Path()
		}

		// ops.Stream.Send(ctx, t): t is now shared downstream.
		if recvPkg == opsPath && recv.Obj().Name() == "Stream" && name == "Send" && len(call.Args) == 2 {
			c.freeze(call.Args[1], st, "sent downstream by Stream.Send", false)
		}

		// Instrumenter hooks: contributor arguments are linked into another
		// tuple's contribution graph.
		if idx, ok := captures[name]; ok && (recvPkg == corePath || recvPkg == baselinePath) {
			for _, i := range idx {
				if i < len(call.Args) {
					c.freeze(call.Args[i], st, "captured into a contribution graph by "+name, false)
				}
			}
		}

		// core.Meta link setters: the argument becomes this tuple's
		// U1/U2/N; the receiver, if already shared, is being mutated. The
		// receiver is checked before the argument freezes so a chain link
		// a.SetNext(b) with a collapsed index path (win[], win[]) does not
		// flag itself.
		if recvPkg == corePath && (recv.Obj().Name() == "Meta" || recv.Obj().Name() == "Base") {
			if metaSetters[name] {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					c.checkMutatingCall(sel.X, name, call.Pos(), st)
				}
			}
			if name == "SetU1" || name == "SetU2" || name == "SetNext" {
				if len(call.Args) == 1 {
					c.freeze(call.Args[0], st, "linked as a provenance contributor by "+name, true)
				}
			}
		}
		return true
	})
}

// checkMutatingCall reports a setter invoked on (or within) a frozen value.
// SetNext on a tuple frozen only by a link setter is allowed: contribution
// chains are built front to back, each contributor's next pointer written
// once after the tuple is linked.
func (c *checker) checkMutatingCall(recvExpr ast.Expr, method string, pos token.Pos, st state) {
	root, path := analysisutil.Path(c.pass.TypesInfo, recvExpr)
	if root == nil {
		return
	}
	for k, ev := range st {
		if method == "SetNext" && ev.linkOnly {
			continue
		}
		if k.root == root && analysisutil.HasPrefix(path, k.path) {
			c.pass.Reportf(pos, "%s called on tuple %s%s after it was %s (shared by identity with downstream contribution graphs; provenance metadata is written exactly once, before sharing)",
				method, root.Name(), k.path, ev.verb)
		}
	}
}

// freeze starts tracking the value held at the argument's access path.
func (c *checker) freeze(arg ast.Expr, st state, verb string, linkOnly bool) {
	root, path := analysisutil.Path(c.pass.TypesInfo, arg)
	if root == nil {
		return
	}
	k := key{root, path}
	if ev, ok := st[k]; ok {
		if !linkOnly {
			ev.linkOnly = false // a stronger freeze revokes the chain allowance
		}
		return
	}
	st[k] = &event{pos: arg.Pos(), verb: verb, linkOnly: linkOnly}
}

// kill removes k and every tracked path it contains.
func kill(st state, k key) {
	for kk := range st {
		if kk.root == k.root && analysisutil.HasPrefix(kk.path, k.path) {
			delete(st, kk)
		}
	}
}
