package tuplealias_test

import (
	"testing"

	"genealog/internal/lint/analysistest"
	"genealog/internal/lint/tuplealias"
)

func TestTupleAlias(t *testing.T) {
	analysistest.Run(t, "testdata", tuplealias.Analyzer, "a")
}
