// Seeded cases for the tuplealias analyzer: each `want` line is a positive
// case (the analyzer must report there), every other line is a negative
// case (reporting there fails the test).
package a

import (
	"context"

	"genealog/internal/core"
	"genealog/internal/ops"
)

type rec struct {
	core.Base
	Speed int64
}

func writeAfterSend(ctx context.Context, s *ops.Stream, t *rec) {
	_ = s.Send(ctx, t)
	t.Speed = 1 // want `tuple t is written after it was sent downstream by Stream.Send`
}

func setterAfterSend(ctx context.Context, s *ops.Stream, t *rec) {
	_ = s.Send(ctx, t)
	t.SetKind(core.KindMap) // want `SetKind called on tuple t after it was sent downstream by Stream.Send`
}

func metaOfAfterSend(ctx context.Context, s *ops.Stream, t *rec) {
	_ = s.Send(ctx, t)
	core.MetaOf(t).SetStimulus(9) // want `SetStimulus called on tuple t after it was sent downstream by Stream.Send`
}

func writeAfterCapture(g *core.Genealog, out, in *rec) {
	g.OnMap(out, in)
	in.Speed = 2  // want `tuple in is written after it was captured into a contribution graph by OnMap`
	out.Speed = 3 // the output tuple stays mutable until it is sent
}

func writeAfterJoinCapture(g *core.Genealog, out, newer, older *rec) {
	g.OnJoin(out, newer, older)
	older.Speed = 4 // want `tuple older is written after it was captured into a contribution graph by OnJoin`
}

func writeAfterLink(out, u *rec) {
	out.SetU1(u)
	u.Speed = 1 // want `tuple u is written after it was linked as a provenance contributor by SetU1`
}

func writeFieldPath(ctx context.Context, s *ops.Stream, pair *struct{ Left, Right *rec }) {
	_ = s.Send(ctx, pair.Left)
	pair.Left.Speed = 1  // want `tuple pair.Left is written after it was sent downstream by Stream.Send`
	pair.Right.Speed = 2 // a sibling path is untouched by the freeze
}

func writeBeforeSend(ctx context.Context, s *ops.Stream, t *rec) {
	t.Speed = 1
	t.SetKind(core.KindSource)
	_ = s.Send(ctx, t)
}

func reassignedAfterSend(ctx context.Context, s *ops.Stream, t *rec) {
	_ = s.Send(ctx, t)
	t = &rec{Base: core.NewBase(1)}
	t.Speed = 1 // a fresh object, not the sent one
}

func branchSend(ctx context.Context, s *ops.Stream, t *rec, done bool) {
	if done {
		_ = s.Send(ctx, t)
		return
	}
	t.Speed = 4 // not sent on this path
}

func chainBuild(out, a, b *rec) {
	out.SetU1(a)
	a.SetNext(b) // chain continuation: contributors link front to back
	b.SetNext(nil)
}
