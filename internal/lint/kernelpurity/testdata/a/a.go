// Seeded cases for the kernelpurity analyzer.
package a

import (
	"context"

	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
)

var schema = &ops.ColSchema{Fields: []ops.ColField{{
	Name: "v", Kind: ops.ColInt64,
	Int: func(t core.Tuple) int64 { return t.Timestamp() },
}}}

var calls int64

var badField = ops.ColField{
	Name: "c", Kind: ops.ColInt64,
	Int: func(t core.Tuple) int64 {
		calls++ // want `columnar kernel writes non-local state calls`
		return 0
	},
}

var leaked []int64

func impureFilter(c *ops.ColBatch, sel []int, dst []int) []int {
	xs := c.Int64s(0)
	leaked = xs // want `columnar kernel writes non-local state leaked`
	for _, i := range sel {
		xs[i] = 0 // want `columnar kernel writes into the column returned by Int64s`
		if xs[i] > 0 {
			dst = append(dst, i)
		}
	}
	c.Rows[0] = nil // want `columnar kernel mutates its ColBatch \(c.Rows\[\]\)`
	return dst
}

var badSpec = query.ColSpec{Schema: schema, Filter: impureFilter}

// A second binding of an already-analyzed kernel must not duplicate reports.
var converted = ops.FilterKernel(impureFilter)

func retainingMap(c *ops.ColBatch, sel []int, dst []core.Tuple) []core.Tuple {
	return c.Rows // want `columnar kernel returns the batch-owned slice c.Rows`
}

var badMapSpec = query.ColSpec{Schema: schema, Map: retainingMap}

func chattyStage(s *ops.Stream) ops.ColStage {
	return ops.ColStage{
		Name: "chatty", Kind: ops.StageFilter, Schema: schema,
		Filter: func(c *ops.ColBatch, sel []int, dst []int) []int {
			go func() {}()              // want `columnar kernel starts a goroutine`
			_ = s.Flush(context.TODO()) // want `columnar kernel calls Stream.Flush`
			return dst
		},
	}
}

func pureFilter(c *ops.ColBatch, sel []int, dst []int) []int {
	xs := c.Timestamps()
	for _, i := range sel {
		if xs[i] > 0 {
			dst = append(dst, i)
		}
	}
	return dst
}

var goodSpec = query.ColSpec{Schema: schema, Filter: pureFilter}

func identityMap(c *ops.ColBatch, sel []int, dst []core.Tuple) []core.Tuple {
	return nil // identity: every selected row maps to itself
}

var goodMapSpec = query.ColSpec{Schema: schema, Map: identityMap}

// unbound looks impure but is never bound as a kernel: out of scope.
func unbound(c *ops.ColBatch, sel []int, dst []int) []int {
	leaked = c.Int64s(0)
	return dst
}

// Stateful kernels: fold and probe kernels receive a ColSeg whose columns
// are window state recycled as windows slide — same ownership rules.

var winLeaked []int64

func impureFold(seg *ops.ColSeg, start, end int64, key string) core.Tuple {
	winLeaked = seg.Int64s(0) // want `columnar kernel writes non-local state winLeaked`
	seg.Int64s(0)[0] = 9      // want `columnar kernel writes into the column returned by Int64s`
	return nil
}

var badAggSpec = query.AggColSpec{Schema: schema, Fold: impureFold}

func impureProbe(t core.Tuple, cand *ops.ColSeg, sel []int, dst []int) []int {
	rows := cand.Rows()
	rows[0] = nil // want `columnar kernel writes into the column returned by Rows`
	return dst
}

var badJoinSpec = query.JoinColSpec{ResidualL: impureProbe, ResidualR: impureProbe}

func pureFold(seg *ops.ColSeg, start, end int64, key string) core.Tuple {
	var sum int64
	for _, v := range seg.Int64s(0) {
		sum += v
	}
	_ = sum
	return nil
}

var goodAggSpec = ops.AggColSpec{Schema: schema, Fold: pureFold}
