// Package kernelpurity enforces the purity contract on columnar kernels —
// the functions bound as query.ColSpec / ops.ColStage stage funcs
// (FilterKernel, MapKernel, KeyKernel), ops.ColKey kernels, ColField
// extractors, and the stateful kernels bound in AggColSpec (Key, Fold) and
// JoinColSpec (LeftKey, RightKey, ResidualL, ResidualR).
//
// The vectorized runtime makes three assumptions a kernel must not break:
//
//   - ColBatch column slices are views over backing arrays the runtime
//     reuses from run to run, and the lazy fill only covers the live
//     positions — a kernel that writes into a column, mutates the Rows meta
//     column, returns a batch-owned slice, or stashes one in captured or
//     package-level state observes garbage on the next run (or corrupts the
//     tuples every downstream contribution graph pins by identity); ColSeg
//     columns (fold and probe kernels) are views over window state recycled
//     as windows slide, with the same rules;
//   - kernels run inside the operator loop, possibly on several shard lanes
//     at once over shared schemas — writing non-local state is a data race;
//   - kernels compute, operators communicate — a kernel that performs
//     stream I/O or spawns goroutines breaks the fusion and elision the
//     typed-kernel form exists to enable (an identity MapKernel returns nil
//     precisely so the runtime can skip it; it cannot skip side effects).
//
// Kernels are discovered statically: function literals or same-package
// functions bound in ColSpec/ColStage/ColKey/ColField composite literals or
// converted to the named kernel types.
package kernelpurity

import (
	"go/ast"
	"go/types"

	"genealog/internal/lint/analysis"
	"genealog/internal/lint/analysisutil"
)

const (
	opsPath   = "genealog/internal/ops"
	queryPath = "genealog/internal/query"
)

// kernelFields maps a declaring struct to the fields that hold kernels.
var kernelFields = map[string]map[string]bool{
	"ColSpec":  {"Filter": true, "Map": true, "Key": true},
	"ColStage": {"Filter": true, "Map": true},
	"ColKey":   {"Kernel": true},
	"ColField": {"Int": true, "Float": true, "Str": true},
	// Stateful binding sites: ops.AggColSpec/query.AggColSpec and
	// ops.JoinColSpec/query.JoinColSpec share field names, so one entry
	// covers both levels (fields a level lacks simply never match).
	"AggColSpec":  {"Key": true, "Fold": true},
	"JoinColSpec": {"LeftKey": true, "RightKey": true, "ResidualL": true, "ResidualR": true},
}

// kernelTypes are the named kernel types a conversion can bind a function to.
var kernelTypes = map[string]bool{
	"FilterKernel": true, "MapKernel": true, "KeyKernel": true,
	"AggKernel": true, "ProbeKernel": true,
}

// accessors are the ColBatch/ColSeg methods returning runtime-owned column
// slices. Rows is a field on ColBatch (caught by the path check) but a method
// on ColSeg.
var accessors = map[string]bool{"Rows": true, "Timestamps": true, "Int64s": true, "Float64s": true, "Strings": true}

// streamMethods are the ops.Stream methods a kernel must never call.
var streamMethods = map[string]bool{
	"Send": true, "SendRun": true, "SendGather": true, "Flush": true,
	"Recv": true, "RecvBatch": true, "CanRecv": true, "CloseSend": true, "Close": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "kernelpurity",
	Doc: "flags columnar kernels that write shared state, perform stream I/O, mutate or retain their ColBatch's columns\n\n" +
		"Column slices are reused across runs and lanes; an impure kernel races,\n" +
		"observes garbage, or corrupts tuples shared by identity downstream.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pkg := pass.Pkg.Path()
	if pkg != opsPath && pkg != queryPath &&
		!analysisutil.Imports(pass.Pkg, opsPath) && !analysisutil.Imports(pass.Pkg, queryPath) {
		return nil, nil
	}
	c := &checker{pass: pass, decls: make(map[*types.Func]*ast.FuncDecl), seen: make(map[ast.Node]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if decl, ok := n.(*ast.FuncDecl); ok && decl.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
					c.decls[fn] = decl
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				c.checkLiteral(n)
			case *ast.CallExpr:
				c.checkConversion(n)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	seen  map[ast.Node]bool
}

// checkLiteral picks kernel-valued fields out of ColSpec/ColStage/ColKey/
// ColField composite literals.
func (c *checker) checkLiteral(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	declPkg := named.Obj().Pkg().Path()
	if declPkg != opsPath && declPkg != queryPath {
		return
	}
	fields, ok := kernelFields[named.Obj().Name()]
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		name, ok := kv.Key.(*ast.Ident)
		if !ok || !fields[name.Name] {
			continue
		}
		c.checkKernelExpr(kv.Value)
	}
}

// checkConversion catches ops.FilterKernel(f)-style bindings.
func (c *checker) checkConversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != opsPath || !kernelTypes[named.Obj().Name()] {
		return
	}
	c.checkKernelExpr(call.Args[0])
}

// checkKernelExpr resolves a kernel-valued expression to its function body
// (a literal, or a function declared in this package) and analyzes it.
func (c *checker) checkKernelExpr(e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if !c.seen[e] {
			c.seen[e] = true
			c.checkKernel(e, e.Type, e.Body)
		}
	case *ast.Ident, *ast.SelectorExpr:
		fn := analysisutil.Callee(c.pass.TypesInfo, &ast.CallExpr{Fun: e})
		if fn == nil {
			return
		}
		if decl, ok := c.decls[fn]; ok && !c.seen[decl] {
			c.seen[decl] = true
			c.checkKernel(decl, decl.Type, decl.Body)
		}
	}
}

// checkKernel applies the purity checks to one kernel function.
func (c *checker) checkKernel(fnNode ast.Node, ftype *ast.FuncType, body *ast.BlockStmt) {
	info := c.pass.TypesInfo

	// The ColBatch or ColSeg parameter, if the kernel has one (extractors do
	// not; fold and probe kernels receive a window segment instead of a
	// batch, with identical ownership rules).
	var batch types.Object
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && (analysisutil.IsNamedType(obj.Type(), opsPath, "ColBatch") ||
					analysisutil.IsNamedType(obj.Type(), opsPath, "ColSeg")) {
					batch = obj
				}
			}
		}
	}

	// Pass 1: collect locals aliasing batch-owned slices (column accessor
	// results, or anything reached from the batch parameter).
	colAliases := make(map[types.Object]string) // -> description
	if batch != nil {
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range assign.Rhs {
				if i >= len(assign.Lhs) {
					break
				}
				lhs, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[lhs]
				if obj == nil {
					obj = info.Uses[lhs]
				}
				if obj == nil {
					continue
				}
				if desc := c.batchOwned(rhs, batch, colAliases); desc != "" {
					colAliases[obj] = desc
				} else {
					delete(colAliases, obj) // reassigned to something else
				}
			}
			return true
		})
	}

	// Pass 2: the checks proper.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "columnar kernel starts a goroutine: kernels run synchronously inside the operator loop over reused batch storage")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkKernelWrite(fnNode, lhs, batch, colAliases)
			}
		case *ast.IncDecStmt:
			c.checkKernelWrite(fnNode, n.X, batch, colAliases)
		case *ast.CallExpr:
			fn := analysisutil.Callee(info, n)
			if fn != nil {
				if recv := analysisutil.Receiver(fn); recv != nil && recv.Obj().Pkg() != nil &&
					recv.Obj().Pkg().Path() == opsPath && recv.Obj().Name() == "Stream" && streamMethods[fn.Name()] {
					c.pass.Reportf(n.Pos(), "columnar kernel calls Stream.%s: kernels compute, operators communicate (stream I/O in a kernel defeats fusion and identity elision)", fn.Name())
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if batch == nil {
					continue
				}
				if desc := c.batchOwned(r, batch, colAliases); desc != "" {
					c.pass.Reportf(r.Pos(), "columnar kernel returns %s: the backing array is reused on the next run — append the output into dst instead", desc)
				}
			}
		}
		return true
	})
}

// checkKernelWrite flags writes to non-local state, into the ColBatch, or
// into a batch-owned slice alias.
func (c *checker) checkKernelWrite(fnNode ast.Node, lhs ast.Expr, batch types.Object, colAliases map[types.Object]string) {
	root, path := analysisutil.Path(c.pass.TypesInfo, lhs)
	if root == nil {
		// Direct write through an accessor result: c.Int64s(f)[i] = v.
		if batch != nil {
			if desc := c.accessorWrite(lhs, batch); desc != "" {
				c.pass.Reportf(lhs.Pos(), "columnar kernel writes into %s: column slices are lazily-filled views over reused storage shared with later stages", desc)
			}
		}
		return
	}
	if root == batch && path != "" {
		c.pass.Reportf(lhs.Pos(), "columnar kernel mutates its ColBatch (%s%s): the Rows meta column and the lazy-fill bookkeeping are owned by the runtime", root.Name(), path)
		return
	}
	if desc, ok := colAliases[root]; ok && path != "" {
		c.pass.Reportf(lhs.Pos(), "columnar kernel writes into %s (via %s): column slices are lazily-filled views over reused storage shared with later stages", desc, root.Name())
		return
	}
	if root.Parent() == nil {
		return // a field path rooted elsewhere; fnPos check below needs a scoped var
	}
	if root.Pos() < fnNode.Pos() || root.Pos() > fnNode.End() {
		c.pass.Reportf(lhs.Pos(), "columnar kernel writes non-local state %s%s: kernels may run concurrently across shard lanes and must be pure", root.Name(), path)
	}
}

// batchOwned describes e if it evaluates to a batch-owned slice: a column
// accessor call on the batch, a path into the batch (c.Rows), or a tracked
// alias. Returns "" otherwise.
func (c *checker) batchOwned(e ast.Expr, batch types.Object, colAliases map[types.Object]string) string {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if desc := c.accessorCall(call, batch); desc != "" {
			return desc
		}
		return ""
	}
	if root, path := analysisutil.Path(c.pass.TypesInfo, e); root != nil {
		if root == batch && path != "" {
			return "the batch-owned slice " + root.Name() + path
		}
		if desc, ok := colAliases[root]; ok {
			return desc
		}
	}
	return ""
}

// accessorCall describes call if it is a ColBatch or ColSeg column accessor
// on batch.
func (c *checker) accessorCall(call *ast.CallExpr, batch types.Object) string {
	fn := analysisutil.Callee(c.pass.TypesInfo, call)
	if fn == nil || !accessors[fn.Name()] {
		return ""
	}
	recv := analysisutil.Receiver(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != opsPath ||
		(recv.Obj().Name() != "ColBatch" && recv.Obj().Name() != "ColSeg") {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if root, _ := analysisutil.Path(c.pass.TypesInfo, sel.X); root != batch {
		return ""
	}
	return "the column returned by " + fn.Name()
}

// accessorWrite descends an lvalue (index/selector chains) looking for a
// column accessor call at its base.
func (c *checker) accessorWrite(lhs ast.Expr, batch types.Object) string {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.CallExpr:
			return c.accessorCall(e, batch)
		default:
			return ""
		}
	}
}
