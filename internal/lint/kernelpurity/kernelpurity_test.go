package kernelpurity_test

import (
	"testing"

	"genealog/internal/lint/analysistest"
	"genealog/internal/lint/kernelpurity"
)

func TestKernelPurity(t *testing.T) {
	analysistest.Run(t, "testdata", kernelpurity.Analyzer, "a")
}
