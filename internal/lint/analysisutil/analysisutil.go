// Package analysisutil holds the type- and AST-resolution helpers the
// genealog-lint analyzers share: resolving a call's static callee, matching
// methods by (package, receiver, name), and canonicalising the access path
// of an expression so flow-sensitive checks can track "the tuple held in
// rec.Orig" rather than whole variables.
package analysisutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee returns the static callee of call as a *types.Func, or nil when the
// callee is not statically known (a call through a function-typed variable,
// a conversion, a builtin).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			// Package-qualified call: pkg.Fn(...).
			obj = info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// Receiver returns the named type of fn's receiver with pointers stripped,
// or nil for plain functions.
func Receiver(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsMethod reports whether fn is a method named name whose receiver's named
// type is pkgPath.typeName (pointer receivers match too). An interface
// method matches when the interface itself is the named type.
func IsMethod(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	named := Receiver(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName
}

// IsNamedType reports whether t (pointers stripped) is the named type
// pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// Imports reports whether pkg directly imports path — the cheap bail-out
// that lets an analyzer skip packages that cannot possibly use the API it
// checks (the vettool runs over every dependency, standard library
// included).
func Imports(pkg *types.Package, path string) bool {
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return true
		}
	}
	return false
}

// Path canonicalises the access path of expr relative to a root variable:
// `t` becomes (obj(t), ""), `rec.Orig` becomes (obj(rec), ".Orig"),
// `c.outs[i]` becomes (obj(c), ".outs[]"). Parentheses and dereferences are
// transparent, and the two provenance-metadata accessors that only change
// the view of the same tuple — core.MetaOf(t) and t.ProvMeta() — are
// followed through, so a write via core.MetaOf(t).SetKind(...) still roots
// at t. The root is nil when the expression does not start at a variable
// (a call result, a literal).
func Path(info *types.Info, expr ast.Expr) (root types.Object, path string) {
	var walk func(e ast.Expr) (types.Object, string, bool)
	walk = func(e ast.Expr) (types.Object, string, bool) {
		switch e := e.(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if _, ok := obj.(*types.Var); !ok {
				return nil, "", false
			}
			return obj, "", true
		case *ast.ParenExpr:
			return walk(e.X)
		case *ast.StarExpr:
			return walk(e.X)
		case *ast.TypeAssertExpr:
			return walk(e.X) // a type assertion views the same object
		case *ast.SelectorExpr:
			if obj, p, ok := walk(e.X); ok {
				return obj, p + "." + e.Sel.Name, true
			}
			return nil, "", false
		case *ast.IndexExpr:
			if obj, p, ok := walk(e.X); ok {
				return obj, p + "[]", true
			}
			return nil, "", false
		case *ast.SliceExpr:
			if obj, p, ok := walk(e.X); ok {
				return obj, p, true // reslicing views the same backing array
			}
			return nil, "", false
		case *ast.CallExpr:
			// Follow the meta-view accessors through to the tuple.
			fn := Callee(info, e)
			if fn == nil {
				return nil, "", false
			}
			if fn.Name() == "MetaOf" && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/core") && len(e.Args) == 1 {
				return walk(e.Args[0])
			}
			if fn.Name() == "ProvMeta" {
				if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
					return walk(sel.X)
				}
			}
			return nil, "", false
		default:
			return nil, "", false
		}
	}
	obj, p, ok := walk(expr)
	if !ok {
		return nil, ""
	}
	return obj, p
}

// HasPrefix reports whether access path q reaches into (or is exactly) the
// value at path p on the same root: p == q, or q extends p by a selector or
// index step.
func HasPrefix(q, p string) bool {
	if !strings.HasPrefix(q, p) {
		return false
	}
	rest := q[len(p):]
	return rest == "" || rest[0] == '.' || rest[0] == '['
}
