package lint

import (
	"genealog/internal/lint/analysis"
	"genealog/internal/lint/colkind"
	"genealog/internal/lint/kernelpurity"
	"genealog/internal/lint/provcheck"
	"genealog/internal/lint/streamproto"
	"genealog/internal/lint/tuplealias"
)

// All returns every registered analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		colkind.Analyzer,
		kernelpurity.Analyzer,
		provcheck.Analyzer,
		streamproto.Analyzer,
		tuplealias.Analyzer,
	}
}
