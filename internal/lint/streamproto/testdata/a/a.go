// Seeded cases for the streamproto analyzer.
package a

import (
	"context"

	"genealog/internal/core"
	"genealog/internal/ops"
)

func sendAfterClose(ctx context.Context, s *ops.Stream, t core.Tuple) {
	s.CloseSend(ctx)
	_ = s.Send(ctx, t) // want `Send on stream s after CloseSend`
}

func flushAfterClose(ctx context.Context, s *ops.Stream) {
	s.CloseSend(ctx)
	_ = s.Flush(ctx) // want `Flush on stream s after CloseSend`
}

func doubleClose(ctx context.Context, s *ops.Stream) {
	s.CloseSend(ctx)
	s.CloseSend(ctx) // want `stream s closed twice`
}

func branchClose(ctx context.Context, s *ops.Stream, t core.Tuple, done bool) {
	if done {
		s.CloseSend(ctx)
		return
	}
	_ = s.Send(ctx, t) // the closing branch returned; this path never closed
}

func reassignedStream(ctx context.Context, s *ops.Stream, t core.Tuple, next *ops.Stream) {
	s.CloseSend(ctx)
	s = next
	_ = s.Send(ctx, t) // a different stream now
}

// badOp sends on its output but returns without closing it on two paths.
type badOp struct {
	in, out *ops.Stream
}

func (o *badOp) Name() string { return "bad" }

func (o *badOp) Run(ctx context.Context) error {
	for {
		t, ok, err := o.in.Recv(ctx)
		if err != nil {
			return err // want `Run returns without closing produced stream\(s\) o.out`
		}
		if !ok {
			o.out.CloseSend(ctx)
			return nil
		}
		if err := o.out.Send(ctx, t); err != nil {
			return err // want `Run returns without closing produced stream\(s\) o.out`
		}
	}
}

// goodOp closes by defer, records heartbeat time before dropping, and
// forwards data tuples.
type goodOp struct {
	in, out *ops.Stream
}

func (o *goodOp) Name() string { return "good" }

func (o *goodOp) Run(ctx context.Context) error {
	defer o.out.CloseSend(ctx)
	var wm int64
	for {
		t, ok, err := o.in.Recv(ctx)
		if err != nil || !ok {
			return err
		}
		if ts := t.Timestamp(); ts > wm {
			wm = ts
		}
		if core.IsHeartbeat(t) {
			continue // folded into wm, re-broadcast elsewhere
		}
		if err := o.out.Send(ctx, t); err != nil {
			return err
		}
	}
}

// dropOp discards heartbeats without observing their timestamp.
type dropOp struct {
	in, out *ops.Stream
}

func (o *dropOp) Name() string { return "drop" }

func (o *dropOp) Run(ctx context.Context) error {
	defer o.out.CloseSend(ctx)
	for {
		t, ok, err := o.in.Recv(ctx)
		if err != nil || !ok {
			return err
		}
		if core.IsHeartbeat(t) { // want `heartbeat silently dropped`
			continue
		}
		if err := o.out.Send(ctx, t); err != nil {
			return err
		}
	}
}
