package streamproto_test

import (
	"testing"

	"genealog/internal/lint/analysistest"
	"genealog/internal/lint/streamproto"
)

func TestStreamProto(t *testing.T) {
	analysistest.Run(t, "testdata", streamproto.Analyzer, "a")
}
