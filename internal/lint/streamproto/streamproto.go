// Package streamproto enforces the ops.Stream producer protocol:
//
//  1. no Send/SendRun/SendGather/Flush on a stream after CloseSend (and no
//     double close) — CloseSend flushes and closes the underlying channel,
//     so a later producer call panics or silently drops tuples;
//  2. an Operator's Run method that produces on streams must close them on
//     every return path — the contract on ops.Operator says "Run ...
//     closes every output stream before returning", because a consumer
//     blocked in Recv on an unclosed stream deadlocks the whole query;
//     a deferred CloseSend (or ops.closeAll) covers all paths at once;
//  3. a Recv loop in a producing operator must not silently discard
//     heartbeats: `if core.IsHeartbeat(t) { continue }` with no other
//     statement drops the watermark on the floor, stalling every
//     downstream merge, window close and provenance-retention pass that
//     waits for time to advance. Forward the heartbeat (or record it and
//     re-emit a watermark) before continuing.
//
// Like the other genealog-lint analyzers, the checks are function-local and
// order-based: branch bodies run under a copy of the tracked state, so the
// analyzer under-approximates rather than report spurious violations.
package streamproto

import (
	"go/ast"
	"go/types"
	"strings"

	"genealog/internal/lint/analysis"
	"genealog/internal/lint/analysisutil"
)

const (
	opsPath  = "genealog/internal/ops"
	corePath = "genealog/internal/core"
)

// produceMethods are the Stream methods only a live (unclosed) producer may
// call; sendMethods are the subset that actually delivers tuples.
var (
	produceMethods = map[string]bool{"Send": true, "SendRun": true, "SendGather": true, "Flush": true}
	sendMethods    = map[string]bool{"Send": true, "SendRun": true, "SendGather": true}
	closeMethods   = map[string]bool{"CloseSend": true, "Close": true}
)

var Analyzer = &analysis.Analyzer{
	Name: "streamproto",
	Doc: "enforces the ops.Stream producer protocol: no send after CloseSend, close every output stream on return, never silently drop heartbeats\n\n" +
		"A stream producer that sends after close panics; one that returns without\n" +
		"closing deadlocks its consumer; one that swallows heartbeats stalls every\n" +
		"downstream watermark.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() != opsPath && !analysisutil.Imports(pass.Pkg, opsPath) {
		return nil, nil
	}
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.checkFunc(n.Body)
					if isOperatorRun(pass.TypesInfo, n) {
						c.checkRunCloses(n)
					}
				}
			case *ast.FuncLit:
				c.checkFunc(n.Body)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// streamMethod resolves call to an ops.Stream method name, or "".
func (c *checker) streamMethod(call *ast.CallExpr) (string, ast.Expr) {
	fn := analysisutil.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return "", nil
	}
	recv := analysisutil.Receiver(fn)
	if recv == nil || recv.Obj().Pkg() == nil ||
		recv.Obj().Pkg().Path() != opsPath || recv.Obj().Name() != "Stream" {
		return "", nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	return fn.Name(), sel.X
}

// ---- check 1: use after close (and double close), order-based ----

type key struct {
	root types.Object
	path string
}

type state map[key]bool // closed stream paths

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// checkFunc runs the use-after-close walk and the heartbeat-drop scan over
// one function body (function literals are separate scopes).
func (c *checker) checkFunc(body *ast.BlockStmt) {
	c.walkStmts(body.List, make(state))
	c.checkHeartbeatDrops(body)
}

func (c *checker) walkStmts(stmts []ast.Stmt, st state) {
	for _, s := range stmts {
		c.walkStmt(s, st)
	}
}

func (c *checker) walkStmt(stmt ast.Stmt, st state) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c.checkExpr(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkExpr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			if root, path := analysisutil.Path(c.pass.TypesInfo, lhs); root != nil {
				for k := range st {
					if k.root == root && analysisutil.HasPrefix(k.path, path) {
						delete(st, k) // reassigned: a different stream now
					}
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkExpr(r, st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		c.checkExpr(s.Cond, st)
		c.walkStmts(s.Body.List, st.clone())
		if s.Else != nil {
			c.walkStmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, st)
		}
		body := st.clone()
		c.walkStmts(s.Body.List, body)
		if s.Post != nil {
			c.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		c.checkExpr(s.X, st)
		c.walkStmts(s.Body.List, st.clone())
	case *ast.BlockStmt:
		c.walkStmts(s.List, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, st)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(clause.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(clause.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				branch := st.clone()
				if clause.Comm != nil {
					c.walkStmt(clause.Comm, branch)
				}
				c.walkStmts(clause.Body, branch)
			}
		}
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/asynchronous calls run at another time; the Run-close
		// check accounts for deferred closes.
	}
}

func (c *checker) checkExpr(e ast.Expr, st state) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recvExpr := c.streamMethod(call)
		if name == "" {
			return true
		}
		root, path := analysisutil.Path(c.pass.TypesInfo, recvExpr)
		if root == nil {
			return true
		}
		k := key{root, path}
		switch {
		case closeMethods[name]:
			if st[k] {
				c.pass.Reportf(call.Pos(), "stream %s%s closed twice (CloseSend must be called exactly once, by the single producer)", root.Name(), k.path)
			}
			st[k] = true
		case produceMethods[name]:
			if st[k] {
				c.pass.Reportf(call.Pos(), "%s on stream %s%s after CloseSend (the stream's channel is closed; this panics or drops tuples)", name, root.Name(), k.path)
			}
		}
		return true
	})
}

// ---- check 2: Run must close every produced stream on every return ----

// isOperatorRun reports whether decl is a method Run(context.Context) error
// — the ops.Operator contract shape.
func isOperatorRun(info *types.Info, decl *ast.FuncDecl) bool {
	if decl.Name.Name != "Run" || decl.Recv == nil {
		return false
	}
	fn, ok := info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !analysisutil.IsNamedType(sig.Params().At(0).Type(), "context", "Context") {
		return false
	}
	rt, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && rt.Obj().Name() == "error" && rt.Obj().Pkg() == nil
}

// checkRunCloses verifies that a Run method producing on streams closes
// them before every return. A deferred close (CloseSend/Close on a stream,
// or any deferred call whose name contains "close", like ops.closeAll)
// covers every path; otherwise each return statement must be preceded, in
// straight-line order, by closes covering every stream the method sends on
// anywhere — the output streams exist for the whole run, so even an early
// error return leaves a consumer blocked if they stay open.
func (c *checker) checkRunCloses(decl *ast.FuncDecl) {
	info := c.pass.TypesInfo

	// Gather produced streams and whether any defer closes (outside nested
	// function literals, which are their own producers).
	produced := make(map[key]string) // -> rendered name
	deferredClose := false
	var inspectBody func(n ast.Node) bool
	inspectBody = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if deferCloses(info, n.Call) {
				deferredClose = true
			}
			return false
		case *ast.CallExpr:
			if name, recvExpr := c.streamMethod(n); sendMethods[name] {
				if root, path := analysisutil.Path(info, recvExpr); root != nil {
					produced[key{root, path}] = root.Name() + path
				}
			}
		}
		return true
	}
	ast.Inspect(decl.Body, inspectBody)
	if len(produced) == 0 || deferredClose {
		return
	}

	// No deferred close: walk the body, tracking closes seen so far, and
	// report returns that leave a produced stream open.
	closed := make(state)
	var walk func(stmts []ast.Stmt, closed state)
	walkStmt := func(stmt ast.Stmt, closed state) {}
	walk = func(stmts []ast.Stmt, closed state) {
		for _, s := range stmts {
			walkStmt(s, closed)
		}
	}
	walkStmt = func(stmt ast.Stmt, closed state) {
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			var open []string
			for k, name := range produced {
				if !closed[k] {
					open = append(open, name)
				}
			}
			if len(open) > 0 {
				c.pass.Reportf(s.Pos(), "Run returns without closing produced stream(s) %s; the consumer blocks in Recv forever (defer CloseSend, or close on every path)",
					strings.Join(sortedUnique(open), ", "))
			}
		case *ast.ExprStmt:
			markCloses(c, s.X, closed)
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				markCloses(c, rhs, closed)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				walkStmt(s.Init, closed)
			}
			walk(s.Body.List, closed.clone())
			if s.Else != nil {
				walkStmt(s.Else, closed.clone())
			}
		case *ast.ForStmt:
			walk(s.Body.List, closed.clone())
		case *ast.RangeStmt:
			walk(s.Body.List, closed.clone())
		case *ast.BlockStmt:
			walk(s.List, closed)
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if clause, ok := cc.(*ast.CaseClause); ok {
					walk(clause.Body, closed.clone())
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if clause, ok := cc.(*ast.CaseClause); ok {
					walk(clause.Body, closed.clone())
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if clause, ok := cc.(*ast.CommClause); ok {
					branch := closed.clone()
					if clause.Comm != nil {
						walkStmt(clause.Comm, branch)
					}
					walk(clause.Body, branch)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, closed)
		}
	}
	walk(decl.Body.List, closed)
}

// markCloses records CloseSend/Close calls found in e into closed.
func markCloses(c *checker, e ast.Expr, closed state) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, recvExpr := c.streamMethod(call); closeMethods[name] {
			if root, path := analysisutil.Path(c.pass.TypesInfo, recvExpr); root != nil {
				closed[key{root, path}] = true
			}
		}
		return true
	})
}

// deferCloses reports whether a deferred call closes streams: a Stream
// close method, a function whose name mentions close (ops.closeAll and
// friends), or a function literal containing either.
func deferCloses(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		found := false
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok && deferCloses(info, inner) {
				found = true
			}
			return !found
		})
		return found
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "close")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(fun.Sel.Name), "close")
	}
	return false
}

// ---- check 3: silently dropped heartbeats ----

// checkHeartbeatDrops reports `if core.IsHeartbeat(x) { continue }` bodies
// that do nothing else, in functions that send on streams (i.e. have a
// downstream to starve). Reading x.Timestamp() anywhere in the function
// suppresses the report: recording the heartbeat's time and re-broadcasting
// a watermark later (the partitioner's batch-boundary fold) is the legal
// drop-and-re-emit pattern.
func (c *checker) checkHeartbeatDrops(body *ast.BlockStmt) {
	info := c.pass.TypesInfo
	hasSends := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, _ := c.streamMethod(call); sendMethods[name] {
				hasSends = true
			}
		}
		return !hasSends
	})
	if !hasSends {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(ifStmt.Cond).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysisutil.Callee(info, call)
		if fn == nil || fn.Name() != "IsHeartbeat" || fn.Pkg() == nil || fn.Pkg().Path() != corePath {
			return true
		}
		if len(ifStmt.Body.List) != 1 {
			return true
		}
		br, ok := ifStmt.Body.List[0].(*ast.BranchStmt)
		if !ok || br.Tok.String() != "continue" {
			return true
		}
		if len(call.Args) == 1 {
			if root, _ := analysisutil.Path(info, call.Args[0]); root != nil && readsTimestamp(c, body, root) {
				return true // watermark recorded for later re-broadcast
			}
		}
		c.pass.Reportf(ifStmt.Pos(), "heartbeat silently dropped: this operator sends downstream but discards watermark progress, stalling merges, window closes and provenance retention (forward the heartbeat or re-emit a watermark)")
		return true
	})
}

// readsTimestamp reports whether body reads root.Timestamp() (outside
// nested function literals) — the sign that the operator folds heartbeat
// time into its own watermark instead of discarding it.
func readsTimestamp(c *checker, body *ast.BlockStmt, root types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		fn := analysisutil.Callee(c.pass.TypesInfo, call)
		if fn == nil || fn.Name() != "Timestamp" {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if r, _ := analysisutil.Path(c.pass.TypesInfo, sel.X); r == root {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedUnique sorts and dedups a small string slice.
func sortedUnique(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
