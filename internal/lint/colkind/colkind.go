// Package colkind type-checks the field indices columnar kernels pass to
// the typed column accessors against the ColSchema they are bound with.
//
// A ColSchema addresses columns by field index, and the accessors are
// kind-typed: Int64s(f) requires Fields[f].Kind == ColInt64, Float64s(f)
// ColFloat64, Strings(f) ColString. The runtime validates schemas (every
// field needs exactly one extractor matching its kind) but an accessor call
// with the wrong constant — reading field 1 as Int64s when it is declared
// ColFloat64, or indexing past the field list — only fails at run time, as
// an index-out-of-range panic inside an operator loop or, worse, as a
// silently wrong column when two fields of the same kind trade places.
//
// The analyzer resolves schema literals statically — package-level
// `var s = &ops.ColSchema{Fields: ...}` declarations and inline schema
// literals — records each field's declared kind, then follows every
// binding that pairs a kernel with a schema:
//
//   - ColSpec / ColStage: Filter, Map, Key kernels read Schema;
//   - ColKey: Kernel reads Schema;
//   - AggColSpec (ops and query levels): Key reads Schema (as a ColBatch),
//     Fold reads Schema (as a ColSeg of the group's window state);
//   - JoinColSpec: LeftKey reads Left, RightKey reads Right; the residual
//     probes read the *opposite* side's buffer — ResidualL's candidate
//     segment is the right window (Right), ResidualR's the left (Left).
//
// Inside each kernel it flags Int64s/Float64s/Strings calls on the batch or
// segment parameter whose field argument is a constant that is out of range
// or names a field of a different kind. The analysis under-approximates:
// schemas built imperatively, non-constant field arguments, and kernels that
// forward their parameter to helpers are out of scope — silence is not a
// proof, a diagnostic is a contradiction with the declared schema.
package colkind

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"

	"genealog/internal/lint/analysis"
	"genealog/internal/lint/analysisutil"
)

const (
	opsPath   = "genealog/internal/ops"
	queryPath = "genealog/internal/query"
)

// bindings maps a spec struct name to its kernel fields and the schema
// field each kernel reads. Field names are unique across the ops and query
// levels of the same spec, so one entry covers both.
var bindings = map[string]map[string]string{
	"ColSpec":    {"Filter": "Schema", "Map": "Schema", "Key": "Schema"},
	"ColStage":   {"Filter": "Schema", "Map": "Schema"},
	"ColKey":     {"Kernel": "Schema"},
	"AggColSpec": {"Key": "Schema", "Fold": "Schema"},
	// Probes run against the opposite side's window state.
	"JoinColSpec": {"LeftKey": "Left", "RightKey": "Right", "ResidualL": "Right", "ResidualR": "Left"},
}

// accessorKind maps a typed accessor to the ColKind its column must declare.
var accessorKind = map[string]int64{"Int64s": 1, "Float64s": 2, "Strings": 3}

var kindName = map[int64]string{1: "ColInt64", 2: "ColFloat64", 3: "ColString"}

var Analyzer = &analysis.Analyzer{
	Name: "colkind",
	Doc: "flags typed column accessor calls whose constant field index is out of range or mismatches the bound ColSchema's declared kind\n\n" +
		"Int64s(f) requires Fields[f].Kind == ColInt64 (likewise Float64s/Strings);\n" +
		"a wrong constant panics inside the operator loop or reads the wrong column.",
	Run: run,
}

// field is one resolved schema field: its declared name and kind (0 when the
// literal leaves the kind unresolvable — such fields still count for range
// checks but skip the kind check).
type field struct {
	name string
	kind int64
}

func run(pass *analysis.Pass) (any, error) {
	pkg := pass.Pkg.Path()
	if pkg != opsPath && pkg != queryPath &&
		!analysisutil.Imports(pass.Pkg, opsPath) && !analysisutil.Imports(pass.Pkg, queryPath) {
		return nil, nil
	}
	c := &checker{
		pass:       pass,
		schemaVars: make(map[types.Object][]field),
		schemaName: make(map[types.Object]string),
		decls:      make(map[*types.Func]*ast.FuncDecl),
		seen:       make(map[seenKey]bool),
	}

	// Pass 1: function declarations and schema-valued vars. A var is tracked
	// only while its sole binding is a schema literal in its declaration;
	// any later assignment drops it (the analysis must under-approximate).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
						c.decls[fn] = n
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i >= len(n.Values) {
						break
					}
					if fields, ok := c.schemaLit(n.Values[i]); ok {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							c.schemaVars[obj] = fields
							c.schemaName[obj] = name.Name
						}
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || assign.Tok.String() == ":=" {
				return true
			}
			for _, lhs := range assign.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						delete(c.schemaVars, obj)
					}
				}
			}
			return true
		})
	}

	// Pass 2: kernel↔schema bindings.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				c.checkLiteral(lit)
			}
			return true
		})
	}
	return nil, nil
}

type seenKey struct {
	fn      ast.Node
	profile string
}

type checker struct {
	pass       *analysis.Pass
	schemaVars map[types.Object][]field
	schemaName map[types.Object]string
	decls      map[*types.Func]*ast.FuncDecl
	// seen dedups (kernel, schema kind profile) pairs: the same kernel bound
	// twice against kind-identical schemas (a symmetric join residual, say)
	// reports once.
	seen map[seenKey]bool
}

// schemaLit resolves e if it is a ColSchema composite literal (optionally
// behind &) with a literal Fields slice.
func (c *checker) schemaLit(e ast.Expr) ([]field, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok || !c.isNamed(lit, "ColSchema") {
		return nil, false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Fields" {
			continue
		}
		fieldsLit, ok := ast.Unparen(kv.Value).(*ast.CompositeLit)
		if !ok {
			return nil, false // imperative field list: unresolvable
		}
		fields := make([]field, 0, len(fieldsLit.Elts))
		for _, fe := range fieldsLit.Elts {
			fields = append(fields, c.fieldLit(fe))
		}
		return fields, true
	}
	return nil, true // no Fields entry: zero fields declared
}

// fieldLit resolves one ColField literal's declared name and kind; either
// degrades to unknown when not statically evident.
func (c *checker) fieldLit(e ast.Expr) field {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return field{}
	}
	var f field
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			if tv, ok := c.pass.TypesInfo.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				f.name = constant.StringVal(tv.Value)
			}
		case "Kind":
			if tv, ok := c.pass.TypesInfo.Types[kv.Value]; ok && tv.Value != nil {
				if k, ok := constant.Int64Val(tv.Value); ok {
					f.kind = k
				}
			}
		}
	}
	return f
}

// isNamed reports whether lit's type is the ops- or query-level named type.
func (c *checker) isNamed(lit *ast.CompositeLit, name string) bool {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Name() != name {
		return false
	}
	p := named.Obj().Pkg().Path()
	return p == opsPath || p == queryPath
}

// checkLiteral pairs the kernels of a spec literal with the schemas its
// binding rules name and checks each resolvable pair.
func (c *checker) checkLiteral(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	p := named.Obj().Pkg().Path()
	if p != opsPath && p != queryPath {
		return
	}
	rules, ok := bindings[named.Obj().Name()]
	if !ok {
		return
	}
	elts := make(map[string]ast.Expr)
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				elts[key.Name] = kv.Value
			}
		}
	}
	for kernelField, schemaField := range rules {
		kernel, ok := elts[kernelField]
		if !ok {
			continue
		}
		schema, ok := elts[schemaField]
		if !ok {
			continue
		}
		fields, name, ok := c.resolveSchema(schema)
		if !ok {
			continue
		}
		c.checkKernel(kernel, fields, name)
	}
}

// resolveSchema resolves a schema-valued expression: an identifier (possibly
// package-qualified within this package's files) bound to a tracked schema
// var, or an inline schema literal.
func (c *checker) resolveSchema(e ast.Expr) ([]field, string, bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			if fields, ok := c.schemaVars[obj]; ok {
				return fields, c.schemaName[obj], true
			}
		}
	default:
		if fields, ok := c.schemaLit(e); ok {
			return fields, "the inline schema", true
		}
	}
	return nil, "", false
}

// checkKernel resolves the kernel to its body and flags accessor calls on
// its ColBatch/ColSeg parameter inconsistent with the schema's fields.
func (c *checker) checkKernel(e ast.Expr, fields []field, schemaName string) {
	var ftype *ast.FuncType
	var body *ast.BlockStmt
	var node ast.Node
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		ftype, body, node = e.Type, e.Body, e
	case *ast.Ident, *ast.SelectorExpr:
		fn := analysisutil.Callee(c.pass.TypesInfo, &ast.CallExpr{Fun: e})
		if fn == nil {
			return
		}
		decl, ok := c.decls[fn]
		if !ok {
			return
		}
		ftype, body, node = decl.Type, decl.Body, decl
	default:
		return
	}
	profile := ""
	for _, f := range fields {
		profile += fmt.Sprintf("%d,", f.kind)
	}
	key := seenKey{fn: node, profile: profile}
	if c.seen[key] {
		return
	}
	c.seen[key] = true

	var param types.Object
	if ftype.Params != nil {
		for _, pf := range ftype.Params.List {
			for _, name := range pf.Names {
				obj := c.pass.TypesInfo.Defs[name]
				if obj != nil && (analysisutil.IsNamedType(obj.Type(), opsPath, "ColBatch") ||
					analysisutil.IsNamedType(obj.Type(), opsPath, "ColSeg")) {
					param = obj
				}
			}
		}
	}
	if param == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn := analysisutil.Callee(c.pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		want, ok := accessorKind[fn.Name()]
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if root, _ := analysisutil.Path(c.pass.TypesInfo, sel.X); root != param {
			return true
		}
		tv, ok := c.pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil {
			return true // non-constant field index: out of scope
		}
		idx, ok := constant.Int64Val(tv.Value)
		if !ok {
			return true
		}
		if idx < 0 || idx >= int64(len(fields)) {
			c.pass.Reportf(call.Pos(), "kernel reads %s(%d) but %s declares only %d fields",
				fn.Name(), idx, schemaDesc(schemaName), len(fields))
			return true
		}
		f := fields[idx]
		if f.kind != 0 && f.kind != want {
			c.pass.Reportf(call.Pos(), "kernel reads %s(%d) but %s field %q is %s (want %s)",
				fn.Name(), idx, schemaDesc(schemaName), f.name, kindName[f.kind], kindName[want])
		}
		return true
	})
}

func schemaDesc(name string) string {
	if name == "" || name == "the inline schema" {
		return "the bound schema"
	}
	return "schema " + name
}
