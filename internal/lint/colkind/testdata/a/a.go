// Seeded cases for the colkind analyzer.
package a

import (
	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
)

const (
	fieldSpeed = iota // ColFloat64
	fieldLane         // ColInt64
	fieldWay          // ColString
)

var road = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "speed", Kind: ops.ColFloat64, Float: func(t core.Tuple) float64 { return 0 }},
	{Name: "lane", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return 0 }},
	{Name: "way", Kind: ops.ColString, Str: func(t core.Tuple) string { return "" }},
}}

func goodFilter(c *ops.ColBatch, sel []int, dst []int) []int {
	speeds := c.Float64s(fieldSpeed)
	lanes := c.Int64s(fieldLane)
	for _, i := range sel {
		if speeds[i] > 0 && lanes[i] == 0 {
			dst = append(dst, i)
		}
	}
	return dst
}

var goodSpec = query.ColSpec{Schema: road, Filter: goodFilter}

func mistypedFilter(c *ops.ColBatch, sel []int, dst []int) []int {
	lanes := c.Int64s(fieldSpeed) // want `kernel reads Int64s\(0\) but schema road field "speed" is ColFloat64 \(want ColInt64\)`
	for _, i := range sel {
		if lanes[i] == 0 {
			dst = append(dst, i)
		}
	}
	return dst
}

var badSpec = query.ColSpec{Schema: road, Filter: mistypedFilter}

var outOfRangeStage = ops.ColStage{
	Name: "oob", Kind: ops.StageFilter, Schema: road,
	Filter: func(c *ops.ColBatch, sel []int, dst []int) []int {
		_ = c.Float64s(3) // want `kernel reads Float64s\(3\) but schema road declares only 3 fields`
		return dst
	},
}

// Stateful bindings: the fold reads the aggregate's own schema...
func badFold(seg *ops.ColSeg, start, end int64, key string) core.Tuple {
	_ = seg.Strings(fieldLane) // want `kernel reads Strings\(1\) but schema road field "lane" is ColInt64 \(want ColString\)`
	return nil
}

var badAgg = query.AggColSpec{Schema: road, Fold: badFold}

// ...while a join residual probes the opposite side's window state:
// ResidualL's candidates are the right buffer, ResidualR's the left.
var leftCols = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "lv", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return 0 }},
}}

var rightCols = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "rv", Kind: ops.ColFloat64, Float: func(t core.Tuple) float64 { return 0 }},
}}

func probeRight(t core.Tuple, cand *ops.ColSeg, sel []int, dst []int) []int {
	_ = cand.Int64s(0) // want `kernel reads Int64s\(0\) but schema rightCols field "rv" is ColFloat64 \(want ColInt64\)`
	return dst
}

func probeLeft(t core.Tuple, cand *ops.ColSeg, sel []int, dst []int) []int {
	_ = cand.Int64s(0) // fine: the left buffer's field 0 is ColInt64
	return dst
}

var joinSpec = query.JoinColSpec{
	Left: leftCols, Right: rightCols,
	ResidualL: probeRight, ResidualR: probeLeft,
}

// A schema reassigned after its declaration is no longer statically known;
// kernels bound with it are out of scope (under-approximation, no report).
var mutable = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "v", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return 0 }},
}}

func init() {
	mutable = road
}

var unresolvable = query.ColSpec{Schema: mutable, Filter: mistypedFilter}
