package colkind_test

import (
	"testing"

	"genealog/internal/lint/analysistest"
	"genealog/internal/lint/colkind"
)

func TestColKind(t *testing.T) {
	analysistest.Run(t, "testdata", colkind.Analyzer, "a")
}
