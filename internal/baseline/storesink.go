package baseline

import (
	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
)

// AddStoreSink adds a sink node that retains every incoming tuple in store,
// keyed by its ID meta-attribute. In a distributed BL deployment this is the
// provenance node's ingestion of the shipped source streams: the paper's BL
// transmits the entire source streams over the network so the provenance
// node can later join them with the annotated sink tuples (§7). The
// underlying ops.Sink iterates whole stream batches per channel operation,
// so ingestion rides the batched transport like every other operator.
func AddStoreSink(b *query.Builder, name string, from *query.Node, store *Store) {
	node := b.AddCustom(name, 1, 0, func(ins, outs []*ops.Stream) (ops.Operator, error) {
		return ops.NewSink(name, ins[0], func(t core.Tuple) error {
			if m := core.MetaOf(t); m != nil && m.ID() != 0 {
				store.Put(m.ID(), t)
			}
			return nil
		}), nil
	})
	b.Connect(from, node)
}
