// Package baseline implements the paper's comparison technique BL: an
// Ariadne-style eager provenance capture (Glavic et al., ACM TOIT 2014)
// re-implemented on the same operator substrate, exactly as the paper
// re-implemented it on Liebre (§7).
//
// BL annotates every tuple with the variable-length list of the IDs of the
// source tuples contributing to it, and temporarily stores *all* source
// tuples so annotated sink tuples can later be joined back to them. Those
// two properties are the pathologies GeneaLog removes: annotation lists grow
// with window sizes and query depth (violating C1), and the source store
// grows with the stream (violating C2) — which is why BL's throughput
// collapses and its memory becomes the bottleneck in Figs. 12 and 13.
package baseline

import (
	"sync"

	"genealog/internal/core"
)

// Sized is implemented by tuples that can report their approximate in-memory
// payload size; the store uses it for its byte accounting.
type Sized interface {
	ApproxBytes() int
}

// defaultTupleBytes is the store's size estimate for tuples that do not
// implement Sized.
const defaultTupleBytes = 64

// Store temporarily keeps every source tuple, keyed by ID, until the
// provenance of the sink tuples that might reference it has been resolved.
// BL cannot know in advance which source tuples will contribute to a future
// sink tuple, so nothing can be evicted during a run — the unbounded growth
// the paper measures.
type Store struct {
	mu    sync.Mutex
	m     map[uint64]core.Tuple
	bytes int64
}

// NewStore returns an empty source store.
func NewStore() *Store {
	return &Store{m: make(map[uint64]core.Tuple)}
}

// Put stores a source tuple under its ID.
func (s *Store) Put(id uint64, t core.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[id]; dup {
		return
	}
	s.m[id] = t
	s.bytes += int64(approxBytes(t))
}

// Get returns the stored source tuple with the given ID.
func (s *Store) Get(id uint64) (core.Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.m[id]
	return t, ok
}

// Len returns the number of stored source tuples.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// ApproxBytes returns the approximate payload bytes held by the store — the
// deterministic "live provenance state" metric the harness reports next to
// the heap figures.
func (s *Store) ApproxBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

func approxBytes(t core.Tuple) int {
	if s, ok := t.(Sized); ok {
		return s.ApproxBytes()
	}
	return defaultTupleBytes
}

// Instrumenter is the BL strategy: variable-length source-ID annotations on
// every tuple plus eager copies of all source tuples into Store.
type Instrumenter struct {
	// IDs generates the source tuple IDs.
	IDs *core.IDGen
	// Store, when non-nil, receives a copy of every source tuple. In
	// distributed deployments it is nil at the source instances — there the
	// whole source stream is shipped to the provenance node instead, which
	// is precisely BL's network pathology (§7, inter-process results).
	Store *Store
}

var _ core.Instrumenter = (*Instrumenter)(nil)

// OnSource implements core.Instrumenter: assign an ID, start the annotation
// list with it, and retain the tuple.
func (b *Instrumenter) OnSource(t core.Tuple) {
	m := core.MetaOf(t)
	if m == nil {
		return
	}
	m.SetKind(core.KindSource)
	id := b.IDs.Next()
	m.SetID(id)
	m.SetAnnotation([]uint64{id})
	if b.Store != nil {
		b.Store.Put(id, t)
	}
}

// OnMap implements core.Instrumenter: the output inherits a copy of the
// input's annotation.
func (b *Instrumenter) OnMap(out, in core.Tuple) {
	copyAnnotation(out, in)
}

// OnMultiplex implements core.Instrumenter: every branch copy inherits the
// input's annotation and ID (the copy is the same logical tuple; in the
// distributed deployment the copy shipped to the provenance node must be
// stored under the ID the annotations reference).
func (b *Instrumenter) OnMultiplex(out, in core.Tuple) {
	copyAnnotation(out, in)
	om, im := core.MetaOf(out), core.MetaOf(in)
	if om != nil && im != nil {
		om.SetID(im.ID())
		om.SetKind(im.Kind())
	}
}

// OnJoin implements core.Instrumenter: the output's annotation is the merged
// annotation of the pair.
func (b *Instrumenter) OnJoin(out, newer, older core.Tuple) {
	om := core.MetaOf(out)
	if om == nil {
		return
	}
	om.SetAnnotation(mergeAnnotations(annotationOf(newer), annotationOf(older)))
}

// OnAggregateLink implements core.Instrumenter: BL has no N chain.
func (b *Instrumenter) OnAggregateLink(_, _ core.Tuple) {}

// OnAggregateEmit implements core.Instrumenter: the window output carries
// the union of every window tuple's annotation — the unbounded-growth case
// of annotation-based provenance (192 IDs per tuple in Q3).
func (b *Instrumenter) OnAggregateEmit(out core.Tuple, window []core.Tuple) {
	om := core.MetaOf(out)
	if om == nil {
		return
	}
	anns := make([][]uint64, 0, len(window))
	for _, w := range window {
		anns = append(anns, annotationOf(w))
	}
	om.SetAnnotation(mergeAnnotations(anns...))
}

// OnSend implements core.Instrumenter: annotations travel on the wire (they
// are part of the Meta wire encoding), so nothing to do.
func (b *Instrumenter) OnSend(core.Tuple) {}

// OnReceive implements core.Instrumenter: annotations arrived with the
// tuple; BL does not use the REMOTE mechanism.
func (b *Instrumenter) OnReceive(core.Tuple) {}

// NeedsMultiplexClone implements core.Instrumenter: branches carry their own
// annotation copies.
func (b *Instrumenter) NeedsMultiplexClone() bool { return true }

func annotationOf(t core.Tuple) []uint64 {
	if m := core.MetaOf(t); m != nil {
		return m.Annotation()
	}
	return nil
}

func copyAnnotation(out, in core.Tuple) {
	om := core.MetaOf(out)
	if om == nil {
		return
	}
	src := annotationOf(in)
	cp := make([]uint64, len(src))
	copy(cp, src)
	om.SetAnnotation(cp)
}

// mergeAnnotations unions ID lists, preserving first-seen order.
func mergeAnnotations(lists ...[]uint64) []uint64 {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]uint64, 0, total)
	seen := make(map[uint64]struct{}, total)
	for _, l := range lists {
		for _, id := range l {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}

// Resolver maps an annotated sink tuple back to its source tuples by
// joining the annotation list with the source store.
type Resolver struct {
	Store *Store
}

var _ core.Resolver = Resolver{}

// Resolve implements core.Resolver. IDs missing from the store are skipped
// (in a distributed run this means the source copy has not been shipped,
// which the equivalence tests treat as a failure).
func (r Resolver) Resolve(sink core.Tuple) []core.Tuple {
	ann := annotationOf(sink)
	out := make([]core.Tuple, 0, len(ann))
	for _, id := range ann {
		if t, ok := r.Store.Get(id); ok {
			out = append(out, t)
		}
	}
	return out
}
