package baseline

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/query"
)

type evTuple struct {
	core.Base
	Key string
	Val int64
}

func ev(ts int64, key string, val int64) *evTuple {
	return &evTuple{Base: core.NewBase(ts), Key: key, Val: val}
}

func (t *evTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

func (t *evTuple) ApproxBytes() int { return 16 + len(t.Key) + 8 }

func TestOnSourceAnnotatesAndStores(t *testing.T) {
	st := NewStore()
	ins := &Instrumenter{IDs: core.NewIDGen(1), Store: st}
	a := ev(1, "a", 0)
	ins.OnSource(a)
	m := core.MetaOf(a)
	if m.Kind() != core.KindSource || m.ID() == 0 {
		t.Fatalf("source not typed/ID'd: kind=%v id=%d", m.Kind(), m.ID())
	}
	if len(m.Annotation()) != 1 || m.Annotation()[0] != m.ID() {
		t.Fatalf("annotation = %v, want [%d]", m.Annotation(), m.ID())
	}
	if st.Len() != 1 {
		t.Fatalf("store len = %d, want 1", st.Len())
	}
	if st.ApproxBytes() != 25 {
		t.Fatalf("store bytes = %d, want 25", st.ApproxBytes())
	}
}

func TestOnSourceWithoutStore(t *testing.T) {
	ins := &Instrumenter{IDs: core.NewIDGen(1)}
	a := ev(1, "a", 0)
	ins.OnSource(a) // must not panic with nil store
	if core.MetaOf(a).ID() == 0 {
		t.Fatal("ID must still be assigned")
	}
}

func TestAnnotationPropagation(t *testing.T) {
	ins := &Instrumenter{IDs: core.NewIDGen(1), Store: NewStore()}
	s1, s2 := ev(1, "a", 0), ev(2, "b", 0)
	ins.OnSource(s1)
	ins.OnSource(s2)

	mapped := ev(1, "m", 0)
	ins.OnMap(mapped, s1)
	if got := core.MetaOf(mapped).Annotation(); len(got) != 1 || got[0] != core.MetaOf(s1).ID() {
		t.Fatalf("map annotation = %v", got)
	}
	// The copy must be independent of the original.
	core.MetaOf(mapped).Annotation()[0] = 999
	if core.MetaOf(s1).Annotation()[0] == 999 {
		t.Fatal("map annotation must be a copy")
	}
	ins.OnMap(mapped, s1) // restore

	joined := ev(2, "j", 0)
	ins.OnJoin(joined, s2, s1)
	ann := core.MetaOf(joined).Annotation()
	if len(ann) != 2 {
		t.Fatalf("join annotation = %v, want two IDs", ann)
	}

	agg := ev(0, "agg", 0)
	ins.OnAggregateEmit(agg, []core.Tuple{s1, s2, joined})
	ann = core.MetaOf(agg).Annotation()
	if len(ann) != 2 { // s1, s2 ded-duplicated with joined's {s2,s1}
		t.Fatalf("aggregate annotation = %v, want 2 unique IDs", ann)
	}
}

func TestMergeAnnotationsOrderAndDedup(t *testing.T) {
	got := mergeAnnotations([]uint64{3, 1}, []uint64{1, 2}, nil, []uint64{3})
	want := []uint64{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}

func TestResolver(t *testing.T) {
	st := NewStore()
	ins := &Instrumenter{IDs: core.NewIDGen(1), Store: st}
	s1, s2 := ev(1, "a", 0), ev(2, "b", 0)
	ins.OnSource(s1)
	ins.OnSource(s2)
	sink := ev(0, "sink", 0)
	ins.OnAggregateEmit(sink, []core.Tuple{s1, s2})
	got := Resolver{Store: st}.Resolve(sink)
	if len(got) != 2 {
		t.Fatalf("resolved %d tuples, want 2", len(got))
	}
	if got[0] != core.Tuple(s1) || got[1] != core.Tuple(s2) {
		t.Fatal("resolver must return the stored source tuples")
	}
}

func TestStoreDuplicatePutIgnored(t *testing.T) {
	st := NewStore()
	a := ev(1, "a", 0)
	st.Put(7, a)
	st.Put(7, a)
	if st.Len() != 1 || st.ApproxBytes() != 25 {
		t.Fatalf("duplicate put must be ignored: len=%d bytes=%d", st.Len(), st.ApproxBytes())
	}
}

func TestStoreDefaultSizeEstimate(t *testing.T) {
	st := NewStore()
	st.Put(1, &struct{ core.Base }{core.NewBase(1)})
	if st.ApproxBytes() != defaultTupleBytes {
		t.Fatalf("bytes = %d, want %d", st.ApproxBytes(), defaultTupleBytes)
	}
}

// buildPipeline constructs the same windowed query under a given
// instrumenter and returns the per-sink-tuple provenance sets as canonical
// strings, resolved through the given resolver factory after the run.
func buildPipeline(t *testing.T, instr core.Instrumenter, resolve func(core.Tuple) []core.Tuple) []string {
	t.Helper()
	b := query.New("pipe", query.WithInstrumenter(instr))
	src := b.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for i := 0; i < 60; i++ {
			if err := emit(ev(int64(i), fmt.Sprintf("g%d", i%3), int64(i))); err != nil {
				return err
			}
		}
		return nil
	})
	flt := b.AddFilter("flt", func(tp core.Tuple) bool { return tp.(*evTuple).Val%5 != 0 })
	agg := b.AddAggregate("agg", ops.AggregateSpec{
		WS: 10, WA: 5,
		Key:  func(tp core.Tuple) string { return tp.(*evTuple).Key },
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple { return ev(0, key, int64(len(w))) },
	})
	var sunk []core.Tuple
	k := b.AddSink("k", func(tp core.Tuple) error { sunk = append(sunk, tp); return nil })
	b.Connect(src, flt)
	b.Connect(flt, agg)
	b.Connect(agg, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, s := range sunk {
		srcs := resolve(s)
		var vals []int64
		for _, x := range srcs {
			vals = append(vals, x.(*evTuple).Val)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		out = append(out, fmt.Sprintf("%d/%s:%v", s.Timestamp(), s.(*evTuple).Key, vals))
	}
	return out
}

// TestBaselineMatchesGenealog is the cross-technique equivalence check the
// paper relies on implicitly: BL and GL must attribute identical source sets
// to identical sink tuples.
func TestBaselineMatchesGenealog(t *testing.T) {
	st := NewStore()
	bl := buildPipeline(t, &Instrumenter{IDs: core.NewIDGen(1), Store: st},
		Resolver{Store: st}.Resolve)
	gl := buildPipeline(t, &core.Genealog{}, core.GenealogResolver{}.Resolve)
	if len(bl) == 0 {
		t.Fatal("pipeline produced no sink tuples")
	}
	if len(bl) != len(gl) {
		t.Fatalf("BL %d sink tuples, GL %d", len(bl), len(gl))
	}
	for i := range bl {
		if bl[i] != gl[i] {
			t.Fatalf("provenance mismatch at %d:\n BL: %s\n GL: %s", i, bl[i], gl[i])
		}
	}
}

// TestBaselineStoreGrowsWithStream demonstrates BL's C2 violation: the store
// retains every source tuple regardless of contribution.
func TestBaselineStoreGrowsWithStream(t *testing.T) {
	st := NewStore()
	instr := &Instrumenter{IDs: core.NewIDGen(1), Store: st}
	b := query.New("grow", query.WithInstrumenter(instr))
	src := b.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for i := 0; i < 1000; i++ {
			if err := emit(ev(int64(i), "k", int64(i))); err != nil {
				return err
			}
		}
		return nil
	})
	// A filter that drops everything: no sink tuple will ever reference the
	// sources, yet BL keeps them all.
	flt := b.AddFilter("flt", func(core.Tuple) bool { return false })
	k := b.AddSink("k", nil)
	b.Connect(src, flt)
	b.Connect(flt, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1000 {
		t.Fatalf("store len = %d, want all 1000 source tuples", st.Len())
	}
}

// TestRecordStreamCompatibility checks BL tuples flow through the provenance
// package's collector machinery (used by the harness for symmetric output).
func TestRecordStreamCompatibility(t *testing.T) {
	st := NewStore()
	ins := &Instrumenter{IDs: core.NewIDGen(1), Store: st}
	s := ev(1, "a", 0)
	ins.OnSource(s)
	sink := ev(5, "sink", 0)
	ins.OnAggregateEmit(sink, []core.Tuple{s})
	var results []provenance.Result
	c := &provenance.Collector{OnResult: func(r provenance.Result) { results = append(results, r) }}
	for _, src := range (Resolver{Store: st}).Resolve(sink) {
		err := c.Add(&provenance.Record{
			Base:   core.NewBase(sink.Timestamp()),
			SinkID: core.MetaOf(sink).ID(),
			Sink:   sink,
			Orig:   src,
		})
		if err != nil {
			t.Fatalf("Collector.Add: %v", err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Collector.Flush: %v", err)
	}
	if len(results) != 1 || len(results[0].Sources) != 1 {
		t.Fatalf("collector results = %v", results)
	}
}
