package clickstream

import (
	"context"
	"math/rand"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// Config parameterises the deterministic clickstream generator. Timestamps
// are seconds; each user clicks once per second, so a session window holds
// SessionWindow clicks per user. Hot sessions — (user, window) pairs with
// exactly HotSessionClicks engaged clicks — are injected on a fixed
// schedule; every other pair gets strictly fewer, so exactly the injected
// pairs alert and each alert's contribution graph is exactly
// HotSessionClicks source tuples.
type Config struct {
	// Users is the number of concurrent users.
	Users int
	// Windows is the number of session windows
	// (Users*Windows*SessionWindow source tuples).
	Windows int
	// HotEvery makes every HotEvery-th (user, window) pair hot
	// (0 disables injection; no pair alerts).
	HotEvery int
	// Pages is the size of the page-id space.
	Pages int
	// Seed drives all pseudo-random choices.
	Seed int64
}

// DefaultConfig returns the workload used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		Users:    24,
		Windows:  16,
		HotEvery: 4,
		Pages:    50,
		Seed:     13,
	}
}

// Generator produces the per-second click stream.
type Generator struct {
	cfg Config
}

// NewGenerator returns a generator for the given configuration. Zero or
// negative core fields fall back to DefaultConfig values.
func NewGenerator(cfg Config) *Generator {
	def := DefaultConfig()
	if cfg.Users <= 0 {
		cfg.Users = def.Users
	}
	if cfg.Windows <= 0 {
		cfg.Windows = def.Windows
	}
	if cfg.Pages <= 0 {
		cfg.Pages = def.Pages
	}
	return &Generator{cfg: cfg}
}

// Tuples returns the total number of source tuples the generator emits.
func (g *Generator) Tuples() int { return g.cfg.Users * g.cfg.Windows * SessionWindow }

// Alerts returns the number of hot (user, window) pairs the configuration
// injects — the exact Q5 alert count.
func (g *Generator) Alerts() int {
	if g.cfg.HotEvery <= 0 {
		return 0
	}
	pairs := g.cfg.Users * g.cfg.Windows
	return (pairs + g.cfg.HotEvery - 1) / g.cfg.HotEvery
}

// SourceFunc returns the ops.SourceFunc emitting the timestamp-sorted
// clicks.
func (g *Generator) SourceFunc() ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		rng := rand.New(rand.NewSource(g.cfg.Seed))
		// Per-user engagement plan for the current window: how many of the
		// user's SessionWindow clicks are engaged, spread from a rotated
		// start so engaged clicks land at different seconds per user.
		engaged := make([]int, g.cfg.Users)
		rot := make([]int, g.cfg.Users)
		for w := 0; w < g.cfg.Windows; w++ {
			for u := 0; u < g.cfg.Users; u++ {
				if g.cfg.HotEvery > 0 && (w*g.cfg.Users+u)%g.cfg.HotEvery == 0 {
					engaged[u] = HotSessionClicks
				} else {
					engaged[u] = rng.Intn(HotSessionClicks)
				}
				rot[u] = rng.Intn(SessionWindow)
			}
			for sec := 0; sec < SessionWindow; sec++ {
				ts := int64(w)*SessionWindow + int64(sec)
				for u := 0; u < g.cfg.Users; u++ {
					page := int32(rng.Intn(g.cfg.Pages))
					var dwell int64
					if (sec+SessionWindow-rot[u])%SessionWindow < engaged[u] {
						dwell = EngagedDwellMs + rng.Int63n(4000)
					} else {
						dwell = rng.Int63n(EngagedDwellMs)
					}
					if err := emit(NewClickEvent(ts, int32(u), page, dwell)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
}
