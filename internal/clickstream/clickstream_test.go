package clickstream

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/query"
)

func runQuery(t *testing.T, gen ops.SourceFunc, instr core.Instrumenter,
	addQuery func(*query.Builder, *query.Node) *query.Node) ([]core.Tuple, []provenance.Result) {
	t.Helper()
	b := query.New("cs", query.WithInstrumenter(instr))
	src := b.AddSource("src", gen)
	last := addQuery(b, src)
	so, u := provenance.AddSU(b, "su", last, provenance.SUConfig{})
	var sunk []core.Tuple
	b.Connect(so, b.AddSink("k", func(tp core.Tuple) error { sunk = append(sunk, tp); return nil }))
	var results []provenance.Result
	provenance.AddCollector(b, "prov", u, func(r provenance.Result) { results = append(results, r) })
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sunk, results
}

// hotScenario: `users` users over `windows` session windows; user 1 is
// engaged for exactly `engaged` of its clicks in window 1 and nobody else
// ever dwells past the threshold.
func hotScenario(users, windows, engaged int) ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		for w := 0; w < windows; w++ {
			for sec := 0; sec < SessionWindow; sec++ {
				ts := int64(w)*SessionWindow + int64(sec)
				for u := 0; u < users; u++ {
					dwell := int64(10)
					if w == 1 && u == 1 && sec < engaged {
						dwell = EngagedDwellMs + 500
					}
					if err := emit(NewClickEvent(ts, int32(u), int32(u), dwell)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
}

func TestQ5DetectsHotSession(t *testing.T) {
	sunk, results := runQuery(t, hotScenario(5, 4, HotSessionClicks), &core.Genealog{}, AddQ5)
	if len(sunk) != 1 {
		t.Fatalf("Q5 alerts = %d, want 1", len(sunk))
	}
	alert := sunk[0].(*SessionCount)
	if alert.UserID != 1 {
		t.Fatalf("alert user = %d, want 1", alert.UserID)
	}
	if alert.Clicks != HotSessionClicks {
		t.Fatalf("alert clicks = %d, want %d", alert.Clicks, HotSessionClicks)
	}
	if alert.Timestamp() != SessionWindow {
		t.Fatalf("alert ts = %d, want window 1 start", alert.Timestamp())
	}
	if len(results) != 1 {
		t.Fatalf("provenance results = %d, want 1", len(results))
	}
	// The contribution graph is exactly the engaged clicks of the window.
	if len(results[0].Sources) != HotSessionClicks {
		t.Fatalf("provenance size = %d, want %d", len(results[0].Sources), HotSessionClicks)
	}
	for _, s := range results[0].Sources {
		c := s.(*ClickEvent)
		if c.UserID != 1 || c.DwellMs < EngagedDwellMs {
			t.Fatalf("unexpected contributing click %+v", c)
		}
		if w := c.Timestamp() / SessionWindow; w != 1 {
			t.Fatalf("contributing click from window %d, want 1", w)
		}
	}
}

func TestQ5NoAlertBelowThreshold(t *testing.T) {
	sunk, _ := runQuery(t, hotScenario(5, 4, HotSessionClicks-1), &core.Genealog{}, AddQ5)
	if len(sunk) != 0 {
		t.Fatalf("Q5 alerts = %d, want 0 below the threshold", len(sunk))
	}
}

func TestGeneratorDeterministicAndSorted(t *testing.T) {
	collect := func() []string {
		g := NewGenerator(Config{Users: 6, Windows: 5, HotEvery: 3, Pages: 10, Seed: 11})
		var out []string
		last := int64(-1)
		err := g.SourceFunc()(context.Background(), func(tp core.Tuple) error {
			c := tp.(*ClickEvent)
			if c.Timestamp() < last {
				t.Fatalf("timestamps regress at %d", c.Timestamp())
			}
			last = c.Timestamp()
			out = append(out, fmt.Sprintf("%d/%d/%d/%d", c.Timestamp(), c.UserID, c.PageID, c.DwellMs))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != 6*5*SessionWindow {
		t.Fatalf("generated %d tuples, want %d", len(a), 6*5*SessionWindow)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator not deterministic at %d", i)
		}
	}
}

func TestGeneratorHotSessionSchedule(t *testing.T) {
	cfg := DefaultConfig()
	g := NewGenerator(cfg)
	sunk, results := runQuery(t, g.SourceFunc(), &core.Genealog{}, AddQ5)
	if len(sunk) != g.Alerts() {
		t.Fatalf("Q5 alerts = %d, want %d", len(sunk), g.Alerts())
	}
	if len(sunk) == 0 {
		t.Fatal("default workload must produce Q5 alerts")
	}
	for _, r := range results {
		if len(r.Sources) != HotSessionClicks {
			t.Fatalf("provenance size = %d, want %d", len(r.Sources), HotSessionClicks)
		}
	}
}

func canonical(results []provenance.Result) []string {
	out := make([]string, 0, len(results))
	for _, r := range results {
		var ids []string
		for _, s := range r.Sources {
			c := s.(*ClickEvent)
			ids = append(ids, fmt.Sprintf("%d/%d", c.Timestamp(), c.UserID))
		}
		sort.Strings(ids)
		out = append(out, fmt.Sprintf("%d/%d:%v", r.Sink.Timestamp(), r.Sink.(*SessionCount).UserID, ids))
	}
	sort.Strings(out)
	return out
}

func TestQ5GenealogMatchesBaseline(t *testing.T) {
	_, glResults := runQuery(t, NewGenerator(DefaultConfig()).SourceFunc(), &core.Genealog{}, AddQ5)

	store := baseline.NewStore()
	blInstr := &baseline.Instrumenter{IDs: core.NewIDGen(1), Store: store}
	b := query.New("bl", query.WithInstrumenter(blInstr))
	src := b.AddSource("src", NewGenerator(DefaultConfig()).SourceFunc())
	last := AddQ5(b, src)
	var blResults []provenance.Result
	b.Connect(last, b.AddSink("k", func(tp core.Tuple) error {
		srcs := baseline.Resolver{Store: store}.Resolve(tp)
		blResults = append(blResults, provenance.Result{Sink: tp, Sources: srcs})
		return nil
	}))
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	gl, bl := canonical(glResults), canonical(blResults)
	if len(gl) == 0 {
		t.Fatal("no provenance results to compare")
	}
	if len(gl) != len(bl) {
		t.Fatalf("GL %d results, BL %d", len(gl), len(bl))
	}
	for i := range gl {
		if gl[i] != bl[i] {
			t.Fatalf("provenance mismatch at %d:\nGL: %s\nBL: %s", i, gl[i], bl[i])
		}
	}
}
