// Package clickstream implements the bursty clickstream use case built to
// exercise adaptive batching: a deterministic sessionized click generator
// whose arrival process alternates bursts and idle valleys, and the query
// Q5 — hot-session detection — counting a user's engaged clicks per session
// window and alerting when the count reaches HotSessionClicks. Like the
// paper's use cases it ships intra-process and distributed deployments and
// exact contribution-graph shapes.
package clickstream

import (
	"sync"

	"genealog/internal/core"
	"genealog/internal/transport"
)

// SessionWindow is the tumbling-window size of the session aggregation;
// timestamps are in seconds (one click per user per second).
const SessionWindow = 8

// Query parameters.
const (
	// EngagedDwellMs: a click counts as engaged when the user dwelt on the
	// page at least this long (milliseconds).
	EngagedDwellMs = 1000
	// HotSessionClicks: an alert is raised when a user's engaged clicks in
	// one session window reach this count. The generator gives hot
	// (user, window) pairs exactly this many engaged clicks, so each
	// alert's contribution graph has exactly HotSessionClicks source
	// tuples.
	HotSessionClicks = 6
)

// MUWindowQ5 covers SPE instance 2's session-count Aggregate in the
// distributed deployment (§6.1).
const MUWindowQ5 = SessionWindow

// ClickEvent is the source tuple: ⟨ts, user_id, page_id, dwell_ms⟩, one
// click per user per second. ts is in seconds since the epoch.
type ClickEvent struct {
	core.Base
	UserID  int32
	PageID  int32
	DwellMs int64
}

// NewClickEvent returns a click at event time ts (seconds).
func NewClickEvent(ts int64, user, page int32, dwellMs int64) *ClickEvent {
	return &ClickEvent{Base: core.NewBase(ts), UserID: user, PageID: page, DwellMs: dwellMs}
}

// CloneTuple implements core.Cloneable.
func (c *ClickEvent) CloneTuple() core.Tuple {
	cp := *c
	cp.ResetProvenance()
	return &cp
}

// ApproxBytes implements baseline.Sized.
func (c *ClickEvent) ApproxBytes() int { return 8 + 4 + 4 + 8 }

// EngagedClick is the projection of an engaged ClickEvent produced by Q5's
// first stage — the dwell time has served its purpose and is dropped before
// the tuple crosses to the stateful stage.
type EngagedClick struct {
	core.Base
	UserID int32
	PageID int32
}

// CloneTuple implements core.Cloneable.
func (e *EngagedClick) CloneTuple() core.Tuple {
	cp := *e
	cp.ResetProvenance()
	return &cp
}

// ApproxBytes implements baseline.Sized.
func (e *EngagedClick) ApproxBytes() int { return 8 + 4 + 4 }

// SessionCount is Q5's sink tuple: a user's engaged-click count over one
// session window. Only counts reaching HotSessionClicks survive to the sink.
type SessionCount struct {
	core.Base
	UserID int32
	Clicks int32
}

// CloneTuple implements core.Cloneable.
func (s *SessionCount) CloneTuple() core.Tuple {
	cp := *s
	cp.ResetProvenance()
	return &cp
}

// ApproxBytes implements baseline.Sized.
func (s *SessionCount) ApproxBytes() int { return 8 + 4 + 4 }

var registerOnce sync.Once

// RegisterWire registers the package's tuple types with both transport
// codecs (gob and binary). Safe to call multiple times.
func RegisterWire() {
	registerOnce.Do(func() {
		transport.Register(&ClickEvent{})
		transport.Register(&EngagedClick{})
		transport.Register(&SessionCount{})
		transport.RegisterBinary(tagClickEvent, func() transport.WireTuple { return &ClickEvent{} })
		transport.RegisterBinary(tagEngagedClick, func() transport.WireTuple { return &EngagedClick{} })
		transport.RegisterBinary(tagSessionCount, func() transport.WireTuple { return &SessionCount{} })
	})
}
