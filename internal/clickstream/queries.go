package clickstream

import (
	"strconv"

	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
)

// userKey is the group-by extractor of the session-count Aggregate.
func userKey(t core.Tuple) string {
	switch v := t.(type) {
	case *ClickEvent:
		return strconv.Itoa(int(v.UserID))
	case *EngagedClick:
		return strconv.Itoa(int(v.UserID))
	default:
		return ""
	}
}

// AddQ5Stage1 appends Q5's first stage — the engaged-dwell Filter and the
// dwell-dropping projection Map — which the distributed deployment runs at
// SPE instance 1, shrinking every tuple before it crosses the wire.
func AddQ5Stage1(b *query.Builder, from *query.Node) *query.Node {
	eng := b.AddFilter("q5.engaged", func(t core.Tuple) bool {
		return t.(*ClickEvent).DwellMs >= EngagedDwellMs
	}).Columnar(query.ColSpec{Schema: ClickEventSchema, Filter: filterEngaged})
	proj := b.AddMap("q5.project", func(t core.Tuple, emit func(core.Tuple)) {
		c := t.(*ClickEvent)
		emit(&EngagedClick{Base: core.NewBase(c.Timestamp()), UserID: c.UserID, PageID: c.PageID})
	}).Columnar(query.ColSpec{Schema: ClickEventSchema, Map: mapProject})
	b.Connect(from, eng)
	b.Connect(eng, proj)
	return proj
}

// AddQ5Stage2 appends Q5's second stage — the per-user session-count
// Aggregate and the >= HotSessionClicks Filter — producing *SessionCount
// sink tuples. The distributed deployment runs it at SPE instance 2.
func AddQ5Stage2(b *query.Builder, from *query.Node) *query.Node {
	count := b.AddAggregate("q5.session-count", ops.AggregateSpec{
		WS:  SessionWindow,
		WA:  SessionWindow,
		Key: userKey,
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			out := &SessionCount{Base: core.NewBase(start)}
			for _, t := range w {
				out.UserID = t.(*EngagedClick).UserID
			}
			out.Clicks = int32(len(w))
			return out
		},
	}).ColumnarAgg(query.AggColSpec{Schema: EngagedClickSchema, Key: keyEngagedClick, Fold: foldSessionCount})
	hot := b.AddFilter("q5.hot", func(t core.Tuple) bool {
		return t.(*SessionCount).Clicks >= HotSessionClicks
	}).Columnar(query.ColSpec{Schema: SessionCountSchema, Filter: filterHot})
	b.Connect(from, count)
	b.Connect(count, hot)
	return hot
}

// AddQ5 appends the whole hot-session query and returns its final node,
// which emits *SessionCount sink tuples. Each alert's provenance is the
// engaged clicks of its session window — exactly HotSessionClicks source
// tuples under the generator's injection scheme.
func AddQ5(b *query.Builder, from *query.Node) *query.Node {
	return AddQ5Stage2(b, AddQ5Stage1(b, from))
}
