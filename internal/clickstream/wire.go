package clickstream

import (
	"genealog/internal/transport"
)

// Binary wire tags for the clickstream tuple types (20-29 reserved for this
// package).
const (
	tagClickEvent   uint16 = 20
	tagEngagedClick uint16 = 21
	tagSessionCount uint16 = 22
)

var (
	_ transport.WireTuple = (*ClickEvent)(nil)
	_ transport.WireTuple = (*EngagedClick)(nil)
	_ transport.WireTuple = (*SessionCount)(nil)
)

// MarshalWire implements transport.WireTuple.
func (c *ClickEvent) MarshalWire(buf []byte) ([]byte, error) {
	buf = transport.AppendInt32(buf, c.UserID)
	buf = transport.AppendInt32(buf, c.PageID)
	buf = transport.AppendInt64(buf, c.DwellMs)
	return buf, nil
}

// UnmarshalWire implements transport.WireTuple.
func (c *ClickEvent) UnmarshalWire(data []byte) error {
	var err error
	if c.UserID, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	if c.PageID, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	c.DwellMs, _, err = transport.ReadInt64(data)
	return err
}

// MarshalWire implements transport.WireTuple.
func (e *EngagedClick) MarshalWire(buf []byte) ([]byte, error) {
	buf = transport.AppendInt32(buf, e.UserID)
	buf = transport.AppendInt32(buf, e.PageID)
	return buf, nil
}

// UnmarshalWire implements transport.WireTuple.
func (e *EngagedClick) UnmarshalWire(data []byte) error {
	var err error
	if e.UserID, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	e.PageID, _, err = transport.ReadInt32(data)
	return err
}

// MarshalWire implements transport.WireTuple.
func (s *SessionCount) MarshalWire(buf []byte) ([]byte, error) {
	buf = transport.AppendInt32(buf, s.UserID)
	buf = transport.AppendInt32(buf, s.Clicks)
	return buf, nil
}

// UnmarshalWire implements transport.WireTuple.
func (s *SessionCount) UnmarshalWire(data []byte) error {
	var err error
	if s.UserID, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	s.Clicks, _, err = transport.ReadInt32(data)
	return err
}
