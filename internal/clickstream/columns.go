package clickstream

import (
	"strconv"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// This file declares the columnar schemas and typed kernels of the
// clickstream tuple types, letting the planner run Q5's stateless stages on
// the vectorized runtime (ops.ColChain), fold its session windows over
// columnar window state (ops.ColAggregate), and extract shard routing keys
// batch-wise. Each schema covers every payload field of its tuple type, so
// one extraction pass serves any kernel over that type.

// Field indices into ClickEventSchema.
const (
	clickFieldUser = iota
	clickFieldPage
	clickFieldDwell
)

// ClickEventSchema is the columnar schema of *ClickEvent.
var ClickEventSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "user", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*ClickEvent).UserID) }},
	{Name: "page", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*ClickEvent).PageID) }},
	{Name: "dwell", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return t.(*ClickEvent).DwellMs }},
}}

// Field indices into EngagedClickSchema.
const (
	engagedFieldUser = iota
	engagedFieldPage
)

// EngagedClickSchema is the columnar schema of *EngagedClick.
var EngagedClickSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "user", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*EngagedClick).UserID) }},
	{Name: "page", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*EngagedClick).PageID) }},
}}

// Field indices into SessionCountSchema.
const (
	sessionFieldUser = iota
	sessionFieldClicks
)

// SessionCountSchema is the columnar schema of *SessionCount.
var SessionCountSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "user", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*SessionCount).UserID) }},
	{Name: "clicks", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*SessionCount).Clicks) }},
}}

// Schemas returns the columnar schema of every clickstream tuple type,
// keyed by its csvio format name.
func Schemas() map[string]*ops.ColSchema {
	return map[string]*ops.ColSchema{
		"cs.click":   ClickEventSchema,
		"cs.engaged": EngagedClickSchema,
		"cs.count":   SessionCountSchema,
	}
}

// filterEngaged is the vectorized q5.engaged predicate.
func filterEngaged(c *ops.ColBatch, sel, dst []int) []int {
	dwell := c.Int64s(clickFieldDwell)
	for _, i := range sel {
		if dwell[i] >= EngagedDwellMs {
			dst = append(dst, i)
		}
	}
	return dst
}

// mapProject is the vectorized q5.project projection: one *EngagedClick per
// selected click, in order, matching the row Map exactly.
func mapProject(c *ops.ColBatch, sel []int, dst []core.Tuple) []core.Tuple {
	ts := c.Timestamps()
	user := c.Int64s(clickFieldUser)
	page := c.Int64s(clickFieldPage)
	for _, i := range sel {
		dst = append(dst, &EngagedClick{Base: core.NewBase(ts[i]), UserID: int32(user[i]), PageID: int32(page[i])})
	}
	return dst
}

// filterHot is the vectorized q5.hot predicate.
func filterHot(c *ops.ColBatch, sel, dst []int) []int {
	clicks := c.Int64s(sessionFieldClicks)
	for _, i := range sel {
		if clicks[i] >= HotSessionClicks {
			dst = append(dst, i)
		}
	}
	return dst
}

// keyEngagedClick is the vectorized session-count group-by extraction; it
// equals userKey on every *EngagedClick.
func keyEngagedClick(c *ops.ColBatch, sel []int, dst []string) []string {
	user := c.Int64s(engagedFieldUser)
	for _, i := range sel {
		dst = append(dst, strconv.Itoa(int(user[i])))
	}
	return dst
}

// foldSessionCount is the vectorized session-count fold: the engaged-click
// count of one user's window.
func foldSessionCount(seg *ops.ColSeg, start, end int64, key string) core.Tuple {
	out := &SessionCount{Base: core.NewBase(start)}
	user := seg.Int64s(engagedFieldUser)
	out.UserID = int32(user[len(user)-1])
	out.Clicks = int32(seg.Len())
	return out
}
