package metrics

import (
	"math/rand"
	"sort"
	"sync"
)

// Reservoir estimates quantiles from a stream of samples with bounded
// memory: below the capacity it is exact; beyond it, uniform reservoir
// sampling (Vitter's algorithm R) keeps an unbiased sample. Latency streams
// in the harness are usually small (one sample per sink tuple), so the
// reported quantiles are typically exact.
type Reservoir struct {
	mu   sync.Mutex
	cap  int
	n    int64
	buf  []float64
	rng  *rand.Rand
	sort []float64 // scratch, reused between Quantile calls
}

// DefaultReservoirSize bounds the retained samples when no size is given.
const DefaultReservoirSize = 4096

// NewReservoir returns a reservoir with the given capacity (<= 0 selects
// DefaultReservoirSize). Sampling is seeded deterministically so repeated
// runs of a deterministic workload report identical quantiles.
func NewReservoir(capacity int) *Reservoir {
	if capacity <= 0 {
		capacity = DefaultReservoirSize
	}
	return &Reservoir{
		cap: capacity,
		rng: rand.New(rand.NewSource(1)),
	}
}

// Add ingests one sample.
func (r *Reservoir) Add(x float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, x)
		return
	}
	if i := r.rng.Int63n(r.n); i < int64(r.cap) {
		r.buf[i] = x
	}
}

// N returns the number of ingested samples.
func (r *Reservoir) N() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained sample,
// linearly interpolating between the two nearest order statistics. It
// returns 0 with no samples.
func (r *Reservoir) Quantile(q float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return 0
	}
	r.sortLocked()
	return quantileOfSorted(r.sort, q)
}

// Quantiles returns several quantiles in one locked pass: the sample is
// copied and sorted once, then every q is read from the sorted buffer.
func (r *Reservoir) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return out
	}
	r.sortLocked()
	for i, q := range qs {
		out[i] = quantileOfSorted(r.sort, q)
	}
	return out
}

// sortLocked refreshes the sorted scratch copy of the sample; the caller
// holds the lock.
func (r *Reservoir) sortLocked() {
	r.sort = append(r.sort[:0], r.buf...)
	sort.Float64s(r.sort)
}

// quantileOfSorted reads the q-quantile from a sorted non-empty sample,
// linearly interpolating between adjacent order statistics.
func quantileOfSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
