package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterRate(t *testing.T) {
	var c Counter
	base := time.Now().UnixNano()
	for i := 0; i <= 100; i++ {
		c.Mark(base + int64(i)*int64(time.Millisecond))
	}
	if c.Count() != 101 {
		t.Fatalf("count = %d, want 101", c.Count())
	}
	// 101 events over 100 ms -> 1010/s.
	if r := c.Rate(); math.Abs(r-1010) > 1 {
		t.Fatalf("rate = %f, want ~1010", r)
	}
}

func TestCounterRateDegenerate(t *testing.T) {
	var c Counter
	if c.Rate() != 0 {
		t.Fatal("empty counter must have zero rate")
	}
	c.Mark(5)
	if c.Rate() != 0 {
		t.Fatal("single-event counter must have zero rate")
	}
}

func TestCounterRateBurst(t *testing.T) {
	// A burst whose Marks all share one timestamp (events faster than the
	// clock ticks) must rate against the wall clock since the first Mark,
	// not report 0.
	var c Counter
	now := time.Now().UnixNano()
	for i := 0; i < 1000; i++ {
		c.Mark(now)
	}
	time.Sleep(10 * time.Millisecond)
	r := c.Rate()
	if r <= 0 {
		t.Fatalf("rate = %f after a one-timestamp burst, want > 0", r)
	}
	// 1000 events over >= 10ms of wall clock: at most 100k/s.
	if r > 100_000 {
		t.Fatalf("rate = %f, want <= 100000 (>=10ms elapsed)", r)
	}
}

func TestCounterConcurrentMarks(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Mark(int64(w*1000 + i + 1))
			}
		}(w)
	}
	wg.Wait()
	if c.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", c.Count())
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 || w.Mean() != 5 {
		t.Fatalf("n=%d mean=%f, want 8/5", w.N(), w.Mean())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min=%f max=%f", w.Min(), w.Max())
	}
	if w.Sum() != 40 {
		t.Fatalf("sum=%f, want 40", w.Sum())
	}
	if sd := w.StdDev(); math.Abs(sd-2.138) > 0.01 {
		t.Fatalf("stddev = %f, want ~2.138", sd)
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		return math.Abs(w.Mean()-mean) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemSampler(t *testing.T) {
	m := NewMemSampler(time.Millisecond)
	var fake uint64 = 100
	var mu sync.Mutex
	m.readMem = func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		fake += 100
		return fake
	}
	m.Start()
	time.Sleep(10 * time.Millisecond)
	m.Stop()
	if m.AvgBytes() <= 0 || m.MaxBytes() < m.AvgBytes() {
		t.Fatalf("avg=%f max=%f", m.AvgBytes(), m.MaxBytes())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 12, 8, 11, 9})
	if s.N != 5 || s.Mean != 10 {
		t.Fatalf("summary = %+v", s)
	}
	// sd = sqrt(10/4) = 1.5811; CI = 2.776*1.5811/sqrt(5) = 1.963.
	if math.Abs(s.CI95-1.963) > 0.01 {
		t.Fatalf("CI95 = %f, want ~1.963", s.CI95)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{7}); s.Mean != 7 || s.CI95 != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestTCritical(t *testing.T) {
	if tCritical95(4) != 2.776 {
		t.Fatalf("t(4) = %f", tCritical95(4))
	}
	if tCritical95(1000) != 1.96 {
		t.Fatalf("t(1000) = %f", tCritical95(1000))
	}
	if tCritical95(0) != 0 {
		t.Fatalf("t(0) = %f", tCritical95(0))
	}
}

func TestPercentDelta(t *testing.T) {
	if d := PercentDelta(100, 96.3); math.Abs(d+3.7) > 1e-9 {
		t.Fatalf("delta = %f, want -3.7", d)
	}
	if PercentDelta(0, 5) != 0 {
		t.Fatal("zero base must give 0")
	}
}
