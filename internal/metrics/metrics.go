// Package metrics implements the measurements of the paper's §7: throughput
// (source tuples per second), latency (sink emission minus the wall-clock
// arrival of the latest contributing source tuple, captured through the
// tuples' stimulus), memory footprint (average and maximum heap in use,
// sampled), contribution-graph traversal time, and mean / 95% confidence
// interval aggregation across repeated runs.
package metrics

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Counter counts events and derives a rate from the enclosing time window.
type Counter struct {
	n     atomic.Int64
	start atomic.Int64 // UnixNano of first Mark, set once
	end   atomic.Int64 // UnixNano of the latest Mark
}

// Mark counts one event at time now (UnixNano).
func (c *Counter) Mark(now int64) {
	c.n.Add(1)
	c.start.CompareAndSwap(0, now)
	c.end.Store(now)
}

// Count returns the number of events.
func (c *Counter) Count() int64 { return c.n.Load() }

// Rate returns events per second between the first and last Mark. A burst
// whose Marks all share one timestamp (n >= 2, end == start — events
// arriving faster than the clock source ticks) is rated against the wall
// clock elapsed since the first Mark instead of reporting 0.
func (c *Counter) Rate() float64 {
	n := c.n.Load()
	start, end := c.start.Load(), c.end.Load()
	if n < 2 {
		return 0
	}
	if end <= start {
		end = time.Now().UnixNano()
		if end <= start {
			return 0
		}
	}
	return float64(n) / (time.Duration(end - start)).Seconds()
}

// Welford accumulates streaming mean/variance/extrema without retaining
// samples.
type Welford struct {
	mu    sync.Mutex
	n     int64
	mean  float64
	m2    float64
	min   float64
	max   float64
	total float64
}

// Add ingests one sample.
func (w *Welford) Add(x float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
	w.total += x
}

// N returns the sample count.
func (w *Welford) N() int64 { w.mu.Lock(); defer w.mu.Unlock(); return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { w.mu.Lock(); defer w.mu.Unlock(); return w.mean }

// Max returns the largest sample (0 with no samples).
func (w *Welford) Max() float64 { w.mu.Lock(); defer w.mu.Unlock(); return w.max }

// Min returns the smallest sample (0 with no samples).
func (w *Welford) Min() float64 { w.mu.Lock(); defer w.mu.Unlock(); return w.min }

// Sum returns the sample total.
func (w *Welford) Sum() float64 { w.mu.Lock(); defer w.mu.Unlock(); return w.total }

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// MemSampler periodically samples the Go heap (HeapAlloc) on a background
// goroutine, giving the paper's average and maximum memory footprint.
type MemSampler struct {
	interval time.Duration
	stats    Welford
	stop     chan struct{}
	done     chan struct{}
	readMem  func() uint64
}

// NewMemSampler returns a sampler with the given period (<= 0 selects 10 ms).
func NewMemSampler(interval time.Duration) *MemSampler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &MemSampler{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		readMem: func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc
		},
	}
}

// Start launches the sampling goroutine.
func (m *MemSampler) Start() {
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(m.interval)
		defer ticker.Stop()
		m.sample()
		for {
			select {
			case <-ticker.C:
				m.sample()
			case <-m.stop:
				m.sample()
				return
			}
		}
	}()
}

func (m *MemSampler) sample() { m.stats.Add(float64(m.readMem())) }

// Stop halts sampling and waits for the goroutine to exit.
func (m *MemSampler) Stop() {
	close(m.stop)
	<-m.done
}

// AvgBytes returns the average sampled heap size.
func (m *MemSampler) AvgBytes() float64 { return m.stats.Mean() }

// MaxBytes returns the maximum sampled heap size.
func (m *MemSampler) MaxBytes() float64 { return m.stats.Max() }

// Summary is the mean and 95% confidence half-interval of repeated-run
// values, the format of the paper's plots ("results are averaged over five
// runs and present the 95% confidence interval").
type Summary struct {
	N    int
	Mean float64
	CI95 float64
}

// Summarize aggregates one value per run.
func Summarize(runs []float64) Summary {
	s := Summary{N: len(runs)}
	if len(runs) == 0 {
		return s
	}
	var sum float64
	for _, v := range runs {
		sum += v
	}
	s.Mean = sum / float64(len(runs))
	if len(runs) < 2 {
		return s
	}
	var sq float64
	for _, v := range runs {
		d := v - s.Mean
		sq += d * d
	}
	sd := math.Sqrt(sq / float64(len(runs)-1))
	s.CI95 = tCritical95(len(runs)-1) * sd / math.Sqrt(float64(len(runs)))
	return s
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (1.96 asymptotically).
func tCritical95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
		2.042,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// PercentDelta returns 100*(v-base)/base, the annotation format of the
// paper's bar charts (e.g. "-3.7%").
func PercentDelta(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (v - base) / base
}
