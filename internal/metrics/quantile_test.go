package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReservoirExactBelowCapacity(t *testing.T) {
	r := NewReservoir(100)
	for i := 1; i <= 99; i++ {
		r.Add(float64(i))
	}
	if r.N() != 99 {
		t.Fatalf("n = %d", r.N())
	}
	if q := r.Quantile(0.5); math.Abs(q-50) > 1e-9 {
		t.Fatalf("p50 = %f, want 50", q)
	}
	if q := r.Quantile(0); q != 1 {
		t.Fatalf("p0 = %f, want 1", q)
	}
	if q := r.Quantile(1); q != 99 {
		t.Fatalf("p100 = %f, want 99", q)
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(10)
	if r.Quantile(0.5) != 0 {
		t.Fatal("empty reservoir must report 0")
	}
}

func TestReservoirClampsQ(t *testing.T) {
	r := NewReservoir(10)
	r.Add(3)
	if r.Quantile(-1) != 3 || r.Quantile(2) != 3 {
		t.Fatal("out-of-range quantiles must clamp")
	}
}

func TestReservoirSamplingApproximation(t *testing.T) {
	r := NewReservoir(512)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100_000; i++ {
		r.Add(rng.Float64() * 1000)
	}
	if r.N() != 100_000 {
		t.Fatalf("n = %d", r.N())
	}
	p50 := r.Quantile(0.5)
	if p50 < 400 || p50 > 600 {
		t.Fatalf("p50 of uniform(0,1000) = %f, want ~500", p50)
	}
	p99 := r.Quantile(0.99)
	if p99 < 930 {
		t.Fatalf("p99 = %f, want near 990", p99)
	}
}

func TestReservoirQuantilesMonotoneProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewReservoir(0)
		for _, v := range raw {
			r.Add(float64(v))
		}
		qs := r.Quantiles(0, 0.25, 0.5, 0.75, 0.9, 0.99, 1)
		for i := 1; i < len(qs); i++ {
			if qs[i] < qs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	mk := func() float64 {
		r := NewReservoir(64)
		for i := 0; i < 10_000; i++ {
			r.Add(float64(i % 777))
		}
		return r.Quantile(0.9)
	}
	if mk() != mk() {
		t.Fatal("reservoir sampling must be deterministic across runs")
	}
}
