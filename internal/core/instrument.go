package core

import "sync/atomic"

// Instrumenter is the strategy the stream operators delegate provenance side
// effects to. One operator implementation serves the paper's three
// evaluation modes:
//
//   - NP (no provenance): Noop, every hook is empty;
//   - GL (GeneaLog): Genealog, hooks set the fixed-size meta-attributes of §4.1;
//   - BL (Ariadne-style baseline): internal/baseline, hooks maintain
//     variable-length annotation lists and a source store.
//
// Hooks are invoked by the operator goroutine that creates (or buffers) the
// tuple, before the tuple is sent downstream, so implementations need no
// internal synchronisation for per-tuple state.
type Instrumenter interface {
	// OnSource is invoked for every tuple created by a Source.
	OnSource(t Tuple)
	// OnMap is invoked for each output tuple of a Map and links it to the
	// input tuple it was derived from.
	OnMap(out, in Tuple)
	// OnMultiplex links one fresh per-branch copy to the multiplexed input.
	OnMultiplex(out, in Tuple)
	// OnJoin links a join result to its two contributors; newer is the one
	// with the more recent timestamp.
	OnJoin(out, newer, older Tuple)
	// OnAggregateLink is invoked when cur is appended right after prev in an
	// aggregate group buffer; it is where GL chains the N meta-attribute.
	OnAggregateLink(prev, cur Tuple)
	// OnAggregateEmit links a window result to the window's contents
	// (timestamp-ordered, oldest first).
	OnAggregateEmit(out Tuple, window []Tuple)
	// OnSend is invoked just before a tuple is serialised by a Send operator.
	OnSend(t Tuple)
	// OnReceive is invoked for every tuple a Receive operator reconstructs
	// from the wire.
	OnReceive(t Tuple)
	// NeedsMultiplexClone reports whether Multiplex must emit per-branch
	// copies (true when per-tuple provenance state must not be shared across
	// branches). When false, Multiplex forwards the same tuple to every
	// branch.
	NeedsMultiplexClone() bool
}

// Noop is the NP instrumenter: provenance capture disabled.
type Noop struct{}

var _ Instrumenter = Noop{}

// OnSource implements Instrumenter.
func (Noop) OnSource(Tuple) {}

// OnMap implements Instrumenter.
func (Noop) OnMap(_, _ Tuple) {}

// OnMultiplex implements Instrumenter.
func (Noop) OnMultiplex(_, _ Tuple) {}

// OnJoin implements Instrumenter.
func (Noop) OnJoin(_, _, _ Tuple) {}

// OnAggregateLink implements Instrumenter.
func (Noop) OnAggregateLink(_, _ Tuple) {}

// OnAggregateEmit implements Instrumenter.
func (Noop) OnAggregateEmit(_ Tuple, _ []Tuple) {}

// OnSend implements Instrumenter.
func (Noop) OnSend(Tuple) {}

// OnReceive implements Instrumenter.
func (Noop) OnReceive(Tuple) {}

// NeedsMultiplexClone implements Instrumenter.
func (Noop) NeedsMultiplexClone() bool { return false }

// Genealog is the GL instrumenter. It sets the Type/U1/U2/N meta-attributes
// exactly as §4.1 prescribes and, when an IDGen is configured (inter-process
// deployments, §6), assigns unique IDs to source tuples and tuples crossing
// process boundaries.
type Genealog struct {
	// IDs, when non-nil, assigns the ID meta-attribute to source tuples and
	// to tuples serialised by Send. Intra-process deployments leave it nil.
	IDs *IDGen
}

var _ Instrumenter = (*Genealog)(nil)

// OnSource implements Instrumenter: T := SOURCE; no pointers are set.
func (g *Genealog) OnSource(t Tuple) {
	m := MetaOf(t)
	if m == nil {
		return
	}
	m.SetKind(KindSource)
	if g.IDs != nil {
		m.SetID(g.IDs.Next())
	}
}

// OnMap implements Instrumenter: T := MAP, U1 := in.
func (g *Genealog) OnMap(out, in Tuple) {
	m := MetaOf(out)
	if m == nil {
		return
	}
	m.SetKind(KindMap)
	m.SetU1(in)
	if g.IDs != nil {
		m.SetID(g.IDs.Next())
	}
}

// OnMultiplex implements Instrumenter: T := MULTIPLEX, U1 := in. The copy
// inherits the input's ID: the single-stream unfolder reads the ID off the
// branch it unfolds, and it must match the ID the Send serialises on the
// sibling branch.
func (g *Genealog) OnMultiplex(out, in Tuple) {
	m := MetaOf(out)
	if m == nil {
		return
	}
	m.SetKind(KindMultiplex)
	m.SetU1(in)
	if im := MetaOf(in); im != nil {
		m.SetID(im.ID())
	}
}

// OnJoin implements Instrumenter: T := JOIN, U1 := newer, U2 := older.
func (g *Genealog) OnJoin(out, newer, older Tuple) {
	m := MetaOf(out)
	if m == nil {
		return
	}
	m.SetKind(KindJoin)
	m.SetU1(newer)
	m.SetU2(older)
	if g.IDs != nil {
		m.SetID(g.IDs.Next())
	}
}

// OnAggregateLink implements Instrumenter: prev.N := cur, written exactly
// once per tuple (the guard keeps the write idempotent when a tuple is
// re-linked by overlapping windows).
func (g *Genealog) OnAggregateLink(prev, cur Tuple) {
	if prev == nil {
		return
	}
	m := MetaOf(prev)
	if m == nil || m.Next() != nil {
		return
	}
	m.SetNext(cur)
}

// OnAggregateEmit implements Instrumenter: T := AGGREGATE, U1 := latest
// window tuple, U2 := earliest window tuple.
func (g *Genealog) OnAggregateEmit(out Tuple, window []Tuple) {
	m := MetaOf(out)
	if m == nil || len(window) == 0 {
		return
	}
	m.SetKind(KindAggregate)
	m.SetU2(window[0])
	m.SetU1(window[len(window)-1])
	if g.IDs != nil {
		m.SetID(g.IDs.Next())
	}
}

// OnSend implements Instrumenter. Following §4.1, tuples that are not of
// type SOURCE become REMOTE on the receiving side; the sender only has to
// guarantee the tuple carries an ID so the multi-stream unfolder can match
// it across the serialisation boundary.
func (g *Genealog) OnSend(t Tuple) {
	m := MetaOf(t)
	if m == nil {
		return
	}
	if m.ID() == 0 && g.IDs != nil {
		m.SetID(g.IDs.Next())
	}
}

// OnReceive implements Instrumenter: a reconstructed tuple keeps kind SOURCE
// if it was a source tuple, and becomes REMOTE otherwise (§4.1, Send).
func (g *Genealog) OnReceive(t Tuple) {
	m := MetaOf(t)
	if m == nil {
		return
	}
	if m.Kind() != KindSource {
		m.SetKind(KindRemote)
	}
	m.SetU1(nil)
	m.SetU2(nil)
	m.SetNext(nil)
}

// NeedsMultiplexClone implements Instrumenter: GL branches must not share
// one tuple object because each branch's downstream aggregate writes the N
// meta-attribute.
func (g *Genealog) NeedsMultiplexClone() bool { return true }

// IDGen produces process-unique tuple IDs. Following the paper's footnote 2,
// an ID is the generating node's identifier in the high bits combined with a
// sequential counter in the low bits, so IDs from different SPE instances
// never collide.
type IDGen struct {
	node uint64
	ctr  atomic.Uint64
}

// nodeBits is the number of high bits reserved for the node identifier.
const nodeBits = 16

// NewIDGen returns an ID generator for the given SPE instance number
// (1-based; instance numbers must fit in 16 bits).
func NewIDGen(node uint16) *IDGen {
	return &IDGen{node: uint64(node) << (64 - nodeBits)}
}

// Next returns the next unique ID. It never returns zero.
func (g *IDGen) Next() uint64 {
	return g.node | g.ctr.Add(1)
}
