package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// labelTuple is a minimal Traceable tuple for tests.
type labelTuple struct {
	Meta
	label string
}

func newLabel(label string, ts int64) *labelTuple {
	return &labelTuple{Meta: NewMeta(ts), label: label}
}

func (t *labelTuple) CloneTuple() Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

// bareTuple implements Tuple but carries no Meta.
type bareTuple struct{ ts int64 }

func (b bareTuple) Timestamp() int64 { return b.ts }

func source(label string, ts int64) *labelTuple {
	t := newLabel(label, ts)
	t.SetKind(KindSource)
	return t
}

func labels(ts []Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.(*labelTuple).label
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFindProvenanceSourceIsItsOwnProvenance(t *testing.T) {
	s := source("s", 1)
	got := FindProvenance(s)
	if !equalStrings(labels(got), []string{"s"}) {
		t.Fatalf("FindProvenance(source) = %v, want [s]", labels(got))
	}
}

func TestFindProvenanceRemoteIsTerminal(t *testing.T) {
	r := newLabel("r", 1)
	r.SetKind(KindRemote)
	// Even with dangling pointers set, REMOTE terminates traversal.
	r.SetU1(source("hidden", 0))
	got := FindProvenance(r)
	if !equalStrings(labels(got), []string{"r"}) {
		t.Fatalf("FindProvenance(remote) = %v, want [r]", labels(got))
	}
}

func TestFindProvenanceMapChain(t *testing.T) {
	s := source("s", 1)
	m1 := newLabel("m1", 1)
	m1.SetKind(KindMap)
	m1.SetU1(s)
	m2 := newLabel("m2", 1)
	m2.SetKind(KindMultiplex)
	m2.SetU1(m1)
	got := FindProvenance(m2)
	if !equalStrings(labels(got), []string{"s"}) {
		t.Fatalf("FindProvenance(map chain) = %v, want [s]", labels(got))
	}
}

func TestFindProvenanceJoin(t *testing.T) {
	l := source("l", 1)
	r := source("r", 2)
	j := newLabel("j", 2)
	j.SetKind(KindJoin)
	j.SetU1(r) // newer
	j.SetU2(l) // older
	got := FindProvenance(j)
	if !equalStrings(labels(got), []string{"r", "l"}) {
		t.Fatalf("FindProvenance(join) = %v, want [r l]", labels(got))
	}
}

func TestFindProvenanceAggregateWindow(t *testing.T) {
	// Window of four chained source tuples, as in the paper's Q1 (Fig. 4).
	var win []*labelTuple
	for i := 0; i < 4; i++ {
		win = append(win, source(string(rune('a'+i)), int64(i)))
	}
	for i := 0; i < 3; i++ {
		win[i].SetNext(win[i+1])
	}
	out := newLabel("agg", 0)
	out.SetKind(KindAggregate)
	out.SetU2(win[0])
	out.SetU1(win[3])
	got := FindProvenance(out)
	if !equalStrings(labels(got), []string{"a", "b", "c", "d"}) {
		t.Fatalf("FindProvenance(aggregate) = %v, want [a b c d]", labels(got))
	}
}

func TestFindProvenanceAggregateSingleTupleWindow(t *testing.T) {
	s := source("s", 1)
	// A later overlapping window may already have chained s to its group
	// successor; a singleton window must not follow that link.
	s.SetNext(source("later", 2))
	out := newLabel("agg", 1)
	out.SetKind(KindAggregate)
	out.SetU1(s)
	out.SetU2(s)
	got := FindProvenance(out)
	if !equalStrings(labels(got), []string{"s"}) {
		t.Fatalf("FindProvenance(singleton window) = %v, want [s]", labels(got))
	}
}

func TestFindProvenanceAggregateChainBeyondU1Ignored(t *testing.T) {
	// The N chain continues past U1 (overlapping windows keep linking), but
	// traversal must stop at U1 inclusive.
	var chain []*labelTuple
	for i := 0; i < 6; i++ {
		chain = append(chain, source(string(rune('a'+i)), int64(i)))
	}
	for i := 0; i < 5; i++ {
		chain[i].SetNext(chain[i+1])
	}
	out := newLabel("agg", 0)
	out.SetKind(KindAggregate)
	out.SetU2(chain[1])
	out.SetU1(chain[4])
	got := FindProvenance(out)
	if !equalStrings(labels(got), []string{"b", "c", "d", "e"}) {
		t.Fatalf("FindProvenance(window slice) = %v, want [b c d e]", labels(got))
	}
}

func TestFindProvenanceSharedContributorVisitedOnce(t *testing.T) {
	// Diamond: one source contributes through two map branches into a join.
	s := source("s", 1)
	a := newLabel("a", 1)
	a.SetKind(KindMap)
	a.SetU1(s)
	b := newLabel("b", 1)
	b.SetKind(KindMap)
	b.SetU1(s)
	j := newLabel("j", 1)
	j.SetKind(KindJoin)
	j.SetU1(a)
	j.SetU2(b)
	got := FindProvenance(j)
	if !equalStrings(labels(got), []string{"s"}) {
		t.Fatalf("FindProvenance(diamond) = %v, want [s]", labels(got))
	}
}

func TestFindProvenanceNestedAggregates(t *testing.T) {
	// Q3 shape: a second aggregate whose window holds first-level aggregate
	// outputs; provenance is the union of the inner windows.
	mkInner := func(base string, n int, ts int64) *labelTuple {
		var win []*labelTuple
		for i := 0; i < n; i++ {
			win = append(win, source(base+string(rune('0'+i)), ts+int64(i)))
		}
		for i := 0; i+1 < n; i++ {
			win[i].SetNext(win[i+1])
		}
		out := newLabel("agg-"+base, ts)
		out.SetKind(KindAggregate)
		out.SetU2(win[0])
		out.SetU1(win[n-1])
		return out
	}
	in1 := mkInner("x", 3, 0)
	in2 := mkInner("y", 2, 10)
	in1.SetNext(in2)
	outer := newLabel("outer", 0)
	outer.SetKind(KindAggregate)
	outer.SetU2(in1)
	outer.SetU1(in2)
	got := labels(FindProvenance(outer))
	want := map[string]bool{"x0": true, "x1": true, "x2": true, "y0": true, "y1": true}
	if len(got) != len(want) {
		t.Fatalf("nested aggregate provenance = %v, want keys %v", got, want)
	}
	for _, l := range got {
		if !want[l] {
			t.Fatalf("unexpected originating tuple %q in %v", l, got)
		}
	}
}

func TestFindProvenanceNilRoot(t *testing.T) {
	if got := FindProvenance(nil); got != nil {
		t.Fatalf("FindProvenance(nil) = %v, want nil", got)
	}
}

func TestFindProvenanceBareTupleIsTerminal(t *testing.T) {
	b := bareTuple{ts: 5}
	got := FindProvenance(b)
	if len(got) != 1 || got[0] != Tuple(b) {
		t.Fatalf("FindProvenance(bare) = %v, want the tuple itself", got)
	}
}

func TestCountProvenance(t *testing.T) {
	l := source("l", 1)
	r := source("r", 2)
	j := newLabel("j", 2)
	j.SetKind(KindJoin)
	j.SetU1(r)
	j.SetU2(l)
	if n := CountProvenance(j); n != 2 {
		t.Fatalf("CountProvenance = %d, want 2", n)
	}
}

func TestGenealogResolver(t *testing.T) {
	s := source("s", 1)
	m := newLabel("m", 1)
	m.SetKind(KindMap)
	m.SetU1(s)
	var r GenealogResolver
	got := r.Resolve(m)
	if !equalStrings(labels(got), []string{"s"}) {
		t.Fatalf("Resolve = %v, want [s]", labels(got))
	}
}

// randomDAG builds a random contribution graph over ns sources and returns
// the root along with the expected set of originating labels. It exercises
// every tuple kind the traversal distinguishes.
func randomDAG(rng *rand.Rand, ns int) (Tuple, map[string]bool) {
	if ns < 1 {
		ns = 1
	}
	type node struct {
		t    *labelTuple
		want map[string]bool
	}
	var pool []node
	for i := 0; i < ns; i++ {
		lbl := "s" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		pool = append(pool, node{t: source(lbl, int64(i)), want: map[string]bool{lbl: true}})
	}
	steps := 1 + rng.Intn(12)
	ctr := 0
	for i := 0; i < steps; i++ {
		switch rng.Intn(3) {
		case 0: // map over a random node
			in := pool[rng.Intn(len(pool))]
			out := newLabel("m", in.t.Timestamp())
			out.SetKind(KindMap)
			out.SetU1(in.t)
			pool = append(pool, node{t: out, want: in.want})
		case 1: // join of two random nodes
			a := pool[rng.Intn(len(pool))]
			b := pool[rng.Intn(len(pool))]
			out := newLabel("j", max64(a.t.Timestamp(), b.t.Timestamp()))
			out.SetKind(KindJoin)
			out.SetU1(a.t)
			out.SetU2(b.t)
			want := union(a.want, b.want)
			pool = append(pool, node{t: out, want: want})
		case 2: // aggregate over 1..4 random nodes, each wrapped in a fresh
			// MAP tuple so the N chain never conflicts across aggregates.
			n := 1 + rng.Intn(4)
			want := map[string]bool{}
			var win []*labelTuple
			for k := 0; k < n; k++ {
				in := pool[rng.Intn(len(pool))]
				w := newLabel("w", in.t.Timestamp())
				w.SetKind(KindMap)
				w.SetU1(in.t)
				win = append(win, w)
				want = union(want, in.want)
			}
			for k := 0; k+1 < n; k++ {
				win[k].SetNext(win[k+1])
			}
			out := newLabel("a", win[0].Timestamp())
			out.SetKind(KindAggregate)
			out.SetU2(win[0])
			out.SetU1(win[n-1])
			pool = append(pool, node{t: out, want: want})
		}
		ctr++
	}
	root := pool[len(pool)-1]
	return root.t, root.want
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestFindProvenanceRandomDAGProperty(t *testing.T) {
	prop := func(seed int64, ns uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		root, want := randomDAG(rng, int(ns%8)+1)
		got := FindProvenance(root)
		if len(got) != len(want) {
			return false
		}
		for _, g := range got {
			if !want[g.(*labelTuple).label] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
