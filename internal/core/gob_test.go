package core

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
)

func TestMetaGobRoundTrip(t *testing.T) {
	m := NewMeta(42)
	m.SetStimulus(99)
	m.SetID(123)
	m.SetKind(KindJoin)
	m.SetAnnotation([]uint64{5, 6, 7})
	m.SetU1(newLabel("dangling", 0))

	data, err := m.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var out Meta
	if err := out.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if out.Timestamp() != 42 || out.Stimulus() != 99 || out.ID() != 123 || out.Kind() != KindJoin {
		t.Fatalf("round trip lost scalars: %+v", out)
	}
	if len(out.Annotation()) != 3 || out.Annotation()[2] != 7 {
		t.Fatalf("round trip lost annotation: %v", out.Annotation())
	}
	if out.U1() != nil || out.U2() != nil || out.Next() != nil {
		t.Fatal("pointers must not survive encoding")
	}
}

func TestMetaGobRoundTripProperty(t *testing.T) {
	prop := func(ts, stim int64, id uint64, kind uint8, ann []uint64) bool {
		m := NewMeta(ts)
		m.SetStimulus(stim)
		m.SetID(id)
		m.SetKind(Kind(kind % 7))
		if len(ann) > 0 {
			m.SetAnnotation(ann)
		}
		data, err := m.GobEncode()
		if err != nil {
			return false
		}
		var out Meta
		if err := out.GobDecode(data); err != nil {
			return false
		}
		if out.Timestamp() != ts || out.Stimulus() != stim || out.ID() != id || out.Kind() != Kind(kind%7) {
			return false
		}
		if len(out.Annotation()) != len(ann) {
			return false
		}
		for i := range ann {
			if out.Annotation()[i] != ann[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaGobDecodeRejectsGarbage(t *testing.T) {
	var m Meta
	if err := m.GobDecode(nil); err == nil {
		t.Fatal("nil data must fail")
	}
	if err := m.GobDecode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short data must fail")
	}
	// Wrong version byte.
	goodMeta := NewMeta(1)
	good, _ := goodMeta.GobEncode()
	bad := append([]byte{}, good...)
	bad[0] = 99
	if err := m.GobDecode(bad); err == nil {
		t.Fatal("unknown version must fail")
	}
	// Annotation length pointing past the buffer.
	withAnn := NewMeta(1)
	withAnn.SetAnnotation([]uint64{1, 2, 3})
	data, _ := withAnn.GobEncode()
	truncated := data[:len(data)-8]
	if err := m.GobDecode(truncated); err == nil {
		t.Fatal("truncated annotation must fail")
	}
}

func TestMetaGobThroughEncoder(t *testing.T) {
	// Meta as a named struct field must round-trip through a real gob
	// stream (the transport package covers the full tuple path; this pins
	// the core behaviour).
	type wrapper struct {
		M Meta
		X int
	}
	var buf bytes.Buffer
	in := wrapper{M: NewMeta(7), X: 5}
	in.M.SetID(11)
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatal(err)
	}
	var out wrapper
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.M.Timestamp() != 7 || out.M.ID() != 11 || out.X != 5 {
		t.Fatalf("wrapper round trip = %+v", out)
	}
}
