package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// wireMetaVersion guards the hand-rolled Meta wire layout.
const wireMetaVersion = 1

// GobEncode serialises the wire-relevant part of Meta: event time, stimulus,
// ID, kind and the baseline annotation list. The U1/U2/N references are
// process-local memory pointers and are deliberately dropped — that is the
// inter-process reality the paper's §6 algorithm (REMOTE tuples + IDs +
// SU/MU unfolders) exists to handle.
func (m *Meta) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(8*(4+len(m.ann)) + 2)
	var scratch [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf.Write(scratch[:])
	}
	buf.WriteByte(wireMetaVersion)
	buf.WriteByte(byte(m.kind))
	put(uint64(m.ts))
	put(uint64(m.stim))
	put(m.id)
	put(uint64(len(m.ann)))
	for _, a := range m.ann {
		put(a)
	}
	return buf.Bytes(), nil
}

// GobDecode reverses GobEncode. The pointer meta-attributes are left nil;
// the receiving operator's OnReceive hook re-types the tuple (SOURCE stays
// SOURCE, everything else becomes REMOTE).
func (m *Meta) GobDecode(data []byte) error {
	if len(data) < 2+4*8 {
		return fmt.Errorf("core: meta wire data too short (%d bytes)", len(data))
	}
	if data[0] != wireMetaVersion {
		return fmt.Errorf("core: unsupported meta wire version %d", data[0])
	}
	m.kind = Kind(data[1])
	rest := data[2:]
	get := func(i int) uint64 { return binary.LittleEndian.Uint64(rest[i*8:]) }
	m.ts = int64(get(0))
	m.stim = int64(get(1))
	m.id = get(2)
	n := get(3)
	if want := int(n)*8 + 4*8; len(rest) < want {
		return fmt.Errorf("core: meta wire data truncated: have %d bytes, want %d", len(rest), want)
	}
	m.u1, m.u2, m.next = nil, nil, nil
	m.ann = nil
	if n > 0 {
		m.ann = make([]uint64, n)
		for i := range m.ann {
			m.ann[i] = get(4 + i)
		}
	}
	return nil
}
