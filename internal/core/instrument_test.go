package core

import (
	"sync"
	"testing"
)

func TestGenealogOnSource(t *testing.T) {
	g := &Genealog{}
	s := newLabel("s", 1)
	g.OnSource(s)
	if s.Kind() != KindSource {
		t.Fatalf("kind = %v, want SOURCE", s.Kind())
	}
	if s.ID() != 0 {
		t.Fatalf("intra-process source should have no ID, got %d", s.ID())
	}
}

func TestGenealogOnSourceAssignsIDsWhenConfigured(t *testing.T) {
	g := &Genealog{IDs: NewIDGen(3)}
	a, b := newLabel("a", 1), newLabel("b", 2)
	g.OnSource(a)
	g.OnSource(b)
	if a.ID() == 0 || b.ID() == 0 {
		t.Fatal("inter-process sources must get IDs")
	}
	if a.ID() == b.ID() {
		t.Fatalf("IDs must be unique, both = %d", a.ID())
	}
}

func TestGenealogOnMapAndMultiplex(t *testing.T) {
	g := &Genealog{}
	in := source("in", 1)
	out := newLabel("out", 1)
	g.OnMap(out, in)
	if out.Kind() != KindMap || out.U1() != Tuple(in) {
		t.Fatalf("OnMap: kind=%v u1=%v", out.Kind(), out.U1())
	}
	cp := newLabel("cp", 1)
	g.OnMultiplex(cp, in)
	if cp.Kind() != KindMultiplex || cp.U1() != Tuple(in) {
		t.Fatalf("OnMultiplex: kind=%v u1=%v", cp.Kind(), cp.U1())
	}
}

func TestGenealogOnJoin(t *testing.T) {
	g := &Genealog{}
	older := source("older", 1)
	newer := source("newer", 5)
	out := newLabel("out", 5)
	g.OnJoin(out, newer, older)
	if out.Kind() != KindJoin {
		t.Fatalf("kind = %v, want JOIN", out.Kind())
	}
	if out.U1() != Tuple(newer) || out.U2() != Tuple(older) {
		t.Fatal("join must set U1=newer, U2=older")
	}
}

func TestGenealogAggregateLinkWritesOnce(t *testing.T) {
	g := &Genealog{}
	a, b, c := source("a", 1), source("b", 2), source("c", 3)
	g.OnAggregateLink(a, b)
	// Overlapping windows re-link the same pair; the first write must win.
	g.OnAggregateLink(a, c)
	if a.Next() != Tuple(b) {
		t.Fatalf("a.Next = %v, want b", a.Next())
	}
	g.OnAggregateLink(nil, b) // must not panic
}

func TestGenealogOnAggregateEmit(t *testing.T) {
	g := &Genealog{}
	win := []Tuple{source("a", 1), source("b", 2), source("c", 3)}
	out := newLabel("out", 0)
	g.OnAggregateEmit(out, win)
	if out.Kind() != KindAggregate || out.U2() != win[0] || out.U1() != win[2] {
		t.Fatalf("emit: kind=%v u2=%v u1=%v", out.Kind(), out.U2(), out.U1())
	}
	empty := newLabel("e", 0)
	g.OnAggregateEmit(empty, nil)
	if empty.Kind() != KindNone {
		t.Fatal("empty window must not be instrumented")
	}
}

func TestGenealogOnSendAssignsIDOnce(t *testing.T) {
	g := &Genealog{IDs: NewIDGen(1)}
	s := source("s", 1)
	g.OnSend(s)
	id := s.ID()
	if id == 0 {
		t.Fatal("OnSend must assign an ID")
	}
	g.OnSend(s)
	if s.ID() != id {
		t.Fatal("OnSend must not reassign an existing ID")
	}
}

func TestGenealogOnReceive(t *testing.T) {
	g := &Genealog{}
	agg := newLabel("agg", 1)
	agg.SetKind(KindAggregate)
	agg.SetU1(source("dangling", 0))
	g.OnReceive(agg)
	if agg.Kind() != KindRemote {
		t.Fatalf("non-source received tuple must become REMOTE, got %v", agg.Kind())
	}
	if agg.U1() != nil || agg.U2() != nil || agg.Next() != nil {
		t.Fatal("received tuples must carry no dangling pointers")
	}

	src := source("src", 1)
	g.OnReceive(src)
	if src.Kind() != KindSource {
		t.Fatalf("source tuples stay SOURCE across processes, got %v", src.Kind())
	}
}

func TestNoopLeavesTuplesUntouched(t *testing.T) {
	var n Noop
	s := newLabel("s", 1)
	n.OnSource(s)
	n.OnMap(s, s)
	n.OnJoin(s, s, s)
	n.OnAggregateLink(s, s)
	n.OnAggregateEmit(s, []Tuple{s})
	n.OnSend(s)
	n.OnReceive(s)
	if s.Kind() != KindNone || s.U1() != nil || s.U2() != nil || s.Next() != nil {
		t.Fatal("Noop must not set any meta-attribute")
	}
	if n.NeedsMultiplexClone() {
		t.Fatal("Noop must not require multiplex clones")
	}
}

func TestIDGenUniqueAcrossGoroutines(t *testing.T) {
	g := NewIDGen(2)
	const perG, workers = 1000, 8
	var mu sync.Mutex
	seen := make(map[uint64]bool, perG*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]uint64, 0, perG)
			for i := 0; i < perG; i++ {
				ids = append(ids, g.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate ID %d", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != perG*workers {
		t.Fatalf("got %d unique IDs, want %d", len(seen), perG*workers)
	}
}

func TestIDGenNodePrefixesDistinct(t *testing.T) {
	a, b := NewIDGen(1), NewIDGen(2)
	ida, idb := a.Next(), b.Next()
	if ida == idb {
		t.Fatalf("IDs from distinct nodes collide: %d", ida)
	}
	if ida>>48 == idb>>48 {
		t.Fatalf("node prefixes must differ: %x vs %x", ida, idb)
	}
}

func TestMetaAccessors(t *testing.T) {
	m := NewMeta(42)
	if m.Timestamp() != 42 {
		t.Fatalf("ts = %d, want 42", m.Timestamp())
	}
	m.SetTimestamp(43)
	if m.Timestamp() != 43 {
		t.Fatalf("ts = %d, want 43", m.Timestamp())
	}
	m.SetStimulus(100)
	m.MergeStimulus(50) // lower: ignored
	if m.Stimulus() != 100 {
		t.Fatalf("stimulus = %d, want 100", m.Stimulus())
	}
	m.MergeStimulus(150)
	if m.Stimulus() != 150 {
		t.Fatalf("stimulus = %d, want 150", m.Stimulus())
	}
	m.SetAnnotation([]uint64{1, 2})
	if len(m.Annotation()) != 2 {
		t.Fatal("annotation not stored")
	}
	m.SetKind(KindJoin)
	m.SetID(7)
	m.ResetProvenance()
	if m.Kind() != KindNone || m.ID() != 0 || m.Annotation() != nil {
		t.Fatal("ResetProvenance must clear provenance state")
	}
	if m.Timestamp() != 43 || m.Stimulus() != 150 {
		t.Fatal("ResetProvenance must keep ts and stimulus")
	}
}

func TestMetaOf(t *testing.T) {
	if MetaOf(bareTuple{}) != nil {
		t.Fatal("bare tuples have no meta")
	}
	l := newLabel("l", 1)
	if MetaOf(l) != l.ProvMeta() {
		t.Fatal("MetaOf must return the embedded meta")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNone: "NONE", KindSource: "SOURCE", KindRemote: "REMOTE",
		KindMap: "MAP", KindMultiplex: "MULTIPLEX", KindJoin: "JOIN",
		KindAggregate: "AGGREGATE", Kind(99): "INVALID",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
