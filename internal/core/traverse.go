package core

// FindProvenance traverses the contribution graph rooted at root and returns
// its originating tuples (paper Definition 4.1): the tuples of kind SOURCE
// or REMOTE reachable through the U1/U2/N meta-attributes. It is a direct
// implementation of the breadth-first search of the paper's Listing 1.
//
// The returned slice preserves discovery (BFS) order, which is deterministic
// for a deterministic query execution. Each originating tuple appears once.
//
// A tuple of kind NONE (never instrumented, or instrumentation disabled) is
// treated as its own originating tuple so that traversal degrades gracefully
// when provenance capture is off.
func FindProvenance(root Tuple) []Tuple {
	var result []Tuple
	visited := make(map[Tuple]struct{})
	queue := make([]Tuple, 0, 8)

	enqueue := func(t Tuple) {
		if t == nil {
			return
		}
		if _, ok := visited[t]; ok {
			return
		}
		visited[t] = struct{}{}
		queue = append(queue, t)
	}

	enqueue(root)
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		m := MetaOf(t)
		if m == nil {
			result = append(result, t)
			continue
		}
		switch m.Kind() {
		case KindSource, KindRemote, KindNone:
			result = append(result, t)
		case KindMap, KindMultiplex:
			enqueue(m.U1())
		case KindJoin:
			enqueue(m.U1())
			enqueue(m.U2())
		case KindAggregate:
			enqueue(m.U2())
			// Walk the N chain from U2's successor up to (exclusive) U1.
			// When U1 == U2 the window holds a single tuple and there is
			// nothing to walk: U2's N may already point past the window,
			// set by a later overlapping window of the same group.
			if u2 := MetaOf(m.U2()); u2 != nil && m.U1() != m.U2() {
				for temp := u2.Next(); temp != nil && temp != m.U1(); {
					enqueue(temp)
					tm := MetaOf(temp)
					if tm == nil {
						break
					}
					temp = tm.Next()
				}
			}
			enqueue(m.U1())
		}
	}
	return result
}

// CountProvenance returns the number of originating tuples of root without
// materialising the result slice. It walks the same graph as FindProvenance.
func CountProvenance(root Tuple) int {
	return len(FindProvenance(root))
}

// Resolver maps a sink tuple to the source tuples contributing to it. The
// GeneaLog resolver traverses pointers; the baseline resolver consults its
// source store. Having both behind one interface lets the harness treat the
// two techniques symmetrically.
type Resolver interface {
	// Resolve returns the originating tuples of sink.
	Resolve(sink Tuple) []Tuple
}

// GenealogResolver resolves provenance by traversing the contribution graph
// (FindProvenance). The zero value is ready to use.
type GenealogResolver struct{}

var _ Resolver = GenealogResolver{}

// Resolve implements Resolver.
func (GenealogResolver) Resolve(sink Tuple) []Tuple { return FindProvenance(sink) }
