// Package core implements GeneaLog's fine-grained data-provenance model:
// the fixed-size per-tuple meta-attributes (Type, U1, U2, N and, for
// inter-process deployments, ID), the contribution-graph traversal of the
// paper's Listing 1, and the operator instrumentation strategies (NP, GL)
// that the stream-processing operators in internal/ops delegate to.
//
// The central idea (paper §4) is that every tuple carries exactly four
// provenance meta-attributes. U1, U2 and N are in-process references to
// other tuples; a sink tuple therefore transitively pins the source tuples
// that contribute to it, and the Go garbage collector reclaims a source
// tuple as soon as no in-flight tuple's contribution graph references it
// (challenge C2 of the paper).
package core

// Kind identifies the operator that created a tuple. It is the paper's
// "Type" meta-attribute. Operators that forward, rather than create, tuples
// (Filter, Union) never change a tuple's Kind.
type Kind uint8

// Tuple kinds, paper §4. KindNone is the unset zero value: a tuple that has
// not passed through an instrumented creator yet.
const (
	KindNone Kind = iota
	KindSource
	KindRemote
	KindMap
	KindMultiplex
	KindJoin
	KindAggregate
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "NONE"
	case KindSource:
		return "SOURCE"
	case KindRemote:
		return "REMOTE"
	case KindMap:
		return "MAP"
	case KindMultiplex:
		return "MULTIPLEX"
	case KindJoin:
		return "JOIN"
	case KindAggregate:
		return "AGGREGATE"
	default:
		return "INVALID"
	}
}

// Tuple is the minimal contract for data items flowing through a query.
//
// Timestamp returns the tuple's event time (attribute "ts" in the paper).
// The unit is application defined (seconds for Linear Road, hours for the
// smart-grid queries); queries only compare and subtract timestamps.
type Tuple interface {
	Timestamp() int64
}

// Traceable is implemented by tuples that carry GeneaLog meta-attributes.
// Application tuple structs obtain it by embedding Meta.
type Traceable interface {
	Tuple
	ProvMeta() *Meta
}

// Cloneable is implemented by tuples that the Multiplex operator can copy.
// CloneTuple must return a new tuple with the same payload, event time and
// stimulus, but a fresh (zero) set of provenance meta-attributes; the
// instrumenter decides how the copy is linked to the original.
type Cloneable interface {
	Tuple
	CloneTuple() Tuple
}

// Meta holds GeneaLog's fixed-size per-tuple metadata. Application tuples
// embed it:
//
//	type PositionReport struct {
//		core.Meta
//		CarID int32
//		Speed int32
//		Pos   int32
//	}
//
// The embedded Meta provides Timestamp, ProvMeta and the stimulus plumbing,
// so the struct satisfies core.Traceable.
//
// Concurrency: u1 and u2 are written exactly once, by the operator that
// creates the tuple, before the tuple is sent downstream. next is written at
// most once, by the single Aggregate that buffers the tuple, and every
// window emission that can observe the write happens after it (the write
// precedes the channel send of the emitted window result). Traversal
// therefore needs no synchronisation.
type Meta struct {
	ts   int64
	stim int64
	id   uint64
	kind Kind
	u1   Tuple
	u2   Tuple
	next Tuple
	ann  []uint64 // baseline (Ariadne-style) annotation list; nil under NP/GL
}

// NewMeta returns a Meta carrying the given event time.
func NewMeta(ts int64) Meta { return Meta{ts: ts} }

// ProvMeta returns the metadata itself; it makes any struct embedding Meta
// satisfy Traceable.
func (m *Meta) ProvMeta() *Meta { return m }

// Timestamp returns the tuple's event time.
func (m *Meta) Timestamp() int64 { return m.ts }

// SetTimestamp sets the tuple's event time. It must only be called by the
// operator creating the tuple, before the tuple is sent downstream.
func (m *Meta) SetTimestamp(ts int64) { m.ts = ts }

// Stimulus returns the wall-clock instant (nanoseconds) at which the most
// recent source tuple contributing to this tuple entered the system. Sink
// latency is measured as emission time minus stimulus, which is exactly the
// paper's latency definition (§7).
func (m *Meta) Stimulus() int64 { return m.stim }

// SetStimulus records the wall-clock arrival instant.
func (m *Meta) SetStimulus(ns int64) { m.stim = ns }

// MergeStimulus raises the stimulus to ns if ns is more recent.
func (m *Meta) MergeStimulus(ns int64) {
	if ns > m.stim {
		m.stim = ns
	}
}

// Kind returns the paper's Type meta-attribute.
func (m *Meta) Kind() Kind { return m.kind }

// SetKind sets the Type meta-attribute.
func (m *Meta) SetKind(k Kind) { m.kind = k }

// U1 returns the first upstream reference (most recent contributor for
// Join/Aggregate, the single contributor for Map/Multiplex).
func (m *Meta) U1() Tuple { return m.u1 }

// U2 returns the second upstream reference (oldest contributor for
// Join/Aggregate; nil otherwise).
func (m *Meta) U2() Tuple { return m.u2 }

// Next returns the N meta-attribute: the successor of this tuple inside its
// aggregate group, used to walk a window's contents from U2 to U1.
func (m *Meta) Next() Tuple { return m.next }

// SetU1 sets the U1 reference.
func (m *Meta) SetU1(t Tuple) { m.u1 = t }

// SetU2 sets the U2 reference.
func (m *Meta) SetU2(t Tuple) { m.u2 = t }

// SetNext sets the N reference. It must be written at most once per tuple,
// before any downstream observer can reach the tuple through a window
// emission (see the concurrency note on Meta).
func (m *Meta) SetNext(t Tuple) { m.next = t }

// ID returns the tuple's unique identifier, used by the inter-process
// algorithm (§6) to rebuild cross-process links after serialisation.
// Zero means unassigned.
func (m *Meta) ID() uint64 { return m.id }

// SetID assigns the tuple's unique identifier.
func (m *Meta) SetID(id uint64) { m.id = id }

// Annotation returns the baseline's variable-length list of contributing
// source-tuple IDs. It is nil under NP and GL; its unbounded growth is the
// pathology GeneaLog eliminates (challenge C1).
func (m *Meta) Annotation() []uint64 { return m.ann }

// SetAnnotation replaces the baseline annotation list.
func (m *Meta) SetAnnotation(ids []uint64) { m.ann = ids }

// ResetProvenance clears every provenance meta-attribute (but keeps event
// time and stimulus). CloneTuple implementations call it on copies.
func (m *Meta) ResetProvenance() {
	m.id = 0
	m.kind = KindNone
	m.u1, m.u2, m.next = nil, nil, nil
	m.ann = nil
}

// MetaOf returns the provenance metadata of t, or nil if t does not carry
// any (i.e. does not embed Base).
func MetaOf(t Tuple) *Meta {
	if tr, ok := t.(Traceable); ok {
		return tr.ProvMeta()
	}
	return nil
}

// Base is what application tuple structs embed to become Traceable:
//
//	type PositionReport struct {
//		core.Base
//		CarID int32
//	}
//
// It holds Meta as a named field rather than embedding it, on purpose: Meta
// implements GobEncoder/GobDecoder (dropping the process-local pointers on
// the wire), and embedding it directly would promote those methods to the
// application struct, silently discarding the payload during serialisation.
// Base forwards the Meta API instead, promoting convenience methods but no
// marshalling interfaces.
type Base struct {
	M Meta
}

// NewBase returns a Base carrying the given event time.
func NewBase(ts int64) Base { return Base{M: NewMeta(ts)} }

var _ Traceable = (*Base)(nil)

// ProvMeta implements Traceable.
func (b *Base) ProvMeta() *Meta { return &b.M }

// Timestamp implements Tuple.
func (b *Base) Timestamp() int64 { return b.M.Timestamp() }

// SetTimestamp forwards to Meta.
func (b *Base) SetTimestamp(ts int64) { b.M.SetTimestamp(ts) }

// Stimulus forwards to Meta.
func (b *Base) Stimulus() int64 { return b.M.Stimulus() }

// SetStimulus forwards to Meta.
func (b *Base) SetStimulus(ns int64) { b.M.SetStimulus(ns) }

// MergeStimulus forwards to Meta.
func (b *Base) MergeStimulus(ns int64) { b.M.MergeStimulus(ns) }

// Kind forwards to Meta.
func (b *Base) Kind() Kind { return b.M.Kind() }

// SetKind forwards to Meta.
func (b *Base) SetKind(k Kind) { b.M.SetKind(k) }

// U1 forwards to Meta.
func (b *Base) U1() Tuple { return b.M.U1() }

// U2 forwards to Meta.
func (b *Base) U2() Tuple { return b.M.U2() }

// Next forwards to Meta.
func (b *Base) Next() Tuple { return b.M.Next() }

// SetU1 forwards to Meta.
func (b *Base) SetU1(t Tuple) { b.M.SetU1(t) }

// SetU2 forwards to Meta.
func (b *Base) SetU2(t Tuple) { b.M.SetU2(t) }

// SetNext forwards to Meta.
func (b *Base) SetNext(t Tuple) { b.M.SetNext(t) }

// ID forwards to Meta.
func (b *Base) ID() uint64 { return b.M.ID() }

// SetID forwards to Meta.
func (b *Base) SetID(id uint64) { b.M.SetID(id) }

// Annotation forwards to Meta.
func (b *Base) Annotation() []uint64 { return b.M.Annotation() }

// SetAnnotation forwards to Meta.
func (b *Base) SetAnnotation(ids []uint64) { b.M.SetAnnotation(ids) }

// ResetProvenance forwards to Meta.
func (b *Base) ResetProvenance() { b.M.ResetProvenance() }
