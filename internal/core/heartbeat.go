package core

// Heartbeat is a watermark marker: a Heartbeat with event time T on a stream
// promises that no later tuple on that stream carries an event time below T.
//
// Deterministic timestamp-sorted merging (paper §2) blocks until every input
// has a buffered head, so a stream that goes quiet — a Filter dropping
// everything, an Aggregate between alerts, the derived stream of a
// multi-stream unfolder while no sink tuples are produced — would stall its
// merge peers and, through backpressure, can deadlock a distributed
// deployment. Operators that *create* sparsity therefore emit Heartbeats
// whenever their output watermark advances without data; every operator
// forwards them transparently and user functions never observe them.
//
// Heartbeats carry no payload and no provenance; they are dropped at Sinks
// and provenance collectors (where they first trigger a flush of completed
// groups).
type Heartbeat struct {
	Base
}

// NewHeartbeat returns a watermark marker for event time ts.
func NewHeartbeat(ts int64) *Heartbeat {
	return &Heartbeat{Base: NewBase(ts)}
}

// CloneTuple implements Cloneable (instrumented Multiplex operators may
// clone anything they forward).
func (h *Heartbeat) CloneTuple() Tuple {
	cp := *h
	cp.ResetProvenance()
	return &cp
}

// IsHeartbeat reports whether t is a watermark marker.
func IsHeartbeat(t Tuple) bool {
	_, ok := t.(*Heartbeat)
	return ok
}
