package smartgrid

import (
	"genealog/internal/transport"
)

// Binary wire tags for the Smart Grid tuple types (10-19 reserved for this
// package).
const (
	tagMeterReading  uint16 = 10
	tagDailyCons     uint16 = 11
	tagBlackoutAlert uint16 = 12
	tagAnomalyAlert  uint16 = 13
)

var (
	_ transport.WireTuple = (*MeterReading)(nil)
	_ transport.WireTuple = (*DailyCons)(nil)
	_ transport.WireTuple = (*BlackoutAlert)(nil)
	_ transport.WireTuple = (*AnomalyAlert)(nil)
)

// MarshalWire implements transport.WireTuple.
func (m *MeterReading) MarshalWire(buf []byte) ([]byte, error) {
	buf = transport.AppendInt32(buf, m.MeterID)
	buf = transport.AppendFloat64(buf, m.Cons)
	return buf, nil
}

// UnmarshalWire implements transport.WireTuple.
func (m *MeterReading) UnmarshalWire(data []byte) error {
	var err error
	if m.MeterID, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	m.Cons, _, err = transport.ReadFloat64(data)
	return err
}

// MarshalWire implements transport.WireTuple.
func (d *DailyCons) MarshalWire(buf []byte) ([]byte, error) {
	buf = transport.AppendInt32(buf, d.MeterID)
	buf = transport.AppendFloat64(buf, d.ConsSum)
	return buf, nil
}

// UnmarshalWire implements transport.WireTuple.
func (d *DailyCons) UnmarshalWire(data []byte) error {
	var err error
	if d.MeterID, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	d.ConsSum, _, err = transport.ReadFloat64(data)
	return err
}

// MarshalWire implements transport.WireTuple.
func (a *BlackoutAlert) MarshalWire(buf []byte) ([]byte, error) {
	return transport.AppendInt32(buf, a.Count), nil
}

// UnmarshalWire implements transport.WireTuple.
func (a *BlackoutAlert) UnmarshalWire(data []byte) error {
	var err error
	a.Count, _, err = transport.ReadInt32(data)
	return err
}

// MarshalWire implements transport.WireTuple.
func (a *AnomalyAlert) MarshalWire(buf []byte) ([]byte, error) {
	buf = transport.AppendInt32(buf, a.MeterID)
	buf = transport.AppendFloat64(buf, a.ConsDiff)
	return buf, nil
}

// UnmarshalWire implements transport.WireTuple.
func (a *AnomalyAlert) UnmarshalWire(data []byte) error {
	var err error
	if a.MeterID, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	a.ConsDiff, _, err = transport.ReadFloat64(data)
	return err
}
