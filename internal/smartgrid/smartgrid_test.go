package smartgrid

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/query"
)

func runQuery(t *testing.T, gen ops.SourceFunc, instr core.Instrumenter,
	addQuery func(*query.Builder, *query.Node) *query.Node) ([]core.Tuple, []provenance.Result) {
	t.Helper()
	b := query.New("sg", query.WithInstrumenter(instr))
	src := b.AddSource("src", gen)
	last := addQuery(b, src)
	so, u := provenance.AddSU(b, "su", last, provenance.SUConfig{})
	var sunk []core.Tuple
	b.Connect(so, b.AddSink("k", func(tp core.Tuple) error { sunk = append(sunk, tp); return nil }))
	var results []provenance.Result
	provenance.AddCollector(b, "prov", u, func(r provenance.Result) { results = append(results, r) })
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sunk, results
}

// blackoutScenario: `meters` meters over `days` days; on day 2 the first
// `dark` meters report zero all day.
func blackoutScenario(meters, days, dark int) ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		for day := 0; day < days; day++ {
			for hour := 0; hour < HoursPerDay; hour++ {
				ts := int64(day)*HoursPerDay + int64(hour)
				for m := 0; m < meters; m++ {
					cons := 1.0
					if day == 2 && m < dark {
						cons = 0
					}
					if err := emit(NewMeterReading(ts, int32(m), cons)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
}

func TestQ3DetectsBlackout(t *testing.T) {
	sunk, results := runQuery(t, blackoutScenario(12, 4, 8), &core.Genealog{}, AddQ3)
	if len(sunk) != 1 {
		t.Fatalf("Q3 alerts = %d, want 1", len(sunk))
	}
	alert := sunk[0].(*BlackoutAlert)
	if alert.Count != 8 {
		t.Fatalf("alert count = %d, want 8", alert.Count)
	}
	if alert.Timestamp() != 2*HoursPerDay {
		t.Fatalf("alert ts = %d, want day 2 start", alert.Timestamp())
	}
	if len(results) != 1 {
		t.Fatalf("provenance results = %d, want 1", len(results))
	}
	// 8 meters x 24 hourly readings = 192 source tuples — the paper's Q3
	// contribution graph (Fig. 10B).
	if len(results[0].Sources) != 192 {
		t.Fatalf("provenance size = %d, want 192", len(results[0].Sources))
	}
	for _, s := range results[0].Sources {
		r := s.(*MeterReading)
		if r.Cons != 0 || r.MeterID >= 8 {
			t.Fatalf("unexpected contributing reading %+v", r)
		}
		if day := r.Timestamp() / HoursPerDay; day != 2 {
			t.Fatalf("contributing reading from day %d, want 2", day)
		}
	}
}

func TestQ3NoAlertBelowThreshold(t *testing.T) {
	sunk, _ := runQuery(t, blackoutScenario(12, 4, BlackoutMeterThreshold), &core.Genealog{}, AddQ3)
	if len(sunk) != 0 {
		t.Fatalf("Q3 alerts = %d, want 0 at exactly the threshold", len(sunk))
	}
}

// anomalyScenario: 3 meters over `days` days, steady 1.0 consumption, except
// meter 1 reports `spike` at the midnight opening day 2 (ts = 48).
func anomalyScenario(days int, spike float64) ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		for day := 0; day < days; day++ {
			for hour := 0; hour < HoursPerDay; hour++ {
				ts := int64(day)*HoursPerDay + int64(hour)
				for m := 0; m < 3; m++ {
					cons := 1.0
					if ts == 2*HoursPerDay && m == 1 {
						cons = spike
					}
					if err := emit(NewMeterReading(ts, int32(m), cons)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
}

func TestQ4DetectsMidnightAnomaly(t *testing.T) {
	// Meter 1's day-1 sum is 24; the midnight reading opening day 2 is 300:
	// |24-300| = 276 > 200 — the primary alert. The spike also inflates
	// day 2's sum (300+23=323), so the comparison at the next midnight
	// (|323-1| = 322) echoes a second alert; that echo is inherent to Q4's
	// semantics.
	sunk, results := runQuery(t, anomalyScenario(4, 300), &core.Genealog{}, AddQ4)
	if len(sunk) != 2 {
		t.Fatalf("Q4 alerts = %d, want 2 (primary + echo)", len(sunk))
	}
	alert := sunk[0].(*AnomalyAlert)
	if alert.MeterID != 1 {
		t.Fatalf("alert meter = %d, want 1", alert.MeterID)
	}
	if alert.ConsDiff != 276 {
		t.Fatalf("cons diff = %f, want 276", alert.ConsDiff)
	}
	if echo := sunk[1].(*AnomalyAlert); echo.ConsDiff != 322 {
		t.Fatalf("echo cons diff = %f, want 322", echo.ConsDiff)
	}
	if len(results) != 2 {
		t.Fatalf("provenance results = %d, want 2", len(results))
	}
	// 24 day-1 readings + the midnight reading = 25 (the paper counts 24;
	// see EXPERIMENTS.md).
	if len(results[0].Sources) != HoursPerDay+1 {
		t.Fatalf("provenance size = %d, want %d", len(results[0].Sources), HoursPerDay+1)
	}
	for _, s := range results[0].Sources {
		r := s.(*MeterReading)
		if r.MeterID != 1 {
			t.Fatalf("foreign meter %d in provenance", r.MeterID)
		}
		if r.Timestamp() < HoursPerDay || r.Timestamp() > 2*HoursPerDay {
			t.Fatalf("contributing reading at ts %d outside day 1 window", r.Timestamp())
		}
	}
}

func TestQ4NoAlertWithoutSpike(t *testing.T) {
	sunk, _ := runQuery(t, anomalyScenario(4, 1), &core.Genealog{}, AddQ4)
	if len(sunk) != 0 {
		t.Fatalf("Q4 alerts = %d, want 0", len(sunk))
	}
}

func TestGeneratorDeterministicAndSorted(t *testing.T) {
	collect := func() []string {
		g := NewGenerator(Config{Meters: 5, Days: 6, BlackoutEvery: 2, BlackoutMeters: 3, AnomalyEvery: 2, AnomalyValue: 250, Seed: 11})
		var out []string
		last := int64(-1)
		err := g.SourceFunc()(context.Background(), func(tp core.Tuple) error {
			r := tp.(*MeterReading)
			if r.Timestamp() < last {
				t.Fatalf("timestamps regress at %d", r.Timestamp())
			}
			last = r.Timestamp()
			out = append(out, fmt.Sprintf("%d/%d/%.4f", r.Timestamp(), r.MeterID, r.Cons))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != 5*6*24 {
		t.Fatalf("generated %d tuples, want %d", len(a), 5*6*24)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator not deterministic at %d", i)
		}
	}
}

func TestGeneratorBlackoutAlertSchedule(t *testing.T) {
	cfg := DefaultConfig()
	g := NewGenerator(cfg)
	sunk, results := runQuery(t, g.SourceFunc(), &core.Genealog{}, AddQ3)
	// Blackouts on days 5,10,15,20,25 with 8 > 7 meters: 5 alerts.
	want := (cfg.Days - 1) / cfg.BlackoutEvery
	if len(sunk) != want {
		t.Fatalf("Q3 alerts = %d, want %d", len(sunk), want)
	}
	for _, r := range results {
		if len(r.Sources) != cfg.BlackoutMeters*HoursPerDay {
			t.Fatalf("provenance size = %d, want %d", len(r.Sources), cfg.BlackoutMeters*HoursPerDay)
		}
	}
}

func TestGeneratorAnomalyAlerts(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	sunk, results := runQuery(t, g.SourceFunc(), &core.Genealog{}, AddQ4)
	if len(sunk) == 0 {
		t.Fatal("default workload must produce Q4 alerts")
	}
	for _, r := range results {
		if len(r.Sources) != HoursPerDay+1 {
			t.Fatalf("Q4 provenance size = %d, want %d", len(r.Sources), HoursPerDay+1)
		}
	}
}

func canonical(results []provenance.Result) []string {
	out := make([]string, 0, len(results))
	for _, r := range results {
		var ids []string
		for _, s := range r.Sources {
			m := s.(*MeterReading)
			ids = append(ids, fmt.Sprintf("%d/%d", m.Timestamp(), m.MeterID))
		}
		sort.Strings(ids)
		out = append(out, fmt.Sprintf("%d:%v", r.Sink.Timestamp(), ids))
	}
	sort.Strings(out)
	return out
}

func TestQ3Q4GenealogMatchesBaseline(t *testing.T) {
	for _, tc := range []struct {
		name string
		add  func(*query.Builder, *query.Node) *query.Node
	}{
		{"Q3", AddQ3},
		{"Q4", AddQ4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, glResults := runQuery(t, NewGenerator(DefaultConfig()).SourceFunc(), &core.Genealog{}, tc.add)

			store := baseline.NewStore()
			blInstr := &baseline.Instrumenter{IDs: core.NewIDGen(1), Store: store}
			b := query.New("bl", query.WithInstrumenter(blInstr))
			src := b.AddSource("src", NewGenerator(DefaultConfig()).SourceFunc())
			last := tc.add(b, src)
			var blResults []provenance.Result
			b.Connect(last, b.AddSink("k", func(tp core.Tuple) error {
				srcs := baseline.Resolver{Store: store}.Resolve(tp)
				blResults = append(blResults, provenance.Result{Sink: tp, Sources: srcs})
				return nil
			}))
			q, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Run(context.Background()); err != nil {
				t.Fatal(err)
			}

			gl, bl := canonical(glResults), canonical(blResults)
			if len(gl) == 0 {
				t.Fatal("no provenance results to compare")
			}
			if len(gl) != len(bl) {
				t.Fatalf("GL %d results, BL %d", len(gl), len(bl))
			}
			for i := range gl {
				if gl[i] != bl[i] {
					t.Fatalf("provenance mismatch at %d:\nGL: %s\nBL: %s", i, gl[i], bl[i])
				}
			}
		})
	}
}
