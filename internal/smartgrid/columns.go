package smartgrid

import (
	"strconv"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// This file declares the columnar schemas and typed kernels of the Smart
// Grid tuple types, letting the planner run Q3/Q4's stateless stages on the
// vectorized runtime (ops.ColChain), fold their aggregate windows and probe
// Q4's join over columnar window state (ops.ColAggregate/ColJoin), and
// extract shard routing keys batch-wise. Each schema covers every payload
// field of its tuple type, so one extraction pass serves any kernel over
// that type.

// Field indices into MeterReadingSchema.
const (
	readingFieldMeter = iota
	readingFieldCons
)

// MeterReadingSchema is the columnar schema of *MeterReading.
var MeterReadingSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "meter", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*MeterReading).MeterID) }},
	{Name: "cons", Kind: ops.ColFloat64, Float: func(t core.Tuple) float64 { return t.(*MeterReading).Cons }},
}}

// Field indices into DailyConsSchema.
const (
	dailyFieldMeter = iota
	dailyFieldConsSum
)

// DailyConsSchema is the columnar schema of *DailyCons.
var DailyConsSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "meter", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*DailyCons).MeterID) }},
	{Name: "cons-sum", Kind: ops.ColFloat64, Float: func(t core.Tuple) float64 { return t.(*DailyCons).ConsSum }},
}}

// Field index into BlackoutAlertSchema.
const blackoutFieldCount = 0

// BlackoutAlertSchema is the columnar schema of *BlackoutAlert.
var BlackoutAlertSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "count", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*BlackoutAlert).Count) }},
}}

// Field indices into AnomalyAlertSchema.
const (
	anomalyFieldMeter = iota
	anomalyFieldConsDiff
)

// AnomalyAlertSchema is the columnar schema of *AnomalyAlert.
var AnomalyAlertSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "meter", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*AnomalyAlert).MeterID) }},
	{Name: "cons-diff", Kind: ops.ColFloat64, Float: func(t core.Tuple) float64 { return t.(*AnomalyAlert).ConsDiff }},
}}

// Schemas returns the columnar schema of every Smart Grid tuple type, keyed
// by its csvio format name.
func Schemas() map[string]*ops.ColSchema {
	return map[string]*ops.ColSchema{
		"sg.reading":  MeterReadingSchema,
		"sg.daily":    DailyConsSchema,
		"sg.blackout": BlackoutAlertSchema,
		"sg.anomaly":  AnomalyAlertSchema,
	}
}

// filterZeroCons is the vectorized q3.zero-cons predicate.
func filterZeroCons(c *ops.ColBatch, sel, dst []int) []int {
	sum := c.Float64s(dailyFieldConsSum)
	for _, i := range sel {
		if sum[i] == 0 {
			dst = append(dst, i)
		}
	}
	return dst
}

// filterBlackout is the vectorized q3.blackout predicate.
func filterBlackout(c *ops.ColBatch, sel, dst []int) []int {
	count := c.Int64s(blackoutFieldCount)
	for _, i := range sel {
		if count[i] > BlackoutMeterThreshold {
			dst = append(dst, i)
		}
	}
	return dst
}

// filterMidnight is the vectorized q4.midnight predicate; it reads only the
// dedicated timestamp column.
func filterMidnight(c *ops.ColBatch, sel, dst []int) []int {
	ts := c.Timestamps()
	for _, i := range sel {
		if ts[i]%HoursPerDay == 0 {
			dst = append(dst, i)
		}
	}
	return dst
}

// filterAnomaly is the vectorized q4.anomaly predicate.
func filterAnomaly(c *ops.ColBatch, sel, dst []int) []int {
	diff := c.Float64s(anomalyFieldConsDiff)
	for _, i := range sel {
		if diff[i] > AnomalyThreshold {
			dst = append(dst, i)
		}
	}
	return dst
}

// keyMeterReading is the vectorized daily-sum group-by extraction; it equals
// meterKey on every *MeterReading.
func keyMeterReading(c *ops.ColBatch, sel []int, dst []string) []string {
	meter := c.Int64s(readingFieldMeter)
	for _, i := range sel {
		dst = append(dst, strconv.Itoa(int(meter[i])))
	}
	return dst
}

// keyDailyCons is the vectorized q4.join left-side routing-key extraction; it
// equals meterKey on every *DailyCons.
func keyDailyCons(c *ops.ColBatch, sel []int, dst []string) []string {
	meter := c.Int64s(dailyFieldMeter)
	for _, i := range sel {
		dst = append(dst, strconv.Itoa(int(meter[i])))
	}
	return dst
}

// foldDailyCons is the vectorized daily-sum fold shared by Q3 and Q4: the
// per-meter consumption sum over the window's cons column, added in row order
// so the float result is bit-identical to the row Fold's.
func foldDailyCons(seg *ops.ColSeg, start, end int64, key string) core.Tuple {
	out := &DailyCons{Base: core.NewBase(start)}
	meter := seg.Int64s(readingFieldMeter)
	cons := seg.Float64s(readingFieldCons)
	out.MeterID = int32(meter[len(meter)-1])
	var sum float64
	for _, c := range cons {
		sum += c
	}
	out.ConsSum = sum
	return out
}

// foldBlackoutCount is the vectorized q3.daily-count fold: the count of
// zero-consumption daily sums in the (unkeyed) window; it reads no columns.
func foldBlackoutCount(seg *ops.ColSeg, start, end int64, key string) core.Tuple {
	out := &BlackoutAlert{Base: core.NewBase(start)}
	out.Count = int32(seg.Len())
	return out
}
