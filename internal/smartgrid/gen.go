package smartgrid

import (
	"context"
	"math/rand"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// Config parameterises the deterministic smart-meter generator. Timestamps
// are hours; each meter reports once per hour. Blackouts (a set of meters
// reporting zero for a whole day) and anomalies (a meter reporting a large
// compensating value at midnight) are injected on a fixed schedule.
type Config struct {
	// Meters is the number of smart meters.
	Meters int
	// Days is the number of simulated days (Meters*Days*24 source tuples).
	Days int
	// BlackoutEvery injects a blackout day every BlackoutEvery days
	// (0 disables).
	BlackoutEvery int
	// BlackoutMeters is how many meters report zero on a blackout day
	// (> BlackoutMeterThreshold raises a Q3 alert).
	BlackoutMeters int
	// AnomalyEvery injects a midnight anomaly every AnomalyEvery days
	// (0 disables).
	AnomalyEvery int
	// AnomalyValue is the compensating consumption reported at midnight
	// (well above AnomalyThreshold to guarantee a Q4 alert).
	AnomalyValue float64
	// Seed drives all pseudo-random choices.
	Seed int64
}

// DefaultConfig returns the workload used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		Meters:         40,
		Days:           30,
		BlackoutEvery:  5,
		BlackoutMeters: BlackoutMeterThreshold + 1,
		AnomalyEvery:   3,
		AnomalyValue:   300,
		Seed:           7,
	}
}

// Generator produces the hourly meter-reading stream.
type Generator struct {
	cfg Config
}

// NewGenerator returns a generator for the given configuration. Zero or
// negative core fields fall back to DefaultConfig values.
func NewGenerator(cfg Config) *Generator {
	def := DefaultConfig()
	if cfg.Meters <= 0 {
		cfg.Meters = def.Meters
	}
	if cfg.Days <= 0 {
		cfg.Days = def.Days
	}
	if cfg.BlackoutMeters <= 0 {
		cfg.BlackoutMeters = def.BlackoutMeters
	}
	if cfg.AnomalyValue <= 0 {
		cfg.AnomalyValue = def.AnomalyValue
	}
	return &Generator{cfg: cfg}
}

// Tuples returns the total number of source tuples the generator emits.
func (g *Generator) Tuples() int { return g.cfg.Meters * g.cfg.Days * HoursPerDay }

// SourceFunc returns the ops.SourceFunc emitting the timestamp-sorted meter
// readings.
func (g *Generator) SourceFunc() ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		rng := rand.New(rand.NewSource(g.cfg.Seed))
		blackout := make(map[int32]bool, g.cfg.BlackoutMeters)
		anomalyMeter := int32(-1)
		for day := 0; day < g.cfg.Days; day++ {
			// Schedule injections for this day.
			clear(blackout)
			if g.cfg.BlackoutEvery > 0 && day > 0 && day%g.cfg.BlackoutEvery == 0 {
				for len(blackout) < g.cfg.BlackoutMeters && len(blackout) < g.cfg.Meters {
					blackout[int32(rng.Intn(g.cfg.Meters))] = true
				}
			}
			for hour := 0; hour < HoursPerDay; hour++ {
				ts := int64(day)*HoursPerDay + int64(hour)
				for m := 0; m < g.cfg.Meters; m++ {
					meter := int32(m)
					var cons float64
					switch {
					case blackout[meter]:
						// Blackout wins over a scheduled spike so the Q3
						// meter count stays exact; the spike simply fires
						// at the next midnight instead.
						cons = 0
					case hour == 0 && meter == anomalyMeter:
						// The compensating midnight spike scheduled at the
						// end of a previous day.
						cons = g.cfg.AnomalyValue
						anomalyMeter = -1
					default:
						cons = 0.5 + rng.Float64()*1.5
					}
					if err := emit(NewMeterReading(ts, meter, cons)); err != nil {
						return err
					}
				}
			}
			// Schedule next-midnight anomalies: pick a healthy meter whose
			// next reading (ts = (day+1)*24, i.e. ts%24 == 0) spikes.
			if g.cfg.AnomalyEvery > 0 && day%g.cfg.AnomalyEvery == 0 {
				anomalyMeter = int32(rng.Intn(g.cfg.Meters))
			}
		}
		return nil
	}
}
