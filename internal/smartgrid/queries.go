package smartgrid

import (
	"math"
	"strconv"

	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
)

// meterKey is the group-by extractor shared by the daily aggregates.
func meterKey(t core.Tuple) string {
	switch v := t.(type) {
	case *MeterReading:
		return strconv.Itoa(int(v.MeterID))
	case *DailyCons:
		return strconv.Itoa(int(v.MeterID))
	default:
		return ""
	}
}

// addDailySum appends the per-meter daily consumption Aggregate shared by Q3
// and Q4. outputTs selects the window-start (Q3) or window-end (Q4)
// timestamp policy; Q4 needs window-end so its 1-hour Join pairs the daily
// sum with the next midnight reading.
func addDailySum(b *query.Builder, name string, from *query.Node, outputTs ops.OutputTsPolicy) *query.Node {
	agg := b.AddAggregate(name, ops.AggregateSpec{
		WS:       HoursPerDay,
		WA:       HoursPerDay,
		Key:      meterKey,
		OutputTs: outputTs,
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			out := &DailyCons{Base: core.NewBase(start)}
			for _, t := range w {
				r := t.(*MeterReading)
				out.MeterID = r.MeterID
				out.ConsSum += r.Cons
			}
			return out
		},
	}).ColumnarAgg(query.AggColSpec{Schema: MeterReadingSchema, Key: keyMeterReading, Fold: foldDailyCons})
	b.Connect(from, agg)
	return agg
}

// AddQ3Stage1 appends Q3's first stage — the per-meter daily sum — which the
// distributed deployment (Fig. 10C) runs at SPE instance 1.
func AddQ3Stage1(b *query.Builder, from *query.Node) *query.Node {
	return addDailySum(b, "q3.daily-sum", from, ops.WindowStartTs)
}

// AddQ3Stage2 appends Q3's second stage — the zero-consumption Filter, the
// daily count Aggregate and the > BlackoutMeterThreshold Filter — producing
// *BlackoutAlert sink tuples. The distributed deployment runs it at SPE
// instance 2.
func AddQ3Stage2(b *query.Builder, from *query.Node) *query.Node {
	zero := b.AddFilter("q3.zero-cons", func(t core.Tuple) bool {
		return t.(*DailyCons).ConsSum == 0
	}).Columnar(query.ColSpec{Schema: DailyConsSchema, Filter: filterZeroCons})
	count := b.AddAggregate("q3.daily-count", ops.AggregateSpec{
		WS: HoursPerDay,
		WA: HoursPerDay,
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			out := &BlackoutAlert{Base: core.NewBase(start)}
			out.Count = int32(len(w))
			return out
		},
	}).ColumnarAgg(query.AggColSpec{Schema: DailyConsSchema, Fold: foldBlackoutCount})
	alert := b.AddFilter("q3.blackout", func(t core.Tuple) bool {
		return t.(*BlackoutAlert).Count > BlackoutMeterThreshold
	}).Columnar(query.ColSpec{Schema: BlackoutAlertSchema, Filter: filterBlackout})
	b.Connect(from, zero)
	b.Connect(zero, count)
	b.Connect(count, alert)
	return alert
}

// AddQ3 appends the whole long-term blackout query (Fig. 10) and returns its
// final node, which emits *BlackoutAlert sink tuples. Each alert's
// provenance is (meters reporting zero) x 24 hourly readings — 192 source
// tuples in the paper's setting.
func AddQ3(b *query.Builder, from *query.Node) *query.Node {
	return AddQ3Stage2(b, AddQ3Stage1(b, from))
}

// Q4Stage1Outputs are the two streams Q4's first stage produces: the
// per-meter daily sums (join left) and the midnight readings (join right).
type Q4Stage1Outputs struct {
	Daily    *query.Node
	Midnight *query.Node
}

// AddQ4Stage1 appends Q4's first stage (Fig. 11): a Multiplex splitting the
// source stream into the daily-sum Aggregate (window-end timestamps) and the
// ts%24==0 midnight Filter. The distributed deployment (Fig. 11C) runs this
// stage at SPE instance 1.
func AddQ4Stage1(b *query.Builder, from *query.Node) Q4Stage1Outputs {
	mux := b.AddMultiplex("q4.mux")
	b.Connect(from, mux)
	daily := addDailySum(b, "q4.daily-sum", mux, ops.WindowEndTs)
	midnight := b.AddFilter("q4.midnight", func(t core.Tuple) bool {
		return t.(*MeterReading).Timestamp()%HoursPerDay == 0
	}).Columnar(query.ColSpec{Schema: MeterReadingSchema, Filter: filterMidnight})
	b.Connect(mux, midnight)
	return Q4Stage1Outputs{Daily: daily, Midnight: midnight}
}

// AddQ4Stage2 appends Q4's second stage: the 1-hour Join matching each daily
// sum with the same meter's next midnight reading, and the consumption-
// difference Filter, producing *AnomalyAlert sink tuples. The distributed
// deployment runs it at SPE instance 2.
func AddQ4Stage2(b *query.Builder, in Q4Stage1Outputs) *query.Node {
	join := b.AddJoin("q4.join", ops.JoinSpec{
		WS: Q4JoinWindow,
		// The meter ID is the equi-join key on both sides, which lets the
		// join shard-parallelise: each shard pairs the daily sums and
		// midnight readings of its own meters.
		LeftKey:  meterKey,
		RightKey: meterKey,
		Predicate: func(l, r core.Tuple) bool {
			return l.(*DailyCons).MeterID == r.(*MeterReading).MeterID
		},
		Combine: func(l, r core.Tuple) core.Tuple {
			d, m := l.(*DailyCons), r.(*MeterReading)
			return &AnomalyAlert{
				Base:     core.NewBase(0), // overwritten by the Join
				MeterID:  d.MeterID,
				ConsDiff: math.Abs(d.ConsSum - m.Cons),
			}
		},
		// The predicate is exactly the key equality, so the columnar join is
		// a pure equi-join: the hash probe is the whole match step, no
		// residual kernels.
	}).ColumnarJoin(query.JoinColSpec{
		Left: DailyConsSchema, Right: MeterReadingSchema,
		LeftKey: keyDailyCons, RightKey: keyMeterReading,
	})
	b.ConnectPort(in.Daily, join, query.PortLeft)
	b.ConnectPort(in.Midnight, join, query.PortRight)
	alert := b.AddFilter("q4.anomaly", func(t core.Tuple) bool {
		return t.(*AnomalyAlert).ConsDiff > AnomalyThreshold
	}).Columnar(query.ColSpec{Schema: AnomalyAlertSchema, Filter: filterAnomaly})
	b.Connect(join, alert)
	return alert
}

// AddQ4 appends the whole anomaly-detection query (Fig. 11) and returns its
// final node, which emits *AnomalyAlert sink tuples. Each alert's provenance
// is the meter's 24 hourly readings of the day plus the midnight reading
// that closes it (the paper reports the contribution graph as 24 tuples;
// this implementation counts the midnight reading separately, giving 25 —
// see EXPERIMENTS.md).
func AddQ4(b *query.Builder, from *query.Node) *query.Node {
	return AddQ4Stage2(b, AddQ4Stage1(b, from))
}
