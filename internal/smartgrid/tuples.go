// Package smartgrid implements the paper's Smart Grid use cases: a
// deterministic hourly smart-meter generator and the two queries built on
// it — Q3, long-term blackout detection (Fig. 10), and Q4, midnight
// consumption-anomaly detection (Fig. 11) — with intra-process and
// distributed (Figs. 10C, 11C) deployments.
package smartgrid

import (
	"sync"

	"genealog/internal/core"
	"genealog/internal/transport"
)

// HoursPerDay is the tumbling-window size of the daily aggregations;
// timestamps are in hours.
const HoursPerDay = 24

// Query parameters (Figs. 10 and 11).
const (
	// BlackoutMeterThreshold: an alert is raised when more than this many
	// meters report zero consumption for a whole day ("more than seven").
	BlackoutMeterThreshold = 7
	// AnomalyThreshold: an alert is raised when |daily sum - midnight
	// reading| exceeds this.
	AnomalyThreshold = 200.0
	// Q4JoinWindow is the join window between the daily aggregate and the
	// midnight reading (1 hour).
	Q4JoinWindow = 1
)

// MU join windows for the distributed deployments (§6.1).
const (
	// MUWindowQ3 covers SPE instance 2's daily count Aggregate.
	MUWindowQ3 = HoursPerDay
	// MUWindowQ4 covers SPE instance 2's 1-hour Join.
	MUWindowQ4 = Q4JoinWindow
)

// MeterReading is the source tuple: ⟨ts, meter_id, consumption⟩, emitted
// every hour by each meter (§7). ts is in hours since the epoch; readings at
// ts%24 == 0 are the "midnight" readings Q4 inspects.
type MeterReading struct {
	core.Base
	MeterID int32
	Cons    float64
}

// NewMeterReading returns a meter reading at event time ts (hours).
func NewMeterReading(ts int64, meter int32, cons float64) *MeterReading {
	return &MeterReading{Base: core.NewBase(ts), MeterID: meter, Cons: cons}
}

// CloneTuple implements core.Cloneable.
func (m *MeterReading) CloneTuple() core.Tuple {
	cp := *m
	cp.ResetProvenance()
	return &cp
}

// ApproxBytes implements baseline.Sized.
func (m *MeterReading) ApproxBytes() int { return 8 + 4 + 8 }

// DailyCons is the per-meter daily consumption sum produced by the first
// Aggregate of Q3 and Q4.
type DailyCons struct {
	core.Base
	MeterID int32
	ConsSum float64
}

// CloneTuple implements core.Cloneable.
func (d *DailyCons) CloneTuple() core.Tuple {
	cp := *d
	cp.ResetProvenance()
	return &cp
}

// ApproxBytes implements baseline.Sized.
func (d *DailyCons) ApproxBytes() int { return 8 + 4 + 8 }

// BlackoutAlert is Q3's sink tuple: the number of meters that reported zero
// consumption for a whole day.
type BlackoutAlert struct {
	core.Base
	Count int32
}

// CloneTuple implements core.Cloneable.
func (a *BlackoutAlert) CloneTuple() core.Tuple {
	cp := *a
	cp.ResetProvenance()
	return &cp
}

// ApproxBytes implements baseline.Sized.
func (a *BlackoutAlert) ApproxBytes() int { return 8 + 4 }

// AnomalyAlert is Q4's sink tuple: a meter whose midnight reading deviates
// from its previous daily sum by more than AnomalyThreshold.
type AnomalyAlert struct {
	core.Base
	MeterID  int32
	ConsDiff float64
}

// CloneTuple implements core.Cloneable.
func (a *AnomalyAlert) CloneTuple() core.Tuple {
	cp := *a
	cp.ResetProvenance()
	return &cp
}

// ApproxBytes implements baseline.Sized.
func (a *AnomalyAlert) ApproxBytes() int { return 8 + 4 + 8 }

var registerOnce sync.Once

// RegisterWire registers the package's tuple types with both transport
// codecs (gob and binary). Safe to call multiple times.
func RegisterWire() {
	registerOnce.Do(func() {
		transport.Register(&MeterReading{})
		transport.Register(&DailyCons{})
		transport.Register(&BlackoutAlert{})
		transport.Register(&AnomalyAlert{})
		transport.RegisterBinary(tagMeterReading, func() transport.WireTuple { return &MeterReading{} })
		transport.RegisterBinary(tagDailyCons, func() transport.WireTuple { return &DailyCons{} })
		transport.RegisterBinary(tagBlackoutAlert, func() transport.WireTuple { return &BlackoutAlert{} })
		transport.RegisterBinary(tagAnomalyAlert, func() transport.WireTuple { return &AnomalyAlert{} })
	})
}
