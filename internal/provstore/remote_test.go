package provstore

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genealog/internal/core"
)

// startServer runs a store node over be on an ephemeral port and returns its
// address. The caller owns shutdown (many tests kill it deliberately).
func startServer(t *testing.T, be Backend) (*Server, string) {
	t.Helper()
	srv := NewServer(be)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr.String()
}

func connect(t *testing.T, addr string, opts Options, ropts ...RemoteOption) *Store {
	t.Helper()
	st, err := Connect(context.Background(), addr, opts, ropts...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRemoteIngestAndQuery(t *testing.T) {
	be := NewMemoryBackend(100)
	srv, addr := startServer(t, be)
	defer srv.Close()

	st := connect(t, addr, Options{Horizon: 100})
	s1, s2, s3 := reading(1, 1, 5), reading(2, 2, 6), reading(3, 3, 7)
	if _, err := st.Ingest(alert(10, 2), []core.Tuple{s1, s2}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Ingest(alert(20, 2), []core.Tuple{s2, s3}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The client's local mirror answers its own queries.
	local := st.Stats()
	if local.Sinks != 2 || local.Sources != 3 || local.SourceRefs != 4 {
		t.Fatalf("client stats = %+v, want 2 sinks, 3 sources, 4 refs", local)
	}

	// The merged store answers the same questions over a query connection.
	c, err := DialQuery(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ss, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ss.Sinks != 2 || ss.Sources != 3 || ss.SourceRefs != 4 {
		t.Fatalf("server stats = %+v, want 2 sinks, 3 sources, 4 refs", ss)
	}
	if ss.Watermark != 20 {
		t.Fatalf("server watermark = %d, want 20", ss.Watermark)
	}
	sinks, err := c.List(-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 2 || sinks[0].ID != 1 || sinks[1].ID != 2 {
		t.Fatalf("List = %+v, want global sink IDs 1, 2", sinks)
	}
	sink, sources, err := c.Backward(2)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Ts != 20 || len(sources) != 2 {
		t.Fatalf("Backward(2) = ts %d with %d sources", sink.Ts, len(sources))
	}
	if sources[0].Payload != "2,2,6.0000" || sources[1].Payload != "3,3,7.0000" {
		t.Fatalf("unexpected source payloads %q, %q", sources[0].Payload, sources[1].Payload)
	}
	if sources[0].Refs != 2 || sources[1].Refs != 1 {
		t.Fatalf("refs = %d/%d, want 2/1", sources[0].Refs, sources[1].Refs)
	}
	src, fwd, err := c.Forward(sources[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if src.Payload != sources[0].Payload || len(fwd) != 2 || fwd[0].ID != 1 || fwd[1].ID != 2 {
		t.Fatalf("Forward(%d) = %d sinks %+v", sources[0].ID, len(fwd), fwd)
	}

	// Unknown IDs nack descriptively and keep the connection usable.
	if _, _, err := c.Backward(999); err == nil || !strings.Contains(err.Error(), "no sink entry 999") {
		t.Fatalf("Backward(999) = %v, want a descriptive error", err)
	}
	if _, _, err := c.Forward(999); err == nil || !strings.Contains(err.Error(), "no source entry 999") {
		t.Fatalf("Forward(999) = %v, want a descriptive error", err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats after a nacked request: %v", err)
	}
}

// TestRemoteTwoInstancesNamespacing: two instances whose local entry IDs
// collide (both number from 1) merge without collisions — the server holds
// the union, each instance's dedup carried over exactly.
func TestRemoteTwoInstancesNamespacing(t *testing.T) {
	srv, addr := startServer(t, NewMemoryBackend(100))
	defer srv.Close()

	a := connect(t, addr, Options{Horizon: 100})
	b := connect(t, addr, Options{Horizon: 100})
	aShared := reading(1, 1, 5)
	if _, err := a.Ingest(alert(10, 1), []core.Tuple{aShared}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Ingest(alert(20, 1), []core.Tuple{aShared}); err != nil {
		t.Fatal(err)
	}
	// Instance B's meta-ID 1 collides with nothing: its namespace is its own.
	if _, err := b.Ingest(alert(30, 1), []core.Tuple{readingID(2, 9, 7, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	ss := srv.Stats()
	if ss.Sinks != 3 || ss.Sources != 2 || ss.SourceRefs != 3 {
		t.Fatalf("merged stats = %+v, want 3 sinks, 2 sources, 3 refs", ss)
	}
	c, err := DialQuery(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sinks, err := c.List(-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 3 {
		t.Fatalf("List = %d sinks, want 3", len(sinks))
	}
	// Every sink's contribution set resolves, and the two instances' sources
	// stayed distinct entries.
	seen := make(map[uint64]string)
	for _, sink := range sinks {
		_, sources, err := c.Backward(sink.ID)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range sources {
			seen[src.ID] = src.Payload
		}
	}
	if len(seen) != 2 {
		t.Fatalf("merged store resolves %d distinct sources, want 2: %v", len(seen), seen)
	}
}

// errBackend fails every sink append, standing in for a store node whose
// disk is broken.
type errBackend struct{ *Memory }

func (e errBackend) AppendSink(SinkEntry) error {
	return fmt.Errorf("disk on fire")
}

// TestRemoteStoreErrorFailsIngest: a backend error on the store node nacks
// the frame; the client surfaces it from the Append that triggered the
// flush, and every later append returns the same sticky error.
func TestRemoteStoreErrorFailsIngest(t *testing.T) {
	srv, addr := startServer(t, errBackend{NewMemoryBackend(100)})
	defer srv.Close()

	st := connect(t, addr, Options{Horizon: 100}, WithFlushEvery(1))
	_, err := st.Ingest(alert(10, 1), []core.Tuple{reading(1, 1, 5)})
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("Ingest = %v, want the store node's error", err)
	}
	if _, err2 := st.Ingest(alert(20, 1), []core.Tuple{reading(2, 2, 6)}); err2 == nil {
		t.Fatal("ingest after a store error must keep failing")
	}
}

// TestRemoteKillFailsIngest: killing the store node mid-ingestion surfaces a
// descriptive error from the next flushed append instead of hanging.
func TestRemoteKillFailsIngest(t *testing.T) {
	srv, addr := startServer(t, NewMemoryBackend(100))
	st := connect(t, addr, Options{Horizon: 100}, WithFlushEvery(1))
	if _, err := st.Ingest(alert(10, 1), []core.Tuple{reading(1, 1, 5)}); err != nil {
		t.Fatal(err)
	}
	srv.Kill()
	var err error
	for ts := int64(20); ts < 200; ts += 10 {
		if _, err = st.Ingest(alert(ts, 1), []core.Tuple{reading(ts-5, 2, 6)}); err != nil {
			break
		}
	}
	if err == nil {
		err = st.Close()
	}
	if err == nil || !strings.Contains(err.Error(), "provstore") {
		t.Fatalf("ingest against a killed store node = %v, want a descriptive error", err)
	}
}

// TestRemoteFileLogRestart: a store node killed mid-run loses nothing it
// acked — a restarted node reopens the file log, answers queries for every
// acked entry and keeps ingesting with fresh, non-colliding IDs.
func TestRemoteFileLogRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "remote.glprov")
	be, err := CreateFileLog(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, be)

	// FlushEvery(1) acks every append, pinning down what the node must hold.
	st := connect(t, addr, Options{Horizon: 100}, WithFlushEvery(1))
	shared := reading(1, 1, 5)
	if _, err := st.Ingest(alert(10, 2), []core.Tuple{shared, reading(2, 2, 6)}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Ingest(alert(20, 1), []core.Tuple{shared}); err != nil {
		t.Fatal(err)
	}
	srv.Kill() // no backend flush, no close: the process died

	// Restart: reopen the same log for appends and serve again.
	be2, err := OpenFileLogAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	srv2, addr2 := startServer(t, be2)
	defer srv2.Close()
	c, err := DialQuery(context.Background(), addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ss, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ss.Sinks != 2 || ss.Sources != 2 || ss.SourceRefs != 3 {
		t.Fatalf("restarted node stats = %+v, want the 2 acked sinks, 2 sources, 3 refs", ss)
	}
	sink, sources, err := c.Backward(2)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Ts != 20 || len(sources) != 1 || sources[0].Payload != "1,1,5.0000" {
		t.Fatalf("Backward(2) after restart = %+v / %+v", sink, sources)
	}

	// New ingestion extends the same ID space without collisions.
	st2 := connect(t, addr2, Options{Horizon: 100}, WithFlushEvery(1))
	if _, err := st2.Ingest(alert(30, 1), []core.Tuple{reading(3, 3, 7)}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	sinks, err := c.List(-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 3 || sinks[2].ID != 3 {
		t.Fatalf("List after restart+ingest = %+v, want a third sink with ID 3", sinks)
	}
	if _, srcs, err := c.Backward(3); err != nil || len(srcs) != 1 || srcs[0].ID != 3 {
		t.Fatalf("Backward(3) = %v / %+v, want the new source as entry 3", err, srcs)
	}
}

// TestOpenFileLogAppendTruncatesTornTail: a partial final record (crash
// mid-append) is cut away on reopen so new appends land on a clean boundary.
func TestOpenFileLogAppendTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.glprov")
	fl, err := CreateFileLog(path, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.AppendSource(SourceEntry{ID: 1, Ts: 1, Payload: "whole"}); err != nil {
		t.Fatal(err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeSourceRecord(SourceEntry{ID: 2, Ts: 2, Payload: "torn"})[:7]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileLogAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.SourceCount() != 1 {
		t.Fatalf("reopened log has %d sources, want 1 (torn tail dropped)", re.SourceCount())
	}
	if err := re.AppendSource(SourceEntry{ID: 2, Ts: 2, Payload: "fresh"}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if ro.SourceCount() != 2 {
		t.Fatalf("final log has %d sources, want 2", ro.SourceCount())
	}
	if e, ok := ro.Source(2); !ok || e.Payload != "fresh" {
		t.Fatalf("entry 2 = %+v, want the post-truncation append", e)
	}
}

// TestOpenFileLogAppendHeaderOnly: a store node killed before its first
// acked frame leaves a header-only log (the header is flushed at create);
// a restarted node must reopen it, not refuse to start.
func TestOpenFileLogAppendHeaderOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.glprov")
	if _, err := CreateFileLog(path, 7); err != nil {
		t.Fatal(err) // never flushed or closed: the writer "died" here
	}
	re, err := OpenFileLogAppend(path)
	if err != nil {
		t.Fatalf("header-only log must reopen: %v", err)
	}
	if re.Horizon() != 7 || re.SourceCount() != 0 {
		t.Fatalf("reopened log: horizon %d, %d sources; want 7, 0", re.Horizon(), re.SourceCount())
	}
	if err := re.AppendSource(SourceEntry{ID: 1, Ts: 1, Payload: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeConnRejectsGarbage: a peer speaking the wrong protocol gets a
// descriptive error, not a panic or a hang.
func TestServeConnRejectsGarbage(t *testing.T) {
	srv := NewServer(NewMemoryBackend(0))
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(server) }()
	go func() {
		client.Write([]byte("GET / HTTP/1.1\r\nHost: nope\r\n\r\n"))
		client.Close()
	}()
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("ServeConn on garbage = %v, want a bad-magic error", err)
	}
}
