// Package provstore is the serving side of GeneaLog provenance: a durable,
// deduplicated store of delivered sink tuples and the source tuples that
// contributed to them.
//
// The capture side of this repository (internal/core, internal/provenance)
// reproduces the paper's bounded-overhead provenance *capture*; everything it
// assembles was previously traversed in memory at the sink and dropped. The
// store persists each assembled contribution set instead: every sink tuple
// becomes one sink entry referencing its originating tuples by ID, and every
// originating tuple is encoded exactly once no matter how many sink tuples it
// contributes to (deduplicated by meta-ID inter-process, by object identity
// intra-process). A watermark-driven retention pass bounds the mutable state
// the same way the paper bounds capture: once every stateful window that
// could still reference a source tuple has closed, its dedup handle is
// retired — the durable entry stays queryable forever, but the store no
// longer pins the live tuple.
//
// Two backends implement persistence: an in-memory backend (tests, ephemeral
// runs) and an append-only file log with an ID index rebuilt on open
// (cmd/genealog-prov answers Backward/Forward queries from it after the run
// ends). Both are stdlib-only.
package provstore

import "fmt"

// SourceEntry is one stored originating tuple.
type SourceEntry struct {
	// ID is the entry's store-wide identifier: the tuple's meta-ID when the
	// run assigned one (inter-process deployments, BL), a store-assigned
	// sequential ID otherwise. Store-assigned IDs live below 1<<48, meta-IDs
	// above (core.IDGen packs the SPE instance number into the top 16 bits),
	// so the two ranges never collide.
	ID uint64
	// Ts is the tuple's event time.
	Ts int64
	// Format names the csvio format the payload is encoded with ("" when the
	// tuple's type had no registered format).
	Format string
	// Payload is the CSV rendering of the tuple (csvio.JoinFields; recover
	// the fields with csvio.SplitFields).
	Payload string
	// Refs is how many sink entries reference this source (filled in by the
	// query API from the forward index, not stored).
	Refs int
}

// SinkEntry is one stored delivered sink tuple with its contribution set.
type SinkEntry struct {
	ID      uint64
	Ts      int64
	Format  string
	Payload string
	// Sources are the IDs of the originating tuples, in traversal
	// (first-seen) order.
	Sources []uint64
}

// Backend is the pluggable persistence layer under Store. Append methods are
// called in ingestion order; query methods must reflect every append made so
// far. Implementations are not required to be goroutine-safe — Store
// serialises access.
type Backend interface {
	// AppendSource persists one source entry (Refs is derived, not stored).
	AppendSource(e SourceEntry) error
	// AppendSink persists one sink entry.
	AppendSink(e SinkEntry) error
	// AppendWatermark persists retention progress so a reopened store knows
	// how far the run's watermark got.
	AppendWatermark(ts int64) error
	// Source and Sink look an entry up by ID.
	Source(id uint64) (SourceEntry, bool)
	Sink(id uint64) (SinkEntry, bool)
	// SourceIDs and SinkIDs list up to max entry IDs in append order (all of
	// them when max < 0); SourceCount and SinkCount report the totals
	// without copying the ID slices.
	SourceIDs(max int) []uint64
	SinkIDs(max int) []uint64
	SourceCount() int
	SinkCount() int
	// SinksOf is the forward index: the IDs of the sink entries referencing
	// the given source, in append order. RefCount reports its length without
	// copying the slice.
	SinksOf(sourceID uint64) []uint64
	RefCount(sourceID uint64) int
	// Watermark returns the highest persisted watermark (0 if none).
	Watermark() int64
	// Horizon returns the retention horizon the store was created with.
	Horizon() int64
	// Bytes returns the encoded byte volume of the store.
	Bytes() int64
	// Close flushes and releases resources. Query methods must keep working
	// on the in-memory index after Close.
	Close() error
}

// index is the ID index shared by both backends: the memory backend's whole
// state, and the file-log backend's in-memory view (rebuilt on open by
// scanning the log).
type index struct {
	sources   map[uint64]SourceEntry
	sinks     map[uint64]SinkEntry
	srcOrder  []uint64
	sinkOrder []uint64
	forward   map[uint64][]uint64
	watermark int64
}

func newIndex() *index {
	return &index{
		sources: make(map[uint64]SourceEntry),
		sinks:   make(map[uint64]SinkEntry),
		forward: make(map[uint64][]uint64),
	}
}

func (ix *index) addSource(e SourceEntry) {
	if _, dup := ix.sources[e.ID]; !dup {
		ix.srcOrder = append(ix.srcOrder, e.ID)
	}
	ix.sources[e.ID] = e
}

func (ix *index) addSink(e SinkEntry) {
	if _, dup := ix.sinks[e.ID]; !dup {
		ix.sinkOrder = append(ix.sinkOrder, e.ID)
	}
	ix.sinks[e.ID] = e
	for _, src := range e.Sources {
		// Sink entries written by Store never carry duplicate source
		// references, but the index is also rebuilt from on-disk logs, which
		// must not corrupt the forward index. A duplicate within this entry
		// shows up as this entry's own ID at the tail of the forward list,
		// so the check costs no allocation on the per-sink-tuple ingest path.
		if fwd := ix.forward[src]; len(fwd) > 0 && fwd[len(fwd)-1] == e.ID {
			continue
		}
		ix.forward[src] = append(ix.forward[src], e.ID)
	}
}

func (ix *index) addWatermark(ts int64) {
	if ts > ix.watermark {
		ix.watermark = ts
	}
}

// Memory is the in-memory backend: the ID index plus encoded-size accounting
// that mirrors the file log's framing, so Stats().Bytes is comparable across
// backends.
type Memory struct {
	ix      *index
	horizon int64
	bytes   int64
}

var _ Backend = (*Memory)(nil)

// NewMemoryBackend returns an empty in-memory backend with the given
// retention horizon.
func NewMemoryBackend(horizon int64) *Memory {
	return &Memory{ix: newIndex(), horizon: horizon, bytes: int64(len(fileMagic)) + 8}
}

// AppendSource implements Backend. The file log's entry limits are enforced
// here too, so a query ingests or fails identically under either backend.
func (m *Memory) AppendSource(e SourceEntry) error {
	if err := checkEntryLimits("source", e.ID, e.Format, e.Payload); err != nil {
		return err
	}
	m.ix.addSource(e)
	m.bytes += sourceRecordSize(e)
	return nil
}

// AppendSink implements Backend.
func (m *Memory) AppendSink(e SinkEntry) error {
	if err := checkEntryLimits("sink", e.ID, e.Format, e.Payload); err != nil {
		return err
	}
	if len(e.Sources) > maxSinkSources {
		return fmt.Errorf("provstore: sink entry %d references %d sources (limit %d)",
			e.ID, len(e.Sources), maxSinkSources)
	}
	m.ix.addSink(e)
	m.bytes += sinkRecordSize(e)
	return nil
}

// AppendWatermark implements Backend.
func (m *Memory) AppendWatermark(ts int64) error {
	m.ix.addWatermark(ts)
	m.bytes += watermarkRecordSize
	return nil
}

// Source implements Backend.
func (m *Memory) Source(id uint64) (SourceEntry, bool) {
	e, ok := m.ix.sources[id]
	return e, ok
}

// Sink implements Backend.
func (m *Memory) Sink(id uint64) (SinkEntry, bool) {
	e, ok := m.ix.sinks[id]
	return e, ok
}

// headIDs copies up to max IDs from order (all when max < 0).
func headIDs(order []uint64, max int) []uint64 {
	if max >= 0 && max < len(order) {
		order = order[:max]
	}
	return append([]uint64(nil), order...)
}

// SourceIDs implements Backend.
func (m *Memory) SourceIDs(max int) []uint64 { return headIDs(m.ix.srcOrder, max) }

// SinkIDs implements Backend.
func (m *Memory) SinkIDs(max int) []uint64 { return headIDs(m.ix.sinkOrder, max) }

// SourceCount implements Backend.
func (m *Memory) SourceCount() int { return len(m.ix.srcOrder) }

// SinkCount implements Backend.
func (m *Memory) SinkCount() int { return len(m.ix.sinkOrder) }

// SinksOf implements Backend.
func (m *Memory) SinksOf(sourceID uint64) []uint64 {
	return append([]uint64(nil), m.ix.forward[sourceID]...)
}

// RefCount implements Backend.
func (m *Memory) RefCount(sourceID uint64) int { return len(m.ix.forward[sourceID]) }

// Watermark implements Backend.
func (m *Memory) Watermark() int64 { return m.ix.watermark }

// Horizon implements Backend.
func (m *Memory) Horizon() int64 { return m.horizon }

// Bytes implements Backend.
func (m *Memory) Bytes() int64 { return m.bytes }

// Close implements Backend.
func (m *Memory) Close() error { return nil }
