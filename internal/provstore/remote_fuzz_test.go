package provstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
)

// FuzzRemoteWire is the remote protocol's counterpart of
// FuzzFileLogRoundTrip, in two phases.
//
// Phase 1 interprets the input as an append sequence and drives it through a
// real client and server over an in-memory connection: every record type
// must round-trip — the server's merged store must hold exactly the client
// mirror's entries, remapped onto global IDs in shipping order — with no
// loss, panic or hang.
//
// Phase 2 feeds the raw input to the server as a hostile byte stream, and to
// the query client as a hostile reply stream: truncated, corrupt and
// oversized frames must produce a descriptive error (or parse as a valid
// exchange), never a panic or a hang.
func FuzzRemoteWire(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte("source sink watermark source source"))
	// A valid ingest hello with one batch frame, for phase 2 to mutate.
	var valid bytes.Buffer
	valid.WriteString(remoteMagic)
	valid.WriteByte(roleIngest)
	var hz [8]byte
	valid.Write(hz[:])
	valid.WriteByte(frameBatch)
	binary.Write(&valid, binary.LittleEndian, uint32(2))
	valid.Write(encodeSourceRecord(SourceEntry{ID: 1, Ts: 5, Payload: "a,b"}))
	valid.Write(encodeSinkRecord(SinkEntry{ID: 1, Ts: 9, Payload: "c", Sources: []uint64{1}}))
	f.Add(valid.Bytes())
	// A query hello followed by requests.
	var query bytes.Buffer
	query.WriteString(remoteMagic)
	query.WriteByte(roleQuery)
	query.WriteByte(reqStats)
	query.Write([]byte{reqBackward, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(query.Bytes())
	// An oversized batch count.
	var oversized bytes.Buffer
	oversized.WriteString(remoteMagic)
	oversized.WriteByte(roleIngest)
	oversized.Write(hz[:])
	oversized.WriteByte(frameBatch)
	binary.Write(&oversized, binary.LittleEndian, uint32(1<<31))
	f.Add(oversized.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRoundTrip(t, data)
		fuzzHostileServer(t, data)
		fuzzHostileClient(t, data)
	})
}

// fuzzRoundTrip drives the append sequence encoded by data through
// client → wire → server and compares the merged store with the client's
// local mirror.
func fuzzRoundTrip(t *testing.T, data []byte) {
	be := NewMemoryBackend(0)
	srv := NewServer(be)
	cliConn, srvConn := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvConn) }()
	defer srvConn.Close()

	re, err := NewRemote(cliConn, int64(len(data)), WithFlushEvery(3))
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}

	in := bytes.NewReader(data)
	nextByte := func() byte {
		b, err := in.ReadByte()
		if err != nil {
			return 0
		}
		return b
	}
	nextU64 := func() uint64 {
		var b [8]byte
		in.Read(b[:])
		return binary.LittleEndian.Uint64(b[:])
	}
	nextString := func() string {
		n := int(nextByte())
		buf := make([]byte, n)
		m, _ := in.Read(buf)
		return string(buf[:m])
	}

	// The client Store never re-appends an entry ID and never references a
	// source it did not append (its mirror is its dedup index), so the fuzz
	// driver respects the same contract; everything else — lengths, contents,
	// interleavings, batch boundaries — comes from the input.
	usedSrc := make(map[uint64]bool)
	usedSink := make(map[uint64]bool)
	var srcIDs []uint64
	for in.Len() > 0 {
		switch nextByte() % 3 {
		case 0:
			e := SourceEntry{ID: nextU64(), Ts: int64(nextU64()), Format: nextString(), Payload: nextString()}
			if usedSrc[e.ID] {
				continue
			}
			usedSrc[e.ID] = true
			srcIDs = append(srcIDs, e.ID)
			if err := re.AppendSource(e); err != nil {
				t.Fatalf("AppendSource(%+v): %v", e, err)
			}
		case 1:
			e := SinkEntry{ID: nextU64(), Ts: int64(nextU64()), Format: nextString(), Payload: nextString()}
			if usedSink[e.ID] {
				continue
			}
			usedSink[e.ID] = true
			for n := int(nextByte()) % 8; n > 0 && len(srcIDs) > 0; n-- {
				e.Sources = append(e.Sources, srcIDs[int(nextU64())%len(srcIDs)])
			}
			if err := re.AppendSink(e); err != nil {
				t.Fatalf("AppendSink(%+v): %v", e, err)
			}
		case 2:
			if err := re.AppendWatermark(int64(nextU64())); err != nil {
				t.Fatalf("AppendWatermark: %v", err)
			}
		}
	}
	if err := re.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}

	// The merged store holds exactly the mirror's entries, remapped onto
	// global sequential IDs in shipping order.
	mirrorSrc, mergedSrc := re.SourceIDs(-1), be.SourceIDs(-1)
	if len(mirrorSrc) != len(mergedSrc) {
		t.Fatalf("server has %d sources, client shipped %d", len(mergedSrc), len(mirrorSrc))
	}
	srcMap := make(map[uint64]uint64, len(mirrorSrc))
	for i, localID := range mirrorSrc {
		local, _ := re.Source(localID)
		merged, ok := be.Source(mergedSrc[i])
		if !ok {
			t.Fatalf("server lost source %d", mergedSrc[i])
		}
		if local.Ts != merged.Ts || local.Format != merged.Format || local.Payload != merged.Payload {
			t.Fatalf("source %d: shipped %+v, stored %+v", localID, local, merged)
		}
		srcMap[localID] = merged.ID
	}
	mirrorSink, mergedSink := re.SinkIDs(-1), be.SinkIDs(-1)
	if len(mirrorSink) != len(mergedSink) {
		t.Fatalf("server has %d sinks, client shipped %d", len(mergedSink), len(mirrorSink))
	}
	for i, localID := range mirrorSink {
		local, _ := re.Sink(localID)
		merged, ok := be.Sink(mergedSink[i])
		if !ok {
			t.Fatalf("server lost sink %d", mergedSink[i])
		}
		if local.Ts != merged.Ts || local.Format != merged.Format || local.Payload != merged.Payload {
			t.Fatalf("sink %d: shipped %+v, stored %+v", localID, local, merged)
		}
		if len(local.Sources) != len(merged.Sources) {
			t.Fatalf("sink %d: shipped %d sources, stored %d", localID, len(local.Sources), len(merged.Sources))
		}
		for j, ref := range local.Sources {
			if srcMap[ref] != merged.Sources[j] {
				t.Fatalf("sink %d source %d: local %d maps to %d, stored %d",
					localID, j, ref, srcMap[ref], merged.Sources[j])
			}
		}
	}
	if re.Watermark() != be.Watermark() {
		t.Fatalf("watermark: shipped %d, stored %d", re.Watermark(), be.Watermark())
	}
}

// fuzzHostileServer throws the raw bytes at a server connection handler.
func fuzzHostileServer(t *testing.T, data []byte) {
	srv := NewServer(NewMemoryBackend(0))
	rw := struct {
		io.Reader
		io.Writer
	}{bytes.NewReader(data), io.Discard}
	// Any outcome but a panic is acceptable; errors must be descriptive.
	if err := srv.ServeConn(rw); err != nil && err.Error() == "" {
		t.Fatal("empty error message")
	}
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// fuzzHostileClient throws the raw bytes at the query client's reply parser.
func fuzzHostileClient(t *testing.T, data []byte) {
	for i := 0; i < 3; i++ {
		c := &Client{
			conn: nopCloser{},
			w:    bufio.NewWriter(io.Discard),
			r:    bufio.NewReader(bytes.NewReader(data)),
		}
		var err error
		switch i {
		case 0:
			_, err = c.Stats()
		case 1:
			_, _, err = c.Backward(1)
		case 2:
			_, err = c.List(-1)
		}
		if err != nil && err.Error() == "" {
			t.Fatal("empty error message")
		}
	}
}
