package provstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"genealog/internal/core"
	"genealog/internal/csvio"
	"genealog/internal/smartgrid"
)

func reading(ts int64, meter int32, cons float64) *smartgrid.MeterReading {
	return smartgrid.NewMeterReading(ts, meter, cons)
}

func readingID(ts int64, meter int32, cons float64, id uint64) *smartgrid.MeterReading {
	r := reading(ts, meter, cons)
	r.SetID(id)
	return r
}

// alert builds a sink tuple.
func alert(ts int64, count int32) *smartgrid.BlackoutAlert {
	return &smartgrid.BlackoutAlert{Base: core.NewBase(ts), Count: count}
}

func TestIngestDedupAndQueries(t *testing.T) {
	for _, backend := range []string{"memory", "file"} {
		t.Run(backend, func(t *testing.T) {
			st := openTestStore(t, backend, Options{Horizon: 100})

			s1, s2, s3 := reading(1, 1, 5), reading(2, 2, 6), reading(3, 3, 7)
			id1, err := st.Ingest(alert(10, 2), []core.Tuple{s1, s2})
			if err != nil {
				t.Fatal(err)
			}
			id2, err := st.Ingest(alert(20, 2), []core.Tuple{s2, s3})
			if err != nil {
				t.Fatal(err)
			}
			if id1 == id2 {
				t.Fatalf("sink IDs must differ, both %d", id1)
			}

			ss := st.Stats()
			if ss.Sinks != 2 || ss.Sources != 3 || ss.SourceRefs != 4 {
				t.Fatalf("stats = %+v, want 2 sinks, 3 sources, 4 refs", ss)
			}
			if got, want := ss.DedupRatio(), 4.0/3.0; got != want {
				t.Fatalf("dedup ratio = %f, want %f", got, want)
			}

			sink, sources, err := st.Backward(id2)
			if err != nil {
				t.Fatal(err)
			}
			if sink.Ts != 20 || len(sources) != 2 {
				t.Fatalf("Backward(%d) = %+v with %d sources", id2, sink, len(sources))
			}
			if sources[0].Payload != "2,2,6.0000" || sources[1].Payload != "3,3,7.0000" {
				t.Fatalf("unexpected source payloads %q, %q", sources[0].Payload, sources[1].Payload)
			}
			if sources[0].Refs != 2 || sources[1].Refs != 1 {
				t.Fatalf("refs = %d/%d, want 2/1", sources[0].Refs, sources[1].Refs)
			}

			// Forward of the shared source must list both sinks, in order.
			shared := sources[0]
			src, sinks, err := st.Forward(shared.ID)
			if err != nil {
				t.Fatal(err)
			}
			if src.Payload != shared.Payload || len(sinks) != 2 {
				t.Fatalf("Forward(%d): %d sinks", shared.ID, len(sinks))
			}
			if sinks[0].ID != id1 || sinks[1].ID != id2 {
				t.Fatalf("forward sinks = %d,%d, want %d,%d", sinks[0].ID, sinks[1].ID, id1, id2)
			}

			if _, _, err := st.Backward(9999); err == nil {
				t.Fatal("Backward of unknown sink must fail")
			}
			if _, _, err := st.Forward(9999); err == nil {
				t.Fatal("Forward of unknown source must fail")
			}
		})
	}
}

func openTestStore(t *testing.T, backend string, opts Options) *Store {
	t.Helper()
	if backend == "memory" {
		return NewMemory(opts)
	}
	st, err := Create(filepath.Join(t.TempDir(), "prov.glprov"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWatermarkRetirement(t *testing.T) {
	st := NewMemory(Options{Horizon: 10})
	// Sink at ts carries one source at ts-5.
	for ts := int64(0); ts < 100; ts += 5 {
		if _, err := st.Ingest(alert(ts, 1), []core.Tuple{reading(ts-5, int32(ts), 1)}); err != nil {
			t.Fatal(err)
		}
	}
	ss := st.Stats()
	if ss.Sources != 20 {
		t.Fatalf("sources = %d, want 20", ss.Sources)
	}
	// Watermark 95, horizon 10: sources with ts <= 85 (i.e. all but the last
	// two, ts 90 and 85 is retired at ts+10 <= 95 → 85 retired too) retired.
	if ss.LiveSources >= ss.Sources || ss.RetiredSources == 0 {
		t.Fatalf("retention did not run: %+v", ss)
	}
	if ss.LiveSources+ss.RetiredSources != ss.Sources {
		t.Fatalf("live %d + retired %d != sources %d", ss.LiveSources, ss.RetiredSources, ss.Sources)
	}
	// The live working set stays bounded by the horizon: at most
	// horizon/spacing + 1 handles plus the not-yet-advanced tail.
	if ss.PeakLiveSources > 4 {
		t.Fatalf("peak live = %d, want <= 4 (horizon 10, one source per 5 ticks)", ss.PeakLiveSources)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ss = st.Stats()
	if ss.LiveSources != 0 || ss.RetiredSources != ss.Sources {
		t.Fatalf("after Close: %+v, want everything retired", ss)
	}
	if ss.ReEncoded != 0 {
		t.Fatalf("re-encoded = %d, want 0", ss.ReEncoded)
	}
	// The store stays queryable after Close.
	if _, _, err := st.Backward(st.SinkIDs()[0]); err != nil {
		t.Fatal(err)
	}
}

// TestRetiredMetaIDReReference: a source referenced again after its dedup
// handle was retired must be recognised by meta-ID and not re-encoded.
func TestRetiredMetaIDReReference(t *testing.T) {
	st := NewMemory(Options{Horizon: 5})
	src := readingID(0, 1, 1, 0x0001000000000001)
	if _, err := st.Ingest(alert(1, 1), []core.Tuple{src}); err != nil {
		t.Fatal(err)
	}
	st.Advance(50) // retires the handle (ts 0 + horizon 5 <= 50)
	if got := st.Stats().RetiredSources; got != 1 {
		t.Fatalf("retired = %d, want 1", got)
	}
	// A decoded copy with the same meta-ID arrives much later.
	copy := readingID(0, 1, 1, 0x0001000000000001)
	if _, err := st.Ingest(alert(60, 1), []core.Tuple{copy}); err != nil {
		t.Fatal(err)
	}
	ss := st.Stats()
	if ss.Sources != 1 || ss.SourceRefs != 2 || ss.ReEncoded != 0 {
		t.Fatalf("stats = %+v, want 1 source, 2 refs, 0 re-encoded", ss)
	}
}

func TestFileRoundTripAndOpenRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.glprov")
	st, err := Create(path, Options{Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := reading(1, 1, 5), reading(2, 2, 6)
	sinkID, err := st.Ingest(alert(10, 2), []core.Tuple{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Ingest(alert(90, 1), []core.Tuple{reading(88, 3, 7)}); err != nil {
		t.Fatal(err)
	}
	want := st.Stats()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenRead(path)
	if err != nil {
		t.Fatal(err)
	}
	got := ro.Stats()
	if got.Sinks != want.Sinks || got.Sources != want.Sources || got.SourceRefs != want.SourceRefs {
		t.Fatalf("reopened stats %+v != written %+v", got, want)
	}
	if got.Bytes != want.Bytes {
		t.Fatalf("reopened bytes %d != written %d", got.Bytes, want.Bytes)
	}
	if got.Horizon != 30 {
		t.Fatalf("horizon = %d, want 30", got.Horizon)
	}
	if got.Watermark != want.Watermark {
		t.Fatalf("watermark = %d, want %d", got.Watermark, want.Watermark)
	}
	sink, sources, err := ro.Backward(sinkID)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Ts != 10 || len(sources) != 2 || sources[0].Payload != "1,1,5.0000" {
		t.Fatalf("Backward after reopen: %+v, %d sources", sink, len(sources))
	}
	// Read-only stores reject ingestion.
	if _, err := ro.Ingest(alert(100, 1), nil); err == nil {
		t.Fatal("Ingest on a read-only store must fail")
	}
}

func TestUnregisteredTupleFallback(t *testing.T) {
	st := NewMemory(Options{})
	type oddball struct{ core.Base }
	if _, err := st.Ingest(&oddball{Base: core.NewBase(7)}, []core.Tuple{&oddball{Base: core.NewBase(3)}}); err != nil {
		t.Fatal(err)
	}
	sink, sources, err := st.Backward(st.SinkIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if sink.Format != "" || !strings.Contains(sink.Payload, "@7") {
		t.Fatalf("fallback sink payload = %q (format %q)", sink.Payload, sink.Format)
	}
	if len(sources) != 1 || !strings.Contains(sources[0].Payload, "@3") {
		t.Fatalf("fallback source payload missing: %+v", sources)
	}
}

func TestOpenRejectsCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.glprov")
	if err := os.WriteFile(path, []byte("NOTPROV0\x00\x00\x00\x00\x00\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRead(path); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("corrupt magic: err = %v", err)
	}
}

// TestOpenToleratesTornTail: a crash mid-append leaves a truncated final
// record; every record before it must still be indexed.
func TestOpenToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.glprov")
	st, err := Create(path, Options{Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Ingest(alert(10, 1), []core.Tuple{reading(9, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append a torn source record: kind byte plus half an ID.
	data = append(data, recSource, 0x01, 0x02)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenRead(path)
	if err != nil {
		t.Fatal(err)
	}
	if ss := ro.Stats(); ss.Sinks != 1 || ss.Sources != 1 {
		t.Fatalf("torn-tail reopen lost records: %+v", ss)
	}
}

func TestMemoryAndFileBackendsAgree(t *testing.T) {
	mem := NewMemory(Options{Horizon: 20})
	path := filepath.Join(t.TempDir(), "prov.glprov")
	file, err := Create(path, Options{Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(st *Store) {
		t.Helper()
		shared := reading(5, 9, 2)
		for ts := int64(10); ts <= 50; ts += 10 {
			if _, err := st.Ingest(alert(ts, 1), []core.Tuple{shared, reading(ts-1, int32(ts), 1)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(mem)
	feed(file)
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	ms, fs := mem.Stats(), file.Stats()
	if ms != fs {
		t.Fatalf("backend stats disagree:\nmemory: %+v\nfile:   %+v", ms, fs)
	}
	for _, id := range mem.SinkIDs() {
		msink, msources, err := mem.Backward(id)
		if err != nil {
			t.Fatal(err)
		}
		fsink, fsources, err := file.Backward(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(msink, fsink) || !reflect.DeepEqual(msources, fsources) {
			t.Fatalf("Backward(%d) disagrees", id)
		}
	}
}

func TestRecordSizesMatchEncoders(t *testing.T) {
	src := SourceEntry{ID: 7, Ts: 42, Format: "sg.reading", Payload: "42,1,5.0000"}
	if got, want := sourceRecordSize(src), int64(len(encodeSourceRecord(src))); got != want {
		t.Fatalf("sourceRecordSize = %d, encoder emits %d", got, want)
	}
	sink := SinkEntry{ID: 9, Ts: 50, Format: "sg.alert", Payload: "50,2", Sources: []uint64{7, 8, 11}}
	if got, want := sinkRecordSize(sink), int64(len(encodeSinkRecord(sink))); got != want {
		t.Fatalf("sinkRecordSize = %d, encoder emits %d", got, want)
	}
	if got, want := int64(watermarkRecordSize), int64(len(encodeWatermarkRecord(99))); got != want {
		t.Fatalf("watermarkRecordSize = %d, encoder emits %d", got, want)
	}
}

func TestFileLogRejectsOversizedEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.glprov")
	fl, err := CreateFileLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	// A payload the reader would reject as corrupt must be refused at write
	// time, not discovered when the store can no longer be opened.
	big := strings.Repeat("x", maxStringLen+1)
	if err := fl.AppendSource(SourceEntry{ID: 1, Payload: big}); err == nil {
		t.Fatal("oversized source payload must be rejected")
	}
	if err := fl.AppendSink(SinkEntry{ID: 1, Payload: big}); err == nil {
		t.Fatal("oversized sink payload must be rejected")
	}
	// A format name beyond the str16 prefix would silently truncate and
	// desynchronise the record stream.
	longName := strings.Repeat("f", maxFormatLen+1)
	if err := fl.AppendSource(SourceEntry{ID: 2, Format: longName}); err == nil {
		t.Fatal("oversized format name must be rejected")
	}
	// The accepted records (none here beyond the header) still open cleanly.
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := ro.SourceCount(); n != 0 {
		t.Fatalf("rejected records leaked into the log: %d sources", n)
	}
}

// failingTuple's registered format errors at encode time: a real formatter
// failure must fail the ingest, not silently degrade to the unregistered
// fallback rendering.
type failingTuple struct{ core.Base }

func TestFormatterErrorFailsIngest(t *testing.T) {
	csvio.RegisterFormat("test.failing", &failingTuple{},
		func([]string) (core.Tuple, error) { return nil, errors.New("unparseable") },
		func(core.Tuple) ([]string, error) { return nil, errors.New("boom") })
	st := NewMemory(Options{})
	if _, err := st.Ingest(&failingTuple{Base: core.NewBase(1)}, nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Ingest with a failing formatter: err = %v, want the formatter's error", err)
	}
	if _, err := st.Ingest(alert(2, 1), []core.Tuple{&failingTuple{Base: core.NewBase(1)}}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Ingest with a failing source formatter: err = %v, want the formatter's error", err)
	}
	if got := st.Stats().Sinks; got != 0 {
		t.Fatalf("failed ingests must not store sink entries, got %d", got)
	}
}
