package provstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// The append-only file log. Layout:
//
//	header:  8-byte magic "GLPROV1\n" | horizon int64
//	records: kind byte | kind-specific body
//
//	source record ('S'):    id u64 | ts i64 | format str16 | payload str32
//	sink record ('K'):      id u64 | ts i64 | format str16 | payload str32 |
//	                        count u32 | count x source-id u64
//	watermark record ('W'): ts i64
//
// strN is an N-bit little-endian length followed by that many bytes. All
// integers are little-endian. The log is written once, append-only, by a
// single run; the ID index is rebuilt by scanning the log on open. A
// truncated final record (crash mid-append) is tolerated on open — every
// record before it is indexed.
const fileMagic = "GLPROV1\n"

// Record kinds.
const (
	recSource    = 'S'
	recSink      = 'K'
	recWatermark = 'W'
)

// Limits guarding the decoder against corrupt or adversarial logs: a bogus
// length prefix must not make the reader allocate gigabytes. The append path
// enforces the same limits (checkEntryLimits), so every record a FileLog
// accepts is one OpenFileLog can read back — a payload the reader would
// reject as corrupt, or a format name putStr16's uint16 prefix would
// silently truncate (desynchronising the record stream), is refused at
// write time instead.
const (
	maxFormatLen   = 1<<16 - 1 // str16 prefix capacity
	maxStringLen   = 1 << 20   // 1 MiB per format name or payload
	maxSinkSources = 1 << 24   // source references per sink entry
)

func checkEntryLimits(kind string, id uint64, format, payload string) error {
	if len(format) > maxFormatLen {
		return fmt.Errorf("provstore: %s entry %d: format name %d bytes exceeds limit %d",
			kind, id, len(format), maxFormatLen)
	}
	if len(payload) > maxStringLen {
		return fmt.Errorf("provstore: %s entry %d: payload %d bytes exceeds limit %d",
			kind, id, len(payload), maxStringLen)
	}
	return nil
}

// Record sizes mirror the encoders exactly; the open scan and the memory
// backend account bytes arithmetically instead of re-encoding every record.
func sourceRecordSize(e SourceEntry) int64 {
	return 1 + 8 + 8 + 2 + int64(len(e.Format)) + 4 + int64(len(e.Payload))
}

func sinkRecordSize(e SinkEntry) int64 {
	return 1 + 8 + 8 + 2 + int64(len(e.Format)) + 4 + int64(len(e.Payload)) + 4 + 8*int64(len(e.Sources))
}

const watermarkRecordSize = 1 + 8

func putU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func putStr16(buf *bytes.Buffer, s string) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
	buf.Write(b[:])
	buf.WriteString(s)
}

func putStr32(buf *bytes.Buffer, s string) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(s)))
	buf.Write(b[:])
	buf.WriteString(s)
}

func encodeSourceRecord(e SourceEntry) []byte {
	var buf bytes.Buffer
	buf.Grow(1 + 16 + 2 + len(e.Format) + 4 + len(e.Payload))
	buf.WriteByte(recSource)
	putU64(&buf, e.ID)
	putU64(&buf, uint64(e.Ts))
	putStr16(&buf, e.Format)
	putStr32(&buf, e.Payload)
	return buf.Bytes()
}

func encodeSinkRecord(e SinkEntry) []byte {
	var buf bytes.Buffer
	buf.Grow(1 + 16 + 2 + len(e.Format) + 4 + len(e.Payload) + 4 + 8*len(e.Sources))
	buf.WriteByte(recSink)
	putU64(&buf, e.ID)
	putU64(&buf, uint64(e.Ts))
	putStr16(&buf, e.Format)
	putStr32(&buf, e.Payload)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(e.Sources)))
	buf.Write(b[:])
	for _, id := range e.Sources {
		putU64(&buf, id)
	}
	return buf.Bytes()
}

func encodeWatermarkRecord(ts int64) []byte {
	var buf bytes.Buffer
	buf.Grow(9)
	buf.WriteByte(recWatermark)
	putU64(&buf, uint64(ts))
	return buf.Bytes()
}

// FileLog is the append-only file backend. It keeps the ID index in memory —
// appends update it immediately, Open* rebuild it by scanning the log — so
// queries never seek the file.
type FileLog struct {
	ix      *index
	horizon int64
	bytes   int64

	f        *os.File // nil when opened read-only (index fully loaded)
	w        *bufio.Writer
	writable bool
}

var _ Backend = (*FileLog)(nil)

// CreateFileLog creates (or truncates) the log at path with the given
// retention horizon.
func CreateFileLog(path string, horizon int64) (*FileLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("provstore: %w", err)
	}
	w := bufio.NewWriter(f)
	var hdr bytes.Buffer
	hdr.WriteString(fileMagic)
	putU64(&hdr, uint64(horizon))
	if _, err := w.Write(hdr.Bytes()); err != nil {
		f.Close()
		return nil, fmt.Errorf("provstore: write header: %w", err)
	}
	// Push the header to the OS immediately: a writer killed before its
	// first flush must leave a valid (empty) log behind, not a 0-byte file
	// OpenFileLogAppend would refuse — the store node's restart contract.
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("provstore: write header: %w", err)
	}
	return &FileLog{
		ix: newIndex(), horizon: horizon, bytes: int64(hdr.Len()),
		f: f, w: w, writable: true,
	}, nil
}

// scanFileLog reads the header and every record of an open log file into a
// fresh index, tolerating a torn final record (crash mid-append): everything
// before it is indexed. It returns the rebuilt log (bytes set to the offset
// just past the last intact record) and whether a torn tail was dropped.
func scanFileLog(path string, f *os.File) (*FileLog, bool, error) {
	fl := &FileLog{ix: newIndex()}
	r := bufio.NewReader(f)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, false, fmt.Errorf("provstore: %s: read header: %w", path, err)
	}
	if string(magic) != fileMagic {
		return nil, false, fmt.Errorf("provstore: %s is not a provenance store (bad magic)", path)
	}
	h, err := readU64(r)
	if err != nil {
		return nil, false, fmt.Errorf("provstore: %s: read horizon: %w", path, err)
	}
	fl.horizon = int64(h)
	fl.bytes = int64(len(fileMagic)) + 8
	for {
		n, err := fl.readRecord(r)
		if err == io.EOF {
			return fl, false, nil
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return fl, true, nil
		}
		if err != nil {
			return nil, false, fmt.Errorf("provstore: %s: %w", path, err)
		}
		fl.bytes += n
	}
}

// OpenFileLog opens an existing log read-only and rebuilds the ID index by
// scanning every record. A truncated final record is tolerated; any other
// corruption fails the open.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("provstore: %w", err)
	}
	defer f.Close()
	fl, _, err := scanFileLog(path, f)
	return fl, err
}

// OpenFileLogAppend reopens an existing log for further appends: the ID
// index is rebuilt by scanning every record, a torn final record (crash
// mid-append) is truncated away so new records start on a clean boundary,
// and the write position resumes at the end of the last intact record. A
// restarted store node (cmd/spe-node -store-listen) uses this to keep
// serving — and extending — a log whose writer was killed.
func OpenFileLogAppend(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("provstore: %w", err)
	}
	fl, tornTail, err := scanFileLog(path, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if tornTail {
		if err := f.Truncate(fl.bytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("provstore: %s: truncate torn tail: %w", path, err)
		}
	}
	if _, err := f.Seek(fl.bytes, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("provstore: %s: seek: %w", path, err)
	}
	fl.f, fl.w, fl.writable = f, bufio.NewWriter(f), true
	return fl, nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readStr16(r io.Reader) (string, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return "", err
	}
	n := int(binary.LittleEndian.Uint16(b[:]))
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readStr32(r io.Reader) (string, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return "", err
	}
	n := binary.LittleEndian.Uint32(b[:])
	if n > maxStringLen {
		return "", fmt.Errorf("string length %d exceeds limit %d", n, maxStringLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// record is one decoded log record; kind selects which field is meaningful.
// The same framing crosses the remote store's wire protocol (remote.go), so
// the decoder is shared between the file scan and the store server.
type record struct {
	kind      byte
	source    SourceEntry
	sink      SinkEntry
	watermark int64
}

// decodeRecord reads one record and returns it with its encoded size. An
// io.EOF on the kind byte is a clean end of stream; a short read anywhere
// later surfaces as io.ErrUnexpectedEOF (torn record).
func decodeRecord(r *bufio.Reader) (record, int64, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return record{}, 0, err // io.EOF: clean end
	}
	rec := record{kind: kind}
	switch kind {
	case recSource:
		var e SourceEntry
		id, err := readU64(r)
		if err != nil {
			return record{}, 0, torn(err)
		}
		ts, err := readU64(r)
		if err != nil {
			return record{}, 0, torn(err)
		}
		e.ID, e.Ts = id, int64(ts)
		if e.Format, err = readStr16(r); err != nil {
			return record{}, 0, torn(err)
		}
		if e.Payload, err = readStr32(r); err != nil {
			return record{}, 0, torn(err)
		}
		rec.source = e
		return rec, sourceRecordSize(e), nil
	case recSink:
		var e SinkEntry
		id, err := readU64(r)
		if err != nil {
			return record{}, 0, torn(err)
		}
		ts, err := readU64(r)
		if err != nil {
			return record{}, 0, torn(err)
		}
		e.ID, e.Ts = id, int64(ts)
		if e.Format, err = readStr16(r); err != nil {
			return record{}, 0, torn(err)
		}
		if e.Payload, err = readStr32(r); err != nil {
			return record{}, 0, torn(err)
		}
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return record{}, 0, torn(err)
		}
		n := binary.LittleEndian.Uint32(b[:])
		if n > maxSinkSources {
			return record{}, 0, fmt.Errorf("sink entry %d references %d sources (limit %d)", e.ID, n, maxSinkSources)
		}
		if n > 0 {
			// Cap the up-front allocation: a corrupt count must not make a
			// tiny file allocate 8*maxSinkSources bytes before the short
			// read is discovered.
			e.Sources = make([]uint64, 0, min(int(n), 4096))
		}
		for i := uint32(0); i < n; i++ {
			id, err := readU64(r)
			if err != nil {
				return record{}, 0, torn(err)
			}
			e.Sources = append(e.Sources, id)
		}
		rec.sink = e
		return rec, sinkRecordSize(e), nil
	case recWatermark:
		ts, err := readU64(r)
		if err != nil {
			return record{}, 0, torn(err)
		}
		rec.watermark = int64(ts)
		return rec, watermarkRecordSize, nil
	default:
		return record{}, 0, fmt.Errorf("unknown record kind 0x%02x", kind)
	}
}

// apply folds one decoded record into the index.
func (ix *index) apply(rec record) {
	switch rec.kind {
	case recSource:
		ix.addSource(rec.source)
	case recSink:
		ix.addSink(rec.sink)
	case recWatermark:
		ix.addWatermark(rec.watermark)
	}
}

// readRecord decodes one record into the index and returns its encoded size.
func (fl *FileLog) readRecord(r *bufio.Reader) (int64, error) {
	rec, n, err := decodeRecord(r)
	if err != nil {
		return 0, err
	}
	fl.ix.apply(rec)
	return n, nil
}

// torn maps a short read inside a record to io.ErrUnexpectedEOF so the open
// scan can distinguish a truncated tail from real corruption.
func torn(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func (fl *FileLog) append(rec []byte) error {
	if !fl.writable {
		return errors.New("provstore: store is read-only")
	}
	if _, err := fl.w.Write(rec); err != nil {
		return fmt.Errorf("provstore: append: %w", err)
	}
	fl.bytes += int64(len(rec))
	return nil
}

// AppendSource implements Backend.
func (fl *FileLog) AppendSource(e SourceEntry) error {
	if err := checkEntryLimits("source", e.ID, e.Format, e.Payload); err != nil {
		return err
	}
	if err := fl.append(encodeSourceRecord(e)); err != nil {
		return err
	}
	fl.ix.addSource(e)
	return nil
}

// AppendSink implements Backend.
func (fl *FileLog) AppendSink(e SinkEntry) error {
	if err := checkEntryLimits("sink", e.ID, e.Format, e.Payload); err != nil {
		return err
	}
	if len(e.Sources) > maxSinkSources {
		return fmt.Errorf("provstore: sink entry %d references %d sources (limit %d)",
			e.ID, len(e.Sources), maxSinkSources)
	}
	if err := fl.append(encodeSinkRecord(e)); err != nil {
		return err
	}
	fl.ix.addSink(e)
	return nil
}

// AppendWatermark implements Backend.
func (fl *FileLog) AppendWatermark(ts int64) error {
	if err := fl.append(encodeWatermarkRecord(ts)); err != nil {
		return err
	}
	fl.ix.addWatermark(ts)
	return nil
}

// Source implements Backend.
func (fl *FileLog) Source(id uint64) (SourceEntry, bool) {
	e, ok := fl.ix.sources[id]
	return e, ok
}

// Sink implements Backend.
func (fl *FileLog) Sink(id uint64) (SinkEntry, bool) {
	e, ok := fl.ix.sinks[id]
	return e, ok
}

// SourceIDs implements Backend.
func (fl *FileLog) SourceIDs(max int) []uint64 { return headIDs(fl.ix.srcOrder, max) }

// SinkIDs implements Backend.
func (fl *FileLog) SinkIDs(max int) []uint64 { return headIDs(fl.ix.sinkOrder, max) }

// SourceCount implements Backend.
func (fl *FileLog) SourceCount() int { return len(fl.ix.srcOrder) }

// SinkCount implements Backend.
func (fl *FileLog) SinkCount() int { return len(fl.ix.sinkOrder) }

// SinksOf implements Backend.
func (fl *FileLog) SinksOf(sourceID uint64) []uint64 {
	return append([]uint64(nil), fl.ix.forward[sourceID]...)
}

// RefCount implements Backend.
func (fl *FileLog) RefCount(sourceID uint64) int { return len(fl.ix.forward[sourceID]) }

// Watermark implements Backend.
func (fl *FileLog) Watermark() int64 { return fl.ix.watermark }

// Horizon implements Backend.
func (fl *FileLog) Horizon() int64 { return fl.horizon }

// Bytes implements Backend.
func (fl *FileLog) Bytes() int64 { return fl.bytes }

// Flush pushes buffered appends to the operating system, so records a store
// server has acknowledged survive the server process being killed (the OS
// page cache holds them even if the process never reaches Close). A no-op on
// read-only logs.
func (fl *FileLog) Flush() error {
	if fl.w == nil {
		return nil
	}
	return fl.w.Flush()
}

// Close flushes and closes the file. The in-memory index keeps answering
// queries afterwards.
func (fl *FileLog) Close() error {
	if fl.f == nil {
		return nil
	}
	err := fl.w.Flush()
	if cerr := fl.f.Close(); err == nil {
		err = cerr
	}
	fl.f, fl.w, fl.writable = nil, nil, false
	return err
}

// maxEventTime is the watermark Close advances to: end-of-stream means every
// window has closed.
const maxEventTime = math.MaxInt64
