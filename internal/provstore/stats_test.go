package provstore

import (
	"context"
	"testing"

	"genealog/internal/core"
)

// TestStatsInstancesAndMinWatermark: the store node reports how many SPE
// instances have ingested into it and the slowest instance's delivered
// watermark — the event time up to which the merged view is complete — and
// both survive the wire protocol. A local store is its own single instance.
func TestStatsInstancesAndMinWatermark(t *testing.T) {
	srv, addr := startServer(t, NewMemoryBackend(100))
	defer srv.Close()

	a := connect(t, addr, Options{Horizon: 100})
	b := connect(t, addr, Options{Horizon: 100})
	if _, err := a.Ingest(alert(20, 1), []core.Tuple{reading(1, 1, 5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Ingest(alert(30, 1), []core.Tuple{reading(2, 2, 6)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // ships instance A's final watermark: 20
		t.Fatal(err)
	}
	if err := b.Close(); err != nil { // ships instance B's final watermark: 30
		t.Fatal(err)
	}

	ss := srv.Stats()
	if ss.Instances != 2 {
		t.Fatalf("server Instances = %d, want 2", ss.Instances)
	}
	if ss.Watermark != 30 {
		t.Fatalf("server Watermark = %d, want 30 (the newest instance's)", ss.Watermark)
	}
	if ss.MinWatermark != 20 {
		t.Fatalf("server MinWatermark = %d, want 20 (the slowest instance's)", ss.MinWatermark)
	}

	// The same fields cross the query protocol.
	c, err := DialQuery(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Instances != 2 || rs.MinWatermark != 20 || rs.Watermark != 30 {
		t.Fatalf("remote stats = instances %d, min watermark %d, watermark %d; want 2, 20, 30",
			rs.Instances, rs.MinWatermark, rs.Watermark)
	}

	// An instance that connected but delivered nothing pins MinWatermark at 0.
	idle := connect(t, addr, Options{Horizon: 100})
	defer idle.Close()
	if _, err := idle.Ingest(alert(40, 1), []core.Tuple{reading(3, 3, 7)}); err != nil {
		t.Fatal(err)
	}
	ss = srv.Stats()
	if ss.Instances != 3 || ss.MinWatermark != 0 {
		t.Fatalf("with an undelivered instance: instances %d, min watermark %d; want 3, 0", ss.Instances, ss.MinWatermark)
	}
}

// TestLocalStoreStatsInstance: a local store is one instance whose min
// watermark is its own.
func TestLocalStoreStatsInstance(t *testing.T) {
	st := NewMemory(Options{Horizon: 100})
	if _, err := st.Ingest(alert(20, 1), []core.Tuple{reading(1, 1, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ss := st.Stats()
	if ss.Instances != 1 {
		t.Fatalf("local Instances = %d, want 1", ss.Instances)
	}
	if ss.MinWatermark != ss.Watermark {
		t.Fatalf("local MinWatermark = %d, want Watermark %d", ss.MinWatermark, ss.Watermark)
	}
}
