package provstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Server is the store node: it accepts any number of ingest and query
// connections (see remote.go for the protocol), merges every instance's
// stream into one backend with per-connection ID namespacing, flushes the
// backend before acknowledging each frame — an acked batch survives the
// server process being killed — and answers Backward/Forward/Stats/List
// against the merged store. cmd/spe-node -store-listen wraps it.
type Server struct {
	// mu serialises all backend access (Backend implementations are not
	// goroutine-safe) and the ID counters.
	mu       sync.Mutex
	be       Backend
	refs     int64
	nextSrc  uint64
	nextSink uint64
	// instWM tracks each ingest connection's last shipped watermark, keyed
	// by a per-connection instance number. Entries outlive their connection:
	// a disconnected instance's data is still in the store, so its last
	// watermark still bounds how far the merged view can be trusted.
	instWM   map[int64]int64
	nextInst int64

	connMu sync.Mutex
	ln     net.Listener
	conns  map[io.Closer]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a store node over be (any Backend: NewMemoryBackend for
// ephemeral deployments, CreateFileLog/OpenFileLogAppend for durable ones).
// ID assignment resumes above everything the backend already holds, so a
// restarted node reopening its file log keeps extending the same ID space.
func NewServer(be Backend) *Server {
	s := &Server{be: be, conns: make(map[io.Closer]struct{}), instWM: make(map[int64]int64)}
	for _, id := range be.SourceIDs(-1) {
		if id > s.nextSrc {
			s.nextSrc = id
		}
		s.refs += int64(be.RefCount(id))
	}
	for _, id := range be.SinkIDs(-1) {
		if id > s.nextSink {
			s.nextSink = id
		}
	}
	return s
}

// Listen starts accepting connections on addr (":0" picks an ephemeral port)
// and serves each on its own goroutine until Close or Kill. It returns the
// bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("provstore: listen %s: %w", addr, err)
	}
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		ln.Close()
		return nil, errors.New("provstore: server is closed")
	}
	s.ln = ln
	s.connMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			if !s.track(conn) {
				conn.Close()
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer s.untrack(conn)
				defer conn.Close()
				_ = s.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr(), nil
}

func (s *Server) track(c io.Closer) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c io.Closer) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.conns, c)
}

// shutdown stops accepting and severs every active connection, then waits
// for the handlers to drain.
func (s *Server) shutdown() {
	s.connMu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

// Close shuts the node down gracefully: connections are severed, handlers
// drained, and the backend flushed and closed. The backend's in-memory index
// keeps answering direct queries afterwards.
func (s *Server) Close() error {
	s.shutdown()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.be.Close()
}

// Kill simulates the store node dying: the listener and every connection are
// torn down without flushing or closing the backend, exactly as if the
// process had been killed. Every acked frame is already flushed (the ack is
// sent after the backend flush), anything since is lost. Chaos tests use it;
// operational shutdown wants Close.
func (s *Server) Kill() { s.shutdown() }

// Stats returns the merged store's accounting. LiveSources and
// PeakLiveSources are zero: live dedup handles exist only on the ingesting
// instances, so — like a reopened store file — every merged source entry
// counts as retired.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Server) statsLocked() Stats {
	n := int64(s.be.SourceCount())
	st := Stats{
		Sinks: int64(s.be.SinkCount()), Sources: n, SourceRefs: s.refs,
		RetiredSources: n, Bytes: s.be.Bytes(),
		Watermark: s.be.Watermark(), Horizon: s.be.Horizon(),
		Instances: int64(len(s.instWM)), MinWatermark: s.be.Watermark(),
	}
	// The slowest instance's watermark bounds how far the merged view can be
	// trusted; with no ingest connections yet the backend watermark (e.g. a
	// reopened file log's) is all there is.
	first := true
	for _, wm := range s.instWM {
		if first || wm < st.MinWatermark {
			st.MinWatermark = wm
			first = false
		}
	}
	return st
}

// ServeConn serves one client connection over any byte stream (exported so
// tests can drive the protocol over in-memory pipes). It returns when the
// peer disconnects cleanly (nil) or on the first protocol, link or backend
// error — after nacking it to the peer where the link still allows.
func (s *Server) ServeConn(rw io.ReadWriter) error {
	r := bufio.NewReader(rw)
	w := bufio.NewWriter(rw)
	magic := make([]byte, len(remoteMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("provstore: server: read handshake: %w", err)
	}
	if string(magic) != remoteMagic {
		err := errors.New("provstore: server: peer is not a GLPROVR1 client (bad magic)")
		s.nack(w, err)
		return err
	}
	role, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("provstore: server: read role: %w", err)
	}
	switch role {
	case roleIngest:
		// The client's retention horizon; informational (retention runs on
		// the ingesting instance).
		if _, err := readU64(r); err != nil {
			return fmt.Errorf("provstore: server: read horizon: %w", err)
		}
		if err := s.ack(w); err != nil {
			return err
		}
		return s.serveIngest(r, w)
	case roleQuery:
		if err := s.ack(w); err != nil {
			return err
		}
		return s.serveQuery(r, w)
	default:
		err := fmt.Errorf("provstore: server: unknown role 0x%02x", role)
		s.nack(w, err)
		return err
	}
}

func (s *Server) ack(w *bufio.Writer) error {
	w.WriteByte(ackOK)
	return w.Flush()
}

// nack reports err to the peer ('E' + message); best-effort — the link may
// already be gone.
func (s *Server) nack(w *bufio.Writer, err error) {
	msg := err.Error()
	if len(msg) > maxStringLen {
		msg = msg[:maxStringLen]
	}
	w.WriteByte(ackErr)
	writeU32(w, uint32(len(msg)))
	w.WriteString(msg)
	w.Flush()
}

// serveIngest merges one instance's record stream into the backend. srcMap
// and sinkMap are the connection's ID namespace: every source and sink ID
// the instance ships is remapped onto a fresh global sequential ID, and sink
// records' source references are remapped through the same table — a
// reference to a source this connection never shipped is a protocol error.
func (s *Server) serveIngest(r *bufio.Reader, w *bufio.Writer) error {
	srcMap := make(map[uint64]uint64)
	sinkMap := make(map[uint64]uint64)
	// Register the connection as an SPE instance. It starts at watermark 0 —
	// nothing of this instance's stream is delivered yet — and pins the
	// merged view's MinWatermark there until its first watermark record.
	s.mu.Lock()
	s.nextInst++
	inst := s.nextInst
	s.instWM[inst] = 0
	s.mu.Unlock()
	for {
		kind, err := r.ReadByte()
		if err == io.EOF {
			return nil // clean end of ingestion
		}
		if err != nil {
			return fmt.Errorf("provstore: server: read frame: %w", err)
		}
		if kind != frameBatch {
			err := fmt.Errorf("provstore: server: unexpected ingest frame 0x%02x (want 'B')", kind)
			s.nack(w, err)
			return err
		}
		n, err := readU32(r)
		if err != nil {
			return fmt.Errorf("provstore: server: read batch count: %w", err)
		}
		if n == 0 || n > maxBatchRecords {
			err := fmt.Errorf("provstore: server: batch of %d records outside (0, %d]", n, maxBatchRecords)
			s.nack(w, err)
			return err
		}
		// Decode the whole frame before taking the lock: the backend mutex is
		// shared with every other ingest and query connection, so it must
		// never be held across a blocking network read (a stalled peer would
		// wedge the whole node). The cumulative byte bound keeps a frame of
		// maximum-size records from buffering gigabytes (overshoot is at most
		// one record, whose own fields are individually capped).
		recs := make([]record, 0, min(int(n), 4096))
		var frameBytes int64
		for i := uint32(0); i < n; i++ {
			rec, size, err := decodeRecord(r)
			if err != nil {
				err = fmt.Errorf("provstore: server: batch record %d/%d: %w", i+1, n, err)
				s.nack(w, err)
				return err
			}
			if frameBytes += size; frameBytes > maxBatchFrameBytes {
				err := fmt.Errorf("provstore: server: batch frame exceeds %d bytes at record %d/%d", maxBatchFrameBytes, i+1, n)
				s.nack(w, err)
				return err
			}
			recs = append(recs, rec)
		}
		var ingestErr error
		s.mu.Lock()
		for _, rec := range recs {
			if ingestErr = s.applyLocked(rec, inst, srcMap, sinkMap); ingestErr != nil {
				break
			}
		}
		if ingestErr == nil {
			ingestErr = s.flushLocked()
		}
		s.mu.Unlock()
		if ingestErr != nil {
			s.nack(w, ingestErr)
			return ingestErr
		}
		if err := s.ack(w); err != nil {
			return fmt.Errorf("provstore: server: ack: %w", err)
		}
	}
}

// applyLocked folds one remapped record into the backend. inst identifies
// the ingesting instance (per-instance watermark tracking).
func (s *Server) applyLocked(rec record, inst int64, srcMap, sinkMap map[uint64]uint64) error {
	switch rec.kind {
	case recSource:
		e := rec.source
		if _, dup := srcMap[e.ID]; dup {
			return nil // instance re-shipped a source it already shipped
		}
		s.nextSrc++
		srcMap[e.ID] = s.nextSrc
		e.ID = s.nextSrc
		return s.be.AppendSource(e)
	case recSink:
		e := rec.sink
		if _, dup := sinkMap[e.ID]; dup {
			return nil
		}
		remapped := make([]uint64, len(e.Sources))
		for i, id := range e.Sources {
			global, ok := srcMap[id]
			if !ok {
				return fmt.Errorf("sink entry %d references source %d this instance never shipped", e.ID, id)
			}
			remapped[i] = global
		}
		s.nextSink++
		sinkMap[e.ID] = s.nextSink
		e.ID, e.Sources = s.nextSink, remapped
		if err := s.be.AppendSink(e); err != nil {
			return err
		}
		s.refs += int64(len(remapped))
		return nil
	case recWatermark:
		if rec.watermark > s.instWM[inst] {
			s.instWM[inst] = rec.watermark
		}
		return s.be.AppendWatermark(rec.watermark)
	default:
		return fmt.Errorf("unknown record kind 0x%02x", rec.kind)
	}
}

// flushLocked pushes the frame to the OS before it is acknowledged, so an
// acked frame survives the server being killed.
func (s *Server) flushLocked() error {
	if f, ok := s.be.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// serveQuery answers Backward/Forward/Stats/List requests against the merged
// store. A request against a missing entry nacks that request and keeps the
// connection alive; a broken or desynchronised link ends it.
func (s *Server) serveQuery(r *bufio.Reader, w *bufio.Writer) error {
	for {
		req, err := r.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("provstore: server: read request: %w", err)
		}
		switch req {
		case reqStats:
			s.mu.Lock()
			st := s.statsLocked()
			s.mu.Unlock()
			w.WriteByte(ackOK)
			for _, v := range []int64{st.Sinks, st.Sources, st.SourceRefs, st.LiveSources,
				st.RetiredSources, st.PeakLiveSources, st.ReEncoded, st.Bytes, st.Watermark, st.Horizon,
				st.Instances, st.MinWatermark} {
				writeU64(w, uint64(v))
			}
			if err := w.Flush(); err != nil {
				return fmt.Errorf("provstore: server: stats reply: %w", err)
			}
		case reqBackward:
			id, err := readU64(r)
			if err != nil {
				return fmt.Errorf("provstore: server: read sink ID: %w", err)
			}
			if err := s.replyBackward(w, id); err != nil {
				return err
			}
		case reqForward:
			id, err := readU64(r)
			if err != nil {
				return fmt.Errorf("provstore: server: read source ID: %w", err)
			}
			if err := s.replyForward(w, id); err != nil {
				return err
			}
		case reqList:
			max, err := readU64(r)
			if err != nil {
				return fmt.Errorf("provstore: server: read list bound: %w", err)
			}
			if err := s.replyList(w, int(int64(max))); err != nil {
				return err
			}
		default:
			err := fmt.Errorf("provstore: server: unknown request 0x%02x", req)
			s.nack(w, err)
			return err
		}
	}
}

func writeCount(w *bufio.Writer, n int) { writeU32(w, uint32(n)) }

func (s *Server) replyBackward(w *bufio.Writer, id uint64) error {
	s.mu.Lock()
	sink, ok := s.be.Sink(id)
	if !ok {
		s.mu.Unlock()
		s.nack(w, fmt.Errorf("no sink entry %d", id))
		return nil
	}
	type ref struct {
		e    SourceEntry
		refs int
	}
	sources := make([]ref, 0, len(sink.Sources))
	for _, srcID := range sink.Sources {
		e, ok := s.be.Source(srcID)
		if !ok {
			s.mu.Unlock()
			s.nack(w, fmt.Errorf("sink entry %d references missing source %d", id, srcID))
			return nil
		}
		sources = append(sources, ref{e: e, refs: s.be.RefCount(srcID)})
	}
	s.mu.Unlock()
	w.WriteByte(ackOK)
	w.Write(encodeSinkRecord(sink))
	writeCount(w, len(sources))
	for _, sr := range sources {
		w.Write(encodeSourceRecord(sr.e))
		writeCount(w, sr.refs)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("provstore: server: backward reply: %w", err)
	}
	return nil
}

func (s *Server) replyForward(w *bufio.Writer, id uint64) error {
	s.mu.Lock()
	src, ok := s.be.Source(id)
	if !ok {
		s.mu.Unlock()
		s.nack(w, fmt.Errorf("no source entry %d", id))
		return nil
	}
	ids := s.be.SinksOf(id)
	sinks := make([]SinkEntry, 0, len(ids))
	for _, sinkID := range ids {
		e, ok := s.be.Sink(sinkID)
		if !ok {
			s.mu.Unlock()
			s.nack(w, fmt.Errorf("forward index references missing sink %d", sinkID))
			return nil
		}
		sinks = append(sinks, e)
	}
	s.mu.Unlock()
	w.WriteByte(ackOK)
	w.Write(encodeSourceRecord(src))
	writeCount(w, len(ids))
	writeCount(w, len(sinks))
	for _, e := range sinks {
		w.Write(encodeSinkRecord(e))
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("provstore: server: forward reply: %w", err)
	}
	return nil
}

func (s *Server) replyList(w *bufio.Writer, max int) error {
	s.mu.Lock()
	ids := s.be.SinkIDs(max)
	sinks := make([]SinkEntry, 0, len(ids))
	for _, id := range ids {
		if e, ok := s.be.Sink(id); ok {
			sinks = append(sinks, e)
		}
	}
	s.mu.Unlock()
	w.WriteByte(ackOK)
	writeCount(w, len(sinks))
	for _, e := range sinks {
		w.Write(encodeSinkRecord(e))
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("provstore: server: list reply: %w", err)
	}
	return nil
}

// readU32 reads one little-endian uint32.
func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}
