package provstore

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"genealog/internal/transport"
)

// The remote store protocol: several SPE instances stream their collectors'
// ingestion to one store node, which merges the streams into a single
// backend and answers Backward/Forward/Stats queries live over the same
// kind of link. The record framing is the file log's GLPROV1 framing
// (source/sink/watermark records, see filelog.go) wrapped in batch frames:
//
//	handshake (client → server):  8-byte magic "GLPROVR1" | role byte
//	  role 'I' (ingest):          + horizon i64 (informational)
//	  role 'Q' (query):           nothing more
//	server ack:                   'A' | 'E' + str32 error message
//
//	ingest frames (client → server), each acked 'A'/'E'+str32:
//	  'B' | count u32 | count x record          (record = 'S'/'K'/'W' framing)
//
//	query requests (client → server), each replied 'A'+body / 'E'+str32:
//	  's'                → stats: 12 x u64 (Stats fields in declaration order)
//	  'b' | sink-id u64  → sink record | count u32 | count x (source record | refs u32)
//	  'f' | src-id  u64  → source record | refs u32 | count u32 | count x sink record
//	  'l' | max i64      → count u32 | count x sink record (max < 0 = all)
//
// Appends are batched client-side and flushed — one 'B' frame, one ack —
// when the batch fills, when a watermark is appended (the collector's flush
// cadence) and at Close. The synchronous ack per flushed frame is what makes
// store errors fail the query: the first nack (or broken link) surfaces as
// an error from the Append call that triggered the flush, poisons the
// backend, and the provenance collector propagates it.
//
// Entry IDs are namespaced per instance at the server: every connection's
// source and sink IDs are remapped through per-connection tables onto global
// sequential IDs, so streams from instances that numbered their tuples
// identically (two intra-process runs both counting from 1, two deployments
// both using SPE-instance number 1) merge without collisions, and each
// instance's deduplication — sink records reference previously shipped
// source IDs — carries over to the merged store exactly.
const remoteMagic = "GLPROVR1"

// Protocol roles, frames and acks.
const (
	roleIngest = 'I'
	roleQuery  = 'Q'

	frameBatch = 'B'

	reqStats    = 's'
	reqBackward = 'b'
	reqForward  = 'f'
	reqList     = 'l'

	ackOK  = 'A'
	ackErr = 'E'
)

// maxBatchRecords and maxBatchFrameBytes bound one ingest frame: a corrupt
// count or a stream of maximum-size records must not make the server buffer
// gigabytes before the frame is applied. The client flushes far below both
// bounds (flushEvery records, or flushBatchBytes of encoded records,
// whichever comes first); the server nacks a frame crossing
// maxBatchFrameBytes mid-decode, overshooting by at most one record.
const (
	maxBatchRecords    = 1 << 16
	maxBatchFrameBytes = 1 << 26 // 64 MiB
	flushBatchBytes    = 1 << 24 // 16 MiB: client-side early-flush threshold
)

// DefaultFlushEvery is how many buffered records trigger a client flush when
// no watermark forces one earlier.
const DefaultFlushEvery = 128

// Remote is the client Backend of a store node: every append updates a local
// index mirror (so the owning Store's Backward/Forward/Stats keep working on
// this instance's own contribution) and is streamed to the server in batched,
// acknowledged frames. Wire and server errors are sticky: once a flush fails,
// every later append returns the same error, failing the query.
type Remote struct {
	ix      *index
	horizon int64
	bytes   int64

	conn io.Closer
	w    *bufio.Writer
	r    *bufio.Reader

	batch      bytes.Buffer
	pending    int
	flushEvery int
	err        error
	closed     bool
}

var _ Backend = (*Remote)(nil)

// RemoteOption configures a Remote backend.
type RemoteOption func(*Remote)

// WithFlushEvery sets how many buffered records trigger a flush (and its
// synchronous ack). 1 acks every append — the chaos tests use it to pin down
// exactly what the server holds; the default amortises the round trip.
// Values above the wire frame bound (maxBatchRecords) are capped to it, so a
// frame the server would reject is never produced.
func WithFlushEvery(n int) RemoteOption {
	return func(re *Remote) {
		if n > 0 {
			re.flushEvery = min(n, maxBatchRecords)
		}
	}
}

// NewRemote performs the ingest handshake over an established connection and
// returns the remote backend. The horizon is this instance's retention
// horizon (retention runs client-side, in the owning Store; the server only
// records watermarks).
func NewRemote(conn io.ReadWriteCloser, horizon int64, opts ...RemoteOption) (*Remote, error) {
	re := &Remote{
		ix: newIndex(), horizon: horizon, bytes: int64(len(fileMagic)) + 8,
		conn: conn, w: bufio.NewWriter(conn), r: bufio.NewReader(conn),
		flushEvery: DefaultFlushEvery,
	}
	for _, o := range opts {
		o(re)
	}
	re.w.WriteString(remoteMagic)
	re.w.WriteByte(roleIngest)
	var hz [8]byte
	putU64Buf(hz[:], uint64(horizon))
	re.w.Write(hz[:])
	if err := re.w.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("provstore: remote handshake: %w", err)
	}
	if err := readAck(re.r, "handshake"); err != nil {
		conn.Close()
		return nil, err
	}
	return re, nil
}

// DialRemote connects to the store node at addr (retrying while its listener
// comes up, like the tuple transport does) and performs the ingest handshake.
func DialRemote(ctx context.Context, addr string, horizon int64, opts ...RemoteOption) (*Remote, error) {
	conn, err := transport.DialConn(ctx, addr)
	if err != nil {
		return nil, fmt.Errorf("provstore: %w", err)
	}
	return NewRemote(conn, horizon, opts...)
}

// Connect returns a Store streaming its ingestion to the store node at addr:
// the drop-in remote counterpart of NewMemory/Create for
// query.WithProvenanceStore and harness Options.Store. Deduplication and
// retention run locally (the Store pins live tuples on this instance);
// the store node holds the merged durable entries of every instance.
func Connect(ctx context.Context, addr string, opts Options, ropts ...RemoteOption) (*Store, error) {
	be, err := DialRemote(ctx, addr, opts.Horizon, ropts...)
	if err != nil {
		return nil, err
	}
	return newStore(be, opts.Horizon), nil
}

func putU64Buf(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// readAck consumes one server ack; an 'E' reply carries the server's error.
func readAck(r *bufio.Reader, op string) error {
	b, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("provstore: remote %s: read ack: %w", op, err)
	}
	switch b {
	case ackOK:
		return nil
	case ackErr:
		msg, err := readStr32(r)
		if err != nil {
			return fmt.Errorf("provstore: remote %s: read error reply: %w", op, err)
		}
		return fmt.Errorf("provstore: remote %s: store node: %s", op, msg)
	default:
		return fmt.Errorf("provstore: remote %s: bad ack byte 0x%02x", op, b)
	}
}

// add buffers one encoded record and flushes when the batch is full.
func (re *Remote) add(rec []byte, size int64) error {
	if re.err != nil {
		return re.err
	}
	if re.closed {
		return fmt.Errorf("provstore: remote store is closed")
	}
	re.batch.Write(rec)
	re.pending++
	re.bytes += size
	if re.pending >= re.flushEvery || re.batch.Len() >= flushBatchBytes {
		return re.flush()
	}
	return nil
}

// flush ships the pending batch as one 'B' frame and waits for the ack.
func (re *Remote) flush() error {
	if re.err != nil {
		return re.err
	}
	if re.pending == 0 {
		return nil
	}
	re.w.WriteByte(frameBatch)
	writeU32(re.w, uint32(re.pending))
	re.w.Write(re.batch.Bytes())
	re.batch.Reset()
	re.pending = 0
	if err := re.w.Flush(); err != nil {
		re.err = fmt.Errorf("provstore: remote flush: %w", err)
		return re.err
	}
	if err := readAck(re.r, "ingest"); err != nil {
		re.err = err
		return re.err
	}
	return nil
}

// AppendSource implements Backend.
func (re *Remote) AppendSource(e SourceEntry) error {
	if err := checkEntryLimits("source", e.ID, e.Format, e.Payload); err != nil {
		return err
	}
	if err := re.add(encodeSourceRecord(e), sourceRecordSize(e)); err != nil {
		return err
	}
	re.ix.addSource(e)
	return nil
}

// AppendSink implements Backend.
func (re *Remote) AppendSink(e SinkEntry) error {
	if err := checkEntryLimits("sink", e.ID, e.Format, e.Payload); err != nil {
		return err
	}
	if len(e.Sources) > maxSinkSources {
		return fmt.Errorf("provstore: sink entry %d references %d sources (limit %d)",
			e.ID, len(e.Sources), maxSinkSources)
	}
	if err := re.add(encodeSinkRecord(e), sinkRecordSize(e)); err != nil {
		return err
	}
	re.ix.addSink(e)
	return nil
}

// AppendWatermark implements Backend. Watermarks mark the collector's flush
// cadence, so the batch is shipped (and acked) here.
func (re *Remote) AppendWatermark(ts int64) error {
	if err := re.add(encodeWatermarkRecord(ts), watermarkRecordSize); err != nil {
		return err
	}
	re.ix.addWatermark(ts)
	return re.flush()
}

// Source implements Backend (local mirror).
func (re *Remote) Source(id uint64) (SourceEntry, bool) {
	e, ok := re.ix.sources[id]
	return e, ok
}

// Sink implements Backend (local mirror).
func (re *Remote) Sink(id uint64) (SinkEntry, bool) {
	e, ok := re.ix.sinks[id]
	return e, ok
}

// SourceIDs implements Backend (local mirror).
func (re *Remote) SourceIDs(max int) []uint64 { return headIDs(re.ix.srcOrder, max) }

// SinkIDs implements Backend (local mirror).
func (re *Remote) SinkIDs(max int) []uint64 { return headIDs(re.ix.sinkOrder, max) }

// SourceCount implements Backend (local mirror).
func (re *Remote) SourceCount() int { return len(re.ix.srcOrder) }

// SinkCount implements Backend (local mirror).
func (re *Remote) SinkCount() int { return len(re.ix.sinkOrder) }

// SinksOf implements Backend (local mirror).
func (re *Remote) SinksOf(sourceID uint64) []uint64 {
	return append([]uint64(nil), re.ix.forward[sourceID]...)
}

// RefCount implements Backend (local mirror).
func (re *Remote) RefCount(sourceID uint64) int { return len(re.ix.forward[sourceID]) }

// Watermark implements Backend (local mirror).
func (re *Remote) Watermark() int64 { return re.ix.watermark }

// Horizon implements Backend.
func (re *Remote) Horizon() int64 { return re.horizon }

// Bytes implements Backend: the encoded volume this instance shipped
// (file-log framing, comparable with the other backends).
func (re *Remote) Bytes() int64 { return re.bytes }

// Close flushes the pending batch, waits for its ack and closes the link
// (the server observes a clean EOF). The local mirror keeps answering query
// methods. A flush failure still closes the link and is returned.
func (re *Remote) Close() error {
	if re.closed {
		return nil
	}
	re.closed = true
	err := re.flush()
	if cerr := re.conn.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("provstore: remote close: %w", cerr)
	}
	return err
}

// Client asks a running store node Backward/Forward/Stats/List questions
// over one query connection — cmd/genealog-prov -connect uses it to query a
// live deployment instead of a cold store file. Not safe for concurrent use;
// open one Client per goroutine.
type Client struct {
	conn io.Closer
	w    *bufio.Writer
	r    *bufio.Reader
}

// NewQueryClient performs the query handshake over an established connection.
func NewQueryClient(conn io.ReadWriteCloser) (*Client, error) {
	c := &Client{conn: conn, w: bufio.NewWriter(conn), r: bufio.NewReader(conn)}
	c.w.WriteString(remoteMagic)
	c.w.WriteByte(roleQuery)
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("provstore: query handshake: %w", err)
	}
	if err := readAck(c.r, "handshake"); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// DialQuery connects a query client to the store node at addr.
func DialQuery(ctx context.Context, addr string) (*Client, error) {
	conn, err := transport.DialConn(ctx, addr)
	if err != nil {
		return nil, fmt.Errorf("provstore: %w", err)
	}
	return NewQueryClient(conn)
}

// Close closes the query connection.
func (c *Client) Close() error { return c.conn.Close() }

// request ships one framed request and consumes the reply status.
func (c *Client) request(op string, frame []byte) error {
	c.w.Write(frame)
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("provstore: remote %s: %w", op, err)
	}
	return readAck(c.r, op)
}

func (c *Client) readU32(op string) (uint32, error) {
	v, err := readU32(c.r)
	if err != nil {
		return 0, fmt.Errorf("provstore: remote %s: read count: %w", op, err)
	}
	return v, nil
}

// readSource reads one source record (and, when withRefs, its trailing
// reference count) from a reply.
func (c *Client) readSource(op string, withRefs bool) (SourceEntry, error) {
	rec, _, err := decodeRecord(c.r)
	if err != nil {
		return SourceEntry{}, fmt.Errorf("provstore: remote %s: read source record: %w", op, err)
	}
	if rec.kind != recSource {
		return SourceEntry{}, fmt.Errorf("provstore: remote %s: unexpected record kind 0x%02x (want source)", op, rec.kind)
	}
	e := rec.source
	if withRefs {
		refs, err := c.readU32(op)
		if err != nil {
			return SourceEntry{}, err
		}
		e.Refs = int(refs)
	}
	return e, nil
}

func (c *Client) readSink(op string) (SinkEntry, error) {
	rec, _, err := decodeRecord(c.r)
	if err != nil {
		return SinkEntry{}, fmt.Errorf("provstore: remote %s: read sink record: %w", op, err)
	}
	if rec.kind != recSink {
		return SinkEntry{}, fmt.Errorf("provstore: remote %s: unexpected record kind 0x%02x (want sink)", op, rec.kind)
	}
	return rec.sink, nil
}

// Stats returns the store node's global accounting (every instance's merged
// contribution; LiveSources/PeakLiveSources are zero — live dedup handles
// exist only on the ingesting instances). Instances counts the node's
// ingest connections and MinWatermark is the slowest one's delivered
// watermark — the event time up to which the merged view is complete.
func (c *Client) Stats() (Stats, error) {
	if err := c.request("stats", []byte{reqStats}); err != nil {
		return Stats{}, err
	}
	var vals [12]uint64
	for i := range vals {
		v, err := readU64(c.r)
		if err != nil {
			return Stats{}, fmt.Errorf("provstore: remote stats: %w", err)
		}
		vals[i] = v
	}
	return Stats{
		Sinks: int64(vals[0]), Sources: int64(vals[1]), SourceRefs: int64(vals[2]),
		LiveSources: int64(vals[3]), RetiredSources: int64(vals[4]), PeakLiveSources: int64(vals[5]),
		ReEncoded: int64(vals[6]), Bytes: int64(vals[7]), Watermark: int64(vals[8]), Horizon: int64(vals[9]),
		Instances: int64(vals[10]), MinWatermark: int64(vals[11]),
	}, nil
}

// Backward returns the sink entry with the given global ID and its source
// entries, like Store.Backward but against the store node's merged view.
func (c *Client) Backward(sinkID uint64) (SinkEntry, []SourceEntry, error) {
	frame := make([]byte, 9)
	frame[0] = reqBackward
	putU64Buf(frame[1:], sinkID)
	if err := c.request("backward", frame); err != nil {
		return SinkEntry{}, nil, err
	}
	sink, err := c.readSink("backward")
	if err != nil {
		return SinkEntry{}, nil, err
	}
	n, err := c.readU32("backward")
	if err != nil {
		return SinkEntry{}, nil, err
	}
	sources := make([]SourceEntry, 0, min(int(n), 4096))
	for i := uint32(0); i < n; i++ {
		e, err := c.readSource("backward", true)
		if err != nil {
			return SinkEntry{}, nil, err
		}
		sources = append(sources, e)
	}
	return sink, sources, nil
}

// Forward returns the source entry with the given global ID and every sink
// entry referencing it, like Store.Forward but against the merged view.
func (c *Client) Forward(sourceID uint64) (SourceEntry, []SinkEntry, error) {
	frame := make([]byte, 9)
	frame[0] = reqForward
	putU64Buf(frame[1:], sourceID)
	if err := c.request("forward", frame); err != nil {
		return SourceEntry{}, nil, err
	}
	src, err := c.readSource("forward", true)
	if err != nil {
		return SourceEntry{}, nil, err
	}
	n, err := c.readU32("forward")
	if err != nil {
		return SourceEntry{}, nil, err
	}
	sinks := make([]SinkEntry, 0, min(int(n), 4096))
	for i := uint32(0); i < n; i++ {
		e, err := c.readSink("forward")
		if err != nil {
			return SourceEntry{}, nil, err
		}
		sinks = append(sinks, e)
	}
	return src, sinks, nil
}

// List returns up to max sink entries in global ingestion order (max < 0 =
// all).
func (c *Client) List(max int) ([]SinkEntry, error) {
	frame := make([]byte, 9)
	frame[0] = reqList
	putU64Buf(frame[1:], uint64(int64(max)))
	if err := c.request("list", frame); err != nil {
		return nil, err
	}
	n, err := c.readU32("list")
	if err != nil {
		return nil, err
	}
	sinks := make([]SinkEntry, 0, min(int(n), 4096))
	for i := uint32(0); i < n; i++ {
		e, err := c.readSink("list")
		if err != nil {
			return nil, err
		}
		sinks = append(sinks, e)
	}
	return sinks, nil
}
