package provstore

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzFileLogRoundTrip drives the file-log backend with an arbitrary record
// sequence derived from the fuzz input: every sequence must round-trip
// through encode → append → reopen → index rebuild without loss or panic,
// and the rebuilt index must match the index maintained during the appends.
func FuzzFileLogRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte("source sink watermark source source"))
	seed := make([]byte, 0, 96)
	for i := 0; i < 96; i++ {
		seed = append(seed, byte(i*7))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.glprov")
		horizon := int64(0)
		if len(data) > 0 {
			horizon = int64(data[0])
		}
		fl, err := CreateFileLog(path, horizon)
		if err != nil {
			t.Fatal(err)
		}

		// Interpret the input as a stream of operations. Strings draw from
		// the remaining bytes so payloads of many lengths (including empty
		// and non-UTF-8) hit the framing.
		in := bytes.NewReader(data)
		nextByte := func() byte {
			b, err := in.ReadByte()
			if err != nil {
				return 0
			}
			return b
		}
		nextU64 := func() uint64 {
			var b [8]byte
			n, _ := in.Read(b[:])
			_ = n
			return binary.LittleEndian.Uint64(b[:])
		}
		nextString := func() string {
			n := int(nextByte())
			buf := make([]byte, n)
			m, _ := in.Read(buf)
			return string(buf[:m])
		}

		for in.Len() > 0 {
			switch nextByte() % 3 {
			case 0:
				e := SourceEntry{
					ID: nextU64(), Ts: int64(nextU64()),
					Format: nextString(), Payload: nextString(),
				}
				if err := fl.AppendSource(e); err != nil {
					t.Fatalf("AppendSource(%+v): %v", e, err)
				}
			case 1:
				e := SinkEntry{
					ID: nextU64(), Ts: int64(nextU64()),
					Format: nextString(), Payload: nextString(),
				}
				for n := int(nextByte()) % 8; n > 0; n-- {
					e.Sources = append(e.Sources, nextU64())
				}
				if err := fl.AppendSink(e); err != nil {
					t.Fatalf("AppendSink(%+v): %v", e, err)
				}
			case 2:
				if err := fl.AppendWatermark(int64(nextU64())); err != nil {
					t.Fatalf("AppendWatermark: %v", err)
				}
			}
		}
		if err := fl.Close(); err != nil {
			t.Fatal(err)
		}

		ro, err := OpenFileLog(path)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if !reflect.DeepEqual(fl.ix.sources, ro.ix.sources) {
			t.Fatalf("rebuilt source index differs:\nwritten: %v\nrebuilt: %v", fl.ix.sources, ro.ix.sources)
		}
		if !reflect.DeepEqual(fl.ix.sinks, ro.ix.sinks) {
			t.Fatalf("rebuilt sink index differs:\nwritten: %v\nrebuilt: %v", fl.ix.sinks, ro.ix.sinks)
		}
		if !reflect.DeepEqual(fl.ix.srcOrder, ro.ix.srcOrder) || !reflect.DeepEqual(fl.ix.sinkOrder, ro.ix.sinkOrder) {
			t.Fatal("rebuilt append order differs")
		}
		if !reflect.DeepEqual(fl.ix.forward, ro.ix.forward) {
			t.Fatalf("rebuilt forward index differs:\nwritten: %v\nrebuilt: %v", fl.ix.forward, ro.ix.forward)
		}
		if fl.ix.watermark != ro.ix.watermark {
			t.Fatalf("watermark: written %d, rebuilt %d", fl.ix.watermark, ro.ix.watermark)
		}
		if fl.Bytes() != ro.Bytes() {
			t.Fatalf("bytes: written %d, rebuilt %d", fl.Bytes(), ro.Bytes())
		}
	})
}
