package provstore

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"

	"genealog/internal/core"
	"genealog/internal/csvio"
)

// Options configures a Store.
type Options struct {
	// Horizon is the retention horizon in event-time units: a source entry's
	// dedup handle is retired once the watermark passes the entry's timestamp
	// plus Horizon. Choose it to cover every stateful window that could still
	// produce a sink tuple referencing the source — for the evaluation
	// queries, twice the sum of the query's window sizes is comfortably safe
	// (the harness sets this per query). 0 retires a source as soon as the
	// watermark passes its timestamp, which is only correct for windowless
	// queries.
	Horizon int64
}

// Stats is a snapshot of the store's accounting.
type Stats struct {
	// Sinks and Sources count stored entries; SourceRefs counts source
	// references across all sink entries. Sources < SourceRefs means
	// deduplication saved encodings.
	Sinks      int64
	Sources    int64
	SourceRefs int64
	// LiveSources is the current number of un-retired dedup handles (each
	// pins its tuple in memory); RetiredSources counts handles the watermark
	// retired; PeakLiveSources is the high-water mark — the store's bounded
	// working set.
	LiveSources     int64
	RetiredSources  int64
	PeakLiveSources int64
	// ReEncoded warns that the retention horizon was violated: it counts
	// meta-ID-less source tuples first stored after the watermark had
	// already passed their timestamp plus the horizon — each is either a
	// true duplicate (its earlier handle was retired, so object identity
	// cannot recognise it) or a straggler the horizon failed to cover.
	// A correctly sized Horizon keeps it zero.
	ReEncoded int64
	// Bytes is the encoded store volume; Watermark and Horizon describe
	// retention progress.
	Bytes     int64
	Watermark int64
	Horizon   int64
	// Instances counts the SPE instances that have ingested into the store:
	// 1 for a local store, the number of distinct ingest connections for a
	// store node. MinWatermark is the slowest instance's delivered
	// watermark — the event time up to which EVERY instance's provenance has
	// arrived, and hence how far a global traversal can trust the merged
	// view. A local store's MinWatermark equals Watermark.
	Instances    int64
	MinWatermark int64
}

// DedupRatio returns source references per stored source entry (1.0 = no
// sharing; Q2's 2.0 means every position report served two alerts).
func (s Stats) DedupRatio() float64 {
	if s.Sources == 0 {
		return 0
	}
	return float64(s.SourceRefs) / float64(s.Sources)
}

// Store ingests assembled provenance (a delivered sink tuple plus its
// originating tuples) and serves forward/backward queries over it. It is
// safe for concurrent use.
type Store struct {
	mu sync.Mutex
	be Backend

	horizon int64
	live    map[any]liveRef // dedup key -> stored entry
	retireQ retireHeap      // live keys ordered by event time
	// Store-assigned IDs for tuples without meta-IDs. Sink and source
	// entries are separate namespaces (Backward takes a sink ID, Forward a
	// source ID), so each numbers from 1 in ingestion order — sink entry 1
	// is the first delivered result, which CLI walkthroughs rely on.
	nextSinkID   uint64
	nextSourceID uint64

	refs     int64
	retired  int64
	peakLive int64
	reenc    int64
	wm       int64
	wmLogged int64
	closed   bool
}

type liveRef struct {
	id uint64
	ts int64
}

type retireEntry struct {
	ts  int64
	key any
}

type retireHeap []retireEntry

func (h retireHeap) Len() int           { return len(h) }
func (h retireHeap) Less(i, j int) bool { return h[i].ts < h[j].ts }
func (h retireHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *retireHeap) Push(x any)        { *h = append(*h, x.(retireEntry)) }
func (h *retireHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// NewMemory returns a store over the in-memory backend.
func NewMemory(opts Options) *Store {
	return newStore(NewMemoryBackend(opts.Horizon), opts.Horizon)
}

// Create returns a store over a fresh append-only file log at path
// (truncating any existing file).
func Create(path string, opts Options) (*Store, error) {
	be, err := CreateFileLog(path, opts.Horizon)
	if err != nil {
		return nil, err
	}
	return newStore(be, opts.Horizon), nil
}

// OpenRead opens an existing file-log store for querying: the ID index is
// rebuilt by scanning the log. Ingest and Advance fail on a read-only store.
func OpenRead(path string) (*Store, error) {
	be, err := OpenFileLog(path)
	if err != nil {
		return nil, err
	}
	s := newStore(be, be.Horizon())
	s.wm = be.Watermark()
	// Recompute the reference count from the forward index; dedup state is
	// not needed (nothing will be ingested).
	for _, id := range be.SourceIDs(-1) {
		s.refs += int64(be.RefCount(id))
	}
	s.retired = int64(be.SourceCount())
	s.closed = true // read-only: Ingest/Advance rejected, queries served
	return s, nil
}

func newStore(be Backend, horizon int64) *Store {
	return &Store{be: be, horizon: horizon, live: make(map[any]liveRef)}
}

// dedupKey identifies a source tuple across ingests: its meta-ID when the
// run assigned one (inter-process, BL), the tuple's object identity
// otherwise (intra-process GL, where contribution graphs share the very
// source tuple objects).
func dedupKey(t core.Tuple) any {
	if m := core.MetaOf(t); m != nil && m.ID() != 0 {
		return m.ID()
	}
	return t
}

// encodePayload renders a tuple through its registered csvio format. Tuples
// of unregistered types are stored with an empty format name and a
// best-effort rendering, so a store never loses the shape of a result —
// only re-parsing needs the registration. A registered format's encoder
// failing is a real error: it must fail the ingest (and with it the query),
// not silently degrade the record to the fallback rendering.
func encodePayload(t core.Tuple) (format, payload string, err error) {
	f, ok := csvio.FormatOf(t)
	if !ok {
		return "", fmt.Sprintf("%T@%d", t, t.Timestamp()), nil
	}
	fields, err := f.Format(t)
	if err != nil {
		return "", "", fmt.Errorf("provstore: encode %T: %w", t, err)
	}
	return f.Name, csvio.JoinFields(fields), nil
}

// Ingest stores one delivered sink tuple and its originating tuples and
// returns the sink entry's ID. Sources already stored (same meta-ID or same
// object) are referenced, not re-encoded. The sink tuple's timestamp
// advances the retention watermark: sink tuples arrive in watermark order
// from the provenance collector.
func (s *Store) Ingest(sink core.Tuple, sources []core.Tuple) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("provstore: store is closed")
	}

	srcIDs := make([]uint64, 0, len(sources))
	for _, src := range sources {
		id, err := s.ingestSourceLocked(src)
		if err != nil {
			return 0, err
		}
		srcIDs = append(srcIDs, id)
	}

	sinkID := s.entryID(sink, &s.nextSinkID)
	format, payload, err := encodePayload(sink)
	if err != nil {
		return 0, err
	}
	e := SinkEntry{ID: sinkID, Ts: sink.Timestamp(), Format: format, Payload: payload, Sources: srcIDs}
	if err := s.be.AppendSink(e); err != nil {
		return 0, err
	}
	if err := s.advanceLocked(sink.Timestamp()); err != nil {
		return 0, err
	}
	return sinkID, nil
}

// ingestSourceLocked stores (or re-references) one originating tuple and
// returns its entry ID.
func (s *Store) ingestSourceLocked(src core.Tuple) (uint64, error) {
	key := dedupKey(src)
	if h, ok := s.live[key]; ok {
		s.refs++
		return h.id, nil
	}
	// A meta-ID identifies the tuple even after its dedup handle was
	// retired: reference the durable entry instead of re-encoding.
	if id, ok := key.(uint64); ok {
		if _, stored := s.be.Source(id); stored {
			s.refs++
			return id, nil
		}
	}
	id := s.entryID(src, &s.nextSourceID)
	format, payload, err := encodePayload(src)
	if err != nil {
		return 0, err
	}
	e := SourceEntry{ID: id, Ts: src.Timestamp(), Format: format, Payload: payload}
	if err := s.be.AppendSource(e); err != nil {
		return 0, err
	}
	if s.retired > 0 {
		// Object identity cannot recognise a tuple whose handle was already
		// retired; count possible duplicates for visibility. (With a meta-ID
		// the branch above catches this case exactly.)
		if _, isID := key.(uint64); !isID && src.Timestamp()+s.horizon <= s.wm {
			s.reenc++
		}
	}
	s.live[key] = liveRef{id: id, ts: src.Timestamp()}
	heap.Push(&s.retireQ, retireEntry{ts: src.Timestamp(), key: key})
	if n := int64(len(s.live)); n > s.peakLive {
		s.peakLive = n
	}
	s.refs++
	return id, nil
}

// entryID picks the durable ID for a tuple: its meta-ID when assigned,
// otherwise the next store-assigned sequential ID from ctr. Store-assigned
// IDs stay below 1<<48; core.IDGen's meta-IDs carry the SPE instance number
// in the top 16 bits and therefore sit above — the ranges cannot collide.
func (s *Store) entryID(t core.Tuple, ctr *uint64) uint64 {
	if m := core.MetaOf(t); m != nil && m.ID() != 0 {
		return m.ID()
	}
	*ctr++
	return *ctr
}

// Advance raises the retention watermark to ts (watermarks from the query —
// sink timestamps and heartbeats — are monotone per stream; lower values are
// ignored) and retires every live source entry whose timestamp plus the
// horizon the watermark has passed.
func (s *Store) Advance(watermark int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	_ = s.advanceLocked(watermark) // retention bookkeeping; nothing to surface
}

func (s *Store) advanceLocked(watermark int64) error {
	if watermark <= s.wm {
		return nil
	}
	s.wm = watermark
	retiredNow := false
	for s.retireQ.Len() > 0 {
		head := s.retireQ[0]
		if head.ts > s.wm-s.horizon && s.wm != maxEventTime {
			break
		}
		heap.Pop(&s.retireQ)
		// The handle may have been replaced (re-encode after retirement);
		// only retire the entry this heap node belongs to.
		if h, ok := s.live[head.key]; ok && h.ts == head.ts {
			delete(s.live, head.key)
			s.retired++
			retiredNow = true
		}
	}
	if retiredNow && s.wm > s.wmLogged && s.wm != maxEventTime {
		s.wmLogged = s.wm
		return s.be.AppendWatermark(s.wm)
	}
	return nil
}

// Close retires every remaining live entry (end of stream: no window can
// reference them any more), persists the final watermark and closes the
// backend. Queries keep working on the in-memory index after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.be.Close()
	}
	final := s.wm
	_ = s.advanceLocked(maxEventTime)
	s.wm = final // keep the observed event-time watermark for Stats
	s.closed = true
	var err error
	if final > s.wmLogged {
		err = s.be.AppendWatermark(final)
	}
	if cerr := s.be.Close(); err == nil {
		err = cerr
	}
	return err
}

// Backward returns the sink entry with the given ID and its originating
// source entries, in traversal order — "which source readings caused alert
// X?".
func (s *Store) Backward(sinkID uint64) (SinkEntry, []SourceEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sink, ok := s.be.Sink(sinkID)
	if !ok {
		return SinkEntry{}, nil, fmt.Errorf("provstore: no sink entry %d", sinkID)
	}
	sources := make([]SourceEntry, 0, len(sink.Sources))
	for _, id := range sink.Sources {
		e, ok := s.be.Source(id)
		if !ok {
			return SinkEntry{}, nil, fmt.Errorf("provstore: sink entry %d references missing source %d", sinkID, id)
		}
		e.Refs = s.be.RefCount(id)
		sources = append(sources, e)
	}
	return sink, sources, nil
}

// Forward returns the source entry with the given ID and every sink entry
// referencing it, in append order — "which alerts did meter reading Y
// contribute to?".
func (s *Store) Forward(sourceID uint64) (SourceEntry, []SinkEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src, ok := s.be.Source(sourceID)
	if !ok {
		return SourceEntry{}, nil, fmt.Errorf("provstore: no source entry %d", sourceID)
	}
	ids := s.be.SinksOf(sourceID)
	src.Refs = len(ids)
	sinks := make([]SinkEntry, 0, len(ids))
	for _, id := range ids {
		e, ok := s.be.Sink(id)
		if !ok {
			return SourceEntry{}, nil, fmt.Errorf("provstore: forward index references missing sink %d", id)
		}
		sinks = append(sinks, e)
	}
	return src, sinks, nil
}

// SinkIDs lists the stored sink entries in ingestion order.
func (s *Store) SinkIDs() []uint64 { return s.HeadSinkIDs(-1) }

// HeadSinkIDs lists up to n of the stored sink entries' IDs in ingestion
// order (all of them when n < 0), without copying the rest.
func (s *Store) HeadSinkIDs(n int) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.be.SinkIDs(n)
}

// Sink returns the sink entry with the given ID without materialising its
// contribution set (use Backward for that).
func (s *Store) Sink(sinkID uint64) (SinkEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sink, ok := s.be.Sink(sinkID)
	if !ok {
		return SinkEntry{}, fmt.Errorf("provstore: no sink entry %d", sinkID)
	}
	return sink, nil
}

// SourceIDs lists the stored source entries in ingestion order.
func (s *Store) SourceIDs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.be.SourceIDs(-1)
}

// Stats returns a snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Sinks:           int64(s.be.SinkCount()),
		Sources:         int64(s.be.SourceCount()),
		SourceRefs:      s.refs,
		LiveSources:     int64(len(s.live)),
		RetiredSources:  s.retired,
		PeakLiveSources: s.peakLive,
		ReEncoded:       s.reenc,
		Bytes:           s.be.Bytes(),
		Watermark:       s.wm,
		Horizon:         s.horizon,
		Instances:       1,
		MinWatermark:    s.wm,
	}
}
