package query

import (
	"fmt"
	"strings"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// This file is the physical query planner: after the builder's DAG
// validation and before streams and operators are materialised, the logical
// graph is rewritten into a physical plan. Two passes run when fusion is
// enabled (the default):
//
//  1. Fusion — maximal linear chains of stateless nodes (Map, Filter, and
//     pass-through Multiplex/Union) collapse into one ops.FusedChain that
//     applies the stages by direct function calls in a single goroutine,
//     eliminating the per-hop stream and goroutine the unfused chain pays.
//     Instrumenter hooks still fire once per logical stage, so contribution
//     graphs and sink bytes are identical to the unfused plan.
//
//  2. Parallel prefix replication — a stateless chain feeding a Parallel(n)
//     Aggregate or Join is absorbed into the shard subgraph: the partitioner
//     hoists upstream of the chain and a fused replica of the chain runs in
//     every shard lane, so the whole pipeline scales across cores instead of
//     only the stateful stage. Hoisting routes the pre-prefix tuples with
//     the stateful operator's own key when every chain stage forwards the
//     tuple object (no Map in the chain); a chain containing a Map is only
//     hoisted when its first node declares Node.ShardKey.
//
// With fusion disabled every logical node materialises as its own operator,
// the pre-planner behaviour.

// physKind classifies a physical plan node.
type physKind uint8

const (
	// physSingle materialises one logical node as one operator.
	physSingle physKind = iota + 1
	// physFused materialises a stateless chain as one ops.FusedChain.
	physFused
	// physShard materialises a Parallel(n) stateful node as its shard
	// subgraph (partitioner(s), lanes, fan-in), absorbing hoisted prefixes.
	physShard
)

// physNode is one vertex of the physical plan; it owns one or more logical
// nodes.
type physNode struct {
	kind  physKind
	node  *Node   // the logical node (single/shard); the chain head (fused)
	chain []*Node // fused: the stage nodes, upstream first

	// shard only: hoisted prefix chains by input port (PortDefault for
	// aggregates, PortLeft/PortRight for joins).
	prefix map[string][]*Node
}

// name returns the physical node's display name (stream names, plan dumps).
func (p *physNode) name() string {
	if p.kind != physFused {
		return p.node.name
	}
	names := make([]string, len(p.chain))
	for i, n := range p.chain {
		names[i] = n.name
	}
	return "fused[" + strings.Join(names, "+") + "]"
}

// physEdge is one stream of the physical plan.
type physEdge struct {
	from, to *physNode
	port     string
}

// physPlan is the rewritten graph Build materialises.
type physPlan struct {
	nodes []*physNode
	edges []physEdge
	owner map[*Node]*physNode

	fusedChains     int // standalone FusedChain operators
	hoistedPrefixes int // chains replicated into shard lanes
}

// plan rewrites the validated logical graph into a physical plan.
func (b *Builder) plan() *physPlan {
	pl := &physPlan{owner: make(map[*Node]*physNode, len(b.nodes))}
	inE := make(map[*Node][]edge, len(b.nodes))
	outE := make(map[*Node][]edge, len(b.nodes))
	for _, e := range b.edges {
		inE[e.to] = append(inE[e.to], e)
		outE[e.from] = append(outE[e.from], e)
	}

	var chains [][]*Node
	chainByTail := make(map[*Node][]*Node)
	if b.fusion {
		chains = b.findChains(inE, outE)
		for _, c := range chains {
			chainByTail[c[len(c)-1]] = c
		}
	}

	// Pass 2: absorb chains feeding shard-parallel stateful nodes.
	absorbed := make(map[*Node]*physNode)   // chain member -> shard node
	absorbedPort := make(map[*Node]string)  // chain head -> shard input port
	shardNodes := make(map[*Node]*physNode) // stateful node -> its phys node
	for _, n := range b.nodes {
		if n.Parallelism <= 1 {
			continue
		}
		pn := &physNode{kind: physShard, node: n, prefix: make(map[string][]*Node)}
		shardNodes[n] = pn
		if !b.fusion {
			continue
		}
		for _, e := range inE[n] {
			c := chainByTail[e.from]
			if c == nil {
				continue
			}
			port, ok := hoistPort(n, e.port, c)
			if !ok {
				continue
			}
			if _, dup := pn.prefix[port]; dup {
				continue // one prefix per input port
			}
			pn.prefix[port] = c
			pl.hoistedPrefixes++
			for _, m := range c {
				absorbed[m] = pn
			}
			absorbedPort[c[0]] = port
			delete(chainByTail, e.from)
		}
	}

	// Assign every logical node to its physical node, in b.nodes order.
	fusedByHead := make(map[*Node][]*Node)
	inChain := make(map[*Node]bool)
	for _, c := range chainByTail {
		if len(c) < 2 {
			continue // a lone stateless node gains nothing from fusing
		}
		fusedByHead[c[0]] = c
		for _, m := range c {
			inChain[m] = true
		}
		pl.fusedChains++
	}
	for _, n := range b.nodes {
		if pn := absorbed[n]; pn != nil {
			pl.owner[n] = pn
			continue
		}
		if pn := shardNodes[n]; pn != nil {
			pl.owner[n] = pn
			pl.nodes = append(pl.nodes, pn)
			continue
		}
		if c := fusedByHead[n]; c != nil {
			pn := &physNode{kind: physFused, node: n, chain: c}
			for _, m := range c {
				pl.owner[m] = pn
			}
			pl.nodes = append(pl.nodes, pn)
			continue
		}
		if inChain[n] {
			continue // owned by the chain rooted at its head
		}
		pn := &physNode{kind: physSingle, node: n}
		pl.owner[n] = pn
		pl.nodes = append(pl.nodes, pn)
	}

	// Physical edges: logical edges between distinct physical nodes. An edge
	// into an absorbed chain head feeds the shard subgraph directly and takes
	// over the chain's original input port on the stateful node.
	for _, e := range b.edges {
		from, to := pl.owner[e.from], pl.owner[e.to]
		if from == to {
			continue // fused away or internal to a shard subgraph
		}
		port := e.port
		if p, ok := absorbedPort[e.to]; ok {
			port = p
		}
		pl.edges = append(pl.edges, physEdge{from: from, to: to, port: port})
	}
	return pl
}

// fusible reports whether a logical node can be a fused chain stage: a
// stateless per-tuple operator with exactly one default-port input and one
// output.
func fusible(n *Node, inE, outE map[*Node][]edge) bool {
	if n.Parallelism > 1 {
		return false
	}
	switch n.kind {
	case KindMap, KindFilter:
	case KindMultiplex:
		// A multi-branch Multiplex duplicates the stream; only the
		// single-branch (pass-through) case is linear.
	case KindUnion:
		// A multi-input Union merges streams; only the single-input
		// (pass-through) case is linear.
	default:
		return false
	}
	return len(inE[n]) == 1 && len(outE[n]) == 1 && inE[n][0].port == PortDefault
}

// findChains returns the maximal linear chains of fusible nodes, upstream
// first. Chains of length one are returned too: they fuse with nothing but
// may still hoist into a shard subgraph.
func (b *Builder) findChains(inE, outE map[*Node][]edge) [][]*Node {
	linked := func(a, c *Node) bool { // a's only output feeds c's only input
		return outE[a][0].to == c && outE[a][0].port == PortDefault
	}
	var chains [][]*Node
	for _, n := range b.nodes {
		if !fusible(n, inE, outE) {
			continue
		}
		if pred := inE[n][0].from; fusible(pred, inE, outE) && linked(pred, n) {
			continue // not a chain head
		}
		c := []*Node{n}
		for cur := n; ; {
			next := outE[cur][0].to
			if !fusible(next, inE, outE) || !linked(cur, next) {
				break
			}
			c = append(c, next)
			cur = next
		}
		chains = append(chains, c)
	}
	return chains
}

// hoistPort decides whether a chain feeding shard-parallel stateful node n
// on edge port eport may hoist, and onto which shard input port.
func hoistPort(n *Node, eport string, c []*Node) (port string, ok bool) {
	var specKey func(core.Tuple) string
	switch n.kind {
	case KindAggregate:
		if eport != PortDefault {
			return "", false
		}
		port, specKey = PortDefault, n.aggSpec.Key
	case KindJoin:
		switch eport {
		case PortLeft:
			port, specKey = PortLeft, n.joinSpec.LeftKey
		case PortRight:
			port, specKey = PortRight, n.joinSpec.RightKey
		default:
			return "", false
		}
	default:
		return "", false
	}
	if specKey == nil {
		return "", false // unkeyed: not shardable, Build will reject it
	}
	if c[0].ShardKey != nil {
		// The head declares the partition key of its own input stream: the
		// partitioner can route by it whatever the chain contains.
		return port, true
	}
	for _, m := range c {
		if m.kind == KindMap {
			// A Map creates new tuples the stateful key function may not
			// apply to; without a declared head key the partitioner cannot
			// move above it.
			return "", false
		}
	}
	// Filter and pass-through stages forward the tuple object (or a
	// payload-identical clone), so the stateful operator's key applies
	// unchanged to the pre-prefix stream.
	return port, true
}

// stageFor translates a logical chain node into its fused stage.
func stageFor(n *Node) ops.FusedStage {
	switch n.kind {
	case KindMap:
		return ops.FusedStage{Name: n.name, Kind: ops.StageMap, Map: n.mapFn}
	case KindFilter:
		return ops.FusedStage{Name: n.name, Kind: ops.StageFilter, Pred: n.pred}
	case KindMultiplex:
		return ops.FusedStage{Name: n.name, Kind: ops.StageMultiplex}
	case KindUnion:
		return ops.FusedStage{Name: n.name, Kind: ops.StagePass}
	default:
		panic(fmt.Sprintf("planner: node %q (%s) is not a fusible stage", n.name, n.kind))
	}
}

// stagesFor translates a chain into its fused stage list.
func stagesFor(c []*Node) []ops.FusedStage {
	stages := make([]ops.FusedStage, len(c))
	for i, n := range c {
		stages[i] = stageFor(n)
	}
	return stages
}

// shardPrefixFor builds the ops.ShardPrefix for one hoisted chain (nil when
// the port has none).
func (p *physNode) shardPrefixFor(port string) *ops.ShardPrefix {
	c := p.prefix[port]
	if c == nil {
		return nil
	}
	names := make([]string, len(c))
	for i, n := range c {
		names[i] = n.name
	}
	// ops defaults the partitioner's routing key to the stateful spec's own
	// key; only a head-declared ShardKey needs passing down explicitly.
	return &ops.ShardPrefix{
		Name:   strings.Join(names, "+"),
		Stages: stagesFor(c),
		Key:    c[0].ShardKey,
	}
}

// render formats the physical plan as the Query.Explain dump.
func (pl *physPlan) render(queryName string, fusion bool) string {
	var sb strings.Builder
	state := "on"
	if !fusion {
		state = "off"
	}
	fmt.Fprintf(&sb, "physical plan %q (fusion %s, %d operator groups)\n", queryName, state, len(pl.nodes))
	width := 0
	for _, pn := range pl.nodes {
		if n := len(pn.name()); n > width {
			width = n
		}
	}
	for _, pn := range pl.nodes {
		fmt.Fprintf(&sb, "  %-*s  %s\n", width, pn.name(), pn.describe())
	}
	return sb.String()
}

// describe renders one physical node's right-hand plan column.
func (p *physNode) describe() string {
	switch p.kind {
	case physFused:
		parts := make([]string, len(p.chain))
		for i, n := range p.chain {
			parts[i] = fmt.Sprintf("%s %s", n.kind, n.name)
		}
		return "fused chain: " + strings.Join(parts, " => ")
	case physShard:
		n := p.node
		if len(p.prefix) == 0 {
			return fmt.Sprintf("%s x%d: partition -> %d instances -> merge", n.kind, n.Parallelism, n.Parallelism)
		}
		var hoists []string
		for _, port := range []string{PortDefault, PortLeft, PortRight} {
			c, ok := p.prefix[port]
			if !ok {
				continue
			}
			names := make([]string, len(c))
			for i, m := range c {
				names[i] = m.name
			}
			label := strings.Join(names, "+")
			if port != PortDefault {
				label = port + ": " + label
			}
			hoists = append(hoists, label)
		}
		return fmt.Sprintf("%s x%d: partition(hoisted above %s) -> %d x (prefix => %s) -> merge",
			n.kind, n.Parallelism, strings.Join(hoists, "; "), n.Parallelism, n.name)
	default:
		return p.node.kind.String()
	}
}
