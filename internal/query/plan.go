package query

import (
	"fmt"
	"strings"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// This file is the physical query planner: after the builder's DAG
// validation and before streams and operators are materialised, the logical
// graph is rewritten into a physical plan. Three passes run when fusion is
// enabled (the default):
//
//  1. Fusion — maximal linear chains of stateless nodes (Map, Filter, and
//     pass-through Multiplex/Union) collapse into one ops.FusedChain that
//     applies the stages by direct function calls in a single goroutine,
//     eliminating the per-hop stream and goroutine the unfused chain pays.
//     Instrumenter hooks still fire once per logical stage, so contribution
//     graphs and sink bytes are identical to the unfused plan.
//
//  2. Parallel prefix/suffix absorption — a stateless chain feeding a
//     Parallel(n) Aggregate or Join is absorbed into the shard subgraph: the
//     partitioner hoists upstream of the chain and each lane's stateful
//     instance runs the chain's stages inline in its own input loop, so the
//     prefix work scales across cores instead of serialising on one
//     goroutine. Hoisting routes the pre-prefix tuples with the stateful
//     operator's own key when every chain stage forwards the tuple object
//     (no Map in the chain); a chain containing a Map is only hoisted onto
//     an aggregate whose first node declares Node.ShardKey, and never onto a
//     join (a lane join merges the pre-prefix streams by timestamp, so its
//     prefixes must preserve timestamps). Symmetrically, the stateless chain
//     consuming a shard subgraph's output is folded into its fan-in, running
//     inline in the merge loop.
//
//  3. Vectorization — physical segments whose every stage declares a
//     kernel-capable ColSpec (Filter/Map kernels plus a schema) execute as
//     ops.ColChain operators over struct-of-arrays column batches instead of
//     tuple-at-a-time closures; stateful nodes with a declared AggColSpec or
//     JoinColSpec execute as ColAggregate/ColJoin — columnar window state
//     with typed fold/probe kernels — serially or inside every shard lane,
//     where an aggregate's hoisted prefix joins the columnar span when it is
//     itself fully kernel-capable; and partitioners whose routing key has a
//     declared Key kernel extract batch routing keys vectorized. This pass
//     runs whenever WithVectorize is on — also with fusion off, where lone
//     declared operators still vectorize individually.
//
// With fusion disabled every logical node materialises as its own operator,
// the pre-planner behaviour; with vectorization disabled every segment keeps
// the row path. All passes are purely physical: sink bytes and contribution
// graphs never change.

// physKind classifies a physical plan node.
type physKind uint8

const (
	// physSingle materialises one logical node as one operator.
	physSingle physKind = iota + 1
	// physFused materialises a stateless chain as one ops.FusedChain.
	physFused
	// physShard materialises a Parallel(n) stateful node as its shard
	// subgraph (partitioner(s), lanes, fan-in), absorbing hoisted prefixes.
	physShard
)

// physNode is one vertex of the physical plan; it owns one or more logical
// nodes.
type physNode struct {
	kind  physKind
	node  *Node   // the logical node (single/shard); the chain head (fused)
	chain []*Node // fused: the stage nodes, upstream first

	// vec marks a segment selected for the columnar runtime (pass 3): a
	// fused chain, a single declared stateless node, or a stateful node
	// (serial or sharded) with a declared fold/probe spec.
	vec bool

	// shard only: hoisted prefix chains by input port (PortDefault for
	// aggregates, PortLeft/PortRight for joins), and the stateless suffix
	// chain folded into the fan-in.
	prefix map[string][]*Node
	suffix []*Node
}

// name returns the physical node's display name (stream names, plan dumps).
func (p *physNode) name() string {
	if p.kind != physFused {
		return p.node.name
	}
	names := make([]string, len(p.chain))
	for i, n := range p.chain {
		names[i] = n.name
	}
	if p.vec {
		return "vec[" + strings.Join(names, "+") + "]"
	}
	return "fused[" + strings.Join(names, "+") + "]"
}

// stageNodes returns the logical nodes a vectorized segment executes: the
// chain (fused) or the lone node (single).
func (p *physNode) stageNodes() []*Node {
	if p.kind == physFused {
		return p.chain
	}
	return []*Node{p.node}
}

// physEdge is one stream of the physical plan.
type physEdge struct {
	from, to *physNode
	port     string
}

// physPlan is the rewritten graph Build materialises.
type physPlan struct {
	nodes []*physNode
	edges []physEdge
	owner map[*Node]*physNode

	fusedChains        int // standalone FusedChain operators
	hoistedPrefixes    int // chains replicated into shard lanes
	fusedSuffixes      int // chains folded into shard fan-ins
	vectorizedSegments int // segments selected for the columnar runtime
	vectorizedStateful int // of which stateful (ColAggregate/ColJoin state)
}

// plan rewrites the validated logical graph into a physical plan.
func (b *Builder) plan() *physPlan {
	pl := &physPlan{owner: make(map[*Node]*physNode, len(b.nodes))}
	inE := make(map[*Node][]edge, len(b.nodes))
	outE := make(map[*Node][]edge, len(b.nodes))
	for _, e := range b.edges {
		inE[e.to] = append(inE[e.to], e)
		outE[e.from] = append(outE[e.from], e)
	}

	var chains [][]*Node
	chainByTail := make(map[*Node][]*Node)
	if b.fusion {
		chains = b.findChains(inE, outE)
		for _, c := range chains {
			chainByTail[c[len(c)-1]] = c
		}
	}

	// Pass 2: absorb chains feeding shard-parallel stateful nodes.
	absorbed := make(map[*Node]*physNode)   // chain member -> shard node
	absorbedPort := make(map[*Node]string)  // chain head -> shard input port
	shardNodes := make(map[*Node]*physNode) // stateful node -> its phys node
	for _, n := range b.nodes {
		if n.Parallelism <= 1 {
			continue
		}
		pn := &physNode{kind: physShard, node: n, prefix: make(map[string][]*Node)}
		shardNodes[n] = pn
		if !b.fusion {
			continue
		}
		for _, e := range inE[n] {
			c := chainByTail[e.from]
			if c == nil {
				continue
			}
			port, ok := hoistPort(n, e.port, c)
			if !ok {
				continue
			}
			if _, dup := pn.prefix[port]; dup {
				continue // one prefix per input port
			}
			pn.prefix[port] = c
			pl.hoistedPrefixes++
			for _, m := range c {
				absorbed[m] = pn
			}
			absorbedPort[c[0]] = port
			delete(chainByTail, e.from)
		}
	}

	// Pass 2.5: fold the stateless chain consuming a shard subgraph's output
	// into its fan-in. Prefix absorption ran first and wins — a chain between
	// two shard-parallel stateful nodes hoists into the downstream one's
	// lanes (where it parallelises) rather than fusing into the upstream
	// fan-in (where it would serialise).
	if b.fusion {
		chainByHead := make(map[*Node][]*Node, len(chainByTail))
		for _, c := range chainByTail {
			chainByHead[c[0]] = c
		}
		for _, n := range b.nodes {
			pn := shardNodes[n]
			if pn == nil || len(outE[n]) != 1 {
				continue
			}
			e := outE[n][0]
			if e.port != PortDefault {
				continue
			}
			c := chainByHead[e.to]
			if c == nil {
				continue
			}
			pn.suffix = c
			pl.fusedSuffixes++
			for _, m := range c {
				absorbed[m] = pn
			}
			delete(chainByTail, c[len(c)-1])
		}
	}

	// Assign every logical node to its physical node, in b.nodes order.
	fusedByHead := make(map[*Node][]*Node)
	inChain := make(map[*Node]bool)
	for _, c := range chainByTail {
		if len(c) < 2 {
			continue // a lone stateless node gains nothing from fusing
		}
		fusedByHead[c[0]] = c
		for _, m := range c {
			inChain[m] = true
		}
		pl.fusedChains++
	}
	for _, n := range b.nodes {
		if pn := absorbed[n]; pn != nil {
			pl.owner[n] = pn
			continue
		}
		if pn := shardNodes[n]; pn != nil {
			pl.owner[n] = pn
			pl.nodes = append(pl.nodes, pn)
			continue
		}
		if c := fusedByHead[n]; c != nil {
			pn := &physNode{kind: physFused, node: n, chain: c}
			for _, m := range c {
				pl.owner[m] = pn
			}
			pl.nodes = append(pl.nodes, pn)
			continue
		}
		if inChain[n] {
			continue // owned by the chain rooted at its head
		}
		pn := &physNode{kind: physSingle, node: n}
		pl.owner[n] = pn
		pl.nodes = append(pl.nodes, pn)
	}

	// Pass 3: select the columnar runtime for fully kernel-capable segments.
	// Stateful nodes with a declared fold/probe spec vectorize too — serial
	// ones as standalone ColAggregate/ColJoin operators, sharded ones lane by
	// lane. A sharded aggregate's hoisted prefix runs *inside* the columnar
	// operator, so it must itself be fully kernel-capable (or absent) for the
	// lane to vectorize; join lane prefixes stay row stages (the join's merge
	// consumes tuple-at-a-time) and never block vectorization.
	if b.vectorize {
		for _, pn := range pl.nodes {
			switch pn.kind {
			case physFused:
				if allColCapable(pn.chain) {
					pn.vec = true
					pl.vectorizedSegments++
				}
			case physSingle:
				switch {
				case colCapable(pn.node):
					pn.vec = true
					pl.vectorizedSegments++
				case statefulColCapable(pn.node):
					pn.vec = true
					pl.vectorizedSegments++
					pl.vectorizedStateful++
				}
			case physShard:
				if !statefulColCapable(pn.node) {
					continue
				}
				if pn.node.kind == KindAggregate {
					if c := pn.prefix[PortDefault]; len(c) > 0 && !allColCapable(c) {
						continue
					}
				}
				pn.vec = true
				pl.vectorizedSegments++
				pl.vectorizedStateful++
			}
		}
	}

	// Physical edges: logical edges between distinct physical nodes. An edge
	// into an absorbed chain head feeds the shard subgraph directly and takes
	// over the chain's original input port on the stateful node.
	for _, e := range b.edges {
		from, to := pl.owner[e.from], pl.owner[e.to]
		if from == to {
			continue // fused away or internal to a shard subgraph
		}
		port := e.port
		if p, ok := absorbedPort[e.to]; ok {
			port = p
		}
		pl.edges = append(pl.edges, physEdge{from: from, to: to, port: port})
	}
	return pl
}

// colCapable reports whether a logical node declares the vectorized kernel
// its kind needs (see ColSpec).
func colCapable(n *Node) bool {
	if n.colSpec == nil || n.colSpec.Schema == nil {
		return false
	}
	switch n.kind {
	case KindMap:
		return n.colSpec.Map != nil
	case KindFilter:
		return n.colSpec.Filter != nil
	default:
		return false
	}
}

// statefulColCapable reports whether a stateful logical node declares a
// columnar spec its kind can execute (see AggColSpec/JoinColSpec). The checks
// mirror the ops-level validation so the planner falls back to the row path
// on an incomplete spec instead of panicking at materialisation.
func statefulColCapable(n *Node) bool {
	switch n.kind {
	case KindAggregate:
		c := n.aggCol
		if c == nil || c.Schema == nil || c.Fold == nil {
			return false
		}
		// A keyed spec needs the vectorized key; an unkeyed one must not
		// declare it.
		return (n.aggSpec.Key != nil) == (c.Key != nil)
	case KindJoin:
		c := n.joinCol
		if c == nil || n.joinSpec.LeftKey == nil || n.joinSpec.RightKey == nil {
			return false
		}
		if (c.ResidualL != nil) != (c.ResidualR != nil) {
			return false
		}
		return c.ResidualL == nil || (c.Left != nil && c.Right != nil)
	default:
		return false
	}
}

// allColCapable reports whether every node of a chain can vectorize.
func allColCapable(c []*Node) bool {
	for _, n := range c {
		if !colCapable(n) {
			return false
		}
	}
	return true
}

// fusible reports whether a logical node can be a fused chain stage: a
// stateless per-tuple operator with exactly one default-port input and one
// output.
func fusible(n *Node, inE, outE map[*Node][]edge) bool {
	if n.Parallelism > 1 {
		return false
	}
	switch n.kind {
	case KindMap, KindFilter:
	case KindMultiplex:
		// A multi-branch Multiplex duplicates the stream; only the
		// single-branch (pass-through) case is linear.
	case KindUnion:
		// A multi-input Union merges streams; only the single-input
		// (pass-through) case is linear.
	default:
		return false
	}
	return len(inE[n]) == 1 && len(outE[n]) == 1 && inE[n][0].port == PortDefault
}

// findChains returns the maximal linear chains of fusible nodes, upstream
// first. Chains of length one are returned too: they fuse with nothing but
// may still hoist into a shard subgraph.
func (b *Builder) findChains(inE, outE map[*Node][]edge) [][]*Node {
	linked := func(a, c *Node) bool { // a's only output feeds c's only input
		return outE[a][0].to == c && outE[a][0].port == PortDefault
	}
	var chains [][]*Node
	for _, n := range b.nodes {
		if !fusible(n, inE, outE) {
			continue
		}
		if pred := inE[n][0].from; fusible(pred, inE, outE) && linked(pred, n) {
			continue // not a chain head
		}
		c := []*Node{n}
		for cur := n; ; {
			next := outE[cur][0].to
			if !fusible(next, inE, outE) || !linked(cur, next) {
				break
			}
			c = append(c, next)
			cur = next
		}
		chains = append(chains, c)
	}
	return chains
}

// hoistPort decides whether a chain feeding shard-parallel stateful node n
// on edge port eport may hoist, and onto which shard input port.
func hoistPort(n *Node, eport string, c []*Node) (port string, ok bool) {
	var specKey func(core.Tuple) string
	switch n.kind {
	case KindAggregate:
		if eport != PortDefault {
			return "", false
		}
		port, specKey = PortDefault, n.aggSpec.Key
	case KindJoin:
		switch eport {
		case PortLeft:
			port, specKey = PortLeft, n.joinSpec.LeftKey
		case PortRight:
			port, specKey = PortRight, n.joinSpec.RightKey
		default:
			return "", false
		}
	default:
		return "", false
	}
	if specKey == nil {
		return "", false // unkeyed: not shardable, Build will reject it
	}
	for _, m := range c {
		if m.kind != KindMap {
			continue
		}
		// A Map creates new tuples: the stateful key function may not apply
		// to the pre-prefix stream, and the new tuples may carry new
		// timestamps. A join lane merges its two pre-prefix streams by
		// timestamp, so a timestamp-shifting prefix would reorder its
		// matches — Maps never hoist onto a join.
		if n.kind == KindJoin {
			return "", false
		}
		// Onto an aggregate, only with the head declaring the pre-prefix
		// partition key.
		if c[0].ShardKey == nil {
			return "", false
		}
		return port, true
	}
	// Filter and pass-through stages forward the tuple object (or a
	// payload-identical clone) with its timestamp, so the chain hoists —
	// routed by the declared head key if any, else by the stateful
	// operator's own key applied to the pre-prefix stream.
	return port, true
}

// stageFor translates a logical chain node into its fused stage.
func stageFor(n *Node) ops.FusedStage {
	switch n.kind {
	case KindMap:
		return ops.FusedStage{Name: n.name, Kind: ops.StageMap, Map: n.mapFn}
	case KindFilter:
		return ops.FusedStage{Name: n.name, Kind: ops.StageFilter, Pred: n.pred}
	case KindMultiplex:
		return ops.FusedStage{Name: n.name, Kind: ops.StageMultiplex}
	case KindUnion:
		return ops.FusedStage{Name: n.name, Kind: ops.StagePass}
	default:
		panic(fmt.Sprintf("planner: node %q (%s) is not a fusible stage", n.name, n.kind))
	}
}

// stagesFor translates a chain into its fused stage list.
func stagesFor(c []*Node) []ops.FusedStage {
	stages := make([]ops.FusedStage, len(c))
	for i, n := range c {
		stages[i] = stageFor(n)
	}
	return stages
}

// colStageFor translates a declared logical chain node into its columnar
// stage.
func colStageFor(n *Node) ops.ColStage {
	st := ops.ColStage{Name: n.name, Schema: n.colSpec.Schema}
	switch n.kind {
	case KindMap:
		st.Kind, st.Map = ops.StageMap, n.colSpec.Map
	case KindFilter:
		st.Kind, st.Filter = ops.StageFilter, n.colSpec.Filter
	default:
		panic(fmt.Sprintf("planner: node %q (%s) is not a vectorizable stage", n.name, n.kind))
	}
	return st
}

// colStagesFor translates a vectorized segment into its columnar stage list.
func colStagesFor(c []*Node) []ops.ColStage {
	stages := make([]ops.ColStage, len(c))
	for i, n := range c {
		stages[i] = colStageFor(n)
	}
	return stages
}

// shardPrefixFor builds the ops.ShardPrefix for one hoisted chain (nil when
// the port has none).
func (p *physNode) shardPrefixFor(port string) *ops.ShardPrefix {
	c := p.prefix[port]
	if c == nil {
		return nil
	}
	names := make([]string, len(c))
	for i, n := range c {
		names[i] = n.name
	}
	// ops defaults the partitioner's routing key to the stateful spec's own
	// key; only a head-declared ShardKey needs passing down explicitly.
	return &ops.ShardPrefix{
		Name:   strings.Join(names, "+"),
		Stages: stagesFor(c),
		Key:    c[0].ShardKey,
	}
}

// shardSuffix builds the ops.ShardSuffix of the chain folded into the
// fan-in (nil when there is none).
func (p *physNode) shardSuffix() *ops.ShardSuffix {
	if len(p.suffix) == 0 {
		return nil
	}
	names := make([]string, len(p.suffix))
	for i, n := range p.suffix {
		names[i] = n.name
	}
	return &ops.ShardSuffix{
		Name:   strings.Join(names, "+"),
		Stages: stagesFor(p.suffix),
	}
}

// render formats the physical plan as the Query.Explain dump.
func (pl *physPlan) render(queryName string, fusion, vectorize bool) string {
	var sb strings.Builder
	state := "on"
	if !fusion {
		state = "off"
	}
	vstate := "on"
	if !vectorize {
		vstate = "off"
	}
	fmt.Fprintf(&sb, "physical plan %q (fusion %s, vectorize %s, %d operator groups)\n", queryName, state, vstate, len(pl.nodes))
	width := 0
	for _, pn := range pl.nodes {
		if n := len(pn.name()); n > width {
			width = n
		}
	}
	for _, pn := range pl.nodes {
		fmt.Fprintf(&sb, "  %-*s  %s\n", width, pn.name(), pn.describe())
	}
	return sb.String()
}

// describe renders one physical node's right-hand plan column.
func (p *physNode) describe() string {
	switch p.kind {
	case physFused:
		parts := make([]string, len(p.chain))
		for i, n := range p.chain {
			parts[i] = fmt.Sprintf("%s %s", n.kind, n.name)
		}
		if p.vec {
			return "vectorized chain: " + strings.Join(parts, " => ")
		}
		return "fused chain: " + strings.Join(parts, " => ")
	case physShard:
		n := p.node
		desc := fmt.Sprintf("%s x%d: partition -> %d instances -> merge", n.kind, n.Parallelism, n.Parallelism)
		if p.vec {
			desc = fmt.Sprintf("%s x%d: partition -> %d x vec[%s] -> merge", n.kind, n.Parallelism, n.Parallelism, n.name)
		}
		if len(p.prefix) > 0 {
			var hoists []string
			for _, port := range []string{PortDefault, PortLeft, PortRight} {
				c, ok := p.prefix[port]
				if !ok {
					continue
				}
				names := make([]string, len(c))
				for i, m := range c {
					names[i] = m.name
				}
				label := strings.Join(names, "+")
				if port != PortDefault {
					label = port + ": " + label
				}
				hoists = append(hoists, label)
			}
			// The lane rendering shows how far the columnar span reaches: an
			// aggregate lane runs prefix and window state inside one vec[...]
			// operator; a join lane keeps row prefixes in front of the
			// vectorized window state.
			lane := "(prefix => " + n.name + ")"
			if p.vec {
				if n.kind == KindAggregate {
					lane = "vec[prefix => " + n.name + "]"
				} else {
					lane = "(prefix => vec[" + n.name + "])"
				}
			}
			desc = fmt.Sprintf("%s x%d: partition(hoisted above %s) -> %d x %s -> merge",
				n.kind, n.Parallelism, strings.Join(hoists, "; "), n.Parallelism, lane)
		}
		if len(p.suffix) > 0 {
			names := make([]string, len(p.suffix))
			for i, m := range p.suffix {
				names[i] = m.name
			}
			desc += fmt.Sprintf(" => inline suffix %s", strings.Join(names, "+"))
		}
		return desc
	default:
		if p.vec {
			return p.node.kind.String() + " (vectorized)"
		}
		return p.node.kind.String()
	}
}
