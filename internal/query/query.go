// Package query assembles standard operators (internal/ops) into runnable
// continuous queries: a directed acyclic graph of operators connected by
// bounded, timestamp-sorted streams, executed with one goroutine per
// operator — the SPE-instance model of the paper's §2. Stateful nodes
// (Aggregate, Join) can additionally be shard-parallelised across their key
// space with Node.Parallel, which expands them into multiple operator
// instances at Build time while keeping the sink-observable output — and
// every tuple's contribution graph — identical to serial execution.
package query

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"genealog/internal/adapt"
	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/telemetry"
)

// NodeKind identifies the operator type of a query node.
type NodeKind uint8

// Node kinds.
const (
	KindSource NodeKind = iota + 1
	KindSink
	KindMap
	KindFilter
	KindMultiplex
	KindUnion
	KindAggregate
	KindJoin
	KindCustom
)

func (k NodeKind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindSink:
		return "sink"
	case KindMap:
		return "map"
	case KindFilter:
		return "filter"
	case KindMultiplex:
		return "multiplex"
	case KindUnion:
		return "union"
	case KindAggregate:
		return "aggregate"
	case KindJoin:
		return "join"
	case KindCustom:
		return "custom"
	default:
		return "invalid"
	}
}

// Port names for operators with distinguished inputs.
const (
	PortDefault = ""
	// PortLeft and PortRight are the Join operator's two inputs.
	PortLeft  = "left"
	PortRight = "right"
)

// CustomFactory builds a user-defined operator once the builder has
// materialised its input and output streams (in connection order).
type CustomFactory func(ins, outs []*ops.Stream) (ops.Operator, error)

// ColSpec declares a node's vectorized (columnar) execution capability: the
// column schema its kernels read, plus the kernel matching the node's kind —
// Filter for a Filter node, Map for a (strictly one-to-one) Map node, Key for
// the group-by extraction of a shard-parallel Aggregate. A node without a
// ColSpec (or with an incomplete one) simply keeps the row path; declaring
// one never changes the sink-observable output or any contribution graph,
// only how the planner executes the node (see WithVectorize).
type ColSpec struct {
	// Schema declares the typed columns the kernels read.
	Schema *ops.ColSchema
	// Filter is the vectorized predicate of a Filter node.
	Filter ops.FilterKernel
	// Map is the vectorized projection of a one-to-one Map node. A Map whose
	// row function can emit zero or several tuples per input must not declare
	// one.
	Map ops.MapKernel
	// Key is the vectorized group-by extraction of a keyed Aggregate node:
	// the shard partitioner uses it to extract a whole batch's routing keys
	// in one pass. It must compute exactly aggSpec.Key's value per tuple.
	//
	// Deprecated for aggregates: declare the whole AggColSpec with
	// Node.ColumnarAgg instead, which vectorizes the window state and fold as
	// well as the routing-key extraction.
	Key ops.KeyKernel
}

// AggColSpec declares an Aggregate node's vectorized execution: columnar
// window state (ops.ColWindow) folded by a typed kernel instead of the row
// Fold closure over []core.Tuple. Fold must compute exactly the row Fold's
// output for every window, and Key (required iff the row spec has a group-by
// Key) must compute exactly the row key per tuple — the shard partitioner
// also uses it to extract whole batches' routing keys in one pass. A node
// without a complete spec keeps the row path; declaring one never changes the
// sink-observable output or any contribution graph.
type AggColSpec struct {
	// Schema declares the typed columns the window state buffers and the
	// kernels read.
	Schema *ops.ColSchema
	// Key is the vectorized group-by extraction (required iff the row spec is
	// keyed).
	Key ops.KeyKernel
	// Fold computes one window's output from its columnar segment.
	Fold ops.AggKernel
}

func (c *AggColSpec) ops() ops.AggColSpec {
	return ops.AggColSpec{Schema: c.Schema, Key: c.Key, Fold: c.Fold}
}

// JoinColSpec declares a keyed Join node's vectorized execution: hash-probed
// columnar window state instead of a full-buffer predicate scan. The contract
// is the one ops.JoinColSpec documents — the row Predicate must be exactly
// key equality plus the optional residual the kernels compute. LeftKey and
// RightKey, when declared with their schemas, additionally vectorize the
// shard partitioners' routing-key extraction (they must compute exactly the
// row LeftKey/RightKey per tuple). A node without a spec keeps the row path;
// declaring one never changes the sink-observable output or any contribution
// graph.
type JoinColSpec struct {
	// Left and Right declare the columns buffered per side; required only
	// when the residual kernels (or the key kernels) read them.
	Left, Right *ops.ColSchema
	// LeftKey and RightKey vectorize the per-side routing-key extraction at
	// the shard partitioners (optional).
	LeftKey, RightKey ops.KeyKernel
	// ResidualL and ResidualR filter the same-key candidates over typed
	// columns (both or neither; nil for a pure equi-join).
	ResidualL, ResidualR ops.ProbeKernel
}

func (c *JoinColSpec) ops() ops.JoinColSpec {
	return ops.JoinColSpec{Left: c.Left, Right: c.Right, ResidualL: c.ResidualL, ResidualR: c.ResidualR}
}

// Node is an operator under construction. Exported fields may be set between
// Add* and Build.
type Node struct {
	name string
	kind NodeKind

	srcFn    ops.SourceFunc
	sinkFn   ops.SinkFunc
	mapFn    ops.MapFunc
	pred     func(core.Tuple) bool
	aggSpec  ops.AggregateSpec
	joinSpec ops.JoinSpec
	factory  CustomFactory
	nIn      int // custom: required input count (-1 = any)
	nOut     int // custom: required output count (-1 = any)

	// Rate paces a Source to about Rate tuples per second (0 = unlimited).
	Rate float64
	// Burst replaces a Source's fixed Rate with an on/off duty cycle
	// (see ops.BurstPacing).
	Burst *ops.BurstPacing
	// Now overrides the wall clock of a Source or Sink (tests).
	Now func() int64
	// OnEmit observes every tuple emitted by a Source (metrics hook).
	OnEmit func(core.Tuple)
	// OnLatency observes each sink tuple's latency in nanoseconds.
	OnLatency func(core.Tuple, int64)
	// Parallelism, when > 1, shard-parallelises a stateful node: Build
	// expands it into that many independent operator instances, each owning
	// a hash-partition of the key space, bracketed by a partitioner and a
	// deterministic (timestamp, key) fan-in merge, so the sink-observable
	// output is identical to serial execution. Only Aggregate nodes with a
	// group-by Key and Join nodes with LeftKey/RightKey support it; Build
	// rejects it elsewhere.
	Parallelism int
	// colSpec is the node's declared vectorized capability (see ColSpec and
	// the Columnar chainer).
	colSpec *ColSpec
	// aggCol and joinCol are the declared stateful vectorized capabilities
	// (see AggColSpec/JoinColSpec and the ColumnarAgg/ColumnarJoin chainers).
	aggCol  *AggColSpec
	joinCol *JoinColSpec
	// ShardKey, on a stateless node heading a chain that feeds a
	// shard-parallel stateful node, declares the partition key of the
	// tuples *entering* this node: routing them by ShardKey must land every
	// tuple on the shard its descendants' group-by/join key hashes to. The
	// planner needs the declaration to hoist the shard partitioner above a
	// prefix containing a Map (Maps create new tuples the stateful key
	// function may not apply to); prefixes of Filters and pass-through
	// stages hoist without it, routed by the stateful key itself. A declared
	// ShardKey always takes precedence over the stateful key at the hoisted
	// partitioner, so it is also the way to hoist a prefix that narrows a
	// heterogeneous stream the stateful key cannot read (see WithFusion).
	ShardKey func(core.Tuple) string
}

// Parallel sets the node's shard parallelism (see Parallelism) and returns
// the node for chaining: b.AddAggregate(...).Parallel(4).
func (n *Node) Parallel(p int) *Node {
	n.Parallelism = p
	return n
}

// ShardKeyed sets the node's declared partition key (see ShardKey) and
// returns the node for chaining: b.AddMap(...).ShardKeyed(key).
func (n *Node) ShardKeyed(key func(core.Tuple) string) *Node {
	n.ShardKey = key
	return n
}

// Columnar declares the node's vectorized kernels (see ColSpec) and returns
// the node for chaining: b.AddFilter(...).Columnar(spec).
func (n *Node) Columnar(spec ColSpec) *Node {
	n.colSpec = &spec
	return n
}

// ColumnarAgg declares an Aggregate node's vectorized execution (see
// AggColSpec) and returns the node for chaining:
// b.AddAggregate(...).ColumnarAgg(spec).
func (n *Node) ColumnarAgg(spec AggColSpec) *Node {
	n.aggCol = &spec
	return n
}

// ColumnarJoin declares a keyed Join node's vectorized execution (see
// JoinColSpec) and returns the node for chaining:
// b.AddJoin(...).ColumnarJoin(spec).
func (n *Node) ColumnarJoin(spec JoinColSpec) *Node {
	n.joinCol = &spec
	return n
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Kind returns the node's operator kind.
func (n *Node) Kind() NodeKind { return n.kind }

type edge struct {
	from, to *Node
	port     string
}

// ProvenanceStore receives assembled provenance for durable serving: each
// delivered sink tuple with its originating tuples, plus watermark progress
// driving the store's retention. internal/provstore implements it; the
// provenance collector (internal/provenance) tees every assembled result
// into the builder's configured store.
type ProvenanceStore interface {
	// Ingest stores one delivered sink tuple and its originating tuples and
	// returns the durable sink-entry ID. An error fails the query.
	Ingest(sink core.Tuple, sources []core.Tuple) (uint64, error)
	// Advance raises the store's retention watermark.
	Advance(watermark int64)
}

// Builder accumulates nodes and edges and validates them into a Query.
type Builder struct {
	name      string
	instr     core.Instrumenter
	chanCap   int
	batchSize int
	fusion    bool
	vectorize bool
	provStore ProvenanceStore
	telem     *telemetry.Registry
	// qtel is the current Build's telemetry bucket (set per Build call when
	// telem is non-nil); the materialise helpers read it to attach counters
	// to streams and segments the edge loop never sees.
	qtel *telemetry.QueryTelemetry
	// adaptMin/adaptMax bound the adaptive batching controller; adaptMax > 0
	// means adaptive batching is on. adaptTargets collects every stream the
	// current Build materialises (set per Build call), including the internal
	// lanes of shard subgraphs, for the controller to drive.
	adaptMin, adaptMax int
	adaptTargets       []adapt.Target
	nodes              []*Node
	byName             map[string]*Node
	edges              []edge
	err                error
}

// Option configures a Builder.
type Option func(*Builder)

// WithInstrumenter selects the provenance instrumentation strategy (NP, GL
// or BL). The default is core.Noop (NP).
func WithInstrumenter(in core.Instrumenter) Option {
	return func(b *Builder) { b.instr = in }
}

// WithChannelCapacity sets the capacity of every stream the builder creates,
// in tuples: backpressure engages at the same buffered depth whatever the
// batch size, and keeps doing so when adaptive batching resizes batches
// mid-run.
func WithChannelCapacity(n int) Option {
	return func(b *Builder) { b.chanCap = n }
}

// WithBatchSize sets the batch size of every stream the builder creates
// (including the internal streams of shard-parallel subgraphs): tuples cross
// each stream in vectors of up to n, amortising per-tuple channel operations.
// n <= 1 (the default) preserves unbatched per-tuple transport. Batching
// never changes the sink-observable output or any tuple's contribution
// graph — operators flush partial batches whenever they would otherwise
// block on their streams — it only trades per-tuple latency for throughput.
//
// One caveat: the engine cannot observe a Source generator blocking inside
// user code (a live feed, a sleep between emits). A rate-paced Source
// (Node.Rate) flushes before every pacer sleep; a self-pacing generator
// that batches should emit steadily or run with batch size 1, or up to
// n-1 tuples can sit unpublished while it blocks.
func WithBatchSize(n int) Option {
	return func(b *Builder) { b.batchSize = n }
}

// WithAdaptiveBatching puts every stream the builder creates — including the
// internal lanes of shard-parallel subgraphs — under an AIMD controller
// (internal/adapt) that resizes batch sizes at runtime within [min, max]:
// growing while a stream's queue is deep and its batches run full, shrinking
// toward min while occupancy is low. The initial size is WithBatchSize's
// value clamped into the bounds. Like batching itself, adaptation never
// changes the sink-observable output or any tuple's contribution graph —
// batch boundaries carry no meaning — it only moves each stream along the
// latency/throughput trade-off as the load changes. The controller goroutine
// starts with Query.Run and stops when the run ends.
func WithAdaptiveBatching(min, max int) Option {
	return func(b *Builder) {
		if min < 1 {
			min = 1
		}
		if max < min {
			max = min
		}
		b.adaptMin, b.adaptMax = min, max
	}
}

// WithFusion enables or disables the physical planner (default enabled):
// Build rewrites the logical graph before materialisation, collapsing
// maximal stateless chains into single fused operators and replicating
// stateless prefixes of shard-parallel stateful nodes into the shard lanes.
// The rewrite never changes the sink-observable output or any tuple's
// contribution graph — instrumenter hooks fire once per logical stage either
// way — it only removes framework overhead. Disabling it materialises every
// logical node as its own operator and stream (useful to measure the
// planner's effect, or as an escape hatch).
//
// One contract comes with prefix hoisting: the partitioner of a hoisted
// prefix applies the stateful operator's key function to the *pre-prefix*
// stream. For chains of Filters and pass-through stages over a homogeneous
// stream — the common case — that is the same tuple type the key already
// accepts. A prefix that *narrows* a heterogeneous stream (say, a
// type-guard Filter in front of a key that type-asserts) must either
// declare a total ShardKey on the chain's first node, which then routes
// instead, or disable fusion; a key that panics on a pre-prefix tuple
// fails the query with a descriptive error rather than crashing.
func WithFusion(on bool) Option {
	return func(b *Builder) { b.fusion = on }
}

// WithVectorize enables or disables the planner's columnar runtime selection
// (default enabled): physical segments — fused chains and standalone
// operators — whose every stage declares a kernel-capable ColSpec execute as
// vectorized ops.ColChain operators over struct-of-arrays batches instead of
// tuple-at-a-time closures; stateful nodes with a declared AggColSpec or
// JoinColSpec keep their window state in typed columns and fold/probe it with
// kernels (ops.ColAggregate/ColJoin), serially or inside every shard lane;
// and shard partitioners whose routing key has a declared Key kernel extract
// each batch's keys in one pass. Like fusion the
// choice is purely physical: sink bytes and every contribution graph are
// byte-identical either way. Vectorization is independent of WithFusion —
// with fusion off, single declared operators still vectorize individually.
func WithVectorize(on bool) Option {
	return func(b *Builder) { b.vectorize = on }
}

// WithProvenanceStore attaches a durable provenance store to the query:
// every provenance collector added to the builder tees the (sink tuple,
// originating tuples) pairs it assembles into the store and drives the
// store's retention watermark from the unfolded stream's progress. The
// default is nil — provenance is assembled, observed and dropped, as in the
// paper's evaluation.
func WithProvenanceStore(ps ProvenanceStore) Option {
	return func(b *Builder) { b.provStore = ps }
}

// WithTelemetry attaches a live metrics registry to the query: Build
// registers every physical plan node (under the same ids Explain prints)
// and attaches per-batch counters to every materialised stream, including
// the internal lanes of shard-parallel subgraphs. The registry serves the
// figures over HTTP (telemetry.Registry.Listen). The default is nil — no
// registration, and the streams' telemetry pointers stay nil, so the hot
// path pays exactly one never-taken branch per batch.
func WithTelemetry(r *telemetry.Registry) Option {
	return func(b *Builder) { b.telem = r }
}

// New returns a Builder for a query with the given name.
func New(name string, opts ...Option) *Builder {
	b := &Builder{
		name:      name,
		instr:     core.Noop{},
		fusion:    true,
		vectorize: true,
		byName:    make(map[string]*Node),
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Instrumenter returns the provenance strategy the query is built with.
func (b *Builder) Instrumenter() core.Instrumenter { return b.instr }

// ProvenanceStore returns the durable provenance store the query is built
// with (nil when provenance is not persisted).
func (b *Builder) ProvenanceStore() ProvenanceStore { return b.provStore }

func (b *Builder) add(n *Node) *Node {
	if _, dup := b.byName[n.name]; dup {
		b.fail(fmt.Errorf("duplicate operator name %q", n.name))
		return n
	}
	b.byName[n.name] = n
	b.nodes = append(b.nodes, n)
	return n
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// AddSource adds a Source node.
func (b *Builder) AddSource(name string, gen ops.SourceFunc) *Node {
	return b.add(&Node{name: name, kind: KindSource, srcFn: gen})
}

// AddSink adds a Sink node. fn may be nil to discard tuples.
func (b *Builder) AddSink(name string, fn ops.SinkFunc) *Node {
	return b.add(&Node{name: name, kind: KindSink, sinkFn: fn})
}

// AddMap adds a Map node.
func (b *Builder) AddMap(name string, fn ops.MapFunc) *Node {
	return b.add(&Node{name: name, kind: KindMap, mapFn: fn})
}

// AddFilter adds a Filter node.
func (b *Builder) AddFilter(name string, pred func(core.Tuple) bool) *Node {
	return b.add(&Node{name: name, kind: KindFilter, pred: pred})
}

// AddMultiplex adds a Multiplex node; its fan-out is the number of outgoing
// connections made from it.
func (b *Builder) AddMultiplex(name string) *Node {
	return b.add(&Node{name: name, kind: KindMultiplex})
}

// AddUnion adds a Union node; its fan-in is the number of incoming
// connections made to it.
func (b *Builder) AddUnion(name string) *Node {
	return b.add(&Node{name: name, kind: KindUnion})
}

// AddAggregate adds an Aggregate node.
func (b *Builder) AddAggregate(name string, spec ops.AggregateSpec) *Node {
	return b.add(&Node{name: name, kind: KindAggregate, aggSpec: spec})
}

// AddJoin adds a Join node; connect its inputs with ConnectPort(...,
// PortLeft) and ConnectPort(..., PortRight).
func (b *Builder) AddJoin(name string, spec ops.JoinSpec) *Node {
	return b.add(&Node{name: name, kind: KindJoin, joinSpec: spec})
}

// AddCustom adds a user-defined operator node. nIn/nOut constrain the number
// of connections (use -1 for "any"). The factory receives the materialised
// streams in connection order.
func (b *Builder) AddCustom(name string, nIn, nOut int, factory CustomFactory) *Node {
	return b.add(&Node{name: name, kind: KindCustom, factory: factory, nIn: nIn, nOut: nOut})
}

// Connect adds a stream from the default output of from to the default
// input of to.
func (b *Builder) Connect(from, to *Node) { b.ConnectPort(from, to, PortDefault) }

// ConnectPort adds a stream from from to the named input port of to
// (PortLeft/PortRight for Join inputs).
func (b *Builder) ConnectPort(from, to *Node, port string) {
	if from == nil || to == nil {
		b.fail(errors.New("connect: nil node"))
		return
	}
	b.edges = append(b.edges, edge{from: from, to: to, port: port})
}

// Query is a validated, runnable operator DAG.
type Query struct {
	name      string
	operators []ops.Operator
	// controller, when non-nil, is the adaptive batching controller driving
	// every stream's batch size; Run gives it a goroutine for the duration
	// of the run.
	controller *adapt.Controller

	explain                    string
	fusedChains                int
	hoistedPrefixes            int
	fusedSuffixes              int
	vectorizedSegments         int
	vectorizedStatefulSegments int
}

// Name returns the query's name.
func (q *Query) Name() string { return q.name }

// Operators returns the materialised operators in construction order.
func (q *Query) Operators() []ops.Operator { return q.operators }

// Explain returns the physical plan Build materialised: one row per
// physical operator group, naming fused chains and shard subgraphs with
// their hoisted prefixes.
func (q *Query) Explain() string { return q.explain }

// FusedChains returns how many standalone fused-chain operators the plan
// contains (hoisted prefixes not included).
func (q *Query) FusedChains() int { return q.fusedChains }

// HoistedPrefixes returns how many stateless prefixes the plan replicated
// into shard-parallel subgraphs.
func (q *Query) HoistedPrefixes() int { return q.hoistedPrefixes }

// FusedSuffixes returns how many stateless chains the plan folded into the
// fan-in of a shard-parallel subgraph.
func (q *Query) FusedSuffixes() int { return q.fusedSuffixes }

// VectorizedSegments returns how many physical segments — fused chains,
// standalone stateless operators, and stateful operators (serial or shard
// subgraphs) — execute on the columnar runtime.
func (q *Query) VectorizedSegments() int { return q.vectorizedSegments }

// VectorizedStatefulSegments returns how many of the vectorized segments are
// stateful (ColAggregate/ColJoin window state, serial or shard-parallel); it
// is included in VectorizedSegments.
func (q *Query) VectorizedStatefulSegments() int { return q.vectorizedStatefulSegments }

// Build validates the DAG, plans the physical graph (operator fusion and
// shard-prefix replication, unless disabled with WithFusion(false)) and
// materialises streams and operators.
func (b *Builder) Build() (*Query, error) {
	if b.err != nil {
		return nil, fmt.Errorf("query %q: %w", b.name, b.err)
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("query %q: no operators", b.name)
	}
	if err := b.checkRegistered(); err != nil {
		return nil, fmt.Errorf("query %q: %w", b.name, err)
	}
	if err := b.checkAcyclic(); err != nil {
		return nil, fmt.Errorf("query %q: %w", b.name, err)
	}
	pl := b.plan()
	b.qtel, b.adaptTargets = nil, nil
	if b.telem != nil {
		b.qtel = b.telem.Register(b.name)
		for _, pn := range pl.nodes {
			b.qtel.Operator(pn.name(), kindLabel(pn), pn.kind == physSingle && pn.node.kind == KindSource)
		}
	}
	ins := make(map[*physNode][]*ops.Stream)
	outs := make(map[*physNode][]*ops.Stream)
	inPorts := make(map[*physNode]map[string]*ops.Stream)
	for _, e := range pl.edges {
		s := ops.NewBatchedStream(fmt.Sprintf("%s->%s", e.from.name(), e.to.name()), b.chanCap, b.batchSize)
		b.observeStream(s, e.from.name(), e.to.name())
		outs[e.from] = append(outs[e.from], s)
		ins[e.to] = append(ins[e.to], s)
		if e.port != PortDefault {
			if inPorts[e.to] == nil {
				inPorts[e.to] = make(map[string]*ops.Stream)
			}
			if _, dup := inPorts[e.to][e.port]; dup {
				return nil, fmt.Errorf("query %q: node %q: duplicate input port %q", b.name, e.to.name(), e.port)
			}
			inPorts[e.to][e.port] = s
		}
	}
	q := &Query{
		name:                       b.name,
		explain:                    pl.render(b.name, b.fusion, b.vectorize),
		fusedChains:                pl.fusedChains,
		hoistedPrefixes:            pl.hoistedPrefixes,
		fusedSuffixes:              pl.fusedSuffixes,
		vectorizedSegments:         pl.vectorizedSegments,
		vectorizedStatefulSegments: pl.vectorizedStateful,
	}
	for _, pn := range pl.nodes {
		switch {
		case pn.kind == physShard:
			expanded, err := b.materialiseShard(pn, ins[pn], outs[pn], inPorts[pn])
			if err != nil {
				return nil, fmt.Errorf("query %q: node %q: %w", b.name, pn.node.name, err)
			}
			q.operators = append(q.operators, expanded...)
		case pn.vec:
			op, err := b.materialiseVectorized(pn, ins[pn], outs[pn], inPorts[pn])
			if err != nil {
				return nil, fmt.Errorf("query %q: node %q: %w", b.name, pn.name(), err)
			}
			q.operators = append(q.operators, op)
		case pn.kind == physFused:
			op, err := b.materialiseFused(pn, ins[pn], outs[pn])
			if err != nil {
				return nil, fmt.Errorf("query %q: node %q: %w", b.name, pn.name(), err)
			}
			q.operators = append(q.operators, op)
		default:
			op, err := b.materialise(pn.node, ins[pn], outs[pn], inPorts[pn])
			if err != nil {
				return nil, fmt.Errorf("query %q: node %q: %w", b.name, pn.node.name, err)
			}
			q.operators = append(q.operators, op)
		}
	}
	if b.adaptMax > 0 && len(b.adaptTargets) > 0 {
		q.controller = adapt.NewController(adapt.Defaults(b.adaptMin, b.adaptMax), b.adaptTargets)
	}
	return q, nil
}

// kindLabel renders a physical node's kind for telemetry: the logical
// operator kind, the chain flavour, or the shard expansion's shape.
func kindLabel(pn *physNode) string {
	switch pn.kind {
	case physFused:
		if pn.vec {
			return "vec-chain"
		}
		return "fused-chain"
	case physShard:
		label := fmt.Sprintf("%s x%d", pn.node.kind, pn.node.Parallelism)
		if pn.vec {
			label += " vec"
		}
		return label
	default:
		if pn.vec {
			return pn.node.kind.String() + " vec"
		}
		return pn.node.kind.String()
	}
}

// queueProbe returns the scrape-time channel occupancy sampler of a stream.
func queueProbe(s *ops.Stream) func() (int, int) {
	return func() (int, int) { return s.QueueLen(), s.QueueCap() }
}

// observeStream attaches telemetry counters to one materialised stream and,
// when adaptive batching is on, raises the stream's batch-size limit to the
// controller's maximum, clamps its starting size into the controller's
// bounds, and registers it as a controller target. Adaptive queries without
// a telemetry registry still get per-stream counters — the controller's
// fill signal needs them — they just aren't exported anywhere.
func (b *Builder) observeStream(s *ops.Stream, from, to string) {
	var st *telemetry.StreamStats
	if b.qtel != nil {
		st = b.qtel.Stream(s.Name(), from, to, s.BatchSize, queueProbe(s))
		s.SetTelemetry(st)
	}
	if b.adaptMax <= 0 {
		return
	}
	if st == nil {
		st = new(telemetry.StreamStats)
		s.SetTelemetry(st)
	}
	if b.adaptMax > s.BatchSizeLimit() {
		s.SetBatchSizeLimit(b.adaptMax)
	}
	bs := s.BatchSize()
	if bs < b.adaptMin {
		bs = b.adaptMin
	}
	if bs > b.adaptMax {
		bs = b.adaptMax
	}
	s.SetBatchSize(bs)
	b.adaptTargets = append(b.adaptTargets, adapt.Target{Name: s.Name(), Stream: s, Stats: st})
}

// observeShardStream attaches telemetry (and the adaptive controller) to one
// internal stream of a shard subgraph; the producer/consumer ids come from
// the stream's name.
func (b *Builder) observeShardStream(s *ops.Stream) {
	from, to, _ := strings.Cut(s.Name(), "->")
	b.observeStream(s, from, to)
}

// checkRegistered rejects edges to *Node values that were never added to
// this builder (e.g. nodes of another builder, or hand-constructed ones):
// their streams would have no operator draining them and the query would
// hang at Run.
func (b *Builder) checkRegistered() error {
	check := func(n *Node) error {
		if reg, ok := b.byName[n.name]; !ok || reg != n {
			return fmt.Errorf("connect: node %q was not added to this builder", n.name)
		}
		return nil
	}
	for _, e := range b.edges {
		if err := check(e.from); err != nil {
			return err
		}
		if err := check(e.to); err != nil {
			return err
		}
	}
	return nil
}

// materialiseFused builds the single operator of a fused stateless chain.
func (b *Builder) materialiseFused(pn *physNode, in, out []*ops.Stream) (ops.Operator, error) {
	if len(in) != 1 || len(out) != 1 {
		return nil, fmt.Errorf("fused chain needs 1 input and 1 output, has %d/%d", len(in), len(out))
	}
	fc := ops.NewFusedChain(pn.name(), in[0], out[0], stagesFor(pn.chain), b.instr)
	if b.qtel != nil {
		fc.Seg = b.qtel.Segment(pn.name())
	}
	return fc, nil
}

// materialiseVectorized builds the columnar operator of a vectorized
// segment: a ColChain for a fused chain whose every stage declared a
// kernel-capable ColSpec (or a lone declared Map/Filter node), a
// ColAggregate/ColJoin for a serial stateful node with a declared fold/probe
// spec.
func (b *Builder) materialiseVectorized(pn *physNode, in, out []*ops.Stream, ports map[string]*ops.Stream) (ops.Operator, error) {
	if pn.kind == physSingle {
		switch n := pn.node; n.kind {
		case KindAggregate:
			if len(in) != 1 || len(out) != 1 {
				return nil, fmt.Errorf("%s needs 1 input and 1 output, has %d/%d", n.kind, len(in), len(out))
			}
			return ops.NewColAggregate(n.name, in[0], out[0], n.aggSpec, n.aggCol.ops(), nil, b.instr), nil
		case KindJoin:
			if len(in) != 2 || len(out) != 1 {
				return nil, fmt.Errorf("%s needs 2 inputs and 1 output, has %d/%d", n.kind, len(in), len(out))
			}
			left, right := ports[PortLeft], ports[PortRight]
			if left == nil || right == nil {
				return nil, errors.New("join inputs must be connected with PortLeft and PortRight")
			}
			return ops.NewColJoin(n.name, left, right, out[0], n.joinSpec, n.joinCol.ops(), nil, nil, b.instr), nil
		}
	}
	if len(in) != 1 || len(out) != 1 {
		return nil, fmt.Errorf("vectorized chain needs 1 input and 1 output, has %d/%d", len(in), len(out))
	}
	cc := ops.NewColChain(pn.name(), in[0], out[0], colStagesFor(pn.stageNodes()), b.instr)
	if b.qtel != nil {
		cc.Seg = b.qtel.Segment(pn.name())
	}
	return cc, nil
}

// materialiseShard expands a node with Parallelism > 1 into its shard
// subgraph (partitioner, shard instances with inlined hoisted prefixes,
// fan-in with inlined suffix).
func (b *Builder) materialiseShard(pn *physNode, in, out []*ops.Stream, ports map[string]*ops.Stream) ([]ops.Operator, error) {
	n := pn.node
	switch n.kind {
	case KindAggregate:
		if len(in) != 1 || len(out) != 1 {
			return nil, fmt.Errorf("%s needs 1 input and 1 output, has %d/%d", n.kind, len(in), len(out))
		}
		cfg := ops.ShardConfig{Prefix: pn.shardPrefixFor(PortDefault), Suffix: pn.shardSuffix()}
		if b.qtel != nil || b.adaptMax > 0 {
			cfg.Observe = b.observeShardStream
		}
		if b.vectorize {
			cfg.ColKey = colKeyFor(n, cfg.Prefix)
		}
		if pn.vec {
			spec := n.aggCol.ops()
			cfg.Agg = &spec
			if c := pn.prefix[PortDefault]; len(c) > 0 {
				cfg.VecPrefix = colStagesFor(c)
			}
		}
		return ops.ShardAggregateCfg(n.name, in[0], out[0], n.aggSpec, b.instr,
			n.Parallelism, b.chanCap, b.batchSize, cfg)
	case KindJoin:
		if len(in) != 2 || len(out) != 1 {
			return nil, fmt.Errorf("%s needs 2 inputs and 1 output, has %d/%d", n.kind, len(in), len(out))
		}
		left, right := ports[PortLeft], ports[PortRight]
		if left == nil || right == nil {
			return nil, errors.New("join inputs must be connected with PortLeft and PortRight")
		}
		cfg := ops.ShardJoinConfig{
			Left:   pn.shardPrefixFor(PortLeft),
			Right:  pn.shardPrefixFor(PortRight),
			Suffix: pn.shardSuffix(),
		}
		if b.qtel != nil || b.adaptMax > 0 {
			cfg.Observe = b.observeShardStream
		}
		if b.vectorize {
			cfg.LeftColKey, cfg.RightColKey = joinColKeysFor(n, cfg.Left, cfg.Right)
		}
		if pn.vec {
			spec := n.joinCol.ops()
			cfg.Join = &spec
		}
		return ops.ShardJoinCfg(n.name, left, right, out[0], n.joinSpec, b.instr,
			n.Parallelism, b.chanCap, b.batchSize, cfg)
	default:
		return nil, fmt.Errorf("parallelism is only supported on aggregate and join nodes, not %s", n.kind)
	}
}

// colKeyFor returns the vectorized routing-key extraction of a sharded
// aggregate: the node's declared Key kernel, usable only when the partitioner
// routes by the aggregate's own key function (no head-declared ShardKey
// overriding it).
func colKeyFor(n *Node, prefix *ops.ShardPrefix) *ops.ColKey {
	if prefix != nil && prefix.Key != nil {
		return nil
	}
	if c := n.aggCol; c != nil && c.Key != nil && c.Schema != nil {
		return &ops.ColKey{Schema: c.Schema, Kernel: c.Key}
	}
	if n.colSpec == nil || n.colSpec.Key == nil || n.colSpec.Schema == nil {
		return nil
	}
	return &ops.ColKey{Schema: n.colSpec.Schema, Kernel: n.colSpec.Key}
}

// joinColKeysFor returns the vectorized per-side routing-key extractions of a
// sharded join: the node's declared LeftKey/RightKey kernels, each usable
// only when its partitioner routes by the join's own key function (no
// head-declared ShardKey on that side's prefix). Join prefixes are Map-free
// (the planner never hoists a Map onto a join), so the declared schemas apply
// to the pre-prefix stream the partitioners consume.
func joinColKeysFor(n *Node, leftPrefix, rightPrefix *ops.ShardPrefix) (l, r *ops.ColKey) {
	c := n.joinCol
	if c == nil {
		return nil, nil
	}
	if (leftPrefix == nil || leftPrefix.Key == nil) && c.LeftKey != nil && c.Left != nil {
		l = &ops.ColKey{Schema: c.Left, Kernel: c.LeftKey}
	}
	if (rightPrefix == nil || rightPrefix.Key == nil) && c.RightKey != nil && c.Right != nil {
		r = &ops.ColKey{Schema: c.Right, Kernel: c.RightKey}
	}
	return l, r
}

// ParallelizeStateful applies shard parallelism p to every stateful node
// that can be partitioned by key: Aggregates with a group-by Key and Joins
// with both equi-join key extractors. Unkeyed stateful nodes keep serial
// execution (there is no key space to partition). p < 2 is a no-op. It is a
// convenience for callers — the harness's parallelism dimension — that
// parameterise whole queries rather than individual nodes.
func (b *Builder) ParallelizeStateful(p int) {
	if p < 2 {
		return
	}
	for _, n := range b.nodes {
		switch n.kind {
		case KindAggregate:
			if n.aggSpec.Key != nil {
				n.Parallelism = p
			}
		case KindJoin:
			if n.joinSpec.LeftKey != nil && n.joinSpec.RightKey != nil {
				n.Parallelism = p
			}
		}
	}
}

// ProvenanceHorizon derives the provenance retention horizon of the
// assembled graph: how far (in event-time units) a durable provenance
// store's watermark may trail the newest sink delivery while tuples
// contributing to not-yet-delivered results are still in flight. Along any
// path from a node to a sink, a tuple can be held by each windowed operator
// (Aggregate, Join) for up to its window span before the derived result
// moves on, so the in-flight depth of the graph is the maximum over nodes of
// the summed window spans on any downstream path. The returned horizon is
// twice that depth — one depth for how old a contributing tuple's event time
// can be relative to its result, and one more as slack for watermark
// coarsening (watermarks advance per batch/window, not per tuple). Stateless
// graphs (depth 0) get a horizon of 0, meaning "retire immediately behind
// the watermark"; callers wanting unbounded retention should not set a
// horizon at all.
//
// The graph must be acyclic (Build validates this; calling earlier on a
// cyclic graph panics on stack exhaustion).
func (b *Builder) ProvenanceHorizon() int64 {
	succ := make(map[*Node][]*Node, len(b.nodes))
	for _, e := range b.edges {
		succ[e.from] = append(succ[e.from], e.to)
	}
	span := func(n *Node) int64 {
		switch n.kind {
		case KindAggregate:
			return n.aggSpec.WS
		case KindJoin:
			return n.joinSpec.WS
		default:
			return 0
		}
	}
	memo := make(map[*Node]int64, len(b.nodes))
	var depth func(n *Node) int64
	depth = func(n *Node) int64 {
		if d, ok := memo[n]; ok {
			return d
		}
		var below int64
		for _, s := range succ[n] {
			if d := depth(s); d > below {
				below = d
			}
		}
		d := span(n) + below
		memo[n] = d
		return d
	}
	var max int64
	for _, n := range b.nodes {
		if d := depth(n); d > max {
			max = d
		}
	}
	return 2 * max
}

func (b *Builder) materialise(n *Node, in, out []*ops.Stream, ports map[string]*ops.Stream) (ops.Operator, error) {
	need := func(nIn, nOut int) error {
		if nIn >= 0 && len(in) != nIn {
			return fmt.Errorf("%s needs %d input(s), has %d", n.kind, nIn, len(in))
		}
		if nOut >= 0 && len(out) != nOut {
			return fmt.Errorf("%s needs %d output(s), has %d", n.kind, nOut, len(out))
		}
		return nil
	}
	switch n.kind {
	case KindSource:
		if err := need(0, 1); err != nil {
			return nil, err
		}
		src := ops.NewSource(n.name, n.srcFn, out[0], b.instr)
		src.Rate = n.Rate
		src.Burst = n.Burst
		src.Now = n.Now
		src.OnEmit = n.OnEmit
		return src, nil
	case KindSink:
		if err := need(1, 0); err != nil {
			return nil, err
		}
		sink := ops.NewSink(n.name, in[0], n.sinkFn)
		sink.Now = n.Now
		sink.OnLatency = n.OnLatency
		return sink, nil
	case KindMap:
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return ops.NewMap(n.name, in[0], out[0], n.mapFn, b.instr), nil
	case KindFilter:
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return ops.NewFilter(n.name, in[0], out[0], n.pred), nil
	case KindMultiplex:
		if err := need(1, -1); err != nil {
			return nil, err
		}
		if len(out) == 0 {
			return nil, errors.New("multiplex needs at least one output")
		}
		return ops.NewMultiplex(n.name, in[0], out, b.instr), nil
	case KindUnion:
		if err := need(-1, 1); err != nil {
			return nil, err
		}
		if len(in) == 0 {
			return nil, errors.New("union needs at least one input")
		}
		return ops.NewUnion(n.name, in, out[0]), nil
	case KindAggregate:
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return ops.NewAggregate(n.name, in[0], out[0], n.aggSpec, b.instr), nil
	case KindJoin:
		if err := need(2, 1); err != nil {
			return nil, err
		}
		left, right := ports[PortLeft], ports[PortRight]
		if left == nil || right == nil {
			return nil, errors.New("join inputs must be connected with PortLeft and PortRight")
		}
		return ops.NewJoin(n.name, left, right, out[0], n.joinSpec, b.instr), nil
	case KindCustom:
		if err := need(n.nIn, n.nOut); err != nil {
			return nil, err
		}
		return n.factory(in, out)
	default:
		return nil, fmt.Errorf("unknown node kind %d", n.kind)
	}
}

// checkAcyclic verifies the connection graph is a DAG (Kahn's algorithm).
func (b *Builder) checkAcyclic() error {
	indeg := make(map[*Node]int, len(b.nodes))
	succ := make(map[*Node][]*Node, len(b.nodes))
	for _, e := range b.edges {
		indeg[e.to]++
		succ[e.from] = append(succ[e.from], e.to)
	}
	var frontier []*Node
	for _, n := range b.nodes {
		if indeg[n] == 0 {
			frontier = append(frontier, n)
		}
	}
	seen := 0
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		seen++
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	if seen != len(b.nodes) {
		return errors.New("operator graph has a cycle")
	}
	return nil
}

// Run executes every operator on its own goroutine and blocks until the
// query drains (all sources exhausted and all tuples processed) or an
// operator fails, in which case the context shared by all operators is
// cancelled and the first error is returned (joined with any secondary
// errors caused by the cancellation).
func (q *Query) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if q.controller != nil {
		done := make(chan struct{})
		go func() {
			defer close(done)
			q.controller.Run(ctx)
		}()
		// Cancel before waiting: this defer runs before the outer
		// `defer cancel()`, so it must stop the controller itself or the
		// wait never returns. Waiting matters so no tick races a re-run of
		// the same query.
		defer func() {
			cancel()
			<-done
		}()
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for _, op := range q.operators {
		wg.Add(1)
		go func(op ops.Operator) {
			defer wg.Done()
			if err := op.Run(ctx); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("operator %q: %w", op.Name(), err))
				mu.Unlock()
				cancel()
			}
		}(op)
	}
	wg.Wait()
	if len(errs) > 0 {
		return fmt.Errorf("query %q: %w", q.name, errors.Join(errs...))
	}
	return nil
}
