// Package query assembles standard operators (internal/ops) into runnable
// continuous queries: a directed acyclic graph of operators connected by
// bounded, timestamp-sorted streams, executed with one goroutine per
// operator — the SPE-instance model of the paper's §2. Stateful nodes
// (Aggregate, Join) can additionally be shard-parallelised across their key
// space with Node.Parallel, which expands them into multiple operator
// instances at Build time while keeping the sink-observable output — and
// every tuple's contribution graph — identical to serial execution.
package query

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// NodeKind identifies the operator type of a query node.
type NodeKind uint8

// Node kinds.
const (
	KindSource NodeKind = iota + 1
	KindSink
	KindMap
	KindFilter
	KindMultiplex
	KindUnion
	KindAggregate
	KindJoin
	KindCustom
)

func (k NodeKind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindSink:
		return "sink"
	case KindMap:
		return "map"
	case KindFilter:
		return "filter"
	case KindMultiplex:
		return "multiplex"
	case KindUnion:
		return "union"
	case KindAggregate:
		return "aggregate"
	case KindJoin:
		return "join"
	case KindCustom:
		return "custom"
	default:
		return "invalid"
	}
}

// Port names for operators with distinguished inputs.
const (
	PortDefault = ""
	// PortLeft and PortRight are the Join operator's two inputs.
	PortLeft  = "left"
	PortRight = "right"
)

// CustomFactory builds a user-defined operator once the builder has
// materialised its input and output streams (in connection order).
type CustomFactory func(ins, outs []*ops.Stream) (ops.Operator, error)

// Node is an operator under construction. Exported fields may be set between
// Add* and Build.
type Node struct {
	name string
	kind NodeKind

	srcFn    ops.SourceFunc
	sinkFn   ops.SinkFunc
	mapFn    ops.MapFunc
	pred     func(core.Tuple) bool
	aggSpec  ops.AggregateSpec
	joinSpec ops.JoinSpec
	factory  CustomFactory
	nIn      int // custom: required input count (-1 = any)
	nOut     int // custom: required output count (-1 = any)

	// Rate paces a Source to about Rate tuples per second (0 = unlimited).
	Rate float64
	// Now overrides the wall clock of a Source or Sink (tests).
	Now func() int64
	// OnEmit observes every tuple emitted by a Source (metrics hook).
	OnEmit func(core.Tuple)
	// OnLatency observes each sink tuple's latency in nanoseconds.
	OnLatency func(core.Tuple, int64)
	// Parallelism, when > 1, shard-parallelises a stateful node: Build
	// expands it into that many independent operator instances, each owning
	// a hash-partition of the key space, bracketed by a partitioner and a
	// deterministic (timestamp, key) fan-in merge, so the sink-observable
	// output is identical to serial execution. Only Aggregate nodes with a
	// group-by Key and Join nodes with LeftKey/RightKey support it; Build
	// rejects it elsewhere.
	Parallelism int
}

// Parallel sets the node's shard parallelism (see Parallelism) and returns
// the node for chaining: b.AddAggregate(...).Parallel(4).
func (n *Node) Parallel(p int) *Node {
	n.Parallelism = p
	return n
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Kind returns the node's operator kind.
func (n *Node) Kind() NodeKind { return n.kind }

type edge struct {
	from, to *Node
	port     string
}

// Builder accumulates nodes and edges and validates them into a Query.
type Builder struct {
	name      string
	instr     core.Instrumenter
	chanCap   int
	batchSize int
	nodes     []*Node
	byName    map[string]*Node
	edges     []edge
	err       error
}

// Option configures a Builder.
type Option func(*Builder)

// WithInstrumenter selects the provenance instrumentation strategy (NP, GL
// or BL). The default is core.Noop (NP).
func WithInstrumenter(in core.Instrumenter) Option {
	return func(b *Builder) { b.instr = in }
}

// WithChannelCapacity sets the capacity of every stream the builder creates
// (in batches — a batched stream holds up to capacity x batch size tuples).
func WithChannelCapacity(n int) Option {
	return func(b *Builder) { b.chanCap = n }
}

// WithBatchSize sets the batch size of every stream the builder creates
// (including the internal streams of shard-parallel subgraphs): tuples cross
// each stream in vectors of up to n, amortising per-tuple channel operations.
// n <= 1 (the default) preserves unbatched per-tuple transport. Batching
// never changes the sink-observable output or any tuple's contribution
// graph — operators flush partial batches whenever they would otherwise
// block on their streams — it only trades per-tuple latency for throughput.
//
// One caveat: the engine cannot observe a Source generator blocking inside
// user code (a live feed, a sleep between emits). A rate-paced Source
// (Node.Rate) flushes before every pacer sleep; a self-pacing generator
// that batches should emit steadily or run with batch size 1, or up to
// n-1 tuples can sit unpublished while it blocks.
func WithBatchSize(n int) Option {
	return func(b *Builder) { b.batchSize = n }
}

// New returns a Builder for a query with the given name.
func New(name string, opts ...Option) *Builder {
	b := &Builder{
		name:   name,
		instr:  core.Noop{},
		byName: make(map[string]*Node),
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Instrumenter returns the provenance strategy the query is built with.
func (b *Builder) Instrumenter() core.Instrumenter { return b.instr }

func (b *Builder) add(n *Node) *Node {
	if _, dup := b.byName[n.name]; dup {
		b.fail(fmt.Errorf("duplicate operator name %q", n.name))
		return n
	}
	b.byName[n.name] = n
	b.nodes = append(b.nodes, n)
	return n
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// AddSource adds a Source node.
func (b *Builder) AddSource(name string, gen ops.SourceFunc) *Node {
	return b.add(&Node{name: name, kind: KindSource, srcFn: gen})
}

// AddSink adds a Sink node. fn may be nil to discard tuples.
func (b *Builder) AddSink(name string, fn ops.SinkFunc) *Node {
	return b.add(&Node{name: name, kind: KindSink, sinkFn: fn})
}

// AddMap adds a Map node.
func (b *Builder) AddMap(name string, fn ops.MapFunc) *Node {
	return b.add(&Node{name: name, kind: KindMap, mapFn: fn})
}

// AddFilter adds a Filter node.
func (b *Builder) AddFilter(name string, pred func(core.Tuple) bool) *Node {
	return b.add(&Node{name: name, kind: KindFilter, pred: pred})
}

// AddMultiplex adds a Multiplex node; its fan-out is the number of outgoing
// connections made from it.
func (b *Builder) AddMultiplex(name string) *Node {
	return b.add(&Node{name: name, kind: KindMultiplex})
}

// AddUnion adds a Union node; its fan-in is the number of incoming
// connections made to it.
func (b *Builder) AddUnion(name string) *Node {
	return b.add(&Node{name: name, kind: KindUnion})
}

// AddAggregate adds an Aggregate node.
func (b *Builder) AddAggregate(name string, spec ops.AggregateSpec) *Node {
	return b.add(&Node{name: name, kind: KindAggregate, aggSpec: spec})
}

// AddJoin adds a Join node; connect its inputs with ConnectPort(...,
// PortLeft) and ConnectPort(..., PortRight).
func (b *Builder) AddJoin(name string, spec ops.JoinSpec) *Node {
	return b.add(&Node{name: name, kind: KindJoin, joinSpec: spec})
}

// AddCustom adds a user-defined operator node. nIn/nOut constrain the number
// of connections (use -1 for "any"). The factory receives the materialised
// streams in connection order.
func (b *Builder) AddCustom(name string, nIn, nOut int, factory CustomFactory) *Node {
	return b.add(&Node{name: name, kind: KindCustom, factory: factory, nIn: nIn, nOut: nOut})
}

// Connect adds a stream from the default output of from to the default
// input of to.
func (b *Builder) Connect(from, to *Node) { b.ConnectPort(from, to, PortDefault) }

// ConnectPort adds a stream from from to the named input port of to
// (PortLeft/PortRight for Join inputs).
func (b *Builder) ConnectPort(from, to *Node, port string) {
	if from == nil || to == nil {
		b.fail(errors.New("connect: nil node"))
		return
	}
	b.edges = append(b.edges, edge{from: from, to: to, port: port})
}

// Query is a validated, runnable operator DAG.
type Query struct {
	name      string
	operators []ops.Operator
}

// Name returns the query's name.
func (q *Query) Name() string { return q.name }

// Operators returns the materialised operators in construction order.
func (q *Query) Operators() []ops.Operator { return q.operators }

// Build validates the DAG and materialises streams and operators.
func (b *Builder) Build() (*Query, error) {
	if b.err != nil {
		return nil, fmt.Errorf("query %q: %w", b.name, b.err)
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("query %q: no operators", b.name)
	}
	ins := make(map[*Node][]*ops.Stream)
	outs := make(map[*Node][]*ops.Stream)
	inPorts := make(map[*Node]map[string]*ops.Stream)
	for _, e := range b.edges {
		s := ops.NewBatchedStream(fmt.Sprintf("%s->%s", e.from.name, e.to.name), b.chanCap, b.batchSize)
		outs[e.from] = append(outs[e.from], s)
		ins[e.to] = append(ins[e.to], s)
		if e.port != PortDefault {
			if inPorts[e.to] == nil {
				inPorts[e.to] = make(map[string]*ops.Stream)
			}
			if _, dup := inPorts[e.to][e.port]; dup {
				return nil, fmt.Errorf("query %q: node %q: duplicate input port %q", b.name, e.to.name, e.port)
			}
			inPorts[e.to][e.port] = s
		}
	}
	if err := b.checkAcyclic(); err != nil {
		return nil, fmt.Errorf("query %q: %w", b.name, err)
	}
	q := &Query{name: b.name}
	for _, n := range b.nodes {
		if n.Parallelism > 1 {
			expanded, err := b.materialiseParallel(n, ins[n], outs[n], inPorts[n])
			if err != nil {
				return nil, fmt.Errorf("query %q: node %q: %w", b.name, n.name, err)
			}
			q.operators = append(q.operators, expanded...)
			continue
		}
		op, err := b.materialise(n, ins[n], outs[n], inPorts[n])
		if err != nil {
			return nil, fmt.Errorf("query %q: node %q: %w", b.name, n.name, err)
		}
		q.operators = append(q.operators, op)
	}
	return q, nil
}

// materialiseParallel expands a node with Parallelism > 1 into its shard
// subgraph (partitioner, shard instances, fan-in).
func (b *Builder) materialiseParallel(n *Node, in, out []*ops.Stream, ports map[string]*ops.Stream) ([]ops.Operator, error) {
	switch n.kind {
	case KindAggregate:
		if len(in) != 1 || len(out) != 1 {
			return nil, fmt.Errorf("%s needs 1 input and 1 output, has %d/%d", n.kind, len(in), len(out))
		}
		return ops.ShardAggregate(n.name, in[0], out[0], n.aggSpec, b.instr, n.Parallelism, b.chanCap, b.batchSize)
	case KindJoin:
		if len(in) != 2 || len(out) != 1 {
			return nil, fmt.Errorf("%s needs 2 inputs and 1 output, has %d/%d", n.kind, len(in), len(out))
		}
		left, right := ports[PortLeft], ports[PortRight]
		if left == nil || right == nil {
			return nil, errors.New("join inputs must be connected with PortLeft and PortRight")
		}
		return ops.ShardJoin(n.name, left, right, out[0], n.joinSpec, b.instr, n.Parallelism, b.chanCap, b.batchSize)
	default:
		return nil, fmt.Errorf("parallelism is only supported on aggregate and join nodes, not %s", n.kind)
	}
}

// ParallelizeStateful applies shard parallelism p to every stateful node
// that can be partitioned by key: Aggregates with a group-by Key and Joins
// with both equi-join key extractors. Unkeyed stateful nodes keep serial
// execution (there is no key space to partition). p < 2 is a no-op. It is a
// convenience for callers — the harness's parallelism dimension — that
// parameterise whole queries rather than individual nodes.
func (b *Builder) ParallelizeStateful(p int) {
	if p < 2 {
		return
	}
	for _, n := range b.nodes {
		switch n.kind {
		case KindAggregate:
			if n.aggSpec.Key != nil {
				n.Parallelism = p
			}
		case KindJoin:
			if n.joinSpec.LeftKey != nil && n.joinSpec.RightKey != nil {
				n.Parallelism = p
			}
		}
	}
}

func (b *Builder) materialise(n *Node, in, out []*ops.Stream, ports map[string]*ops.Stream) (ops.Operator, error) {
	need := func(nIn, nOut int) error {
		if nIn >= 0 && len(in) != nIn {
			return fmt.Errorf("%s needs %d input(s), has %d", n.kind, nIn, len(in))
		}
		if nOut >= 0 && len(out) != nOut {
			return fmt.Errorf("%s needs %d output(s), has %d", n.kind, nOut, len(out))
		}
		return nil
	}
	switch n.kind {
	case KindSource:
		if err := need(0, 1); err != nil {
			return nil, err
		}
		src := ops.NewSource(n.name, n.srcFn, out[0], b.instr)
		src.Rate = n.Rate
		src.Now = n.Now
		src.OnEmit = n.OnEmit
		return src, nil
	case KindSink:
		if err := need(1, 0); err != nil {
			return nil, err
		}
		sink := ops.NewSink(n.name, in[0], n.sinkFn)
		sink.Now = n.Now
		sink.OnLatency = n.OnLatency
		return sink, nil
	case KindMap:
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return ops.NewMap(n.name, in[0], out[0], n.mapFn, b.instr), nil
	case KindFilter:
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return ops.NewFilter(n.name, in[0], out[0], n.pred), nil
	case KindMultiplex:
		if err := need(1, -1); err != nil {
			return nil, err
		}
		if len(out) == 0 {
			return nil, errors.New("multiplex needs at least one output")
		}
		return ops.NewMultiplex(n.name, in[0], out, b.instr), nil
	case KindUnion:
		if err := need(-1, 1); err != nil {
			return nil, err
		}
		if len(in) == 0 {
			return nil, errors.New("union needs at least one input")
		}
		return ops.NewUnion(n.name, in, out[0]), nil
	case KindAggregate:
		if err := need(1, 1); err != nil {
			return nil, err
		}
		return ops.NewAggregate(n.name, in[0], out[0], n.aggSpec, b.instr), nil
	case KindJoin:
		if err := need(2, 1); err != nil {
			return nil, err
		}
		left, right := ports[PortLeft], ports[PortRight]
		if left == nil || right == nil {
			return nil, errors.New("join inputs must be connected with PortLeft and PortRight")
		}
		return ops.NewJoin(n.name, left, right, out[0], n.joinSpec, b.instr), nil
	case KindCustom:
		if err := need(n.nIn, n.nOut); err != nil {
			return nil, err
		}
		return n.factory(in, out)
	default:
		return nil, fmt.Errorf("unknown node kind %d", n.kind)
	}
}

// checkAcyclic verifies the connection graph is a DAG (Kahn's algorithm).
func (b *Builder) checkAcyclic() error {
	indeg := make(map[*Node]int, len(b.nodes))
	succ := make(map[*Node][]*Node, len(b.nodes))
	for _, e := range b.edges {
		indeg[e.to]++
		succ[e.from] = append(succ[e.from], e.to)
	}
	var frontier []*Node
	for _, n := range b.nodes {
		if indeg[n] == 0 {
			frontier = append(frontier, n)
		}
	}
	seen := 0
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		seen++
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	if seen != len(b.nodes) {
		return errors.New("operator graph has a cycle")
	}
	return nil
}

// Run executes every operator on its own goroutine and blocks until the
// query drains (all sources exhausted and all tuples processed) or an
// operator fails, in which case the context shared by all operators is
// cancelled and the first error is returned (joined with any secondary
// errors caused by the cancellation).
func (q *Query) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for _, op := range q.operators {
		wg.Add(1)
		go func(op ops.Operator) {
			defer wg.Done()
			if err := op.Run(ctx); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("operator %q: %w", op.Name(), err))
				mu.Unlock()
				cancel()
			}
		}(op)
	}
	wg.Wait()
	if len(errs) > 0 {
		return fmt.Errorf("query %q: %w", q.name, errors.Join(errs...))
	}
	return nil
}
