package query_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
)

// pTuple is the parallel-test tuple.
type pTuple struct {
	core.Base
	Key string
	Val int64
}

func pt(ts int64, key string, val int64) *pTuple {
	return &pTuple{Base: core.NewBase(ts), Key: key, Val: val}
}

func (t *pTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

func pKey(t core.Tuple) string { return t.(*pTuple).Key }

// parallelSource emits a deterministic keyed stream: several keys per
// timestamp, some keys skipping some timestamps.
func parallelSource(n int) ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		for i := 0; i < n; i++ {
			ts := int64(i / 5)
			k := i % 5
			if (i/5+k)%4 == 0 {
				continue
			}
			if err := emit(pt(ts, "k"+strconv.Itoa(k), int64(i))); err != nil {
				return err
			}
		}
		return nil
	}
}

// instrumenterForMode returns a fresh instrumenter (and BL store) per run so
// the two parallelism levels never share mutable provenance state.
func instrumenterForMode(mode string) (core.Instrumenter, *baseline.Store) {
	switch mode {
	case "GL":
		return &core.Genealog{}, nil
	case "BL":
		store := baseline.NewStore()
		return &baseline.Instrumenter{IDs: core.NewIDGen(1), Store: store}, store
	default:
		return core.Noop{}, nil
	}
}

// runKeyedAggregate builds source -> keyed aggregate(parallelism) -> sink and
// returns each sink tuple rendered with its traversed provenance (GL via the
// meta-attribute walk, BL via the store join, NP payload-only).
func runKeyedAggregate(t *testing.T, mode string, parallelism int) []string {
	t.Helper()
	instr, store := instrumenterForMode(mode)
	b := query.New("parallel-"+mode, query.WithInstrumenter(instr), query.WithChannelCapacity(32))
	src := b.AddSource("src", parallelSource(600))
	agg := b.AddAggregate("agg", ops.AggregateSpec{
		WS: 6, WA: 2, Key: pKey,
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			var sum int64
			for _, x := range w {
				sum += x.(*pTuple).Val
			}
			return pt(0, key, sum)
		},
	}).Parallel(parallelism)
	var got []string
	sink := b.AddSink("sink", func(tp core.Tuple) error {
		got = append(got, renderWithProvenance(tp, mode, store))
		return nil
	})
	b.Connect(src, agg)
	b.Connect(agg, sink)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return got
}

// renderWithProvenance renders a sink tuple plus its provenance source set
// (sorted) as one canonical string.
func renderWithProvenance(tp core.Tuple, mode string, store *baseline.Store) string {
	v := tp.(*pTuple)
	s := fmt.Sprintf("%d/%s/%d", v.Timestamp(), v.Key, v.Val)
	var sources []core.Tuple
	switch mode {
	case "GL":
		sources = core.FindProvenance(tp)
	case "BL":
		sources = baseline.Resolver{Store: store}.Resolve(tp)
	default:
		return s
	}
	srcs := make([]string, 0, len(sources))
	for _, src := range sources {
		sv := src.(*pTuple)
		srcs = append(srcs, fmt.Sprintf("%d/%s/%d", sv.Timestamp(), sv.Key, sv.Val))
	}
	sort.Strings(srcs)
	return s + "<-" + strings.Join(srcs, ",")
}

// TestParallelAggregateIdenticalToSerial: for NP, GL and BL, a keyed
// aggregate at Parallelism(4) must emit the byte-identical sink sequence —
// same tuples, same order — and, under GL/BL, identical traversed
// provenance sets, as at Parallelism(1).
func TestParallelAggregateIdenticalToSerial(t *testing.T) {
	for _, mode := range []string{"NP", "GL", "BL"} {
		t.Run(mode, func(t *testing.T) {
			serial := runKeyedAggregate(t, mode, 1)
			if len(serial) == 0 {
				t.Fatal("serial run produced no sink tuples; test workload is broken")
			}
			parallel := runKeyedAggregate(t, mode, 4)
			if len(parallel) != len(serial) {
				t.Fatalf("parallel run emitted %d sink tuples, serial %d", len(parallel), len(serial))
			}
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("sink tuple %d differs:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
				}
			}
		})
	}
}

// TestParallelJoinIdenticalToSerial: an equi-join at Parallelism(4) must
// produce the same timestamp-sorted output multiset and provenance as
// serial execution (same-timestamp outputs may permute into key order).
func TestParallelJoinIdenticalToSerial(t *testing.T) {
	run := func(mode string, parallelism int) []string {
		instr, store := instrumenterForMode(mode)
		b := query.New("pjoin-"+mode, query.WithInstrumenter(instr), query.WithChannelCapacity(32))
		src := b.AddSource("src", parallelSource(400))
		mux := b.AddMultiplex("mux")
		join := b.AddJoin("join", ops.JoinSpec{
			WS:       3,
			LeftKey:  pKey,
			RightKey: pKey,
			Predicate: func(l, r core.Tuple) bool {
				return l.(*pTuple).Key == r.(*pTuple).Key && l.Timestamp() < r.Timestamp()
			},
			Combine: func(l, r core.Tuple) core.Tuple {
				return pt(0, l.(*pTuple).Key, l.(*pTuple).Val*1000+r.(*pTuple).Val)
			},
		}).Parallel(parallelism)
		var got []string
		sink := b.AddSink("sink", func(tp core.Tuple) error {
			got = append(got, renderWithProvenance(tp, mode, store))
			return nil
		})
		b.Connect(src, mux)
		b.ConnectPort(mux, join, query.PortLeft)
		b.ConnectPort(mux, join, query.PortRight)
		b.Connect(join, sink)
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return got
	}
	for _, mode := range []string{"NP", "GL", "BL"} {
		t.Run(mode, func(t *testing.T) {
			serial := run(mode, 1)
			if len(serial) == 0 {
				t.Fatal("serial run produced no sink tuples; test workload is broken")
			}
			parallel := run(mode, 4)
			if len(parallel) != len(serial) {
				t.Fatalf("parallel run emitted %d sink tuples, serial %d", len(parallel), len(serial))
			}
			sort.Strings(serial)
			sort.Strings(parallel)
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("output multiset differs at %d:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
				}
			}
		})
	}
}

// TestParallelCancelMidWindowDrains is the regression test for the shard
// fan-in's cancellation behaviour: cancelling the query context while
// windows are open and shard queues are full must not deadlock — every
// shard worker drains, closes its outputs and returns the context error.
// The batched variants exercise the same drain with multi-tuple stream
// batches: a cancelled operator must also dispose of its pending
// (unflushed) batch without blocking on a dead consumer.
func TestParallelCancelMidWindowDrains(t *testing.T) {
	for _, batch := range []int{1, 64} {
		t.Run("batch-"+strconv.Itoa(batch), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			b := query.New("cancel", query.WithInstrumenter(&core.Genealog{}),
				query.WithChannelCapacity(4), query.WithBatchSize(batch))
			src := b.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
				for i := 0; ; i++ {
					// Windows are huge (WS below), so the run is permanently
					// mid-window; cancel once the shard queues have filled.
					if i == 10_000 {
						cancel()
					}
					if err := emit(pt(int64(i), "k"+strconv.Itoa(i%8), int64(i))); err != nil {
						return err
					}
				}
			})
			agg := b.AddAggregate("agg", ops.AggregateSpec{
				WS: 1 << 40, WA: 1 << 40, Key: pKey,
				Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
					return pt(0, key, int64(len(w)))
				},
			}).Parallel(4)
			sink := b.AddSink("sink", nil)
			b.Connect(src, agg)
			b.Connect(agg, sink)
			q, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- q.Run(ctx) }()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Run returned %v, want a context.Canceled chain", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("query deadlocked after mid-window cancellation with Parallelism(4)")
			}
		})
	}
}

// TestParallelValidation: Build must reject parallelism on nodes that
// cannot be partitioned.
func TestParallelValidation(t *testing.T) {
	build := func(assemble func(b *query.Builder)) error {
		b := query.New("invalid")
		assemble(b)
		_, err := b.Build()
		return err
	}
	err := build(func(b *query.Builder) {
		src := b.AddSource("src", parallelSource(10))
		f := b.AddFilter("f", func(core.Tuple) bool { return true }).Parallel(4)
		b.Connect(src, f)
		b.Connect(f, b.AddSink("sink", nil))
	})
	if err == nil || !strings.Contains(err.Error(), "only supported on aggregate and join") {
		t.Fatalf("parallel filter: got %v, want unsupported-kind error", err)
	}
	err = build(func(b *query.Builder) {
		src := b.AddSource("src", parallelSource(10))
		a := b.AddAggregate("a", ops.AggregateSpec{
			WS: 2, WA: 2,
			Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple { return nil },
		}).Parallel(4)
		b.Connect(src, a)
		b.Connect(a, b.AddSink("sink", nil))
	})
	if err == nil || !strings.Contains(err.Error(), "Key is required") {
		t.Fatalf("parallel unkeyed aggregate: got %v, want missing-key error", err)
	}
}

// TestParallelizeStateful: the builder-wide helper must only touch nodes
// that can actually be partitioned.
func TestParallelizeStateful(t *testing.T) {
	b := query.New("helper")
	src := b.AddSource("src", parallelSource(10))
	keyed := b.AddAggregate("keyed", ops.AggregateSpec{
		WS: 2, WA: 2, Key: pKey,
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple { return w[0] },
	})
	unkeyed := b.AddAggregate("unkeyed", ops.AggregateSpec{
		WS: 2, WA: 2,
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple { return w[0] },
	})
	b.Connect(src, keyed)
	b.Connect(keyed, unkeyed)
	b.Connect(unkeyed, b.AddSink("sink", nil))
	b.ParallelizeStateful(4)
	if keyed.Parallelism != 4 {
		t.Fatalf("keyed aggregate parallelism = %d, want 4", keyed.Parallelism)
	}
	if unkeyed.Parallelism != 0 {
		t.Fatalf("unkeyed aggregate parallelism = %d, want 0 (serial)", unkeyed.Parallelism)
	}
	if _, err := b.Build(); err != nil {
		t.Fatalf("build after ParallelizeStateful: %v", err)
	}
}
