package query

import (
	"context"
	"testing"

	"genealog/internal/core"
)

func TestRouterForwardsByPredicate(t *testing.T) {
	b := New("router", WithInstrumenter(&core.Genealog{}))
	src := b.AddSource("src", sliceSource(30, 1))
	in, outs := AddRouter(b, "route",
		func(tp core.Tuple) bool { return tp.(*vTuple).Val%3 == 0 },
		func(tp core.Tuple) bool { return tp.(*vTuple).Val%3 == 1 },
		func(tp core.Tuple) bool { return tp.(*vTuple).Val >= 0 }, // catches all
	)
	b.Connect(src, in)
	counts := make([]int, len(outs))
	for i, out := range outs {
		i := i
		b.Connect(out, b.AddSink("k"+string(rune('0'+i)), func(core.Tuple) error {
			counts[i]++
			return nil
		}))
	}
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 10 || counts[1] != 10 || counts[2] != 30 {
		t.Fatalf("route counts = %v, want [10 10 30]", counts)
	}
}

func TestRouterProvenanceTracksThroughBranches(t *testing.T) {
	b := New("router-prov", WithInstrumenter(&core.Genealog{}))
	src := b.AddSource("src", sliceSource(10, 1))
	in, outs := AddRouter(b, "route",
		func(tp core.Tuple) bool { return true },
	)
	b.Connect(src, in)
	var got []core.Tuple
	b.Connect(outs[0], b.AddSink("k", func(tp core.Tuple) error {
		got = append(got, tp)
		return nil
	}))
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, tp := range got {
		prov := core.FindProvenance(tp)
		if len(prov) != 1 || core.MetaOf(prov[0]).Kind() != core.KindSource {
			t.Fatalf("router branch provenance = %v", prov)
		}
	}
}

func TestRouterWithoutPredicatesFailsBuild(t *testing.T) {
	b := New("bad-router")
	b.AddSink("k", nil)
	AddRouter(b, "route")
	if _, err := b.Build(); err == nil {
		t.Fatal("router without predicates must fail Build")
	}
}
