package query

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// runPipeline builds src -> map -> filter -> map -> sink with the given
// options and returns the sink payloads and, under GL, the traversed
// provenance size per sink tuple.
func runPipeline(t *testing.T, instr core.Instrumenter, fusion bool) (*Query, []string, []int) {
	t.Helper()
	b := New("pipe", WithInstrumenter(instr), WithFusion(fusion))
	src := b.AddSource("src", sliceSource(60, 1))
	m1 := b.AddMap("m1", func(tp core.Tuple, emit func(core.Tuple)) {
		v := tp.(*vTuple)
		emit(vt(v.Timestamp(), v.Key, v.Val*2))
	})
	f := b.AddFilter("f", func(tp core.Tuple) bool { return tp.(*vTuple).Val%4 == 0 })
	m2 := b.AddMap("m2", func(tp core.Tuple, emit func(core.Tuple)) {
		v := tp.(*vTuple)
		emit(vt(v.Timestamp(), v.Key, v.Val+1))
	})
	var sinks []string
	var prov []int
	k := b.AddSink("k", func(tp core.Tuple) error {
		sinks = append(sinks, renderV(tp.(*vTuple)))
		prov = append(prov, len(core.FindProvenance(tp)))
		return nil
	})
	b.Connect(src, m1)
	b.Connect(m1, f)
	b.Connect(f, m2)
	b.Connect(m2, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return q, sinks, prov
}

func renderV(v *vTuple) string {
	return v.Key + "/" + strconv.FormatInt(v.Timestamp(), 10) + "/" + strconv.FormatInt(v.Val, 10)
}

// TestPlannerFusesStatelessChains: with fusion on, the map-filter-map chain
// collapses into one operator; output and provenance are unchanged.
func TestPlannerFusesStatelessChains(t *testing.T) {
	fused, fs, fp := runPipeline(t, &core.Genealog{}, true)
	unfused, us, up := runPipeline(t, &core.Genealog{}, false)
	if got, want := len(fused.Operators()), 3; got != want {
		t.Fatalf("fused plan has %d operators, want %d (src, fused chain, sink)", got, want)
	}
	if got, want := len(unfused.Operators()), 5; got != want {
		t.Fatalf("unfused plan has %d operators, want %d", got, want)
	}
	if fused.FusedChains() != 1 || unfused.FusedChains() != 0 {
		t.Fatalf("FusedChains: fused %d (want 1), unfused %d (want 0)",
			fused.FusedChains(), unfused.FusedChains())
	}
	if len(fs) == 0 || len(fs) != len(us) {
		t.Fatalf("sink counts: fused %d, unfused %d", len(fs), len(us))
	}
	for i := range fs {
		if fs[i] != us[i] {
			t.Fatalf("sink %d differs: fused %s, unfused %s", i, fs[i], us[i])
		}
	}
	for i := range fp {
		if fp[i] != up[i] {
			t.Fatalf("provenance size %d differs: fused %d, unfused %d", i, fp[i], up[i])
		}
	}
	if !strings.Contains(fused.Explain(), "fused chain") {
		t.Fatalf("Explain misses the fused chain:\n%s", fused.Explain())
	}
	if !strings.Contains(unfused.Explain(), "fusion off") {
		t.Fatalf("Explain misses the fusion state:\n%s", unfused.Explain())
	}
}

// keyedAggPipeline builds src -> [stateless prefix] -> keyed agg(P) -> sink.
func keyedAggPipeline(t *testing.T, fusion bool, parallelism int, mapPrefix, declareKey bool) (*Query, []string) {
	t.Helper()
	b := New("hoist", WithInstrumenter(&core.Genealog{}), WithFusion(fusion))
	src := b.AddSource("src", sliceSource(200, 1))
	var prefix *Node
	if mapPrefix {
		prefix = b.AddMap("prefix", func(tp core.Tuple, emit func(core.Tuple)) {
			v := tp.(*vTuple)
			emit(vt(v.Timestamp(), v.Key, v.Val*3))
		})
		if declareKey {
			prefix.ShardKeyed(func(tp core.Tuple) string { return tp.(*vTuple).Key })
		}
	} else {
		prefix = b.AddFilter("prefix", func(tp core.Tuple) bool { return tp.(*vTuple).Val%5 != 0 })
	}
	agg := b.AddAggregate("agg", ops.AggregateSpec{
		WS: 8, WA: 4,
		Key: func(tp core.Tuple) string { return tp.(*vTuple).Key },
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			var sum int64
			for _, x := range w {
				sum += x.(*vTuple).Val
			}
			return vt(0, key, sum)
		},
	}).Parallel(parallelism)
	var sinks []string
	k := b.AddSink("k", func(tp core.Tuple) error {
		v := tp.(*vTuple)
		sinks = append(sinks, renderV(v))
		return nil
	})
	b.Connect(src, prefix)
	b.Connect(prefix, agg)
	b.Connect(agg, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return q, sinks
}

// TestPlannerHoistsFilterPrefix: a filter prefix of a Parallel aggregate is
// hoisted into the shard lanes without any declaration, and the output stays
// byte-identical to serial execution.
func TestPlannerHoistsFilterPrefix(t *testing.T) {
	serial, ss := keyedAggPipeline(t, true, 1, false, false)
	parallel, ps := keyedAggPipeline(t, true, 4, false, false)
	if serial.HoistedPrefixes() != 0 {
		t.Fatalf("serial plan hoisted %d prefixes, want 0", serial.HoistedPrefixes())
	}
	if parallel.HoistedPrefixes() != 1 {
		t.Fatalf("parallel plan hoisted %d prefixes, want 1\n%s", parallel.HoistedPrefixes(), parallel.Explain())
	}
	if !strings.Contains(parallel.Explain(), "hoisted above") {
		t.Fatalf("Explain misses the hoist:\n%s", parallel.Explain())
	}
	if len(ss) == 0 || len(ss) != len(ps) {
		t.Fatalf("sink counts: serial %d, parallel %d", len(ss), len(ps))
	}
	for i := range ss {
		if ss[i] != ps[i] {
			t.Fatalf("sink %d differs: serial %s, parallel %s", i, ss[i], ps[i])
		}
	}
}

// TestPlannerMapPrefixNeedsShardKey: a prefix containing a Map hoists only
// when its head declares the pre-prefix partition key; either way the output
// matches serial execution.
func TestPlannerMapPrefixNeedsShardKey(t *testing.T) {
	_, want := keyedAggPipeline(t, true, 1, true, false)
	undeclared, us := keyedAggPipeline(t, true, 4, true, false)
	if undeclared.HoistedPrefixes() != 0 {
		t.Fatalf("undeclared map prefix was hoisted:\n%s", undeclared.Explain())
	}
	declared, ds := keyedAggPipeline(t, true, 4, true, true)
	if declared.HoistedPrefixes() != 1 {
		t.Fatalf("declared map prefix was not hoisted:\n%s", declared.Explain())
	}
	for name, got := range map[string][]string{"undeclared": us, "declared": ds} {
		if len(got) != len(want) {
			t.Fatalf("%s: %d sink tuples, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: sink %d differs: got %s, want %s", name, i, got[i], want[i])
			}
		}
	}
}

// TestPlannerFusesPassThroughMuxAndUnion: a single-branch Multiplex and a
// single-input Union are legal chain stages; under GL the multiplex stage
// still clones, so provenance matches the unfused graph.
func TestPlannerFusesPassThroughMuxAndUnion(t *testing.T) {
	run := func(fusion bool) (*Query, []string, []int) {
		b := New("pass", WithInstrumenter(&core.Genealog{}), WithFusion(fusion))
		src := b.AddSource("src", sliceSource(30, 1))
		x := b.AddMultiplex("x")
		u := b.AddUnion("u")
		f := b.AddFilter("f", func(tp core.Tuple) bool { return tp.(*vTuple).Val%2 == 0 })
		var sinks []string
		var prov []int
		k := b.AddSink("k", func(tp core.Tuple) error {
			sinks = append(sinks, renderV(tp.(*vTuple)))
			prov = append(prov, len(core.FindProvenance(tp)))
			return nil
		})
		b.Connect(src, x)
		b.Connect(x, u)
		b.Connect(u, f)
		b.Connect(f, k)
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return q, sinks, prov
	}
	fused, fs, fp := run(true)
	_, us, up := run(false)
	if got, want := len(fused.Operators()), 3; got != want {
		t.Fatalf("fused plan has %d operators, want %d:\n%s", got, want, fused.Explain())
	}
	if len(fs) == 0 || len(fs) != len(us) {
		t.Fatalf("sink counts: fused %d, unfused %d", len(fs), len(us))
	}
	for i := range fs {
		if fs[i] != us[i] || fp[i] != up[i] {
			t.Fatalf("sink %d differs: fused %s/%d, unfused %s/%d", i, fs[i], fp[i], us[i], up[i])
		}
	}
}

// TestPlannerKeepsBranchingTopologies: a branching Multiplex and a merging
// Union must not fuse, and the diamond still runs correctly fused elsewhere.
func TestPlannerKeepsBranchingTopologies(t *testing.T) {
	b := New("diamond", WithInstrumenter(&core.Genealog{}))
	src := b.AddSource("src", sliceSource(20, 1))
	x := b.AddMultiplex("x")
	f1 := b.AddFilter("f1", func(tp core.Tuple) bool { return tp.(*vTuple).Val < 5 })
	f2 := b.AddFilter("f2", func(tp core.Tuple) bool { return tp.(*vTuple).Val >= 15 })
	u := b.AddUnion("u")
	var got int
	k := b.AddSink("k", func(core.Tuple) error { got++; return nil })
	b.Connect(src, x)
	b.Connect(x, f1)
	b.Connect(x, f2)
	b.Connect(f1, u)
	b.Connect(f2, u)
	b.Connect(u, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.FusedChains() != 0 {
		t.Fatalf("diamond fused %d chains, want 0:\n%s", q.FusedChains(), q.Explain())
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("diamond delivered %d tuples, want 10", got)
	}
}

// TestExplainListsEveryPhysicalOperator: the plan dump names each physical
// operator group exactly once.
func TestExplainListsEveryPhysicalOperator(t *testing.T) {
	q, _, _ := runPipeline(t, core.Noop{}, true)
	ex := q.Explain()
	for _, want := range []string{"physical plan", "src", "fused[m1+f+m2]", "k"} {
		if !strings.Contains(ex, want) {
			t.Fatalf("Explain misses %q:\n%s", want, ex)
		}
	}
}

// wTuple is a second tuple type for heterogeneous-stream tests.
type wTuple struct {
	core.Base
	Tag string
}

func (t *wTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

// typeGuardPipeline builds a heterogeneous source whose type-guard filter
// narrows the stream before a keyed Parallel aggregate. key selects the
// aggregate's key function; declared optionally sets a total ShardKey on
// the guard so the hoisted partitioner can route the mixed stream.
func typeGuardPipeline(t *testing.T, parallelism int, declared bool) (*Query, []string, error) {
	t.Helper()
	b := New("guard", WithInstrumenter(core.Noop{}))
	src := b.AddSource("src", func(ctx context.Context, emit func(tp core.Tuple) error) error {
		for i := 0; i < 120; i++ {
			var tp core.Tuple
			if i%3 == 0 {
				tp = &wTuple{Base: core.NewBase(int64(i)), Tag: "w"}
			} else {
				tp = vt(int64(i), "k"+strconv.Itoa(i%4), int64(i))
			}
			if err := emit(tp); err != nil {
				return err
			}
		}
		return nil
	})
	guard := b.AddFilter("guard", func(tp core.Tuple) bool {
		_, ok := tp.(*vTuple)
		return ok
	})
	if declared {
		guard.ShardKeyed(func(tp core.Tuple) string {
			if v, ok := tp.(*vTuple); ok {
				return v.Key
			}
			return "" // foreign tuples: any stable route, the guard drops them in-lane
		})
	}
	agg := b.AddAggregate("agg", ops.AggregateSpec{
		WS: 8, WA: 8,
		// The key type-asserts: it only ever sees post-guard tuples in the
		// unfused plan.
		Key: func(tp core.Tuple) string { return tp.(*vTuple).Key },
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			var sum int64
			for _, x := range w {
				sum += x.(*vTuple).Val
			}
			return vt(0, key, sum)
		},
	}).Parallel(parallelism)
	var sinks []string
	k := b.AddSink("k", func(tp core.Tuple) error {
		sinks = append(sinks, renderV(tp.(*vTuple)))
		return nil
	})
	b.Connect(src, guard)
	b.Connect(guard, agg)
	b.Connect(agg, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q, sinks, q.Run(context.Background())
}

// TestHoistedTypeGuardFilter: hoisting moves the partitioner's key onto the
// pre-filter stream. With a type-asserting key and no declared ShardKey the
// query must fail with a descriptive error (not crash the process); with a
// declared total ShardKey it must hoist and match the serial output.
func TestHoistedTypeGuardFilter(t *testing.T) {
	_, want, err := typeGuardPipeline(t, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial type-guard pipeline produced no sink tuples")
	}
	_, _, err = typeGuardPipeline(t, 4, false)
	if err == nil || !strings.Contains(err.Error(), "routing key panicked") {
		t.Fatalf("hoisted type-asserting key: err = %v, want a routing-key error", err)
	}
	q, got, err := typeGuardPipeline(t, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if q.HoistedPrefixes() != 1 {
		t.Fatalf("declared guard was not hoisted:\n%s", q.Explain())
	}
	if len(got) != len(want) {
		t.Fatalf("declared-key run: %d sink tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sink %d differs: got %s, want %s", i, got[i], want[i])
		}
	}
}
