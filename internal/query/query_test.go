package query

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"

	"genealog/internal/core"
	"genealog/internal/ops"
)

type vTuple struct {
	core.Base
	Key string
	Val int64
}

func vt(ts int64, key string, val int64) *vTuple {
	return &vTuple{Base: core.NewBase(ts), Key: key, Val: val}
}

func (t *vTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

func sliceSource(n int, step int64) ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		for i := 0; i < n; i++ {
			if err := emit(vt(int64(i)*step, "k"+strconv.Itoa(i%3), int64(i))); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestQueryLinearPipeline(t *testing.T) {
	b := New("lin", WithInstrumenter(&core.Genealog{}))
	src := b.AddSource("src", sliceSource(100, 1))
	f := b.AddFilter("f", func(tp core.Tuple) bool { return tp.(*vTuple).Val%2 == 0 })
	m := b.AddMap("m", func(tp core.Tuple, emit func(core.Tuple)) {
		emit(vt(tp.Timestamp(), "out", tp.(*vTuple).Val*10))
	})
	var got []core.Tuple
	k := b.AddSink("k", func(tp core.Tuple) error { got = append(got, tp); return nil })
	b.Connect(src, f)
	b.Connect(f, m)
	b.Connect(m, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("got %d sink tuples, want 50", len(got))
	}
	for _, tup := range got {
		prov := core.FindProvenance(tup)
		if len(prov) != 1 || core.MetaOf(prov[0]).Kind() != core.KindSource {
			t.Fatalf("provenance of %v wrong: %v", tup, prov)
		}
	}
}

func TestQueryMultiplexUnionDiamond(t *testing.T) {
	b := New("diamond", WithInstrumenter(&core.Genealog{}))
	src := b.AddSource("src", sliceSource(20, 1))
	x := b.AddMultiplex("x")
	f1 := b.AddFilter("f1", func(tp core.Tuple) bool { return tp.(*vTuple).Val < 5 })
	f2 := b.AddFilter("f2", func(tp core.Tuple) bool { return tp.(*vTuple).Val >= 15 })
	u := b.AddUnion("u")
	var got []core.Tuple
	k := b.AddSink("k", func(tp core.Tuple) error { got = append(got, tp); return nil })
	b.Connect(src, x)
	b.Connect(x, f1)
	b.Connect(x, f2)
	b.Connect(f1, u)
	b.Connect(f2, u)
	b.Connect(u, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d sink tuples, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Timestamp() < got[i-1].Timestamp() {
			t.Fatal("union output must stay timestamp-sorted")
		}
	}
	for _, tup := range got {
		prov := core.FindProvenance(tup)
		if len(prov) != 1 || core.MetaOf(prov[0]).Kind() != core.KindSource {
			t.Fatalf("diamond provenance wrong: %v", prov)
		}
	}
}

func TestQueryJoinPorts(t *testing.T) {
	b := New("join", WithInstrumenter(&core.Genealog{}))
	l := b.AddSource("l", sliceSource(10, 2))
	r := b.AddSource("r", sliceSource(10, 3))
	j := b.AddJoin("j", ops.JoinSpec{
		WS:        2,
		Predicate: func(l, r core.Tuple) bool { return true },
		Combine: func(l, r core.Tuple) core.Tuple {
			return vt(0, "j", l.(*vTuple).Val*100+r.(*vTuple).Val)
		},
	})
	var got []core.Tuple
	k := b.AddSink("k", func(tp core.Tuple) error { got = append(got, tp); return nil })
	b.ConnectPort(l, j, PortLeft)
	b.ConnectPort(r, j, PortRight)
	b.Connect(j, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("join produced no matches")
	}
	for _, tup := range got {
		if n := len(core.FindProvenance(tup)); n != 2 {
			t.Fatalf("join provenance = %d, want 2", n)
		}
	}
}

func TestQueryDeterministicAcrossRuns(t *testing.T) {
	run := func() []int64 {
		b := New("det", WithInstrumenter(&core.Genealog{}), WithChannelCapacity(4))
		s1 := b.AddSource("s1", sliceSource(200, 2))
		s2 := b.AddSource("s2", sliceSource(200, 3))
		u := b.AddUnion("u")
		a := b.AddAggregate("a", ops.AggregateSpec{
			WS: 12, WA: 4,
			Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
				var sum int64
				for _, x := range w {
					sum += x.(*vTuple).Val
				}
				return vt(0, key, sum)
			},
		})
		var got []int64
		k := b.AddSink("k", func(tp core.Tuple) error {
			got = append(got, tp.Timestamp()*1_000_000+tp.(*vTuple).Val)
			return nil
		})
		b.Connect(s1, u)
		b.Connect(s2, u)
		b.Connect(u, a)
		b.Connect(a, k)
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return got
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("run %d: %d outputs vs %d", i, len(again), len(first))
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d: output %d differs", i, j)
			}
		}
	}
}

func TestQueryValidationErrors(t *testing.T) {
	t.Run("duplicate name", func(t *testing.T) {
		b := New("dup")
		b.AddSource("x", sliceSource(1, 1))
		b.AddSink("x", nil)
		if _, err := b.Build(); err == nil {
			t.Fatal("duplicate names must fail Build")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		b := New("cycle")
		f1 := b.AddFilter("f1", func(core.Tuple) bool { return true })
		f2 := b.AddFilter("f2", func(core.Tuple) bool { return true })
		b.Connect(f1, f2)
		b.Connect(f2, f1)
		if _, err := b.Build(); err == nil {
			t.Fatal("cycles must fail Build")
		}
	})
	t.Run("source with input", func(t *testing.T) {
		b := New("badsrc")
		s := b.AddSource("s", sliceSource(1, 1))
		s2 := b.AddSource("s2", sliceSource(1, 1))
		b.Connect(s2, s)
		if _, err := b.Build(); err == nil {
			t.Fatal("source with an input must fail Build")
		}
	})
	t.Run("join without ports", func(t *testing.T) {
		b := New("badjoin")
		l := b.AddSource("l", sliceSource(1, 1))
		r := b.AddSource("r", sliceSource(1, 1))
		j := b.AddJoin("j", ops.JoinSpec{
			WS:        1,
			Predicate: func(l, r core.Tuple) bool { return true },
			Combine:   func(l, r core.Tuple) core.Tuple { return nil },
		})
		k := b.AddSink("k", nil)
		b.Connect(l, j)
		b.Connect(r, j)
		b.Connect(j, k)
		if _, err := b.Build(); err == nil {
			t.Fatal("join inputs without named ports must fail Build")
		}
	})
	t.Run("empty query", func(t *testing.T) {
		if _, err := New("empty").Build(); err == nil {
			t.Fatal("empty query must fail Build")
		}
	})
	t.Run("foreign node", func(t *testing.T) {
		other := New("other")
		foreign := other.AddSink("k", nil)
		b := New("foreign")
		src := b.AddSource("src", sliceSource(1, 1))
		b.Connect(src, foreign)
		_, err := b.Build()
		if err == nil {
			t.Fatal("an edge to another builder's node must fail Build")
		}
		if !strings.Contains(err.Error(), "was not added to this builder") {
			t.Fatalf("foreign-node error = %v, want a not-added message", err)
		}
	})
	t.Run("foreign node shadowing a registered name", func(t *testing.T) {
		// A foreign node whose name collides with a registered one must
		// still be rejected: the name matches, the node does not.
		other := New("other")
		foreign := other.AddFilter("f", func(core.Tuple) bool { return true })
		b := New("shadow")
		src := b.AddSource("src", sliceSource(1, 1))
		b.AddFilter("f", func(core.Tuple) bool { return true }) // registered "f"
		b.Connect(src, foreign)
		if _, err := b.Build(); err == nil {
			t.Fatal("a foreign node shadowing a registered name must fail Build")
		}
	})
	t.Run("never-connected foreign source", func(t *testing.T) {
		other := New("other")
		foreign := other.AddSource("s2", sliceSource(1, 1))
		b := New("fsrc")
		k := b.AddSink("k", nil)
		b.Connect(foreign, k)
		if _, err := b.Build(); err == nil {
			t.Fatal("an edge from another builder's node must fail Build")
		}
	})
	t.Run("duplicate input port", func(t *testing.T) {
		b := New("dupport")
		l := b.AddSource("l", sliceSource(1, 1))
		r := b.AddSource("r", sliceSource(1, 1))
		j := b.AddJoin("j", ops.JoinSpec{
			WS:        1,
			Predicate: func(l, r core.Tuple) bool { return true },
			Combine:   func(l, r core.Tuple) core.Tuple { return nil },
		})
		b.ConnectPort(l, j, PortLeft)
		b.ConnectPort(r, j, PortLeft)
		b.Connect(j, b.AddSink("k", nil))
		_, err := b.Build()
		if err == nil {
			t.Fatal("two edges on one input port must fail Build")
		}
		if !strings.Contains(err.Error(), "duplicate input port") {
			t.Fatalf("duplicate-port error = %v, want a duplicate-port message", err)
		}
	})
	t.Run("custom wrong arity", func(t *testing.T) {
		b := New("arity")
		src := b.AddSource("src", sliceSource(1, 1))
		c := b.AddCustom("c", 2, 1, func(ins, outs []*ops.Stream) (ops.Operator, error) {
			t.Fatal("factory must not run on arity mismatch")
			return nil, nil
		})
		b.Connect(src, c)
		b.Connect(c, b.AddSink("k", nil))
		if _, err := b.Build(); err == nil {
			t.Fatal("a custom node with too few inputs must fail Build")
		}
	})
	t.Run("parallelism on stateless node", func(t *testing.T) {
		b := New("badpar")
		src := b.AddSource("src", sliceSource(1, 1))
		f := b.AddFilter("f", func(core.Tuple) bool { return true }).Parallel(4)
		b.Connect(src, f)
		b.Connect(f, b.AddSink("k", nil))
		if _, err := b.Build(); err == nil {
			t.Fatal("Parallel on a filter must fail Build")
		}
	})
	t.Run("nil connect", func(t *testing.T) {
		b := New("nil")
		b.Connect(nil, nil)
		b.AddSink("k", nil)
		if _, err := b.Build(); err == nil {
			t.Fatal("nil connect must fail Build")
		}
	})
}

func TestQueryOperatorErrorCancelsRun(t *testing.T) {
	boom := errors.New("boom")
	b := New("err")
	src := b.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for i := 0; ; i++ { // unbounded: only the sink error stops it
			if err := emit(vt(int64(i), "k", 0)); err != nil {
				return nil // cancelled by the failing sink
			}
		}
	})
	n := 0
	k := b.AddSink("k", func(core.Tuple) error {
		n++
		if n > 10 {
			return boom
		}
		return nil
	})
	b.Connect(src, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run err = %v, want boom", err)
	}
}

func TestQueryContextCancellation(t *testing.T) {
	b := New("cancel")
	src := b.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for i := 0; ; i++ {
			if err := emit(vt(int64(i), "k", 0)); err != nil {
				return err
			}
		}
	})
	k := b.AddSink("k", nil)
	b.Connect(src, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- q.Run(ctx) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
}

func TestQueryCustomOperator(t *testing.T) {
	b := New("custom")
	src := b.AddSource("src", sliceSource(5, 1))
	// A pass-through custom operator.
	c := b.AddCustom("c", 1, 1, func(ins, outs []*ops.Stream) (ops.Operator, error) {
		return ops.NewFilter("c", ins[0], outs[0], func(core.Tuple) bool { return true }), nil
	})
	var got int
	k := b.AddSink("k", func(core.Tuple) error { got++; return nil })
	b.Connect(src, c)
	b.Connect(c, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("custom pipeline delivered %d tuples, want 5", got)
	}
}

func TestNodeKindString(t *testing.T) {
	kinds := []NodeKind{KindSource, KindSink, KindMap, KindFilter, KindMultiplex, KindUnion, KindAggregate, KindJoin, KindCustom, NodeKind(0)}
	want := []string{"source", "sink", "map", "filter", "multiplex", "union", "aggregate", "join", "custom", "invalid"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d String = %q, want %q", i, k.String(), want[i])
		}
	}
}
