package query

import (
	"fmt"

	"genealog/internal/core"
)

// AddRouter adds the paper's §2 routing operator: it forwards each input
// tuple to the output branches whose predicates accept it, built — exactly
// as the paper describes — "by combining a Multiplex and several Filter
// operators". It returns the composite's input node (connect the routed
// stream to it) and one output node per predicate, in order.
//
// Because the composite is made of standard operators, provenance holds
// unchanged: under GL each accepted branch copy is a MULTIPLEX-typed tuple
// pointing at the routed input.
func AddRouter(b *Builder, name string, preds ...func(core.Tuple) bool) (in *Node, outs []*Node) {
	if len(preds) == 0 {
		b.fail(fmt.Errorf("router %q: needs at least one predicate", name))
		return nil, nil
	}
	mux := b.AddMultiplex(name + ".mux")
	outs = make([]*Node, len(preds))
	for i, pred := range preds {
		f := b.AddFilter(fmt.Sprintf("%s.route-%d", name, i), pred)
		b.Connect(mux, f)
		outs[i] = f
	}
	return mux, outs
}
