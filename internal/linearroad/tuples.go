// Package linearroad implements the paper's vehicular use cases: a
// deterministic Linear Road-style position-report generator (one expressway,
// reports every 30 s, §7) and the two queries built on it — Q1, detecting
// broken-down cars (Fig. 1), and Q2, detecting accidents (Fig. 9) — with
// intra-process and distributed (Figs. 7, 9C) deployments.
package linearroad

import (
	"sync"

	"genealog/internal/core"
	"genealog/internal/transport"
)

// ReportPeriod is the position-report interval in seconds (the benchmark's
// 30 s cadence).
const ReportPeriod = 30

// Query window parameters (Figs. 1 and 9).
const (
	// Q1WindowSize and Q1WindowAdvance are the per-car aggregation window
	// (120 s / 30 s): four consecutive reports per full window.
	Q1WindowSize    = 120
	Q1WindowAdvance = 30
	// Q2WindowSize and Q2WindowAdvance aggregate stopped-car tuples per
	// position (30 s tumbling).
	Q2WindowSize    = 30
	Q2WindowAdvance = 30
	// StopReports is how many consecutive zero-speed same-position reports
	// define a stopped car.
	StopReports = 4
	// AccidentCars is how many stopped cars at one position define an
	// accident.
	AccidentCars = 2
)

// MU join windows for the distributed deployments (§6.1: the sum of the
// stateful operators' window sizes at the instance producing the derived
// stream).
const (
	// MUWindowQ1 covers SPE instance 2's Aggregate (WS=120).
	MUWindowQ1 = Q1WindowSize
	// MUWindowQ2 covers SPE instance 2's Aggregate (WS=30).
	MUWindowQ2 = Q2WindowSize
)

// PositionReport is the source tuple: ⟨ts, car_id, speed, pos⟩ (§2). The
// benchmark's several position attributes are collapsed into one, as in the
// paper's presentation.
type PositionReport struct {
	core.Base
	CarID int32
	Speed int32
	Pos   int32
}

// NewPositionReport returns a position report at event time ts.
func NewPositionReport(ts int64, car, speed, pos int32) *PositionReport {
	return &PositionReport{Base: core.NewBase(ts), CarID: car, Speed: speed, Pos: pos}
}

// CloneTuple implements core.Cloneable.
func (p *PositionReport) CloneTuple() core.Tuple {
	cp := *p
	cp.ResetProvenance()
	return &cp
}

// ApproxBytes implements baseline.Sized.
func (p *PositionReport) ApproxBytes() int { return 8 + 3*4 }

// StoppedCar is Q1's aggregate output: per-car window statistics with the
// extra last_pos field Q2 groups by (paper footnote 4).
type StoppedCar struct {
	core.Base
	CarID       int32
	Count       int32
	DistinctPos int32
	LastPos     int32
}

// CloneTuple implements core.Cloneable.
func (s *StoppedCar) CloneTuple() core.Tuple {
	cp := *s
	cp.ResetProvenance()
	return &cp
}

// ApproxBytes implements baseline.Sized.
func (s *StoppedCar) ApproxBytes() int { return 8 + 4*4 }

// AccidentAlert is Q2's sink tuple: the number of stopped cars observed at
// one position in one window.
type AccidentAlert struct {
	core.Base
	Pos   int32
	Count int32
}

// CloneTuple implements core.Cloneable.
func (a *AccidentAlert) CloneTuple() core.Tuple {
	cp := *a
	cp.ResetProvenance()
	return &cp
}

// ApproxBytes implements baseline.Sized.
func (a *AccidentAlert) ApproxBytes() int { return 8 + 2*4 }

var registerOnce sync.Once

// RegisterWire registers the package's tuple types with both transport
// codecs (gob and binary). Safe to call multiple times.
func RegisterWire() {
	registerOnce.Do(func() {
		transport.Register(&PositionReport{})
		transport.Register(&StoppedCar{})
		transport.Register(&AccidentAlert{})
		transport.RegisterBinary(tagPositionReport, func() transport.WireTuple { return &PositionReport{} })
		transport.RegisterBinary(tagStoppedCar, func() transport.WireTuple { return &StoppedCar{} })
		transport.RegisterBinary(tagAccidentAlert, func() transport.WireTuple { return &AccidentAlert{} })
	})
}
