package linearroad

import (
	"strconv"

	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
)

// AddQ1Stage1 appends Q1's stateless prefix — the speed==0 Filter — to the
// builder. In the distributed deployment (Fig. 7) this stage runs at SPE
// instance 1, next to the Source.
func AddQ1Stage1(b *query.Builder, from *query.Node) *query.Node {
	f := b.AddFilter("q1.zero-speed", func(t core.Tuple) bool {
		return t.(*PositionReport).Speed == 0
	}).Columnar(query.ColSpec{Schema: PositionReportSchema, Filter: filterZeroSpeed})
	b.Connect(from, f)
	return f
}

// AddQ1Stage2 appends Q1's stateful suffix — the per-car 120 s/30 s
// Aggregate and the stopped-car Filter — producing *StoppedCar alerts. In
// the distributed deployment this stage runs at SPE instance 2.
func AddQ1Stage2(b *query.Builder, from *query.Node) *query.Node {
	agg := b.AddAggregate("q1.window", ops.AggregateSpec{
		WS:  Q1WindowSize,
		WA:  Q1WindowAdvance,
		Key: func(t core.Tuple) string { return strconv.Itoa(int(t.(*PositionReport).CarID)) },
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			out := &StoppedCar{Base: core.NewBase(start)}
			distinct := make(map[int32]struct{}, 2)
			for _, t := range w {
				p := t.(*PositionReport)
				out.Count++
				out.LastPos = p.Pos
				out.CarID = p.CarID
				distinct[p.Pos] = struct{}{}
			}
			out.DistinctPos = int32(len(distinct))
			return out
		},
	}).ColumnarAgg(query.AggColSpec{Schema: PositionReportSchema, Key: keyCarID, Fold: foldStoppedCar})
	stopped := b.AddFilter("q1.stopped", func(t core.Tuple) bool {
		s := t.(*StoppedCar)
		return s.Count == StopReports && s.DistinctPos == 1
	}).Columnar(query.ColSpec{Schema: StoppedCarSchema, Filter: filterStopped})
	b.Connect(from, agg)
	b.Connect(agg, stopped)
	return stopped
}

// AddQ1 appends the whole broken-down-car query (Fig. 1) and returns its
// final node, which emits *StoppedCar sink tuples. Each sink tuple's
// provenance is the car's StopReports position reports (4 source tuples).
func AddQ1(b *query.Builder, from *query.Node) *query.Node {
	return AddQ1Stage2(b, AddQ1Stage1(b, from))
}

// AddQ2Stage2 appends Q2's second stage — the per-position 30 s Aggregate
// counting stopped cars and the >= AccidentCars Filter — producing
// *AccidentAlert sink tuples. In the distributed deployment (Fig. 9C) this
// stage runs at SPE instance 2, after the whole of Q1 at instance 1.
func AddQ2Stage2(b *query.Builder, from *query.Node) *query.Node {
	agg := b.AddAggregate("q2.window", ops.AggregateSpec{
		WS:  Q2WindowSize,
		WA:  Q2WindowAdvance,
		Key: func(t core.Tuple) string { return strconv.Itoa(int(t.(*StoppedCar).LastPos)) },
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			out := &AccidentAlert{Base: core.NewBase(start)}
			for _, t := range w {
				s := t.(*StoppedCar)
				out.Count++
				out.Pos = s.LastPos
			}
			return out
		},
	}).ColumnarAgg(query.AggColSpec{Schema: StoppedCarSchema, Key: keyLastPos, Fold: foldAccidentAlert})
	accident := b.AddFilter("q2.accident", func(t core.Tuple) bool {
		return t.(*AccidentAlert).Count >= AccidentCars
	}).Columnar(query.ColSpec{Schema: AccidentAlertSchema, Filter: filterAccident})
	b.Connect(from, agg)
	b.Connect(agg, accident)
	return accident
}

// AddQ2 appends the whole accident-detection query (Fig. 9): Q1 followed by
// the per-position stopped-car count. Each *AccidentAlert's provenance is
// AccidentCars * StopReports source tuples (8 in the paper's setting).
func AddQ2(b *query.Builder, from *query.Node) *query.Node {
	return AddQ2Stage2(b, AddQ1(b, from))
}
