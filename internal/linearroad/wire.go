package linearroad

import (
	"genealog/internal/transport"
)

// Binary wire tags for the Linear Road tuple types (stable across the
// deployment; 1-9 reserved for this package).
const (
	tagPositionReport uint16 = 1
	tagStoppedCar     uint16 = 2
	tagAccidentAlert  uint16 = 3
)

var (
	_ transport.WireTuple = (*PositionReport)(nil)
	_ transport.WireTuple = (*StoppedCar)(nil)
	_ transport.WireTuple = (*AccidentAlert)(nil)
)

// MarshalWire implements transport.WireTuple.
func (p *PositionReport) MarshalWire(buf []byte) ([]byte, error) {
	buf = transport.AppendInt32(buf, p.CarID)
	buf = transport.AppendInt32(buf, p.Speed)
	buf = transport.AppendInt32(buf, p.Pos)
	return buf, nil
}

// UnmarshalWire implements transport.WireTuple.
func (p *PositionReport) UnmarshalWire(data []byte) error {
	var err error
	if p.CarID, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	if p.Speed, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	p.Pos, _, err = transport.ReadInt32(data)
	return err
}

// MarshalWire implements transport.WireTuple.
func (s *StoppedCar) MarshalWire(buf []byte) ([]byte, error) {
	buf = transport.AppendInt32(buf, s.CarID)
	buf = transport.AppendInt32(buf, s.Count)
	buf = transport.AppendInt32(buf, s.DistinctPos)
	buf = transport.AppendInt32(buf, s.LastPos)
	return buf, nil
}

// UnmarshalWire implements transport.WireTuple.
func (s *StoppedCar) UnmarshalWire(data []byte) error {
	var err error
	if s.CarID, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	if s.Count, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	if s.DistinctPos, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	s.LastPos, _, err = transport.ReadInt32(data)
	return err
}

// MarshalWire implements transport.WireTuple.
func (a *AccidentAlert) MarshalWire(buf []byte) ([]byte, error) {
	buf = transport.AppendInt32(buf, a.Pos)
	buf = transport.AppendInt32(buf, a.Count)
	return buf, nil
}

// UnmarshalWire implements transport.WireTuple.
func (a *AccidentAlert) UnmarshalWire(data []byte) error {
	var err error
	if a.Pos, data, err = transport.ReadInt32(data); err != nil {
		return err
	}
	a.Count, _, err = transport.ReadInt32(data)
	return err
}
