package linearroad

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/query"
)

// runQuery builds source -> addQuery -> SU -> sink and returns the sink
// tuples and the per-sink provenance results.
func runQuery(t *testing.T, gen ops.SourceFunc, instr core.Instrumenter,
	addQuery func(*query.Builder, *query.Node) *query.Node) ([]core.Tuple, []provenance.Result) {
	t.Helper()
	b := query.New("lr", query.WithInstrumenter(instr))
	src := b.AddSource("src", gen)
	last := addQuery(b, src)
	so, u := provenance.AddSU(b, "su", last, provenance.SUConfig{})
	var sunk []core.Tuple
	b.Connect(so, b.AddSink("k", func(tp core.Tuple) error { sunk = append(sunk, tp); return nil }))
	var results []provenance.Result
	provenance.AddCollector(b, "prov", u, func(r provenance.Result) { results = append(results, r) })
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sunk, results
}

// stopScenario emits reports for 2 cars: car 0 drives normally, car 1 stops
// at position 500 for `stops` consecutive reports starting at step 4.
func stopScenario(steps, stops int) ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		for s := 0; s < steps; s++ {
			ts := int64(s) * ReportPeriod
			if err := emit(NewPositionReport(ts, 0, 80, int32(1000+s*80))); err != nil {
				return err
			}
			speed, pos := int32(60), int32(500+s*60)
			if s >= 4 && s < 4+stops {
				speed, pos = 0, 500+4*60
			}
			if err := emit(NewPositionReport(ts, 1, speed, pos)); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestQ1DetectsStoppedCar(t *testing.T) {
	// Car 1 stops for exactly 4 reports (steps 4..7): exactly one window
	// ([120,240), start step 4) holds 4 zero-speed same-position reports.
	sunk, results := runQuery(t, stopScenario(16, 4), &core.Genealog{}, AddQ1)
	if len(sunk) != 1 {
		t.Fatalf("Q1 alerts = %d, want 1", len(sunk))
	}
	alert := sunk[0].(*StoppedCar)
	if alert.CarID != 1 || alert.Count != 4 || alert.DistinctPos != 1 {
		t.Fatalf("alert = %+v", alert)
	}
	if alert.Timestamp() != 4*ReportPeriod {
		t.Fatalf("alert ts = %d, want %d", alert.Timestamp(), 4*ReportPeriod)
	}
	if len(results) != 1 {
		t.Fatalf("provenance results = %d, want 1", len(results))
	}
	r := results[0]
	if len(r.Sources) != StopReports {
		t.Fatalf("provenance size = %d, want %d", len(r.Sources), StopReports)
	}
	provenance.SortSourcesByTs(&r)
	for i, s := range r.Sources {
		p := s.(*PositionReport)
		if p.CarID != 1 || p.Speed != 0 {
			t.Fatalf("source %d = %+v, want car 1 stopped", i, p)
		}
		if p.Timestamp() != int64(4+i)*ReportPeriod {
			t.Fatalf("source %d ts = %d, want %d", i, p.Timestamp(), int64(4+i)*ReportPeriod)
		}
	}
}

func TestQ1LongerStopYieldsSlidingAlerts(t *testing.T) {
	// Stopped for 6 reports -> windows starting at steps 4, 5, 6 all hold
	// exactly 4 zero reports: 3 alerts.
	sunk, results := runQuery(t, stopScenario(20, 6), &core.Genealog{}, AddQ1)
	if len(sunk) != 3 {
		t.Fatalf("Q1 alerts = %d, want 3", len(sunk))
	}
	for _, r := range results {
		if len(r.Sources) != StopReports {
			t.Fatalf("provenance size = %d, want %d", len(r.Sources), StopReports)
		}
	}
}

func TestQ1NoAlertForShortStop(t *testing.T) {
	sunk, _ := runQuery(t, stopScenario(16, 3), &core.Genealog{}, AddQ1)
	if len(sunk) != 0 {
		t.Fatalf("Q1 alerts = %d, want 0 for a 3-report stop", len(sunk))
	}
}

// accidentScenario stops cars 1 and 2 at the same position for 4 reports
// starting at step 4; car 0 keeps driving.
func accidentScenario(steps int) ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		for s := 0; s < steps; s++ {
			ts := int64(s) * ReportPeriod
			if err := emit(NewPositionReport(ts, 0, 80, int32(1000+s*80))); err != nil {
				return err
			}
			for car := int32(1); car <= 2; car++ {
				speed, pos := int32(60), int32(500+int32(s)*60+car)
				if s >= 4 && s < 8 {
					speed, pos = 0, 777
				}
				if err := emit(NewPositionReport(ts, car, speed, pos)); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func TestQ2DetectsAccident(t *testing.T) {
	sunk, results := runQuery(t, accidentScenario(16), &core.Genealog{}, AddQ2)
	if len(sunk) != 1 {
		t.Fatalf("Q2 alerts = %d, want 1", len(sunk))
	}
	alert := sunk[0].(*AccidentAlert)
	if alert.Count != 2 || alert.Pos != 777 {
		t.Fatalf("alert = %+v", alert)
	}
	if len(results) != 1 {
		t.Fatalf("provenance results = %d, want 1", len(results))
	}
	// 2 cars x 4 reports = 8 source tuples, the paper's Fig. 9B.
	if len(results[0].Sources) != AccidentCars*StopReports {
		t.Fatalf("provenance size = %d, want %d", len(results[0].Sources), AccidentCars*StopReports)
	}
	cars := map[int32]int{}
	for _, s := range results[0].Sources {
		cars[s.(*PositionReport).CarID]++
	}
	if cars[1] != 4 || cars[2] != 4 {
		t.Fatalf("per-car contributions = %v, want 4 each for cars 1,2", cars)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	collect := func() []string {
		g := NewGenerator(Config{Cars: 10, Steps: 40, StopEvery: 5, StopDuration: 5, AccidentEvery: 13, Seed: 3})
		var out []string
		err := g.SourceFunc()(context.Background(), func(tp core.Tuple) error {
			p := tp.(*PositionReport)
			out = append(out, fmt.Sprintf("%d/%d/%d/%d", p.Timestamp(), p.CarID, p.Speed, p.Pos))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != 400 {
		t.Fatalf("generated %d tuples, want 400", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator not deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestGeneratorTimestampSorted(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	last := int64(-1)
	err := g.SourceFunc()(context.Background(), func(tp core.Tuple) error {
		if tp.Timestamp() < last {
			t.Fatalf("timestamps regress: %d after %d", tp.Timestamp(), last)
		}
		last = tp.Timestamp()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Tuples() != DefaultConfig().Cars*DefaultConfig().Steps {
		t.Fatalf("Tuples() = %d", g.Tuples())
	}
}

func TestGeneratorProducesAlerts(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	sunk1, _ := runQuery(t, g.SourceFunc(), &core.Genealog{}, AddQ1)
	if len(sunk1) == 0 {
		t.Fatal("default workload must produce Q1 alerts")
	}
	sunk2, results2 := runQuery(t, NewGenerator(DefaultConfig()).SourceFunc(), &core.Genealog{}, AddQ2)
	if len(sunk2) == 0 {
		t.Fatal("default workload must produce Q2 alerts")
	}
	for _, r := range results2 {
		if len(r.Sources)%StopReports != 0 || len(r.Sources) < AccidentCars*StopReports {
			t.Fatalf("Q2 provenance size = %d, want a multiple of 4, >= 8", len(r.Sources))
		}
	}
}

// canonical renders provenance results in a stable, technique-independent
// form for equivalence checks.
func canonical(results []provenance.Result) []string {
	out := make([]string, 0, len(results))
	for _, r := range results {
		var ids []string
		for _, s := range r.Sources {
			p := s.(*PositionReport)
			ids = append(ids, fmt.Sprintf("%d/%d", p.Timestamp(), p.CarID))
		}
		sort.Strings(ids)
		out = append(out, fmt.Sprintf("%d:%v", r.Sink.Timestamp(), ids))
	}
	sort.Strings(out)
	return out
}

// TestQ1Q2GenealogMatchesBaseline cross-checks GL provenance against the BL
// (Ariadne-style) technique on the default workload.
func TestQ1Q2GenealogMatchesBaseline(t *testing.T) {
	for _, tc := range []struct {
		name string
		add  func(*query.Builder, *query.Node) *query.Node
	}{
		{"Q1", AddQ1},
		{"Q2", AddQ2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gen := NewGenerator(DefaultConfig())
			_, glResults := runQuery(t, gen.SourceFunc(), &core.Genealog{}, tc.add)

			store := baseline.NewStore()
			blInstr := &baseline.Instrumenter{IDs: core.NewIDGen(1), Store: store}
			b := query.New("bl", query.WithInstrumenter(blInstr))
			src := b.AddSource("src", NewGenerator(DefaultConfig()).SourceFunc())
			last := tc.add(b, src)
			var blResults []provenance.Result
			b.Connect(last, b.AddSink("k", func(tp core.Tuple) error {
				srcs := baseline.Resolver{Store: store}.Resolve(tp)
				blResults = append(blResults, provenance.Result{Sink: tp, Sources: srcs})
				return nil
			}))
			q, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Run(context.Background()); err != nil {
				t.Fatal(err)
			}

			gl, bl := canonical(glResults), canonical(blResults)
			if len(gl) == 0 {
				t.Fatal("no provenance results to compare")
			}
			if len(gl) != len(bl) {
				t.Fatalf("GL %d results, BL %d", len(gl), len(bl))
			}
			for i := range gl {
				if gl[i] != bl[i] {
					t.Fatalf("provenance mismatch at %d:\nGL: %s\nBL: %s", i, gl[i], bl[i])
				}
			}
		})
	}
}
