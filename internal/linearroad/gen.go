package linearroad

import (
	"context"
	"math/rand"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// Config parameterises the deterministic Linear Road traffic generator. The
// generator simulates one expressway: every car emits a position report each
// ReportPeriod seconds; breakdowns (one car stopping) and accidents (two
// cars stopped at the same position) are injected on a fixed schedule so
// runs are reproducible and alert counts are predictable.
type Config struct {
	// Cars is the number of vehicles on the expressway.
	Cars int
	// Steps is the number of 30-second reporting rounds to generate
	// (Cars*Steps source tuples in total).
	Steps int
	// StopEvery injects a breakdown every StopEvery steps (0 disables).
	StopEvery int
	// StopDuration is how many consecutive reports a broken-down car stays
	// stopped (>= StopReports triggers Q1 alerts).
	StopDuration int
	// AccidentEvery injects a two-car accident every AccidentEvery steps
	// (0 disables).
	AccidentEvery int
	// Seed drives all pseudo-random choices.
	Seed int64
}

// DefaultConfig returns the workload used by the experiment harness: a
// steady stream with regular breakdowns and occasional accidents.
func DefaultConfig() Config {
	return Config{
		Cars:          50,
		Steps:         200,
		StopEvery:     5,
		StopDuration:  6,
		AccidentEvery: 20,
		Seed:          42,
	}
}

// Generator produces the position-report stream.
type Generator struct {
	cfg Config
}

// NewGenerator returns a generator for the given configuration. Zero or
// negative core fields fall back to DefaultConfig values.
func NewGenerator(cfg Config) *Generator {
	def := DefaultConfig()
	if cfg.Cars <= 0 {
		cfg.Cars = def.Cars
	}
	if cfg.Steps <= 0 {
		cfg.Steps = def.Steps
	}
	if cfg.StopDuration <= 0 {
		cfg.StopDuration = def.StopDuration
	}
	return &Generator{cfg: cfg}
}

// Tuples returns the total number of source tuples the generator emits.
func (g *Generator) Tuples() int { return g.cfg.Cars * g.cfg.Steps }

type carState struct {
	pos         int32
	speed       int32
	stoppedLeft int // remaining zero-speed reports
}

// SourceFunc returns the ops.SourceFunc emitting the timestamp-sorted
// position reports.
func (g *Generator) SourceFunc() ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		rng := rand.New(rand.NewSource(g.cfg.Seed))
		cars := make([]carState, g.cfg.Cars)
		for i := range cars {
			cars[i] = carState{pos: int32(rng.Intn(10000)), speed: 40 + int32(rng.Intn(60))}
		}
		for step := 0; step < g.cfg.Steps; step++ {
			g.inject(rng, cars, step)
			ts := int64(step) * ReportPeriod
			for i := range cars {
				c := &cars[i]
				speed := c.speed
				if c.stoppedLeft > 0 {
					speed = 0
					c.stoppedLeft--
				} else {
					// Drive on: advance position, drift speed.
					c.pos += c.speed
					c.speed += int32(rng.Intn(11)) - 5
					if c.speed < 30 {
						c.speed = 30
					}
					if c.speed > 120 {
						c.speed = 120
					}
				}
				if err := emit(NewPositionReport(ts, int32(i), speed, c.pos)); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// inject applies the breakdown/accident schedule at the given step.
func (g *Generator) inject(rng *rand.Rand, cars []carState, step int) {
	if g.cfg.StopEvery > 0 && step > 0 && step%g.cfg.StopEvery == 0 {
		if car := g.pickMoving(rng, cars); car >= 0 {
			cars[car].stoppedLeft = g.cfg.StopDuration
		}
	}
	if g.cfg.AccidentEvery > 0 && step > 0 && step%g.cfg.AccidentEvery == 0 {
		a := g.pickMoving(rng, cars)
		b := g.pickMoving(rng, cars)
		if a >= 0 && b >= 0 && a != b {
			// Both cars stop at the same position: an accident.
			cars[b].pos = cars[a].pos
			cars[a].stoppedLeft = g.cfg.StopDuration
			cars[b].stoppedLeft = g.cfg.StopDuration
		}
	}
}

// pickMoving returns a random car that is currently driving, or -1.
func (g *Generator) pickMoving(rng *rand.Rand, cars []carState) int {
	for attempt := 0; attempt < 8; attempt++ {
		i := rng.Intn(len(cars))
		if cars[i].stoppedLeft == 0 {
			return i
		}
	}
	return -1
}
