package linearroad

import (
	"strconv"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// This file declares the columnar schemas and typed kernels of the Linear
// Road tuple types, letting the planner run Q1/Q2's stateless stages on the
// vectorized runtime (ops.ColChain), fold their aggregate windows over
// columnar window state (ops.ColAggregate), and extract shard routing keys
// batch-wise. Each schema covers every payload field of its tuple type, so
// one extraction pass serves any kernel over that type.

// Field indices into PositionReportSchema.
const (
	posFieldCar = iota
	posFieldSpeed
	posFieldPos
)

// PositionReportSchema is the columnar schema of *PositionReport.
var PositionReportSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "car", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*PositionReport).CarID) }},
	{Name: "speed", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*PositionReport).Speed) }},
	{Name: "pos", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*PositionReport).Pos) }},
}}

// Field indices into StoppedCarSchema.
const (
	stoppedFieldCar = iota
	stoppedFieldCount
	stoppedFieldDistinctPos
	stoppedFieldLastPos
)

// StoppedCarSchema is the columnar schema of *StoppedCar.
var StoppedCarSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "car", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*StoppedCar).CarID) }},
	{Name: "count", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*StoppedCar).Count) }},
	{Name: "distinct-pos", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*StoppedCar).DistinctPos) }},
	{Name: "last-pos", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*StoppedCar).LastPos) }},
}}

// Field indices into AccidentAlertSchema.
const (
	accidentFieldPos = iota
	accidentFieldCount
)

// AccidentAlertSchema is the columnar schema of *AccidentAlert.
var AccidentAlertSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "pos", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*AccidentAlert).Pos) }},
	{Name: "count", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(t.(*AccidentAlert).Count) }},
}}

// Schemas returns the columnar schema of every Linear Road tuple type, keyed
// by its csvio format name.
func Schemas() map[string]*ops.ColSchema {
	return map[string]*ops.ColSchema{
		"lr.position": PositionReportSchema,
		"lr.stopped":  StoppedCarSchema,
		"lr.accident": AccidentAlertSchema,
	}
}

// filterZeroSpeed is the vectorized q1.zero-speed predicate.
func filterZeroSpeed(c *ops.ColBatch, sel, dst []int) []int {
	speed := c.Int64s(posFieldSpeed)
	for _, i := range sel {
		if speed[i] == 0 {
			dst = append(dst, i)
		}
	}
	return dst
}

// filterStopped is the vectorized q1.stopped predicate.
func filterStopped(c *ops.ColBatch, sel, dst []int) []int {
	count := c.Int64s(stoppedFieldCount)
	distinct := c.Int64s(stoppedFieldDistinctPos)
	for _, i := range sel {
		if count[i] == StopReports && distinct[i] == 1 {
			dst = append(dst, i)
		}
	}
	return dst
}

// filterAccident is the vectorized q2.accident predicate.
func filterAccident(c *ops.ColBatch, sel, dst []int) []int {
	count := c.Int64s(accidentFieldCount)
	for _, i := range sel {
		if count[i] >= AccidentCars {
			dst = append(dst, i)
		}
	}
	return dst
}

// keyCarID is the vectorized q1.window group-by extraction.
func keyCarID(c *ops.ColBatch, sel []int, dst []string) []string {
	car := c.Int64s(posFieldCar)
	for _, i := range sel {
		dst = append(dst, strconv.Itoa(int(car[i])))
	}
	return dst
}

// keyLastPos is the vectorized q2.window group-by extraction.
func keyLastPos(c *ops.ColBatch, sel []int, dst []string) []string {
	pos := c.Int64s(stoppedFieldLastPos)
	for _, i := range sel {
		dst = append(dst, strconv.Itoa(int(pos[i])))
	}
	return dst
}

// foldStoppedCar is the vectorized q1.window fold: one *StoppedCar per
// (car, window), computed from the window's car and pos columns exactly as
// the row Fold computes it from the tuple slice.
func foldStoppedCar(seg *ops.ColSeg, start, end int64, key string) core.Tuple {
	out := &StoppedCar{Base: core.NewBase(start)}
	car := seg.Int64s(posFieldCar)
	pos := seg.Int64s(posFieldPos)
	out.Count = int32(seg.Len())
	out.CarID = int32(car[len(car)-1])
	out.LastPos = int32(pos[len(pos)-1])
	distinct := make(map[int64]struct{}, 2)
	for _, p := range pos {
		distinct[p] = struct{}{}
	}
	out.DistinctPos = int32(len(distinct))
	return out
}

// foldAccidentAlert is the vectorized q2.window fold: the stopped-car count
// per (position, window).
func foldAccidentAlert(seg *ops.ColSeg, start, end int64, key string) core.Tuple {
	out := &AccidentAlert{Base: core.NewBase(start)}
	pos := seg.Int64s(stoppedFieldLastPos)
	out.Count = int32(seg.Len())
	out.Pos = int32(pos[len(pos)-1])
	return out
}
