package harness

import (
	"context"
	"strings"
	"testing"
)

// TestDeclaredKernelsVectorize is the vet for the workload kernel
// declarations: every workload operator that declares a columnar spec
// (query.ColSpec in internal/linearroad, internal/smartgrid and
// internal/clickstream) must
// actually come out of the planner vectorized — a declaration the planner
// silently ignores (missing schema, kernel dropped by a refactor) fails
// here instead of degrading to the row path unnoticed.
func TestDeclaredKernelsVectorize(t *testing.T) {
	// The declared kernel-capable segments per query at parallelism 1: the
	// stateless stages (Q1 zero-speed + stopped, Q2 adds accident, Q3
	// zero-cons + blackout, Q4 midnight + anomaly, Q5 engaged+project +
	// hot) each materialise as their own vectorized segment, plus the
	// stateful operators with declared fold/probe kernels (Q1 window; Q2
	// both windows; Q3 daily-sum + daily-count; Q4 daily-sum + join; Q5
	// session-count).
	wantTotal := map[QueryID]int{Q1: 3, Q2: 5, Q3: 4, Q4: 4, Q5: 3}
	wantStateful := map[QueryID]int{Q1: 1, Q2: 2, Q3: 2, Q4: 2, Q5: 1}
	for _, q := range Queries {
		o := parallelTestOptions(q, ModeNP, 1)
		info, err := Explain(o)
		if err != nil {
			t.Fatal(err)
		}
		if info.VectorizedSegments != wantTotal[q] {
			t.Errorf("%s: %d vectorized segments, want %d:\n%s", q, info.VectorizedSegments, wantTotal[q], info.Text)
		}
		if info.VectorizedStatefulSegments != wantStateful[q] {
			t.Errorf("%s: %d vectorized stateful segments, want %d:\n%s", q, info.VectorizedStatefulSegments, wantStateful[q], info.Text)
		}
		if !strings.Contains(info.Text, "vectorized") {
			t.Errorf("%s: Explain text misses the vectorized marker:\n%s", q, info.Text)
		}
		o.NoVectorize = true
		info, err = Explain(o)
		if err != nil {
			t.Fatal(err)
		}
		if info.VectorizedSegments != 0 {
			t.Errorf("%s: NoVectorize plan still vectorizes %d segments:\n%s", q, info.VectorizedSegments, info.Text)
		}
		if info.VectorizedStatefulSegments != 0 {
			t.Errorf("%s: NoVectorize plan still vectorizes %d stateful segments:\n%s", q, info.VectorizedStatefulSegments, info.Text)
		}
		if strings.Contains(info.Text, "vectorized") || strings.Contains(info.Text, "vec[") {
			t.Errorf("%s: NoVectorize Explain text still marks vectorized segments:\n%s", q, info.Text)
		}
	}
}

// TestStatefulKernelsVectorizeSharded: at parallelism > 1 the stateful
// operators keep their columnar window state inside every shard lane — the
// plan marks the lanes vec[...] and the stateful count is unchanged (a shard
// subgraph counts once, like the serial operator it replaces).
func TestStatefulKernelsVectorizeSharded(t *testing.T) {
	wantStateful := map[QueryID]int{Q1: 1, Q2: 2, Q3: 2, Q4: 2, Q5: 1}
	for _, q := range Queries {
		o := parallelTestOptions(q, ModeNP, 4)
		info, err := Explain(o)
		if err != nil {
			t.Fatal(err)
		}
		if info.VectorizedStatefulSegments != wantStateful[q] {
			t.Errorf("%s: %d vectorized stateful segments at parallelism 4, want %d:\n%s",
				q, info.VectorizedStatefulSegments, wantStateful[q], info.Text)
		}
		if !strings.Contains(info.Text, "vec[") {
			t.Errorf("%s: sharded Explain text misses the vec[...] lane marker:\n%s", q, info.Text)
		}
	}
}

// TestVectorizeResultDimension: a measured run reports the vectorize
// dimension back in its result row, and NoVectorize switches it off.
func TestVectorizeResultDimension(t *testing.T) {
	o := parallelTestOptions(Q1, ModeNP, 1)
	r, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Vectorized {
		t.Fatal("Result.Vectorized = false, want true (the default)")
	}
	o.NoVectorize = true
	if r, err = Run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	if r.Vectorized {
		t.Fatal("Result.Vectorized = true under Options.NoVectorize")
	}
	if r.SinkTuples == 0 {
		t.Fatal("row-path harness run produced no sink tuples")
	}
}
