package harness

import (
	"context"
	"strings"
	"testing"
)

// TestDeclaredKernelsVectorize is the vet for the workload kernel
// declarations: every Q1-Q4 operator that declares a columnar spec
// (query.ColSpec in internal/linearroad and internal/smartgrid) must
// actually come out of the planner vectorized — a declaration the planner
// silently ignores (missing schema, kernel dropped by a refactor) fails
// here instead of degrading to the row path unnoticed.
func TestDeclaredKernelsVectorize(t *testing.T) {
	// The declared kernel-capable stateless stages per query: Q1 zero-speed +
	// stopped, Q2 adds accident, Q3 zero-cons + blackout, Q4 midnight +
	// anomaly. At parallelism 1 each materialises as its own vectorized
	// segment.
	want := map[QueryID]int{Q1: 2, Q2: 3, Q3: 2, Q4: 2}
	for _, q := range Queries {
		o := parallelTestOptions(q, ModeNP, 1)
		info, err := Explain(o)
		if err != nil {
			t.Fatal(err)
		}
		if info.VectorizedSegments != want[q] {
			t.Errorf("%s: %d vectorized segments, want %d:\n%s", q, info.VectorizedSegments, want[q], info.Text)
		}
		if !strings.Contains(info.Text, "vectorized") {
			t.Errorf("%s: Explain text misses the vectorized marker:\n%s", q, info.Text)
		}
		o.NoVectorize = true
		info, err = Explain(o)
		if err != nil {
			t.Fatal(err)
		}
		if info.VectorizedSegments != 0 {
			t.Errorf("%s: NoVectorize plan still vectorizes %d segments:\n%s", q, info.VectorizedSegments, info.Text)
		}
		if strings.Contains(info.Text, "vectorized") {
			t.Errorf("%s: NoVectorize Explain text still marks vectorized segments:\n%s", q, info.Text)
		}
	}
}

// TestVectorizeResultDimension: a measured run reports the vectorize
// dimension back in its result row, and NoVectorize switches it off.
func TestVectorizeResultDimension(t *testing.T) {
	o := parallelTestOptions(Q1, ModeNP, 1)
	r, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Vectorized {
		t.Fatal("Result.Vectorized = false, want true (the default)")
	}
	o.NoVectorize = true
	if r, err = Run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	if r.Vectorized {
		t.Fatal("Result.Vectorized = true under Options.NoVectorize")
	}
	if r.SinkTuples == 0 {
		t.Fatal("row-path harness run produced no sink tuples")
	}
}
