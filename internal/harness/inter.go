package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/metrics"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/query"
	"genealog/internal/telemetry"
	"genealog/internal/transport"
)

// InterLinks names the directed streams of the paper's three-instance
// deployments (Figs. 7, 9C, 10C, 11C). Each field carries the encoder/
// decoder pair of one link; an instance only uses its own half, so the same
// struct describes in-memory pipes (harness runs) and TCP connections
// (cmd/spe-node).
type InterLinks struct {
	// Main carries the query's delivering streams from SPE instance 1 to
	// instance 2 (one per stage-1 output; Q4 has two).
	Main []*transport.Link
	// U1 carries instance 1's unfolded streams to the provenance node
	// (GL only; one per stage-1 output).
	U1 []*transport.Link
	// Derived carries instance 2's unfolded sink stream to the provenance
	// node (GL only).
	Derived *transport.Link
	// Sources carries the whole source stream to the provenance node
	// (BL only).
	Sources *transport.Link
	// Sinks carries the annotated sink tuples to the provenance node
	// (BL only).
	Sinks *transport.Link
}

// InterHooks receives the measurements of a distributed instance. All hooks
// are optional.
type InterHooks struct {
	// OnSourceEmit observes every source tuple (throughput accounting).
	OnSourceEmit func(core.Tuple)
	// OnSinkTuple observes every sink tuple.
	OnSinkTuple func(core.Tuple)
	// OnLatency observes each sink tuple's latency in nanoseconds.
	OnLatency func(ns int64)
	// OnTraversal1 and OnTraversal2 observe the contribution-graph
	// traversal durations at SPE instances 1 and 2 (Fig. 14).
	OnTraversal1 func(d time.Duration)
	OnTraversal2 func(d time.Duration)
	// OnProvenance observes every assembled provenance result at the
	// provenance node.
	OnProvenance func(provenance.Result)
	// OnResolve observes the duration of each BL store join at the
	// provenance node (BL's counterpart of the traversal measurement).
	OnResolve func(d time.Duration)
	// Store is the BL provenance node's source store (required for BL SPE 3).
	Store *baseline.Store
	// ProvStore, when non-nil, durably persists the provenance node's
	// assembled results: under GL the SPE 3 collector tees into it (the MU's
	// unfolded Record stream is the ingestion path), under BL the buffered
	// resolver's results are ingested via OnProvenance by the caller.
	ProvStore query.ProvenanceStore
}

// MainLinkCount returns how many delivering streams stage 1 of q ships to
// stage 2 (Q4 ships two: the daily sums and the midnight readings).
func MainLinkCount(q QueryID) (int, error) {
	switch q {
	case Q1, Q2, Q3, Q5:
		return 1, nil
	case Q4:
		return 2, nil
	default:
		return 0, fmt.Errorf("harness: unknown query %q", q)
	}
}

// BuildSPE1 assembles SPE instance 1: the Source, the query's first stage
// and — under GL — one SU per delivering stream, shipping both the stream
// and its unfolding. Under BL the whole source stream is additionally
// shipped to the provenance node.
func BuildSPE1(o Options, links InterLinks, hooks InterHooks) (*query.Query, error) {
	spec, err := specFor(o.Query)
	if err != nil {
		return nil, err
	}
	spec.registerWire()
	provenance.RegisterWire()
	gen, _, _ := spec.source(o)

	opts := append([]query.Option{query.WithInstrumenter(instrumenterFor(o.Mode, 1, nil))},
		commonQueryOptions(o)...)
	b := query.New(string(o.Query)+"-spe1", opts...)
	src := b.AddSource("source", gen)
	src.Rate = o.SourceRate
	src.Burst = o.SourceBurst
	src.OnEmit = hooks.OnSourceEmit

	stage1From := src
	if o.Mode == ModeBL {
		if links.Sources == nil {
			return nil, errors.New("harness: BL SPE1 needs a Sources link")
		}
		mux := b.AddMultiplex("ship-mux")
		b.Connect(src, mux)
		transport.AddSend(b, "send-sources", mux, links.Sources.Enc, links.Sources.Closer)
		stage1From = mux
	}
	outs1 := spec.addStage1(b, stage1From)
	if len(outs1) != len(links.Main) {
		return nil, fmt.Errorf("harness: %s stage 1 has %d outputs, got %d main links",
			o.Query, len(outs1), len(links.Main))
	}
	for i, out := range outs1 {
		switch o.Mode {
		case ModeGL:
			if i >= len(links.U1) {
				return nil, errors.New("harness: GL SPE1 needs one U1 link per main link")
			}
			so, u := provenance.AddSU(b, fmt.Sprintf("su1-%d", i), out, provenance.SUConfig{
				OnTraversal: func(d time.Duration, _ int) {
					if hooks.OnTraversal1 != nil {
						hooks.OnTraversal1(d)
					}
				},
			})
			transport.AddSend(b, fmt.Sprintf("send-main-%d", i), so, links.Main[i].Enc, links.Main[i].Closer)
			transport.AddSend(b, fmt.Sprintf("send-u1-%d", i), u, links.U1[i].Enc, links.U1[i].Closer)
		default: // NP, BL
			transport.AddSend(b, fmt.Sprintf("send-main-%d", i), out, links.Main[i].Enc, links.Main[i].Closer)
		}
	}
	b.ParallelizeStateful(o.Parallelism)
	return b.Build()
}

// BuildSPE2 assembles SPE instance 2: the query's second stage and the Sink,
// plus — under GL — the SU unfolding the sink stream into the derived
// stream, or — under BL — the shipping of annotated sink tuples.
func BuildSPE2(o Options, links InterLinks, hooks InterHooks) (*query.Query, error) {
	spec, err := specFor(o.Query)
	if err != nil {
		return nil, err
	}
	spec.registerWire()
	provenance.RegisterWire()

	opts := append([]query.Option{query.WithInstrumenter(instrumenterFor(o.Mode, 2, nil))},
		commonQueryOptions(o)...)
	b := query.New(string(o.Query)+"-spe2", opts...)
	ins := make([]*query.Node, len(links.Main))
	for i, l := range links.Main {
		ins[i] = transport.AddReceive(b, fmt.Sprintf("recv-main-%d", i), l.Dec)
	}
	last := spec.addStage2(b, ins)

	sinkFn := func(t core.Tuple) error {
		if hooks.OnSinkTuple != nil {
			hooks.OnSinkTuple(t)
		}
		return nil
	}
	newSink := func() *query.Node {
		sink := b.AddSink("sink", sinkFn)
		if hooks.OnLatency != nil {
			sink.OnLatency = func(_ core.Tuple, ns int64) { hooks.OnLatency(ns) }
		}
		return sink
	}
	switch o.Mode {
	case ModeGL:
		if links.Derived == nil {
			return nil, errors.New("harness: GL SPE2 needs a Derived link")
		}
		so, u := provenance.AddSU(b, "su2", last, provenance.SUConfig{
			OnTraversal: func(d time.Duration, _ int) {
				if hooks.OnTraversal2 != nil {
					hooks.OnTraversal2(d)
				}
			},
		})
		b.Connect(so, newSink())
		transport.AddSend(b, "send-derived", u, links.Derived.Enc, links.Derived.Closer)
	case ModeBL:
		if links.Sinks == nil {
			return nil, errors.New("harness: BL SPE2 needs a Sinks link")
		}
		mux := b.AddMultiplex("sink-mux")
		b.Connect(last, mux)
		b.Connect(mux, newSink())
		transport.AddSend(b, "send-sinks", mux, links.Sinks.Enc, links.Sinks.Closer)
	default: // NP
		b.Connect(last, newSink())
	}
	b.ParallelizeStateful(o.Parallelism)
	return b.Build()
}

// BuildSPE3 assembles the provenance node. Under GL it hosts the MU (fed by
// the upstream unfolded streams and the derived stream) and the provenance
// collector; under BL it ingests the shipped source streams and joins them
// with the annotated sink tuples. NP has no provenance node (nil, nil).
func BuildSPE3(o Options, links InterLinks, hooks InterHooks) (*query.Query, error) {
	spec, err := specFor(o.Query)
	if err != nil {
		return nil, err
	}
	spec.registerWire()
	provenance.RegisterWire()

	onResult := hooks.OnProvenance
	if onResult == nil {
		onResult = func(provenance.Result) {}
	}
	switch o.Mode {
	case ModeGL:
		opts := append([]query.Option{query.WithInstrumenter(instrumenterFor(o.Mode, 3, nil))},
			commonQueryOptions(o)...)
		if hooks.ProvStore != nil {
			opts = append(opts, query.WithProvenanceStore(hooks.ProvStore))
		}
		b := query.New(string(o.Query)+"-spe3", opts...)
		ups := make([]*query.Node, len(links.U1))
		for i, l := range links.U1 {
			ups[i] = transport.AddReceive(b, fmt.Sprintf("recv-u1-%d", i), l.Dec)
		}
		if links.Derived == nil {
			return nil, errors.New("harness: GL SPE3 needs a Derived link")
		}
		derived := transport.AddReceive(b, "recv-derived", links.Derived.Dec)
		mu := provenance.AddMU(b, "mu", derived, ups, provenance.MUConfig{Window: spec.muWindow})
		provenance.AddCollectorHorizon(b, "prov-sink", mu, 2*spec.muWindow, onResult)
		return b.Build()
	case ModeBL:
		if hooks.Store == nil || links.Sources == nil || links.Sinks == nil {
			return nil, errors.New("harness: BL SPE3 needs a Store and Sources/Sinks links")
		}
		blOpts := append([]query.Option{query.WithInstrumenter(core.Noop{})},
			commonQueryOptions(o)...)
		b := query.New(string(o.Query)+"-spe3", blOpts...)
		srcsIn := transport.AddReceive(b, "recv-sources", links.Sources.Dec)
		storeDone := make(chan struct{})
		addStoreIngest(b, "store-sink", srcsIn, hooks.Store, storeDone)
		sinksIn := transport.AddReceive(b, "recv-sinks", links.Sinks.Dec)
		// BL has no collector to tee through query.WithProvenanceStore;
		// persist each resolved result before observers see it. An ingest
		// failure fails the resolver operator like any other error.
		onResolved := func(r provenance.Result) error {
			if hooks.ProvStore != nil {
				if _, err := hooks.ProvStore.Ingest(r.Sink, r.Sources); err != nil {
					return err
				}
			}
			onResult(r)
			return nil
		}
		addBufferedResolver(b, "resolver", sinksIn, hooks.Store, storeDone, hooks.OnResolve, onResolved)
		return b.Build()
	default:
		return nil, nil
	}
}

// runInter deploys the query across SPE instances connected by in-memory
// serialising links, following the paper's Figs. 7, 9C, 10C and 11C: NP uses
// two instances, GL and BL add the provenance node.
func runInter(ctx context.Context, o Options, spec querySpec) (Result, error) {
	res := Result{Query: o.Query, Mode: o.Mode, Deployment: Inter, Parallelism: o.Parallelism,
		BatchSize: o.BatchSize, Fusion: !o.NoFusion, Vectorized: !o.NoVectorize,
		RemoteStore: o.RemoteStore}
	if o.AdaptiveBatch {
		res.AdaptiveBatch = true
		res.AdaptiveMinBatch, res.AdaptiveMaxBatch = adaptiveBounds(o)
	}
	_, total, perTuple := spec.source(o)
	res.SourceTuples = int64(total)
	res.SourceBytes = int64(total) * int64(perTuple)

	linkOpts := []transport.LinkOption{transport.WithCounting()}
	if o.ThrottleBytesPerSec > 0 {
		linkOpts = append(linkOpts, transport.WithThrottle(o.ThrottleBytesPerSec))
	}
	if o.UseBinaryCodec {
		linkOpts = append(linkOpts, transport.WithCodec(transport.BinaryCodec{}))
	}
	var all []*transport.Link
	newLink := func(name string) *transport.Link {
		l := transport.NewLink(append(linkOpts, transport.WithName(name))...)
		all = append(all, l)
		return l
	}

	nMain, err := MainLinkCount(o.Query)
	if err != nil {
		return Result{}, err
	}
	links := InterLinks{}
	for i := 0; i < nMain; i++ {
		links.Main = append(links.Main, newLink(fmt.Sprintf("main-%d", i)))
	}
	switch o.Mode {
	case ModeGL:
		for i := 0; i < nMain; i++ {
			links.U1 = append(links.U1, newLink(fmt.Sprintf("u1-%d", i)))
		}
		links.Derived = newLink("derived")
	case ModeBL:
		links.Sources = newLink("sources")
		links.Sinks = newLink("sinks")
	}
	if o.Telemetry != nil {
		for _, l := range all {
			count := l.Count
			o.Telemetry.RegisterGauge("genealog_link_bytes",
				[]telemetry.Label{{Name: "link", Value: l.Name}},
				func() float64 { return float64(count.Bytes()) })
		}
	}

	var store *baseline.Store
	if o.Mode == ModeBL {
		store = baseline.NewStore()
	}
	provStore, ownStore, err := o.openProvStore(ctx, spec)
	if err != nil {
		return Result{}, err
	}
	if ownStore {
		// Flush and release the file log on every error path too;
		// finishProvStore closes first on success (re-Close is a no-op).
		defer provStore.Close()
	}
	if o.Telemetry != nil && provStore != nil {
		o.Telemetry.RegisterStore("provstore", func() telemetry.StoreStats {
			return storeStats(provStore.Stats())
		})
	}
	account := &provAccount{spec: spec}
	observe := func(r provenance.Result) {
		account.add(r)
		if o.OnProvenance != nil {
			o.OnProvenance(r)
		}
	}
	var lat metrics.Welford
	latQ := metrics.NewReservoir(0)
	trav := []*metrics.Welford{{}, {}}
	var srcCount metrics.Counter
	var sinkMu sync.Mutex
	hooks := InterHooks{
		OnSourceEmit: func(core.Tuple) { srcCount.Mark(time.Now().UnixNano()) },
		OnSinkTuple: func(core.Tuple) {
			sinkMu.Lock()
			res.SinkTuples++
			sinkMu.Unlock()
		},
		OnLatency: func(ns int64) {
			lat.Add(float64(ns))
			latQ.Add(float64(ns))
		},
		OnTraversal1: func(d time.Duration) { trav[0].Add(float64(d.Nanoseconds())) },
		OnTraversal2: func(d time.Duration) { trav[1].Add(float64(d.Nanoseconds())) },
		OnProvenance: observe,
		// BL times its store join instead of a graph traversal.
		OnResolve: func(d time.Duration) { trav[0].Add(float64(d.Nanoseconds())) },
		Store:     store,
	}
	if provStore != nil {
		hooks.ProvStore = provStore
	}

	var queries []*query.Query
	q1, err := BuildSPE1(o, links, hooks)
	if err != nil {
		return Result{}, err
	}
	queries = append(queries, q1)
	q2, err := BuildSPE2(o, links, hooks)
	if err != nil {
		return Result{}, err
	}
	queries = append(queries, q2)
	q3, err := BuildSPE3(o, links, hooks)
	if err != nil {
		return Result{}, err
	}
	if q3 != nil {
		queries = append(queries, q3)
	}

	mem := metrics.NewMemSampler(o.MemSampleEvery)
	mem.Start()
	begin := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, len(queries))
	for _, q := range queries {
		wg.Add(1)
		go func(q *query.Query) {
			defer wg.Done()
			errc <- q.Run(ctx)
		}(q)
	}
	wg.Wait()
	close(errc)
	res.Elapsed = time.Since(begin)
	mem.Stop()
	var errs []error
	for err := range errc {
		if err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return Result{}, errors.Join(errs...)
	}

	res.ThroughputTPS = srcCount.Rate()
	res.AvgLatencyMs = lat.Mean() / 1e6
	latPcts := latQ.Quantiles(0.5, 0.99)
	res.P50LatencyMs = latPcts[0] / 1e6
	res.P99LatencyMs = latPcts[1] / 1e6
	res.AvgMemMB = mem.AvgBytes() / (1 << 20)
	res.MaxMemMB = mem.MaxBytes() / (1 << 20)
	switch o.Mode {
	case ModeGL:
		res.TraversalAvgMsPerSPE = []float64{trav[0].Mean() / 1e6, trav[1].Mean() / 1e6}
		res.TraversalAvgMs = res.TraversalAvgMsPerSPE[0]
	case ModeBL:
		res.TraversalAvgMs = trav[0].Mean() / 1e6
	}
	res.ProvResults = account.results
	res.ProvSources = account.sources
	res.ProvBytes = account.bytes
	for _, l := range all {
		res.NetBytes += l.Count.Bytes()
	}
	if store != nil {
		res.StoreBytes = store.ApproxBytes()
		res.StoreTuples = int64(store.Len())
	}
	if err := finishProvStore(provStore, ownStore, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// addStoreIngest adds the provenance node's ingestion of the shipped source
// streams (the paper's BL keeps all source data at the node doing the
// provenance join). done is closed once the stream has fully drained.
func addStoreIngest(b *query.Builder, name string, from *query.Node,
	store *baseline.Store, done chan<- struct{}) {
	node := b.AddCustom(name, 1, 0, func(ins, outs []*ops.Stream) (ops.Operator, error) {
		return &storeIngest{name: name, in: ins[0], store: store, done: done}, nil
	})
	b.Connect(from, node)
}

type storeIngest struct {
	name  string
	in    *ops.Stream
	store *baseline.Store
	done  chan<- struct{}
}

var _ ops.Operator = (*storeIngest)(nil)

// Name implements ops.Operator.
func (s *storeIngest) Name() string { return s.name }

// Run implements ops.Operator.
func (s *storeIngest) Run(ctx context.Context) error {
	defer close(s.done)
	for {
		t, ok, err := s.in.Recv(ctx)
		if err != nil {
			return fmt.Errorf("store ingest %q: %w", s.name, err)
		}
		if !ok {
			return nil
		}
		if m := core.MetaOf(t); m != nil && m.ID() != 0 {
			s.store.Put(m.ID(), t)
		}
	}
}

// addBufferedResolver adds BL's provenance-node resolution: annotated sink
// tuples are buffered until both their own stream and the shipped source
// streams have drained (storeDone), and are then joined with the store.
// onResolve, when non-nil, observes each resolution's duration. An onResult
// error fails the operator.
func addBufferedResolver(b *query.Builder, name string, from *query.Node,
	store *baseline.Store, storeDone <-chan struct{}, onResolve func(time.Duration),
	onResult func(provenance.Result) error) {
	node := b.AddCustom(name, 1, 0, func(ins, outs []*ops.Stream) (ops.Operator, error) {
		return &bufferedResolver{
			name: name, in: ins[0], store: store, storeDone: storeDone,
			onResolve: onResolve, onResult: onResult,
		}, nil
	})
	b.Connect(from, node)
}

type bufferedResolver struct {
	name      string
	in        *ops.Stream
	store     *baseline.Store
	storeDone <-chan struct{}
	onResolve func(time.Duration)
	onResult  func(provenance.Result) error
	buf       []core.Tuple
}

var _ ops.Operator = (*bufferedResolver)(nil)

// Name implements ops.Operator.
func (r *bufferedResolver) Name() string { return r.name }

// Run implements ops.Operator.
func (r *bufferedResolver) Run(ctx context.Context) error {
	for {
		t, ok, err := r.in.Recv(ctx)
		if err != nil {
			return fmt.Errorf("resolver %q: %w", r.name, err)
		}
		if ok && core.IsHeartbeat(t) {
			continue
		}
		if !ok {
			select {
			case <-r.storeDone:
			case <-ctx.Done():
				return fmt.Errorf("resolver %q: %w", r.name, ctx.Err())
			}
			resolver := baseline.Resolver{Store: r.store}
			for _, sink := range r.buf {
				begin := time.Now()
				sources := resolver.Resolve(sink)
				if r.onResolve != nil {
					r.onResolve(time.Since(begin))
				}
				if err := r.onResult(provenance.Result{Sink: sink, Sources: sources}); err != nil {
					return fmt.Errorf("resolver %q: %w", r.name, err)
				}
			}
			r.buf = nil
			return nil
		}
		r.buf = append(r.buf, t)
	}
}
