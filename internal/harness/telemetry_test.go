package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"genealog/internal/telemetry"
)

// TestTelemetryQ4ParallelFusedPlan runs the full distributed (Inter) Q4
// deployment at parallelism 4 with the planner on and a live telemetry
// registry attached, scraping both exposition endpoints concurrently with
// the run (so the per-batch hooks race a real scraper under -race) and then
// checking the final exposition:
//
//   - /telemetry.json decodes into telemetry.Snapshot and carries all three
//     SPE instances' queries,
//   - registry names — operators and streams — are unique within each
//     query's plan, including the shard-internal partition/merge lanes and
//     the fused/vec chain nodes,
//   - the counters saw the run's traffic (tuples out, segment batches,
//     source watermarks),
//   - /metrics serves parseable Prometheus families for throughput, queue
//     occupancy and watermark lag.
func TestTelemetryQ4ParallelFusedPlan(t *testing.T) {
	o := parallelTestOptions(Q4, ModeGL, 4)
	o.Deployment = Inter
	o.BatchSize = 64
	reg := telemetry.NewRegistry()
	o.Telemetry = reg
	srv, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Scrape while the query runs: the value here is the data race that
	// isn't — atomic counters and scrape-time queue sampling against the
	// hot path — plus proof the endpoints answer mid-run.
	stop := make(chan struct{})
	scraped := make(chan error, 1)
	go func() {
		var last error
		for {
			select {
			case <-stop:
				scraped <- last
				return
			default:
			}
			for _, path := range []string{"/metrics", "/telemetry.json"} {
				resp, err := http.Get(base + path)
				if err != nil {
					last = err
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					last = fmt.Errorf("GET %s: %s", path, resp.Status)
				} else {
					last = nil
				}
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := Run(ctx, o)
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkTuples == 0 {
		t.Fatal("run produced no sink tuples")
	}
	if err := <-scraped; err != nil {
		t.Fatalf("mid-run scrape: %v", err)
	}

	resp, err := http.Get(base + "/telemetry.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	want := map[string]bool{"Q4-spe1": false, "Q4-spe2": false, "Q4-spe3": false}
	var shardLanes, segOps int
	var tuplesOut int64
	for _, q := range snap.Queries {
		if _, ok := want[q.Name]; !ok {
			t.Errorf("unexpected query %q in snapshot", q.Name)
			continue
		}
		want[q.Name] = true

		opSeen := map[string]bool{}
		for _, op := range q.Operators {
			if opSeen[op.Name] {
				t.Errorf("%s: duplicate operator name %q", q.Name, op.Name)
			}
			opSeen[op.Name] = true
			if strings.Contains(op.Name, "#") || strings.Contains(op.Name, "/part") {
				shardLanes++
			}
			if op.SegBatches > 0 {
				segOps++
			}
			tuplesOut += op.TuplesOut
		}
		streamSeen := map[string]bool{}
		for _, s := range q.Streams {
			if streamSeen[s.Name] {
				t.Errorf("%s: duplicate stream name %q", q.Name, s.Name)
			}
			streamSeen[s.Name] = true
			if s.QueueCap <= 0 {
				t.Errorf("%s: stream %q has queue capacity %d", q.Name, s.Name, s.QueueCap)
			}
		}
		if len(q.Streams) == 0 {
			t.Errorf("%s: no streams registered", q.Name)
		}
		if !q.SourceWatermarkOK {
			t.Errorf("%s: no source watermark after a complete run", q.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("query %q missing from snapshot", name)
		}
	}
	if shardLanes == 0 {
		t.Error("parallelism 4 registered no shard-internal lanes")
	}
	if segOps == 0 {
		t.Error("fused/vectorized plan registered no segment counters")
	}
	if tuplesOut == 0 {
		t.Error("telemetry saw no published tuples")
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	text := string(body)
	for _, family := range []string{
		"# TYPE genealog_operator_tuples_out_total counter",
		"# TYPE genealog_operator_queue_length gauge",
		"# TYPE genealog_operator_watermark_lag gauge",
		"# TYPE genealog_segment_batches_total counter",
		`query="Q4-spe2"`,
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
}
