package harness

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/provenance"
	"genealog/internal/query"
	"genealog/internal/transport"
)

// tcpPair establishes one directed TCP link on addr and returns the
// receiving (listening) and sending (dialing) halves.
func tcpPair(ctx context.Context, t *testing.T, addr string) (recv, send *transport.Link) {
	t.Helper()
	type res struct {
		l   *transport.Link
		err error
	}
	ch := make(chan res, 1)
	go func() {
		l, err := transport.Listen(ctx, addr)
		ch <- res{l, err}
	}()
	send, err := transport.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return r.l, send
}

// TestDistributedOverTCP runs the full Fig. 7 GL deployment of Q1 across
// three query graphs connected by real TCP loopback connections — the
// cmd/spe-node topology inside one test — and checks the provenance node
// reconstructs the same results as an intra-process run.
func TestDistributedOverTCP(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	o := testOptions()
	o.Query, o.Mode, o.Deployment = Q1, ModeGL, Inter

	const base = 18150
	addr := func(off int) string { return fmt.Sprintf("127.0.0.1:%d", base+off) }
	mainRecv, mainSend := tcpPair(ctx, t, addr(0))
	u1Recv, u1Send := tcpPair(ctx, t, addr(1))
	derivedRecv, derivedSend := tcpPair(ctx, t, addr(2))

	var mu sync.Mutex
	var sinkTuples int64
	var results []provenance.Result
	hooks := InterHooks{
		OnSinkTuple: func(core.Tuple) {
			mu.Lock()
			sinkTuples++
			mu.Unlock()
		},
		OnProvenance: func(r provenance.Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	}

	spe1, err := BuildSPE1(o, InterLinks{
		Main: []*transport.Link{mainSend},
		U1:   []*transport.Link{u1Send},
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	spe2, err := BuildSPE2(o, InterLinks{
		Main:    []*transport.Link{mainRecv},
		Derived: derivedSend,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	spe3, err := BuildSPE3(o, InterLinks{
		U1:      []*transport.Link{u1Recv},
		Derived: derivedRecv,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 3)
	for _, q := range []*query.Query{spe1, spe2, spe3} {
		wg.Add(1)
		go func(q *query.Query) {
			defer wg.Done()
			errc <- q.Run(ctx)
		}(q)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Reference: the same configuration intra-process.
	ref := run(t, Q1, ModeGL, Intra)
	if sinkTuples != ref.SinkTuples {
		t.Fatalf("TCP sink tuples = %d, intra = %d", sinkTuples, ref.SinkTuples)
	}
	if int64(len(results)) != ref.ProvResults {
		t.Fatalf("TCP provenance results = %d, intra = %d", len(results), ref.ProvResults)
	}
	var sources int64
	for _, r := range results {
		sources += int64(len(r.Sources))
	}
	if sources != ref.ProvSources {
		t.Fatalf("TCP provenance sources = %d, intra = %d", sources, ref.ProvSources)
	}
}

// TestDistributedOverTCPBaseline runs the BL deployment over TCP: source
// stream and annotated sink tuples shipped to the provenance node.
func TestDistributedOverTCPBaseline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	o := testOptions()
	o.Query, o.Mode, o.Deployment = Q1, ModeBL, Inter

	const base = 18170
	addr := func(off int) string { return fmt.Sprintf("127.0.0.1:%d", base+off) }
	mainRecv, mainSend := tcpPair(ctx, t, addr(0))
	srcRecv, srcSend := tcpPair(ctx, t, addr(1))
	sinkRecv, sinkSend := tcpPair(ctx, t, addr(2))

	var mu sync.Mutex
	var results []provenance.Result
	hooks := InterHooks{
		OnProvenance: func(r provenance.Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
		Store: baseline.NewStore(),
	}

	spe1, err := BuildSPE1(o, InterLinks{
		Main:    []*transport.Link{mainSend},
		Sources: srcSend,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	spe2, err := BuildSPE2(o, InterLinks{
		Main:  []*transport.Link{mainRecv},
		Sinks: sinkSend,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	spe3, err := BuildSPE3(o, InterLinks{
		Sources: srcRecv,
		Sinks:   sinkRecv,
	}, hooks)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 3)
	for _, q := range []*query.Query{spe1, spe2, spe3} {
		wg.Add(1)
		go func(q *query.Query) {
			defer wg.Done()
			errc <- q.Run(ctx)
		}(q)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	ref := run(t, Q1, ModeGL, Intra)
	if int64(len(results)) != ref.ProvResults {
		t.Fatalf("BL TCP provenance results = %d, GL intra = %d", len(results), ref.ProvResults)
	}
	var sources int64
	for _, r := range results {
		sources += int64(len(r.Sources))
	}
	if sources != ref.ProvSources {
		t.Fatalf("BL TCP provenance sources = %d, GL intra = %d", sources, ref.ProvSources)
	}
}
