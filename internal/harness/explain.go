package harness

import (
	"strings"

	"genealog/internal/baseline"
	"genealog/internal/query"
	"genealog/internal/transport"
)

// ExplainInfo is the physical plan of one harness configuration, obtained
// without executing anything: the Query.Explain dumps of every SPE instance
// the deployment would run, plus the planner's rewrite counts
// (genealog-bench prints the text under -v and uses the counts to warn when
// -fuse finds nothing to rewrite).
type ExplainInfo struct {
	// Text is the concatenated plan dump, one block per SPE instance.
	Text string
	// FusedChains counts standalone fused-chain operators across the plans.
	FusedChains int
	// HoistedPrefixes counts stateless prefixes replicated into shard lanes.
	HoistedPrefixes int
	// VectorizedSegments counts operator segments the planner's columnar
	// pass runs as typed kernels over struct-of-arrays batches — stateless
	// chains and stateful (ColAggregate/ColJoin) segments alike.
	VectorizedSegments int
	// VectorizedStatefulSegments counts the stateful subset: aggregates and
	// joins whose window state lives in typed columns (serial operators or
	// whole shard subgraphs, each counted once).
	VectorizedStatefulSegments int
}

// Explain builds — without running — the queries a measured run of o would
// execute and returns their physical plans. Inter-process configurations
// report one plan per SPE instance (the links are throwaway in-memory
// pipes; nothing is serialised).
func Explain(o Options) (ExplainInfo, error) {
	if err := o.validate(); err != nil {
		return ExplainInfo{}, err
	}
	queries, err := explainQueries(o)
	if err != nil {
		return ExplainInfo{}, err
	}
	var info ExplainInfo
	var sb strings.Builder
	for i, q := range queries {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(q.Explain())
		info.FusedChains += q.FusedChains()
		info.HoistedPrefixes += q.HoistedPrefixes()
		info.VectorizedSegments += q.VectorizedSegments()
		info.VectorizedStatefulSegments += q.VectorizedStatefulSegments()
	}
	info.Text = sb.String()
	return info, nil
}

func explainQueries(o Options) ([]*query.Query, error) {
	spec, err := specFor(o.Query)
	if err != nil {
		return nil, err
	}
	if o.Deployment != Inter {
		// The exact graph a measured run executes, with discarding sinks:
		// assembleIntraQuery is the single intra-process assembly point.
		var asm intraAssembly
		if o.Mode == ModeBL {
			asm.store = baseline.NewStore()
		}
		q, err := assembleIntraQuery(o, spec, asm)
		if err != nil {
			return nil, err
		}
		return []*query.Query{q}, nil
	}
	nMain, err := MainLinkCount(o.Query)
	if err != nil {
		return nil, err
	}
	links := InterLinks{}
	for i := 0; i < nMain; i++ {
		links.Main = append(links.Main, transport.NewLink())
	}
	var store *baseline.Store
	switch o.Mode {
	case ModeGL:
		for i := 0; i < nMain; i++ {
			links.U1 = append(links.U1, transport.NewLink())
		}
		links.Derived = transport.NewLink()
	case ModeBL:
		links.Sources = transport.NewLink()
		links.Sinks = transport.NewLink()
		store = baseline.NewStore()
	}
	hooks := InterHooks{Store: store}
	q1, err := BuildSPE1(o, links, hooks)
	if err != nil {
		return nil, err
	}
	q2, err := BuildSPE2(o, links, hooks)
	if err != nil {
		return nil, err
	}
	q3, err := BuildSPE3(o, links, hooks)
	if err != nil {
		return nil, err
	}
	queries := []*query.Query{q1, q2}
	if q3 != nil {
		queries = append(queries, q3)
	}
	return queries, nil
}
