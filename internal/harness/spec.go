package harness

import (
	"fmt"

	"genealog/internal/baseline"
	"genealog/internal/clickstream"
	"genealog/internal/core"
	"genealog/internal/linearroad"
	"genealog/internal/ops"
	"genealog/internal/query"
	"genealog/internal/smartgrid"
)

// querySpec describes how to assemble one evaluation query, both as a whole
// (intra-process) and split into the two stages of the paper's distributed
// deployments (stage 1 at SPE instance 1 next to the Source, stage 2 at SPE
// instance 2 next to the Sink).
type querySpec struct {
	id QueryID
	// source returns the generator function, the total tuple count and the
	// approximate per-tuple payload bytes.
	source func(o Options) (ops.SourceFunc, int, int)
	// addWhole appends the complete query.
	addWhole func(b *query.Builder, src *query.Node) *query.Node
	// addStage1 appends the SPE-instance-1 part and returns its delivering
	// nodes (one per stream shipped to instance 2), in deterministic order.
	addStage1 func(b *query.Builder, src *query.Node) []*query.Node
	// addStage2 appends the SPE-instance-2 part, consuming the received
	// streams in the same order.
	addStage2 func(b *query.Builder, ins []*query.Node) *query.Node
	// muWindow is the multi-stream unfolder's join window (§6.1): the sum of
	// the stateful window sizes at the instance producing the derived
	// stream.
	muWindow int64
	// registerWire registers the workload's tuple types with the codec.
	registerWire func()
	// sized reports the approximate payload bytes of a tuple (provenance
	// volume accounting).
	sized func(core.Tuple) int
}

func specFor(id QueryID) (querySpec, error) {
	switch id {
	case Q1:
		return querySpec{
			id:     Q1,
			source: lrSource,
			addWhole: func(b *query.Builder, src *query.Node) *query.Node {
				return linearroad.AddQ1(b, src)
			},
			addStage1: func(b *query.Builder, src *query.Node) []*query.Node {
				return []*query.Node{linearroad.AddQ1Stage1(b, src)}
			},
			addStage2: func(b *query.Builder, ins []*query.Node) *query.Node {
				return linearroad.AddQ1Stage2(b, ins[0])
			},
			muWindow:     linearroad.MUWindowQ1,
			registerWire: linearroad.RegisterWire,
			sized:        sizedBytes,
		}, nil
	case Q2:
		return querySpec{
			id:     Q2,
			source: lrSource,
			addWhole: func(b *query.Builder, src *query.Node) *query.Node {
				return linearroad.AddQ2(b, src)
			},
			addStage1: func(b *query.Builder, src *query.Node) []*query.Node {
				return []*query.Node{linearroad.AddQ1(b, src)}
			},
			addStage2: func(b *query.Builder, ins []*query.Node) *query.Node {
				return linearroad.AddQ2Stage2(b, ins[0])
			},
			muWindow:     linearroad.MUWindowQ2,
			registerWire: linearroad.RegisterWire,
			sized:        sizedBytes,
		}, nil
	case Q3:
		return querySpec{
			id:     Q3,
			source: sgSource,
			addWhole: func(b *query.Builder, src *query.Node) *query.Node {
				return smartgrid.AddQ3(b, src)
			},
			addStage1: func(b *query.Builder, src *query.Node) []*query.Node {
				return []*query.Node{smartgrid.AddQ3Stage1(b, src)}
			},
			addStage2: func(b *query.Builder, ins []*query.Node) *query.Node {
				return smartgrid.AddQ3Stage2(b, ins[0])
			},
			muWindow:     smartgrid.MUWindowQ3,
			registerWire: smartgrid.RegisterWire,
			sized:        sizedBytes,
		}, nil
	case Q4:
		return querySpec{
			id:     Q4,
			source: sgSource,
			addWhole: func(b *query.Builder, src *query.Node) *query.Node {
				return smartgrid.AddQ4(b, src)
			},
			addStage1: func(b *query.Builder, src *query.Node) []*query.Node {
				out := smartgrid.AddQ4Stage1(b, src)
				return []*query.Node{out.Daily, out.Midnight}
			},
			addStage2: func(b *query.Builder, ins []*query.Node) *query.Node {
				return smartgrid.AddQ4Stage2(b, smartgrid.Q4Stage1Outputs{Daily: ins[0], Midnight: ins[1]})
			},
			muWindow:     smartgrid.MUWindowQ4,
			registerWire: smartgrid.RegisterWire,
			sized:        sizedBytes,
		}, nil
	case Q5:
		return querySpec{
			id:     Q5,
			source: csSource,
			addWhole: func(b *query.Builder, src *query.Node) *query.Node {
				return clickstream.AddQ5(b, src)
			},
			addStage1: func(b *query.Builder, src *query.Node) []*query.Node {
				return []*query.Node{clickstream.AddQ5Stage1(b, src)}
			},
			addStage2: func(b *query.Builder, ins []*query.Node) *query.Node {
				return clickstream.AddQ5Stage2(b, ins[0])
			},
			muWindow:     clickstream.MUWindowQ5,
			registerWire: clickstream.RegisterWire,
			sized:        sizedBytes,
		}, nil
	default:
		return querySpec{}, fmt.Errorf("harness: unknown query %q", id)
	}
}

// storeHorizon derives the provenance store's retention horizon from the
// query graph: it assembles the whole query on a throwaway builder and asks
// the planner how far (in event time) behind the delivered watermark a
// source tuple can still be referenced by a future sink tuple
// (query.Builder.ProvenanceHorizon). Deriving instead of hand-setting means
// a query edit that deepens the window structure can never silently leave
// the store retiring tuples a traversal still needs.
func (s querySpec) storeHorizon() int64 {
	b := query.New("horizon-probe")
	src := b.AddSource("src", nil)
	last := s.addWhole(b, src)
	b.Connect(last, b.AddSink("sink", nil))
	return b.ProvenanceHorizon()
}

// StoreHorizon returns the provenance store's retention horizon for q,
// derived from the query graph's stateful window structure. CLI deployments
// (spe-node -store) use it to open remote store connections with the same
// horizon the harness would.
func StoreHorizon(q QueryID) (int64, error) {
	spec, err := specFor(q)
	if err != nil {
		return 0, err
	}
	return spec.storeHorizon(), nil
}

func lrSource(o Options) (ops.SourceFunc, int, int) {
	g := linearroad.NewGenerator(o.LR)
	return g.SourceFunc(), g.Tuples(), (&linearroad.PositionReport{}).ApproxBytes()
}

func sgSource(o Options) (ops.SourceFunc, int, int) {
	g := smartgrid.NewGenerator(o.SG)
	return g.SourceFunc(), g.Tuples(), (&smartgrid.MeterReading{}).ApproxBytes()
}

func csSource(o Options) (ops.SourceFunc, int, int) {
	g := clickstream.NewGenerator(o.CS)
	return g.SourceFunc(), g.Tuples(), (&clickstream.ClickEvent{}).ApproxBytes()
}

func sizedBytes(t core.Tuple) int {
	if s, ok := t.(baseline.Sized); ok {
		return s.ApproxBytes()
	}
	return 64
}

// instrumenterFor returns the instrumenter for the given mode. node numbers
// the SPE instance for ID generation (inter-process); the BL store is shared
// across instances when provided.
func instrumenterFor(mode Mode, node uint16, store *baseline.Store) core.Instrumenter {
	switch mode {
	case ModeGL:
		if node == 0 {
			return &core.Genealog{}
		}
		return &core.Genealog{IDs: core.NewIDGen(node)}
	case ModeBL:
		n := node
		if n == 0 {
			n = 1
		}
		return &baseline.Instrumenter{IDs: core.NewIDGen(n), Store: store}
	default:
		return core.Noop{}
	}
}
