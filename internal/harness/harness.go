// Package harness orchestrates the paper's evaluation (§7): it deploys the
// evaluation queries (Q1/Q2 Linear Road, Q3/Q4 Smart Grid, Q5 bursty
// clickstream) under the three provenance techniques (NP = none, GL =
// GeneaLog, BL = Ariadne-style baseline), intra-process and across three
// SPE instances, measures throughput, latency, memory, contribution-graph
// traversal time and provenance volume, and renders the rows of Figures 12,
// 13 and 14.
package harness

import (
	"fmt"
	"time"

	"genealog/internal/clickstream"
	"genealog/internal/linearroad"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/provstore"
	"genealog/internal/smartgrid"
	"genealog/internal/telemetry"
	"genealog/internal/transport"
)

// Mode selects the provenance technique, the paper's NP/GL/BL.
type Mode string

// Provenance techniques.
const (
	ModeNP Mode = "NP"
	ModeGL Mode = "GL"
	ModeBL Mode = "BL"
)

// Modes lists the techniques in the paper's plotting order.
var Modes = []Mode{ModeNP, ModeGL, ModeBL}

// QueryID identifies one of the evaluation queries.
type QueryID string

// Evaluation queries. Q1-Q4 are the paper's use cases; Q5 is the bursty
// clickstream workload added to exercise adaptive batching.
const (
	Q1 QueryID = "Q1"
	Q2 QueryID = "Q2"
	Q3 QueryID = "Q3"
	Q4 QueryID = "Q4"
	Q5 QueryID = "Q5"
)

// Queries lists the evaluation queries in the paper's order.
var Queries = []QueryID{Q1, Q2, Q3, Q4, Q5}

// Deployment selects intra-process (Fig. 12) or inter-process (Fig. 13)
// execution.
type Deployment uint8

// Deployments.
const (
	Intra Deployment = iota + 1
	Inter
)

func (d Deployment) String() string {
	switch d {
	case Intra:
		return "intra-process"
	case Inter:
		return "inter-process"
	default:
		return "invalid"
	}
}

// DefaultAdaptiveMaxBatch is the adaptive controller's upper batch-size
// bound when Options.AdaptiveMaxBatch is zero.
const DefaultAdaptiveMaxBatch = 64

// adaptiveBounds resolves the adaptive controller's batch-size bounds with
// defaults applied (1 and DefaultAdaptiveMaxBatch).
func adaptiveBounds(o Options) (lo, hi int) {
	lo, hi = o.AdaptiveMinBatch, o.AdaptiveMaxBatch
	if lo <= 0 {
		lo = 1
	}
	if hi <= 0 {
		hi = DefaultAdaptiveMaxBatch
	}
	return lo, hi
}

// Options configures one measured run.
type Options struct {
	Query      QueryID
	Mode       Mode
	Deployment Deployment
	// LR, SG and CS parameterise the workload generators; zero values select
	// the package defaults.
	LR linearroad.Config
	SG smartgrid.Config
	CS clickstream.Config
	// MemSampleEvery is the heap sampling period (default 5 ms).
	MemSampleEvery time.Duration
	// ThrottleBytesPerSec throttles every inter-process link (0 =
	// unlimited; 12.5e6 models the paper's 100 Mbps switch).
	ThrottleBytesPerSec float64
	// ChannelCapacity overrides the stream capacity (0 = default).
	ChannelCapacity int
	// SourceRate paces the sources in tuples/second (0 = as fast as
	// possible, measuring peak sustainable throughput).
	SourceRate float64
	// SourceBurst, when non-nil, replaces the fixed SourceRate with an
	// on/off duty cycle (see ops.BurstPacing) — the workload shape the
	// adaptive batching controller is built for. Pacing only changes
	// arrival times; sink tuples and provenance stay byte-identical.
	SourceBurst *ops.BurstPacing
	// Parallelism shard-parallelises every keyed stateful operator
	// (Aggregate with a group-by key, Join with equi-join keys) across this
	// many instances; 0 or 1 selects serial execution. Sink tuples and
	// provenance are byte-identical at every level — keyed joins order
	// same-timestamp matches by (timestamp, left key, right key) at every
	// parallelism, see ops.ShardJoin — only the core utilisation changes
	// (query.Builder.ParallelizeStateful).
	Parallelism int
	// BatchSize sets the stream batch size: tuples cross every operator
	// queue — and every inter-process link — in vectors of up to this many,
	// amortising per-tuple channel and framing costs. 0 or 1 selects
	// unbatched per-tuple transport. Sink tuples and provenance are
	// byte-identical at every batch size; only throughput and per-tuple
	// latency change.
	BatchSize int
	// AdaptiveBatch turns on the AIMD batch-size controller
	// (internal/adapt): every stream's batch size is resized at runtime
	// from queue occupancy and batch fill, between AdaptiveMinBatch and
	// AdaptiveMaxBatch. BatchSize then only seeds the initial size. Sink
	// tuples and provenance are byte-identical with and without the
	// controller; only throughput and latency change.
	AdaptiveBatch bool
	// AdaptiveMinBatch and AdaptiveMaxBatch bound the controller
	// (defaults 1 and DefaultAdaptiveMaxBatch).
	AdaptiveMinBatch int
	AdaptiveMaxBatch int
	// UseBinaryCodec switches inter-process links from the gob codec to the
	// hand-rolled binary codec (the serialisation ablation).
	UseBinaryCodec bool
	// NoFusion disables the physical query planner (query.WithFusion):
	// every logical operator materialises as its own goroutine and stream
	// instead of fusing stateless chains and replicating stateless prefixes
	// into shard lanes. Sink tuples and provenance are identical either way;
	// only the framework overhead changes. The zero value keeps the planner
	// on (the engine default).
	NoFusion bool
	// NoVectorize disables the planner's columnar pass (query.WithVectorize):
	// stateless segments whose stages declare typed kernels run as row-at-a-
	// time closures instead of struct-of-arrays batches, and shard partitions
	// extract routing keys per tuple instead of per batch. Sink tuples and
	// provenance are byte-identical either way; only the per-tuple
	// interpretation overhead changes. The zero value keeps vectorization on
	// (the engine default).
	NoVectorize bool
	// StoreHorizon overrides the provenance store's retention horizon in
	// event-time units (0 = derive it from the query graph's stateful window
	// structure, which is always sufficient). Setting it tighter than the
	// derived value trades working-set size for re-encoding (surfaced by
	// Result.Warnings).
	StoreHorizon int64
	// StorePath, when non-empty, persists every assembled provenance result
	// (GL's traversed contribution graphs, BL's store joins) into a durable
	// provenance store — an internal/provstore append-only file log created
	// (truncated) at this path — with the query's retention horizon. After
	// the run the file answers Backward/Forward queries via
	// cmd/genealog-prov. The figure grids derive per-cell paths by appending
	// "-<query>-<mode>" (plus "-inter" for the inter-process grid) so cells
	// never overwrite each other; Repeat truncates the file per run, leaving
	// the last run's store.
	StorePath string
	// RemoteStore, when non-empty, streams every assembled provenance result
	// to the store node at this address (cmd/spe-node -store-listen) instead
	// of a local file: several SPE instances — or several whole deployments —
	// can share one store node, which merges their streams with per-instance
	// ID namespacing and answers global Backward/Forward queries live
	// (cmd/genealog-prov -connect). Deduplication and retention still run on
	// this instance; the run fails if the store node rejects or loses an
	// ingestion frame. Mutually exclusive with StorePath.
	RemoteStore string
	// Store, when non-nil, receives the assembled provenance instead of a
	// StorePath-created file log or a RemoteStore connection: the caller owns
	// the store's lifecycle (Close, queries after the run). Used by tests to
	// inspect an in-memory or remote-backed store; takes precedence over
	// StorePath and RemoteStore.
	Store *provstore.Store
	// OnProvenance, when non-nil, observes every assembled provenance
	// result, in delivery order, under any mode.
	OnProvenance func(provenance.Result)
	// Telemetry, when non-nil, receives live per-operator metrics from every
	// query the run builds (one registration per SPE instance in the
	// inter-process case, named "<query>-spe<n>") plus the provenance
	// store's ingest/retire/dedup counters when the run opens one. The
	// registry serves the figures over HTTP (telemetry.Registry.Listen);
	// nil — the default — keeps the hot path's telemetry pointers nil.
	Telemetry *telemetry.Registry
}

// Result is the outcome of one measured run.
type Result struct {
	Query      QueryID
	Mode       Mode
	Deployment Deployment
	// Parallelism is the shard parallelism the run executed with (0/1 =
	// serial).
	Parallelism int
	// BatchSize is the stream batch size the run executed with (0/1 =
	// unbatched). Under AdaptiveBatch it is only the initial size.
	BatchSize int
	// AdaptiveBatch reports whether the run executed with the AIMD
	// batch-size controller; AdaptiveMinBatch and AdaptiveMaxBatch are its
	// bounds (zero without the controller).
	AdaptiveBatch    bool
	AdaptiveMinBatch int
	AdaptiveMaxBatch int
	// Fusion reports whether the run executed with the physical planner
	// enabled (operator fusion + shard-prefix replication).
	Fusion bool
	// Vectorized reports whether the run executed with the planner's
	// columnar pass enabled (typed kernels over struct-of-arrays batches).
	Vectorized bool

	// SourceTuples is the number of source tuples processed.
	SourceTuples int64
	// SinkTuples is the number of sink tuples (alerts) produced.
	SinkTuples int64
	// ThroughputTPS is source tuples per second.
	ThroughputTPS float64
	// AvgLatencyMs is the paper's latency: sink emission minus the
	// wall-clock arrival of the latest contributing source tuple.
	AvgLatencyMs float64
	// P50LatencyMs and P99LatencyMs are latency quantiles (reservoir
	// sampled; exact for the typical alert volumes).
	P50LatencyMs float64
	P99LatencyMs float64
	// AvgMemMB and MaxMemMB are the sampled heap statistics.
	AvgMemMB float64
	MaxMemMB float64
	// ProvResults and ProvSources count assembled provenance results and
	// their (deduplicated) originating tuples.
	ProvResults int64
	ProvSources int64
	// TraversalAvgMs is the mean contribution-graph traversal time per sink
	// tuple (Fig. 14); per SPE instance in the inter-process case (index 0
	// = SPE instance 1).
	TraversalAvgMs       float64
	TraversalAvgMsPerSPE []float64
	// SourceBytes and ProvBytes approximate the source-data and
	// provenance-data volumes (the §7 "0.003%-0.5%" remark).
	SourceBytes int64
	ProvBytes   int64
	// NetBytes is the byte volume that crossed inter-process links.
	NetBytes int64
	// StoreBytes is the BL source store's final payload volume; StoreTuples
	// is its entry count (the paper's BL retains the whole source stream, so
	// with provenance-store rows next to these the BL-vs-GL serving cost is
	// directly comparable).
	StoreBytes  int64
	StoreTuples int64
	// ProvStoreBytes, ProvStoreSinks and ProvStoreSources describe the
	// durable provenance store written by the run (zero without one):
	// encoded volume, stored sink entries and deduplicated source entries.
	ProvStoreBytes   int64
	ProvStoreSinks   int64
	ProvStoreSources int64
	// ProvStoreDedup is source references per stored source entry (>= 1 when
	// sink tuples share sources; the serving-side saving of deduplication).
	ProvStoreDedup float64
	// ProvStoreReEncoded counts source tuples the store had to encode again
	// because their dedup handles were retired while sink tuples could still
	// reference them — a correctly sized retention horizon keeps it zero, so
	// any non-zero value is surfaced by Warnings.
	ProvStoreReEncoded int64
	// RemoteStore echoes Options.RemoteStore: the store node this run's
	// provenance was streamed to ("" for local stores).
	RemoteStore string
	// Elapsed is the wall-clock run duration.
	Elapsed time.Duration
}

// Warnings lists post-run conditions that deserve loud operator attention.
// Today that is one: the provenance store re-encoding retired sources, which
// means the retention horizon was too tight for the query's windows — the
// store stayed correct (every entry is durable) but the working-set bound
// was violated and duplicate encodings crept in. Widen the horizon
// (harness specs derive it as twice the query's window-span sum).
func (r Result) Warnings() []string {
	var w []string
	if r.ProvStoreReEncoded > 0 {
		w = append(w, fmt.Sprintf(
			"provenance store re-encoded %d source tuple(s): the retention horizon is too tight for %s's windows — dedup handles were retired while sink tuples could still reference them; widen the store horizon",
			r.ProvStoreReEncoded, r.Query))
	}
	return w
}

// ProvRatio returns provenance bytes over source bytes (e.g. 0.005 = 0.5%).
func (r Result) ProvRatio() float64 {
	if r.SourceBytes == 0 {
		return 0
	}
	return float64(r.ProvBytes) / float64(r.SourceBytes)
}

func (o *Options) validate() error {
	switch o.Query {
	case Q1, Q2, Q3, Q4, Q5:
	default:
		return fmt.Errorf("harness: unknown query %q", o.Query)
	}
	switch o.Mode {
	case ModeNP, ModeGL, ModeBL:
	default:
		return fmt.Errorf("harness: unknown mode %q", o.Mode)
	}
	switch o.Deployment {
	case Intra, Inter:
	default:
		return fmt.Errorf("harness: unknown deployment %d", o.Deployment)
	}
	if o.MemSampleEvery <= 0 {
		o.MemSampleEvery = 5 * time.Millisecond
	}
	if o.BatchSize < 0 {
		return fmt.Errorf("harness: negative batch size %d", o.BatchSize)
	}
	if o.BatchSize > transport.MaxBatchFrameTuples {
		return fmt.Errorf("harness: batch size %d exceeds the wire frame bound %d",
			o.BatchSize, transport.MaxBatchFrameTuples)
	}
	if o.AdaptiveBatch {
		min, max := adaptiveBounds(*o)
		if min > max {
			return fmt.Errorf("harness: adaptive batch bounds [%d, %d] are inverted", min, max)
		}
		if max > transport.MaxBatchFrameTuples {
			return fmt.Errorf("harness: adaptive max batch %d exceeds the wire frame bound %d",
				max, transport.MaxBatchFrameTuples)
		}
	}
	if o.StorePath != "" && o.RemoteStore != "" {
		return fmt.Errorf("harness: StorePath and RemoteStore are mutually exclusive (got %q and %q)",
			o.StorePath, o.RemoteStore)
	}
	if o.StoreHorizon < 0 {
		return fmt.Errorf("harness: negative store horizon %d", o.StoreHorizon)
	}
	return nil
}
