package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"genealog/internal/clickstream"
	"genealog/internal/linearroad"
	"genealog/internal/smartgrid"
)

// testOptions returns a small, fast workload configuration.
func testOptions() Options {
	return Options{
		LR: linearroad.Config{
			Cars: 10, Steps: 80, StopEvery: 7, StopDuration: 6,
			AccidentEvery: 16, Seed: 1,
		},
		SG: smartgrid.Config{
			Meters: 12, Days: 8, BlackoutEvery: 3, BlackoutMeters: 8,
			AnomalyEvery: 3, AnomalyValue: 300, Seed: 2,
		},
		CS: clickstream.Config{
			Users: 8, Windows: 6, HotEvery: 5, Pages: 10, Seed: 3,
		},
		MemSampleEvery: time.Millisecond,
	}
}

func run(t *testing.T, q QueryID, m Mode, d Deployment) Result {
	t.Helper()
	o := testOptions()
	o.Query, o.Mode, o.Deployment = q, m, d
	r, err := Run(context.Background(), o)
	if err != nil {
		t.Fatalf("Run(%s,%s,%s): %v", q, m, d, err)
	}
	return r
}

// expectedGraphSizes maps each query to the per-sink contribution graph
// size with the test workload (fixed injections): the Figs. 2/9B/10B/11B
// shapes.
var expectedGraphSizes = map[QueryID]int64{
	Q1: int64(linearroad.StopReports),                           // 4
	Q2: int64(linearroad.AccidentCars * linearroad.StopReports), // 8
	Q3: int64(8 * smartgrid.HoursPerDay),                        // 192
	Q4: int64(smartgrid.HoursPerDay + 1),                        // 24 in the paper; 25 here
	Q5: int64(clickstream.HotSessionClicks),                     // 6
}

func TestGraphShapes(t *testing.T) {
	for _, q := range Queries {
		t.Run(string(q), func(t *testing.T) {
			r := run(t, q, ModeGL, Intra)
			if r.SinkTuples == 0 {
				t.Fatal("no sink tuples produced")
			}
			if r.ProvResults != r.SinkTuples {
				t.Fatalf("prov results %d != sink tuples %d", r.ProvResults, r.SinkTuples)
			}
			want := expectedGraphSizes[q] * r.ProvResults
			if r.ProvSources != want {
				t.Fatalf("prov sources = %d, want %d (%d per sink tuple)",
					r.ProvSources, want, expectedGraphSizes[q])
			}
		})
	}
}

// TestModesAgreeOnQueryOutput: provenance capture must not change the query
// semantics — NP, GL and BL see identical sink tuple counts.
func TestModesAgreeOnQueryOutput(t *testing.T) {
	for _, q := range Queries {
		t.Run(string(q), func(t *testing.T) {
			np := run(t, q, ModeNP, Intra)
			gl := run(t, q, ModeGL, Intra)
			bl := run(t, q, ModeBL, Intra)
			if np.SinkTuples != gl.SinkTuples || np.SinkTuples != bl.SinkTuples {
				t.Fatalf("sink tuples disagree: NP=%d GL=%d BL=%d",
					np.SinkTuples, gl.SinkTuples, bl.SinkTuples)
			}
			if gl.ProvSources != bl.ProvSources {
				t.Fatalf("provenance sizes disagree: GL=%d BL=%d", gl.ProvSources, bl.ProvSources)
			}
		})
	}
}

// TestInterMatchesIntra: the distributed deployment must produce the same
// alerts and the same provenance volume as the single-instance one.
func TestInterMatchesIntra(t *testing.T) {
	for _, q := range Queries {
		t.Run(string(q), func(t *testing.T) {
			intra := run(t, q, ModeGL, Intra)
			inter := run(t, q, ModeGL, Inter)
			if intra.SinkTuples != inter.SinkTuples {
				t.Fatalf("sink tuples: intra=%d inter=%d", intra.SinkTuples, inter.SinkTuples)
			}
			if intra.ProvResults != inter.ProvResults {
				t.Fatalf("prov results: intra=%d inter=%d", intra.ProvResults, inter.ProvResults)
			}
			if intra.ProvSources != inter.ProvSources {
				t.Fatalf("prov sources: intra=%d inter=%d", intra.ProvSources, inter.ProvSources)
			}
			if inter.NetBytes == 0 {
				t.Fatal("inter-process run must report link traffic")
			}
			if len(inter.TraversalAvgMsPerSPE) != 2 {
				t.Fatalf("want per-SPE traversal stats, got %v", inter.TraversalAvgMsPerSPE)
			}
		})
	}
}

func TestInterModesAgree(t *testing.T) {
	for _, q := range Queries {
		t.Run(string(q), func(t *testing.T) {
			np := run(t, q, ModeNP, Inter)
			gl := run(t, q, ModeGL, Inter)
			bl := run(t, q, ModeBL, Inter)
			if np.SinkTuples != gl.SinkTuples || np.SinkTuples != bl.SinkTuples {
				t.Fatalf("sink tuples disagree: NP=%d GL=%d BL=%d",
					np.SinkTuples, gl.SinkTuples, bl.SinkTuples)
			}
			if gl.ProvSources != bl.ProvSources {
				t.Fatalf("provenance disagrees: GL=%d BL=%d", gl.ProvSources, bl.ProvSources)
			}
			// BL ships the whole source stream on top of the query's own
			// traffic.
			if bl.NetBytes <= np.NetBytes {
				t.Fatalf("BL traffic (%d) must exceed NP traffic (%d)", bl.NetBytes, np.NetBytes)
			}
			// The BL >> GL traffic gap needs rare alerts relative to the
			// stream volume; TestBLTrafficDominatesOnSparseAlerts covers it
			// with a sparse workload.
		})
	}
}

// TestBLTrafficDominatesOnSparseAlerts reproduces the paper's inter-process
// network claim: when alerts are rare relative to the source volume, GL
// ships only the (tiny) provenance data while BL ships the entire source
// stream.
func TestBLTrafficDominatesOnSparseAlerts(t *testing.T) {
	o := testOptions()
	o.Query, o.Deployment = Q1, Inter
	o.LR = linearroad.Config{
		Cars: 60, Steps: 300, StopEvery: 60, StopDuration: 4, Seed: 5,
	}
	o.Mode = ModeGL
	gl, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Mode = ModeBL
	bl, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if gl.SinkTuples == 0 || gl.SinkTuples != bl.SinkTuples {
		t.Fatalf("sink tuples: GL=%d BL=%d", gl.SinkTuples, bl.SinkTuples)
	}
	if bl.NetBytes < 2*gl.NetBytes {
		t.Fatalf("BL traffic (%d) must dwarf GL traffic (%d) on sparse alerts",
			bl.NetBytes, gl.NetBytes)
	}
}

func TestBLStoreRetainsEverything(t *testing.T) {
	r := run(t, Q1, ModeBL, Intra)
	if r.StoreBytes == 0 {
		t.Fatal("BL store must retain source tuples")
	}
	// The store holds every source tuple: bytes = tuples * payload size.
	want := r.SourceTuples * int64((&linearroad.PositionReport{}).ApproxBytes())
	if r.StoreBytes != want {
		t.Fatalf("store bytes = %d, want %d (all source tuples)", r.StoreBytes, want)
	}
}

func TestProvenanceVolumeSmallerThanSource(t *testing.T) {
	// The test workload is tiny and alert-dense, so the ratio is far above
	// the paper's 0.003%-0.5% (which the Size report reproduces on realistic
	// volumes); here we only check it is positive and below the source
	// volume.
	for _, q := range Queries {
		r := run(t, q, ModeGL, Intra)
		if ratio := r.ProvRatio(); ratio <= 0 || ratio >= 1 {
			t.Fatalf("%s provenance ratio = %f, want in (0,1)", q, ratio)
		}
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Options{
		{Query: "Q9", Mode: ModeGL, Deployment: Intra},
		{Query: Q1, Mode: "XX", Deployment: Intra},
		{Query: Q1, Mode: ModeGL, Deployment: 9},
	}
	for i, o := range bad {
		if _, err := Run(context.Background(), o); err == nil {
			t.Errorf("case %d: invalid options must fail", i)
		}
	}
}

func TestRepeatSummaries(t *testing.T) {
	o := testOptions()
	o.Query, o.Mode, o.Deployment = Q1, ModeGL, Intra
	s, err := Repeat(context.Background(), o, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput.N != 2 || s.Throughput.Mean <= 0 {
		t.Fatalf("throughput summary = %+v", s.Throughput)
	}
	if s.Last.SinkTuples == 0 {
		t.Fatal("missing last-run result")
	}
}

func TestFigureRendering(t *testing.T) {
	o := testOptions()
	// Shrink further: rendering correctness, not measurement quality.
	o.LR.Steps = 40
	o.SG.Days = 4
	fig, err := Fig12(context.Background(), o, 1)
	if err != nil {
		t.Fatal(err)
	}
	text := fig.Render()
	for _, want := range []string{"Q1", "Q4", "Throughput", "Max memory", "GL", "BL"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Fig12 rendering missing %q:\n%s", want, text)
		}
	}

	f14, err := Fig14(context.Background(), o, 1)
	if err != nil {
		t.Fatal(err)
	}
	text = f14.Render()
	if !strings.Contains(text, "Intra-process") || !strings.Contains(text, "SPE1") {
		t.Fatalf("Fig14 rendering incomplete:\n%s", text)
	}

	size, err := Size(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(size.Render(), "ratio") {
		t.Fatal("size report rendering incomplete")
	}
}

func TestThrottledInterRun(t *testing.T) {
	o := testOptions()
	o.Query, o.Mode, o.Deployment = Q1, ModeGL, Inter
	o.LR.Steps = 40
	o.ThrottleBytesPerSec = 50e6
	r, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if r.SinkTuples == 0 {
		t.Fatal("throttled run produced no output")
	}
}

func TestSourceRatePacing(t *testing.T) {
	o := testOptions()
	o.Query, o.Mode, o.Deployment = Q1, ModeGL, Intra
	o.LR.Steps = 20
	o.SourceRate = 5000
	r, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	// 10 cars x 20 steps at 5k t/s takes ~40 ms; the measured rate must sit
	// near the pacing target rather than the unthrottled hundreds of
	// thousands per second.
	if r.ThroughputTPS > 12_000 {
		t.Fatalf("paced throughput = %f, want <= ~5k within noise", r.ThroughputTPS)
	}
}

// TestInterLargeScaleNoDeadlock is the regression test for the watermark
// heartbeats: at this scale Q3's upstream unfolded stream (every daily
// aggregate unfolds into 24 records) outgrows the link buffering between two
// blackout alerts, which deadlocked the deployment before operators
// advertised watermark progress on sparse streams.
func TestInterLargeScaleNoDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megabyte deployment")
	}
	o := testOptions()
	o.Query, o.Mode, o.Deployment = Q3, ModeGL, Inter
	o.SG = smartgrid.Config{
		Meters: 60, Days: 40, BlackoutEvery: 7,
		BlackoutMeters: smartgrid.BlackoutMeterThreshold + 1,
		AnomalyEvery:   5, AnomalyValue: 300, Seed: 7,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	r, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.SinkTuples == 0 || r.ProvResults != r.SinkTuples {
		t.Fatalf("large-scale inter run: sink=%d prov=%d", r.SinkTuples, r.ProvResults)
	}

	o.Query = Q4
	r, err = Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.SinkTuples == 0 || r.ProvResults != r.SinkTuples {
		t.Fatalf("Q4 large-scale inter run: sink=%d prov=%d", r.SinkTuples, r.ProvResults)
	}
}

// TestInterBinaryCodecMatchesGob: the binary codec must be a drop-in
// replacement for gob on every query and mode.
func TestInterBinaryCodecMatchesGob(t *testing.T) {
	for _, q := range Queries {
		for _, m := range Modes {
			t.Run(string(q)+"/"+string(m), func(t *testing.T) {
				o := testOptions()
				o.Query, o.Mode, o.Deployment = q, m, Inter
				gob, err := Run(context.Background(), o)
				if err != nil {
					t.Fatal(err)
				}
				o.UseBinaryCodec = true
				bin, err := Run(context.Background(), o)
				if err != nil {
					t.Fatal(err)
				}
				if gob.SinkTuples != bin.SinkTuples {
					t.Fatalf("sink tuples: gob=%d binary=%d", gob.SinkTuples, bin.SinkTuples)
				}
				if gob.ProvSources != bin.ProvSources {
					t.Fatalf("prov sources: gob=%d binary=%d", gob.ProvSources, bin.ProvSources)
				}
				if m != ModeNP && bin.NetBytes >= gob.NetBytes {
					t.Fatalf("binary codec (%d B) should beat gob (%d B)", bin.NetBytes, gob.NetBytes)
				}
			})
		}
	}
}

// TestInterBatchedMatchesUnbatched: batched stream transport — including
// the batch wire frames on every inter-process link — must reproduce the
// unbatched deployment's sink tuples and provenance exactly, under both
// codecs.
func TestInterBatchedMatchesUnbatched(t *testing.T) {
	for _, q := range Queries {
		for _, binary := range []bool{false, true} {
			name := string(q) + "/gob"
			if binary {
				name = string(q) + "/binary"
			}
			t.Run(name, func(t *testing.T) {
				o := testOptions()
				o.Query, o.Mode, o.Deployment = q, ModeGL, Inter
				o.UseBinaryCodec = binary
				plain, err := Run(context.Background(), o)
				if err != nil {
					t.Fatal(err)
				}
				o.BatchSize = 64
				batched, err := Run(context.Background(), o)
				if err != nil {
					t.Fatal(err)
				}
				if plain.SinkTuples != batched.SinkTuples {
					t.Fatalf("sink tuples: batch 1 = %d, batch 64 = %d", plain.SinkTuples, batched.SinkTuples)
				}
				if plain.ProvResults != batched.ProvResults || plain.ProvSources != batched.ProvSources {
					t.Fatalf("provenance: batch 1 = %d/%d, batch 64 = %d/%d",
						plain.ProvResults, plain.ProvSources, batched.ProvResults, batched.ProvSources)
				}
				if batched.NetBytes == 0 {
					t.Fatal("batched inter-process run must report link traffic")
				}
				// Unbatched links keep the per-tuple wire format, so gob
				// batch frames ship strictly fewer bytes; binary batch
				// frames add one u32 count per batch, largely offset by
				// heartbeat coalescing — allow that 1% of framing slack.
				if batched.NetBytes > plain.NetBytes+plain.NetBytes/100 {
					t.Fatalf("batched links shipped %d B, unbatched %d B (more than 1%% framing slack)", batched.NetBytes, plain.NetBytes)
				}
			})
		}
	}
}
