package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"genealog/internal/baseline"
	"genealog/internal/clickstream"
	"genealog/internal/core"
	"genealog/internal/linearroad"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/query"
	"genealog/internal/smartgrid"
)

// parallelTestOptions is a small but alert-producing workload shared by the
// equivalence runs.
func parallelTestOptions(id QueryID, mode Mode, parallelism int) Options {
	return Options{
		Query:       id,
		Mode:        mode,
		Deployment:  Intra,
		Parallelism: parallelism,
		LR: linearroad.Config{
			Cars: 40, Steps: 120, StopEvery: 8, StopDuration: 6,
			AccidentEvery: 20, Seed: 11,
		},
		SG: smartgrid.Config{
			Meters: 23, Days: 10, BlackoutEvery: 3,
			BlackoutMeters: smartgrid.BlackoutMeterThreshold + 2,
			AnomalyEvery:   4, AnomalyValue: 250, Seed: 5,
		},
		CS: clickstream.Config{
			Users: 20, Windows: 12, HotEvery: 4, Pages: 16, Seed: 9,
		},
		MemSampleEvery: time.Second,
	}
}

// renderPayload renders a workload tuple's payload and event time — never
// its provenance pointers — as a canonical string.
func renderPayload(t core.Tuple) string {
	switch v := t.(type) {
	case *linearroad.PositionReport:
		return fmt.Sprintf("pr/%d/%d/%d/%d", v.Timestamp(), v.CarID, v.Speed, v.Pos)
	case *linearroad.StoppedCar:
		return fmt.Sprintf("sc/%d/%d/%d/%d/%d", v.Timestamp(), v.CarID, v.Count, v.DistinctPos, v.LastPos)
	case *linearroad.AccidentAlert:
		return fmt.Sprintf("aa/%d/%d/%d", v.Timestamp(), v.Pos, v.Count)
	case *smartgrid.MeterReading:
		return fmt.Sprintf("mr/%d/%d/%g", v.Timestamp(), v.MeterID, v.Cons)
	case *smartgrid.DailyCons:
		return fmt.Sprintf("dc/%d/%d/%g", v.Timestamp(), v.MeterID, v.ConsSum)
	case *smartgrid.BlackoutAlert:
		return fmt.Sprintf("ba/%d/%d", v.Timestamp(), v.Count)
	case *smartgrid.AnomalyAlert:
		return fmt.Sprintf("an/%d/%d/%g", v.Timestamp(), v.MeterID, v.ConsDiff)
	case *clickstream.ClickEvent:
		return fmt.Sprintf("ce/%d/%d/%d/%d", v.Timestamp(), v.UserID, v.PageID, v.DwellMs)
	case *clickstream.EngagedClick:
		return fmt.Sprintf("ec/%d/%d/%d", v.Timestamp(), v.UserID, v.PageID)
	case *clickstream.SessionCount:
		return fmt.Sprintf("scnt/%d/%d/%d", v.Timestamp(), v.UserID, v.Clicks)
	default:
		return fmt.Sprintf("%T/%d", t, t.Timestamp())
	}
}

// captured is one run's observable outcome: the sink tuple sequence and the
// traversed provenance of every sink tuple.
type captured struct {
	sinks []string
	prov  []string
}

// captureRun executes one query the way runIntra does — same graph, same
// instrumenter, same provenance plumbing — but records canonical sink and
// provenance strings instead of metrics.
func captureRun(t *testing.T, id QueryID, mode Mode, parallelism, batchSize int) captured {
	return captureRunPlan(t, id, mode, parallelism, batchSize, true, true)
}

// captureRunPlan is captureRun with the physical planner and its columnar
// pass switchable, plus any extra builder options (the adaptive-batching
// equivalence runs pass query.WithAdaptiveBatching).
func captureRunPlan(t *testing.T, id QueryID, mode Mode, parallelism, batchSize int, fusion, vectorize bool, extra ...query.Option) captured {
	t.Helper()
	o := parallelTestOptions(id, mode, parallelism)
	spec, err := specFor(id)
	if err != nil {
		t.Fatal(err)
	}
	gen, _, _ := spec.source(o)

	var store *baseline.Store
	if mode == ModeBL {
		store = baseline.NewStore()
	}
	instr := instrumenterFor(mode, 0, store)

	opts := append([]query.Option{query.WithInstrumenter(instr),
		query.WithBatchSize(batchSize),
		query.WithFusion(fusion),
		query.WithVectorize(vectorize)}, extra...)
	b := query.New(string(id)+"-capture", opts...)
	src := b.AddSource("source", gen)
	last := spec.addWhole(b, src)

	var cap captured
	addProv := func(r provenance.Result) {
		srcs := make([]string, 0, len(r.Sources))
		for _, s := range r.Sources {
			srcs = append(srcs, renderPayload(s))
		}
		sort.Strings(srcs)
		cap.prov = append(cap.prov, renderPayload(r.Sink)+"<-"+strings.Join(srcs, ","))
	}
	switch mode {
	case ModeGL:
		so, u := provenance.AddSU(b, "su", last, provenance.SUConfig{})
		sink := b.AddSink("sink", func(tp core.Tuple) error {
			cap.sinks = append(cap.sinks, renderPayload(tp))
			return nil
		})
		b.Connect(so, sink)
		provenance.AddCollector(b, "prov-sink", u, addProv)
	case ModeBL:
		resolver := baseline.Resolver{Store: store}
		sink := b.AddSink("sink", func(tp core.Tuple) error {
			cap.sinks = append(cap.sinks, renderPayload(tp))
			addProv(provenance.Result{Sink: tp, Sources: resolver.Resolve(tp)})
			return nil
		})
		b.Connect(last, sink)
	default:
		sink := b.AddSink("sink", func(tp core.Tuple) error {
			cap.sinks = append(cap.sinks, renderPayload(tp))
			return nil
		})
		b.Connect(last, sink)
	}

	b.ParallelizeStateful(parallelism)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return cap
}

// sortedCopy returns a sorted copy of ss.
func sortedCopy(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}

// TestShardParallelEquivalence is the tentpole's acceptance test: for each
// of Q1-Q4 under NP, GL and BL, execution with Parallelism(4) must yield
// sink output and contribution-graph traversal results identical to
// Parallelism(1). Every query — joins included — must match the serial sink
// sequence byte for byte: keyed joins order same-timestamp matches by
// (timestamp, left key, right key) at every parallelism (ops.ShardJoin).
func TestShardParallelEquivalence(t *testing.T) {
	for _, id := range Queries {
		for _, mode := range Modes {
			t.Run(string(id)+"/"+string(mode), func(t *testing.T) {
				serial := captureRun(t, id, mode, 1, 1)
				if len(serial.sinks) == 0 {
					t.Fatalf("%s/%s: serial run produced no sink tuples; workload too small", id, mode)
				}
				parallel := captureRun(t, id, mode, 4, 1)
				if len(parallel.sinks) != len(serial.sinks) {
					t.Fatalf("sink count differs: parallel %d, serial %d", len(parallel.sinks), len(serial.sinks))
				}
				sser, spar := serial.sinks, parallel.sinks
				for i := range sser {
					if sser[i] != spar[i] {
						t.Fatalf("sink tuple %d differs:\nserial:   %s\nparallel: %s", i, sser[i], spar[i])
					}
				}
				pser, ppar := sortedCopy(serial.prov), sortedCopy(parallel.prov)
				if len(pser) != len(ppar) {
					t.Fatalf("provenance result count differs: parallel %d, serial %d", len(ppar), len(pser))
				}
				for i := range pser {
					if pser[i] != ppar[i] {
						t.Fatalf("provenance result %d differs:\nserial:   %s\nparallel: %s", i, pser[i], ppar[i])
					}
				}
				if mode != ModeNP && len(serial.prov) == 0 {
					t.Fatalf("%s/%s: no provenance results; workload too small", id, mode)
				}
			})
		}
	}
}

// TestBatchedTransportEquivalence is the batching tentpole's acceptance
// test: for each of Q1-Q4 under NP, GL and BL, serial and Parallelism(4),
// execution with BatchSize 64 must yield sink output and contribution-graph
// traversal results byte-identical to BatchSize 1 — batching amortises
// channel operations without changing a single observable byte.
func TestBatchedTransportEquivalence(t *testing.T) {
	for _, id := range Queries {
		for _, mode := range Modes {
			for _, parallelism := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/p%d", id, mode, parallelism)
				t.Run(name, func(t *testing.T) {
					unbatched := captureRun(t, id, mode, parallelism, 1)
					if len(unbatched.sinks) == 0 {
						t.Fatalf("%s: unbatched run produced no sink tuples; workload too small", name)
					}
					batched := captureRun(t, id, mode, parallelism, 64)
					if len(batched.sinks) != len(unbatched.sinks) {
						t.Fatalf("sink count differs: batched %d, unbatched %d", len(batched.sinks), len(unbatched.sinks))
					}
					for i := range unbatched.sinks {
						if unbatched.sinks[i] != batched.sinks[i] {
							t.Fatalf("sink tuple %d differs:\nbatch 1:  %s\nbatch 64: %s", i, unbatched.sinks[i], batched.sinks[i])
						}
					}
					pu, pb := sortedCopy(unbatched.prov), sortedCopy(batched.prov)
					if len(pu) != len(pb) {
						t.Fatalf("provenance result count differs: batched %d, unbatched %d", len(pb), len(pu))
					}
					for i := range pu {
						if pu[i] != pb[i] {
							t.Fatalf("provenance result %d differs:\nbatch 1:  %s\nbatch 64: %s", i, pu[i], pb[i])
						}
					}
					if mode != ModeNP && len(unbatched.prov) == 0 {
						t.Fatalf("%s: no provenance results; workload too small", name)
					}
				})
			}
		}
	}
}

// TestFusedPlanEquivalence is the planner tentpole's acceptance test: for
// each of Q1-Q4 under NP, GL and BL, at parallelism 1 and 4, execution with
// the physical planner (operator fusion + shard-prefix replication) must
// yield sink output byte-identical to the unfused plan, and identical
// traversed provenance — fusion removes goroutine hops and hoists stateless
// prefixes into shard lanes without changing one observable byte.
func TestFusedPlanEquivalence(t *testing.T) {
	for _, id := range Queries {
		for _, mode := range Modes {
			for _, parallelism := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/p%d", id, mode, parallelism)
				t.Run(name, func(t *testing.T) {
					unfused := captureRunPlan(t, id, mode, parallelism, 1, false, true)
					if len(unfused.sinks) == 0 {
						t.Fatalf("%s: unfused run produced no sink tuples; workload too small", name)
					}
					fused := captureRunPlan(t, id, mode, parallelism, 1, true, true)
					if len(fused.sinks) != len(unfused.sinks) {
						t.Fatalf("sink count differs: fused %d, unfused %d", len(fused.sinks), len(unfused.sinks))
					}
					for i := range unfused.sinks {
						if unfused.sinks[i] != fused.sinks[i] {
							t.Fatalf("sink tuple %d differs:\nunfused: %s\nfused:   %s", i, unfused.sinks[i], fused.sinks[i])
						}
					}
					pu, pf := sortedCopy(unfused.prov), sortedCopy(fused.prov)
					if len(pu) != len(pf) {
						t.Fatalf("provenance result count differs: fused %d, unfused %d", len(pf), len(pu))
					}
					for i := range pu {
						if pu[i] != pf[i] {
							t.Fatalf("provenance result %d differs:\nunfused: %s\nfused:   %s", i, pu[i], pf[i])
						}
					}
					if mode != ModeNP && len(unfused.prov) == 0 {
						t.Fatalf("%s: no provenance results; workload too small", name)
					}
				})
			}
		}
	}
}

// TestVectorizedPlanEquivalence is the columnar runtime's acceptance test:
// for each of Q1-Q4 under NP, GL and BL, at parallelism 1 and 4, fusion on
// and off, batch 1 and 64, execution with the planner's columnar pass (typed
// kernels over struct-of-arrays batches, columnar window state for the
// stateful operators, batch-wise shard key extraction) must yield sink
// output byte-identical to the row-at-a-time plan, and identical traversed
// provenance. Batch 1 exercises the degenerate single-tuple runs of the
// columnar ingest; batch 64 the vectorized fast path.
func TestVectorizedPlanEquivalence(t *testing.T) {
	for _, id := range Queries {
		for _, mode := range Modes {
			for _, parallelism := range []int{1, 4} {
				for _, fusion := range []bool{true, false} {
					for _, batch := range []int{1, 64} {
						fusion, batch := fusion, batch
						name := fmt.Sprintf("%s/%s/p%d/fusion=%v/batch=%d", id, mode, parallelism, fusion, batch)
						t.Run(name, func(t *testing.T) {
							rows := captureRunPlan(t, id, mode, parallelism, batch, fusion, false)
							if len(rows.sinks) == 0 {
								t.Fatalf("%s: row-path run produced no sink tuples; workload too small", name)
							}
							vec := captureRunPlan(t, id, mode, parallelism, batch, fusion, true)
							if len(vec.sinks) != len(rows.sinks) {
								t.Fatalf("sink count differs: vectorized %d, rows %d", len(vec.sinks), len(rows.sinks))
							}
							for i := range rows.sinks {
								if rows.sinks[i] != vec.sinks[i] {
									t.Fatalf("sink tuple %d differs:\nrows:       %s\nvectorized: %s", i, rows.sinks[i], vec.sinks[i])
								}
							}
							pr, pv := sortedCopy(rows.prov), sortedCopy(vec.prov)
							if len(pr) != len(pv) {
								t.Fatalf("provenance result count differs: vectorized %d, rows %d", len(pv), len(pr))
							}
							for i := range pr {
								if pr[i] != pv[i] {
									t.Fatalf("provenance result %d differs:\nrows:       %s\nvectorized: %s", i, pr[i], pv[i])
								}
							}
							if mode != ModeNP && len(rows.prov) == 0 {
								t.Fatalf("%s: no provenance results; workload too small", name)
							}
						})
					}
				}
			}
		}
	}
}

// TestAdaptiveBatchEquivalence is the adaptive-batching acceptance test:
// for every query (bursty clickstream included) under NP, GL and BL, at
// parallelism 1 and 4, execution with the AIMD batch-size controller live —
// resizing every stream's batch size mid-run — must yield sink output and
// contribution-graph traversal results byte-identical to a fixed batch
// size. The controller may only move work between batches, never reorder,
// drop or duplicate a tuple.
func TestAdaptiveBatchEquivalence(t *testing.T) {
	for _, id := range Queries {
		for _, mode := range Modes {
			for _, parallelism := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/p%d", id, mode, parallelism)
				t.Run(name, func(t *testing.T) {
					fixed := captureRun(t, id, mode, parallelism, 64)
					if len(fixed.sinks) == 0 {
						t.Fatalf("%s: fixed-batch run produced no sink tuples; workload too small", name)
					}
					// A tight min and a batch-1 start maximise live resizes:
					// the controller has to grow from 1 toward 64 and shrink
					// back as queues drain.
					adaptive := captureRunPlan(t, id, mode, parallelism, 1, true, true,
						query.WithAdaptiveBatching(1, 64))
					if len(adaptive.sinks) != len(fixed.sinks) {
						t.Fatalf("sink count differs: adaptive %d, fixed %d", len(adaptive.sinks), len(fixed.sinks))
					}
					for i := range fixed.sinks {
						if fixed.sinks[i] != adaptive.sinks[i] {
							t.Fatalf("sink tuple %d differs:\nfixed:    %s\nadaptive: %s", i, fixed.sinks[i], adaptive.sinks[i])
						}
					}
					pf, pa := sortedCopy(fixed.prov), sortedCopy(adaptive.prov)
					if len(pf) != len(pa) {
						t.Fatalf("provenance result count differs: adaptive %d, fixed %d", len(pa), len(pf))
					}
					for i := range pf {
						if pf[i] != pa[i] {
							t.Fatalf("provenance result %d differs:\nfixed:    %s\nadaptive: %s", i, pf[i], pa[i])
						}
					}
					if mode != ModeNP && len(fixed.prov) == 0 {
						t.Fatalf("%s: no provenance results; workload too small", name)
					}
				})
			}
		}
	}
}

// TestHarnessAdaptiveDimension: a measured harness run accepts the adaptive
// batching dimension — intra- and inter-process, bursty source included —
// and reports it back in its result row.
func TestHarnessAdaptiveDimension(t *testing.T) {
	o := parallelTestOptions(Q5, ModeGL, 1)
	o.AdaptiveBatch = true
	o.SourceBurst = &ops.BurstPacing{
		BurstRate: 500_000, IdleRate: 1000,
		BurstFor: 20 * time.Millisecond, IdleFor: 5 * time.Millisecond,
	}
	for _, d := range []Deployment{Intra, Inter} {
		o.Deployment = d
		r, err := Run(context.Background(), o)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if !r.AdaptiveBatch {
			t.Fatalf("%s: Result.AdaptiveBatch = false, want true", d)
		}
		if r.AdaptiveMinBatch != 1 || r.AdaptiveMaxBatch != DefaultAdaptiveMaxBatch {
			t.Fatalf("%s: adaptive bounds = [%d, %d], want defaults [1, %d]",
				d, r.AdaptiveMinBatch, r.AdaptiveMaxBatch, DefaultAdaptiveMaxBatch)
		}
		if r.SinkTuples == 0 {
			t.Fatalf("%s: adaptive bursty run produced no sink tuples", d)
		}
	}
}

// TestHarnessParallelismDimension: a measured harness run accepts the
// parallelism, batch and fusion dimensions and reports them back in its
// result row.
func TestHarnessParallelismDimension(t *testing.T) {
	o := parallelTestOptions(Q1, ModeGL, 4)
	o.BatchSize = 32
	r, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Parallelism != 4 {
		t.Fatalf("Result.Parallelism = %d, want 4", r.Parallelism)
	}
	if r.BatchSize != 32 {
		t.Fatalf("Result.BatchSize = %d, want 32", r.BatchSize)
	}
	if !r.Fusion {
		t.Fatal("Result.Fusion = false, want true (the default)")
	}
	if r.SinkTuples == 0 {
		t.Fatal("parallel harness run produced no sink tuples")
	}
	o.NoFusion = true
	r, err = Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fusion {
		t.Fatal("Result.Fusion = true under Options.NoFusion")
	}
	if r.SinkTuples == 0 {
		t.Fatal("unfused harness run produced no sink tuples")
	}
}

// TestHarnessExplain: the plan helper reports the physical plan of a
// configuration without running it, intra- and inter-process.
func TestHarnessExplain(t *testing.T) {
	o := parallelTestOptions(Q1, ModeGL, 4)
	info, err := Explain(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Text, "physical plan") {
		t.Fatalf("Explain text misses the plan header:\n%s", info.Text)
	}
	if info.HoistedPrefixes == 0 {
		t.Fatalf("Q1 at parallelism 4 should hoist its zero-speed filter:\n%s", info.Text)
	}
	o.NoFusion = true
	info, err = Explain(o)
	if err != nil {
		t.Fatal(err)
	}
	if info.FusedChains != 0 || info.HoistedPrefixes != 0 {
		t.Fatalf("NoFusion plan still rewrites: %+v", info)
	}
	o.NoFusion = false
	o.Deployment = Inter
	info, err = Explain(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(info.Text, "physical plan"); got != 3 {
		t.Fatalf("inter-process GL Explain lists %d plans, want 3 (SPE1-3):\n%s", got, info.Text)
	}
}
