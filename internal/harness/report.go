package harness

import (
	"context"
	"fmt"
	"strings"

	"genealog/internal/metrics"
)

// Summaries aggregates the metrics of repeated runs of one configuration
// (the paper averages five runs and reports 95% confidence intervals).
type Summaries struct {
	Query      QueryID
	Mode       Mode
	Deployment Deployment

	Throughput metrics.Summary // tuples/s
	Latency    metrics.Summary // ms
	AvgMem     metrics.Summary // MB
	MaxMem     metrics.Summary // MB
	Traversal  metrics.Summary // ms per sink tuple
	// TraversalPerSPE holds Fig. 14's per-instance traversal summaries for
	// inter-process GL runs (index 0 = SPE instance 1).
	TraversalPerSPE []metrics.Summary

	// Last is the final run's full result (counts, volumes).
	Last Result
}

// Repeat performs runs measured executions of one configuration.
func Repeat(ctx context.Context, o Options, runs int) (Summaries, error) {
	if runs <= 0 {
		runs = 1
	}
	s := Summaries{Query: o.Query, Mode: o.Mode, Deployment: o.Deployment}
	var tput, lat, avgMem, maxMem, trav []float64
	perSPE := map[int][]float64{}
	for i := 0; i < runs; i++ {
		r, err := Run(ctx, o)
		if err != nil {
			return Summaries{}, fmt.Errorf("run %d/%d (%s %s): %w", i+1, runs, o.Query, o.Mode, err)
		}
		tput = append(tput, r.ThroughputTPS)
		lat = append(lat, r.AvgLatencyMs)
		avgMem = append(avgMem, r.AvgMemMB)
		maxMem = append(maxMem, r.MaxMemMB)
		trav = append(trav, r.TraversalAvgMs)
		for j, v := range r.TraversalAvgMsPerSPE {
			perSPE[j] = append(perSPE[j], v)
		}
		s.Last = r
	}
	s.Throughput = metrics.Summarize(tput)
	s.Latency = metrics.Summarize(lat)
	s.AvgMem = metrics.Summarize(avgMem)
	s.MaxMem = metrics.Summarize(maxMem)
	s.Traversal = metrics.Summarize(trav)
	for j := 0; j < len(perSPE); j++ {
		s.TraversalPerSPE = append(s.TraversalPerSPE, metrics.Summarize(perSPE[j]))
	}
	return s, nil
}

// Figure holds the measured grid of one paper figure: queries x modes.
type Figure struct {
	Title string
	// Cells[query][mode]
	Cells map[QueryID]map[Mode]Summaries
}

// cellStorePath derives a per-cell provenance-store path from a base path,
// so grid experiments (many queries x modes x deployments sharing one base
// Options) write one store file per cell instead of overwriting each other.
// NP assembles no provenance, so NP cells get no store file at all rather
// than a misleading header-only one.
func cellStorePath(base string, q QueryID, m Mode, d Deployment) string {
	if base == "" || m == ModeNP {
		return ""
	}
	path := fmt.Sprintf("%s-%s-%s", base, q, m)
	if d == Inter {
		path += "-inter"
	}
	return path
}

// cellRemoteStore blanks a remote store node address for NP cells (NP
// assembles no provenance to stream); every other cell shares the one node,
// which namespaces their streams per connection.
func cellRemoteStore(addr string, m Mode) string {
	if m == ModeNP {
		return ""
	}
	return addr
}

// runFigure measures every query under every mode for the given deployment.
func runFigure(ctx context.Context, base Options, deployment Deployment, runs int, title string) (*Figure, error) {
	fig := &Figure{Title: title, Cells: make(map[QueryID]map[Mode]Summaries)}
	for _, q := range Queries {
		fig.Cells[q] = make(map[Mode]Summaries)
		for _, m := range Modes {
			o := base
			o.Query = q
			o.Mode = m
			o.Deployment = deployment
			o.StorePath = cellStorePath(base.StorePath, q, m, deployment)
			o.RemoteStore = cellRemoteStore(base.RemoteStore, m)
			s, err := Repeat(ctx, o, runs)
			if err != nil {
				return nil, err
			}
			fig.Cells[q][m] = s
		}
	}
	return fig, nil
}

// Fig12 reproduces Figure 12: intra-process throughput, latency and memory
// for Q1-Q4 under NP, GL and BL.
func Fig12(ctx context.Context, base Options, runs int) (*Figure, error) {
	return runFigure(ctx, base, Intra, runs,
		"Figure 12: intra-process provenance overhead (single SPE instance)")
}

// Fig13 reproduces Figure 13: the same grid for the three-instance
// inter-process deployments.
func Fig13(ctx context.Context, base Options, runs int) (*Figure, error) {
	return runFigure(ctx, base, Inter, runs,
		"Figure 13: inter-process provenance overhead (3 SPE instances)")
}

// Render formats the figure as the paper's rows: one block per query, one
// line per metric, with GL and BL percentage deltas against NP.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", f.Title)
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("=", len(f.Title)))
	for _, q := range Queries {
		cells := f.Cells[q]
		np, gl, bl := cells[ModeNP], cells[ModeGL], cells[ModeBL]
		par := ""
		if np.Last.Parallelism > 1 {
			par = fmt.Sprintf(", parallelism %d", np.Last.Parallelism)
		}
		if np.Last.BatchSize > 1 {
			par += fmt.Sprintf(", batch %d", np.Last.BatchSize)
		}
		if np.Last.AdaptiveBatch {
			par += fmt.Sprintf(", adaptive batch [%d, %d]",
				np.Last.AdaptiveMinBatch, np.Last.AdaptiveMaxBatch)
		}
		if !np.Last.Fusion {
			par += ", fusion off"
		}
		if !np.Last.Vectorized {
			par += ", vectorize off"
		}
		fmt.Fprintf(&sb, "\n%s (source tuples: %d, sink tuples: NP=%d GL=%d BL=%d%s)\n",
			q, np.Last.SourceTuples, np.Last.SinkTuples, gl.Last.SinkTuples, bl.Last.SinkTuples, par)
		row := func(metric, unit string, pick func(Summaries) metrics.Summary) {
			n, g, b := pick(np), pick(gl), pick(bl)
			fmt.Fprintf(&sb, "  %-12s NP %12.1f ±%-8.1f GL %12.1f ±%-8.1f (%+6.1f%%)  BL %12.1f ±%-8.1f (%+6.1f%%)  %s\n",
				metric,
				n.Mean, n.CI95,
				g.Mean, g.CI95, metrics.PercentDelta(n.Mean, g.Mean),
				b.Mean, b.CI95, metrics.PercentDelta(n.Mean, b.Mean),
				unit)
		}
		row("Throughput", "t/s", func(s Summaries) metrics.Summary { return s.Throughput })
		row("Latency", "ms", func(s Summaries) metrics.Summary { return s.Latency })
		row("Avg memory", "MB", func(s Summaries) metrics.Summary { return s.AvgMem })
		row("Max memory", "MB", func(s Summaries) metrics.Summary { return s.MaxMem })
		if gl.Last.Deployment == Inter {
			fmt.Fprintf(&sb, "  %-12s GL %d bytes  BL %d bytes\n", "Net volume",
				gl.Last.NetBytes, bl.Last.NetBytes)
		}
		// The serving-side store cost: BL retains every source tuple for its
		// provenance join (§7's pathology), GL persists only delivered
		// provenance — deduplicated — into the provenance store when one is
		// configured.
		fmt.Fprintf(&sb, "  %-12s BL %d B (%d source tuples retained)\n", "BL store",
			bl.Last.StoreBytes, bl.Last.StoreTuples)
		if gl.Last.ProvStoreBytes > 0 || bl.Last.ProvStoreBytes > 0 {
			remote := ""
			if gl.Last.RemoteStore != "" {
				remote = fmt.Sprintf("  [store node %s]", gl.Last.RemoteStore)
			}
			fmt.Fprintf(&sb, "  %-12s GL %d B (%d sinks, %d sources, dedup %.2fx)  BL %d B (dedup %.2fx)%s\n",
				"Prov store",
				gl.Last.ProvStoreBytes, gl.Last.ProvStoreSinks, gl.Last.ProvStoreSources, gl.Last.ProvStoreDedup,
				bl.Last.ProvStoreBytes, bl.Last.ProvStoreDedup, remote)
		}
		// Retention misconfiguration is loud: a horizon too tight for the
		// query's windows silently costs duplicate encodings otherwise.
		for _, m := range Modes {
			for _, warn := range cells[m].Last.Warnings() {
				fmt.Fprintf(&sb, "  %-12s %s: %s\n", "WARNING", m, warn)
			}
		}
	}
	return sb.String()
}

// Fig14 reproduces Figure 14: the mean contribution-graph traversal time per
// sink tuple, intra-process and per SPE instance inter-process, for GL.
type Fig14Result struct {
	// Intra[q] is the intra-process traversal summary (ms).
	Intra map[QueryID]metrics.Summary
	// Inter[q] is the per-instance traversal summary (ms), index 0 = SPE 1.
	Inter map[QueryID][]metrics.Summary
}

// Fig14 measures the traversal cost of every query under GL.
func Fig14(ctx context.Context, base Options, runs int) (*Fig14Result, error) {
	out := &Fig14Result{
		Intra: make(map[QueryID]metrics.Summary),
		Inter: make(map[QueryID][]metrics.Summary),
	}
	for _, q := range Queries {
		o := base
		o.Query = q
		o.Mode = ModeGL
		o.Deployment = Intra
		o.StorePath = cellStorePath(base.StorePath, q, ModeGL, Intra)
		s, err := Repeat(ctx, o, runs)
		if err != nil {
			return nil, err
		}
		out.Intra[q] = s.Traversal
		o.Deployment = Inter
		o.StorePath = cellStorePath(base.StorePath, q, ModeGL, Inter)
		s, err = Repeat(ctx, o, runs)
		if err != nil {
			return nil, err
		}
		out.Inter[q] = s.TraversalPerSPE
	}
	return out, nil
}

// Render formats Figure 14's two panels.
func (f *Fig14Result) Render() string {
	var sb strings.Builder
	title := "Figure 14: contribution-graph traversal time per sink tuple (GL)"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&sb, "\nIntra-process (ms):\n")
	for _, q := range Queries {
		s := f.Intra[q]
		fmt.Fprintf(&sb, "  %s  %8.4f ±%.4f\n", q, s.Mean, s.CI95)
	}
	fmt.Fprintf(&sb, "\nInter-process (ms, per SPE instance):\n")
	for _, q := range Queries {
		fmt.Fprintf(&sb, "  %s ", q)
		for i, s := range f.Inter[q] {
			fmt.Fprintf(&sb, " SPE%d %8.4f ±%.4f ", i+1, s.Mean, s.CI95)
		}
		fmt.Fprintln(&sb)
	}
	return sb.String()
}

// SizeReport reproduces the §7 remark that provenance volume is 0.003%-0.5%
// of the source data volume.
type SizeReport struct {
	Rows map[QueryID]Result
}

// Size measures the provenance-to-source volume ratio for every query (GL,
// intra-process).
func Size(ctx context.Context, base Options) (*SizeReport, error) {
	out := &SizeReport{Rows: make(map[QueryID]Result)}
	for _, q := range Queries {
		o := base
		o.Query = q
		o.Mode = ModeGL
		o.Deployment = Intra
		o.StorePath = cellStorePath(base.StorePath, q, ModeGL, Intra)
		r, err := Run(ctx, o)
		if err != nil {
			return nil, err
		}
		out.Rows[q] = r
	}
	return out, nil
}

// Render formats the size report.
func (s *SizeReport) Render() string {
	var sb strings.Builder
	title := "Provenance volume vs source volume (GL, intra-process)"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	for _, q := range Queries {
		r := s.Rows[q]
		fmt.Fprintf(&sb, "  %s  source %10d B  provenance %8d B  ratio %.4f%%  (%d results, %d source tuples linked)\n",
			q, r.SourceBytes, r.ProvBytes, 100*r.ProvRatio(), r.ProvResults, r.ProvSources)
	}
	return sb.String()
}
