package harness

import (
	"context"
	"path/filepath"
	"testing"

	"genealog/internal/clickstream"
	"genealog/internal/linearroad"
	"genealog/internal/smartgrid"
)

// TestDerivedStoreHorizons pins the graph-derived retention horizons to the
// values the paper's window settings imply: twice the deepest summed window
// span on any source-to-sink path. A change here means a query's window
// structure changed — the store sizing follows automatically, which is the
// point of deriving.
func TestDerivedStoreHorizons(t *testing.T) {
	want := map[QueryID]int64{
		Q1: 2 * linearroad.Q1WindowSize,
		Q2: 2 * (linearroad.Q1WindowSize + linearroad.Q2WindowSize),
		Q3: 2 * (2 * smartgrid.HoursPerDay),
		Q4: 2 * (smartgrid.HoursPerDay + smartgrid.Q4JoinWindow),
		Q5: 2 * clickstream.SessionWindow,
	}
	for _, q := range Queries {
		got, err := StoreHorizon(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[q] {
			t.Errorf("StoreHorizon(%s) = %d, want %d", q, got, want[q])
		}
	}
}

// TestStoreHorizonOverride: Options.StoreHorizon replaces the derived
// horizon when set, and 0 keeps the derivation.
func TestStoreHorizonOverride(t *testing.T) {
	spec, err := specFor(Q1)
	if err != nil {
		t.Fatal(err)
	}
	o := parallelTestOptions(Q1, ModeGL, 1)
	o.StorePath = filepath.Join(t.TempDir(), "prov")
	st, owned, err := o.openProvStore(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !owned {
		t.Fatal("StorePath store should be run-owned")
	}
	if got := st.Stats().Horizon; got != 2*linearroad.Q1WindowSize {
		t.Fatalf("derived horizon = %d, want %d", got, 2*linearroad.Q1WindowSize)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}

	o.StorePath = filepath.Join(t.TempDir(), "prov-override")
	o.StoreHorizon = 999
	st, _, err = o.openProvStore(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Horizon; got != 999 {
		t.Fatalf("overridden horizon = %d, want 999", got)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}

	o.StoreHorizon = -1
	if err := o.validate(); err == nil {
		t.Fatal("negative StoreHorizon validated")
	}
}

// TestDerivedHorizonNeverTooTight: with the derived horizon, no query run
// can re-encode a retired source — re-encoding means the horizon was tighter
// than the query's windows, which the derivation makes impossible.
func TestDerivedHorizonNeverTooTight(t *testing.T) {
	for _, q := range Queries {
		t.Run(string(q), func(t *testing.T) {
			o := parallelTestOptions(q, ModeGL, 1)
			o.StorePath = filepath.Join(t.TempDir(), "prov")
			r, err := Run(context.Background(), o)
			if err != nil {
				t.Fatal(err)
			}
			if r.ProvStoreSinks == 0 {
				t.Fatalf("%s: store holds no sink entries; workload too small", q)
			}
			if r.ProvStoreReEncoded != 0 {
				t.Fatalf("%s: derived horizon re-encoded %d sources", q, r.ProvStoreReEncoded)
			}
			if w := r.Warnings(); len(w) != 0 {
				t.Fatalf("%s: unexpected warnings: %v", q, w)
			}
		})
	}
}
