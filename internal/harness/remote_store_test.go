package harness

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"genealog/internal/provenance"
	"genealog/internal/provstore"
)

// The distributed provenance-store suite: SPE instances stream their
// collectors' ingestion to one store node over the remote backend, and the
// merged store must answer exactly what the in-run traversals delivered —
// across instances, parallelism, batching and a store-node crash.

// startStoreNode runs a store node over be on an ephemeral port.
func startStoreNode(t *testing.T, be provstore.Backend) (*provstore.Server, string) {
	t.Helper()
	srv := provstore.NewServer(be)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr.String()
}

// connectStore dials the store node with the query's retention horizon.
func connectStore(t *testing.T, addr string, q QueryID, ropts ...provstore.RemoteOption) *provstore.Store {
	t.Helper()
	spec, err := specFor(q)
	if err != nil {
		t.Fatal(err)
	}
	st, err := provstore.Connect(context.Background(), addr, provstore.Options{Horizon: spec.storeHorizon()}, ropts...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// storeDigest renders a store's contents as a sorted multiset of
// "sink <- sources" payload lines — the ID-free form two deployments of the
// same workload must agree on.
func storeDigest(t *testing.T, st *provstore.Store) []string {
	t.Helper()
	var lines []string
	for _, id := range st.SinkIDs() {
		sink, sources, err := st.Backward(id)
		if err != nil {
			t.Fatal(err)
		}
		srcs := make([]string, 0, len(sources))
		for _, src := range sources {
			srcs = append(srcs, src.Payload)
		}
		sort.Strings(srcs)
		lines = append(lines, sink.Payload+" <- "+strings.Join(srcs, "|"))
	}
	sort.Strings(lines)
	return lines
}

// backendDigest is storeDigest against a raw backend — the store node's
// merged view.
func backendDigest(t *testing.T, be provstore.Backend) []string {
	t.Helper()
	var lines []string
	for _, id := range be.SinkIDs(-1) {
		sink, ok := be.Sink(id)
		if !ok {
			t.Fatalf("backend lost sink %d", id)
		}
		srcs := make([]string, 0, len(sink.Sources))
		for _, srcID := range sink.Sources {
			src, ok := be.Source(srcID)
			if !ok {
				t.Fatalf("sink %d references missing source %d", id, srcID)
			}
			srcs = append(srcs, src.Payload)
		}
		sort.Strings(srcs)
		lines = append(lines, sink.Payload+" <- "+strings.Join(srcs, "|"))
	}
	sort.Strings(lines)
	return lines
}

// TestRemoteStoreMatchesTraversal is the acceptance test for a query split
// across SPE instances with one remote store node: the three-instance
// inter-process deployment streams its collector's ingestion to the node,
// and afterwards Backward(sinkID) must equal the traversed contribution set,
// Forward must be its exact inverse, dedup must be exact and retention
// complete (verifyStoreMatchesTraversal) — both on the instance's own view
// and on the store node's merged view.
func TestRemoteStoreMatchesTraversal(t *testing.T) {
	for _, q := range Queries {
		t.Run(string(q), func(t *testing.T) {
			be := provstore.NewMemoryBackend(0)
			srv, addr := startStoreNode(t, be)
			defer srv.Close()

			st := connectStore(t, addr, q)
			var results []provenance.Result
			o := testOptions()
			o.Query, o.Mode, o.Deployment = q, ModeGL, Inter
			o.Store = st
			o.OnProvenance = func(r provenance.Result) { results = append(results, r) }
			if _, err := Run(context.Background(), o); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if len(results) == 0 {
				t.Fatal("no provenance delivered")
			}
			verifyStoreMatchesTraversal(t, st, results)

			// The store node's merged view holds exactly the same contents
			// (remapped onto global IDs).
			local, merged := storeDigest(t, st), backendDigest(t, be)
			if strings.Join(local, "\n") != strings.Join(merged, "\n") {
				t.Fatalf("store node diverges from the instance's view:\n--- instance ---\n%s\n--- store node ---\n%s",
					strings.Join(local, "\n"), strings.Join(merged, "\n"))
			}
			ss := srv.Stats()
			ls := st.Stats()
			if ss.Sinks != ls.Sinks || ss.Sources != ls.Sources || ss.SourceRefs != ls.SourceRefs {
				t.Fatalf("store node stats %+v diverge from instance stats %+v", ss, ls)
			}
		})
	}
}

// TestRemoteStoreRetiresMidStream: retention runs on the ingesting instance
// while it streams to the node — the live working set peaks well below the
// total stored sources on the long Linear Road streams, exactly as with a
// local backend.
func TestRemoteStoreRetiresMidStream(t *testing.T) {
	srv, addr := startStoreNode(t, provstore.NewMemoryBackend(0))
	defer srv.Close()
	st := connectStore(t, addr, Q1)
	o := testOptions()
	o.Query, o.Mode, o.Deployment = Q1, ModeGL, Intra
	o.Store = st
	if _, err := Run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ss := st.Stats()
	if ss.PeakLiveSources >= ss.Sources {
		t.Fatalf("peak live %d of %d sources: retention never ran during the stream", ss.PeakLiveSources, ss.Sources)
	}
	if ss.ReEncoded != 0 {
		t.Fatalf("%d sources re-encoded: the horizon is too tight", ss.ReEncoded)
	}
}

// mergeDigests joins per-instance digests into the multiset their union
// forms on a shared store.
func mergeDigests(parts ...[]string) []string {
	var all []string
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Strings(all)
	return all
}

// TestTwoInstancesShareOneStoreNode is the equivalence satellite: two SPE
// instances running distinct workloads and sharing one remote store node
// yield exactly the union of their per-instance local stores — payload-set
// digests equal, global dedup exact (each instance's source entries encoded
// once, counts additive) — for Q1/Q4 x parallelism 1/4 x batch 1/64, with
// the two instances ingesting concurrently.
func TestTwoInstancesShareOneStoreNode(t *testing.T) {
	for _, q := range []QueryID{Q1, Q4} {
		t.Run(string(q), func(t *testing.T) {
			optsA := testOptions()
			optsB := testOptions()
			// Distinct workloads: instance B sees different streams.
			optsB.LR.Seed, optsB.SG.Seed = 9, 11
			optsB.LR.Cars, optsB.SG.Meters = 8, 10

			// Reference: each instance against its own local store. Store
			// contents are configuration-independent (the PR-4 acceptance
			// grid), so one local run per instance serves every config below.
			prep := func(o Options) ([]string, provstore.Stats) {
				o.Query, o.Mode, o.Deployment = q, ModeGL, Intra
				st, results := runWithStore(t, o)
				if len(results) == 0 {
					t.Fatal("no provenance delivered")
				}
				return storeDigest(t, st), st.Stats()
			}
			digestA, statsA := prep(optsA)
			digestB, statsB := prep(optsB)
			want := strings.Join(mergeDigests(digestA, digestB), "\n")

			for _, p := range []int{1, 4} {
				for _, batch := range []int{1, 64} {
					if testing.Short() && batch == 64 {
						continue
					}
					t.Run(fmt.Sprintf("P%d/B%d", p, batch), func(t *testing.T) {
						be := provstore.NewMemoryBackend(0)
						srv, addr := startStoreNode(t, be)
						defer srv.Close()

						runInstance := func(o Options) error {
							o.Query, o.Mode, o.Deployment = q, ModeGL, Intra
							o.Parallelism, o.BatchSize = p, batch
							st := connectStore(t, addr, q)
							o.Store = st
							if _, err := Run(context.Background(), o); err != nil {
								return err
							}
							return st.Close()
						}
						var wg sync.WaitGroup
						errs := make([]error, 2)
						for i, o := range []Options{optsA, optsB} {
							wg.Add(1)
							go func(i int, o Options) {
								defer wg.Done()
								errs[i] = runInstance(o)
							}(i, o)
						}
						wg.Wait()
						for i, err := range errs {
							if err != nil {
								t.Fatalf("instance %d: %v", i, err)
							}
						}

						got := strings.Join(backendDigest(t, be), "\n")
						if got != want {
							t.Fatalf("shared store diverges from the union of the local stores:\n--- shared ---\n%s\n--- union ---\n%s", got, want)
						}
						ss := srv.Stats()
						if ss.Sinks != statsA.Sinks+statsB.Sinks ||
							ss.Sources != statsA.Sources+statsB.Sources ||
							ss.SourceRefs != statsA.SourceRefs+statsB.SourceRefs {
							t.Fatalf("merged stats %+v are not the sum of %+v and %+v (dedup not exact)", ss, statsA, statsB)
						}
					})
				}
			}
		})
	}
}

// TestStoreNodeKilledMidRun is the chaos satellite: the store node dies mid-
// run — the SPE query must fail with a descriptive store error instead of
// deadlocking or silently dropping provenance, and a restarted node must
// reopen its file log and answer queries for everything acked before the
// kill.
func TestStoreNodeKilledMidRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.glprov")
	spec, err := specFor(Q1)
	if err != nil {
		t.Fatal(err)
	}
	be, err := provstore.CreateFileLog(path, spec.storeHorizon())
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startStoreNode(t, be)

	// FlushEvery(1) acks every ingest, so "acked before the kill" is exactly
	// the results the run had delivered when the node died.
	st := connectStore(t, addr, Q1, provstore.WithFlushEvery(1))
	var delivered int
	var killOnce sync.Once
	o := testOptions()
	o.Query, o.Mode, o.Deployment = Q1, ModeGL, Inter
	o.Store = st
	o.OnProvenance = func(provenance.Result) {
		delivered++
		if delivered == 3 {
			killOnce.Do(srv.Kill)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, runErr := Run(ctx, o)
	if err := st.Close(); runErr == nil {
		runErr = err
	}
	if runErr == nil {
		t.Fatal("the query must fail when the store node dies mid-run")
	}
	if !strings.Contains(runErr.Error(), "provstore") {
		t.Fatalf("query failed, but not with a store error: %v", runErr)
	}
	if ctx.Err() != nil {
		t.Fatalf("query only failed via the timeout (deadlock until cancellation): %v", runErr)
	}
	if delivered < 3 {
		t.Fatalf("only %d results delivered before the kill", delivered)
	}

	// Restart the node on the same log: everything acked before the kill —
	// at least the 3 delivered results — is indexed and fully resolvable.
	be2, err := provstore.OpenFileLogAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	srv2, addr2 := startStoreNode(t, be2)
	defer srv2.Close()
	c, err := provstore.DialQuery(context.Background(), addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ss, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ss.Sinks < 3 {
		t.Fatalf("restarted node holds %d sink entries, want at least the 3 acked before the kill", ss.Sinks)
	}
	sinks, err := c.List(-1)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(sinks)) != ss.Sinks {
		t.Fatalf("List returned %d entries, stats claim %d", len(sinks), ss.Sinks)
	}
	for _, sink := range sinks {
		_, sources, err := c.Backward(sink.ID)
		if err != nil {
			t.Fatalf("Backward(%d) after restart: %v", sink.ID, err)
		}
		if len(sources) == 0 {
			t.Fatalf("sink %d resolved to no sources after restart", sink.ID)
		}
	}

	// The restarted node keeps ingesting: a fresh run against it succeeds and
	// extends the same store.
	st2 := connectStore(t, addr2, Q1, provstore.WithFlushEvery(1))
	o2 := testOptions()
	o2.Query, o2.Mode, o2.Deployment = Q1, ModeGL, Intra
	o2.Store = st2
	o2.OnProvenance = nil
	if _, err := Run(context.Background(), o2); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	ss2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ss2.Sinks <= ss.Sinks {
		t.Fatalf("restarted node did not grow: %d sinks before, %d after a full run", ss.Sinks, ss2.Sinks)
	}
}

// TestRetentionWarning is the ReEncoded satellite: an artificially short
// horizon forces the store to re-encode sources whose dedup handles were
// retired too early, and the harness surfaces that loudly — on the Result
// and in the rendered report.
func TestRetentionWarning(t *testing.T) {
	o := testOptions()
	o.Query, o.Mode, o.Deployment = Q1, ModeGL, Intra
	o.Store = provstore.NewMemory(provstore.Options{Horizon: 0})
	res, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProvStoreReEncoded == 0 {
		t.Fatal("a zero horizon on Q1 must re-encode shared sources")
	}
	warnings := res.Warnings()
	if len(warnings) != 1 || !strings.Contains(warnings[0], "retention horizon is too tight") {
		t.Fatalf("Warnings() = %q, want the horizon warning", warnings)
	}

	// The figure report renders the warning next to the cell's store rows.
	fig := &Figure{Title: "warning smoke", Cells: map[QueryID]map[Mode]Summaries{
		Q1: {ModeNP: {}, ModeGL: {Last: res}, ModeBL: {}},
		Q2: {}, Q3: {}, Q4: {},
	}}
	text := fig.Render()
	if !strings.Contains(text, "WARNING") || !strings.Contains(text, "retention horizon is too tight") {
		t.Fatalf("report does not surface the retention warning:\n%s", text)
	}

	// A correctly sized horizon stays silent.
	o.Store = nil
	o.StorePath = filepath.Join(t.TempDir(), "ok.glprov")
	res, err = Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProvStoreReEncoded != 0 || len(res.Warnings()) != 0 {
		t.Fatalf("spec horizon must not warn: reenc=%d warnings=%q", res.ProvStoreReEncoded, res.Warnings())
	}
}

// TestRemoteStoreOption: the Options.RemoteStore knob (the path genealog-
// bench -remote-store and spe-node -store take) connects, streams and
// reports like a caller-owned connection.
func TestRemoteStoreOption(t *testing.T) {
	be := provstore.NewMemoryBackend(0)
	srv, addr := startStoreNode(t, be)
	defer srv.Close()

	o := testOptions()
	o.Query, o.Mode, o.Deployment = Q1, ModeGL, Intra
	o.RemoteStore = addr
	res, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteStore != addr {
		t.Fatalf("Result.RemoteStore = %q, want %q", res.RemoteStore, addr)
	}
	if res.ProvStoreSinks == 0 || int64(be.SinkCount()) != res.ProvStoreSinks {
		t.Fatalf("store node holds %d sinks, result reports %d", be.SinkCount(), res.ProvStoreSinks)
	}

	// NP assembles no provenance: requesting a remote store under NP fails.
	o.Mode = ModeNP
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("RemoteStore under NP must fail")
	}

	// StorePath and RemoteStore are mutually exclusive.
	o.Mode, o.StorePath = ModeGL, filepath.Join(t.TempDir(), "x.glprov")
	if _, err := Run(context.Background(), o); err == nil {
		t.Fatal("StorePath + RemoteStore must fail validation")
	}
}
