package harness

import "genealog/internal/metrics"

// CellJSON is one machine-readable benchmark cell — the JSON twin of a
// rendered figure row, emitted by genealog-bench -json so CI can accumulate
// a perf trajectory (BENCH_*.json artifacts) instead of scraping text.
//
// Figure cells (fig12/fig13) carry throughput/latency/memory summaries and
// the provenance overhead relative to the same query's NP cell; traversal
// cells (fig14) carry the per-sink traversal cost (one entry intra-process,
// one per SPE instance inter-process); size cells carry the
// provenance-to-source volume ratio. Unused metrics are omitted.
type CellJSON struct {
	Experiment string `json:"experiment"`
	Query      string `json:"query"`
	Mode       string `json:"mode,omitempty"`
	Deployment string `json:"deployment,omitempty"`

	// Config actually in effect for the cell (auto parallelism resolved).
	Parallelism int  `json:"parallelism,omitempty"`
	BatchSize   int  `json:"batch,omitempty"`
	Fusion      bool `json:"fusion"`
	Vectorized  bool `json:"vectorized"`

	SourceTuples int64 `json:"source_tuples,omitempty"`
	SinkTuples   int64 `json:"sink_tuples,omitempty"`

	ThroughputTPS  float64 `json:"throughput_tps,omitempty"`
	ThroughputCI95 float64 `json:"throughput_ci95,omitempty"`
	// OverheadPct is the throughput delta vs the same query's NP cell
	// (negative = slower than NP); 0 for NP cells themselves.
	OverheadPct float64 `json:"overhead_pct"`
	LatencyMs   float64 `json:"latency_ms,omitempty"`
	AvgMemMB    float64 `json:"avg_mem_mb,omitempty"`
	MaxMemMB    float64 `json:"max_mem_mb,omitempty"`

	// TraversalMs is fig14's per-sink traversal cost: one entry
	// intra-process, one per SPE instance inter-process.
	TraversalMs []float64 `json:"traversal_ms,omitempty"`

	SourceBytes  int64   `json:"source_bytes,omitempty"`
	ProvBytes    int64   `json:"prov_bytes,omitempty"`
	ProvRatioPct float64 `json:"prov_ratio_pct,omitempty"`
}

// JSONCells flattens the figure grid into cells under the given experiment
// name, computing each GL/BL cell's throughput overhead against its NP cell.
func (f *Figure) JSONCells(experiment string) []CellJSON {
	var cells []CellJSON
	for _, q := range Queries {
		np := f.Cells[q][ModeNP]
		for _, m := range Modes {
			s := f.Cells[q][m]
			c := CellJSON{
				Experiment:     experiment,
				Query:          string(q),
				Mode:           string(m),
				Deployment:     s.Last.Deployment.String(),
				Parallelism:    s.Last.Parallelism,
				BatchSize:      s.Last.BatchSize,
				Fusion:         s.Last.Fusion,
				Vectorized:     s.Last.Vectorized,
				SourceTuples:   s.Last.SourceTuples,
				SinkTuples:     s.Last.SinkTuples,
				ThroughputTPS:  s.Throughput.Mean,
				ThroughputCI95: s.Throughput.CI95,
				LatencyMs:      s.Latency.Mean,
				AvgMemMB:       s.AvgMem.Mean,
				MaxMemMB:       s.MaxMem.Mean,
			}
			if m != ModeNP {
				c.OverheadPct = metrics.PercentDelta(np.Throughput.Mean, s.Throughput.Mean)
			}
			cells = append(cells, c)
		}
	}
	return cells
}

// JSONCells flattens Figure 14's two panels into traversal cells.
func (f *Fig14Result) JSONCells() []CellJSON {
	var cells []CellJSON
	for _, q := range Queries {
		s := f.Intra[q]
		cells = append(cells, CellJSON{
			Experiment:  "fig14",
			Query:       string(q),
			Mode:        string(ModeGL),
			Deployment:  Intra.String(),
			TraversalMs: []float64{s.Mean},
		})
		var per []float64
		for _, spe := range f.Inter[q] {
			per = append(per, spe.Mean)
		}
		cells = append(cells, CellJSON{
			Experiment:  "fig14",
			Query:       string(q),
			Mode:        string(ModeGL),
			Deployment:  Inter.String(),
			TraversalMs: per,
		})
	}
	return cells
}

// JSONCells flattens the size report into volume cells.
func (s *SizeReport) JSONCells() []CellJSON {
	var cells []CellJSON
	for _, q := range Queries {
		r := s.Rows[q]
		cells = append(cells, CellJSON{
			Experiment:   "size",
			Query:        string(q),
			Mode:         string(ModeGL),
			Deployment:   Intra.String(),
			Parallelism:  r.Parallelism,
			BatchSize:    r.BatchSize,
			Fusion:       r.Fusion,
			Vectorized:   r.Vectorized,
			SourceTuples: r.SourceTuples,
			SinkTuples:   r.SinkTuples,
			SourceBytes:  r.SourceBytes,
			ProvBytes:    r.ProvBytes,
			ProvRatioPct: 100 * r.ProvRatio(),
		})
	}
	return cells
}
