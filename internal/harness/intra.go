package harness

import (
	"context"
	"fmt"
	"time"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/metrics"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/provstore"
	"genealog/internal/query"
	"genealog/internal/telemetry"
)

// Run executes one measured run and returns its metrics.
func Run(ctx context.Context, o Options) (Result, error) {
	if err := o.validate(); err != nil {
		return Result{}, err
	}
	spec, err := specFor(o.Query)
	if err != nil {
		return Result{}, err
	}
	if o.Deployment == Inter {
		return runInter(ctx, o, spec)
	}
	return runIntra(ctx, o, spec)
}

// provAccount accumulates provenance-volume statistics from assembled
// results.
type provAccount struct {
	spec    querySpec
	results int64
	sources int64
	bytes   int64
}

func (p *provAccount) add(r provenance.Result) {
	p.results++
	p.sources += int64(len(r.Sources))
	b := int64(p.spec.sized(r.Sink))
	for _, s := range r.Sources {
		b += int64(p.spec.sized(s))
	}
	p.bytes += b
}

// intraAssembly parameterises the intra-process graph's observation points.
// The graph shape — source, query, provenance plumbing, sink, parallelism
// expansion — is fixed by assembleIntraQuery; callers only choose what to
// observe, so a measured run (runIntra) and a plan inspection (Explain)
// can never build different topologies.
type intraAssembly struct {
	// store is the BL instrumenter's source store (required for ModeBL).
	store *baseline.Store
	// provStore, when non-nil, durably persists every assembled provenance
	// result (the GL collector tees into it via query.WithProvenanceStore).
	provStore query.ProvenanceStore
	// onEmit observes every source tuple (throughput accounting).
	onEmit func(core.Tuple)
	// sinkFn consumes each sink tuple (nil discards).
	sinkFn ops.SinkFunc
	// onLatency observes each sink tuple's latency in nanoseconds.
	onLatency func(core.Tuple, int64)
	// suCfg configures the GL single-stream unfolder (traversal timing).
	suCfg provenance.SUConfig
	// onProv observes each assembled GL provenance result (nil discards).
	onProv func(provenance.Result)
}

// commonQueryOptions returns the builder options shared by every query a
// run assembles, whatever the SPE instance: the execution knobs plus — when
// the run asks for them — the adaptive batching controller and the
// telemetry registry.
func commonQueryOptions(o Options) []query.Option {
	opts := []query.Option{
		query.WithChannelCapacity(o.ChannelCapacity),
		query.WithBatchSize(o.BatchSize),
		query.WithFusion(!o.NoFusion),
		query.WithVectorize(!o.NoVectorize),
	}
	if o.AdaptiveBatch {
		lo, hi := adaptiveBounds(o)
		opts = append(opts, query.WithAdaptiveBatching(lo, hi))
	}
	if o.Telemetry != nil {
		opts = append(opts, query.WithTelemetry(o.Telemetry))
	}
	return opts
}

// assembleIntraQuery builds the whole intra-process query of o (Fig. 12's
// deployment): the workload source, the evaluation query, the
// mode-dependent provenance plumbing (GL: SU + collector; BL/NP: plain
// sink) and the parallelism expansion.
func assembleIntraQuery(o Options, spec querySpec, asm intraAssembly) (*query.Query, error) {
	gen, _, _ := spec.source(o)
	instr := instrumenterFor(o.Mode, 0, asm.store)
	opts := append([]query.Option{query.WithInstrumenter(instr)}, commonQueryOptions(o)...)
	if asm.provStore != nil {
		opts = append(opts, query.WithProvenanceStore(asm.provStore))
	}
	b := query.New(string(o.Query), opts...)
	src := b.AddSource("source", gen)
	src.Rate = o.SourceRate
	src.Burst = o.SourceBurst
	src.OnEmit = asm.onEmit

	last := spec.addWhole(b, src)

	if o.Mode == ModeGL {
		so, u := provenance.AddSU(b, "su", last, asm.suCfg)
		last = so
		onProv := asm.onProv
		if onProv == nil {
			onProv = func(provenance.Result) {}
		}
		provenance.AddCollector(b, "prov-sink", u, onProv)
	}
	sink := b.AddSink("sink", asm.sinkFn)
	sink.OnLatency = asm.onLatency
	b.Connect(last, sink)

	b.ParallelizeStateful(o.Parallelism)
	return b.Build()
}

// runIntra deploys the whole query in one SPE instance (Fig. 12).
func runIntra(ctx context.Context, o Options, spec querySpec) (Result, error) {
	res := Result{Query: o.Query, Mode: o.Mode, Deployment: Intra, Parallelism: o.Parallelism,
		BatchSize: o.BatchSize, Fusion: !o.NoFusion, Vectorized: !o.NoVectorize,
		RemoteStore: o.RemoteStore}
	if o.AdaptiveBatch {
		res.AdaptiveBatch = true
		res.AdaptiveMinBatch, res.AdaptiveMaxBatch = adaptiveBounds(o)
	}

	_, total, perTuple := spec.source(o)
	res.SourceTuples = int64(total)
	res.SourceBytes = int64(total) * int64(perTuple)

	var store *baseline.Store
	if o.Mode == ModeBL {
		store = baseline.NewStore()
	}
	provStore, ownStore, err := o.openProvStore(ctx, spec)
	if err != nil {
		return Result{}, err
	}
	if ownStore {
		// Flush and release the file log on every error path too;
		// finishProvStore closes first on success (re-Close is a no-op).
		defer provStore.Close()
	}
	if o.Telemetry != nil && provStore != nil {
		o.Telemetry.RegisterStore("provstore", func() telemetry.StoreStats {
			return storeStats(provStore.Stats())
		})
	}

	var srcCount metrics.Counter
	var lat metrics.Welford
	latQ := metrics.NewReservoir(0)
	var trav metrics.Welford
	account := &provAccount{spec: spec}
	observe := func(r provenance.Result) {
		account.add(r)
		if o.OnProvenance != nil {
			o.OnProvenance(r)
		}
	}

	asm := intraAssembly{
		store:  store,
		onEmit: func(core.Tuple) { srcCount.Mark(time.Now().UnixNano()) },
		onLatency: func(_ core.Tuple, ns int64) {
			lat.Add(float64(ns))
			latQ.Add(float64(ns))
		},
	}
	switch o.Mode {
	case ModeGL:
		// Only GL has a provenance collector to tee through the builder
		// option; BL persists directly in its sink below (wiring the option
		// there too would double-ingest if a BL collector were ever added).
		if provStore != nil {
			asm.provStore = provStore
		}
		asm.sinkFn = func(t core.Tuple) error { res.SinkTuples++; return nil }
		asm.suCfg = provenance.SUConfig{
			OnTraversal: func(d time.Duration, _ int) { trav.Add(float64(d.Nanoseconds())) },
		}
		asm.onProv = observe
	case ModeBL:
		resolver := baseline.Resolver{Store: store}
		asm.sinkFn = func(t core.Tuple) error {
			res.SinkTuples++
			begin := time.Now()
			sources := resolver.Resolve(t)
			trav.Add(float64(time.Since(begin).Nanoseconds()))
			// BL has no collector; persist the store join directly.
			if provStore != nil {
				if _, err := provStore.Ingest(t, sources); err != nil {
					return err
				}
			}
			observe(provenance.Result{Sink: t, Sources: sources})
			return nil
		}
	default: // NP
		asm.sinkFn = func(t core.Tuple) error { res.SinkTuples++; return nil }
	}

	q, err := assembleIntraQuery(o, spec, asm)
	if err != nil {
		return Result{}, err
	}

	mem := metrics.NewMemSampler(o.MemSampleEvery)
	mem.Start()
	begin := time.Now()
	runErr := q.Run(ctx)
	res.Elapsed = time.Since(begin)
	mem.Stop()
	if runErr != nil {
		return Result{}, runErr
	}

	res.ThroughputTPS = srcCount.Rate()
	res.AvgLatencyMs = lat.Mean() / 1e6
	latPcts := latQ.Quantiles(0.5, 0.99)
	res.P50LatencyMs = latPcts[0] / 1e6
	res.P99LatencyMs = latPcts[1] / 1e6
	res.AvgMemMB = mem.AvgBytes() / (1 << 20)
	res.MaxMemMB = mem.MaxBytes() / (1 << 20)
	res.TraversalAvgMs = trav.Mean() / 1e6
	res.ProvResults = account.results
	res.ProvSources = account.sources
	res.ProvBytes = account.bytes
	if store != nil {
		res.StoreBytes = store.ApproxBytes()
		res.StoreTuples = int64(store.Len())
	}
	if err := finishProvStore(provStore, ownStore, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// openProvStore opens the run's durable provenance store: the
// caller-provided one, a connection to the store node at RemoteStore, or a
// file log at StorePath with the query's retention horizon. The boolean
// reports whether the run owns (and must close) it. NP assembles no
// provenance, so a store request under NP is an error — better than leaving
// a misleading header-only file behind (the figure grids blank NP cells'
// paths instead of tripping this).
func (o *Options) openProvStore(ctx context.Context, spec querySpec) (*provstore.Store, bool, error) {
	if o.Mode == ModeNP && (o.Store != nil || o.StorePath != "" || o.RemoteStore != "") {
		return nil, false, fmt.Errorf("mode %s assembles no provenance to store", o.Mode)
	}
	if o.Store != nil {
		return o.Store, false, nil
	}
	horizon := o.StoreHorizon
	if horizon == 0 {
		horizon = spec.storeHorizon()
	}
	if o.RemoteStore != "" {
		st, err := provstore.Connect(ctx, o.RemoteStore, provstore.Options{Horizon: horizon})
		if err != nil {
			return nil, false, err
		}
		return st, true, nil
	}
	if o.StorePath == "" {
		return nil, false, nil
	}
	st, err := provstore.Create(o.StorePath, provstore.Options{Horizon: horizon})
	if err != nil {
		return nil, false, err
	}
	return st, true, nil
}

// finishProvStore finalises an owned store (final-watermark retirement and
// flush to disk or to the store node) and folds the store's accounting into
// the result. For a remote-backed store the accounting covers this
// instance's own contribution; the store node's merged view is served by
// genealog-prov -connect.
func finishProvStore(st *provstore.Store, owned bool, res *Result) error {
	if st == nil {
		return nil
	}
	if owned {
		if err := st.Close(); err != nil {
			return err
		}
	}
	ss := st.Stats()
	res.ProvStoreBytes = ss.Bytes
	res.ProvStoreSinks = ss.Sinks
	res.ProvStoreSources = ss.Sources
	res.ProvStoreDedup = ss.DedupRatio()
	res.ProvStoreReEncoded = ss.ReEncoded
	return nil
}

// storeStats converts a provenance store's accounting into the telemetry
// exposition shape. The conversion lives here — not in internal/telemetry —
// so the telemetry package stays free of provstore imports (it is linked
// into every binary, including ones that never open a store).
func storeStats(s provstore.Stats) telemetry.StoreStats {
	return telemetry.StoreStats{
		Sinks:           s.Sinks,
		Sources:         s.Sources,
		SourceRefs:      s.SourceRefs,
		LiveSources:     s.LiveSources,
		RetiredSources:  s.RetiredSources,
		PeakLiveSources: s.PeakLiveSources,
		ReEncoded:       s.ReEncoded,
		Bytes:           s.Bytes,
		Watermark:       s.Watermark,
		Horizon:         s.Horizon,
		Instances:       s.Instances,
		MinWatermark:    s.MinWatermark,
		DedupRatio:      s.DedupRatio(),
	}
}
