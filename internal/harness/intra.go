package harness

import (
	"context"
	"time"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/metrics"
	"genealog/internal/provenance"
	"genealog/internal/query"
)

// Run executes one measured run and returns its metrics.
func Run(ctx context.Context, o Options) (Result, error) {
	if err := o.validate(); err != nil {
		return Result{}, err
	}
	spec, err := specFor(o.Query)
	if err != nil {
		return Result{}, err
	}
	if o.Deployment == Inter {
		return runInter(ctx, o, spec)
	}
	return runIntra(ctx, o, spec)
}

// provAccount accumulates provenance-volume statistics from assembled
// results.
type provAccount struct {
	spec    querySpec
	results int64
	sources int64
	bytes   int64
}

func (p *provAccount) add(r provenance.Result) {
	p.results++
	p.sources += int64(len(r.Sources))
	b := int64(p.spec.sized(r.Sink))
	for _, s := range r.Sources {
		b += int64(p.spec.sized(s))
	}
	p.bytes += b
}

// runIntra deploys the whole query in one SPE instance (Fig. 12).
func runIntra(ctx context.Context, o Options, spec querySpec) (Result, error) {
	res := Result{Query: o.Query, Mode: o.Mode, Deployment: Intra, Parallelism: o.Parallelism, BatchSize: o.BatchSize}

	gen, total, perTuple := spec.source(o)
	res.SourceTuples = int64(total)
	res.SourceBytes = int64(total) * int64(perTuple)

	var store *baseline.Store
	if o.Mode == ModeBL {
		store = baseline.NewStore()
	}
	instr := instrumenterFor(o.Mode, 0, store)

	b := query.New(string(o.Query), query.WithInstrumenter(instr),
		query.WithChannelCapacity(o.ChannelCapacity),
		query.WithBatchSize(o.BatchSize))
	src := b.AddSource("source", gen)
	src.Rate = o.SourceRate
	var srcCount metrics.Counter
	src.OnEmit = func(core.Tuple) { srcCount.Mark(time.Now().UnixNano()) }

	last := spec.addWhole(b, src)

	var lat metrics.Welford
	latQ := metrics.NewReservoir(0)
	var trav metrics.Welford
	account := &provAccount{spec: spec}
	observeLatency := func(ns int64) {
		lat.Add(float64(ns))
		latQ.Add(float64(ns))
	}

	switch o.Mode {
	case ModeGL:
		so, u := provenance.AddSU(b, "su", last, provenance.SUConfig{
			OnTraversal: func(d time.Duration, _ int) { trav.Add(float64(d.Nanoseconds())) },
		})
		sink := b.AddSink("sink", func(t core.Tuple) error { res.SinkTuples++; return nil })
		sink.OnLatency = func(_ core.Tuple, ns int64) { observeLatency(ns) }
		b.Connect(so, sink)
		provenance.AddCollector(b, "prov-sink", u, account.add)
	case ModeBL:
		resolver := baseline.Resolver{Store: store}
		sink := b.AddSink("sink", func(t core.Tuple) error {
			res.SinkTuples++
			begin := time.Now()
			sources := resolver.Resolve(t)
			trav.Add(float64(time.Since(begin).Nanoseconds()))
			account.add(provenance.Result{Sink: t, Sources: sources})
			return nil
		})
		sink.OnLatency = func(_ core.Tuple, ns int64) { observeLatency(ns) }
		b.Connect(last, sink)
	default: // NP
		sink := b.AddSink("sink", func(t core.Tuple) error { res.SinkTuples++; return nil })
		sink.OnLatency = func(_ core.Tuple, ns int64) { observeLatency(ns) }
		b.Connect(last, sink)
	}

	b.ParallelizeStateful(o.Parallelism)
	q, err := b.Build()
	if err != nil {
		return Result{}, err
	}

	mem := metrics.NewMemSampler(o.MemSampleEvery)
	mem.Start()
	begin := time.Now()
	runErr := q.Run(ctx)
	res.Elapsed = time.Since(begin)
	mem.Stop()
	if runErr != nil {
		return Result{}, runErr
	}

	res.ThroughputTPS = srcCount.Rate()
	res.AvgLatencyMs = lat.Mean() / 1e6
	latPcts := latQ.Quantiles(0.5, 0.99)
	res.P50LatencyMs = latPcts[0] / 1e6
	res.P99LatencyMs = latPcts[1] / 1e6
	res.AvgMemMB = mem.AvgBytes() / (1 << 20)
	res.MaxMemMB = mem.MaxBytes() / (1 << 20)
	res.TraversalAvgMs = trav.Mean() / 1e6
	res.ProvResults = account.results
	res.ProvSources = account.sources
	res.ProvBytes = account.bytes
	if store != nil {
		res.StoreBytes = store.ApproxBytes()
	}
	return res, nil
}
