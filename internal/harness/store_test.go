package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"genealog/internal/core"
	"genealog/internal/csvio"
	"genealog/internal/provenance"
	"genealog/internal/provstore"
)

// payload renders a tuple exactly as the provenance store does, so reference
// traversals and store entries compare on equal terms.
func payload(t *testing.T, tup core.Tuple) string {
	t.Helper()
	_, fields, err := csvio.EncodeTuple(tup)
	if err != nil {
		t.Fatalf("no csvio format for %T: %v", tup, err)
	}
	return csvio.JoinFields(fields)
}

// runWithStore executes one measured run with an in-memory provenance store
// and captures every assembled provenance result (the in-run traversal
// reference). The store is closed (final-watermark retirement) before
// returning.
func runWithStore(t *testing.T, o Options) (*provstore.Store, []provenance.Result) {
	t.Helper()
	spec, err := specFor(o.Query)
	if err != nil {
		t.Fatal(err)
	}
	st := provstore.NewMemory(provstore.Options{Horizon: spec.storeHorizon()})
	var results []provenance.Result
	o.Store = st
	o.OnProvenance = func(r provenance.Result) { results = append(results, r) }
	if _, err := Run(context.Background(), o); err != nil {
		t.Fatalf("Run(%s,%s,%s): %v", o.Query, o.Mode, o.Deployment, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return st, results
}

// refKey mirrors the store's dedup identity: meta-ID when assigned, object
// identity otherwise.
func refKey(tup core.Tuple) any {
	if m := core.MetaOf(tup); m != nil && m.ID() != 0 {
		return m.ID()
	}
	return tup
}

// verifyStoreMatchesTraversal asserts the acceptance contract between a
// closed store and the run's in-memory traversal reference:
//
//   - Backward(sinkID) returns exactly the traversed contribution set of the
//     corresponding sink tuple, in traversal order;
//   - Forward is Backward's exact inverse;
//   - each distinct source tuple is stored exactly once (dedup), with the
//     reference count matching;
//   - after the final watermark every entry is retired.
//
// It returns a deployment-independent digest of the store contents for
// cross-configuration comparison.
func verifyStoreMatchesTraversal(t *testing.T, st *provstore.Store, results []provenance.Result) string {
	t.Helper()
	ss := st.Stats()
	sinkIDs := st.SinkIDs()
	if len(sinkIDs) != len(results) {
		t.Fatalf("store has %d sink entries, traversal delivered %d results", len(sinkIDs), len(results))
	}
	if ss.Sinks != int64(len(results)) {
		t.Fatalf("stats sinks = %d, want %d", ss.Sinks, len(results))
	}

	// Backward: entry i corresponds to the i-th delivered result (ingestion
	// happens in the same callback that delivers the result).
	var digest []string
	forwardRef := make(map[uint64][]uint64)
	var totalRefs int64
	uniq := make(map[any]struct{})
	for i, id := range sinkIDs {
		sink, sources, err := st.Backward(id)
		if err != nil {
			t.Fatal(err)
		}
		ref := results[i]
		if got, want := sink.Payload, payload(t, ref.Sink); got != want {
			t.Fatalf("sink %d payload = %q, want %q", id, got, want)
		}
		if sink.Ts != ref.Sink.Timestamp() {
			t.Fatalf("sink %d ts = %d, want %d", id, sink.Ts, ref.Sink.Timestamp())
		}
		if len(sources) != len(ref.Sources) {
			t.Fatalf("Backward(%d) returned %d sources, traversal found %d", id, len(sources), len(ref.Sources))
		}
		line := make([]string, 0, len(sources)+1)
		for j, src := range sources {
			if got, want := src.Payload, payload(t, ref.Sources[j]); got != want {
				t.Fatalf("sink %d source %d payload = %q, want %q", id, j, got, want)
			}
			forwardRef[src.ID] = append(forwardRef[src.ID], id)
			uniq[refKey(ref.Sources[j])] = struct{}{}
			totalRefs++
			line = append(line, src.Payload)
		}
		sort.Strings(line)
		digest = append(digest, payload(t, ref.Sink)+" <- "+strings.Join(line, "|"))
	}

	// Dedup: every distinct source tuple is stored exactly once.
	if ss.Sources != int64(len(uniq)) {
		t.Fatalf("store has %d source entries, traversal saw %d distinct sources", ss.Sources, len(uniq))
	}
	if ss.SourceRefs != totalRefs {
		t.Fatalf("stats refs = %d, want %d", ss.SourceRefs, totalRefs)
	}
	if ss.ReEncoded != 0 {
		t.Fatalf("%d sources were re-encoded after retirement (retention horizon too small)", ss.ReEncoded)
	}
	if totalRefs > int64(len(uniq)) && ss.DedupRatio() <= 1 {
		t.Fatalf("dedup ratio = %f despite %d refs over %d sources", ss.DedupRatio(), totalRefs, len(uniq))
	}

	// Forward is the exact inverse of Backward.
	srcIDs := st.SourceIDs()
	if len(srcIDs) != len(uniq) {
		t.Fatalf("SourceIDs lists %d entries, want %d", len(srcIDs), len(uniq))
	}
	for _, id := range srcIDs {
		_, sinks, err := st.Forward(id)
		if err != nil {
			t.Fatal(err)
		}
		want := forwardRef[id]
		if len(sinks) != len(want) {
			t.Fatalf("Forward(%d) returned %d sinks, backward references it %d times", id, len(sinks), len(want))
		}
		for j, sink := range sinks {
			if sink.ID != want[j] {
				t.Fatalf("Forward(%d)[%d] = sink %d, want %d", id, j, sink.ID, want[j])
			}
		}
	}

	// Retention: the store is closed — the final watermark has retired every
	// entry.
	if ss.LiveSources != 0 || ss.RetiredSources != ss.Sources {
		t.Fatalf("after the final watermark: live %d, retired %d of %d", ss.LiveSources, ss.RetiredSources, ss.Sources)
	}

	sort.Strings(digest)
	return strings.Join(digest, "\n")
}

// TestStoreMatchesTraversalAcrossConfigs is the acceptance grid: for every
// query (Linear Road Q1/Q2, Smart Grid Q3/Q4) under GL, across parallelism
// 1/4 x batch 1/64 x fusion on/off x intra-/inter-process, the store's
// Backward answers must equal the in-run traversals, Forward must invert
// them, dedup must be exact, retention complete — and the store contents
// must be identical across every configuration of the same query.
func TestStoreMatchesTraversalAcrossConfigs(t *testing.T) {
	for _, q := range Queries {
		t.Run(string(q), func(t *testing.T) {
			digests := make(map[string]string)
			for _, deployment := range []Deployment{Intra, Inter} {
				for _, p := range []int{1, 4} {
					for _, batch := range []int{1, 64} {
						for _, noFusion := range []bool{false, true} {
							if testing.Short() && (batch == 64 || noFusion) {
								continue
							}
							name := fmt.Sprintf("%s/P%d/B%d/fusion=%v", deployment, p, batch, !noFusion)
							o := testOptions()
							o.Query, o.Mode, o.Deployment = q, ModeGL, deployment
							o.Parallelism, o.BatchSize, o.NoFusion = p, batch, noFusion
							st, results := runWithStore(t, o)
							if len(results) == 0 {
								t.Fatalf("%s: no provenance delivered", name)
							}
							digests[name] = verifyStoreMatchesTraversal(t, st, results)
						}
					}
				}
			}
			var refName, refDigest string
			for name, d := range digests {
				if refName == "" {
					refName, refDigest = name, d
					continue
				}
				if d != refDigest {
					t.Fatalf("store contents diverge between %s and %s:\n--- %s ---\n%s\n--- %s ---\n%s",
						refName, name, refName, refDigest, name, d)
				}
			}
		})
	}
}

// TestStoreMatchesResolutionUnderBL: the store also serves the baseline
// technique — BL's store-join results are persisted with the same dedup and
// retention semantics, and match GL's store contents exactly.
func TestStoreMatchesResolutionUnderBL(t *testing.T) {
	for _, q := range Queries {
		t.Run(string(q), func(t *testing.T) {
			o := testOptions()
			o.Query, o.Mode, o.Deployment = q, ModeBL, Intra
			blStore, blResults := runWithStore(t, o)
			blDigest := verifyStoreMatchesTraversal(t, blStore, blResults)

			o.Mode = ModeGL
			glStore, glResults := runWithStore(t, o)
			glDigest := verifyStoreMatchesTraversal(t, glStore, glResults)
			if blDigest != glDigest {
				t.Fatalf("BL and GL store contents diverge:\n--- BL ---\n%s\n--- GL ---\n%s", blDigest, glDigest)
			}

			// Inter-process BL ingests through the provenance node's buffered
			// resolver; its store must match too.
			o.Mode, o.Deployment = ModeBL, Inter
			interStore, interResults := runWithStore(t, o)
			if d := verifyStoreMatchesTraversal(t, interStore, interResults); d != glDigest {
				t.Fatalf("inter-process BL store diverges from GL:\n--- BL inter ---\n%s\n--- GL ---\n%s", d, glDigest)
			}
		})
	}
}

// TestStoreBoundedWorkingSet: on the long Linear Road streams (span 2400 s,
// retention horizons 240/300 s) the watermark must retire dedup handles
// during the run — the live working set peaks well below the total number of
// stored sources, which is the store-side analogue of the paper's bounded
// capture overhead.
func TestStoreBoundedWorkingSet(t *testing.T) {
	for _, q := range []QueryID{Q1, Q2} {
		t.Run(string(q), func(t *testing.T) {
			o := testOptions()
			o.Query, o.Mode, o.Deployment = q, ModeGL, Intra
			st, results := runWithStore(t, o)
			if len(results) == 0 {
				t.Fatal("no provenance delivered")
			}
			ss := st.Stats()
			if ss.PeakLiveSources >= ss.Sources {
				t.Fatalf("peak live %d of %d sources: retention never ran during the stream", ss.PeakLiveSources, ss.Sources)
			}
		})
	}
}

// TestFigureGridWithStorePath: the figure grid derives one store file per
// cell and the rendered report carries the store rows.
func TestFigureGridWithStorePath(t *testing.T) {
	o := testOptions()
	o.LR.Steps = 40
	o.SG.Days = 4
	o.StorePath = t.TempDir() + "/prov"
	fig, err := Fig12(context.Background(), o, 1)
	if err != nil {
		t.Fatal(err)
	}
	text := fig.Render()
	for _, want := range []string{"BL store", "Prov store", "dedup"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
	// Every GL and BL cell left a queryable store file behind.
	for _, q := range Queries {
		for _, m := range []Mode{ModeGL, ModeBL} {
			path := cellStorePath(o.StorePath, q, m, Intra)
			st, err := provstore.OpenRead(path)
			if err != nil {
				t.Fatalf("cell %s/%s: %v", q, m, err)
			}
			if len(st.SinkIDs()) == 0 {
				t.Fatalf("cell %s/%s store is empty", q, m)
			}
		}
	}
}
