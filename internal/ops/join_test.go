package ops

import (
	"math/rand"
	"testing"

	"genealog/internal/core"
)

func runJoin(t *testing.T, spec JoinSpec, instr core.Instrumenter, left, right []core.Tuple) []core.Tuple {
	t.Helper()
	l, r := feed(left...), feed(right...)
	out := NewStream("out", 4096)
	j := NewJoin("j", l, r, out, spec, instr)
	runOps(t, j)
	return drain(t, out)
}

func joinAll() JoinSpec {
	return JoinSpec{
		WS:        10,
		Predicate: func(l, r core.Tuple) bool { return true },
		Combine: func(l, r core.Tuple) core.Tuple {
			return vt(0, l.(*vTuple).Key, l.(*vTuple).Val+r.(*vTuple).Val)
		},
	}
}

func TestJoinMatchesWithinWindow(t *testing.T) {
	left := []core.Tuple{vt(0, "l", 1), vt(100, "l", 2)}
	right := []core.Tuple{vt(5, "r", 10), vt(104, "r", 20)}
	got := runJoin(t, joinAll(), core.Noop{}, left, right)
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2: %v", len(got), got)
	}
	if got[0].(*vTuple).Val != 11 || got[1].(*vTuple).Val != 22 {
		t.Fatalf("join values = %d,%d want 11,22", got[0].(*vTuple).Val, got[1].(*vTuple).Val)
	}
}

func TestJoinRespectsWindowBoundary(t *testing.T) {
	// |l.ts - r.ts| <= WS must match at exactly WS and miss at WS+1.
	left := []core.Tuple{vt(0, "l", 1)}
	right := []core.Tuple{vt(10, "r", 10), vt(11, "r", 100)}
	got := runJoin(t, joinAll(), core.Noop{}, left, right)
	if len(got) != 1 || got[0].(*vTuple).Val != 11 {
		t.Fatalf("boundary join = %v", got)
	}
}

func TestJoinPredicateFilters(t *testing.T) {
	spec := joinAll()
	spec.Predicate = func(l, r core.Tuple) bool { return l.(*vTuple).Key == r.(*vTuple).Key }
	left := []core.Tuple{vt(0, "a", 1), vt(1, "b", 2)}
	right := []core.Tuple{vt(2, "a", 10), vt(3, "c", 20)}
	got := runJoin(t, spec, core.Noop{}, left, right)
	if len(got) != 1 || got[0].(*vTuple).Val != 11 {
		t.Fatalf("predicate join = %v", got)
	}
}

func TestJoinOutputTimestampIsMax(t *testing.T) {
	left := []core.Tuple{vt(3, "l", 0)}
	right := []core.Tuple{vt(7, "r", 0)}
	got := runJoin(t, joinAll(), core.Noop{}, left, right)
	if len(got) != 1 || got[0].Timestamp() != 7 {
		t.Fatalf("output ts = %v, want 7", timestamps(got))
	}
}

func TestJoinGLInstrumentation(t *testing.T) {
	l := vt(3, "l", 0)
	r := vt(7, "r", 0)
	l.SetKind(core.KindSource)
	r.SetKind(core.KindSource)
	got := runJoin(t, joinAll(), &core.Genealog{}, []core.Tuple{l}, []core.Tuple{r})
	if len(got) != 1 {
		t.Fatalf("got %d matches", len(got))
	}
	m := core.MetaOf(got[0])
	if m.Kind() != core.KindJoin {
		t.Fatalf("kind = %v, want JOIN", m.Kind())
	}
	// r (ts 7) is processed after l (ts 3) by the merge, so U1 = r (newer).
	if m.U1() != core.Tuple(r) || m.U2() != core.Tuple(l) {
		t.Fatalf("U1=%v U2=%v, want U1=r U2=l", m.U1(), m.U2())
	}
	prov := core.FindProvenance(got[0])
	if len(prov) != 2 {
		t.Fatalf("provenance = %d tuples, want 2", len(prov))
	}
}

func TestJoinStimulusIsPairMax(t *testing.T) {
	l, r := vt(0, "l", 0), vt(1, "r", 0)
	l.SetStimulus(50)
	r.SetStimulus(20)
	got := runJoin(t, joinAll(), core.Noop{}, []core.Tuple{l}, []core.Tuple{r})
	if s := core.MetaOf(got[0]).Stimulus(); s != 50 {
		t.Fatalf("stimulus = %d, want 50", s)
	}
}

func TestJoinDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func(n int, key string) []core.Tuple {
		var outp []core.Tuple
		ts := int64(0)
		for i := 0; i < n; i++ {
			ts += rng.Int63n(4)
			outp = append(outp, vt(ts, key, rng.Int63n(50)))
		}
		return outp
	}
	left, right := mk(200, "l"), mk(200, "r")
	spec := joinAll()
	spec.WS = 6
	a := runJoin(t, spec, core.Noop{}, left, right)
	b := runJoin(t, spec, core.Noop{}, left, right)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic match counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].(*vTuple).Val != b[i].(*vTuple).Val || a[i].Timestamp() != b[i].Timestamp() {
			t.Fatalf("non-deterministic match at %d", i)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Timestamp() < a[i-1].Timestamp() {
			t.Fatalf("join output not sorted at %d", i)
		}
	}
}

// TestJoinBruteForceProperty compares the streaming join against a brute
// force nested loop over random inputs.
func TestJoinBruteForceProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int, key string) []core.Tuple {
			var outp []core.Tuple
			ts := int64(0)
			for i := 0; i < n; i++ {
				ts += rng.Int63n(5)
				outp = append(outp, vt(ts, key, rng.Int63n(10)))
			}
			return outp
		}
		left, right := mk(60, "l"), mk(60, "r")
		ws := int64(1 + rng.Intn(12))
		pred := func(l, r core.Tuple) bool { return (l.(*vTuple).Val+r.(*vTuple).Val)%2 == 0 }
		spec := JoinSpec{
			WS:        ws,
			Predicate: pred,
			Combine: func(l, r core.Tuple) core.Tuple {
				return vt(0, "o", l.(*vTuple).Val*100+r.(*vTuple).Val)
			},
		}
		want := 0
		for _, l := range left {
			for _, r := range right {
				d := l.Timestamp() - r.Timestamp()
				if d < 0 {
					d = -d
				}
				if d <= ws && pred(l, r) {
					want++
				}
			}
		}
		got := runJoin(t, spec, core.Noop{}, left, right)
		if len(got) != want {
			t.Fatalf("seed %d: join produced %d matches, brute force %d", seed, len(got), want)
		}
	}
}

func TestJoinSpecValidation(t *testing.T) {
	bad := []JoinSpec{
		{WS: -1, Predicate: func(l, r core.Tuple) bool { return true }, Combine: func(l, r core.Tuple) core.Tuple { return nil }},
		{WS: 1},
	}
	for i, spec := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %d: NewJoin must panic on invalid spec", i)
				}
			}()
			NewJoin("j", NewStream("l", 1), NewStream("r", 1), NewStream("o", 1), spec, core.Noop{})
		}()
	}
}

func TestMergeDeterministicOrderProperty(t *testing.T) {
	// Whatever the relative arrival speeds, tsMerge must produce the global
	// timestamp order with index tie-breaks. Feeding pre-filled streams
	// makes arrival order degenerate; the determinism test in the query
	// package covers live interleavings.
	in1 := feed(vt(1, "a", 0), vt(2, "a", 0), vt(2, "a", 1))
	in2 := feed(vt(2, "b", 0), vt(3, "b", 0))
	out := NewStream("out", 16)
	u := NewUnion("u", []*Stream{in1, in2}, out)
	runOps(t, u)
	got := drain(t, out)
	wantKeys := []string{"a", "a", "a", "b", "b"}
	for i, tup := range got {
		if tup.(*vTuple).Key != wantKeys[i] {
			t.Fatalf("merge order wrong at %d: %v", i, got)
		}
	}
}
