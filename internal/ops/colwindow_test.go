package ops

import (
	"math/rand"
	"testing"

	"genealog/internal/core"
)

// vecKeyKernel is keyOf as a kernel.
func vecKeyKernel(c *ColBatch, sel []int, dst []string) []string {
	keys := c.Strings(vFieldKey)
	for _, pos := range sel {
		dst = append(dst, keys[pos])
	}
	return dst
}

// vecSumFold is sumFold as a fold kernel over the val column.
func vecSumFold(seg *ColSeg, start, end int64, key string) core.Tuple {
	var sum int64
	for _, v := range seg.Int64s(vFieldVal) {
		sum += v
	}
	return vt(0, key, sum)
}

// aggInput builds a keyed input with interleaved heartbeats and occasional
// timestamp ties.
func aggInput(n int, keys []string, seed int64) []core.Tuple {
	rng := rand.New(rand.NewSource(seed))
	var out []core.Tuple
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += rng.Int63n(3)
		if rng.Intn(11) == 0 {
			out = append(out, core.NewHeartbeat(ts))
			continue
		}
		out = append(out, vt(ts, keys[rng.Intn(len(keys))], rng.Int63n(20)))
	}
	return out
}

// compareStreams asserts the two drained output streams are identical: the
// same data/heartbeat sequence and timestamps, same payloads, and under GL
// the same contribution sets and stimuli.
func compareStreams(t *testing.T, row, vec []core.Tuple, gl bool) {
	t.Helper()
	if len(row) == 0 || len(row) != len(vec) {
		t.Fatalf("%d row outputs, %d vectorized", len(row), len(vec))
	}
	for i := range row {
		if core.IsHeartbeat(row[i]) != core.IsHeartbeat(vec[i]) || row[i].Timestamp() != vec[i].Timestamp() {
			t.Fatalf("output %d: row ts %d (hb=%v), vec ts %d (hb=%v)", i,
				row[i].Timestamp(), core.IsHeartbeat(row[i]), vec[i].Timestamp(), core.IsHeartbeat(vec[i]))
		}
		if core.IsHeartbeat(row[i]) {
			continue
		}
		r, v := row[i].(*vTuple), vec[i].(*vTuple)
		if r.Val != v.Val || r.Key != v.Key {
			t.Fatalf("output %d: row %d/%s, vec %d/%s", i, r.Val, r.Key, v.Val, v.Key)
		}
		if !gl {
			continue
		}
		pr, pv := core.FindProvenance(row[i]), core.FindProvenance(vec[i])
		if len(pr) != len(pv) {
			t.Fatalf("output %d: provenance differs (row %d links, vec %d)", i, len(pr), len(pv))
		}
		for k := range pr {
			a, aok := pr[k].(*vTuple)
			b, bok := pv[k].(*vTuple)
			if !aok || !bok || a.Val != b.Val || a.Key != b.Key || a.Timestamp() != b.Timestamp() {
				t.Fatalf("output %d contributor %d: row %v, vec %v", i, k, pr[k], pv[k])
			}
		}
		if rm, vm := core.MetaOf(row[i]), core.MetaOf(vec[i]); rm.Stimulus() != vm.Stimulus() {
			t.Fatalf("output %d: stimulus row %d, vec %d", i, rm.Stimulus(), vm.Stimulus())
		}
	}
}

// TestColAggregateMatchesRowAggregate: the columnar aggregate must reproduce
// the row operator's output stream exactly — window outputs AND watermark
// heartbeats, in sequence — keyed and unkeyed, tumbling and sliding, under
// NP and GL, across batch sizes.
func TestColAggregateMatchesRowAggregate(t *testing.T) {
	cases := []struct {
		name   string
		ws, wa int64
		keyed  bool
		policy OutputTsPolicy
	}{
		{"tumbling-keyed", 8, 8, true, WindowStartTs},
		{"sliding-keyed", 12, 4, true, WindowStartTs},
		{"tumbling-unkeyed", 8, 8, false, WindowStartTs},
		{"sliding-end-ts", 10, 5, true, WindowEndTs},
	}
	for _, tc := range cases {
		for _, mode := range []string{"NP", "GL"} {
			for _, batch := range []int{1, 7, 64} {
				t.Run(tc.name+"/"+mode, func(t *testing.T) {
					instr := func() core.Instrumenter {
						if mode == "GL" {
							return &core.Genealog{}
						}
						return core.Noop{}
					}
					spec := AggregateSpec{WS: tc.ws, WA: tc.wa, Fold: sumFold, OutputTs: tc.policy}
					col := AggColSpec{Schema: vSchema(), Fold: vecSumFold}
					if tc.keyed {
						spec.Key = keyOf
						col.Key = vecKeyKernel
					}
					input := aggInput(300, []string{"a", "b", "c"}, 42)

					rowOut := NewStream("out", 0)
					ra := NewAggregate("agg", feedBatched(batch, input...), rowOut, spec, instr())
					rowDone := make(chan []core.Tuple)
					go func() { rowDone <- drainAll(t, rowOut) }()
					runOps(t, ra)
					row := <-rowDone

					vecOut := NewStream("out", 0)
					va := NewColAggregate("agg", feedBatched(batch, input...), vecOut, spec, col, nil, instr())
					vecDone := make(chan []core.Tuple)
					go func() { vecDone <- drainAll(t, vecOut) }()
					runOps(t, va)
					vec := <-vecDone

					compareStreams(t, row, vec, mode == "GL")
				})
			}
		}
	}
}

// TestColAggregateWithPrefixMatchesRowPrefix: a columnar prefix inlined into
// the aggregate (the planner's hoisted shard-lane stages) must produce the
// same stream as the row path's FusedStage prefix — dropped tuples advance
// the watermark at their drop-time timestamps, mapped survivors window
// identically.
func TestColAggregateWithPrefixMatchesRowPrefix(t *testing.T) {
	rowPrefix := []FusedStage{
		{Name: "keep-even", Kind: StageFilter, Pred: func(tp core.Tuple) bool { return tp.(*vTuple).Val%2 == 0 }},
		{Name: "double", Kind: StageMap, Map: func(tp core.Tuple, emit func(core.Tuple)) {
			v := tp.(*vTuple)
			emit(vt(v.Timestamp(), v.Key, v.Val*2))
		}},
	}
	colPrefix := []ColStage{
		{Name: "keep-even", Kind: StageFilter, Schema: vSchema(), Filter: func(c *ColBatch, sel []int, dst []int) []int {
			vals := c.Int64s(vFieldVal)
			for _, pos := range sel {
				if vals[pos]%2 == 0 {
					dst = append(dst, pos)
				}
			}
			return dst
		}},
		{Name: "double", Kind: StageMap, Schema: vSchema(), Map: func(c *ColBatch, sel []int, dst []core.Tuple) []core.Tuple {
			ts, vals, keys := c.Timestamps(), c.Int64s(vFieldVal), c.Strings(vFieldKey)
			for _, pos := range sel {
				dst = append(dst, vt(ts[pos], keys[pos], vals[pos]*2))
			}
			return dst
		}},
	}
	spec := AggregateSpec{WS: 8, WA: 4, Key: keyOf, Fold: sumFold}
	col := AggColSpec{Schema: vSchema(), Key: vecKeyKernel, Fold: vecSumFold}
	input := aggInput(300, []string{"a", "b"}, 7)
	for _, mode := range []string{"NP", "GL"} {
		t.Run(mode, func(t *testing.T) {
			instr := func() core.Instrumenter {
				if mode == "GL" {
					return &core.Genealog{}
				}
				return core.Noop{}
			}
			rowOut := NewStream("out", 0)
			ra := NewAggregateFused("agg", feedBatched(7, input...), rowOut, spec, rowPrefix, instr())
			rowDone := make(chan []core.Tuple)
			go func() { rowDone <- drainAll(t, rowOut) }()
			runOps(t, ra)
			row := <-rowDone

			vecOut := NewStream("out", 0)
			va := NewColAggregate("agg", feedBatched(7, input...), vecOut, spec, col, colPrefix, instr())
			if va.Stages() != 2 {
				t.Fatalf("Stages() = %d, want 2", va.Stages())
			}
			vecDone := make(chan []core.Tuple)
			go func() { vecDone <- drainAll(t, vecOut) }()
			runOps(t, va)
			vec := <-vecDone

			compareStreams(t, row, vec, mode == "GL")
		})
	}
}

// joinSides builds two keyed input sides with overlapping keys and ties.
func joinSides(n int, seed int64) (left, right []core.Tuple) {
	rng := rand.New(rand.NewSource(seed))
	keys := []string{"k1", "k2", "k3"}
	mk := func() []core.Tuple {
		var out []core.Tuple
		ts := int64(0)
		for i := 0; i < n; i++ {
			ts += rng.Int63n(3)
			if rng.Intn(13) == 0 {
				out = append(out, core.NewHeartbeat(ts))
				continue
			}
			out = append(out, vt(ts, keys[rng.Intn(len(keys))], rng.Int63n(12)))
		}
		return out
	}
	return mk(), mk()
}

// TestColJoinMatchesRowJoin: the hash-probed columnar join must reproduce
// the row join's output stream exactly for a keyed predicate, with and
// without a residual condition, under NP and GL.
func TestColJoinMatchesRowJoin(t *testing.T) {
	combine := func(l, r core.Tuple) core.Tuple {
		return vt(0, l.(*vTuple).Key, l.(*vTuple).Val*100+r.(*vTuple).Val)
	}
	residualPred := func(l, r core.Tuple) bool {
		d := l.(*vTuple).Val - r.(*vTuple).Val
		return d >= -3 && d <= 3
	}
	cases := []struct {
		name    string
		rowPred func(l, r core.Tuple) bool
		col     JoinColSpec
	}{
		{
			name:    "equi",
			rowPred: func(l, r core.Tuple) bool { return l.(*vTuple).Key == r.(*vTuple).Key },
			col:     JoinColSpec{},
		},
		{
			name: "residual",
			rowPred: func(l, r core.Tuple) bool {
				return l.(*vTuple).Key == r.(*vTuple).Key && residualPred(l, r)
			},
			col: JoinColSpec{
				Left: vSchema(), Right: vSchema(),
				ResidualL: func(tp core.Tuple, cand *ColSeg, sel []int, dst []int) []int {
					v := tp.(*vTuple).Val
					vals := cand.Int64s(vFieldVal)
					for _, pos := range sel {
						if d := v - vals[pos]; d >= -3 && d <= 3 {
							dst = append(dst, pos)
						}
					}
					return dst
				},
				ResidualR: func(tp core.Tuple, cand *ColSeg, sel []int, dst []int) []int {
					v := tp.(*vTuple).Val
					vals := cand.Int64s(vFieldVal)
					for _, pos := range sel {
						if d := vals[pos] - v; d >= -3 && d <= 3 {
							dst = append(dst, pos)
						}
					}
					return dst
				},
			},
		},
	}
	for _, tc := range cases {
		for _, mode := range []string{"NP", "GL"} {
			for _, batch := range []int{1, 7} {
				t.Run(tc.name+"/"+mode, func(t *testing.T) {
					instr := func() core.Instrumenter {
						if mode == "GL" {
							return &core.Genealog{}
						}
						return core.Noop{}
					}
					spec := JoinSpec{
						WS: 6, Predicate: tc.rowPred, Combine: combine,
						LeftKey: keyOf, RightKey: keyOf,
					}
					left, right := joinSides(250, 11)

					rowOut := NewStream("out", 0)
					rj := NewJoin("j", feedBatched(batch, left...), feedBatched(batch, right...), rowOut, spec, instr())
					rowDone := make(chan []core.Tuple)
					go func() { rowDone <- drainAll(t, rowOut) }()
					runOps(t, rj)
					row := <-rowDone

					vecOut := NewStream("out", 0)
					vj := NewColJoin("j", feedBatched(batch, left...), feedBatched(batch, right...), vecOut, spec, tc.col, nil, nil, instr())
					vecDone := make(chan []core.Tuple)
					go func() { vecDone <- drainAll(t, vecOut) }()
					runOps(t, vj)
					vec := <-vecDone

					compareStreams(t, row, vec, mode == "GL")
				})
			}
		}
	}
}

// TestColStatefulValidation: construction rejects inconsistent columnar
// specs with a panic, like the other operators.
func TestColStatefulValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	in, out := NewStream("in", 0), NewStream("out", 0)
	l, r := NewStream("l", 0), NewStream("r", 0)
	keyedAgg := AggregateSpec{WS: 4, WA: 4, Key: keyOf, Fold: sumFold}
	keyedJoin := JoinSpec{WS: 4,
		Predicate: func(l, r core.Tuple) bool { return true },
		Combine:   func(l, r core.Tuple) core.Tuple { return vt(0, "", 0) },
		LeftKey:   keyOf, RightKey: keyOf}
	expectPanic("agg without schema", func() {
		NewColAggregate("a", in, out, keyedAgg, AggColSpec{Fold: vecSumFold, Key: vecKeyKernel}, nil, core.Noop{})
	})
	expectPanic("agg without fold", func() {
		NewColAggregate("a", in, out, keyedAgg, AggColSpec{Schema: vSchema(), Key: vecKeyKernel}, nil, core.Noop{})
	})
	expectPanic("agg key mismatch", func() {
		NewColAggregate("a", in, out, keyedAgg, AggColSpec{Schema: vSchema(), Fold: vecSumFold}, nil, core.Noop{})
	})
	expectPanic("join unkeyed", func() {
		unkeyed := keyedJoin
		unkeyed.LeftKey, unkeyed.RightKey = nil, nil
		NewColJoin("j", l, r, out, unkeyed, JoinColSpec{}, nil, nil, core.Noop{})
	})
	expectPanic("join lone residual", func() {
		NewColJoin("j", l, r, out, keyedJoin, JoinColSpec{
			Left: vSchema(), Right: vSchema(),
			ResidualL: func(t core.Tuple, cand *ColSeg, sel, dst []int) []int { return dst },
		}, nil, nil, core.Noop{})
	})
	expectPanic("join residual without schemas", func() {
		probe := func(t core.Tuple, cand *ColSeg, sel, dst []int) []int { return dst }
		NewColJoin("j", l, r, out, keyedJoin, JoinColSpec{ResidualL: probe, ResidualR: probe}, nil, nil, core.Noop{})
	})
}
