package ops

import (
	"testing"

	"genealog/internal/core"
)

func heartbeats(ts []core.Tuple) []int64 {
	var out []int64
	for _, t := range ts {
		if core.IsHeartbeat(t) {
			out = append(out, t.Timestamp())
		}
	}
	return out
}

func TestFilterEmitsHeartbeatsOnDrops(t *testing.T) {
	in := feed(vt(1, "k", 0), vt(2, "k", 1), vt(3, "k", 0), vt(3, "k", 1))
	out := NewStream("out", 16)
	f := NewFilter("f", in, out, func(tp core.Tuple) bool { return tp.(*vTuple).Val == 0 })
	runOps(t, f)
	all := drainAll(t, out)
	// Data at ts 1 and 3; drop at ts 2 emits a heartbeat; the second drop at
	// ts 3 does not advance the watermark (a ts-3 tuple was already sent).
	hbs := heartbeats(all)
	if len(hbs) != 1 || hbs[0] != 2 {
		t.Fatalf("heartbeats = %v, want [2]", hbs)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Timestamp() < all[i-1].Timestamp() {
			t.Fatal("heartbeats must keep the stream timestamp-sorted")
		}
	}
}

func TestFilterForwardsIncomingHeartbeats(t *testing.T) {
	in := feed(vt(1, "k", 0), core.NewHeartbeat(5))
	out := NewStream("out", 16)
	// Predicate would reject everything; heartbeats bypass it.
	f := NewFilter("f", in, out, func(tp core.Tuple) bool { return tp.(*vTuple).Val == 0 })
	runOps(t, f)
	hbs := heartbeats(drainAll(t, out))
	if len(hbs) != 1 || hbs[0] != 5 {
		t.Fatalf("heartbeats = %v, want [5]", hbs)
	}
}

func TestMapEmitsHeartbeatWhenDropping(t *testing.T) {
	in := feed(vt(1, "k", 0), vt(2, "k", 1))
	out := NewStream("out", 16)
	m := NewMap("m", in, out, func(tp core.Tuple, emit func(core.Tuple)) {
		if tp.(*vTuple).Val == 0 {
			emit(vt(tp.Timestamp(), "k", 10))
		}
	}, core.Noop{})
	runOps(t, m)
	all := drainAll(t, out)
	hbs := heartbeats(all)
	if len(hbs) != 1 || hbs[0] != 2 {
		t.Fatalf("heartbeats = %v, want [2]", hbs)
	}
	if len(all) != 2 {
		t.Fatalf("stream = %d elements, want tuple+heartbeat", len(all))
	}
}

func TestMapForwardsHeartbeatsWithoutCallingFn(t *testing.T) {
	in := feed(core.NewHeartbeat(9))
	out := NewStream("out", 16)
	m := NewMap("m", in, out, func(tp core.Tuple, emit func(core.Tuple)) {
		t.Error("user function must never see heartbeats")
	}, core.Noop{})
	runOps(t, m)
	hbs := heartbeats(drainAll(t, out))
	if len(hbs) != 1 || hbs[0] != 9 {
		t.Fatalf("heartbeats = %v, want [9]", hbs)
	}
}

func TestMultiplexForwardsHeartbeatsUncloned(t *testing.T) {
	hb := core.NewHeartbeat(4)
	in := feed(hb)
	o1, o2 := NewStream("o1", 4), NewStream("o2", 4)
	x := NewMultiplex("x", in, []*Stream{o1, o2}, &core.Genealog{})
	runOps(t, x)
	g1, g2 := drainAll(t, o1), drainAll(t, o2)
	if !core.IsHeartbeat(g1[0]) || !core.IsHeartbeat(g2[0]) {
		t.Fatal("both branches must receive the heartbeat")
	}
	if g1[0].Timestamp() != 4 || g2[0].Timestamp() != 4 {
		t.Fatal("heartbeat timestamps must be preserved")
	}
	if g1[0] == g2[0] {
		t.Fatal("branches must not share one marker object (concurrent instrumentation)")
	}
	if core.MetaOf(g1[0]).Kind() != core.KindNone {
		t.Fatal("heartbeats carry no provenance")
	}
}

func TestAggregateAdvancesOnHeartbeat(t *testing.T) {
	// One tuple in window [0,10); a heartbeat at 25 must close it without
	// waiting for more data.
	in := feed(vt(1, "k", 1), core.NewHeartbeat(25))
	out := NewStream("out", 16)
	a := NewAggregate("a", in, out, AggregateSpec{WS: 10, WA: 10, Fold: countFold}, core.Noop{})
	runOps(t, a)
	all := drainAll(t, out)
	var data []core.Tuple
	for _, x := range all {
		if !core.IsHeartbeat(x) {
			data = append(data, x)
		}
	}
	if len(data) != 1 || data[0].Timestamp() != 0 {
		t.Fatalf("windows = %v, want one at ts 0", timestamps(data))
	}
	// The aggregate must advertise progress past the closed window.
	hbs := heartbeats(all)
	if len(hbs) == 0 || hbs[len(hbs)-1] < 10 {
		t.Fatalf("heartbeats = %v, want progress >= 10", hbs)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Timestamp() < all[i-1].Timestamp() {
			t.Fatalf("aggregate output not sorted with heartbeats: %v", timestamps(all))
		}
	}
}

func TestAggregateHeartbeatBeforeFirstTupleIsConservative(t *testing.T) {
	// An early heartbeat must not promise more than the earliest window a
	// future tuple could still open.
	in := feed(core.NewHeartbeat(100), vt(101, "k", 1))
	out := NewStream("out", 64)
	a := NewAggregate("a", in, out, AggregateSpec{WS: 10, WA: 5, Fold: countFold}, core.Noop{})
	runOps(t, a)
	all := drainAll(t, out)
	for i := 1; i < len(all); i++ {
		if all[i].Timestamp() < all[i-1].Timestamp() {
			t.Fatalf("order violated: %v", timestamps(all))
		}
	}
}

func TestJoinForwardsWatermarkBetweenMatches(t *testing.T) {
	// No pair ever matches; the join must still advertise progress.
	left := []core.Tuple{vt(0, "l", 1), vt(50, "l", 2)}
	right := []core.Tuple{vt(100, "r", 3)}
	spec := JoinSpec{
		WS:        5,
		Predicate: func(l, r core.Tuple) bool { return false },
		Combine:   func(l, r core.Tuple) core.Tuple { return nil },
	}
	l, r := feed(left...), feed(right...)
	out := NewStream("out", 64)
	j := NewJoin("j", l, r, out, spec, core.Noop{})
	runOps(t, j)
	hbs := heartbeats(drainAll(t, out))
	if len(hbs) == 0 {
		t.Fatal("join must emit heartbeats while producing no matches")
	}
	if last := hbs[len(hbs)-1]; last != 100 {
		t.Fatalf("final watermark = %d, want 100", last)
	}
}

func TestJoinConsumesHeartbeatsFromInputs(t *testing.T) {
	left := []core.Tuple{vt(0, "l", 1), core.NewHeartbeat(500)}
	right := []core.Tuple{vt(1, "r", 2)}
	spec := JoinSpec{
		WS:        5,
		Predicate: func(l, r core.Tuple) bool { return true },
		Combine: func(l, r core.Tuple) core.Tuple {
			return vt(0, "o", l.(*vTuple).Val+r.(*vTuple).Val)
		},
	}
	l, r := feed(left...), feed(right...)
	out := NewStream("out", 64)
	j := NewJoin("j", l, r, out, spec, core.Noop{})
	runOps(t, j)
	all := drainAll(t, out)
	var data []core.Tuple
	for _, x := range all {
		if !core.IsHeartbeat(x) {
			data = append(data, x)
		}
	}
	if len(data) != 1 || data[0].(*vTuple).Val != 3 {
		t.Fatalf("join data = %v", data)
	}
	hbs := heartbeats(all)
	if len(hbs) == 0 || hbs[len(hbs)-1] != 500 {
		t.Fatalf("heartbeats = %v, want final watermark 500", hbs)
	}
}

func TestUnionCoalescesHeartbeats(t *testing.T) {
	in1 := feed(core.NewHeartbeat(5), core.NewHeartbeat(10))
	in2 := feed(core.NewHeartbeat(5))
	out := NewStream("out", 16)
	u := NewUnion("u", []*Stream{in1, in2}, out)
	runOps(t, u)
	hbs := heartbeats(drainAll(t, out))
	if len(hbs) != 2 || hbs[0] != 5 || hbs[1] != 10 {
		t.Fatalf("heartbeats = %v, want [5 10]", hbs)
	}
}

func TestSinkIgnoresHeartbeats(t *testing.T) {
	in := feed(core.NewHeartbeat(5), vt(6, "k", 1))
	var n int
	sink := NewSink("k", in, func(core.Tuple) error { n++; return nil })
	var latencies int
	sink.OnLatency = func(core.Tuple, int64) { latencies++ }
	runOps(t, sink)
	if n != 1 {
		t.Fatalf("sink fn saw %d tuples, want 1", n)
	}
}
