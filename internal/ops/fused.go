package ops

import (
	"context"
	"fmt"

	"genealog/internal/core"
)

// StageKind identifies the per-tuple behaviour of one stage of a FusedChain.
type StageKind uint8

// Fused stage kinds.
const (
	// StageMap applies a MapFunc: zero or more outputs per input, each linked
	// to the input through the instrumenter (U1, Type=MAP) exactly as the
	// standalone Map operator does.
	StageMap StageKind = iota + 1
	// StageFilter applies a predicate and drops non-matching tuples,
	// advertising watermark progress for the dropped ones.
	StageFilter
	// StageMultiplex is a single-branch pass-through Multiplex: under an
	// instrumenter that needs per-branch copies (GL, BL) the stage clones the
	// tuple and links it (U1, Type=MULTIPLEX); under NP it forwards the tuple
	// unchanged.
	StageMultiplex
	// StagePass forwards tuples unchanged (a single-input Union).
	StagePass
)

func (k StageKind) String() string {
	switch k {
	case StageMap:
		return "map"
	case StageFilter:
		return "filter"
	case StageMultiplex:
		return "multiplex"
	case StagePass:
		return "pass"
	default:
		return "invalid"
	}
}

// FusedStage is one logical stateless operator folded into a FusedChain.
type FusedStage struct {
	// Name is the logical operator's name (error messages, plan dumps).
	Name string
	// Kind selects the stage behaviour.
	Kind StageKind
	// Map is the stage function of a StageMap.
	Map MapFunc
	// Pred is the predicate of a StageFilter.
	Pred func(core.Tuple) bool
}

func (s FusedStage) validate() error {
	switch s.Kind {
	case StageMap:
		if s.Map == nil {
			return fmt.Errorf("stage %q: map stage needs a Map function", s.Name)
		}
	case StageFilter:
		if s.Pred == nil {
			return fmt.Errorf("stage %q: filter stage needs a Pred function", s.Name)
		}
	case StageMultiplex, StagePass:
	default:
		return fmt.Errorf("stage %q: unknown stage kind %d", s.Name, s.Kind)
	}
	return nil
}

// FusedChain executes a linear chain of stateless logical operators (Map,
// Filter, pass-through Multiplex/Union) in a single goroutine with no
// intermediate streams: each input tuple is pushed through the composed
// stage functions by plain function calls, eliminating the per-hop channel
// synchronisation a chain of standalone operators pays — the framework
// overhead the paper's fixed-per-tuple provenance cost competes with.
//
// Fusion is purely physical: every instrumenter hook fires once per logical
// stage exactly as in the unfused chain (OnMap per Map stage, OnMultiplex
// per cloning pass-through), dropped tuples advertise watermark progress
// with a Heartbeat once per distinct event time, and heartbeats entering the
// chain are forwarded (coalesced against the chain's output watermark). The
// sink-observable output and every tuple's contribution graph are identical
// to running the stages as separate operators.
type FusedChain struct {
	name   string
	in     *Stream
	out    *Stream
	stages []FusedStage
	instr  core.Instrumenter

	ctx      context.Context
	err      error
	lastOut  int64
	haveLast bool
}

var _ Operator = (*FusedChain)(nil)

// NewFusedChain returns a FusedChain applying the given stages in order; it
// panics if the stage list is empty or a stage is invalid (a programming
// error caught at query-construction time, like NewAggregate).
func NewFusedChain(name string, in, out *Stream, stages []FusedStage, instr core.Instrumenter) *FusedChain {
	if len(stages) == 0 {
		panic(fmt.Sprintf("fused chain %q: no stages", name))
	}
	for _, s := range stages {
		if err := s.validate(); err != nil {
			panic(fmt.Sprintf("fused chain %q: %v", name, err))
		}
	}
	return &FusedChain{name: name, in: in, out: out, stages: stages, instr: instr}
}

// Name implements Operator.
func (f *FusedChain) Name() string { return f.name }

// Stages returns the number of logical stages fused into the chain.
func (f *FusedChain) Stages() int { return len(f.stages) }

// Run implements Operator. The inner loop iterates input batches and flushes
// the output once per batch, before blocking for more input. Stage errors
// (cancellation while sending, a non-cloneable tuple at a cloning stage) are
// latched into f.err by the composed closures and surfaced after the tuple
// that caused them.
func (f *FusedChain) Run(ctx context.Context) error {
	defer f.out.CloseSend(ctx)
	f.ctx = ctx
	apply := f.compose()
	for {
		batch, ok, err := f.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("fused chain %q: %w", f.name, err)
		}
		if !ok {
			return nil
		}
		for _, t := range batch {
			if core.IsHeartbeat(t) {
				// Heartbeats bypass the stages; like Union, ones at or below
				// the watermark already visible downstream are coalesced.
				f.advertise(t.Timestamp())
			} else {
				apply(t)
			}
			if f.err != nil {
				return fmt.Errorf("fused chain %q: %w", f.name, f.err)
			}
		}
		if err := f.out.Flush(ctx); err != nil {
			return fmt.Errorf("fused chain %q: %w", f.name, err)
		}
	}
}

// deliver sends a data tuple that survived every stage downstream.
func (f *FusedChain) deliver(t core.Tuple) {
	if f.err != nil {
		return
	}
	f.lastOut, f.haveLast = t.Timestamp(), true
	if err := f.out.Send(f.ctx, t); err != nil {
		f.err = err
	}
}

// advertise publishes watermark progress for a dropped tuple (or an incoming
// heartbeat), once per distinct event time: any output at or past ts already
// promises the same watermark, streams being timestamp-sorted.
func (f *FusedChain) advertise(ts int64) {
	if f.err != nil || (f.haveLast && ts <= f.lastOut) {
		return
	}
	f.lastOut, f.haveLast = ts, true
	if err := f.out.Send(f.ctx, core.NewHeartbeat(ts)); err != nil {
		f.err = err
	}
}

// compose builds the per-tuple pipeline back to front: each stage closure
// processes one data tuple and hands its survivors to the next stage by a
// direct call. The closures are allocated once per Run, not per tuple.
func (f *FusedChain) compose() func(core.Tuple) {
	apply := f.deliver
	clone := f.instr.NeedsMultiplexClone()
	for i := len(f.stages) - 1; i >= 0; i-- {
		st := f.stages[i]
		next := apply
		switch st.Kind {
		case StageFilter:
			pred := st.Pred
			apply = func(t core.Tuple) {
				if pred(t) {
					next(t)
					return
				}
				f.advertise(t.Timestamp())
			}
		case StageMap:
			fn := st.Map
			// cur and emitted live across the emit closure and the stage
			// body; they are rebound per input tuple, never allocated.
			var cur core.Tuple
			var emitted bool
			emit := func(out core.Tuple) {
				if f.err != nil {
					return
				}
				if om, im := core.MetaOf(out), core.MetaOf(cur); om != nil && im != nil {
					om.MergeStimulus(im.Stimulus())
				}
				f.instr.OnMap(out, cur)
				emitted = true
				next(out)
			}
			apply = func(t core.Tuple) {
				cur, emitted = t, false
				fn(t, emit)
				if !emitted {
					// A dropping Map creates sparsity, like Filter.
					f.advertise(t.Timestamp())
				}
			}
		case StageMultiplex:
			if !clone {
				apply = next // NP forwards the same tuple object
				continue
			}
			name := st.Name
			apply = func(t core.Tuple) {
				c, ok := t.(core.Cloneable)
				if !ok {
					if f.err == nil {
						f.err = fmt.Errorf("stage %q: %w (%T)", name, ErrNotCloneable, t)
					}
					return
				}
				branch := c.CloneTuple()
				f.instr.OnMultiplex(branch, t)
				next(branch)
			}
		case StagePass:
			apply = next
		}
	}
	return apply
}
