package ops

import (
	"context"
	"fmt"

	"genealog/internal/core"
	"genealog/internal/telemetry"
)

// StageKind identifies the per-tuple behaviour of one stage of a FusedChain.
type StageKind uint8

// Fused stage kinds.
const (
	// StageMap applies a MapFunc: zero or more outputs per input, each linked
	// to the input through the instrumenter (U1, Type=MAP) exactly as the
	// standalone Map operator does.
	StageMap StageKind = iota + 1
	// StageFilter applies a predicate and drops non-matching tuples,
	// advertising watermark progress for the dropped ones.
	StageFilter
	// StageMultiplex is a single-branch pass-through Multiplex: under an
	// instrumenter that needs per-branch copies (GL, BL) the stage clones the
	// tuple and links it (U1, Type=MULTIPLEX); under NP it forwards the tuple
	// unchanged.
	StageMultiplex
	// StagePass forwards tuples unchanged (a single-input Union).
	StagePass
)

func (k StageKind) String() string {
	switch k {
	case StageMap:
		return "map"
	case StageFilter:
		return "filter"
	case StageMultiplex:
		return "multiplex"
	case StagePass:
		return "pass"
	default:
		return "invalid"
	}
}

// FusedStage is one logical stateless operator folded into a FusedChain.
type FusedStage struct {
	// Name is the logical operator's name (error messages, plan dumps).
	Name string
	// Kind selects the stage behaviour.
	Kind StageKind
	// Map is the stage function of a StageMap.
	Map MapFunc
	// Pred is the predicate of a StageFilter.
	Pred func(core.Tuple) bool
}

func (s FusedStage) validate() error {
	switch s.Kind {
	case StageMap:
		if s.Map == nil {
			return fmt.Errorf("stage %q: map stage needs a Map function", s.Name)
		}
	case StageFilter:
		if s.Pred == nil {
			return fmt.Errorf("stage %q: filter stage needs a Pred function", s.Name)
		}
	case StageMultiplex, StagePass:
	default:
		return fmt.Errorf("stage %q: unknown stage kind %d", s.Name, s.Kind)
	}
	return nil
}

// FusedChain executes a linear chain of stateless logical operators (Map,
// Filter, pass-through Multiplex/Union) in a single goroutine with no
// intermediate streams: each input tuple is pushed through the composed
// stage functions by plain function calls, eliminating the per-hop channel
// synchronisation a chain of standalone operators pays — the framework
// overhead the paper's fixed-per-tuple provenance cost competes with.
//
// Fusion is purely physical: every instrumenter hook fires once per logical
// stage exactly as in the unfused chain (OnMap per Map stage, OnMultiplex
// per cloning pass-through), dropped tuples advertise watermark progress
// with a Heartbeat once per distinct event time, and heartbeats entering the
// chain are forwarded (coalesced against the chain's output watermark). The
// sink-observable output and every tuple's contribution graph are identical
// to running the stages as separate operators.
type FusedChain struct {
	name   string
	in     *Stream
	out    *Stream
	stages []FusedStage
	instr  core.Instrumenter

	// Seg, when non-nil, counts the batches and tuple slots absorbed by the
	// fused segment — how much traffic fusion kept off intermediate streams.
	// Set before Run (query.Build does); one nil check per batch.
	Seg *telemetry.SegStats
}

var _ Operator = (*FusedChain)(nil)

// NewFusedChain returns a FusedChain applying the given stages in order; it
// panics if the stage list is empty or a stage is invalid (a programming
// error caught at query-construction time, like NewAggregate).
func NewFusedChain(name string, in, out *Stream, stages []FusedStage, instr core.Instrumenter) *FusedChain {
	if len(stages) == 0 {
		panic(fmt.Sprintf("fused chain %q: no stages", name))
	}
	for _, s := range stages {
		if err := s.validate(); err != nil {
			panic(fmt.Sprintf("fused chain %q: %v", name, err))
		}
	}
	return &FusedChain{name: name, in: in, out: out, stages: stages, instr: instr}
}

// Name implements Operator.
func (f *FusedChain) Name() string { return f.name }

// Stages returns the number of logical stages fused into the chain.
func (f *FusedChain) Stages() int { return len(f.stages) }

// Run implements Operator. The inner loop iterates input batches and flushes
// the output once per batch, before blocking for more input. Stage errors
// (cancellation while sending, a non-cloneable tuple at a cloning stage) are
// latched into f.err by the composed closures and surfaced after the tuple
// that caused them.
func (f *FusedChain) Run(ctx context.Context) error {
	defer f.out.CloseSend(ctx)
	ap := newStageApplier(f.stages, f.instr,
		func(t core.Tuple) error { return f.out.Send(ctx, t) },
		func(ts int64) error { return f.out.Send(ctx, core.NewHeartbeat(ts)) })
	for {
		batch, ok, err := f.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("fused chain %q: %w", f.name, err)
		}
		if !ok {
			return nil
		}
		if f.Seg != nil {
			f.Seg.NoteBatch(len(batch))
		}
		for _, t := range batch {
			if core.IsHeartbeat(t) {
				// Heartbeats bypass the stages; like Union, ones at or below
				// the watermark already visible downstream are coalesced.
				err = ap.skip(t.Timestamp())
			} else {
				err = ap.run(t)
			}
			if err != nil {
				return fmt.Errorf("fused chain %q: %w", f.name, err)
			}
		}
		if err := f.out.Flush(ctx); err != nil {
			return fmt.Errorf("fused chain %q: %w", f.name, err)
		}
	}
}

// stageApplier pushes data tuples through a FusedStage list by direct
// function calls, handing survivors to deliver (in order) and the watermarks
// of dropped tuples to drop, coalesced once per distinct event time against
// the last delivered timestamp. It is the per-tuple engine of FusedChain,
// and host operators (Aggregate, Join, FanIn) reuse it to run a hoisted
// prefix or a fused suffix inline in their own input loop — same semantics
// as a FusedChain feeding them through a stream, minus the stream and the
// goroutine.
type stageApplier struct {
	deliver func(core.Tuple) error
	drop    func(int64) error
	apply   func(core.Tuple)

	err      error
	lastOut  int64
	haveLast bool
}

// newStageApplier composes the per-tuple pipeline back to front: each stage
// closure processes one data tuple and hands its survivors to the next stage
// by a direct call. The closures are allocated once, not per tuple. An empty
// stage list is legal and degenerates to deliver.
func newStageApplier(stages []FusedStage, instr core.Instrumenter, deliver func(core.Tuple) error, drop func(int64) error) *stageApplier {
	a := &stageApplier{deliver: deliver, drop: drop}
	apply := a.send
	clone := instr.NeedsMultiplexClone()
	for i := len(stages) - 1; i >= 0; i-- {
		st := stages[i]
		next := apply
		switch st.Kind {
		case StageFilter:
			pred := st.Pred
			apply = func(t core.Tuple) {
				if pred(t) {
					next(t)
					return
				}
				a.advertise(t.Timestamp())
			}
		case StageMap:
			fn := st.Map
			// cur and emitted live across the emit closure and the stage
			// body; they are rebound per input tuple, never allocated.
			var cur core.Tuple
			var emitted bool
			emit := func(out core.Tuple) {
				if a.err != nil {
					return
				}
				if om, im := core.MetaOf(out), core.MetaOf(cur); om != nil && im != nil {
					om.MergeStimulus(im.Stimulus())
				}
				instr.OnMap(out, cur)
				emitted = true
				next(out)
			}
			apply = func(t core.Tuple) {
				cur, emitted = t, false
				fn(t, emit)
				if !emitted {
					// A dropping Map creates sparsity, like Filter.
					a.advertise(t.Timestamp())
				}
			}
		case StageMultiplex:
			if !clone {
				apply = next // NP forwards the same tuple object
				continue
			}
			name := st.Name
			apply = func(t core.Tuple) {
				c, ok := t.(core.Cloneable)
				if !ok {
					if a.err == nil {
						a.err = fmt.Errorf("stage %q: %w (%T)", name, ErrNotCloneable, t)
					}
					return
				}
				branch := c.CloneTuple()
				instr.OnMultiplex(branch, t)
				next(branch)
			}
		case StagePass:
			apply = next
		}
	}
	a.apply = apply
	return a
}

// send delivers a data tuple that survived every stage.
func (a *stageApplier) send(t core.Tuple) {
	if a.err != nil {
		return
	}
	a.lastOut, a.haveLast = t.Timestamp(), true
	if err := a.deliver(t); err != nil {
		a.err = err
	}
}

// advertise publishes watermark progress for a dropped tuple (or an incoming
// heartbeat), once per distinct event time: any output at or past ts already
// promises the same watermark, streams being timestamp-sorted.
func (a *stageApplier) advertise(ts int64) {
	if a.err != nil || (a.haveLast && ts <= a.lastOut) {
		return
	}
	a.lastOut, a.haveLast = ts, true
	if err := a.drop(ts); err != nil {
		a.err = err
	}
}

// run pushes one data tuple through the stages; it returns the first error
// latched by the delivery callbacks (or a non-cloneable tuple at a cloning
// stage), after which the applier is inert.
func (a *stageApplier) run(t core.Tuple) error {
	a.apply(t)
	return a.err
}

// skip advertises an incoming heartbeat's watermark, bypassing the stages.
func (a *stageApplier) skip(ts int64) error {
	a.advertise(ts)
	return a.err
}
