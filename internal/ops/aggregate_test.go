package ops

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"genealog/internal/core"
)

func runAggregate(t *testing.T, spec AggregateSpec, instr core.Instrumenter, input ...core.Tuple) []core.Tuple {
	t.Helper()
	in := feed(input...)
	out := NewStream("out", 1024)
	a := NewAggregate("a", in, out, spec, instr)
	runOps(t, a)
	return drain(t, out)
}

func TestAggregateTumblingCount(t *testing.T) {
	// Window [0,10) -> 3 tuples, [10,20) -> 2, [20,30) -> 1.
	input := []core.Tuple{
		vt(0, "k", 1), vt(3, "k", 1), vt(9, "k", 1),
		vt(10, "k", 1), vt(15, "k", 1),
		vt(25, "k", 1),
	}
	got := runAggregate(t, AggregateSpec{WS: 10, WA: 10, Fold: countFold}, core.Noop{}, input...)
	if len(got) != 3 {
		t.Fatalf("got %d windows, want 3: %v", len(got), timestamps(got))
	}
	wantCounts := []int64{3, 2, 1}
	wantTs := []int64{0, 10, 20}
	for i, tup := range got {
		if tup.(*vTuple).Val != wantCounts[i] || tup.Timestamp() != wantTs[i] {
			t.Fatalf("window %d = (ts %d, count %d), want (ts %d, count %d)",
				i, tup.Timestamp(), tup.(*vTuple).Val, wantTs[i], wantCounts[i])
		}
	}
}

func TestAggregateSlidingWindows(t *testing.T) {
	// Q1 shape: WS=120, WA=30, reports every 30s starting at ts=1.
	input := seq(1, 30, 4, "car") // ts 1, 31, 61, 91
	got := runAggregate(t, AggregateSpec{WS: 120, WA: 30, Fold: countFold}, core.Noop{}, input...)
	// Windows starting -90,-60,-30 hold 1,2,3 tuples... window 0 holds all 4,
	// then 30,60,90 hold 3,2,1 (flushed at EOS).
	wantTs := []int64{-90, -60, -30, 0, 30, 60, 90}
	wantN := []int64{1, 2, 3, 4, 3, 2, 1}
	if !int64sEqual(timestamps(got), wantTs) {
		t.Fatalf("window starts = %v, want %v", timestamps(got), wantTs)
	}
	for i, tup := range got {
		if tup.(*vTuple).Val != wantN[i] {
			t.Fatalf("window %d count = %d, want %d", i, tup.(*vTuple).Val, wantN[i])
		}
	}
}

func TestAggregateGroupBy(t *testing.T) {
	input := []core.Tuple{
		vt(1, "a", 10), vt(2, "b", 1), vt(3, "a", 5),
		vt(11, "b", 2),
	}
	got := runAggregate(t, AggregateSpec{WS: 10, WA: 10, Key: keyOf, Fold: sumFold}, core.Noop{}, input...)
	if len(got) != 3 {
		t.Fatalf("got %d outputs, want 3", len(got))
	}
	// Window [0,10): groups a (15) then b (1) in key order; window [10,20): b (2).
	if got[0].(*vTuple).Key != "a" || got[0].(*vTuple).Val != 15 {
		t.Fatalf("first output = %+v", got[0])
	}
	if got[1].(*vTuple).Key != "b" || got[1].(*vTuple).Val != 1 {
		t.Fatalf("second output = %+v", got[1])
	}
	if got[2].(*vTuple).Key != "b" || got[2].(*vTuple).Val != 2 {
		t.Fatalf("third output = %+v", got[2])
	}
}

func TestAggregateOutputSortedAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var input []core.Tuple
	ts := int64(0)
	for i := 0; i < 500; i++ {
		ts += rng.Int63n(3)
		input = append(input, vt(ts, valStr(rng.Int63n(5)), rng.Int63n(100)))
	}
	spec := AggregateSpec{WS: 20, WA: 5, Key: keyOf, Fold: sumFold}
	first := runAggregate(t, spec, core.Noop{}, input...)
	for i := 1; i < len(first); i++ {
		if first[i].Timestamp() < first[i-1].Timestamp() {
			t.Fatalf("output not timestamp-sorted at %d: %d < %d", i, first[i].Timestamp(), first[i-1].Timestamp())
		}
	}
	second := runAggregate(t, spec, core.Noop{}, input...)
	if len(first) != len(second) {
		t.Fatalf("non-deterministic output sizes: %d vs %d", len(first), len(second))
	}
	for i := range first {
		a, b := first[i].(*vTuple), second[i].(*vTuple)
		if a.Timestamp() != b.Timestamp() || a.Key != b.Key || a.Val != b.Val {
			t.Fatalf("non-deterministic output at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestAggregateWindowEndTsPolicy(t *testing.T) {
	input := []core.Tuple{vt(1, "k", 1)}
	got := runAggregate(t, AggregateSpec{WS: 24, WA: 24, Fold: countFold, OutputTs: WindowEndTs}, core.Noop{}, input...)
	if len(got) != 1 || got[0].Timestamp() != 24 {
		t.Fatalf("WindowEndTs output ts = %v, want [24]", timestamps(got))
	}
}

func TestAggregateGLProvenanceChain(t *testing.T) {
	input := seq(0, 30, 4, "car") // one full window [0,120)
	got := runAggregate(t, AggregateSpec{WS: 120, WA: 120, Fold: countFold}, &core.Genealog{}, input...)
	if len(got) != 1 {
		t.Fatalf("got %d windows, want 1", len(got))
	}
	m := core.MetaOf(got[0])
	if m.Kind() != core.KindAggregate {
		t.Fatalf("kind = %v, want AGGREGATE", m.Kind())
	}
	if m.U2() != input[0] || m.U1() != input[3] {
		t.Fatal("U2/U1 must be the earliest/latest window tuples")
	}
	// N chain: input[i].Next == input[i+1].
	for i := 0; i+1 < len(input); i++ {
		if core.MetaOf(input[i]).Next() != input[i+1] {
			t.Fatalf("N chain broken at %d", i)
		}
	}
	prov := core.FindProvenance(got[0])
	if len(prov) != 4 {
		t.Fatalf("provenance size = %d, want 4", len(prov))
	}
}

func TestAggregateGLProvenanceOverlappingWindows(t *testing.T) {
	// Sliding windows share tuples; every emitted window must traverse to
	// exactly its own contents.
	input := seq(0, 30, 8, "car")
	got := runAggregate(t, AggregateSpec{WS: 120, WA: 30, Fold: countFold}, &core.Genealog{}, input...)
	for _, w := range got {
		m := core.MetaOf(w)
		prov := core.FindProvenance(w)
		wantN := int(w.(*vTuple).Val)
		if len(prov) != wantN {
			t.Fatalf("window ts=%d: traversed %d tuples, want %d", w.Timestamp(), len(prov), wantN)
		}
		for _, p := range prov {
			ts := p.Timestamp()
			if !windowContains(w.Timestamp(), 120, ts) {
				t.Fatalf("window ts=%d: foreign tuple ts=%d in provenance", w.Timestamp(), ts)
			}
		}
		if m.Kind() != core.KindAggregate {
			t.Fatalf("kind = %v", m.Kind())
		}
	}
}

func TestAggregateGroupsChainedIndependently(t *testing.T) {
	input := []core.Tuple{
		vt(0, "a", 0), vt(1, "b", 0), vt(2, "a", 0), vt(3, "b", 0),
	}
	got := runAggregate(t, AggregateSpec{WS: 10, WA: 10, Key: keyOf, Fold: countFold}, &core.Genealog{}, input...)
	if len(got) != 2 {
		t.Fatalf("got %d windows, want 2", len(got))
	}
	// Group a: tuples 0 and 2 chained; group b: 1 and 3.
	if core.MetaOf(input[0]).Next() != input[2] || core.MetaOf(input[1]).Next() != input[3] {
		t.Fatal("N chains must be per-group")
	}
	for _, w := range got {
		if n := len(core.FindProvenance(w)); n != 2 {
			t.Fatalf("group window provenance = %d, want 2", n)
		}
	}
}

func TestAggregateSparseStreamSkipsEmptyWindows(t *testing.T) {
	// Two tuples a million time-units apart: the operator must not iterate
	// through every intermediate empty window (this test would time out).
	input := []core.Tuple{vt(0, "k", 1), vt(1_000_000, "k", 1)}
	got := runAggregate(t, AggregateSpec{WS: 10, WA: 5, Fold: countFold}, core.Noop{}, input...)
	for _, w := range got {
		if w.(*vTuple).Val == 0 {
			t.Fatal("empty windows must not be emitted")
		}
	}
	if len(got) != 4 { // 2 windows per tuple (WS/WA = 2)
		t.Fatalf("got %d windows, want 4: %v", len(got), timestamps(got))
	}
}

func TestAggregateNilFoldOutputSkipped(t *testing.T) {
	fold := func(window []core.Tuple, start, end int64, key string) core.Tuple { return nil }
	got := runAggregate(t, AggregateSpec{WS: 10, WA: 10, Fold: fold}, core.Noop{}, seq(0, 1, 5, "k")...)
	if len(got) != 0 {
		t.Fatalf("nil fold outputs must be skipped, got %d", len(got))
	}
}

func TestAggregateStimulusIsWindowMax(t *testing.T) {
	a, b := vt(0, "k", 0), vt(5, "k", 0)
	a.SetStimulus(10)
	b.SetStimulus(90)
	got := runAggregate(t, AggregateSpec{WS: 10, WA: 10, Fold: countFold}, core.Noop{}, a, b)
	if s := core.MetaOf(got[0]).Stimulus(); s != 90 {
		t.Fatalf("stimulus = %d, want 90", s)
	}
}

func TestAggregateSpecValidation(t *testing.T) {
	bad := []AggregateSpec{
		{WS: 0, WA: 1, Fold: countFold},
		{WS: 10, WA: 0, Fold: countFold},
		{WS: 5, WA: 10, Fold: countFold},
		{WS: 10, WA: 10},
	}
	for i, spec := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %d: NewAggregate must panic on invalid spec", i)
				}
			}()
			NewAggregate("a", NewStream("i", 1), NewStream("o", 1), spec, core.Noop{})
		}()
	}
}

// TestAggregateCoverageProperty: every input tuple appears in exactly
// ceil(WS/WA) windows once the stream is long enough (flushing included),
// and the union of all window provenance equals the input set.
func TestAggregateCoverageProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 4
		rng := rand.New(rand.NewSource(seed))
		var input []core.Tuple
		ts := int64(0)
		for i := 0; i < n; i++ {
			ts += 1 + rng.Int63n(4)
			input = append(input, vt(ts, "k", int64(i)))
		}
		in := feed(input...)
		out := NewStream("out", 4096)
		agg := NewAggregate("a", in, out, AggregateSpec{WS: 12, WA: 4, Fold: countFold}, &core.Genealog{})
		if err := agg.Run(context.Background()); err != nil {
			return false
		}
		seen := make(map[core.Tuple]int)
		for batch := range out.ch {
			for _, w := range batch {
				if core.IsHeartbeat(w) {
					continue
				}
				for _, p := range core.FindProvenance(w) {
					seen[p]++
				}
			}
		}
		for _, in := range input {
			if seen[in] != 3 { // WS/WA = 3 windows per tuple
				return false
			}
		}
		return len(seen) == len(input)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateSelectiveProvenance(t *testing.T) {
	// A max-aggregation where only the maximum tuple contributes (the
	// paper's future-work item (i)).
	spec := AggregateSpec{
		WS: 10, WA: 10,
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			max := w[0].(*vTuple)
			for _, x := range w {
				if v := x.(*vTuple); v.Val > max.Val {
					max = v
				}
			}
			return vt(0, key, max.Val)
		},
		Contributors: func(w []core.Tuple) []core.Tuple {
			max := w[0]
			for _, x := range w {
				if x.(*vTuple).Val > max.(*vTuple).Val {
					max = x
				}
			}
			return []core.Tuple{max}
		},
	}
	input := []core.Tuple{vt(0, "k", 3), vt(2, "k", 9), vt(5, "k", 1)}
	for _, in := range input {
		core.MetaOf(in).SetKind(core.KindSource)
	}
	got := runAggregate(t, spec, &core.Genealog{}, input...)
	if len(got) != 1 || got[0].(*vTuple).Val != 9 {
		t.Fatalf("max window output = %v", got)
	}
	prov := core.FindProvenance(got[0])
	if len(prov) != 1 {
		t.Fatalf("selective provenance size = %d, want 1", len(prov))
	}
	if prov[0] != input[1] {
		t.Fatalf("selective provenance must be the max tuple, got %v", prov[0])
	}
}

func TestAggregateSelectiveProvenanceSubsetChain(t *testing.T) {
	// Selecting several tuples builds a wrapper chain covering exactly the
	// subset, even across overlapping windows.
	spec := AggregateSpec{
		WS: 8, WA: 4,
		Fold: countFold,
		Contributors: func(w []core.Tuple) []core.Tuple {
			var odd []core.Tuple
			for _, x := range w {
				if x.(*vTuple).Val%2 == 1 {
					odd = append(odd, x)
				}
			}
			return odd
		},
	}
	input := seq(0, 1, 12, "k")
	for _, in := range input {
		core.MetaOf(in).SetKind(core.KindSource)
	}
	got := runAggregate(t, spec, &core.Genealog{}, input...)
	if len(got) == 0 {
		t.Fatal("no windows emitted")
	}
	for _, w := range got {
		for _, p := range core.FindProvenance(w) {
			v := p.(*vTuple)
			if v.Val%2 != 1 {
				t.Fatalf("even tuple %d leaked into selective provenance", v.Val)
			}
			if !windowContains(w.Timestamp(), 8, p.Timestamp()) {
				t.Fatalf("foreign tuple ts=%d in window ts=%d", p.Timestamp(), w.Timestamp())
			}
		}
	}
}

func TestAggregateSelectiveProvenanceEmptySubsetStillEmits(t *testing.T) {
	spec := AggregateSpec{
		WS: 10, WA: 10,
		Fold:         countFold,
		Contributors: func(w []core.Tuple) []core.Tuple { return nil },
	}
	got := runAggregate(t, spec, &core.Genealog{}, seq(0, 1, 3, "k")...)
	if len(got) != 1 {
		t.Fatalf("windows = %d, want 1", len(got))
	}
	if n := len(core.FindProvenance(got[0])); n != 1 {
		// An uninstrumented output is its own terminal in the traversal.
		t.Fatalf("empty-subset provenance = %d, want 1 (the output itself)", n)
	}
}

func TestAggregateSelectiveProvenanceBaselineAnnotations(t *testing.T) {
	// The same selector must work under BL: the output's annotation is the
	// subset's annotation union.
	ids := core.NewIDGen(1)
	instr := &blLike{ids: ids}
	spec := AggregateSpec{
		WS: 10, WA: 10,
		Fold: countFold,
		Contributors: func(w []core.Tuple) []core.Tuple {
			return w[:1]
		},
	}
	input := seq(0, 1, 3, "k")
	for _, in := range input {
		instr.OnSource(in)
	}
	got := runAggregate(t, spec, instr, input...)
	ann := core.MetaOf(got[0]).Annotation()
	if len(ann) != 1 || ann[0] != core.MetaOf(input[0]).ID() {
		t.Fatalf("selective BL annotation = %v, want the first tuple's ID", ann)
	}
}

// blLike is a minimal annotation-copying instrumenter for the selective
// provenance test (avoiding an import cycle with internal/baseline).
type blLike struct {
	core.Noop
	ids *core.IDGen
}

func (b *blLike) OnSource(t core.Tuple) {
	m := core.MetaOf(t)
	id := b.ids.Next()
	m.SetID(id)
	m.SetAnnotation([]uint64{id})
}

func (b *blLike) OnMap(out, in core.Tuple) {
	src := core.MetaOf(in).Annotation()
	cp := make([]uint64, len(src))
	copy(cp, src)
	core.MetaOf(out).SetAnnotation(cp)
}

func (b *blLike) OnAggregateEmit(out core.Tuple, window []core.Tuple) {
	var ann []uint64
	for _, w := range window {
		ann = append(ann, core.MetaOf(w).Annotation()...)
	}
	core.MetaOf(out).SetAnnotation(ann)
}
