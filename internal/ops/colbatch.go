package ops

import (
	"fmt"
	"sync"

	"genealog/internal/core"
)

// ColKind identifies the physical type of a column in a ColSchema.
type ColKind int

// The supported column types. Narrower workload fields (int32 IDs,
// positions) widen into int64 columns; timestamps have their own dedicated
// column on every ColBatch and need no schema field.
const (
	ColInt64 ColKind = 1 + iota
	ColFloat64
	ColString
)

// String returns the kind's name.
func (k ColKind) String() string {
	switch k {
	case ColInt64:
		return "int64"
	case ColFloat64:
		return "float64"
	case ColString:
		return "string"
	default:
		return fmt.Sprintf("ColKind(%d)", int(k))
	}
}

// ColField declares one typed column of a ColSchema: a name, a kind, and the
// extractor for that kind, which reads the field out of a row tuple. Exactly
// the extractor matching Kind must be set. Extractors typically type-assert
// (`t.(*PositionReport).Speed`); like a row-path key function, an extractor
// that panics on a foreign tuple fails the query with a descriptive error
// rather than crashing the process wherever the row path already guards
// (the shard partitioner), and must otherwise be total over the tuples the
// declaring operator can observe.
type ColField struct {
	Name  string
	Kind  ColKind
	Int   func(core.Tuple) int64
	Float func(core.Tuple) float64
	Str   func(core.Tuple) string
}

// ColSchema is an ordered set of typed columns extracted from a row batch.
// Kernels address columns by their index in Fields. A schema value is
// immutable after first use and safe for concurrent extraction (shard lanes
// share the workload schemas).
type ColSchema struct {
	Fields []ColField

	once sync.Once
	// slot maps a field index to its ordinal among the fields of its kind —
	// the index into the per-kind column groups of a ColBatch.
	slot               []int
	nInt, nFloat, nStr int
}

// index precomputes the per-kind slot of every field, once.
func (s *ColSchema) index() {
	s.once.Do(func() {
		s.slot = make([]int, len(s.Fields))
		for i, f := range s.Fields {
			switch f.Kind {
			case ColInt64:
				s.slot[i] = s.nInt
				s.nInt++
			case ColFloat64:
				s.slot[i] = s.nFloat
				s.nFloat++
			case ColString:
				s.slot[i] = s.nStr
				s.nStr++
			default:
				panic(fmt.Sprintf("ops: schema field %q has invalid kind %v", f.Name, f.Kind))
			}
		}
	})
}

// Validate checks that every field carries exactly the extractor its kind
// requires.
func (s *ColSchema) Validate() error {
	for i, f := range s.Fields {
		ok := false
		switch f.Kind {
		case ColInt64:
			ok = f.Int != nil && f.Float == nil && f.Str == nil
		case ColFloat64:
			ok = f.Float != nil && f.Int == nil && f.Str == nil
		case ColString:
			ok = f.Str != nil && f.Int == nil && f.Float == nil
		}
		if !ok {
			return fmt.Errorf("ops: schema field %d (%q): kind %v and its extractor do not match", i, f.Name, f.Kind)
		}
	}
	return nil
}

// ColBatch is the struct-of-arrays form of a row Batch: a timestamp column,
// the typed columns of the schema it is bound under, and the original row
// tuples as the meta column — the tuples keep carrying the GeneaLog
// meta-attributes (provenance, stimulus), so converting to columns and back
// loses nothing. Columns are full-length and indexed by row position; a
// kernel's selection vector lists the live positions (dead positions may
// hold stale values).
//
// Columns materialize lazily: binding rows marks every column stale, and a
// column's values are extracted the first time a kernel asks for it
// (Int64s, Float64s, Strings, Timestamps) — only at the live positions. A
// kernel that never reads a column never pays for its extraction; an
// identity map or a Rows-only kernel costs nothing beyond its own loop.
// Lazy filling makes a bound ColBatch single-goroutine; distinct ColBatch
// values may share a schema concurrently.
type ColBatch struct {
	Rows []core.Tuple

	schema *ColSchema
	// sel lists the positions lazy fills must cover (nil = every position).
	// Dead positions may hold tuples a later stage's extractors cannot
	// read, so fills never touch them.
	sel    []int
	ts     []int64
	tsOK   bool
	filled []bool // per schema field
	ints   [][]int64
	floats [][]float64
	strs   [][]string
}

// Len returns the number of row positions.
func (c *ColBatch) Len() int { return len(c.Rows) }

// Schema returns the schema the batch is currently bound under (nil before
// the first bind).
func (c *ColBatch) Schema() *ColSchema { return c.schema }

// bind points c at rows under schema, with sel the live positions lazy
// fills must cover (nil = all). Binding a different schema invalidates
// every column; under the same schema, materialized columns stay valid —
// narrowing sel never invalidates, filled columns cover a superset. The
// caller must invalidate explicitly whenever the rows are new or mutated
// in place: stream batches recycle their backing arrays, so ColBatch
// cannot detect fresh contents behind a familiar pointer.
func (c *ColBatch) bind(schema *ColSchema, rows []core.Tuple, sel []int) {
	schema.index()
	stale := c.schema != schema
	c.schema, c.Rows, c.sel = schema, rows, sel
	if stale {
		c.invalidate()
	}
}

// invalidate marks every column and the timestamp column stale; the next
// accessor call re-extracts from the current rows.
func (c *ColBatch) invalidate() {
	c.tsOK = false
	if cap(c.filled) < len(c.schema.Fields) {
		c.filled = make([]bool, len(c.schema.Fields))
		return
	}
	c.filled = c.filled[:len(c.schema.Fields)]
	for i := range c.filled {
		c.filled[i] = false
	}
}

// Timestamps returns the event-time column, materializing it on first use.
func (c *ColBatch) Timestamps() []int64 {
	if !c.tsOK {
		c.ts = ensureLen(c.ts, len(c.Rows))
		if c.sel == nil {
			for pos, t := range c.Rows {
				c.ts[pos] = t.Timestamp()
			}
		} else {
			for _, pos := range c.sel {
				c.ts[pos] = c.Rows[pos].Timestamp()
			}
		}
		c.tsOK = true
	}
	return c.ts
}

// Int64s returns the column of schema field `field`, which must be ColInt64,
// materializing it on first use.
func (c *ColBatch) Int64s(field int) []int64 {
	if !c.filled[field] {
		c.fill(field)
	}
	return c.ints[c.schema.slot[field]]
}

// Float64s returns the column of schema field `field`, which must be
// ColFloat64, materializing it on first use.
func (c *ColBatch) Float64s(field int) []float64 {
	if !c.filled[field] {
		c.fill(field)
	}
	return c.floats[c.schema.slot[field]]
}

// Strings returns the column of schema field `field`, which must be
// ColString, materializing it on first use.
func (c *ColBatch) Strings(field int) []string {
	if !c.filled[field] {
		c.fill(field)
	}
	return c.strs[c.schema.slot[field]]
}

// fill extracts one column at the live positions.
func (c *ColBatch) fill(field int) {
	s := c.schema
	f, slot, n := s.Fields[field], s.slot[field], len(c.Rows)
	switch f.Kind {
	case ColInt64:
		c.ints = ensureSlots(c.ints, s.nInt)
		col := ensureLen(c.ints[slot], n)
		c.ints[slot] = col
		if c.sel == nil {
			for pos, t := range c.Rows {
				col[pos] = f.Int(t)
			}
		} else {
			for _, pos := range c.sel {
				col[pos] = f.Int(c.Rows[pos])
			}
		}
	case ColFloat64:
		c.floats = ensureSlots(c.floats, s.nFloat)
		col := ensureLen(c.floats[slot], n)
		c.floats[slot] = col
		if c.sel == nil {
			for pos, t := range c.Rows {
				col[pos] = f.Float(t)
			}
		} else {
			for _, pos := range c.sel {
				col[pos] = f.Float(c.Rows[pos])
			}
		}
	case ColString:
		c.strs = ensureSlots(c.strs, s.nStr)
		col := ensureLen(c.strs[slot], n)
		c.strs[slot] = col
		if c.sel == nil {
			for pos, t := range c.Rows {
				col[pos] = f.Str(t)
			}
		} else {
			for _, pos := range c.sel {
				col[pos] = f.Str(c.Rows[pos])
			}
		}
	}
	c.filled[field] = true
}

// ensureSlots grows a per-kind column group to want columns, keeping the
// existing backing arrays.
func ensureSlots[T any](cols [][]T, want int) [][]T {
	for len(cols) < want {
		cols = append(cols, nil)
	}
	return cols
}

// ensureLen reslices col to n entries, reusing its backing array.
func ensureLen[T any](col []T, n int) []T {
	if cap(col) < n {
		return make([]T, n)
	}
	return col[:n]
}

// ToColBatch converts a row batch to columnar form under schema,
// materializing every column at every position. The rows slice is
// referenced, not copied: the Rows meta column IS the original tuples, so
// ToColBatch(b, s).ToRowBatch() returns tuples identical to b —
// meta-attributes, provenance and all. (The streaming runtime binds lazily
// instead, see ColChain; ToColBatch is the eager boundary for tests and
// one-shot conversions.)
func ToColBatch(b Batch, schema *ColSchema) *ColBatch {
	c := &ColBatch{}
	c.bind(schema, b, nil)
	c.Timestamps()
	for i := range schema.Fields {
		c.fill(i)
	}
	return c
}

// ToRowBatch converts back to row form: the meta column, unchanged.
func (c *ColBatch) ToRowBatch() Batch { return c.Rows }

// FilterKernel is the vectorized form of a Filter predicate: it appends to
// dst the positions of sel whose rows pass, preserving order, and returns
// dst. It must not reorder or invent positions. dst arrives with length 0
// and the capacity of a previous call's result.
type FilterKernel func(c *ColBatch, sel []int, dst []int) []int

// MapKernel is the vectorized form of a strictly one-to-one Map: it appends
// to dst exactly one output tuple per position of sel, in order, and returns
// dst. Output i transforms the row at sel[i]; the runtime links provenance
// (OnMap) and merges the stimulus exactly as the row path does. A Map whose
// row function can emit zero or several tuples per input must not declare a
// kernel — it keeps the row path.
//
// A kernel may instead return nil to declare that every selected row maps
// to itself — the identity projection. The runtime then skips
// materialisation entirely (the typed-kernel form makes a no-op map
// statically elidable, which an opaque row closure never is) while still
// reporting each self-map to the instrumenter. A kernel signalling
// identity must not have mutated any row.
type MapKernel func(c *ColBatch, sel []int, dst []core.Tuple) []core.Tuple

// KeyKernel is the vectorized form of a routing/grouping key extractor: it
// appends to dst exactly one key per position of sel, in order, and returns
// dst. dst[i] must equal the row key function applied to the row at sel[i].
type KeyKernel func(c *ColBatch, sel []int, dst []string) []string

// ColKey pairs a key kernel with the schema it reads; the shard partitioner
// uses it to extract a whole batch's routing keys in one pass.
type ColKey struct {
	Schema *ColSchema
	Kernel KeyKernel
}
