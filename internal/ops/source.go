package ops

import (
	"context"
	"fmt"
	"time"

	"genealog/internal/core"
)

// SourceFunc generates the source tuples of a query. It must call emit with
// tuples in non-decreasing timestamp order and return when the stream is
// exhausted (or when emit returns an error, which it must propagate).
//
// On a batched stream (see query.WithBatchSize), emitted tuples are
// published downstream when the batch fills, when the Source's Rate pacer
// is about to sleep, and at end-of-stream. The engine cannot see the
// generator blocking inside its own code, so a generator that paces itself
// (live input, sleeps between emits) should either set Source.Rate or run
// unbatched — otherwise a partial batch stays pending while it blocks.
type SourceFunc func(ctx context.Context, emit func(core.Tuple) error) error

// Source creates the source tuples fed to a query (paper §2). It stamps each
// tuple with the wall-clock stimulus used for latency measurement, applies
// the instrumenter's OnSource hook, and optionally paces emission to a fixed
// rate.
type Source struct {
	name  string
	out   *Stream
	gen   SourceFunc
	instr core.Instrumenter

	// Rate, when > 0, paces emission to about Rate tuples per second.
	Rate float64
	// Burst, when non-nil, replaces the fixed Rate with an on/off duty
	// cycle: BurstFor at BurstRate, then IdleFor at IdleRate, repeating.
	// It affects only pacing — tuple content and order are exactly those
	// of the unpaced generator.
	Burst *BurstPacing
	// Now supplies the wall clock for stimulus stamping; defaults to
	// time.Now().UnixNano. Tests inject deterministic clocks.
	Now func() int64
	// OnEmit, when non-nil, observes every emitted tuple (metrics hook).
	OnEmit func(core.Tuple)
}

var _ Operator = (*Source)(nil)

// NewSource returns a Source named name that generates tuples with gen and
// emits them on out.
func NewSource(name string, gen SourceFunc, out *Stream, instr core.Instrumenter) *Source {
	return &Source{name: name, out: out, gen: gen, instr: instr}
}

// Name implements Operator.
func (s *Source) Name() string { return s.name }

// Run implements Operator.
func (s *Source) Run(ctx context.Context) error {
	defer s.out.CloseSend(ctx)
	now := s.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	var pacer emitPacer
	if s.Burst != nil {
		pacer = newBurstLimiter(*s.Burst)
	} else if s.Rate > 0 {
		pacer = newRateLimiter(s.Rate)
	}
	// The stimulus clock is read once per output batch: tuples sharing a
	// batch cross every downstream queue together, so they share one
	// arrival instant. At batch size 1 this is a read per tuple, the
	// pre-batching behaviour.
	var stamp int64
	emit := func(t core.Tuple) error {
		if pacer != nil {
			if d := pacer.reserve(); d >= time.Millisecond {
				// The source is about to idle: flush the pending batch so
				// downstream is never starved by a slowly filling batch.
				// A pacer that is not behind schedule keeps batching.
				if err := s.out.Flush(ctx); err != nil {
					return fmt.Errorf("source %q: %w", s.name, err)
				}
				if err := pacer.sleep(ctx, d); err != nil {
					return fmt.Errorf("source %q: %w", s.name, err)
				}
			}
		}
		if s.out.PendingLen() == 0 {
			stamp = now()
		}
		if m := core.MetaOf(t); m != nil {
			m.SetStimulus(stamp)
		}
		s.instr.OnSource(t)
		if s.OnEmit != nil {
			s.OnEmit(t)
		}
		return s.out.Send(ctx, t)
	}
	if err := s.gen(ctx, emit); err != nil {
		return fmt.Errorf("source %q: %w", s.name, err)
	}
	return nil
}

// emitPacer is the Source's pacing abstraction: reserve advances a virtual
// emission schedule by one event and returns how far ahead of it the caller
// is — how long sleep would pause.
type emitPacer interface {
	reserve() time.Duration
	sleep(ctx context.Context, d time.Duration) error
}

// rateLimiter paces emissions to a fixed average rate using a virtual
// schedule: the i-th event is due at start + i/rate. Sleeping only when more
// than a millisecond ahead keeps high rates cheap.
type rateLimiter struct {
	interval time.Duration
	next     time.Time
}

func newRateLimiter(perSecond float64) *rateLimiter {
	return &rateLimiter{
		interval: time.Duration(float64(time.Second) / perSecond),
		next:     time.Now(),
	}
}

func (r *rateLimiter) reserve() time.Duration {
	r.next = r.next.Add(r.interval)
	return time.Until(r.next)
}

func (r *rateLimiter) sleep(ctx context.Context, d time.Duration) error {
	return pacerSleep(ctx, d)
}

// pacerSleep pauses for d (a duration returned by reserve).
func pacerSleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BurstPacing describes an on/off duty cycle for a Source: BurstFor at
// BurstRate tuples per second, then IdleFor at IdleRate, repeating. An
// IdleRate of 0 makes the idle phase silent. It is the workload shape the
// adaptive batching controller is built for — sustained bursts deep enough
// to grow batches, idle valleys that shrink them back down.
type BurstPacing struct {
	BurstRate float64
	IdleRate  float64
	BurstFor  time.Duration
	IdleFor   time.Duration
}

// burstLimiter extends the rate limiter's virtual schedule with phase
// flipping: events are laid out at the current phase's interval until they
// would cross the phase boundary, at which point the schedule jumps to the
// boundary and the other phase's rate takes over. Like rateLimiter it never
// drops events — only their due times change — so pacing cannot alter what
// the generator emits.
type burstLimiter struct {
	cfg      BurstPacing
	bursting bool
	interval time.Duration // current phase's per-event spacing; 0 = silent
	phaseEnd time.Time
	next     time.Time
}

func newBurstLimiter(cfg BurstPacing) *burstLimiter {
	if cfg.BurstFor <= 0 {
		cfg.BurstFor = 100 * time.Millisecond
	}
	if cfg.IdleFor <= 0 {
		cfg.IdleFor = 100 * time.Millisecond
	}
	now := time.Now()
	b := &burstLimiter{cfg: cfg, bursting: true, phaseEnd: now.Add(cfg.BurstFor), next: now}
	if cfg.BurstRate > 0 {
		b.interval = time.Duration(float64(time.Second) / cfg.BurstRate)
	}
	return b
}

func (b *burstLimiter) reserve() time.Duration {
	for {
		if b.interval > 0 {
			if next := b.next.Add(b.interval); !next.After(b.phaseEnd) {
				b.next = next
				return time.Until(next)
			}
		}
		// The current phase has no further events — it is silent, or its
		// next due time falls past the boundary. Jump to the boundary and
		// flip to the other phase's rate.
		b.next = b.phaseEnd
		b.bursting = !b.bursting
		rate, dur := b.cfg.IdleRate, b.cfg.IdleFor
		if b.bursting {
			rate, dur = b.cfg.BurstRate, b.cfg.BurstFor
		}
		b.interval = 0
		if rate > 0 {
			b.interval = time.Duration(float64(time.Second) / rate)
		}
		b.phaseEnd = b.phaseEnd.Add(dur)
	}
}

func (b *burstLimiter) sleep(ctx context.Context, d time.Duration) error {
	return pacerSleep(ctx, d)
}

// SliceSource returns a SourceFunc that replays the given tuples in order.
// It is convenient in tests and examples.
func SliceSource(tuples []core.Tuple) SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		for _, t := range tuples {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}
}
