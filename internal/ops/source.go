package ops

import (
	"context"
	"fmt"
	"time"

	"genealog/internal/core"
)

// SourceFunc generates the source tuples of a query. It must call emit with
// tuples in non-decreasing timestamp order and return when the stream is
// exhausted (or when emit returns an error, which it must propagate).
//
// On a batched stream (see query.WithBatchSize), emitted tuples are
// published downstream when the batch fills, when the Source's Rate pacer
// is about to sleep, and at end-of-stream. The engine cannot see the
// generator blocking inside its own code, so a generator that paces itself
// (live input, sleeps between emits) should either set Source.Rate or run
// unbatched — otherwise a partial batch stays pending while it blocks.
type SourceFunc func(ctx context.Context, emit func(core.Tuple) error) error

// Source creates the source tuples fed to a query (paper §2). It stamps each
// tuple with the wall-clock stimulus used for latency measurement, applies
// the instrumenter's OnSource hook, and optionally paces emission to a fixed
// rate.
type Source struct {
	name  string
	out   *Stream
	gen   SourceFunc
	instr core.Instrumenter

	// Rate, when > 0, paces emission to about Rate tuples per second.
	Rate float64
	// Now supplies the wall clock for stimulus stamping; defaults to
	// time.Now().UnixNano. Tests inject deterministic clocks.
	Now func() int64
	// OnEmit, when non-nil, observes every emitted tuple (metrics hook).
	OnEmit func(core.Tuple)
}

var _ Operator = (*Source)(nil)

// NewSource returns a Source named name that generates tuples with gen and
// emits them on out.
func NewSource(name string, gen SourceFunc, out *Stream, instr core.Instrumenter) *Source {
	return &Source{name: name, out: out, gen: gen, instr: instr}
}

// Name implements Operator.
func (s *Source) Name() string { return s.name }

// Run implements Operator.
func (s *Source) Run(ctx context.Context) error {
	defer s.out.CloseSend(ctx)
	now := s.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	var pacer *rateLimiter
	if s.Rate > 0 {
		pacer = newRateLimiter(s.Rate)
	}
	// The stimulus clock is read once per output batch: tuples sharing a
	// batch cross every downstream queue together, so they share one
	// arrival instant. At batch size 1 this is a read per tuple, the
	// pre-batching behaviour.
	var stamp int64
	emit := func(t core.Tuple) error {
		if pacer != nil {
			if d := pacer.reserve(); d >= time.Millisecond {
				// The source is about to idle: flush the pending batch so
				// downstream is never starved by a slowly filling batch.
				// A pacer that is not behind schedule keeps batching.
				if err := s.out.Flush(ctx); err != nil {
					return fmt.Errorf("source %q: %w", s.name, err)
				}
				if err := pacer.sleep(ctx, d); err != nil {
					return fmt.Errorf("source %q: %w", s.name, err)
				}
			}
		}
		if s.out.PendingLen() == 0 {
			stamp = now()
		}
		if m := core.MetaOf(t); m != nil {
			m.SetStimulus(stamp)
		}
		s.instr.OnSource(t)
		if s.OnEmit != nil {
			s.OnEmit(t)
		}
		return s.out.Send(ctx, t)
	}
	if err := s.gen(ctx, emit); err != nil {
		return fmt.Errorf("source %q: %w", s.name, err)
	}
	return nil
}

// rateLimiter paces emissions to a fixed average rate using a virtual
// schedule: the i-th event is due at start + i/rate. Sleeping only when more
// than a millisecond ahead keeps high rates cheap.
type rateLimiter struct {
	interval time.Duration
	next     time.Time
}

func newRateLimiter(perSecond float64) *rateLimiter {
	return &rateLimiter{
		interval: time.Duration(float64(time.Second) / perSecond),
		next:     time.Now(),
	}
}

// reserve advances the virtual schedule by one event and returns how far
// ahead of it the caller is — how long sleep would pause.
func (r *rateLimiter) reserve() time.Duration {
	r.next = r.next.Add(r.interval)
	return time.Until(r.next)
}

// sleep pauses for d (a duration returned by reserve).
func (r *rateLimiter) sleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SliceSource returns a SourceFunc that replays the given tuples in order.
// It is convenient in tests and examples.
func SliceSource(tuples []core.Tuple) SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		for _, t := range tuples {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}
}
