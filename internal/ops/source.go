package ops

import (
	"context"
	"fmt"
	"time"

	"genealog/internal/core"
)

// SourceFunc generates the source tuples of a query. It must call emit with
// tuples in non-decreasing timestamp order and return when the stream is
// exhausted (or when emit returns an error, which it must propagate).
type SourceFunc func(ctx context.Context, emit func(core.Tuple) error) error

// Source creates the source tuples fed to a query (paper §2). It stamps each
// tuple with the wall-clock stimulus used for latency measurement, applies
// the instrumenter's OnSource hook, and optionally paces emission to a fixed
// rate.
type Source struct {
	name  string
	out   *Stream
	gen   SourceFunc
	instr core.Instrumenter

	// Rate, when > 0, paces emission to about Rate tuples per second.
	Rate float64
	// Now supplies the wall clock for stimulus stamping; defaults to
	// time.Now().UnixNano. Tests inject deterministic clocks.
	Now func() int64
	// OnEmit, when non-nil, observes every emitted tuple (metrics hook).
	OnEmit func(core.Tuple)
}

var _ Operator = (*Source)(nil)

// NewSource returns a Source named name that generates tuples with gen and
// emits them on out.
func NewSource(name string, gen SourceFunc, out *Stream, instr core.Instrumenter) *Source {
	return &Source{name: name, out: out, gen: gen, instr: instr}
}

// Name implements Operator.
func (s *Source) Name() string { return s.name }

// Run implements Operator.
func (s *Source) Run(ctx context.Context) error {
	defer s.out.Close()
	now := s.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	var pacer *rateLimiter
	if s.Rate > 0 {
		pacer = newRateLimiter(s.Rate)
	}
	emit := func(t core.Tuple) error {
		if pacer != nil {
			if err := pacer.wait(ctx); err != nil {
				return fmt.Errorf("source %q: %w", s.name, err)
			}
		}
		if m := core.MetaOf(t); m != nil {
			m.SetStimulus(now())
		}
		s.instr.OnSource(t)
		if s.OnEmit != nil {
			s.OnEmit(t)
		}
		return s.out.Send(ctx, t)
	}
	if err := s.gen(ctx, emit); err != nil {
		return fmt.Errorf("source %q: %w", s.name, err)
	}
	return nil
}

// rateLimiter paces emissions to a fixed average rate using a virtual
// schedule: the i-th event is due at start + i/rate. Sleeping only when more
// than a millisecond ahead keeps high rates cheap.
type rateLimiter struct {
	interval time.Duration
	next     time.Time
}

func newRateLimiter(perSecond float64) *rateLimiter {
	return &rateLimiter{
		interval: time.Duration(float64(time.Second) / perSecond),
		next:     time.Now(),
	}
}

func (r *rateLimiter) wait(ctx context.Context) error {
	r.next = r.next.Add(r.interval)
	d := time.Until(r.next)
	if d < time.Millisecond {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SliceSource returns a SourceFunc that replays the given tuples in order.
// It is convenient in tests and examples.
func SliceSource(tuples []core.Tuple) SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		for _, t := range tuples {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}
}
