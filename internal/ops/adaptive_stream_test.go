package ops

import (
	"context"
	"errors"
	"testing"

	"genealog/internal/core"
)

// TestStreamBlocksAtSameTupleDepth pins the buffering bugfix: capacity
// counts buffered tuples, so a producer against a stuck consumer blocks at
// the same depth whatever the batch size. Before the fix capacity counted
// batches, silently scaling effective buffering by the batch size (64x
// between batch 1 and batch 64 — and drifting continuously once the
// adaptive controller resizes batches mid-run).
func TestStreamBlocksAtSameTupleDepth(t *testing.T) {
	const capacity = 128
	for _, batch := range []int{1, 64} {
		// A cancelled context: Send prefers progress over reporting
		// cancellation, so every send with buffering space succeeds and
		// the first send that would block fails immediately instead.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		s := NewBatchedStream("s", capacity, batch)
		sent := 0
		var err error
		for {
			if err = s.Send(ctx, vt(int64(sent+1), "k", 0)); err != nil {
				break
			}
			sent++
			if sent > 10*capacity {
				t.Fatalf("batch %d: producer never blocked", batch)
			}
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("batch %d: send err = %v, want context.Canceled", batch, err)
		}
		if got := s.QueueLen(); got != capacity {
			t.Errorf("batch %d: blocked at %d buffered tuples, want capacity %d", batch, got, capacity)
		}
	}
}

// TestStreamOversizedBatchProgress: a batch larger than the whole buffering
// capacity is admitted alone into an empty stream rather than deadlocking
// the producer.
func TestStreamOversizedBatchProgress(t *testing.T) {
	ctx := context.Background()
	s := NewBatchedStream("s", 4, 16)
	for i := 1; i <= 16; i++ {
		if err := s.Send(ctx, vt(int64(i), "k", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.QueueLen(); got != 16 {
		t.Fatalf("queue len = %d, want the whole oversized batch (16)", got)
	}
	s.CloseSend(ctx)
	if got := len(drain(t, s)); got != 16 {
		t.Fatalf("drained %d tuples, want 16", got)
	}
}

// TestStreamShrinkThenFlush pins the resize bugfix on the flush path: after
// a downward resize, subsequent flushes publish at the new size even though
// the free list still holds arrays of the old capacity — a recycled
// oversized array must not make a shrunken stream keep publishing old-size
// batches.
func TestStreamShrinkThenFlush(t *testing.T) {
	ctx := context.Background()
	s := NewBatchedStream("s", 64, 8)

	// A full batch at size 8, drained so its size-8 backing array lands on
	// the free list.
	for i := 1; i <= 8; i++ {
		if err := s.Send(ctx, vt(int64(i), "k", 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, ok, err := s.Recv(ctx); !ok || err != nil {
			t.Fatalf("recv: ok=%v err=%v", ok, err)
		}
	}

	s.SetBatchSize(2)
	go func() {
		for i := 9; i <= 14; i++ {
			if err := s.Send(ctx, vt(int64(i), "k", 0)); err != nil {
				panic(err)
			}
		}
		s.CloseSend(ctx)
	}()
	var sizes []int
	for {
		b, ok, err := s.RecvBatch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		sizes = append(sizes, len(b))
	}
	if len(sizes) != 3 {
		t.Fatalf("got batches %v, want 3 batches of 2 after shrink", sizes)
	}
	for i, n := range sizes {
		if n != 2 {
			t.Errorf("batch %d has %d tuples, want the post-shrink size 2 (batches %v)", i, n, sizes)
		}
	}
}

// TestStreamResizeSemantics pins SetBatchSize's contract: clamping into
// [1, limit], an oversized pending batch flushing whole after a shrink, and
// the static limit gating what SetBatchSize can reach.
func TestStreamResizeSemantics(t *testing.T) {
	ctx := context.Background()
	s := NewBatchedStream("s", 64, 8)
	if got := s.BatchSizeLimit(); got != 8 {
		t.Fatalf("limit = %d, want construction batch 8", got)
	}
	s.SetBatchSize(100)
	if got := s.BatchSize(); got != 8 {
		t.Errorf("SetBatchSize(100) = %d, want clamp to limit 8", got)
	}
	s.SetBatchSize(0)
	if got := s.BatchSize(); got != 1 {
		t.Errorf("SetBatchSize(0) = %d, want clamp to 1", got)
	}
	s.SetBatchSizeLimit(32)
	s.SetBatchSize(16)
	if got := s.BatchSize(); got != 16 {
		t.Errorf("after raising limit, batch size = %d, want 16", got)
	}
	s.SetBatchSizeLimit(4)
	if got := s.BatchSize(); got != 4 {
		t.Errorf("lowering the limit below the live size leaves size %d, want 4", got)
	}

	// Accumulate 4 pending tuples, shrink to 1: the pending batch flushes
	// whole on the next send — resizing regroups, never reorders or drops.
	s.SetBatchSize(4)
	for i := 1; i <= 3; i++ {
		if err := s.Send(ctx, vt(int64(i), "k", 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.SetBatchSize(1)
	if err := s.Send(ctx, vt(4, "k", 0)); err != nil {
		t.Fatal(err)
	}
	b, ok, err := s.RecvBatch(ctx)
	if !ok || err != nil {
		t.Fatalf("recv: ok=%v err=%v", ok, err)
	}
	if len(b) != 4 {
		t.Errorf("post-shrink first batch has %d tuples, want the whole pending 4", len(b))
	}
	var got []int64
	for _, tup := range b {
		got = append(got, tup.Timestamp())
	}
	if !int64sEqual(got, []int64{1, 2, 3, 4}) {
		t.Errorf("tuples across resize = %v, want 1..4 in order", got)
	}
}

// TestStreamHeartbeatCoalescingSurvivesResize: the trailing-heartbeat
// coalescing rule is independent of the live batch size.
func TestStreamHeartbeatCoalescingSurvivesResize(t *testing.T) {
	ctx := context.Background()
	s := NewBatchedStream("s", 64, 8)
	if err := s.Send(ctx, core.NewHeartbeat(5)); err != nil {
		t.Fatal(err)
	}
	s.SetBatchSize(2)
	if err := s.Send(ctx, vt(7, "k", 0)); err != nil {
		t.Fatal(err)
	}
	s.CloseSend(ctx)
	out := drainAll(t, s)
	if len(out) != 1 || core.IsHeartbeat(out[0]) || out[0].Timestamp() != 7 {
		t.Fatalf("out = %v, want the single data tuple subsuming the heartbeat", out)
	}
}
