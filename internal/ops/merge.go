package ops

import (
	"context"

	"genealog/internal/core"
)

// tsMerge deterministically merges multiple timestamp-sorted input streams
// into a single timestamp-sorted sequence, the property that makes query
// executions deterministic (paper §2, citing [18-20]). A tuple is only
// released once every still-open input has a buffered head, so the minimum
// timestamp is always chosen; ties are broken by input index.
type tsMerge struct {
	inputs []*Stream
	heads  []core.Tuple
	has    []bool
	done   []bool
	open   int

	// onStarve, when non-nil, runs before a refill that would block on an
	// input channel. Merge operators set it to flush their output stream, so
	// everything they have produced is visible downstream while they wait —
	// the batched-transport liveness rule (see Stream.Flush).
	onStarve func(ctx context.Context) error
}

func newTSMerge(inputs []*Stream) *tsMerge {
	return &tsMerge{
		inputs: inputs,
		heads:  make([]core.Tuple, len(inputs)),
		has:    make([]bool, len(inputs)),
		done:   make([]bool, len(inputs)),
		open:   len(inputs),
	}
}

// Next returns the next tuple in deterministic timestamp order along with
// the index of the input it came from. ok is false once every input has
// ended.
func (m *tsMerge) Next(ctx context.Context) (t core.Tuple, input int, ok bool, err error) {
	// Refill: block until every open input has a head (or ends).
	for i := range m.inputs {
		if m.done[i] || m.has[i] {
			continue
		}
		if !m.inputs[i].CanRecv() && m.onStarve != nil {
			if err := m.onStarve(ctx); err != nil {
				return nil, 0, false, err
			}
		}
		tup, alive, err := m.inputs[i].Recv(ctx)
		if err != nil {
			return nil, 0, false, err
		}
		if !alive {
			m.done[i] = true
			m.open--
			continue
		}
		m.heads[i] = tup
		m.has[i] = true
	}
	best := -1
	for i := range m.heads {
		if !m.has[i] {
			continue
		}
		if best == -1 || m.heads[i].Timestamp() < m.heads[best].Timestamp() {
			best = i
		}
	}
	if best == -1 {
		return nil, 0, false, nil
	}
	t = m.heads[best]
	m.heads[best] = nil
	m.has[best] = false
	return t, best, true, nil
}
