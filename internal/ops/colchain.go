package ops

import (
	"context"
	"fmt"

	"genealog/internal/core"
	"genealog/internal/telemetry"
)

// ColStage is one logical stateless operator of a ColChain, expressed as a
// typed kernel over the columns of Schema. Only Map and Filter stages can
// vectorize; pass-through Multiplex/Union stages (which exist for provenance
// cloning, an inherently per-tuple row operation) keep the row path.
type ColStage struct {
	// Name is the logical operator's name (error messages, plan dumps).
	Name string
	// Kind selects the stage behaviour: StageMap or StageFilter.
	Kind StageKind
	// Schema declares the columns the kernel reads. Stages sharing a schema
	// pointer share one extraction pass per run of tuples.
	Schema *ColSchema
	// Filter is the kernel of a StageFilter.
	Filter FilterKernel
	// Map is the kernel of a (strictly one-to-one) StageMap.
	Map MapKernel
}

func (s ColStage) validate() error {
	if s.Schema == nil {
		return fmt.Errorf("stage %q: columnar stage needs a Schema", s.Name)
	}
	if err := s.Schema.Validate(); err != nil {
		return fmt.Errorf("stage %q: %w", s.Name, err)
	}
	switch s.Kind {
	case StageMap:
		if s.Map == nil {
			return fmt.Errorf("stage %q: columnar map stage needs a Map kernel", s.Name)
		}
	case StageFilter:
		if s.Filter == nil {
			return fmt.Errorf("stage %q: columnar filter stage needs a Filter kernel", s.Name)
		}
	default:
		return fmt.Errorf("stage %q: stage kind %v cannot vectorize", s.Name, s.Kind)
	}
	return nil
}

// ColChain is the vectorized twin of FusedChain: it executes a linear chain
// of stateless Map/Filter stages whose operators declared typed kernels,
// moving each run of data tuples through the chain as a struct-of-arrays
// ColBatch instead of tuple-at-a-time closure calls. The row↔column
// boundary lives inside the operator: input rows are bound as a ColBatch
// whose columns materialize lazily when a kernel first reads them (one fill
// per column per run, at the live positions only), kernels run over the
// columns with a selection vector of live positions, and the surviving rows
// are materialised back onto the output stream in row order.
//
// Vectorization is purely physical, exactly like fusion: survivors are the
// very tuple objects the row path would forward (Filter) or the kernel's
// outputs linked through the instrumenter with merged stimulus (Map, OnMap
// per stage), dropped tuples advertise watermark progress once per distinct
// event time in row order, and heartbeats are forwarded coalesced. The
// sink-observable output and every contribution graph are byte-identical to
// the same stages running as a FusedChain or as standalone operators.
type ColChain struct {
	name   string
	in     *Stream
	out    *Stream
	stages []ColStage
	instr  core.Instrumenter

	ctx      context.Context
	err      error
	lastOut  int64
	haveLast bool

	// Per-run scratch, reused across batches so steady-state vectorized
	// execution allocates nothing but the Map kernels' output tuples. iota
	// is the identity selection [0,1,2,...], grown once and never written
	// by kernels; selBuf are the two swap buffers filter kernels append
	// into.
	cb     ColBatch
	iota   []int
	selBuf [2][]int
	outs   []core.Tuple

	// noopInstr marks a core.Noop instrumenter, detected once at
	// construction so map stages skip the per-tuple dynamic call — the
	// batch-level devirtualization a vectorized runtime affords.
	noopInstr bool

	// Seg, when non-nil, counts the batches, tuple slots and contiguous
	// data runs absorbed by the vectorized segment. Set before Run
	// (query.Build does); one nil check per batch plus one per run.
	Seg *telemetry.SegStats
}

var _ Operator = (*ColChain)(nil)

// emptyOuts is the non-nil zero-capacity dst handed to a map kernel before
// its chain owns an output buffer; the first real append replaces it.
var emptyOuts = make([]core.Tuple, 0)

// NewColChain returns a ColChain applying the given stages in order; it
// panics if the stage list is empty or a stage is invalid (a programming
// error caught at query-construction time, like NewFusedChain).
func NewColChain(name string, in, out *Stream, stages []ColStage, instr core.Instrumenter) *ColChain {
	if len(stages) == 0 {
		panic(fmt.Sprintf("columnar chain %q: no stages", name))
	}
	for _, s := range stages {
		if err := s.validate(); err != nil {
			panic(fmt.Sprintf("columnar chain %q: %v", name, err))
		}
	}
	_, noop := instr.(core.Noop)
	return &ColChain{name: name, in: in, out: out, stages: stages, instr: instr, noopInstr: noop}
}

// Name implements Operator.
func (c *ColChain) Name() string { return c.name }

// Stages returns the number of logical stages fused into the chain.
func (c *ColChain) Stages() int { return len(c.stages) }

// Run implements Operator. Each input batch is split into maximal runs of
// consecutive data tuples; every run flows through the kernels as a
// column-bound view of the batch itself — no copy — and crosses back to
// rows at delivery. Heartbeats between runs advertise coalesced, in their
// row positions. The output is flushed once per input batch, before
// blocking for more input.
func (c *ColChain) Run(ctx context.Context) error {
	defer c.out.CloseSend(ctx)
	c.ctx = ctx
	for {
		batch, ok, err := c.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("columnar chain %q: %w", c.name, err)
		}
		if !ok {
			return nil
		}
		if c.Seg != nil {
			c.Seg.NoteBatch(len(batch))
		}
		// The chain owns the received batch until the next RecvBatch, so
		// runs are processed as in-place subslices; a Map stage rewrites
		// survivor positions directly.
		for i := 0; i < len(batch); {
			t := batch[i]
			if core.IsHeartbeat(t) {
				c.advertise(t.Timestamp())
				i++
			} else {
				j := i + 1
				for j < len(batch) && !core.IsHeartbeat(batch[j]) {
					j++
				}
				if c.Seg != nil {
					c.Seg.NoteRun()
				}
				c.processRun(batch[i:j])
				i = j
			}
			if c.err != nil {
				return fmt.Errorf("columnar chain %q: %w", c.name, c.err)
			}
		}
		if err := c.out.Flush(ctx); err != nil {
			return fmt.Errorf("columnar chain %q: %w", c.name, err)
		}
	}
}

// processRun pushes one run of data tuples through the kernels and
// materialises the result in row order: live positions deliver, dead
// positions advertise the timestamp the tuple carried when its filter
// dropped it — the exact deliver/advertise sequence the row path produces.
func (c *ColChain) processRun(rows []core.Tuple) {
	if len(rows) == 0 || c.err != nil {
		return
	}
	// sel holds the live positions, in row order, throughout the chain.
	// Filter kernels alternate between the two swap buffers, never writing
	// into the slice they read.
	sel := growIota(&c.iota, len(rows))
	if cap(c.selBuf[0]) < len(rows) {
		c.selBuf[0] = make([]int, 0, len(rows))
		c.selBuf[1] = make([]int, 0, len(rows))
	}
	buf := 0
	fresh := true
	for _, st := range c.stages {
		if len(sel) == 0 {
			break
		}
		// Binding is lazy: no column is extracted until this stage's
		// kernel reads it, and columns already extracted for an earlier
		// stage of this run under the same schema stay valid. The first
		// bind of a run invalidates — the batch buffer may be recycled.
		// While the selection is still full (sel is a prefix of the
		// identity covering every row) bind with a nil fill selection:
		// lazy fills then range the rows directly instead of walking the
		// selection vector — the per-run extraction fixed cost that
		// dominates small batches.
		fillSel := sel
		if len(sel) == len(rows) {
			fillSel = nil
		}
		c.cb.bind(st.Schema, rows, fillSel)
		if fresh {
			c.cb.invalidate()
			fresh = false
		}
		switch st.Kind {
		case StageFilter:
			dst := st.Filter(&c.cb, sel, c.selBuf[buf][:0])
			c.selBuf[buf] = dst
			sel = dst
			buf ^= 1
		case StageMap:
			dst := c.outs[:0]
			if dst == nil {
				// Kernels always receive a non-nil dst, so a nil return is
				// only ever the deliberate identity signal. The zero-capacity
				// sentinel defers the buffer allocation to the kernel's first
				// append — an identity chain never allocates one.
				dst = emptyOuts
			}
			outs := st.Map(&c.cb, sel, dst)
			if outs == nil {
				// Identity: every selected row maps to itself. Nothing to
				// materialise, no stimulus to merge (a self-merge is a
				// no-op), and the extracted columns stay valid; only the
				// instrumenter needs to see each self-map. c.outs keeps its
				// buffer for a later transform stage.
				if !c.noopInstr {
					for _, pos := range sel {
						c.instr.OnMap(rows[pos], rows[pos])
					}
				}
				continue
			}
			c.outs = outs
			if len(c.outs) != len(sel) {
				c.err = fmt.Errorf("stage %q: map kernel returned %d outputs for %d inputs (kernels are strictly one-to-one)",
					st.Name, len(c.outs), len(sel))
				return
			}
			changed := false
			for i, pos := range sel {
				out, in := c.outs[i], rows[pos]
				if out != in {
					// Merging a tuple's stimulus into itself is a no-op, so
					// identity outputs skip the meta lookups and the row
					// write. (Returning the input tuple means it is
					// unchanged; a kernel must not mutate a tuple it passes
					// through.)
					if om, im := core.MetaOf(out), core.MetaOf(in); om != nil && im != nil {
						om.MergeStimulus(im.Stimulus())
					}
					rows[pos] = out
					changed = true
				}
				if !c.noopInstr {
					c.instr.OnMap(out, in)
				}
			}
			// c.outs keeps its references until the next map stage
			// overwrites them — the same bounded retention a recycled
			// stream batch already has.
			if changed {
				// Rows changed under the bound slice header; every column
				// extracted so far is stale. A pure-identity pass keeps the
				// extracted columns valid.
				c.cb.invalidate()
			}
		}
	}
	// Every row survived: one bulk gather, no merge-walk.
	if len(sel) == len(rows) {
		c.deliverGather(rows, sel)
		return
	}
	// Materialise by merge-walking rows against the (ascending) survivor
	// positions. Survivors accumulate into a pending segment of sel that is
	// gathered downstream in bulk; a dropped tuple breaks the segment only
	// when its watermark advertisement would actually emit a heartbeat —
	// with pending survivors at the same (or a later) event time the row
	// path suppresses it, so the segment keeps growing. The delivered
	// tuple/heartbeat sequence and the downstream batch boundaries are
	// identical to per-tuple sends.
	k, seg := 0, 0
	for pos, t := range rows {
		if k < len(sel) && sel[k] == pos {
			k++
			continue
		}
		// rows[pos] still holds the tuple as of the stage that dropped it,
		// so its timestamp matches the row path's advertisement.
		ts := t.Timestamp()
		if k > seg {
			if ts <= rows[sel[k-1]].Timestamp() {
				continue // suppressed by the pending survivors
			}
			c.deliverGather(rows, sel[seg:k])
			seg = k
		}
		c.advertise(ts)
		if c.err != nil {
			return
		}
	}
	c.deliverGather(rows, sel[seg:k])
}

// deliverGather sends rows[sel[0]], rows[sel[1]], ... — a segment of
// survivors of every stage — downstream in one bulk gather.
func (c *ColChain) deliverGather(rows []core.Tuple, sel []int) {
	if c.err != nil || len(sel) == 0 {
		return
	}
	c.lastOut, c.haveLast = rows[sel[len(sel)-1]].Timestamp(), true
	if err := c.out.SendGather(c.ctx, rows, sel); err != nil {
		c.err = err
	}
}

// advertise publishes watermark progress for a dropped tuple (or an incoming
// heartbeat), once per distinct event time.
func (c *ColChain) advertise(ts int64) {
	if c.err != nil || (c.haveLast && ts <= c.lastOut) {
		return
	}
	c.lastOut, c.haveLast = ts, true
	if err := c.out.Send(c.ctx, core.NewHeartbeat(ts)); err != nil {
		c.err = err
	}
}
