package ops

// Window arithmetic for time-based sliding windows of size ws and advance wa
// (paper §2, Aggregate). Windows are aligned at integer multiples of wa:
// window k covers event times [k*wa, k*wa+ws).

// floorDiv returns floor(a/b) for b > 0, correct for negative a (Go's
// integer division truncates toward zero).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// firstWindowStart returns the start of the earliest window containing ts:
// the smallest multiple s of wa with s+ws > ts.
func firstWindowStart(ts, ws, wa int64) int64 {
	return floorDiv(ts-ws, wa)*wa + wa
}

// lastWindowStart returns the start of the latest window containing ts: the
// largest multiple of wa that is <= ts.
func lastWindowStart(ts, wa int64) int64 {
	return floorDiv(ts, wa) * wa
}

// windowContains reports whether the window starting at s (size ws) contains
// event time ts.
func windowContains(s, ws, ts int64) bool {
	return ts >= s && ts < s+ws
}
