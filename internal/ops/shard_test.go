package ops

import (
	"context"
	"strconv"
	"testing"

	"genealog/internal/core"
)

// runShardSubgraph materialises a sharded aggregate or join subgraph and
// runs it together with the given extra operators.
func runShardSubgraph(t *testing.T, operators []Operator, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	runOps(t, operators...)
}

func TestPartitionRoutesByKeyAndBroadcastsWatermarks(t *testing.T) {
	in := NewStream("in", 16)
	outs := []*Stream{NewStream("s0", 16), NewStream("s1", 16), NewStream("s2", 16)}
	p := NewPartition("part", in, outs, keyOf)

	tuples := []core.Tuple{
		vt(1, "a", 1), vt(1, "b", 2), vt(2, "c", 3), vt(3, "a", 4),
	}
	go func() {
		for _, tp := range tuples {
			in.ch <- Batch{tp}
		}
		in.Close()
	}()
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	perShard := make([][]core.Tuple, len(outs))
	for i, out := range outs {
		perShard[i] = drainAll(t, out)
	}

	// Every data tuple lands on the shard its key hashes to, and nowhere else.
	for i, got := range perShard {
		lastTs := int64(-1 << 62)
		for _, tp := range got {
			if tp.Timestamp() < lastTs {
				t.Fatalf("shard %d: timestamps went backwards: %v", i, timestamps(got))
			}
			lastTs = tp.Timestamp()
			if core.IsHeartbeat(tp) {
				continue
			}
			if want := shardIndex(keyOf(tp), len(outs)); want != i {
				t.Fatalf("tuple with key %q on shard %d, want %d", keyOf(tp), i, want)
			}
		}
	}

	// Each shard has seen the final watermark (ts=3), either as its own data
	// tuple or as a broadcast heartbeat, so no shard can lag its siblings.
	for i, got := range perShard {
		if len(got) == 0 || got[len(got)-1].Timestamp() != 3 {
			t.Fatalf("shard %d did not observe the final watermark: %v", i, timestamps(got))
		}
	}

	// The data tuples, re-merged, are exactly the input.
	var data []core.Tuple
	for _, got := range perShard {
		for _, tp := range got {
			if !core.IsHeartbeat(tp) {
				data = append(data, tp)
			}
		}
	}
	if len(data) != len(tuples) {
		t.Fatalf("partition dropped or duplicated tuples: got %d, want %d", len(data), len(tuples))
	}
}

func TestFanInRestoresKeyOrderAndUnwraps(t *testing.T) {
	// Two shards emit tagged same-timestamp outputs whose keys interleave;
	// the fan-in must produce the global (ts, key) order a serial operator
	// would have emitted, with the tags stripped.
	s0 := NewStream("s0", 8)
	s1 := NewStream("s1", 8)
	out := NewStream("out", 16)
	s0.ch <- Batch{&shardTagged{inner: vt(1, "a", 0), key: "a"}}
	s0.ch <- Batch{&shardTagged{inner: vt(1, "c", 0), key: "c"}}
	s0.ch <- Batch{&shardTagged{inner: vt(2, "a", 0), key: "a"}}
	s0.Close()
	s1.ch <- Batch{&shardTagged{inner: vt(1, "b", 0), key: "b"}}
	s1.ch <- Batch{&shardTagged{inner: vt(2, "d", 0), key: "d"}}
	s1.Close()

	f := NewFanIn("merge", []*Stream{s0, s1}, out)
	if err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := drain(t, out)
	want := []string{"1/a", "1/b", "1/c", "2/a", "2/d"}
	if len(got) != len(want) {
		t.Fatalf("fan-in emitted %d tuples, want %d", len(got), len(want))
	}
	for i, tp := range got {
		v, ok := tp.(*vTuple)
		if !ok {
			t.Fatalf("fan-in leaked a tagged tuple: %T", tp)
		}
		if s := strconv.FormatInt(v.Timestamp(), 10) + "/" + v.Key; s != want[i] {
			t.Fatalf("position %d: got %s, want %s", i, s, want[i])
		}
	}
}

func TestShardAggregateMatchesSerialByteForByte(t *testing.T) {
	// A keyed sliding-window aggregate over several keys with overlapping
	// windows; the sharded execution must reproduce the serial operator's
	// sink-observable sequence exactly, at every parallelism level.
	build := func() []core.Tuple {
		var tuples []core.Tuple
		for ts := int64(0); ts < 40; ts++ {
			for k := 0; k < 7; k++ {
				if (int(ts)+k)%3 == 0 {
					continue // some keys skip some timestamps
				}
				tuples = append(tuples, vt(ts, "k"+strconv.Itoa(k), ts+int64(k)))
			}
		}
		return tuples
	}
	spec := AggregateSpec{WS: 6, WA: 2, Key: keyOf, Fold: sumFold}

	serialOut := func() []core.Tuple {
		in := feed(build()...)
		out := NewStream("out", 1024)
		a := NewAggregate("agg", in, out, spec, core.Noop{})
		if err := a.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return drain(t, out)
	}()

	for _, parallelism := range []int{2, 3, 4} {
		in := feed(build()...)
		out := NewStream("out", 4096)
		operators, err := ShardAggregate("agg", in, out, spec, core.Noop{}, parallelism, 64, 1)
		runShardSubgraph(t, operators, err)
		got := drain(t, out)
		if len(got) != len(serialOut) {
			t.Fatalf("parallelism %d: %d outputs, want %d", parallelism, len(got), len(serialOut))
		}
		for i := range got {
			g, w := got[i].(*vTuple), serialOut[i].(*vTuple)
			if g.Timestamp() != w.Timestamp() || g.Key != w.Key || g.Val != w.Val {
				t.Fatalf("parallelism %d: output %d is %d/%s/%d, want %d/%s/%d",
					parallelism, i, g.Timestamp(), g.Key, g.Val, w.Timestamp(), w.Key, w.Val)
			}
		}
	}
}

func TestShardJoinMatchesSerialExactly(t *testing.T) {
	// An equi-join sharded by key must reproduce the serial join's output
	// sequence byte for byte: the serial join orders same-timestamp matches
	// by (timestamp, left key, right key), each shard emits an
	// ascending-key subsequence of that, and the fan-in's (timestamp,
	// partition key) merge re-interleaves them into exactly the serial
	// sequence. Regression test for the same-timestamp emission-order
	// parity that keeps Q4 byte-identical across all plans.
	buildSide := func(side int64) []core.Tuple {
		var tuples []core.Tuple
		for ts := int64(0); ts < 30; ts++ {
			for k := 0; k < 5; k++ {
				tuples = append(tuples, vt(ts, "k"+strconv.Itoa(k), side*1000+ts))
			}
		}
		return tuples
	}
	spec := JoinSpec{
		WS:       2,
		LeftKey:  keyOf,
		RightKey: keyOf,
		Predicate: func(l, r core.Tuple) bool {
			return l.(*vTuple).Key == r.(*vTuple).Key && l.Timestamp() < r.Timestamp()
		},
		Combine: func(l, r core.Tuple) core.Tuple {
			return vt(0, l.(*vTuple).Key, l.(*vTuple).Val*10000+r.(*vTuple).Val)
		},
	}
	render := func(tuples []core.Tuple) []string {
		out := make([]string, len(tuples))
		for i, tp := range tuples {
			v := tp.(*vTuple)
			out[i] = strconv.FormatInt(v.Timestamp(), 10) + "/" + v.Key + "/" + strconv.FormatInt(v.Val, 10)
		}
		return out
	}

	serial := func() []core.Tuple {
		left, right := feed(buildSide(1)...), feed(buildSide(2)...)
		out := NewStream("out", 1<<14)
		j := NewJoin("join", left, right, out, spec, core.Noop{})
		if err := j.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return drain(t, out)
	}()
	want := render(serial)

	for _, parallelism := range []int{2, 4} {
		left, right := feed(buildSide(1)...), feed(buildSide(2)...)
		out := NewStream("out", 1<<14)
		operators, err := ShardJoin("join", left, right, out, spec, core.Noop{}, parallelism, 64, 1)
		runShardSubgraph(t, operators, err)
		got := render(drain(t, out))
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d outputs, want %d", parallelism, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: sequence diverges from serial at %d: got %s, want %s",
					parallelism, i, got[i], want[i])
			}
		}
	}
}

func TestShardSpecValidation(t *testing.T) {
	in, out := NewStream("in", 1), NewStream("out", 1)
	if _, err := ShardAggregate("a", in, out, AggregateSpec{WS: 1, WA: 1, Fold: sumFold}, core.Noop{}, 4, 0, 0); err == nil {
		t.Fatal("sharded aggregate without a Key must be rejected")
	}
	if _, err := ShardAggregate("a", in, out, AggregateSpec{WS: 1, WA: 1, Key: keyOf, Fold: sumFold}, core.Noop{}, 1, 0, 0); err == nil {
		t.Fatal("parallelism < 2 must be rejected")
	}
	spec := JoinSpec{
		WS:        1,
		Predicate: func(l, r core.Tuple) bool { return true },
		Combine:   func(l, r core.Tuple) core.Tuple { return nil },
	}
	if _, err := ShardJoin("j", in, in, out, spec, core.Noop{}, 4, 0, 0); err == nil {
		t.Fatal("sharded join without key extractors must be rejected")
	}
}

// TestShardAggregatePrefixedMatchesSerial: hoisting a fused stateless
// prefix into the shard lanes — the partitioner consuming the pre-prefix
// stream — must reproduce the serial filter+map+aggregate chain byte for
// byte.
func TestShardAggregatePrefixedMatchesSerial(t *testing.T) {
	build := func() []core.Tuple {
		var tuples []core.Tuple
		for ts := int64(0); ts < 40; ts++ {
			for k := 0; k < 7; k++ {
				tuples = append(tuples, vt(ts, "k"+strconv.Itoa(k), ts+int64(k)))
			}
		}
		return tuples
	}
	pred := func(t core.Tuple) bool { return t.(*vTuple).Val%3 != 0 }
	double := func(t core.Tuple, emit func(core.Tuple)) {
		v := t.(*vTuple)
		emit(vt(v.Timestamp(), v.Key, v.Val*2))
	}
	stages := func() []FusedStage {
		return []FusedStage{
			{Name: "keep", Kind: StageFilter, Pred: pred},
			{Name: "double", Kind: StageMap, Map: double},
		}
	}
	spec := AggregateSpec{WS: 6, WA: 2, Key: keyOf, Fold: sumFold}

	serialOut := func() []core.Tuple {
		in := feed(build()...)
		mid := NewStream("mid", 1024)
		out := NewStream("out", 4096)
		chain := NewFusedChain("prefix", in, mid, stages(), core.Noop{})
		a := NewAggregate("agg", mid, out, spec, core.Noop{})
		done := make(chan []core.Tuple)
		go func() { done <- drain(t, out) }()
		runOps(t, chain, a)
		return <-done
	}()
	if len(serialOut) == 0 {
		t.Fatal("serial chain produced no outputs")
	}

	for _, parallelism := range []int{2, 4} {
		in := feed(build()...)
		out := NewStream("out", 4096)
		// The prefix contains a Map, so the hoisted partitioner routes by a
		// declared pre-prefix key (the map is key-preserving here).
		prefix := &ShardPrefix{Name: "keep+double", Stages: stages(), Key: keyOf}
		operators, err := ShardAggregatePrefixed("agg", in, out, spec, core.Noop{}, parallelism, 64, 1, prefix)
		runShardSubgraph(t, operators, err)
		got := drain(t, out)
		if len(got) != len(serialOut) {
			t.Fatalf("parallelism %d: %d outputs, want %d", parallelism, len(got), len(serialOut))
		}
		for i := range got {
			g, w := got[i].(*vTuple), serialOut[i].(*vTuple)
			if g.Timestamp() != w.Timestamp() || g.Key != w.Key || g.Val != w.Val {
				t.Fatalf("parallelism %d: output %d is %d/%s/%d, want %d/%s/%d",
					parallelism, i, g.Timestamp(), g.Key, g.Val, w.Timestamp(), w.Key, w.Val)
			}
		}
	}
}

// TestShardJoinPrefixedMatchesSerial: per-side fused prefixes replicated
// into the join lanes must reproduce the serial prefix+join output sequence
// byte for byte.
func TestShardJoinPrefixedMatchesSerial(t *testing.T) {
	buildSide := func(side int64) []core.Tuple {
		var tuples []core.Tuple
		for ts := int64(0); ts < 30; ts++ {
			for k := 0; k < 5; k++ {
				tuples = append(tuples, vt(ts, "k"+strconv.Itoa(k), side*1000+ts))
			}
		}
		return tuples
	}
	rightPred := func(t core.Tuple) bool { return t.(*vTuple).Val%2 == 0 }
	rightStages := func() []FusedStage {
		return []FusedStage{{Name: "evens", Kind: StageFilter, Pred: rightPred}}
	}
	spec := JoinSpec{
		WS:       2,
		LeftKey:  keyOf,
		RightKey: keyOf,
		Predicate: func(l, r core.Tuple) bool {
			return l.(*vTuple).Key == r.(*vTuple).Key && l.Timestamp() < r.Timestamp()
		},
		Combine: func(l, r core.Tuple) core.Tuple {
			return vt(0, l.(*vTuple).Key, l.(*vTuple).Val*10000+r.(*vTuple).Val)
		},
	}
	render := func(tuples []core.Tuple) []string {
		out := make([]string, len(tuples))
		for i, tp := range tuples {
			v := tp.(*vTuple)
			out[i] = strconv.FormatInt(v.Timestamp(), 10) + "/" + v.Key + "/" + strconv.FormatInt(v.Val, 10)
		}
		return out
	}

	serial := func() []core.Tuple {
		left := feed(buildSide(1)...)
		right := feed(buildSide(2)...)
		mid := NewStream("mid", 1024)
		out := NewStream("out", 1<<14)
		chain := NewFusedChain("evens", right, mid, rightStages(), core.Noop{})
		j := NewJoin("join", left, mid, out, spec, core.Noop{})
		done := make(chan []core.Tuple)
		go func() { done <- drain(t, out) }()
		runOps(t, chain, j)
		return <-done
	}()
	if len(serial) == 0 {
		t.Fatal("serial prefixed join produced no outputs")
	}
	want := render(serial)

	for _, parallelism := range []int{2, 4} {
		left := feed(buildSide(1)...)
		right := feed(buildSide(2)...)
		out := NewStream("out", 1<<14)
		prefix := &ShardPrefix{Name: "evens", Stages: rightStages()} // filter-only: route by RightKey
		operators, err := ShardJoinPrefixed("join", left, right, out, spec, core.Noop{}, parallelism, 64, 1, nil, prefix)
		runShardSubgraph(t, operators, err)
		got := render(drain(t, out))
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d outputs, want %d", parallelism, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: sequence diverges from serial at %d: got %s, want %s",
					parallelism, i, got[i], want[i])
			}
		}
	}
}

// TestShardPrefixValidation: malformed prefixes are rejected up front.
func TestShardPrefixValidation(t *testing.T) {
	in, out := NewStream("in", 1), NewStream("out", 1)
	aggSpec := AggregateSpec{WS: 1, WA: 1, Key: keyOf, Fold: sumFold}
	if _, err := ShardAggregatePrefixed("a", in, out, aggSpec, core.Noop{}, 2, 0, 0,
		&ShardPrefix{Name: "empty"}); err == nil {
		t.Fatal("a prefix without stages must be rejected")
	}
	if _, err := ShardAggregatePrefixed("a", in, out, aggSpec, core.Noop{}, 2, 0, 0,
		&ShardPrefix{Name: "bad", Stages: []FusedStage{{Name: "m", Kind: StageMap}}}); err == nil {
		t.Fatal("a prefix with an invalid stage must be rejected")
	}
	joinSpec := JoinSpec{
		WS:        1,
		LeftKey:   keyOf,
		RightKey:  keyOf,
		Predicate: func(l, r core.Tuple) bool { return true },
		Combine:   func(l, r core.Tuple) core.Tuple { return nil },
	}
	if _, err := ShardJoinPrefixed("j", in, in, out, joinSpec, core.Noop{}, 2, 0, 0,
		&ShardPrefix{Name: "empty"}, nil); err == nil {
		t.Fatal("a left prefix without stages must be rejected")
	}
}
