package ops

import (
	"context"
	"fmt"

	"genealog/internal/core"
)

// Union deterministically merges multiple timestamp-sorted input streams
// into one timestamp-sorted output stream (paper §2). Like Filter, it
// forwards existing tuples and therefore needs no provenance
// instrumentation (§4.1). Redundant heartbeats (several inputs advertising
// the same watermark) are coalesced.
type Union struct {
	name string
	ins  []*Stream
	out  *Stream

	lastOut  int64
	haveLast bool
}

var _ Operator = (*Union)(nil)

// NewUnion returns a Union operator over the given inputs.
func NewUnion(name string, ins []*Stream, out *Stream) *Union {
	return &Union{name: name, ins: ins, out: out}
}

// Name implements Operator.
func (u *Union) Name() string { return u.name }

// Run implements Operator.
func (u *Union) Run(ctx context.Context) error {
	defer u.out.CloseSend(ctx)
	merge := newTSMerge(u.ins)
	merge.onStarve = u.out.Flush
	for {
		t, _, ok, err := merge.Next(ctx)
		if err != nil {
			return fmt.Errorf("union %q: %w", u.name, err)
		}
		if !ok {
			return nil
		}
		if core.IsHeartbeat(t) && u.haveLast && t.Timestamp() <= u.lastOut {
			continue // watermark already visible downstream
		}
		u.lastOut, u.haveLast = t.Timestamp(), true
		if err := u.out.Send(ctx, t); err != nil {
			return fmt.Errorf("union %q: %w", u.name, err)
		}
	}
}
