package ops

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"genealog/internal/core"
)

// JoinSpec configures a Join operator.
type JoinSpec struct {
	// WS is the join window: a left tuple l and right tuple r can match only
	// if |l.ts - r.ts| <= WS.
	WS int64
	// Predicate decides whether a (left, right) pair joins.
	Predicate func(l, r core.Tuple) bool
	// Combine builds the output tuple of a matched pair. The operator
	// overwrites its timestamp with max(l.ts, r.ts) (keeping the output
	// sorted) and merges the pair's stimuli; Combine only fills the payload.
	Combine func(l, r core.Tuple) core.Tuple
	// LeftKey and RightKey extract the equi-join key of each side.
	// Shard-parallel execution (ShardJoin) requires both and partitions each
	// input by its key, so the Predicate must only match pairs whose keys are
	// equal — pairs spanning different keys would land on different shards
	// and never meet. A keyed Join additionally emits same-timestamp outputs
	// in (left key, right key) order rather than match order, which makes
	// its output byte-identical — not just the same timestamp-sorted
	// multiset — across serial, shard-parallel, fused and vectorized plans.
	LeftKey  func(t core.Tuple) string
	RightKey func(t core.Tuple) string
}

func (s JoinSpec) validate() error {
	if s.WS < 0 {
		return errors.New("join: WS must be non-negative")
	}
	if s.Predicate == nil || s.Combine == nil {
		return errors.New("join: Predicate and Combine are required")
	}
	return nil
}

// pendingJoinOut is one same-timestamp output held back for the keyed
// (timestamp, left key, right key) emission-order tie-break.
type pendingJoinOut struct {
	out    core.Tuple
	lk, rk string
}

// joinEmitter is the output side shared by the row and columnar joins: the
// keyed same-timestamp tie-break buffer and the coalesced watermark
// advertisements. Both operators feed it the same match sequence, so their
// downstream-visible output is byte-identical by construction.
type joinEmitter struct {
	out *Stream

	pending   []pendingJoinOut
	pendingTs int64

	lastOut  int64 // watermark already visible downstream (tuple or heartbeat)
	haveLast bool
}

// hold defers a keyed output for the (left key, right key) tie-break.
func (e *joinEmitter) hold(out core.Tuple, lk, rk string) {
	e.pending = append(e.pending, pendingJoinOut{out: out, lk: lk, rk: rk})
	e.pendingTs = out.Timestamp()
}

// watermark advances the downstream watermark to ts, first flushing any
// pending keyed outputs it strictly passes. While outputs are pending at ts
// itself, the advance is withheld — later merge deliveries at the same
// timestamp may still add same-timestamp matches that must sort with them.
func (e *joinEmitter) watermark(ctx context.Context, ts int64) error {
	if len(e.pending) > 0 {
		if ts <= e.pendingTs {
			return nil
		}
		if err := e.flushPending(ctx); err != nil {
			return err
		}
	}
	return e.advertise(ctx, ts)
}

// flushPending emits the held same-timestamp outputs sorted by (left key,
// right key). The sort is stable, so outputs sharing both keys keep their
// deterministic match order.
func (e *joinEmitter) flushPending(ctx context.Context) error {
	if len(e.pending) == 0 {
		return nil
	}
	sort.SliceStable(e.pending, func(a, b int) bool {
		pa, pb := e.pending[a], e.pending[b]
		if pa.lk != pb.lk {
			return pa.lk < pb.lk
		}
		return pa.rk < pb.rk
	})
	for i, p := range e.pending {
		e.lastOut, e.haveLast = p.out.Timestamp(), true
		if err := e.out.Send(ctx, p.out); err != nil {
			return err
		}
		e.pending[i] = pendingJoinOut{}
	}
	e.pending = e.pending[:0]
	return nil
}

// advertise emits a Heartbeat once per watermark advance: every future
// output pairs the incoming side's tuple (timestamp >= the merged watermark)
// with a buffered one, so its event time — the pair maximum — cannot precede
// the watermark.
func (e *joinEmitter) advertise(ctx context.Context, watermark int64) error {
	if e.haveLast && watermark <= e.lastOut {
		return nil
	}
	e.lastOut, e.haveLast = watermark, true
	return e.out.Send(ctx, core.NewHeartbeat(watermark))
}

// Join produces one output tuple for every pair of left/right tuples within
// event-time distance WS that satisfies the predicate (paper §2). The two
// inputs are consumed through the deterministic timestamp-sorted merge, so
// the match order — and therefore the output — is deterministic. Each output
// is linked to its two contributors through the instrumenter (U1 = the more
// recent, U2 = the older, Type=JOIN; paper §4.1).
//
// A keyed Join (both LeftKey and RightKey set) defers its same-timestamp
// outputs and emits them sorted by (left key, right key) once the merged
// watermark passes their timestamp: the serial operator then produces
// exactly the sequence a shard-parallel deployment's (timestamp, key)
// fan-in reconstructs, so joins are byte-identical across plans.
//
// The planner can inline a hoisted stateless prefix per side (NewJoinFused):
// the stages run against each side's tuples inside the merge loop, exactly
// as a per-lane FusedChain would, minus the stream and goroutine. Join
// prefixes must preserve timestamps, which the planner guarantees by only
// hoisting Map-free chains above join partitions.
type Join struct {
	joinEmitter

	name    string
	left    *Stream
	right   *Stream
	spec    JoinSpec
	instr   core.Instrumenter
	prefixL []FusedStage
	prefixR []FusedStage

	keyed bool
	bufL  []core.Tuple
	bufR  []core.Tuple
}

var _ Operator = (*Join)(nil)

// NewJoin returns a Join operator; it panics if the spec is invalid (a
// programming error caught at query-construction time).
func NewJoin(name string, left, right, out *Stream, spec JoinSpec, instr core.Instrumenter) *Join {
	return NewJoinFused(name, left, right, out, spec, nil, nil, instr)
}

// NewJoinFused returns a Join that first pushes each side's tuples through
// the given inlined stateless stages (either may be empty). It panics if the
// spec or a stage is invalid.
func NewJoinFused(name string, left, right, out *Stream, spec JoinSpec, prefixL, prefixR []FusedStage, instr core.Instrumenter) *Join {
	if err := spec.validate(); err != nil {
		panic(fmt.Sprintf("join %q: %v", name, err))
	}
	for _, s := range append(append([]FusedStage(nil), prefixL...), prefixR...) {
		if err := s.validate(); err != nil {
			panic(fmt.Sprintf("join %q: %v", name, err))
		}
	}
	return &Join{
		joinEmitter: joinEmitter{out: out},
		name:        name, left: left, right: right, spec: spec, instr: instr,
		prefixL: prefixL, prefixR: prefixR,
		keyed: spec.LeftKey != nil && spec.RightKey != nil,
	}
}

// Name implements Operator.
func (j *Join) Name() string { return j.name }

// Run implements Operator.
func (j *Join) Run(ctx context.Context) error {
	defer j.out.CloseSend(ctx)
	var apL, apR *stageApplier
	if len(j.prefixL) > 0 {
		apL = newStageApplier(j.prefixL, j.instr,
			func(t core.Tuple) error { return j.step(ctx, t, true) },
			func(ts int64) error { return j.watermark(ctx, ts) })
	}
	if len(j.prefixR) > 0 {
		apR = newStageApplier(j.prefixR, j.instr,
			func(t core.Tuple) error { return j.step(ctx, t, false) },
			func(ts int64) error { return j.watermark(ctx, ts) })
	}
	merge := newTSMerge([]*Stream{j.left, j.right})
	merge.onStarve = j.out.Flush
	for {
		t, input, ok, err := merge.Next(ctx)
		if err != nil {
			return fmt.Errorf("join %q: %w", j.name, err)
		}
		if !ok {
			err := j.flushPending(ctx)
			j.bufL, j.bufR = nil, nil
			if err != nil {
				return fmt.Errorf("join %q: %w", j.name, err)
			}
			return nil
		}
		fromLeft := input == 0
		ap := apL
		if !fromLeft {
			ap = apR
		}
		switch {
		case core.IsHeartbeat(t):
			// The watermark (t.ts) bounds every future tuple's timestamp
			// from below, so tuples older than ts-WS on either side can
			// never match again.
			horizon := t.Timestamp() - j.spec.WS
			j.bufL = purgeBefore(j.bufL, horizon)
			j.bufR = purgeBefore(j.bufR, horizon)
			if ap != nil {
				err = ap.skip(t.Timestamp())
			} else {
				err = j.watermark(ctx, t.Timestamp())
			}
		case ap != nil:
			err = ap.run(t)
		default:
			err = j.step(ctx, t, fromLeft)
		}
		if err != nil {
			return fmt.Errorf("join %q: %w", j.name, err)
		}
	}
}

// step processes one data tuple that reached the join proper: probe the
// opposite buffer in arrival order, emit the matches, insert, advertise.
func (j *Join) step(ctx context.Context, t core.Tuple, fromLeft bool) error {
	ts := t.Timestamp()
	if len(j.pending) > 0 && ts > j.pendingTs {
		if err := j.flushPending(ctx); err != nil {
			return err
		}
	}
	horizon := ts - j.spec.WS
	j.bufL = purgeBefore(j.bufL, horizon)
	j.bufR = purgeBefore(j.bufR, horizon)
	opposite := j.bufR
	if !fromLeft {
		opposite = j.bufL
	}
	for _, o := range opposite {
		l, r := t, o
		if !fromLeft {
			l, r = o, t
		}
		if !j.spec.Predicate(l, r) {
			continue
		}
		out := j.spec.Combine(l, r)
		if out == nil {
			continue
		}
		if m := core.MetaOf(out); m != nil {
			m.SetTimestamp(maxInt64(l.Timestamp(), r.Timestamp()))
			if lm := core.MetaOf(l); lm != nil {
				m.MergeStimulus(lm.Stimulus())
			}
			if rm := core.MetaOf(r); rm != nil {
				m.MergeStimulus(rm.Stimulus())
			}
		}
		// The incoming tuple t is at least as recent as the buffered o.
		j.instr.OnJoin(out, t, o)
		if j.keyed {
			// Hold same-timestamp outputs for the (left key, right key)
			// tie-break; the merge delivers in timestamp order, so every
			// output of this step carries t's timestamp.
			j.hold(out, j.spec.LeftKey(l), j.spec.RightKey(r))
			continue
		}
		j.lastOut, j.haveLast = out.Timestamp(), true
		if err := j.out.Send(ctx, out); err != nil {
			return err
		}
	}
	if fromLeft {
		j.bufL = append(j.bufL, t)
	} else {
		j.bufR = append(j.bufR, t)
	}
	// A join between matches creates sparsity; keep downstream merges
	// informed of the watermark.
	return j.watermark(ctx, ts)
}

// purgeBefore drops the (timestamp-ordered) prefix of buf strictly older
// than horizon, clearing references so the garbage collector can reclaim
// non-contributing tuples immediately (challenge C2).
func purgeBefore(buf []core.Tuple, horizon int64) []core.Tuple {
	i := 0
	for i < len(buf) && buf[i].Timestamp() < horizon {
		buf[i] = nil
		i++
	}
	if i == 0 {
		return buf
	}
	return append(buf[:0], buf[i:]...)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
