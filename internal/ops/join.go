package ops

import (
	"context"
	"errors"
	"fmt"

	"genealog/internal/core"
)

// JoinSpec configures a Join operator.
type JoinSpec struct {
	// WS is the join window: a left tuple l and right tuple r can match only
	// if |l.ts - r.ts| <= WS.
	WS int64
	// Predicate decides whether a (left, right) pair joins.
	Predicate func(l, r core.Tuple) bool
	// Combine builds the output tuple of a matched pair. The operator
	// overwrites its timestamp with max(l.ts, r.ts) (keeping the output
	// sorted) and merges the pair's stimuli; Combine only fills the payload.
	Combine func(l, r core.Tuple) core.Tuple
	// LeftKey and RightKey extract the equi-join key of each side. A serial
	// Join ignores them; shard-parallel execution (ShardJoin) requires both
	// and partitions each input by its key, so the Predicate must only match
	// pairs whose keys are equal — pairs spanning different keys would land
	// on different shards and never meet.
	LeftKey  func(t core.Tuple) string
	RightKey func(t core.Tuple) string
}

func (s JoinSpec) validate() error {
	if s.WS < 0 {
		return errors.New("join: WS must be non-negative")
	}
	if s.Predicate == nil || s.Combine == nil {
		return errors.New("join: Predicate and Combine are required")
	}
	return nil
}

// Join produces one output tuple for every pair of left/right tuples within
// event-time distance WS that satisfies the predicate (paper §2). The two
// inputs are consumed through the deterministic timestamp-sorted merge, so
// the match order — and therefore the output — is deterministic. Each output
// is linked to its two contributors through the instrumenter (U1 = the more
// recent, U2 = the older, Type=JOIN; paper §4.1).
type Join struct {
	name  string
	left  *Stream
	right *Stream
	out   *Stream
	spec  JoinSpec
	instr core.Instrumenter

	bufL []core.Tuple
	bufR []core.Tuple

	lastOut  int64 // watermark already visible downstream (tuple or heartbeat)
	haveLast bool
}

var _ Operator = (*Join)(nil)

// NewJoin returns a Join operator; it panics if the spec is invalid (a
// programming error caught at query-construction time).
func NewJoin(name string, left, right, out *Stream, spec JoinSpec, instr core.Instrumenter) *Join {
	if err := spec.validate(); err != nil {
		panic(fmt.Sprintf("join %q: %v", name, err))
	}
	return &Join{name: name, left: left, right: right, out: out, spec: spec, instr: instr}
}

// Name implements Operator.
func (j *Join) Name() string { return j.name }

// Run implements Operator.
func (j *Join) Run(ctx context.Context) error {
	defer j.out.CloseSend(ctx)
	merge := newTSMerge([]*Stream{j.left, j.right})
	merge.onStarve = j.out.Flush
	for {
		t, input, ok, err := merge.Next(ctx)
		if err != nil {
			return fmt.Errorf("join %q: %w", j.name, err)
		}
		if !ok {
			j.bufL, j.bufR = nil, nil
			return nil
		}
		// The watermark (t.ts) bounds every future tuple's timestamp from
		// below, so tuples older than ts-WS on either side can never match
		// again.
		horizon := t.Timestamp() - j.spec.WS
		j.bufL = purgeBefore(j.bufL, horizon)
		j.bufR = purgeBefore(j.bufR, horizon)
		if core.IsHeartbeat(t) {
			// Forward watermark progress: every future output has an event
			// time at or after the merged watermark.
			if err := j.advertise(ctx, t.Timestamp()); err != nil {
				return fmt.Errorf("join %q: %w", j.name, err)
			}
			continue
		}
		fromLeft := input == 0
		opposite := j.bufR
		if !fromLeft {
			opposite = j.bufL
		}
		for _, o := range opposite {
			l, r := t, o
			if fromLeft {
				l, r = t, o
			} else {
				l, r = o, t
			}
			if !j.spec.Predicate(l, r) {
				continue
			}
			out := j.spec.Combine(l, r)
			if out == nil {
				continue
			}
			if m := core.MetaOf(out); m != nil {
				m.SetTimestamp(maxInt64(l.Timestamp(), r.Timestamp()))
				if lm := core.MetaOf(l); lm != nil {
					m.MergeStimulus(lm.Stimulus())
				}
				if rm := core.MetaOf(r); rm != nil {
					m.MergeStimulus(rm.Stimulus())
				}
			}
			// The incoming tuple t is at least as recent as the buffered o.
			j.instr.OnJoin(out, t, o)
			j.lastOut, j.haveLast = out.Timestamp(), true
			if err := j.out.Send(ctx, out); err != nil {
				return fmt.Errorf("join %q: %w", j.name, err)
			}
		}
		if fromLeft {
			j.bufL = append(j.bufL, t)
		} else {
			j.bufR = append(j.bufR, t)
		}
		// A join between matches creates sparsity; keep downstream merges
		// informed of the watermark.
		if err := j.advertise(ctx, t.Timestamp()); err != nil {
			return fmt.Errorf("join %q: %w", j.name, err)
		}
	}
}

// advertise emits a Heartbeat once per watermark advance: every future
// output pairs the incoming side's tuple (timestamp >= the merged watermark)
// with a buffered one, so its event time — the pair maximum — cannot precede
// the watermark.
func (j *Join) advertise(ctx context.Context, watermark int64) error {
	if j.haveLast && watermark <= j.lastOut {
		return nil
	}
	j.lastOut, j.haveLast = watermark, true
	return j.out.Send(ctx, core.NewHeartbeat(watermark))
}

// purgeBefore drops the (timestamp-ordered) prefix of buf strictly older
// than horizon, clearing references so the garbage collector can reclaim
// non-contributing tuples immediately (challenge C2).
func purgeBefore(buf []core.Tuple, horizon int64) []core.Tuple {
	i := 0
	for i < len(buf) && buf[i].Timestamp() < horizon {
		buf[i] = nil
		i++
	}
	if i == 0 {
		return buf
	}
	return append(buf[:0], buf[i:]...)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
