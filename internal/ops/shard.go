package ops

import (
	"errors"
	"fmt"

	"context"

	"genealog/internal/core"
)

// This file is the keyed shard-parallel execution layer: it expands one
// stateful operator (Aggregate, Join) into N independent shard instances
// that each own a hash-partition of the key space, bracketed by a Partition
// operator that routes tuples by key and a FanIn operator that restores the
// serial operator's deterministic emission order. Because GeneaLog's
// meta-attributes (paper §4.1) only ever link tuples that share a group-by
// or join key, partitioning by that key keeps every contribution graph
// entirely within one shard — provenance capture and traversal are
// unaffected by the parallelism level.

// shardIndex assigns a key to one of n shards with FNV-1a. The assignment
// only decides *where* a key's tuples are processed, never the observable
// output (FanIn restores the deterministic order), but a stable hash keeps
// shard load repeatable across runs.
func shardIndex(key string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// shardTagged wraps a shard instance's output tuple with the partition key
// it was produced under, so the FanIn can restore the serial operator's
// (timestamp, key) emission order without inspecting payloads. It delegates
// event time and provenance metadata to the wrapped tuple and never leaves
// the shard subgraph: the FanIn unwraps it before forwarding downstream.
type shardTagged struct {
	inner core.Tuple
	key   string
}

var _ core.Traceable = (*shardTagged)(nil)

// Timestamp implements core.Tuple by delegation.
func (s *shardTagged) Timestamp() int64 { return s.inner.Timestamp() }

// ProvMeta implements core.Traceable by delegation, so the shard operator's
// timestamp/stimulus writes and instrumenter hooks land on the wrapped tuple.
func (s *shardTagged) ProvMeta() *core.Meta { return core.MetaOf(s.inner) }

// shardKeyOf returns the partition key a fan-in head was produced under
// (empty for heartbeats and untagged tuples).
func shardKeyOf(t core.Tuple) string {
	if st, ok := t.(*shardTagged); ok {
		return st.key
	}
	return ""
}

// Partition hash-routes one timestamp-sorted keyed stream across n shard
// streams. Every shard's output stays timestamp-sorted (a subsequence of a
// sorted stream followed by at most one trailing watermark per flush), and
// the shards whose watermark lags are brought up to date with a Heartbeat:
// a shard whose keys go quiet would otherwise stop closing windows,
// stalling the FanIn's deterministic merge and — through backpressure — its
// sibling shards.
//
// Watermarks are broadcast once per flushed input batch, not once per
// distinct input timestamp: the per-tuple (n-1)-way heartbeat fan-out of
// the original design made the partitioner O(n) channel operations per
// tuple on high-resolution streams, dominating the instrumentation overhead
// the paper measures. Delaying a sibling's watermark to the batch boundary
// never changes the sink-observable output — a shard aggregate's window
// contents are fixed by its own routed tuples, watermarks only decide when
// due windows close between appends, and the FanIn's (timestamp, key) merge
// re-serialises emissions deterministically — it only coarsens heartbeat
// traffic from O(n) per tuple to O(n / batch size).
type Partition struct {
	name   string
	in     *Stream
	outs   []*Stream
	key    func(core.Tuple) string
	colKey *ColKey

	lastWM int64
	haveWM bool
	// shardWM[i] is the highest event time delivered to shard i (data or
	// heartbeat); shards at the current watermark need no marker.
	shardWM []int64

	// Scratch for batch-wise key extraction (colKey != nil).
	cb   ColBatch
	sel  []int
	keys []string
}

var _ Operator = (*Partition)(nil)

// NewPartition returns a Partition routing in across outs by key.
func NewPartition(name string, in *Stream, outs []*Stream, key func(core.Tuple) string) *Partition {
	return &Partition{name: name, in: in, outs: outs, key: key}
}

// NewPartitionCol returns a Partition that extracts each input batch's
// routing keys in one vectorized pass with colKey's kernel instead of calling
// key per tuple. The kernel must compute exactly the key function's value for
// every data tuple of the input stream; key remains the declared row
// equivalent (plan dumps, debugging). A nil colKey degenerates to
// NewPartition.
func NewPartitionCol(name string, in *Stream, outs []*Stream, key func(core.Tuple) string, colKey *ColKey) *Partition {
	return &Partition{name: name, in: in, outs: outs, key: key, colKey: colKey}
}

// Name implements Operator.
func (p *Partition) Name() string { return p.name }

// Run implements Operator. A panicking routing key is converted into a
// query error instead of crashing the process: with a hoisted stateless
// prefix the partitioner applies the key to the *pre-prefix* stream, and a
// key function written for the narrowed post-prefix stream (say, after a
// type-guard Filter) would otherwise take down the whole program on the
// first tuple the prefix used to drop.
func (p *Partition) Run(ctx context.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("partition %q: routing key panicked on an input tuple: %v (if a stateless prefix was hoisted above this partitioner, its key must accept every pre-prefix tuple — declare a total Node.ShardKey on the chain head or disable fusion)", p.name, r)
		}
	}()
	defer closeAll(ctx, p.outs)
	p.shardWM = make([]int64, len(p.outs))
	for i := range p.shardWM {
		p.shardWM[i] = int64(-1) << 62
	}
	for {
		batch, ok, err := p.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("partition %q: %w", p.name, err)
		}
		if !ok {
			return nil
		}
		keys, err := p.extractKeys(batch)
		if err != nil {
			return fmt.Errorf("partition %q: %w", p.name, err)
		}
		ki := 0
		for _, t := range batch {
			ts := t.Timestamp()
			if !p.haveWM || ts > p.lastWM {
				p.lastWM, p.haveWM = ts, true
			}
			if core.IsHeartbeat(t) {
				continue // folded into the batch-boundary broadcast
			}
			var key string
			if keys != nil {
				key = keys[ki]
				ki++
			} else {
				key = p.key(t)
			}
			shard := shardIndex(key, len(p.outs))
			if ts > p.shardWM[shard] {
				p.shardWM[shard] = ts
			}
			if err := p.outs[shard].Send(ctx, t); err != nil {
				return fmt.Errorf("partition %q: %w", p.name, err)
			}
		}
		if err := p.broadcast(ctx); err != nil {
			return fmt.Errorf("partition %q: %w", p.name, err)
		}
		for _, out := range p.outs {
			if err := out.Flush(ctx); err != nil {
				return fmt.Errorf("partition %q: %w", p.name, err)
			}
		}
	}
}

// broadcast sends the current watermark to every shard still below it, once
// per flushed batch. Each shard gets its own marker object (a shared one
// could be mutated concurrently downstream).
func (p *Partition) broadcast(ctx context.Context) error {
	if !p.haveWM {
		return nil
	}
	for i, out := range p.outs {
		if p.shardWM[i] >= p.lastWM {
			continue
		}
		p.shardWM[i] = p.lastWM
		if err := out.Send(ctx, core.NewHeartbeat(p.lastWM)); err != nil {
			return err
		}
	}
	return nil
}

// extractKeys computes the routing key of every data tuple in batch with the
// vectorized key kernel, in batch order; it returns nil when the partitioner
// has no ColKey (row-path key extraction).
func (p *Partition) extractKeys(batch Batch) ([]string, error) {
	if p.colKey == nil {
		return nil, nil
	}
	p.sel = p.sel[:0]
	for pos, t := range batch {
		if !core.IsHeartbeat(t) {
			p.sel = append(p.sel, pos)
		}
	}
	p.keys = p.keys[:0]
	if len(p.sel) == 0 {
		return p.keys, nil
	}
	p.cb.bind(p.colKey.Schema, batch, p.sel)
	p.cb.invalidate() // every batch is fresh rows behind a possibly recycled buffer
	p.keys = p.colKey.Kernel(&p.cb, p.sel, p.keys)
	if len(p.keys) != len(p.sel) {
		return nil, fmt.Errorf("key kernel returned %d keys for %d tuples (kernels are strictly one-to-one)", len(p.keys), len(p.sel))
	}
	return p.keys, nil
}

// FanIn merges the timestamp-sorted outputs of the shard instances back into
// one stream. Like tsMerge it blocks until every open input has a head, but
// ties are broken by partition key rather than input index: a serial keyed
// Aggregate emits each window's groups in ascending key order, every shard
// emits an ascending-key subsequence of that, and the (timestamp, key) merge
// re-interleaves them into exactly the serial sequence — the property that
// makes shard-parallel execution observably identical to Parallelism(1).
// Tagged outputs are unwrapped before forwarding; redundant heartbeats are
// coalesced as in Union.
//
// The planner can fold the stateless chain that follows the shard subgraph
// into the fan-in (NewFanInFused): the merged tuples run the suffix stages by
// direct calls in the merge loop, exactly as a downstream FusedChain would,
// minus the stream and goroutine.
type FanIn struct {
	name   string
	ins    []*Stream
	out    *Stream
	suffix []FusedStage
	instr  core.Instrumenter
}

var _ Operator = (*FanIn)(nil)

// NewFanIn returns a FanIn merging ins into out.
func NewFanIn(name string, ins []*Stream, out *Stream) *FanIn {
	return NewFanInFused(name, ins, out, nil, core.Noop{})
}

// NewFanInFused returns a FanIn that pushes the merged tuples through the
// given inlined stateless stages (may be empty) before forwarding. It panics
// if a stage is invalid.
func NewFanInFused(name string, ins []*Stream, out *Stream, suffix []FusedStage, instr core.Instrumenter) *FanIn {
	for _, s := range suffix {
		if err := s.validate(); err != nil {
			panic(fmt.Sprintf("fan-in %q: %v", name, err))
		}
	}
	return &FanIn{name: name, ins: ins, out: out, suffix: suffix, instr: instr}
}

// Name implements Operator.
func (f *FanIn) Name() string { return f.name }

// Run implements Operator.
func (f *FanIn) Run(ctx context.Context) error {
	defer f.out.CloseSend(ctx)
	ap := newStageApplier(f.suffix, f.instr,
		func(t core.Tuple) error { return f.out.Send(ctx, t) },
		func(ts int64) error { return f.out.Send(ctx, core.NewHeartbeat(ts)) })
	heads := make([]core.Tuple, len(f.ins))
	has := make([]bool, len(f.ins))
	done := make([]bool, len(f.ins))
	for {
		for i, in := range f.ins {
			if done[i] || has[i] {
				continue
			}
			if !in.CanRecv() {
				// About to block on a shard: make everything merged so far
				// visible downstream first (see Stream.Flush).
				if err := f.out.Flush(ctx); err != nil {
					return fmt.Errorf("fan-in %q: %w", f.name, err)
				}
			}
			t, alive, err := in.Recv(ctx)
			if err != nil {
				return fmt.Errorf("fan-in %q: %w", f.name, err)
			}
			if !alive {
				done[i] = true
				continue
			}
			heads[i], has[i] = t, true
		}
		best := -1
		for i := range heads {
			if !has[i] {
				continue
			}
			if best == -1 || headLess(heads[i], heads[best]) {
				best = i
			}
		}
		if best == -1 {
			return nil
		}
		t := heads[best]
		heads[best], has[best] = nil, false
		var err error
		if core.IsHeartbeat(t) {
			err = ap.skip(t.Timestamp())
		} else {
			if tagged, ok := t.(*shardTagged); ok {
				t = tagged.inner
			}
			err = ap.run(t)
		}
		if err != nil {
			return fmt.Errorf("fan-in %q: %w", f.name, err)
		}
	}
}

// headLess orders fan-in heads by (timestamp, partition key). Heartbeats
// carry the empty key and therefore sort before data at equal timestamps,
// which is harmless: a heartbeat only promises no *later* tuple below its
// event time. Equal (timestamp, key) pairs cannot come from different
// shards — a key lives on exactly one — so the order is total.
func headLess(a, b core.Tuple) bool {
	at, bt := a.Timestamp(), b.Timestamp()
	if at != bt {
		return at < bt
	}
	return shardKeyOf(a) < shardKeyOf(b)
}

// ShardPrefix describes a fused stateless prefix hoisted into a shard
// subgraph: the partitioner moves upstream of the prefix and one FusedChain
// replica of the prefix runs inside every shard lane, in front of the
// stateful instance, so the prefix work scales with the shard count instead
// of serialising on one goroutine (the planner's pass 2).
type ShardPrefix struct {
	// Name names the fused prefix (operator names, plan dumps).
	Name string
	// Stages are the prefix's logical stages, upstream first.
	Stages []FusedStage
	// Key, when non-nil, routes the pre-prefix tuples at the hoisted
	// partitioner; it must assign every tuple the partition its post-prefix
	// descendants' key hashes to. When nil, the stateful spec's own key
	// function is applied to the pre-prefix tuples — sound when every prefix
	// stage forwards the tuple object (or a payload-identical clone), i.e.
	// the prefix contains no Map.
	Key func(core.Tuple) string
}

func (p *ShardPrefix) validate() error {
	if p == nil {
		return nil
	}
	if len(p.Stages) == 0 {
		return errors.New("shard prefix: no stages")
	}
	for _, s := range p.Stages {
		if err := s.validate(); err != nil {
			return fmt.Errorf("shard prefix: %w", err)
		}
	}
	return nil
}

// routeKey returns the key the hoisted partitioner routes by: the declared
// prefix key, or the stateful operator's own key for object-preserving
// prefixes (and for subgraphs with no prefix at all).
func (p *ShardPrefix) routeKey(specKey func(core.Tuple) string) func(core.Tuple) string {
	if p != nil && p.Key != nil {
		return p.Key
	}
	return specKey
}

// stages returns the prefix's stage list (nil for no prefix), for inlining
// into each shard instance's input loop.
func (p *ShardPrefix) stages() []FusedStage {
	if p == nil {
		return nil
	}
	return p.Stages
}

// ShardSuffix describes a fused stateless suffix folded into a shard
// subgraph's fan-in: the merged output runs the suffix stages inside the
// FanIn's loop instead of a separate FusedChain downstream of it (the
// planner's pass on shard-adjacent chains).
type ShardSuffix struct {
	// Name names the fused suffix (plan dumps).
	Name string
	// Stages are the suffix's logical stages, upstream first.
	Stages []FusedStage
}

func (s *ShardSuffix) validate() error {
	if s == nil {
		return nil
	}
	if len(s.Stages) == 0 {
		return errors.New("shard suffix: no stages")
	}
	for _, st := range s.Stages {
		if err := st.validate(); err != nil {
			return fmt.Errorf("shard suffix: %w", err)
		}
	}
	return nil
}

// stages returns the suffix's stage list (nil for no suffix).
func (s *ShardSuffix) stages() []FusedStage {
	if s == nil {
		return nil
	}
	return s.Stages
}

// ShardConfig bundles the planner-derived physical options of a sharded
// Aggregate subgraph.
type ShardConfig struct {
	// Prefix is the hoisted stateless chain replicated into every lane.
	Prefix *ShardPrefix
	// Suffix is the stateless chain folded into the fan-in.
	Suffix *ShardSuffix
	// ColKey, when non-nil, extracts each input batch's routing keys in one
	// vectorized pass at the partitioner. Its kernel must compute exactly the
	// value of the routing key function (ShardPrefix.routeKey) on every input
	// tuple.
	ColKey *ColKey
	// Agg, when non-nil, runs every lane as a ColAggregate: columnar window
	// state with the declared fold kernel instead of the row Fold closure.
	Agg *AggColSpec
	// VecPrefix carries the hoisted prefix as columnar stages when Agg is
	// set; it must mirror Prefix.Stages one-to-one (same logical operators,
	// kernel form), so each lane runs the whole prefix→aggregate span over
	// columns.
	VecPrefix []ColStage
	// Observe, when non-nil, is called once for every internal stream of the
	// subgraph (partition lanes and merge lanes) at construction time, before
	// any operator runs. Telemetry uses it to attach per-batch counters to
	// streams the query builder never sees.
	Observe func(*Stream)
}

// ShardJoinConfig bundles the planner-derived physical options of a sharded
// Join subgraph.
type ShardJoinConfig struct {
	// Left and Right are the hoisted per-side stateless chains replicated
	// into every lane.
	Left, Right *ShardPrefix
	// Suffix is the stateless chain folded into the fan-in.
	Suffix *ShardSuffix
	// LeftColKey and RightColKey vectorize the per-side routing key
	// extraction, like ShardConfig.ColKey.
	LeftColKey, RightColKey *ColKey
	// Join, when non-nil, runs every lane as a ColJoin: hash-probed window
	// state (with optional residual kernels) instead of the row predicate
	// scan. Lane prefixes stay row stages either way — the join's merge
	// consumes tuple-at-a-time.
	Join *JoinColSpec
	// Observe, when non-nil, is called once for every internal stream of the
	// subgraph at construction time (see ShardConfig.Observe).
	Observe func(*Stream)
}

// ShardAggregate expands a keyed Aggregate into parallelism independent
// instances, each folding the hash-partition of the key space assigned to
// it, bracketed by a Partition and a FanIn. It returns the operators of the
// subgraph (instances, then partitioner, then fan-in), which the caller
// runs like any other operators.
//
// The sink-observable output is identical to a serial Aggregate for every
// instrumentation mode: windows close at the same watermarks on every shard
// (the Partition broadcasts watermark progress), each group's buffer — and
// therefore its provenance chain and window folds — is byte-identical to
// the serial operator's, and the FanIn restores the (window, key) emission
// order. chanCap sizes the internal shard streams (<= 0 selects
// DefaultStreamCapacity); batchSize sets their batch size (<= 0 selects 1),
// amortising partition/fan-in channel operations across tuple vectors.
func ShardAggregate(name string, in, out *Stream, spec AggregateSpec, instr core.Instrumenter, parallelism, chanCap, batchSize int) ([]Operator, error) {
	return ShardAggregatePrefixed(name, in, out, spec, instr, parallelism, chanCap, batchSize, nil)
}

// ShardAggregatePrefixed is ShardAggregate with an optional fused stateless
// prefix replicated into every shard lane (see ShardPrefix).
func ShardAggregatePrefixed(name string, in, out *Stream, spec AggregateSpec, instr core.Instrumenter, parallelism, chanCap, batchSize int, prefix *ShardPrefix) ([]Operator, error) {
	return ShardAggregateCfg(name, in, out, spec, instr, parallelism, chanCap, batchSize, ShardConfig{Prefix: prefix})
}

// ShardAggregateCfg is ShardAggregate with the full set of planner-derived
// physical options (see ShardConfig): the partitioner consumes the pre-prefix
// stream (extracting routing keys batch-wise when a ColKey is declared), each
// lane's Aggregate instance runs the prefix stages inline in its own input
// loop, and the fan-in runs the suffix stages inline in its merge loop.
// Every shard still receives exactly the serial prefix output restricted to
// its keys, in order, so output and provenance remain identical to the serial
// chain — the stateless work just runs on parallelism goroutines (prefix) or
// fused into the merge (suffix) instead of on dedicated chain goroutines.
func ShardAggregateCfg(name string, in, out *Stream, spec AggregateSpec, instr core.Instrumenter, parallelism, chanCap, batchSize int, cfg ShardConfig) ([]Operator, error) {
	if parallelism < 2 {
		return nil, errors.New("sharded aggregate: parallelism must be at least 2")
	}
	if spec.Key == nil {
		return nil, errors.New("sharded aggregate: a group-by Key is required to partition by")
	}
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("sharded aggregate: %w", err)
	}
	if err := cfg.Prefix.validate(); err != nil {
		return nil, fmt.Errorf("sharded aggregate: %w", err)
	}
	if err := cfg.Suffix.validate(); err != nil {
		return nil, fmt.Errorf("sharded aggregate: %w", err)
	}
	if cfg.Agg == nil && cfg.VecPrefix != nil {
		return nil, errors.New("sharded aggregate: VecPrefix requires a columnar Agg spec")
	}
	if cfg.Agg != nil && len(cfg.VecPrefix) != len(cfg.Prefix.stages()) {
		return nil, errors.New("sharded aggregate: VecPrefix must mirror the hoisted prefix stage for stage")
	}
	fold := spec.Fold
	shardSpec := spec
	shardSpec.Fold = func(w []core.Tuple, start, end int64, key string) core.Tuple {
		t := fold(w, start, end, key)
		if t == nil {
			return nil
		}
		return &shardTagged{inner: t, key: key}
	}
	var shardCol AggColSpec
	if cfg.Agg != nil {
		colFold := cfg.Agg.Fold
		shardCol = *cfg.Agg
		shardCol.Fold = func(seg *ColSeg, start, end int64, key string) core.Tuple {
			t := colFold(seg, start, end, key)
			if t == nil {
				return nil
			}
			return &shardTagged{inner: t, key: key}
		}
	}
	operators := make([]Operator, 0, parallelism+2)
	shardIns := make([]*Stream, parallelism)
	shardOuts := make([]*Stream, parallelism)
	for i := range shardIns {
		shardIns[i] = NewBatchedStream(fmt.Sprintf("%s/part->%s#%d", name, name, i), chanCap, batchSize)
		shardOuts[i] = NewBatchedStream(fmt.Sprintf("%s#%d->%s/merge", name, i, name), chanCap, batchSize)
		if cfg.Observe != nil {
			cfg.Observe(shardIns[i])
			cfg.Observe(shardOuts[i])
		}
		if cfg.Agg != nil {
			operators = append(operators, NewColAggregate(fmt.Sprintf("%s#%d", name, i), shardIns[i], shardOuts[i], shardSpec, shardCol, cfg.VecPrefix, instr))
		} else {
			operators = append(operators, NewAggregateFused(fmt.Sprintf("%s#%d", name, i), shardIns[i], shardOuts[i], shardSpec, cfg.Prefix.stages(), instr))
		}
	}
	operators = append(operators,
		NewPartitionCol(name+"/part", in, shardIns, cfg.Prefix.routeKey(spec.Key), cfg.ColKey),
		NewFanInFused(name+"/merge", shardOuts, out, cfg.Suffix.stages(), instr))
	return operators, nil
}

// ShardJoin expands an equi-Join into parallelism independent instances:
// both inputs are hash-partitioned by their join key (LeftKey/RightKey), so
// every matching pair meets on exactly one shard, and the shard outputs are
// recombined by a FanIn. The JoinSpec's Predicate must only match pairs
// with equal keys — pairs spanning different keys would be routed to
// different shards and silently lost.
//
// The serial keyed Join already emits same-timestamp outputs in (left key,
// right key) order (see Join), and the FanIn's (timestamp, key) merge
// reconstructs exactly that sequence from the shard subsequences, so the
// sharded output is byte-identical to Parallelism(1), like the Aggregate
// expansion.
func ShardJoin(name string, left, right, out *Stream, spec JoinSpec, instr core.Instrumenter, parallelism, chanCap, batchSize int) ([]Operator, error) {
	return ShardJoinPrefixed(name, left, right, out, spec, instr, parallelism, chanCap, batchSize, nil, nil)
}

// ShardJoinPrefixed is ShardJoin with an optional fused stateless prefix per
// input side, replicated into every shard lane (see ShardPrefix).
func ShardJoinPrefixed(name string, left, right, out *Stream, spec JoinSpec, instr core.Instrumenter, parallelism, chanCap, batchSize int, leftPrefix, rightPrefix *ShardPrefix) ([]Operator, error) {
	return ShardJoinCfg(name, left, right, out, spec, instr, parallelism, chanCap, batchSize, ShardJoinConfig{Left: leftPrefix, Right: rightPrefix})
}

// ShardJoinCfg is ShardJoin with the full set of planner-derived physical
// options (see ShardJoinConfig): each side's partitioner consumes the
// pre-prefix stream, every lane's Join instance runs that side's prefix
// stages inline in its merge loop, and the fan-in runs the suffix stages
// inline. Join lane prefixes must preserve timestamps (the lane merge orders
// the pre-prefix streams), which the planner guarantees by only hoisting
// Map-free chains above join partitions.
func ShardJoinCfg(name string, left, right, out *Stream, spec JoinSpec, instr core.Instrumenter, parallelism, chanCap, batchSize int, cfg ShardJoinConfig) ([]Operator, error) {
	if parallelism < 2 {
		return nil, errors.New("sharded join: parallelism must be at least 2")
	}
	if spec.LeftKey == nil || spec.RightKey == nil {
		return nil, errors.New("sharded join: LeftKey and RightKey are required to partition by")
	}
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("sharded join: %w", err)
	}
	if err := cfg.Left.validate(); err != nil {
		return nil, fmt.Errorf("sharded join: left %w", err)
	}
	if err := cfg.Right.validate(); err != nil {
		return nil, fmt.Errorf("sharded join: right %w", err)
	}
	if err := cfg.Suffix.validate(); err != nil {
		return nil, fmt.Errorf("sharded join: %w", err)
	}
	combine := spec.Combine
	leftKey := spec.LeftKey
	shardSpec := spec
	shardSpec.Combine = func(l, r core.Tuple) core.Tuple {
		t := combine(l, r)
		if t == nil {
			return nil
		}
		return &shardTagged{inner: t, key: leftKey(l)}
	}
	operators := make([]Operator, 0, parallelism+3)
	leftIns := make([]*Stream, parallelism)
	rightIns := make([]*Stream, parallelism)
	shardOuts := make([]*Stream, parallelism)
	for i := range leftIns {
		leftIns[i] = NewBatchedStream(fmt.Sprintf("%s/part-l->%s#%d", name, name, i), chanCap, batchSize)
		rightIns[i] = NewBatchedStream(fmt.Sprintf("%s/part-r->%s#%d", name, name, i), chanCap, batchSize)
		shardOuts[i] = NewBatchedStream(fmt.Sprintf("%s#%d->%s/merge", name, i, name), chanCap, batchSize)
		if cfg.Observe != nil {
			cfg.Observe(leftIns[i])
			cfg.Observe(rightIns[i])
			cfg.Observe(shardOuts[i])
		}
		if cfg.Join != nil {
			operators = append(operators, NewColJoin(fmt.Sprintf("%s#%d", name, i), leftIns[i], rightIns[i], shardOuts[i], shardSpec, *cfg.Join, cfg.Left.stages(), cfg.Right.stages(), instr))
		} else {
			operators = append(operators, NewJoinFused(fmt.Sprintf("%s#%d", name, i), leftIns[i], rightIns[i], shardOuts[i], shardSpec, cfg.Left.stages(), cfg.Right.stages(), instr))
		}
	}
	operators = append(operators,
		NewPartitionCol(name+"/part-l", left, leftIns, cfg.Left.routeKey(spec.LeftKey), cfg.LeftColKey),
		NewPartitionCol(name+"/part-r", right, rightIns, cfg.Right.routeKey(spec.RightKey), cfg.RightColKey),
		NewFanInFused(name+"/merge", shardOuts, out, cfg.Suffix.stages(), instr))
	return operators, nil
}
