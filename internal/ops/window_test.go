package ops

import (
	"testing"
	"testing/quick"
)

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0}, {-1, 30, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestWindowStarts(t *testing.T) {
	// Fig. 1: WS=120, WA=30; ts=1 belongs to windows starting -90..0.
	if got := firstWindowStart(1, 120, 30); got != -90 {
		t.Errorf("firstWindowStart(1,120,30) = %d, want -90", got)
	}
	if got := lastWindowStart(1, 30); got != 0 {
		t.Errorf("lastWindowStart(1,30) = %d, want 0", got)
	}
	// Tumbling daily windows (Q3): ts=25h is in the window starting 24.
	if got := firstWindowStart(25, 24, 24); got != 24 {
		t.Errorf("firstWindowStart(25,24,24) = %d, want 24", got)
	}
	if got := lastWindowStart(25, 24); got != 24 {
		t.Errorf("lastWindowStart(25,24) = %d, want 24", got)
	}
	// Boundary: ts exactly at a window start belongs to that window and not
	// to the one ending there.
	if got := firstWindowStart(120, 120, 30); got != 30 {
		t.Errorf("firstWindowStart(120,120,30) = %d, want 30", got)
	}
}

func TestWindowInvariantsProperty(t *testing.T) {
	prop := func(tsRaw int32, wsRaw, waRaw uint16) bool {
		ts := int64(tsRaw)
		ws := int64(wsRaw%1000) + 1
		wa := int64(waRaw%1000) + 1
		if wa > ws {
			ws, wa = wa, ws
		}
		first := firstWindowStart(ts, ws, wa)
		last := lastWindowStart(ts, wa)
		// Both extremes contain ts.
		if !windowContains(first, ws, ts) || !windowContains(last, ws, ts) {
			return false
		}
		// One step outside either extreme no longer contains ts.
		if windowContains(first-wa, ws, ts) || windowContains(last+wa, ws, ts) {
			return false
		}
		// Starts are aligned to wa.
		if first%wa != 0 || last%wa != 0 {
			return false
		}
		return first <= last
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowSlice(t *testing.T) {
	buf := seq(0, 10, 6, "k") // ts 0,10,20,30,40,50
	got := windowSlice(buf, 10, 40)
	if !int64sEqual(timestamps(got), []int64{10, 20, 30}) {
		t.Fatalf("windowSlice = %v", timestamps(got))
	}
	if windowSlice(buf, 60, 100) != nil {
		t.Fatal("out-of-range window must be empty")
	}
	if windowSlice(nil, 0, 10) != nil {
		t.Fatal("empty buffer must give empty window")
	}
}
