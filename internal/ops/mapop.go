package ops

import (
	"context"
	"fmt"

	"genealog/internal/core"
)

// MapFunc transforms one input tuple into zero or more output tuples by
// calling emit for each. Emitted tuples must carry non-decreasing timestamps
// consistent with the input order (a Map must not reorder the stream).
type MapFunc func(in core.Tuple, emit func(core.Tuple))

// Map produces one or more new tuples per input tuple (paper §2). Each
// output is linked to its input through the instrumenter (U1, Type=MAP) and
// inherits the input's stimulus.
//
// Heartbeats bypass the user function and are forwarded as-is; when the
// function emits nothing for an input tuple (a dropping Map creates
// sparsity), a Heartbeat advertises the watermark instead.
type Map struct {
	name  string
	in    *Stream
	out   *Stream
	fn    MapFunc
	instr core.Instrumenter

	lastOut  int64
	haveLast bool
}

var _ Operator = (*Map)(nil)

// NewMap returns a Map operator.
func NewMap(name string, in, out *Stream, fn MapFunc, instr core.Instrumenter) *Map {
	return &Map{name: name, in: in, out: out, fn: fn, instr: instr}
}

// Name implements Operator.
func (m *Map) Name() string { return m.name }

// Run implements Operator. The inner loop iterates input batches and
// flushes the output once per batch, before blocking for more input. The
// emit closure is allocated once per Run — not once per tuple — and reads
// the current input from the enclosing loop's variables.
func (m *Map) Run(ctx context.Context) error {
	defer m.out.CloseSend(ctx)
	var (
		cur     core.Tuple
		emitted bool
		emitErr error
	)
	emit := func(out core.Tuple) {
		if emitErr != nil {
			return
		}
		if om, im := core.MetaOf(out), core.MetaOf(cur); om != nil && im != nil {
			om.MergeStimulus(im.Stimulus())
		}
		m.instr.OnMap(out, cur)
		emitted = true
		m.lastOut, m.haveLast = out.Timestamp(), true
		emitErr = m.out.Send(ctx, out)
	}
	for {
		batch, ok, err := m.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("map %q: %w", m.name, err)
		}
		if !ok {
			return nil
		}
		for _, t := range batch {
			if core.IsHeartbeat(t) {
				m.lastOut, m.haveLast = t.Timestamp(), true
				if err := m.out.Send(ctx, t); err != nil {
					return fmt.Errorf("map %q: %w", m.name, err)
				}
				continue
			}
			cur, emitted, emitErr = t, false, nil
			m.fn(t, emit)
			if emitErr != nil {
				return fmt.Errorf("map %q: %w", m.name, emitErr)
			}
			if !emitted && (!m.haveLast || t.Timestamp() > m.lastOut) {
				m.lastOut, m.haveLast = t.Timestamp(), true
				if err := m.out.Send(ctx, core.NewHeartbeat(t.Timestamp())); err != nil {
					return fmt.Errorf("map %q: %w", m.name, err)
				}
			}
		}
		if err := m.out.Flush(ctx); err != nil {
			return fmt.Errorf("map %q: %w", m.name, err)
		}
	}
}
