package aggfn

import (
	"math"

	"genealog/internal/ops"
)

// This file provides the columnar twins of the row fold building blocks: a
// ColFold reduces one window's column segment (ops.ColSeg) instead of a tuple
// slice, addressing the aggregated feature by schema field index instead of
// an Extract closure. Paired with the row folds they make it easy to declare
// an AggColSpec whose kernel computes exactly what the row Fold computes —
// each ColFold iterates the segment in row order, so even float reductions
// are bit-identical to their row counterparts over the same window.

// ColFold reduces a window segment (timestamp-ordered, never empty) to one
// value. Like every kernel it must treat the segment as immutable and retain
// nothing from it.
type ColFold func(seg *ops.ColSeg) float64

// ColCount returns the number of rows in the segment.
func ColCount() ColFold {
	return func(s *ops.ColSeg) float64 { return float64(s.Len()) }
}

// ColSum adds the ColFloat64 field over the segment, in row order.
func ColSum(field int) ColFold {
	return func(s *ops.ColSeg) float64 {
		var sum float64
		for _, v := range s.Float64s(field) {
			sum += v
		}
		return sum
	}
}

// ColAvg averages the ColFloat64 field over the segment.
func ColAvg(field int) ColFold {
	sum := ColSum(field)
	return func(s *ops.ColSeg) float64 { return sum(s) / float64(s.Len()) }
}

// ColMin returns the smallest value of the ColFloat64 field in the segment.
func ColMin(field int) ColFold {
	return func(s *ops.ColSeg) float64 {
		m := math.Inf(1)
		for _, v := range s.Float64s(field) {
			if v < m {
				m = v
			}
		}
		return m
	}
}

// ColMax returns the largest value of the ColFloat64 field in the segment.
func ColMax(field int) ColFold {
	return func(s *ops.ColSeg) float64 {
		m := math.Inf(-1)
		for _, v := range s.Float64s(field) {
			if v > m {
				m = v
			}
		}
		return m
	}
}

// ColFirst returns the ColFloat64 field of the earliest row in the segment.
func ColFirst(field int) ColFold {
	return func(s *ops.ColSeg) float64 { return s.Float64s(field)[0] }
}

// ColLast returns the ColFloat64 field of the latest row in the segment.
func ColLast(field int) ColFold {
	return func(s *ops.ColSeg) float64 {
		col := s.Float64s(field)
		return col[len(col)-1]
	}
}

// ColDistinctInt counts the distinct values of the ColInt64 field over the
// segment (e.g. Q1's distinct(pos) over the pos column).
func ColDistinctInt(field int) ColFold {
	return func(s *ops.ColSeg) float64 {
		col := s.Int64s(field)
		seen := make(map[int64]struct{}, len(col))
		for _, v := range col {
			seen[v] = struct{}{}
		}
		return float64(len(seen))
	}
}

// ColCombine evaluates several columnar folds over the same segment in one
// call, returning the results in order.
func ColCombine(folds ...ColFold) func(seg *ops.ColSeg) []float64 {
	return func(s *ops.ColSeg) []float64 {
		out := make([]float64, len(folds))
		for i, f := range folds {
			out[i] = f(s)
		}
		return out
	}
}
