package aggfn

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// The test schema extracts vTuple.Val as a float column (field 0) and its
// integer truncation as an int column (field 1).
const (
	fieldVal = iota
	fieldValInt
)

var colSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "val", Kind: ops.ColFloat64, Float: val},
	{Name: "val-int", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return int64(val(t)) }},
}}

func seg(vals ...float64) ops.ColSeg {
	return ops.NewColSeg(colSchema, window(vals...))
}

func TestColFolds(t *testing.T) {
	s := seg(3, 1, 4, 1, 5)
	cases := []struct {
		name string
		fold ColFold
		want float64
	}{
		{"count", ColCount(), 5},
		{"sum", ColSum(fieldVal), 14},
		{"avg", ColAvg(fieldVal), 2.8},
		{"min", ColMin(fieldVal), 1},
		{"max", ColMax(fieldVal), 5},
		{"first", ColFirst(fieldVal), 3},
		{"last", ColLast(fieldVal), 5},
		{"distinct-int", ColDistinctInt(fieldValInt), 4},
	}
	for _, c := range cases {
		if got := c.fold(&s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestColCombine(t *testing.T) {
	s := seg(2, 4)
	got := ColCombine(ColCount(), ColSum(fieldVal), ColMax(fieldVal))(&s)
	want := []float64{2, 6, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("combine = %v, want %v", got, want)
		}
	}
}

// TestColFoldsMatchRowFolds: over any window, each columnar fold must return
// bit-identical results to its row twin — the property that lets an
// AggColSpec built from these blocks replace a row Fold without changing a
// single sink byte.
func TestColFoldsMatchRowFolds(t *testing.T) {
	pairs := []struct {
		name string
		row  Fold
		col  ColFold
	}{
		{"count", Count(), ColCount()},
		{"sum", Sum(val), ColSum(fieldVal)},
		{"avg", Avg(val), ColAvg(fieldVal)},
		{"min", Min(val), ColMin(fieldVal)},
		{"max", Max(val), ColMax(fieldVal)},
		{"first", First(val), ColFirst(fieldVal)},
		{"last", Last(val), ColLast(fieldVal)},
		{"distinct", DistinctCount(func(tp core.Tuple) string {
			return strconv.FormatInt(int64(val(tp)), 10)
		}), ColDistinctInt(fieldValInt)},
	}
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		w := window(vals...)
		s := ops.NewColSeg(colSchema, w)
		for _, p := range pairs {
			if p.row(w) != p.col(&s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
