// Package aggfn provides reusable window-fold building blocks for the
// Aggregate operator — the paper's "functions such as max, min or sum" (§2)
// — so applications can compose window semantics without hand-rolling
// loops. A Fold extracts a float64 feature per tuple and reduces it; Combine
// evaluates several folds over one window pass.
package aggfn

import (
	"math"

	"genealog/internal/core"
)

// Extract reads the aggregated feature from a tuple.
type Extract func(core.Tuple) float64

// Fold reduces a window (timestamp-ordered, never empty) to one value.
type Fold func(window []core.Tuple) float64

// Count returns the number of tuples in the window.
func Count() Fold {
	return func(w []core.Tuple) float64 { return float64(len(w)) }
}

// Sum adds the extracted feature over the window.
func Sum(f Extract) Fold {
	return func(w []core.Tuple) float64 {
		var s float64
		for _, t := range w {
			s += f(t)
		}
		return s
	}
}

// Avg averages the extracted feature over the window.
func Avg(f Extract) Fold {
	sum := Sum(f)
	return func(w []core.Tuple) float64 { return sum(w) / float64(len(w)) }
}

// Min returns the smallest extracted feature in the window.
func Min(f Extract) Fold {
	return func(w []core.Tuple) float64 {
		m := math.Inf(1)
		for _, t := range w {
			if v := f(t); v < m {
				m = v
			}
		}
		return m
	}
}

// Max returns the largest extracted feature in the window.
func Max(f Extract) Fold {
	return func(w []core.Tuple) float64 {
		m := math.Inf(-1)
		for _, t := range w {
			if v := f(t); v > m {
				m = v
			}
		}
		return m
	}
}

// First returns the feature of the earliest tuple in the window.
func First(f Extract) Fold {
	return func(w []core.Tuple) float64 { return f(w[0]) }
}

// Last returns the feature of the latest tuple in the window.
func Last(f Extract) Fold {
	return func(w []core.Tuple) float64 { return f(w[len(w)-1]) }
}

// DistinctCount counts the distinct values of a key over the window (e.g.
// Q1's distinct(pos) and Q2's count(distinct(car_id))).
func DistinctCount(key func(core.Tuple) string) Fold {
	return func(w []core.Tuple) float64 {
		seen := make(map[string]struct{}, len(w))
		for _, t := range w {
			seen[key(t)] = struct{}{}
		}
		return float64(len(seen))
	}
}

// Combine evaluates several folds over the same window in one call,
// returning the results in order.
func Combine(folds ...Fold) func(window []core.Tuple) []float64 {
	return func(w []core.Tuple) []float64 {
		out := make([]float64, len(folds))
		for i, f := range folds {
			out[i] = f(w)
		}
		return out
	}
}
