package aggfn

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"genealog/internal/core"
)

type vTuple struct {
	core.Base
	Val float64
}

func vt(ts int64, v float64) *vTuple { return &vTuple{Base: core.NewBase(ts), Val: v} }

func val(t core.Tuple) float64 { return t.(*vTuple).Val }

func window(vals ...float64) []core.Tuple {
	out := make([]core.Tuple, len(vals))
	for i, v := range vals {
		out[i] = vt(int64(i), v)
	}
	return out
}

func TestFolds(t *testing.T) {
	w := window(3, 1, 4, 1, 5)
	cases := []struct {
		name string
		fold Fold
		want float64
	}{
		{"count", Count(), 5},
		{"sum", Sum(val), 14},
		{"avg", Avg(val), 2.8},
		{"min", Min(val), 1},
		{"max", Max(val), 5},
		{"first", First(val), 3},
		{"last", Last(val), 5},
		{"distinct", DistinctCount(func(tp core.Tuple) string {
			return strconv.FormatFloat(val(tp), 'f', -1, 64)
		}), 4},
	}
	for _, c := range cases {
		if got := c.fold(w); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCombine(t *testing.T) {
	w := window(2, 4)
	got := Combine(Count(), Sum(val), Max(val))(w)
	want := []float64{2, 6, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("combine = %v, want %v", got, want)
		}
	}
}

func TestSingletonWindow(t *testing.T) {
	w := window(7)
	if Min(val)(w) != 7 || Max(val)(w) != 7 || Avg(val)(w) != 7 || First(val)(w) != 7 || Last(val)(w) != 7 {
		t.Fatal("singleton window folds must all return the single value")
	}
}

func TestFoldInvariantsProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		w := window(vals...)
		min, max, avg := Min(val)(w), Max(val)(w), Avg(val)(w)
		if min > max {
			return false
		}
		if avg < min-1e-9 || avg > max+1e-9 {
			return false
		}
		if Sum(val)(w) != avg*float64(len(w)) && math.Abs(Sum(val)(w)-avg*float64(len(w))) > 1e-6 {
			return false
		}
		d := DistinctCount(func(tp core.Tuple) string {
			return strconv.FormatFloat(val(tp), 'f', -1, 64)
		})(w)
		return d >= 1 && d <= float64(len(w))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
