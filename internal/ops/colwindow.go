package ops

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"genealog/internal/core"
)

// ColWindow is the struct-of-arrays window state of one aggregate group (or
// one join side): the buffered row tuples — still carrying the GeneaLog
// meta-attributes, exactly like a ColBatch's meta column — plus a timestamp
// column and one typed column per schema field, all parallel and
// timestamp-ordered. Appends extract eagerly (batch ingest extracts whole
// runs through a ColBatch first, so the per-append cost is one copy per
// column); purges shift every column together, mirroring the row path's
// prefix purge.
type ColWindow struct {
	schema *ColSchema
	// off is the retired prefix of every backing slice: purges advance it in
	// O(1) and the columns compact (live entries copied to the front) only
	// once the dead prefix outgrows the live window — amortized O(1) per
	// appended row, so the backing arrays reach a steady capacity instead of
	// re-growing on every slid window. Rows [off:] are the live window.
	off  int
	rows []core.Tuple
	// metas caches MetaOf(rows[i]), extracted once at append: a window that
	// closes many times (sliding windows) merges stimuli per close, and the
	// meta column turns each merge walk's interface assertion into a
	// contiguous pointer load.
	metas  []*core.Meta
	ts     []int64
	ints   [][]int64
	floats [][]float64
	strs   [][]string
}

// newColWindow returns an empty window buffer for schema.
func newColWindow(schema *ColSchema) *ColWindow {
	schema.index()
	return &ColWindow{
		schema: schema,
		ints:   make([][]int64, schema.nInt),
		floats: make([][]float64, schema.nFloat),
		strs:   make([][]string, schema.nStr),
	}
}

// Len returns the number of buffered (live) rows.
func (w *ColWindow) Len() int { return len(w.rows) - w.off }

// liveRows, liveMetas and liveTs return the live window's columns; indices
// into them are window positions (0 = oldest buffered row).
func (w *ColWindow) liveRows() []core.Tuple  { return w.rows[w.off:] }
func (w *ColWindow) liveMetas() []*core.Meta { return w.metas[w.off:] }
func (w *ColWindow) liveTs() []int64         { return w.ts[w.off:] }

// seg returns the [lo, hi) window-position view handed to fold/probe
// kernels.
func (w *ColWindow) seg(lo, hi int) ColSeg { return ColSeg{w: w, lo: w.off + lo, hi: w.off + hi} }

// append adds one row whose typed values are gathered from the run columns
// at position pos (the vectorized ingest path: the columns were extracted
// once for the whole run through a ColBatch).
func (w *ColWindow) append(t core.Tuple, ts int64, ints [][]int64, floats [][]float64, strs [][]string, pos int) {
	w.rows = append(w.rows, t)
	w.metas = append(w.metas, core.MetaOf(t))
	w.ts = append(w.ts, ts)
	for s, col := range ints {
		w.ints[s] = append(w.ints[s], col[pos])
	}
	for s, col := range floats {
		w.floats[s] = append(w.floats[s], col[pos])
	}
	for s, col := range strs {
		w.strs[s] = append(w.strs[s], col[pos])
	}
}

// appendRow adds one row, extracting its typed values directly (the
// per-tuple path: a join's merge delivers tuple-at-a-time).
func (w *ColWindow) appendRow(t core.Tuple, ts int64) {
	w.rows = append(w.rows, t)
	w.metas = append(w.metas, core.MetaOf(t))
	w.ts = append(w.ts, ts)
	for i, f := range w.schema.Fields {
		slot := w.schema.slot[i]
		switch f.Kind {
		case ColInt64:
			w.ints[slot] = append(w.ints[slot], f.Int(t))
		case ColFloat64:
			w.floats[slot] = append(w.floats[slot], f.Float(t))
		case ColString:
			w.strs[slot] = append(w.strs[slot], f.Str(t))
		}
	}
}

// purge drops the first n live rows from every column by advancing the dead
// prefix — O(1) per purge instead of compacting every surviving entry of
// every column (a sliding window purges on every advance, so a compacting
// purge would cost O(window x columns) each time). Reference-holding
// prefixes are cleared so the garbage collector can reclaim retired tuples
// (challenge C2); the columns compact once the dead prefix outgrows the live
// window, keeping memory bounded by a small multiple of the peak live
// window.
func (w *ColWindow) purge(n int) {
	if n == 0 {
		return
	}
	for i := w.off; i < w.off+n; i++ {
		w.rows[i] = nil
		w.metas[i] = nil
	}
	for s := range w.strs {
		col := w.strs[s]
		for i := w.off; i < w.off+n; i++ {
			col[i] = ""
		}
	}
	w.off += n
	if w.off > len(w.rows)-w.off {
		w.compact()
	}
}

// compact copies the live window to the front of every backing array and
// clears the freed tail references.
func (w *ColWindow) compact() {
	live := len(w.rows) - w.off
	copy(w.rows, w.rows[w.off:])
	for i := live; i < len(w.rows); i++ {
		w.rows[i] = nil
	}
	w.rows = w.rows[:live]
	copy(w.metas, w.metas[w.off:])
	for i := live; i < len(w.metas); i++ {
		w.metas[i] = nil
	}
	w.metas = w.metas[:live]
	copy(w.ts, w.ts[w.off:])
	w.ts = w.ts[:live]
	for s := range w.ints {
		copy(w.ints[s], w.ints[s][w.off:])
		w.ints[s] = w.ints[s][:live]
	}
	for s := range w.floats {
		copy(w.floats[s], w.floats[s][w.off:])
		w.floats[s] = w.floats[s][:live]
	}
	for s, col := range w.strs {
		copy(col, col[w.off:])
		for i := live; i < len(col); i++ {
			col[i] = ""
		}
		w.strs[s] = col[:live]
	}
	w.off = 0
}

// ColSeg is a read-only struct-of-arrays view of a window segment: the
// contiguous rows of one group's window [lo, hi), with the typed columns the
// owning operator's ColSchema declared. Fold and probe kernels receive a
// ColSeg instead of a row slice; its accessors mirror ColBatch (columns are
// addressed by schema field index), but every column is already materialized
// — window state extracts at ingest, so a window that closes many times
// (sliding windows) never re-extracts.
//
// A kernel must treat the segment as immutable: no writes into a returned
// column, no retaining a column or Rows() beyond the call (the buffers are
// recycled as windows slide), and no shared-state writes — the same purity
// contract ColBatch kernels have, enforced by genealog-lint's kernelpurity
// and colkind analyzers.
type ColSeg struct {
	w      *ColWindow
	lo, hi int
}

// NewColSeg materializes rows (timestamp-ordered, heartbeat-free) into a
// standalone window segment under schema — a convenience for unit-testing
// fold and probe kernels outside an operator: the segment carries exactly
// the columns a ColAggregate or ColJoin would hand the kernel for a window
// holding those rows.
func NewColSeg(schema *ColSchema, rows []core.Tuple) ColSeg {
	w := newColWindow(schema)
	for _, t := range rows {
		w.appendRow(t, t.Timestamp())
	}
	return w.seg(0, w.Len())
}

// Len returns the number of rows in the segment.
func (s *ColSeg) Len() int { return s.hi - s.lo }

// Rows returns the segment's row tuples (timestamp-ordered, oldest first) —
// the same slice the row path's Fold receives as its window.
func (s *ColSeg) Rows() []core.Tuple { return s.w.rows[s.lo:s.hi] }

// Timestamps returns the segment's event-time column.
func (s *ColSeg) Timestamps() []int64 { return s.w.ts[s.lo:s.hi] }

// Int64s returns the column of schema field `field`, which must be ColInt64.
func (s *ColSeg) Int64s(field int) []int64 {
	return s.w.ints[s.w.schema.slot[field]][s.lo:s.hi]
}

// Float64s returns the column of schema field `field`, which must be
// ColFloat64.
func (s *ColSeg) Float64s(field int) []float64 {
	return s.w.floats[s.w.schema.slot[field]][s.lo:s.hi]
}

// Strings returns the column of schema field `field`, which must be
// ColString.
func (s *ColSeg) Strings(field int) []string {
	return s.w.strs[s.w.schema.slot[field]][s.lo:s.hi]
}

// AggKernel is the vectorized form of an AggregateFunc: it folds one group's
// window segment [start, end) into the output tuple, or returns nil to emit
// nothing. It must compute exactly what the row Fold computes over
// seg.Rows() — the operator stamps the output timestamp, merges stimuli and
// links provenance identically on both paths, so a matching kernel makes
// vectorized execution byte-identical to the row path.
type AggKernel func(seg *ColSeg, start, end int64, key string) core.Tuple

// ProbeKernel is the vectorized residual of a keyed join predicate: the
// hash probe already restricted cand's positions in sel to the incoming
// tuple's equi-join key (in arrival order), and the kernel appends to dst
// the positions whose pairs additionally satisfy the predicate's residual
// condition, preserving order, and returns dst. A pure equi-join declares no
// residual and skips the kernel call entirely.
type ProbeKernel func(t core.Tuple, cand *ColSeg, sel []int, dst []int) []int

// AggColSpec declares the columnar execution of an Aggregate: the window
// columns to buffer, the vectorized group-key extractor, and the fold
// kernel. The planner runs an Aggregate declaring one as a ColAggregate
// whenever vectorization is on; operators without a fold kernel keep the
// row path.
type AggColSpec struct {
	// Schema declares the columns kept in each group's window state.
	Schema *ColSchema
	// Key is the vectorized twin of the row spec's Key: one key per selected
	// position, batch-wise. Required iff the row spec has a Key.
	Key KeyKernel
	// Fold is the vectorized twin of the row spec's Fold.
	Fold AggKernel
}

func (c AggColSpec) validate(row AggregateSpec) error {
	if c.Schema == nil {
		return errors.New("columnar aggregate needs a Schema")
	}
	if err := c.Schema.Validate(); err != nil {
		return err
	}
	if c.Fold == nil {
		return errors.New("columnar aggregate needs a Fold kernel")
	}
	if (row.Key != nil) != (c.Key != nil) {
		return errors.New("columnar aggregate: Key kernel must mirror the row spec's Key")
	}
	return nil
}

// ColAggregate is the vectorized twin of Aggregate: same windows, same
// emission order, same provenance hooks, but the window state is a
// ColWindow per group — typed columns extracted batch-wise at ingest — and
// each window close folds a column segment through the AggKernel instead of
// calling a row closure over a tuple slice. An optional columnar prefix (the
// planner's hoisted shard-lane stages, as ColStages) runs in the same
// selection-vector pass as the ingest, so a whole `vec[... → aggregate]`
// span crosses rows→columns exactly once.
//
// Equivalence: every input run walks in row order — dropped positions
// advance the watermark at the timestamp the tuple carried when its filter
// dropped it, surviving positions close due windows before appending — and
// due windows emit in (window start, group key) order with the same
// OnAggregateLink/OnAggregateEmit calls and contribution sets as the row
// operator. Sink bytes and traversed provenance are byte-identical across
// the row, fused and vectorized plans.
type ColAggregate struct {
	name   string
	in     *Stream
	out    *Stream
	spec   AggregateSpec
	col    AggColSpec
	instr  core.Instrumenter
	prefix []ColStage

	groups map[string]*ColWindow
	// keyOrder holds the live group keys sorted ascending, maintained on
	// group creation and retirement: emissions walk it in order, so closing
	// a window never sorts.
	keyOrder  []string
	nextStart int64
	started   bool

	lastAdv  int64
	haveAdv  bool
	lastEmit int64
	haveEmit bool

	// Per-run scratch, reused across batches (see ColChain). runInts/
	// runFloats/runStrs alias the extracted run columns by schema slot so
	// the ingest loop appends without a per-field kind switch.
	cb        ColBatch
	iota      []int
	selBuf    [2][]int
	outs      []core.Tuple
	keys      []string
	runInts   [][]int64
	runFloats [][]float64
	runStrs   [][]string
	noopInstr bool
}

var _ Operator = (*ColAggregate)(nil)

// NewColAggregate returns a vectorized Aggregate applying prefix (may be
// empty) before the windowing; it panics if the row spec, the columnar spec
// or a prefix stage is invalid (a programming error caught at
// query-construction time).
func NewColAggregate(name string, in, out *Stream, spec AggregateSpec, col AggColSpec, prefix []ColStage, instr core.Instrumenter) *ColAggregate {
	if err := spec.validate(); err != nil {
		panic(fmt.Sprintf("aggregate %q: %v", name, err))
	}
	if err := col.validate(spec); err != nil {
		panic(fmt.Sprintf("aggregate %q: %v", name, err))
	}
	for _, s := range prefix {
		if err := s.validate(); err != nil {
			panic(fmt.Sprintf("aggregate %q: %v", name, err))
		}
	}
	if spec.OutputTs == 0 {
		spec.OutputTs = WindowStartTs
	}
	_, noop := instr.(core.Noop)
	return &ColAggregate{
		name: name, in: in, out: out, spec: spec, col: col, instr: instr,
		prefix: prefix, groups: make(map[string]*ColWindow), noopInstr: noop,
	}
}

// Name implements Operator.
func (a *ColAggregate) Name() string { return a.name }

// Stages returns the number of prefix stages fused into the operator.
func (a *ColAggregate) Stages() int { return len(a.prefix) }

// Run implements Operator. Each input batch is split into maximal
// heartbeat-free runs; every run flows through the prefix kernels as a
// column-bound view of the batch, and the survivors append into per-group
// window state in one pass. The output is flushed once per input batch.
func (a *ColAggregate) Run(ctx context.Context) error {
	defer a.out.CloseSend(ctx)
	for {
		batch, ok, err := a.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("aggregate %q: %w", a.name, err)
		}
		if !ok {
			if err := a.flush(ctx); err != nil {
				return fmt.Errorf("aggregate %q: %w", a.name, err)
			}
			return nil
		}
		for i := 0; i < len(batch); {
			t := batch[i]
			if core.IsHeartbeat(t) {
				err = a.heartbeat(ctx, t.Timestamp())
				i++
			} else {
				j := i + 1
				for j < len(batch) && !core.IsHeartbeat(batch[j]) {
					j++
				}
				err = a.processRun(ctx, batch[i:j])
				i = j
			}
			if err != nil {
				return fmt.Errorf("aggregate %q: %w", a.name, err)
			}
		}
		if err := a.out.Flush(ctx); err != nil {
			return fmt.Errorf("aggregate %q: %w", a.name, err)
		}
	}
}

// heartbeat advances the watermark without a tuple, closing due windows,
// exactly like the row operator's heartbeat handling.
func (a *ColAggregate) heartbeat(ctx context.Context, ts int64) error {
	if a.started {
		if err := a.closeDue(ctx, ts); err != nil {
			return err
		}
	}
	return a.advertise(ctx, ts)
}

// processRun pushes one run of data tuples through the prefix kernels, then
// ingests the result in row order: dead positions advance the watermark at
// the timestamp the tuple carried when it was dropped, live positions close
// due windows and append to their group's window — the exact sequence the
// row path's inlined prefix produces.
func (a *ColAggregate) processRun(ctx context.Context, rows []core.Tuple) error {
	if len(rows) == 0 {
		return nil
	}
	sel := growIota(&a.iota, len(rows))
	if cap(a.selBuf[0]) < len(rows) {
		a.selBuf[0] = make([]int, 0, len(rows))
		a.selBuf[1] = make([]int, 0, len(rows))
	}
	buf := 0
	fresh := true
	for _, st := range a.prefix {
		if len(sel) == 0 {
			break
		}
		a.cb.bind(st.Schema, rows, sel)
		if fresh {
			a.cb.invalidate()
			fresh = false
		}
		switch st.Kind {
		case StageFilter:
			dst := st.Filter(&a.cb, sel, a.selBuf[buf][:0])
			a.selBuf[buf] = dst
			sel = dst
			buf ^= 1
		case StageMap:
			dst := a.outs[:0]
			if dst == nil {
				dst = emptyOuts
			}
			outs := st.Map(&a.cb, sel, dst)
			if outs == nil {
				if !a.noopInstr {
					for _, pos := range sel {
						a.instr.OnMap(rows[pos], rows[pos])
					}
				}
				continue
			}
			a.outs = outs
			if len(a.outs) != len(sel) {
				return fmt.Errorf("stage %q: map kernel returned %d outputs for %d inputs (kernels are strictly one-to-one)",
					st.Name, len(a.outs), len(sel))
			}
			changed := false
			for i, pos := range sel {
				out, in := a.outs[i], rows[pos]
				if out != in {
					if om, im := core.MetaOf(out), core.MetaOf(in); om != nil && im != nil {
						om.MergeStimulus(im.Stimulus())
					}
					rows[pos] = out
					changed = true
				}
				if !a.noopInstr {
					a.instr.OnMap(out, in)
				}
			}
			if changed {
				a.cb.invalidate()
			}
		}
	}
	// Extract the window columns and group keys for the whole run of
	// survivors in one pass.
	var tss []int64
	if len(sel) > 0 {
		a.cb.bind(a.col.Schema, rows, sel)
		if fresh {
			a.cb.invalidate()
		}
		tss = a.cb.Timestamps()
		a.bindRunCols()
		if a.col.Key != nil {
			a.keys = a.col.Key(&a.cb, sel, a.keys[:0])
			if len(a.keys) != len(sel) {
				return fmt.Errorf("aggregate key kernel returned %d keys for %d inputs", len(a.keys), len(sel))
			}
		}
	}
	k := 0
	for pos, t := range rows {
		if k < len(sel) && sel[k] == pos {
			key := ""
			if a.col.Key != nil {
				key = a.keys[k]
			}
			if err := a.ingest(ctx, t, tss[pos], key, pos); err != nil {
				return err
			}
			k++
			continue
		}
		// rows[pos] still holds the tuple as of the stage that dropped it,
		// so its timestamp matches the row path's watermark advance.
		ts := t.Timestamp()
		if a.started {
			if err := a.closeDue(ctx, ts); err != nil {
				return err
			}
		}
		if err := a.advertise(ctx, ts); err != nil {
			return err
		}
	}
	return nil
}

// bindRunCols aliases the run's extracted columns by schema slot.
func (a *ColAggregate) bindRunCols() {
	s := a.col.Schema
	a.runInts = ensureSlots(a.runInts[:0], s.nInt)
	a.runFloats = ensureSlots(a.runFloats[:0], s.nFloat)
	a.runStrs = ensureSlots(a.runStrs[:0], s.nStr)
	for i, f := range s.Fields {
		switch f.Kind {
		case ColInt64:
			a.runInts[s.slot[i]] = a.cb.Int64s(i)
		case ColFloat64:
			a.runFloats[s.slot[i]] = a.cb.Float64s(i)
		case ColString:
			a.runStrs[s.slot[i]] = a.cb.Strings(i)
		}
	}
}

// ingest appends one surviving tuple to its group's window state, closing
// due windows first — the columnar twin of Aggregate.process.
func (a *ColAggregate) ingest(ctx context.Context, t core.Tuple, ts int64, key string, pos int) error {
	if !a.started {
		a.started = true
		a.nextStart = firstWindowStart(ts, a.spec.WS, a.spec.WA)
	}
	if err := a.closeDue(ctx, ts); err != nil {
		return err
	}
	g := a.groups[key]
	if g == nil {
		g = newColWindow(a.col.Schema)
		a.groups[key] = g
		i := sort.SearchStrings(a.keyOrder, key)
		a.keyOrder = append(a.keyOrder, "")
		copy(a.keyOrder[i+1:], a.keyOrder[i:])
		a.keyOrder[i] = key
	}
	if n := g.Len(); n > 0 && !a.noopInstr {
		a.instr.OnAggregateLink(g.liveRows()[n-1], t)
	}
	g.append(t, ts, a.runInts, a.runFloats, a.runStrs, pos)
	return a.advertise(ctx, ts)
}

// closeDue emits every window that ends at or before the watermark.
func (a *ColAggregate) closeDue(ctx context.Context, watermark int64) error {
	for a.nextStart+a.spec.WS <= watermark {
		if err := a.emitDue(ctx); err != nil {
			return err
		}
		a.advance()
	}
	return nil
}

// emitDue folds the window [nextStart, nextStart+WS) of every group holding
// rows in that range through the fold kernel and sends the results in
// group-key order — the same emission order and instrumentation as the row
// path's emitDue.
func (a *ColAggregate) emitDue(ctx context.Context) error {
	start, end := a.nextStart, a.nextStart+a.spec.WS
	// keyOrder is maintained sorted as groups come and go, so a closing
	// window emits by walking it — no per-emission collect-and-sort.
	for _, key := range a.keyOrder {
		g := a.groups[key]
		ts := g.liveTs()
		lo := sort.Search(len(ts), func(i int) bool { return ts[i] >= start })
		hi := sort.Search(len(ts), func(i int) bool { return ts[i] >= end })
		if lo >= hi {
			continue
		}
		seg := g.seg(lo, hi)
		out := a.col.Fold(&seg, start, end, key)
		if out == nil {
			continue
		}
		win := g.liveRows()[lo:hi]
		if m := core.MetaOf(out); m != nil {
			if a.spec.OutputTs == WindowEndTs {
				m.SetTimestamp(end)
			} else {
				m.SetTimestamp(start)
			}
			// The window's meta column was extracted at ingest; the merge
			// walk reads it instead of re-asserting every row tuple.
			for _, wm := range g.liveMetas()[lo:hi] {
				if wm != nil {
					m.MergeStimulus(wm.Stimulus())
				}
			}
		}
		instrumentAggEmit(a.instr, a.spec.Contributors, out, win)
		a.lastEmit, a.haveEmit = out.Timestamp(), true
		if err := a.out.Send(ctx, out); err != nil {
			return err
		}
	}
	return nil
}

// advertise emits a Heartbeat carrying the operator's output watermark,
// with the row operator's exact suppression rules.
func (a *ColAggregate) advertise(ctx context.Context, inputWatermark int64) error {
	var adv int64
	if a.started {
		adv = a.nextStart
	} else {
		adv = firstWindowStart(inputWatermark, a.spec.WS, a.spec.WA)
	}
	if a.spec.OutputTs == WindowEndTs {
		adv += a.spec.WS
	}
	if a.haveAdv && adv <= a.lastAdv {
		return nil
	}
	if a.haveEmit && adv <= a.lastEmit {
		return nil
	}
	a.lastAdv, a.haveAdv = adv, true
	return a.out.Send(ctx, core.NewHeartbeat(adv))
}

// advance moves to the next window and purges rows no future window can
// contain, fast-forwarding over empty windows.
func (a *ColAggregate) advance() {
	a.nextStart += a.spec.WA
	keep := a.keyOrder[:0]
	for _, key := range a.keyOrder {
		g := a.groups[key]
		ts := g.liveTs()
		i := 0
		for i < len(ts) && ts[i] < a.nextStart {
			i++
		}
		g.purge(i)
		if g.Len() == 0 {
			delete(a.groups, key)
		} else {
			keep = append(keep, key)
		}
	}
	a.keyOrder = keep
	if min, ok := a.minBufferedTs(); ok {
		if skip := firstWindowStart(min, a.spec.WS, a.spec.WA); skip > a.nextStart {
			a.nextStart = skip
		}
	}
}

func (a *ColAggregate) minBufferedTs() (int64, bool) {
	var min int64
	found := false
	for _, g := range a.groups {
		if g.Len() == 0 {
			continue
		}
		if ts := g.liveTs()[0]; !found || ts < min {
			min = ts
			found = true
		}
	}
	return min, found
}

// flush closes every remaining window at end-of-stream.
func (a *ColAggregate) flush(ctx context.Context) error {
	for len(a.groups) > 0 {
		if err := a.emitDue(ctx); err != nil {
			return err
		}
		a.advance()
	}
	return nil
}

// growIota grows *buf to the identity selection [0..n) and returns it;
// kernels never write it, so the grown buffer is reused across runs.
func growIota(buf *[]int, n int) []int {
	b := *buf
	if cap(b) < n {
		b = make([]int, 0, n)
	}
	for len(b) < n {
		b = append(b, len(b))
	}
	*buf = b
	return b[:n]
}
