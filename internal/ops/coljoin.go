package ops

import (
	"context"
	"errors"
	"fmt"

	"genealog/internal/core"
)

// JoinColSpec declares the columnar execution of a keyed Join: hash-probed
// window state instead of a full-buffer predicate scan. The contract tying
// it to the row spec is that the row Predicate must be exactly
//
//	LeftKey(l) == RightKey(r)  &&  residual(l, r)
//
// — the key equality a sharded join already requires, plus an optional
// residual condition. The hash probe enforces the key equality; the residual
// kernels, when declared, filter the same-key candidates over typed columns.
// A pure equi-join (like Q4's meter match) declares no residual and the
// probe's candidate list is the final match list.
type JoinColSpec struct {
	// Left and Right declare the columns buffered per side's window state;
	// required only when the residual kernels read them (both may be nil for
	// a pure equi-join).
	Left, Right *ColSchema
	// ResidualL filters candidates when the incoming tuple is a left tuple
	// (cand is the right buffer, under the Right schema); ResidualR when it
	// is a right tuple (cand is the left buffer, under Left). Both or
	// neither must be set.
	ResidualL, ResidualR ProbeKernel
}

func (c JoinColSpec) validate(row JoinSpec) error {
	if row.LeftKey == nil || row.RightKey == nil {
		return errors.New("columnar join requires a keyed spec (LeftKey and RightKey)")
	}
	if (c.ResidualL != nil) != (c.ResidualR != nil) {
		return errors.New("columnar join: ResidualL and ResidualR must be set together")
	}
	if c.ResidualL != nil {
		if c.Left == nil || c.Right == nil {
			return errors.New("columnar join: residual kernels need the Left and Right schemas")
		}
		if err := c.Left.Validate(); err != nil {
			return err
		}
		if err := c.Right.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// emptyColSchema backs the window state of a join side with no declared
// columns: rows, timestamps and keys only.
var emptyColSchema = &ColSchema{}

// colJoinBuf is one side's window state: a ColWindow for the rows,
// timestamps and typed columns, the precomputed equi-join keys, and a hash
// index from key to buffered positions in arrival order. Positions in the
// index are logical (monotonic since stream start); base maps them to the
// current physical offsets, so purges never rewrite the index — they pop
// each purged row's entry off the head of its key's list, which holds
// because purges remove a global arrival-order prefix.
type colJoinBuf struct {
	w     *ColWindow
	keys  []string
	base  int
	index map[string][]int
}

func newColJoinBuf(schema *ColSchema) colJoinBuf {
	if schema == nil {
		schema = emptyColSchema
	}
	return colJoinBuf{w: newColWindow(schema), index: make(map[string][]int)}
}

// append buffers one tuple under its equi-join key.
func (b *colJoinBuf) append(t core.Tuple, ts int64, key string) {
	b.index[key] = append(b.index[key], b.base+b.w.Len())
	b.keys = append(b.keys, key)
	b.w.appendRow(t, ts)
}

// purge drops the (timestamp-ordered) prefix strictly older than horizon
// from the window state and the hash index.
func (b *colJoinBuf) purge(horizon int64) {
	ts := b.w.liveTs()
	n := 0
	for n < len(ts) && ts[n] < horizon {
		n++
	}
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		key := b.keys[i]
		list := b.index[key]
		if len(list) == 1 {
			delete(b.index, key)
		} else {
			b.index[key] = list[1:]
		}
	}
	// Advance the slice header like ColWindow.purge — O(1), with the dead
	// prefix reclaimed on a later growing append.
	for i := 0; i < n; i++ {
		b.keys[i] = ""
	}
	b.keys = b.keys[n:]
	b.w.purge(n)
	b.base += n
}

// release drops the whole window state at end-of-stream.
func (b *colJoinBuf) release() {
	b.w = nil
	b.keys = nil
	b.index = nil
}

// ColJoin is the vectorized twin of a keyed Join: the same deterministic
// timestamp-sorted merge, match order, provenance hooks and (timestamp,
// left key, right key) emission tie-break, but each side's window state is a
// hash-indexed colJoinBuf, so a probe touches exactly the buffered tuples
// sharing the incoming tuple's equi-join key instead of scanning the whole
// window with the predicate closure.
//
// Equivalence: the row path probes the opposite buffer in arrival order and
// only same-key pairs can match (the JoinColSpec contract), so the per-key
// candidate list — also in arrival order — yields the same matches in the
// same relative order; and because a keyed join sorts same-timestamp
// outputs by (left key, right key) with a stable sort before emitting, the
// downstream byte sequence is identical. Purges keep every buffered
// candidate within the WS window (the merge delivers in timestamp order),
// so the hash probe never needs a per-pair window check.
type ColJoin struct {
	joinEmitter

	name    string
	left    *Stream
	right   *Stream
	spec    JoinSpec
	col     JoinColSpec
	instr   core.Instrumenter
	prefixL []FusedStage
	prefixR []FusedStage

	bufL colJoinBuf
	bufR colJoinBuf

	// Probe scratch: phys holds the candidates' physical positions, res the
	// residual kernel's output buffer.
	phys []int
	res  []int
}

var _ Operator = (*ColJoin)(nil)

// NewColJoin returns a vectorized keyed Join applying each side's inlined
// prefix (either may be empty) before the merge; it panics if the row spec,
// the columnar spec or a stage is invalid (a programming error caught at
// query-construction time). Prefixes stay row stages: the merge consumes
// tuple-at-a-time, so there is no run for a columnar prefix to batch over.
func NewColJoin(name string, left, right, out *Stream, spec JoinSpec, col JoinColSpec, prefixL, prefixR []FusedStage, instr core.Instrumenter) *ColJoin {
	if err := spec.validate(); err != nil {
		panic(fmt.Sprintf("join %q: %v", name, err))
	}
	if err := col.validate(spec); err != nil {
		panic(fmt.Sprintf("join %q: %v", name, err))
	}
	for _, s := range append(append([]FusedStage(nil), prefixL...), prefixR...) {
		if err := s.validate(); err != nil {
			panic(fmt.Sprintf("join %q: %v", name, err))
		}
	}
	return &ColJoin{
		joinEmitter: joinEmitter{out: out},
		name:        name, left: left, right: right, spec: spec, col: col, instr: instr,
		prefixL: prefixL, prefixR: prefixR,
		bufL: newColJoinBuf(col.Left), bufR: newColJoinBuf(col.Right),
	}
}

// Name implements Operator.
func (j *ColJoin) Name() string { return j.name }

// Run implements Operator; the loop structure mirrors the row Join exactly.
func (j *ColJoin) Run(ctx context.Context) error {
	defer j.out.CloseSend(ctx)
	var apL, apR *stageApplier
	if len(j.prefixL) > 0 {
		apL = newStageApplier(j.prefixL, j.instr,
			func(t core.Tuple) error { return j.step(ctx, t, true) },
			func(ts int64) error { return j.watermark(ctx, ts) })
	}
	if len(j.prefixR) > 0 {
		apR = newStageApplier(j.prefixR, j.instr,
			func(t core.Tuple) error { return j.step(ctx, t, false) },
			func(ts int64) error { return j.watermark(ctx, ts) })
	}
	merge := newTSMerge([]*Stream{j.left, j.right})
	merge.onStarve = j.out.Flush
	for {
		t, input, ok, err := merge.Next(ctx)
		if err != nil {
			return fmt.Errorf("join %q: %w", j.name, err)
		}
		if !ok {
			err := j.flushPending(ctx)
			j.bufL.release()
			j.bufR.release()
			if err != nil {
				return fmt.Errorf("join %q: %w", j.name, err)
			}
			return nil
		}
		fromLeft := input == 0
		ap := apL
		if !fromLeft {
			ap = apR
		}
		switch {
		case core.IsHeartbeat(t):
			horizon := t.Timestamp() - j.spec.WS
			j.bufL.purge(horizon)
			j.bufR.purge(horizon)
			if ap != nil {
				err = ap.skip(t.Timestamp())
			} else {
				err = j.watermark(ctx, t.Timestamp())
			}
		case ap != nil:
			err = ap.run(t)
		default:
			err = j.step(ctx, t, fromLeft)
		}
		if err != nil {
			return fmt.Errorf("join %q: %w", j.name, err)
		}
	}
}

// step processes one data tuple: purge, hash-probe the opposite buffer's
// same-key candidates in arrival order, emit the matches, insert, advertise.
func (j *ColJoin) step(ctx context.Context, t core.Tuple, fromLeft bool) error {
	ts := t.Timestamp()
	if len(j.pending) > 0 && ts > j.pendingTs {
		if err := j.flushPending(ctx); err != nil {
			return err
		}
	}
	horizon := ts - j.spec.WS
	j.bufL.purge(horizon)
	j.bufR.purge(horizon)
	var key string
	var opp *colJoinBuf
	residual := j.col.ResidualL
	if fromLeft {
		key = j.spec.LeftKey(t)
		opp = &j.bufR
	} else {
		key = j.spec.RightKey(t)
		opp = &j.bufL
		residual = j.col.ResidualR
	}
	phys := j.phys[:0]
	for _, lp := range opp.index[key] {
		phys = append(phys, lp-opp.base)
	}
	j.phys = phys
	if residual != nil && len(phys) > 0 {
		seg := opp.w.seg(0, opp.w.Len())
		j.res = residual(t, &seg, phys, j.res[:0])
		phys = j.res
	}
	tm := core.MetaOf(t)
	oppRows, oppMetas, oppTs := opp.w.liveRows(), opp.w.liveMetas(), opp.w.liveTs()
	for _, i := range phys {
		o := oppRows[i]
		l, r := t, o
		lk, rk := key, opp.keys[i]
		if !fromLeft {
			l, r = o, t
			lk, rk = opp.keys[i], key
		}
		out := j.spec.Combine(l, r)
		if out == nil {
			continue
		}
		if m := core.MetaOf(out); m != nil {
			// The buffered side's meta and timestamp come from the window
			// columns extracted at append; t's meta is asserted once per
			// probe, not once per match.
			m.SetTimestamp(maxInt64(ts, oppTs[i]))
			lm, rm := tm, oppMetas[i]
			if !fromLeft {
				lm, rm = rm, lm
			}
			if lm != nil {
				m.MergeStimulus(lm.Stimulus())
			}
			if rm != nil {
				m.MergeStimulus(rm.Stimulus())
			}
		}
		// The incoming tuple t is at least as recent as the buffered o.
		j.instr.OnJoin(out, t, o)
		j.hold(out, lk, rk)
	}
	if fromLeft {
		j.bufL.append(t, ts, key)
	} else {
		j.bufR.append(t, ts, key)
	}
	// A join between matches creates sparsity; keep downstream merges
	// informed of the watermark.
	return j.watermark(ctx, ts)
}
