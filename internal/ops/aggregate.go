package ops

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"genealog/internal/core"
)

// OutputTsPolicy selects the event time stamped on an Aggregate's output
// tuples.
type OutputTsPolicy uint8

const (
	// WindowStartTs stamps outputs with the window's start (the paper's
	// Fig. 1 semantics; used by Q1-Q3).
	WindowStartTs OutputTsPolicy = iota + 1
	// WindowEndTs stamps outputs with the window's end; Q4's daily aggregate
	// uses it so the 1-hour Join window pairs the daily sum with the next
	// midnight reading.
	WindowEndTs
)

// AggregateFunc folds a window's contents (timestamp-ordered, oldest first)
// into one output tuple. start and end delimit the window [start, end); key
// is the group-by value (empty without group-by). The operator overwrites
// the returned tuple's timestamp according to the output policy and raises
// its stimulus to the window maximum; the function only fills the payload.
type AggregateFunc func(window []core.Tuple, start, end int64, key string) core.Tuple

// AggregateSpec configures an Aggregate operator.
type AggregateSpec struct {
	// WS and WA are the window size and advance in event-time units
	// (WA <= WS; WA == WS gives tumbling windows).
	WS, WA int64
	// Key extracts the group-by value; nil aggregates all tuples together.
	Key func(core.Tuple) string
	// Fold builds the output tuple of a closed window.
	Fold AggregateFunc
	// OutputTs selects the output timestamp policy; zero value defaults to
	// WindowStartTs.
	OutputTs OutputTsPolicy
	// Contributors, when non-nil, restricts a window output's provenance to
	// a subset of the window (returned in timestamp order) — the paper's
	// future-work item (i): e.g. a max-aggregation whose output depends on
	// a single window tuple need not pin the whole window. When nil, every
	// window tuple contributes (Definition 3.1 iii).
	//
	// Selective provenance intentionally changes what the contribution
	// graph reports: only the selected tuples are returned by traversal,
	// and only they are retained in memory for the output's lifetime.
	Contributors func(window []core.Tuple) []core.Tuple
}

func (s AggregateSpec) validate() error {
	if s.WS <= 0 || s.WA <= 0 {
		return errors.New("aggregate: WS and WA must be positive")
	}
	if s.WA > s.WS {
		return errors.New("aggregate: WA must not exceed WS")
	}
	if s.Fold == nil {
		return errors.New("aggregate: Fold is required")
	}
	return nil
}

// Aggregate maintains sliding time-based windows of size WS and advance WA,
// optionally per group-by value, and folds each closed window into one
// output tuple (paper §2). Windows are aligned at multiples of WA and close
// when the operator's watermark (the latest input timestamp, inputs being
// timestamp-sorted) passes the window end; remaining windows are flushed at
// end-of-stream. Due windows are emitted in (window start, group key) order,
// keeping the output deterministic and timestamp-sorted.
//
// Provenance (paper §4.1): when a tuple is appended to a group buffer the
// instrumenter links the previous group tuple's N meta-attribute to it, and
// each window output is linked to the window's first (U2) and last (U1)
// tuples.
type Aggregate struct {
	name   string
	in     *Stream
	out    *Stream
	spec   AggregateSpec
	instr  core.Instrumenter
	prefix []FusedStage

	groups    map[string]*aggGroup
	nextStart int64
	started   bool

	lastAdv  int64 // last advertised output watermark (heartbeat)
	haveAdv  bool
	lastEmit int64 // timestamp of the last emitted window output
	haveEmit bool
}

type aggGroup struct {
	buf []core.Tuple // timestamp-ordered, purged below the oldest open window
}

var _ Operator = (*Aggregate)(nil)

// NewAggregate returns an Aggregate operator; it panics if the spec is
// invalid (a programming error caught at query-construction time).
func NewAggregate(name string, in, out *Stream, spec AggregateSpec, instr core.Instrumenter) *Aggregate {
	return NewAggregateFused(name, in, out, spec, nil, instr)
}

// NewAggregateFused returns an Aggregate that first pushes its input tuples
// through the given inlined stateless stages (may be empty) — the planner's
// hoisted shard-lane prefix, run by direct calls in the aggregate's own input
// loop instead of a per-lane FusedChain with its stream and goroutine. It
// panics if the spec or a stage is invalid.
func NewAggregateFused(name string, in, out *Stream, spec AggregateSpec, prefix []FusedStage, instr core.Instrumenter) *Aggregate {
	if err := spec.validate(); err != nil {
		panic(fmt.Sprintf("aggregate %q: %v", name, err))
	}
	for _, s := range prefix {
		if err := s.validate(); err != nil {
			panic(fmt.Sprintf("aggregate %q: %v", name, err))
		}
	}
	if spec.OutputTs == 0 {
		spec.OutputTs = WindowStartTs
	}
	return &Aggregate{
		name:   name,
		in:     in,
		out:    out,
		spec:   spec,
		instr:  instr,
		prefix: prefix,
		groups: make(map[string]*aggGroup),
	}
}

// Name implements Operator.
func (a *Aggregate) Name() string { return a.name }

// Run implements Operator. The inner loop iterates input batches and
// flushes the output once per batch, before blocking for more input. With an
// inlined prefix, each input tuple runs the prefix stages first; survivors
// are processed exactly as direct inputs would be, and the watermarks of
// dropped tuples still close due windows — the same sequence a FusedChain
// feeding the aggregate through a stream produces.
func (a *Aggregate) Run(ctx context.Context) error {
	defer a.out.CloseSend(ctx)
	var ap *stageApplier
	if len(a.prefix) > 0 {
		ap = newStageApplier(a.prefix, a.instr,
			func(t core.Tuple) error {
				if err := a.process(ctx, t); err != nil {
					return err
				}
				return a.advertise(ctx, t.Timestamp())
			},
			func(ts int64) error {
				if err := a.watermark(ctx, ts); err != nil {
					return err
				}
				return a.advertise(ctx, ts)
			})
	}
	for {
		batch, ok, err := a.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("aggregate %q: %w", a.name, err)
		}
		if !ok {
			if err := a.flush(ctx); err != nil {
				return fmt.Errorf("aggregate %q: %w", a.name, err)
			}
			return nil
		}
		for _, t := range batch {
			if ap != nil {
				if core.IsHeartbeat(t) {
					err = ap.skip(t.Timestamp())
				} else {
					err = ap.run(t)
				}
			} else if err = a.process(ctx, t); err == nil {
				err = a.advertise(ctx, t.Timestamp())
			}
			if err != nil {
				return fmt.Errorf("aggregate %q: %w", a.name, err)
			}
		}
		if err := a.out.Flush(ctx); err != nil {
			return fmt.Errorf("aggregate %q: %w", a.name, err)
		}
	}
}

// watermark advances the input watermark without a tuple (an inlined prefix
// stage dropped it), closing due windows.
func (a *Aggregate) watermark(ctx context.Context, ts int64) error {
	if !a.started {
		return nil
	}
	return a.closeDue(ctx, ts)
}

func (a *Aggregate) process(ctx context.Context, t core.Tuple) error {
	ts := t.Timestamp()
	if core.IsHeartbeat(t) {
		// A heartbeat advances the watermark — closing due windows — but
		// joins no window.
		if !a.started {
			return nil
		}
		return a.closeDue(ctx, ts)
	}
	if !a.started {
		a.started = true
		a.nextStart = firstWindowStart(ts, a.spec.WS, a.spec.WA)
	}
	if err := a.closeDue(ctx, ts); err != nil {
		return err
	}
	key := a.keyOf(t)
	g := a.groups[key]
	if g == nil {
		g = &aggGroup{}
		a.groups[key] = g
	}
	if n := len(g.buf); n > 0 {
		a.instr.OnAggregateLink(g.buf[n-1], t)
	}
	g.buf = append(g.buf, t)
	return nil
}

// closeDue emits every window that ends at or before the watermark.
func (a *Aggregate) closeDue(ctx context.Context, watermark int64) error {
	for a.nextStart+a.spec.WS <= watermark {
		if err := a.emitDue(ctx); err != nil {
			return err
		}
		a.advance()
	}
	return nil
}

// advertise emits a Heartbeat carrying the operator's output watermark: no
// future window output can precede nextStart (or, before the first tuple,
// the earliest window that could hold a tuple at or after the input
// watermark). Downstream deterministic merges need this to keep moving while
// the aggregate is between outputs.
func (a *Aggregate) advertise(ctx context.Context, inputWatermark int64) error {
	var adv int64
	if a.started {
		adv = a.nextStart
	} else {
		adv = firstWindowStart(inputWatermark, a.spec.WS, a.spec.WA)
	}
	if a.spec.OutputTs == WindowEndTs {
		adv += a.spec.WS
	}
	if a.haveAdv && adv <= a.lastAdv {
		return nil
	}
	if a.haveEmit && adv <= a.lastEmit {
		return nil
	}
	a.lastAdv, a.haveAdv = adv, true
	return a.out.Send(ctx, core.NewHeartbeat(adv))
}

func (a *Aggregate) keyOf(t core.Tuple) string {
	if a.spec.Key == nil {
		return ""
	}
	return a.spec.Key(t)
}

// emitDue folds the window [nextStart, nextStart+WS) of every group holding
// tuples in that range and sends the results in group-key order.
func (a *Aggregate) emitDue(ctx context.Context) error {
	start, end := a.nextStart, a.nextStart+a.spec.WS
	type emission struct {
		key string
		win []core.Tuple
	}
	var due []emission
	for key, g := range a.groups {
		win := windowSlice(g.buf, start, end)
		if len(win) == 0 {
			continue
		}
		due = append(due, emission{key: key, win: win})
	}
	sort.Slice(due, func(i, j int) bool { return due[i].key < due[j].key })
	for _, e := range due {
		out := a.spec.Fold(e.win, start, end, e.key)
		if out == nil {
			continue
		}
		if m := core.MetaOf(out); m != nil {
			if a.spec.OutputTs == WindowEndTs {
				m.SetTimestamp(end)
			} else {
				m.SetTimestamp(start)
			}
			for _, w := range e.win {
				if wm := core.MetaOf(w); wm != nil {
					m.MergeStimulus(wm.Stimulus())
				}
			}
		}
		instrumentAggEmit(a.instr, a.spec.Contributors, out, e.win)
		a.lastEmit, a.haveEmit = out.Timestamp(), true
		if err := a.out.Send(ctx, out); err != nil {
			return err
		}
	}
	return nil
}

// instrumentAggEmit links a window output to its contributing tuples — the
// shared emission instrumentation of the row and columnar aggregates. With
// the default semantics every window tuple contributes and the group
// buffer's N chain is reused. With a Contributors selector, a fresh chain of
// linkTuple wrappers (one MAP-typed wrapper per selected tuple) is built
// instead, so traversal — and memory retention — covers exactly the selected
// subset even though the group chain runs through non-contributing tuples.
func instrumentAggEmit(instr core.Instrumenter, contributors func([]core.Tuple) []core.Tuple, out core.Tuple, win []core.Tuple) {
	if contributors == nil {
		instr.OnAggregateEmit(out, win)
		return
	}
	subset := contributors(win)
	if len(subset) == 0 {
		return
	}
	chain := make([]core.Tuple, len(subset))
	var prev core.Tuple
	for i, s := range subset {
		w := &linkTuple{Base: core.NewBase(s.Timestamp())}
		instr.OnMap(w, s)
		if prev != nil {
			instr.OnAggregateLink(prev, w)
		}
		chain[i] = w
		prev = w
	}
	instr.OnAggregateEmit(out, chain)
}

// linkTuple is a provenance-only wrapper used by selective aggregate
// provenance; it never flows through streams.
type linkTuple struct {
	core.Base
}

// advance moves to the next window and purges tuples that no future window
// can contain (event time below the new window start).
func (a *Aggregate) advance() {
	a.nextStart += a.spec.WA
	for key, g := range a.groups {
		i := 0
		for i < len(g.buf) && g.buf[i].Timestamp() < a.nextStart {
			g.buf[i] = nil
			i++
		}
		if i == 0 {
			continue
		}
		g.buf = append(g.buf[:0], g.buf[i:]...)
		if len(g.buf) == 0 {
			delete(a.groups, key)
		}
	}
	// Fast-forward over empty windows so sparse streams stay cheap.
	if min, ok := a.minBufferedTs(); ok {
		if skip := firstWindowStart(min, a.spec.WS, a.spec.WA); skip > a.nextStart {
			a.nextStart = skip
		}
	}
}

func (a *Aggregate) minBufferedTs() (int64, bool) {
	var min int64
	found := false
	for _, g := range a.groups {
		if len(g.buf) == 0 {
			continue
		}
		if ts := g.buf[0].Timestamp(); !found || ts < min {
			min = ts
			found = true
		}
	}
	return min, found
}

// flush closes every remaining window at end-of-stream.
func (a *Aggregate) flush(ctx context.Context) error {
	for len(a.groups) > 0 {
		if err := a.emitDue(ctx); err != nil {
			return err
		}
		a.advance()
	}
	return nil
}

// windowSlice returns the buffered tuples with event time in [start, end).
// Buffers are timestamp-ordered, so the result is the contiguous run between
// the first tuple >= start and the first tuple >= end.
func windowSlice(buf []core.Tuple, start, end int64) []core.Tuple {
	lo := sort.Search(len(buf), func(i int) bool { return buf[i].Timestamp() >= start })
	hi := sort.Search(len(buf), func(i int) bool { return buf[i].Timestamp() >= end })
	if lo >= hi {
		return nil
	}
	return buf[lo:hi]
}
