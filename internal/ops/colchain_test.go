package ops

import (
	"context"
	"strings"
	"testing"

	"genealog/internal/core"
)

// vSchema is the columnar schema of the test tuple: its group key and value.
func vSchema() *ColSchema {
	return &ColSchema{Fields: []ColField{
		{Name: "key", Kind: ColString, Str: func(t core.Tuple) string { return t.(*vTuple).Key }},
		{Name: "val", Kind: ColInt64, Int: func(t core.Tuple) int64 { return t.(*vTuple).Val }},
	}}
}

const (
	vFieldKey = 0
	vFieldVal = 1
)

// colChainStages is chainStages expressed as typed kernels: the doubling
// Map, the odd-dropping Filter and the incrementing Map, all reading the
// val column.
func colChainStages(schema *ColSchema) []ColStage {
	return []ColStage{
		{Name: "double", Kind: StageMap, Schema: schema, Map: func(c *ColBatch, sel []int, dst []core.Tuple) []core.Tuple {
			ts, vals, keys := c.Timestamps(), c.Int64s(vFieldVal), c.Strings(vFieldKey)
			for _, pos := range sel {
				dst = append(dst, vt(ts[pos], keys[pos], vals[pos]*2))
			}
			return dst
		}},
		{Name: "keep-even", Kind: StageFilter, Schema: schema, Filter: func(c *ColBatch, sel []int, dst []int) []int {
			vals := c.Int64s(vFieldVal)
			for _, pos := range sel {
				if vals[pos]%4 == 0 {
					dst = append(dst, pos)
				}
			}
			return dst
		}},
		{Name: "inc", Kind: StageMap, Schema: schema, Map: func(c *ColBatch, sel []int, dst []core.Tuple) []core.Tuple {
			ts, vals, keys := c.Timestamps(), c.Int64s(vFieldVal), c.Strings(vFieldKey)
			for _, pos := range sel {
				dst = append(dst, vt(ts[pos], keys[pos], vals[pos]+1))
			}
			return dst
		}},
	}
}

// runColChain runs the kernel stages as one ColChain.
func runColChain(t *testing.T, in *Stream, instr core.Instrumenter) []core.Tuple {
	t.Helper()
	out := NewStream("out", 0)
	cc := NewColChain("vec", in, out, colChainStages(vSchema()), instr)
	if cc.Stages() != 3 {
		t.Fatalf("Stages() = %d, want 3", cc.Stages())
	}
	done := make(chan []core.Tuple)
	go func() { done <- drainAll(t, out) }()
	runOps(t, cc)
	return <-done
}

// TestColChainMatchesFusedChain: the vectorized chain must reproduce the
// row-path FusedChain output stream exactly — data tuples AND watermark
// heartbeats, in sequence — under NP and GL, across batch sizes. Under GL
// the contribution graphs must match link for link: per-stage MAP links,
// not shortcuts.
func TestColChainMatchesFusedChain(t *testing.T) {
	for _, mode := range []string{"NP", "GL"} {
		for _, batch := range []int{1, 7, 64} {
			t.Run(mode, func(t *testing.T) {
				instr := func() core.Instrumenter {
					if mode == "GL" {
						return &core.Genealog{}
					}
					return core.Noop{}
				}
				row := runFusedChain(t, feedBatched(batch, chainInput()...), instr())
				vec := runColChain(t, feedBatched(batch, chainInput()...), instr())
				if len(row) == 0 || len(row) != len(vec) {
					t.Fatalf("batch %d: %d row outputs, %d vectorized", batch, len(row), len(vec))
				}
				for i := range row {
					if core.IsHeartbeat(row[i]) != core.IsHeartbeat(vec[i]) || row[i].Timestamp() != vec[i].Timestamp() {
						t.Fatalf("batch %d output %d: row %v (hb=%v), vec %v (hb=%v)", batch, i,
							row[i], core.IsHeartbeat(row[i]), vec[i], core.IsHeartbeat(vec[i]))
					}
					if core.IsHeartbeat(row[i]) {
						continue
					}
					r, v := row[i].(*vTuple), vec[i].(*vTuple)
					if r.Val != v.Val || r.Key != v.Key {
						t.Fatalf("batch %d output %d: row %d/%s, vec %d/%s", batch, i, r.Val, r.Key, v.Val, v.Key)
					}
					if mode != "GL" {
						continue
					}
					pr, pv := core.FindProvenance(row[i]), core.FindProvenance(vec[i])
					if len(pr) != 1 || len(pv) != 1 || pr[0].(*vTuple).Val != pv[0].(*vTuple).Val {
						t.Fatalf("output %d: provenance differs (row %d links, vec %d)", i, len(pr), len(pv))
					}
					m := core.MetaOf(vec[i])
					if m.Kind() != core.KindMap {
						t.Fatalf("output %d: kind = %v, want MAP", i, m.Kind())
					}
					mid := core.MetaOf(m.U1())
					if mid == nil || mid.Kind() != core.KindMap {
						t.Fatalf("output %d: intermediate MAP link missing — kernels must not shortcut stages", i)
					}
					if rm, vm := core.MetaOf(row[i]), core.MetaOf(vec[i]); rm.Stimulus() != vm.Stimulus() {
						t.Fatalf("output %d: stimulus row %d, vec %d", i, rm.Stimulus(), vm.Stimulus())
					}
				}
			})
		}
	}
}

// TestColChainIdentityKernelContract: a map kernel returning nil declares
// the identity projection; the chain must then behave exactly like the row
// path running an identity map — same objects delivered, instrumenter
// links and stimulus intact — under NP and GL.
func TestColChainIdentityKernelContract(t *testing.T) {
	identityStages := func() []ColStage {
		return []ColStage{
			{Name: "pass", Kind: StageMap, Schema: vSchema(), Map: func(c *ColBatch, sel []int, dst []core.Tuple) []core.Tuple {
				return nil
			}},
			{Name: "keep-even", Kind: StageFilter, Schema: vSchema(), Filter: func(c *ColBatch, sel []int, dst []int) []int {
				vals := c.Int64s(vFieldVal)
				for _, pos := range sel {
					if vals[pos]%2 == 0 {
						dst = append(dst, pos)
					}
				}
				return dst
			}},
		}
	}
	rowStages := []FusedStage{
		{Name: "pass", Kind: StageMap, Map: func(tp core.Tuple, emit func(core.Tuple)) { emit(tp) }},
		{Name: "keep-even", Kind: StageFilter, Pred: func(tp core.Tuple) bool { return tp.(*vTuple).Val%2 == 0 }},
	}
	for _, mode := range []string{"NP", "GL"} {
		t.Run(mode, func(t *testing.T) {
			instr := func() core.Instrumenter {
				if mode == "GL" {
					return &core.Genealog{}
				}
				return core.Noop{}
			}
			runRow := func() []core.Tuple {
				out := NewStream("out", 0)
				fc := NewFusedChain("row", feedBatched(7, chainInput()...), out, rowStages, instr())
				done := make(chan []core.Tuple)
				go func() { done <- drainAll(t, out) }()
				runOps(t, fc)
				return <-done
			}
			runVec := func() []core.Tuple {
				out := NewStream("out", 0)
				cc := NewColChain("vec", feedBatched(7, chainInput()...), out, identityStages(), instr())
				done := make(chan []core.Tuple)
				go func() { done <- drainAll(t, out) }()
				runOps(t, cc)
				return <-done
			}
			row, vec := runRow(), runVec()
			if len(row) == 0 || len(row) != len(vec) {
				t.Fatalf("%d row outputs, %d vectorized", len(row), len(vec))
			}
			for i := range row {
				if core.IsHeartbeat(row[i]) != core.IsHeartbeat(vec[i]) || row[i].Timestamp() != vec[i].Timestamp() {
					t.Fatalf("output %d: row %v (hb=%v), vec %v (hb=%v)", i,
						row[i], core.IsHeartbeat(row[i]), vec[i], core.IsHeartbeat(vec[i]))
				}
				if core.IsHeartbeat(row[i]) {
					continue
				}
				if row[i].(*vTuple).Val != vec[i].(*vTuple).Val {
					t.Fatalf("output %d: row val %d, vec val %d", i, row[i].(*vTuple).Val, vec[i].(*vTuple).Val)
				}
				if mode != "GL" {
					continue
				}
				rm, vm := core.MetaOf(row[i]), core.MetaOf(vec[i])
				if rm.Kind() != vm.Kind() || rm.Stimulus() != vm.Stimulus() {
					t.Fatalf("output %d: kind/stimulus row %v/%d, vec %v/%d",
						i, rm.Kind(), rm.Stimulus(), vm.Kind(), vm.Stimulus())
				}
				if (rm.U1() == nil) != (vm.U1() == nil) {
					t.Fatalf("output %d: U1 link row %v, vec %v", i, rm.U1(), vm.U1())
				}
			}
		})
	}
}

// TestColChainSurvivorIdentity: filter survivors must be the very tuple
// objects that entered the chain — vectorization may not copy rows.
func TestColChainSurvivorIdentity(t *testing.T) {
	in := []core.Tuple{vt(1, "k", 4), vt(2, "k", 5), vt(3, "k", 8)}
	out := NewStream("out", 0)
	cc := NewColChain("vec", feed(in...), out, []ColStage{
		{Name: "keep-even", Kind: StageFilter, Schema: vSchema(), Filter: func(c *ColBatch, sel []int, dst []int) []int {
			vals := c.Int64s(vFieldVal)
			for _, pos := range sel {
				if vals[pos]%2 == 0 {
					dst = append(dst, pos)
				}
			}
			return dst
		}},
	}, core.Noop{})
	done := make(chan []core.Tuple)
	go func() { done <- drain(t, out) }()
	runOps(t, cc)
	got := <-done
	if len(got) != 2 || got[0] != in[0] || got[1] != in[2] {
		t.Fatalf("survivors are not the input objects: %v", got)
	}
}

// TestColChainWatermarkOnDrop: kernel-dropped tuples advertise watermark
// progress once per distinct event time, like the row path.
func TestColChainWatermarkOnDrop(t *testing.T) {
	out := NewStream("out", 0)
	cc := NewColChain("vec", feed(vt(1, "k", 1), vt(1, "k", 3), vt(2, "k", 5), vt(3, "k", 4)), out,
		[]ColStage{{Name: "drop-odd", Kind: StageFilter, Schema: vSchema(), Filter: func(c *ColBatch, sel []int, dst []int) []int {
			vals := c.Int64s(vFieldVal)
			for _, pos := range sel {
				if vals[pos]%2 == 0 {
					dst = append(dst, pos)
				}
			}
			return dst
		}}}, core.Noop{})
	done := make(chan []core.Tuple)
	go func() { done <- drainAll(t, out) }()
	runOps(t, cc)
	got := <-done
	want := []struct {
		ts int64
		hb bool
	}{{1, true}, {2, true}, {3, false}}
	if len(got) != len(want) {
		t.Fatalf("got %d outputs (%v), want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if got[i].Timestamp() != w.ts || core.IsHeartbeat(got[i]) != w.hb {
			t.Fatalf("output %d = %v (hb=%v), want ts %d hb=%v", i, got[i], core.IsHeartbeat(got[i]), w.ts, w.hb)
		}
	}
}

// TestColChainMapArityError: a map kernel that is not one-to-one fails the
// query with a descriptive error instead of silently corrupting the run.
func TestColChainMapArityError(t *testing.T) {
	out := NewStream("out", 0)
	cc := NewColChain("vec", feed(vt(1, "k", 1), vt(2, "k", 2)), out,
		[]ColStage{{Name: "lossy", Kind: StageMap, Schema: vSchema(), Map: func(c *ColBatch, sel []int, dst []core.Tuple) []core.Tuple {
			return dst // zero outputs for len(sel) inputs
		}}}, core.Noop{})
	go func() {
		for range out.ch {
		}
	}()
	err := cc.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "one-to-one") {
		t.Fatalf("Run err = %v, want one-to-one arity error", err)
	}
}

// TestColChainValidation: construction rejects empty chains and broken
// stages with a panic, like NewFusedChain.
func TestColChainValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	in, out := NewStream("in", 0), NewStream("out", 0)
	schema := vSchema()
	expectPanic("empty", func() { NewColChain("c", in, out, nil, core.Noop{}) })
	expectPanic("no schema", func() {
		NewColChain("c", in, out, []ColStage{{Name: "f", Kind: StageFilter, Filter: func(c *ColBatch, sel, dst []int) []int { return dst }}}, core.Noop{})
	})
	expectPanic("map without kernel", func() {
		NewColChain("c", in, out, []ColStage{{Name: "m", Kind: StageMap, Schema: schema}}, core.Noop{})
	})
	expectPanic("filter without kernel", func() {
		NewColChain("c", in, out, []ColStage{{Name: "f", Kind: StageFilter, Schema: schema}}, core.Noop{})
	})
	expectPanic("bad kind", func() {
		NewColChain("c", in, out, []ColStage{{Name: "x", Kind: StageMultiplex, Schema: schema}}, core.Noop{})
	})
	expectPanic("bad schema", func() {
		bad := &ColSchema{Fields: []ColField{{Name: "val", Kind: ColInt64, Str: func(core.Tuple) string { return "" }}}}
		NewColChain("c", in, out, []ColStage{{Name: "f", Kind: StageFilter, Schema: bad, Filter: func(c *ColBatch, sel, dst []int) []int { return dst }}}, core.Noop{})
	})
}
