package ops

import (
	"context"
	"strconv"
	"testing"

	"genealog/internal/core"
)

func TestStreamBatchAccumulatesAndFlushesAtMax(t *testing.T) {
	ctx := context.Background()
	s := NewBatchedStream("s", 8, 3)
	for i := 0; i < 3; i++ {
		if err := s.Send(ctx, vt(int64(i), "k", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case b := <-s.ch:
		if len(b) != 3 {
			t.Fatalf("published batch has %d tuples, want 3", len(b))
		}
	default:
		t.Fatal("a full batch must be published without Flush")
	}
	// A partial batch stays pending until flushed.
	if err := s.Send(ctx, vt(3, "k", 3)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.ch:
		t.Fatal("partial batch must not be published")
	default:
	}
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if b := <-s.ch; len(b) != 1 || b[0].Timestamp() != 3 {
		t.Fatalf("flushed batch = %v", timestamps(b))
	}
}

func TestStreamBatchFlushOnClose(t *testing.T) {
	ctx := context.Background()
	s := NewBatchedStream("s", 8, 64)
	for i := 0; i < 5; i++ {
		if err := s.Send(ctx, vt(int64(i), "k", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.CloseSend(ctx)
	var got []core.Tuple
	for {
		tp, ok, err := s.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, tp)
	}
	if len(got) != 5 {
		t.Fatalf("drained %d tuples after CloseSend, want 5 (flush-on-close)", len(got))
	}
}

func TestStreamBatchCoalescesPendingHeartbeats(t *testing.T) {
	ctx := context.Background()
	s := NewBatchedStream("s", 8, 64)
	// hb(1) is subsumed by hb(2), which is subsumed by data at ts 3.
	if err := s.Send(ctx, core.NewHeartbeat(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(ctx, core.NewHeartbeat(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(ctx, vt(3, "k", 0)); err != nil {
		t.Fatal(err)
	}
	// A heartbeat after data appends (nothing to coalesce into).
	if err := s.Send(ctx, core.NewHeartbeat(9)); err != nil {
		t.Fatal(err)
	}
	s.CloseSend(ctx)
	all := drainAll(t, s)
	if len(all) != 2 {
		t.Fatalf("stream carried %d elements, want data+heartbeat: %v", len(all), timestamps(all))
	}
	if core.IsHeartbeat(all[0]) || all[0].Timestamp() != 3 {
		t.Fatalf("element 0 = %T@%d, want data at 3", all[0], all[0].Timestamp())
	}
	if !core.IsHeartbeat(all[1]) || all[1].Timestamp() != 9 {
		t.Fatalf("element 1 = %T@%d, want heartbeat at 9", all[1], all[1].Timestamp())
	}
}

func TestStreamRecvBatchReturnsRemainder(t *testing.T) {
	ctx := context.Background()
	s := NewBatchedStream("s", 8, 4)
	for i := 0; i < 4; i++ {
		if err := s.Send(ctx, vt(int64(i), "k", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.CloseSend(ctx)
	if tp, ok, err := s.Recv(ctx); err != nil || !ok || tp.Timestamp() != 0 {
		t.Fatalf("Recv = %v/%v/%v", tp, ok, err)
	}
	b, ok, err := s.RecvBatch(ctx)
	if err != nil || !ok {
		t.Fatalf("RecvBatch = %v/%v", ok, err)
	}
	if !int64sEqual(timestamps(b), []int64{1, 2, 3}) {
		t.Fatalf("remainder batch = %v, want [1 2 3]", timestamps(b))
	}
	if _, ok, _ := s.RecvBatch(ctx); ok {
		t.Fatal("stream must be ended")
	}
}

// countShardHeartbeats routes n tuples with distinct timestamps across
// shards through a Partition whose streams use the given batch size, and
// returns the heartbeats received per shard.
func countShardHeartbeats(t *testing.T, n, shards, batch int) []int {
	t.Helper()
	tuples := make([]core.Tuple, n)
	for i := range tuples {
		tuples[i] = vt(int64(i), "k"+strconv.Itoa(i%97), int64(i))
	}
	in := feedBatched(batch, tuples...)
	outs := make([]*Stream, shards)
	for i := range outs {
		outs[i] = NewBatchedStream("s"+strconv.Itoa(i), n+1, batch)
	}
	p := NewPartition("part", in, outs, keyOf)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	total := 0
	for i, out := range outs {
		for _, tp := range drainAll(t, out) {
			if core.IsHeartbeat(tp) {
				counts[i]++
			} else {
				total++
			}
		}
	}
	if total != n {
		t.Fatalf("partition dropped or duplicated data: %d tuples out, want %d", total, n)
	}
	return counts
}

// TestPartitionHeartbeatTrafficDropsWithBatchSize is the regression test
// for the per-tuple watermark amplification bug: the original
// Partition.broadcast sent a fresh heartbeat to every sibling shard for
// each distinct input timestamp — O(shards) channel operations per tuple on
// a high-resolution stream. Broadcasts now coalesce to batch-flush
// boundaries, so per-shard heartbeat traffic drops from O(n) to
// O(n / batch size).
func TestPartitionHeartbeatTrafficDropsWithBatchSize(t *testing.T) {
	const (
		n      = 10_000
		shards = 4
		batch  = 64
	)
	unbatched := countShardHeartbeats(t, n, shards, 1)
	batched := countShardHeartbeats(t, n, shards, batch)
	for i := 0; i < shards; i++ {
		// Unbatched: one broadcast per distinct timestamp reaches roughly
		// every shard that did not receive the routed tuple — O(n).
		if unbatched[i] < n/2 {
			t.Fatalf("shard %d: unbatched heartbeats = %d, expected O(n) (>= %d)", i, unbatched[i], n/2)
		}
		// Batched: at most one heartbeat per shard per flushed input batch,
		// so ~n/batch with a little slack for the final flush.
		limit := n/batch + 2
		if batched[i] > limit {
			t.Fatalf("shard %d: batched heartbeats = %d, want <= %d (O(n / batch size))", i, batched[i], limit)
		}
	}
}

// TestShardAggregateBatchedMatchesSerial: the sharded aggregate's sink
// sequence must be byte-identical to the serial operator's at batch size 64
// just as it is at batch size 1.
func TestShardAggregateBatchedMatchesSerial(t *testing.T) {
	var tuples []core.Tuple
	for ts := int64(0); ts < 60; ts++ {
		for k := 0; k < 9; k++ {
			if (int(ts)+k)%4 == 0 {
				continue
			}
			tuples = append(tuples, vt(ts, "k"+strconv.Itoa(k), ts+int64(k)))
		}
	}
	spec := AggregateSpec{WS: 6, WA: 2, Key: keyOf, Fold: sumFold}

	serial := func() []core.Tuple {
		in := feed(tuples...)
		out := NewStream("out", 4096)
		a := NewAggregate("agg", in, out, spec, core.Noop{})
		if err := a.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return drain(t, out)
	}()

	for _, batch := range []int{2, 64} {
		in := feedBatched(batch, tuples...)
		out := NewBatchedStream("out", 4096, batch)
		operators, err := ShardAggregate("agg", in, out, spec, core.Noop{}, 4, 64, batch)
		runShardSubgraph(t, operators, err)
		got := drain(t, out)
		if len(got) != len(serial) {
			t.Fatalf("batch %d: %d outputs, want %d", batch, len(got), len(serial))
		}
		for i := range got {
			g, w := got[i].(*vTuple), serial[i].(*vTuple)
			if g.Timestamp() != w.Timestamp() || g.Key != w.Key || g.Val != w.Val {
				t.Fatalf("batch %d: output %d is %d/%s/%d, want %d/%s/%d",
					batch, i, g.Timestamp(), g.Key, g.Val, w.Timestamp(), w.Key, w.Val)
			}
		}
	}
}
