package ops

import (
	"context"
	"strconv"
	"testing"

	"genealog/internal/core"
)

// vTuple is the test tuple: an event time, a group key and a value.
type vTuple struct {
	core.Base
	Key string
	Val int64
}

func vt(ts int64, key string, val int64) *vTuple {
	return &vTuple{Base: core.NewBase(ts), Key: key, Val: val}
}

func (t *vTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

// notCloneable carries Meta but no CloneTuple.
type notCloneable struct{ core.Base }

// runOps runs the given operators concurrently and fails the test on error.
func runOps(t *testing.T, operators ...Operator) {
	t.Helper()
	errc := make(chan error, len(operators))
	for _, op := range operators {
		go func(op Operator) { errc <- op.Run(context.Background()) }(op)
	}
	for range operators {
		if err := <-errc; err != nil {
			t.Fatalf("operator failed: %v", err)
		}
	}
}

// feed sends the tuples on a fresh stream and closes it.
func feed(tuples ...core.Tuple) *Stream {
	return feedBatched(1, tuples...)
}

// feedBatched sends the tuples on a fresh stream with the given batch size
// and closes it.
func feedBatched(batch int, tuples ...core.Tuple) *Stream {
	s := NewBatchedStream("in", len(tuples)+1, batch)
	ctx := context.Background()
	for _, t := range tuples {
		if err := s.Send(ctx, t); err != nil {
			panic(err)
		}
	}
	s.CloseSend(ctx)
	return s
}

// drain collects everything from s (the producer must already be running or
// the stream pre-filled). It consumes through Recv so the stream's tuple
// budget is released as it goes — a raw channel read would leave a running
// producer blocked on backpressure.
func drain(t *testing.T, s *Stream) []core.Tuple {
	t.Helper()
	var out []core.Tuple
	for _, tup := range drainAll(t, s) {
		if core.IsHeartbeat(tup) {
			continue
		}
		out = append(out, tup)
	}
	return out
}

// drainAll collects everything from s, watermark heartbeats included.
func drainAll(t *testing.T, s *Stream) []core.Tuple {
	t.Helper()
	ctx := context.Background()
	var out []core.Tuple
	for {
		tup, ok, err := s.Recv(ctx)
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, tup)
	}
}

// collectSink returns a sink function appending to the returned slice. The
// slice must only be read after the query has drained.
func collectSink() (*[]core.Tuple, SinkFunc) {
	var out []core.Tuple
	return &out, func(t core.Tuple) error {
		out = append(out, t)
		return nil
	}
}

func timestamps(ts []core.Tuple) []int64 {
	out := make([]int64, len(ts))
	for i, t := range ts {
		out[i] = t.Timestamp()
	}
	return out
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seq builds n vTuples with timestamps start, start+step, ...
func seq(start, step int64, n int, key string) []core.Tuple {
	out := make([]core.Tuple, n)
	for i := range out {
		out[i] = vt(start+int64(i)*step, key, int64(i))
	}
	return out
}

// sumFold folds a window by summing Val; the output key is the group key.
func sumFold(window []core.Tuple, start, end int64, key string) core.Tuple {
	var sum int64
	for _, w := range window {
		sum += w.(*vTuple).Val
	}
	out := vt(0, key, sum)
	return out
}

// countFold counts window tuples.
func countFold(window []core.Tuple, start, end int64, key string) core.Tuple {
	return vt(0, key, int64(len(window)))
}

func keyOf(t core.Tuple) string { return t.(*vTuple).Key }

func valStr(v int64) string { return strconv.FormatInt(v, 10) }
