package ops

import (
	"context"
	"strings"
	"testing"

	"genealog/internal/core"
)

// chainStages is the three-stage chain shared by the fused-vs-unfused
// tests: a doubling Map, an odd-dropping Filter and an incrementing Map.
func chainStages() []FusedStage {
	return []FusedStage{
		{Name: "double", Kind: StageMap, Map: func(t core.Tuple, emit func(core.Tuple)) {
			emit(vt(t.Timestamp(), t.(*vTuple).Key, t.(*vTuple).Val*2))
		}},
		{Name: "keep-even", Kind: StageFilter, Pred: func(t core.Tuple) bool {
			return t.(*vTuple).Val%4 == 0
		}},
		{Name: "inc", Kind: StageMap, Map: func(t core.Tuple, emit func(core.Tuple)) {
			emit(vt(t.Timestamp(), t.(*vTuple).Key, t.(*vTuple).Val+1))
		}},
	}
}

// runUnfusedChain runs the stages as standalone Map/Filter operators.
func runUnfusedChain(t *testing.T, in *Stream, instr core.Instrumenter) []core.Tuple {
	t.Helper()
	stages := chainStages()
	s1 := NewStream("s1", 0)
	s2 := NewStream("s2", 0)
	out := NewStream("out", 0)
	m1 := NewMap("double", in, s1, stages[0].Map, instr)
	f := NewFilter("keep-even", s1, s2, stages[1].Pred)
	m2 := NewMap("inc", s2, out, stages[2].Map, instr)
	done := make(chan []core.Tuple)
	go func() { done <- drainAll(t, out) }()
	runOps(t, m1, f, m2)
	return <-done
}

// runFusedChain runs the same stages as one FusedChain.
func runFusedChain(t *testing.T, in *Stream, instr core.Instrumenter) []core.Tuple {
	t.Helper()
	out := NewStream("out", 0)
	fc := NewFusedChain("fused", in, out, chainStages(), instr)
	if fc.Stages() != 3 {
		t.Fatalf("Stages() = %d, want 3", fc.Stages())
	}
	done := make(chan []core.Tuple)
	go func() { done <- drainAll(t, out) }()
	runOps(t, fc)
	return <-done
}

func chainInput() []core.Tuple {
	var in []core.Tuple
	for i := 0; i < 40; i++ {
		in = append(in, vt(int64(i/2), "k", int64(i)))
	}
	return in
}

// dataOf filters out watermark heartbeats.
func dataOf(ts []core.Tuple) []*vTuple {
	var out []*vTuple
	for _, t := range ts {
		if !core.IsHeartbeat(t) {
			out = append(out, t.(*vTuple))
		}
	}
	return out
}

// TestFusedChainMatchesUnfused: the fused chain must produce the same data
// tuples — payloads and contribution graphs — as the standalone operators,
// under NP and GL.
func TestFusedChainMatchesUnfused(t *testing.T) {
	for _, mode := range []string{"NP", "GL"} {
		t.Run(mode, func(t *testing.T) {
			var unfused, fused []core.Tuple
			if mode == "GL" {
				unfused = runUnfusedChain(t, feed(chainInput()...), &core.Genealog{})
				fused = runFusedChain(t, feed(chainInput()...), &core.Genealog{})
			} else {
				unfused = runUnfusedChain(t, feed(chainInput()...), core.Noop{})
				fused = runFusedChain(t, feed(chainInput()...), core.Noop{})
			}
			du, df := dataOf(unfused), dataOf(fused)
			if len(du) == 0 || len(du) != len(df) {
				t.Fatalf("data tuples: unfused %d, fused %d", len(du), len(df))
			}
			for i := range du {
				if du[i].Timestamp() != df[i].Timestamp() || du[i].Val != df[i].Val {
					t.Fatalf("tuple %d differs: unfused %v, fused %v", i, du[i], df[i])
				}
				if mode == "GL" {
					pu, pf := core.FindProvenance(du[i]), core.FindProvenance(df[i])
					if len(pu) != 1 || len(pf) != 1 {
						t.Fatalf("tuple %d: provenance sizes unfused %d, fused %d (want 1)", i, len(pu), len(pf))
					}
					if pu[0].(*vTuple).Val != pf[0].(*vTuple).Val {
						t.Fatalf("tuple %d: provenance differs", i)
					}
					// Fusion must preserve the per-stage MAP links, not
					// shortcut them: two Map stages means the output's U1
					// points at the intermediate, which points at the input.
					m := core.MetaOf(df[i])
					if m.Kind() != core.KindMap {
						t.Fatalf("tuple %d: kind = %v, want MAP", i, m.Kind())
					}
					mid := core.MetaOf(m.U1())
					if mid == nil || mid.Kind() != core.KindMap {
						t.Fatalf("tuple %d: intermediate stage link missing", i)
					}
				}
			}
		})
	}
}

// TestFusedChainWatermarkOnDrop: tuples dropped mid-chain must still
// advertise watermark progress downstream, once per distinct event time.
func TestFusedChainWatermarkOnDrop(t *testing.T) {
	out := NewStream("out", 0)
	fc := NewFusedChain("fused", feed(vt(1, "k", 1), vt(1, "k", 3), vt(2, "k", 5), vt(3, "k", 4)), out,
		[]FusedStage{{Name: "drop-odd", Kind: StageFilter, Pred: func(t core.Tuple) bool {
			return t.(*vTuple).Val%2 == 0
		}}}, core.Noop{})
	done := make(chan []core.Tuple)
	go func() { done <- drainAll(t, out) }()
	runOps(t, fc)
	got := <-done
	// ts1 x2 and ts2 dropped -> heartbeat(1), heartbeat(2); ts3 forwarded.
	want := []struct {
		ts int64
		hb bool
	}{{1, true}, {2, true}, {3, false}}
	if len(got) != len(want) {
		t.Fatalf("got %d outputs (%v), want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if got[i].Timestamp() != w.ts || core.IsHeartbeat(got[i]) != w.hb {
			t.Fatalf("output %d = %v (hb=%v), want ts %d hb=%v", i, got[i], core.IsHeartbeat(got[i]), w.ts, w.hb)
		}
	}
}

// TestFusedChainMultiplexStage: a pass-through Multiplex stage must clone
// and link under GL and forward the same object under NP, exactly like the
// standalone operator.
func TestFusedChainMultiplexStage(t *testing.T) {
	run := func(instr core.Instrumenter) (in, out core.Tuple) {
		src := vt(1, "k", 7)
		o := NewStream("out", 0)
		fc := NewFusedChain("fused", feed(src), o,
			[]FusedStage{{Name: "mux", Kind: StageMultiplex}}, instr)
		done := make(chan []core.Tuple)
		go func() { done <- drain(t, o) }()
		runOps(t, fc)
		got := <-done
		if len(got) != 1 {
			t.Fatalf("got %d tuples, want 1", len(got))
		}
		return src, got[0]
	}
	in, out := run(core.Noop{})
	if in != out {
		t.Fatal("NP multiplex stage must forward the same tuple object")
	}
	in, out = run(&core.Genealog{})
	if in == out {
		t.Fatal("GL multiplex stage must clone")
	}
	m := core.MetaOf(out)
	if m.Kind() != core.KindMultiplex || m.U1() != in {
		t.Fatal("GL multiplex stage must link the clone to the original")
	}
}

// TestFusedChainNotCloneable: a cloning multiplex stage must fail on tuples
// without CloneTuple, like the standalone Multiplex.
func TestFusedChainNotCloneable(t *testing.T) {
	o := NewStream("out", 0)
	fc := NewFusedChain("fused", feed(&notCloneable{Base: core.NewBase(1)}), o,
		[]FusedStage{{Name: "mux", Kind: StageMultiplex}}, &core.Genealog{})
	go func() {
		for range o.ch {
		}
	}()
	err := fc.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "does not implement core.Cloneable") {
		t.Fatalf("Run err = %v, want ErrNotCloneable", err)
	}
}

// TestFusedChainMultiEmitAndPass: Map stages emitting several tuples push
// each through the rest of the chain; pass stages are transparent.
func TestFusedChainMultiEmitAndPass(t *testing.T) {
	o := NewStream("out", 0)
	fc := NewFusedChain("fused", feed(vt(1, "k", 1), vt(2, "k", 2)), o,
		[]FusedStage{
			{Name: "fan", Kind: StageMap, Map: func(t core.Tuple, emit func(core.Tuple)) {
				v := t.(*vTuple)
				emit(vt(v.Timestamp(), v.Key, v.Val*10))
				emit(vt(v.Timestamp(), v.Key, v.Val*10+1))
			}},
			{Name: "union", Kind: StagePass},
		}, core.Noop{})
	done := make(chan []core.Tuple)
	go func() { done <- drain(t, o) }()
	runOps(t, fc)
	got := dataOf(<-done)
	want := []int64{10, 11, 20, 21}
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Val != w {
			t.Fatalf("tuple %d = %d, want %d", i, got[i].Val, w)
		}
	}
}

// TestFusedChainValidation: construction rejects empty chains and broken
// stages with a panic (programming errors, like NewAggregate).
func TestFusedChainValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	in, out := NewStream("in", 0), NewStream("out", 0)
	expectPanic("empty", func() { NewFusedChain("f", in, out, nil, core.Noop{}) })
	expectPanic("map without fn", func() {
		NewFusedChain("f", in, out, []FusedStage{{Name: "m", Kind: StageMap}}, core.Noop{})
	})
	expectPanic("filter without pred", func() {
		NewFusedChain("f", in, out, []FusedStage{{Name: "f", Kind: StageFilter}}, core.Noop{})
	})
	expectPanic("bad kind", func() {
		NewFusedChain("f", in, out, []FusedStage{{Name: "x", Kind: StageKind(99)}}, core.Noop{})
	})
}

// TestStageKindString covers the StageKind names used in plan dumps.
func TestStageKindString(t *testing.T) {
	kinds := []StageKind{StageMap, StageFilter, StageMultiplex, StagePass, StageKind(0)}
	want := []string{"map", "filter", "multiplex", "pass", "invalid"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d String = %q, want %q", i, k.String(), want[i])
		}
	}
}
