package ops

import (
	"context"
	"fmt"

	"genealog/internal/core"
)

// Filter forwards the tuples satisfying a predicate and discards the rest
// (paper §2). It forwards the same tuple object — it creates no tuples — so,
// per §4.1, it needs no provenance instrumentation.
//
// A Filter creates sparsity: when it drops tuples, it emits a Heartbeat so
// downstream deterministic merges keep learning the stream's watermark.
type Filter struct {
	name string
	in   *Stream
	out  *Stream
	pred func(core.Tuple) bool

	lastOut  int64 // watermark already visible downstream
	haveLast bool
}

var _ Operator = (*Filter)(nil)

// NewFilter returns a Filter operator.
func NewFilter(name string, in, out *Stream, pred func(core.Tuple) bool) *Filter {
	return &Filter{name: name, in: in, out: out, pred: pred}
}

// Name implements Operator.
func (f *Filter) Name() string { return f.name }

// Run implements Operator. The inner loop iterates input batches and
// flushes the output once per batch, before blocking for more input.
func (f *Filter) Run(ctx context.Context) error {
	defer f.out.CloseSend(ctx)
	for {
		batch, ok, err := f.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("filter %q: %w", f.name, err)
		}
		if !ok {
			return nil
		}
		for _, t := range batch {
			forward := core.IsHeartbeat(t) || f.pred(t)
			if forward {
				f.lastOut, f.haveLast = t.Timestamp(), true
				if err := f.out.Send(ctx, t); err != nil {
					return fmt.Errorf("filter %q: %w", f.name, err)
				}
				continue
			}
			// Dropped: advertise watermark progress, once per distinct time.
			if !f.haveLast || t.Timestamp() > f.lastOut {
				f.lastOut, f.haveLast = t.Timestamp(), true
				if err := f.out.Send(ctx, core.NewHeartbeat(t.Timestamp())); err != nil {
					return fmt.Errorf("filter %q: %w", f.name, err)
				}
			}
		}
		if err := f.out.Flush(ctx); err != nil {
			return fmt.Errorf("filter %q: %w", f.name, err)
		}
	}
}
