package ops

import (
	"context"
	"errors"
	"testing"

	"genealog/internal/core"
)

func TestSourceStampsStimulusAndInstruments(t *testing.T) {
	out := NewStream("out", 8)
	var clock int64
	src := NewSource("s", SliceSource(seq(0, 1, 3, "k")), out, &core.Genealog{})
	src.Now = func() int64 { clock++; return clock }
	runOps(t, src)
	got := drain(t, out)
	if len(got) != 3 {
		t.Fatalf("got %d tuples, want 3", len(got))
	}
	for i, tup := range got {
		m := core.MetaOf(tup)
		if m.Kind() != core.KindSource {
			t.Fatalf("tuple %d kind = %v, want SOURCE", i, m.Kind())
		}
		if m.Stimulus() != int64(i+1) {
			t.Fatalf("tuple %d stimulus = %d, want %d", i, m.Stimulus(), i+1)
		}
	}
}

func TestSourceOnEmitHook(t *testing.T) {
	out := NewStream("out", 8)
	src := NewSource("s", SliceSource(seq(0, 1, 5, "k")), out, core.Noop{})
	var n int
	src.OnEmit = func(core.Tuple) { n++ }
	runOps(t, src)
	drain(t, out)
	if n != 5 {
		t.Fatalf("OnEmit called %d times, want 5", n)
	}
}

func TestSourcePropagatesGeneratorError(t *testing.T) {
	out := NewStream("out", 1)
	boom := errors.New("boom")
	src := NewSource("s", func(ctx context.Context, emit func(core.Tuple) error) error {
		return boom
	}, out, core.Noop{})
	if err := src.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestSourceRateLimiting(t *testing.T) {
	out := NewStream("out", 64)
	src := NewSource("s", SliceSource(seq(0, 1, 30, "k")), out, core.Noop{})
	src.Rate = 1e6 // fast enough for tests, still exercises the pacer
	runOps(t, src)
	if got := len(drain(t, out)); got != 30 {
		t.Fatalf("got %d tuples, want 30", got)
	}
}

func TestSinkLatencyFromStimulus(t *testing.T) {
	a := vt(1, "k", 0)
	a.SetStimulus(100)
	in := feed(a)
	sink := NewSink("k", in, nil)
	sink.Now = func() int64 { return 250 }
	var lat int64
	sink.OnLatency = func(_ core.Tuple, ns int64) { lat = ns }
	runOps(t, sink)
	if lat != 150 {
		t.Fatalf("latency = %d, want 150", lat)
	}
}

func TestSinkPropagatesFnError(t *testing.T) {
	in := feed(vt(1, "k", 0))
	boom := errors.New("boom")
	sink := NewSink("k", in, func(core.Tuple) error { return boom })
	if err := sink.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMapOneToMany(t *testing.T) {
	in := feed(vt(1, "k", 10), vt(2, "k", 20))
	out := NewStream("out", 8)
	m := NewMap("m", in, out, func(tp core.Tuple, emit func(core.Tuple)) {
		v := tp.(*vTuple)
		emit(vt(v.Timestamp(), v.Key, v.Val))
		emit(vt(v.Timestamp(), v.Key, v.Val+1))
	}, &core.Genealog{})
	runOps(t, m)
	got := drain(t, out)
	if len(got) != 4 {
		t.Fatalf("got %d tuples, want 4", len(got))
	}
	for _, tup := range got {
		m := core.MetaOf(tup)
		if m.Kind() != core.KindMap || m.U1() == nil {
			t.Fatalf("map output not instrumented: kind=%v u1=%v", m.Kind(), m.U1())
		}
	}
}

func TestMapDropsTuples(t *testing.T) {
	in := feed(seq(0, 1, 4, "k")...)
	out := NewStream("out", 8)
	m := NewMap("m", in, out, func(tp core.Tuple, emit func(core.Tuple)) {
		if tp.(*vTuple).Val%2 == 0 {
			emit(vt(tp.Timestamp(), "k", tp.(*vTuple).Val))
		}
	}, core.Noop{})
	runOps(t, m)
	if got := len(drain(t, out)); got != 2 {
		t.Fatalf("got %d tuples, want 2", got)
	}
}

func TestMapPropagatesStimulus(t *testing.T) {
	a := vt(1, "k", 0)
	a.SetStimulus(42)
	in := feed(a)
	out := NewStream("out", 8)
	m := NewMap("m", in, out, func(tp core.Tuple, emit func(core.Tuple)) {
		emit(vt(tp.Timestamp(), "k", 0))
	}, core.Noop{})
	runOps(t, m)
	got := drain(t, out)
	if s := core.MetaOf(got[0]).Stimulus(); s != 42 {
		t.Fatalf("stimulus = %d, want 42", s)
	}
}

func TestFilterForwardsSameObject(t *testing.T) {
	a, b := vt(1, "k", 0), vt(2, "k", 5)
	in := feed(a, b)
	out := NewStream("out", 8)
	f := NewFilter("f", in, out, func(tp core.Tuple) bool { return tp.(*vTuple).Val == 0 })
	runOps(t, f)
	got := drain(t, out)
	if len(got) != 1 || got[0] != core.Tuple(a) {
		t.Fatalf("filter must forward the identical object, got %v", got)
	}
}

func TestMultiplexClonesUnderGL(t *testing.T) {
	a := vt(1, "k", 7)
	a.SetKind(core.KindSource)
	in := feed(a)
	o1, o2 := NewStream("o1", 8), NewStream("o2", 8)
	x := NewMultiplex("x", in, []*Stream{o1, o2}, &core.Genealog{})
	runOps(t, x)
	g1, g2 := drain(t, o1), drain(t, o2)
	if len(g1) != 1 || len(g2) != 1 {
		t.Fatal("each branch must receive one tuple")
	}
	if g1[0] == core.Tuple(a) || g2[0] == core.Tuple(a) || g1[0] == g2[0] {
		t.Fatal("GL branches must be distinct clones")
	}
	for _, tup := range []core.Tuple{g1[0], g2[0]} {
		m := core.MetaOf(tup)
		if m.Kind() != core.KindMultiplex || m.U1() != core.Tuple(a) {
			t.Fatalf("clone not linked: kind=%v u1=%v", m.Kind(), m.U1())
		}
		if tup.(*vTuple).Val != 7 {
			t.Fatal("clone must keep payload")
		}
	}
}

func TestMultiplexForwardsUnderNP(t *testing.T) {
	a := vt(1, "k", 7)
	in := feed(a)
	o1, o2 := NewStream("o1", 8), NewStream("o2", 8)
	x := NewMultiplex("x", in, []*Stream{o1, o2}, core.Noop{})
	runOps(t, x)
	g1, g2 := drain(t, o1), drain(t, o2)
	if g1[0] != core.Tuple(a) || g2[0] != core.Tuple(a) {
		t.Fatal("NP multiplex must forward the same object")
	}
}

func TestMultiplexRejectsNonCloneable(t *testing.T) {
	in := feed(&notCloneable{Base: core.NewBase(1)})
	o1 := NewStream("o1", 8)
	x := NewMultiplex("x", in, []*Stream{o1}, &core.Genealog{})
	err := x.Run(context.Background())
	if !errors.Is(err, ErrNotCloneable) {
		t.Fatalf("err = %v, want ErrNotCloneable", err)
	}
}

func TestUnionMergesByTimestamp(t *testing.T) {
	in1 := feed(vt(1, "a", 0), vt(4, "a", 0), vt(7, "a", 0))
	in2 := feed(vt(2, "b", 0), vt(3, "b", 0), vt(9, "b", 0))
	out := NewStream("out", 16)
	u := NewUnion("u", []*Stream{in1, in2}, out)
	runOps(t, u)
	got := timestamps(drain(t, out))
	if !int64sEqual(got, []int64{1, 2, 3, 4, 7, 9}) {
		t.Fatalf("union order = %v", got)
	}
}

func TestUnionTieBreaksByInputIndex(t *testing.T) {
	a, b := vt(5, "a", 0), vt(5, "b", 0)
	in1, in2 := feed(a), feed(b)
	out := NewStream("out", 8)
	u := NewUnion("u", []*Stream{in1, in2}, out)
	runOps(t, u)
	got := drain(t, out)
	if got[0] != core.Tuple(a) || got[1] != core.Tuple(b) {
		t.Fatal("ties must resolve to the lower input index")
	}
}

func TestUnionSingleInput(t *testing.T) {
	in := feed(seq(0, 1, 5, "k")...)
	out := NewStream("out", 8)
	u := NewUnion("u", []*Stream{in}, out)
	runOps(t, u)
	if got := len(drain(t, out)); got != 5 {
		t.Fatalf("got %d tuples, want 5", got)
	}
}

func TestStreamSendRecvCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewStream("s", 1)
	if err := s.Send(context.Background(), vt(0, "k", 0)); err != nil {
		t.Fatal(err) // fill to capacity so the next Send must block
	}
	if err := s.Send(ctx, vt(1, "k", 0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("send err = %v, want context.Canceled", err)
	}
	empty := NewStream("empty", 1)
	if _, _, err := empty.Recv(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("recv err = %v, want context.Canceled", err)
	}
}
