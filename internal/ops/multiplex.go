package ops

import (
	"context"
	"errors"
	"fmt"

	"genealog/internal/core"
)

// ErrNotCloneable is returned when a provenance-instrumented Multiplex
// receives a tuple that does not implement core.Cloneable.
var ErrNotCloneable = errors.New("multiplex: tuple does not implement core.Cloneable")

// Multiplex copies each input tuple to every output stream (paper §2). When
// the instrumenter requires per-branch copies (GL, BL), each branch receives
// a clone linked to the original (U1, Type=MULTIPLEX); under NP the same
// tuple object is forwarded to every branch.
type Multiplex struct {
	name  string
	in    *Stream
	outs  []*Stream
	instr core.Instrumenter
}

var _ Operator = (*Multiplex)(nil)

// NewMultiplex returns a Multiplex operator with the given output branches.
func NewMultiplex(name string, in *Stream, outs []*Stream, instr core.Instrumenter) *Multiplex {
	return &Multiplex{name: name, in: in, outs: outs, instr: instr}
}

// Name implements Operator.
func (x *Multiplex) Name() string { return x.name }

// Run implements Operator. The inner loop iterates input batches and
// flushes every branch once per batch, before blocking for more input.
func (x *Multiplex) Run(ctx context.Context) error {
	defer closeAll(ctx, x.outs)
	clone := x.instr.NeedsMultiplexClone()
	for {
		batch, ok, err := x.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("multiplex %q: %w", x.name, err)
		}
		if !ok {
			return nil
		}
		for _, t := range batch {
			for _, out := range x.outs {
				branch := t
				switch {
				case core.IsHeartbeat(t):
					// Each branch gets its own marker: a shared one could be
					// mutated concurrently by the branches' instrumenters.
					branch = core.NewHeartbeat(t.Timestamp())
				case clone:
					c, ok := t.(core.Cloneable)
					if !ok {
						return fmt.Errorf("multiplex %q: %w (%T)", x.name, ErrNotCloneable, t)
					}
					branch = c.CloneTuple()
					x.instr.OnMultiplex(branch, t)
				}
				if err := out.Send(ctx, branch); err != nil {
					return fmt.Errorf("multiplex %q: %w", x.name, err)
				}
			}
		}
		for _, out := range x.outs {
			if err := out.Flush(ctx); err != nil {
				return fmt.Errorf("multiplex %q: %w", x.name, err)
			}
		}
	}
}
