// Package ops implements the standard data-streaming operators of the paper's
// §2 — Source, Sink, Map, Filter, Multiplex, Union, Aggregate and Join — on
// top of bounded Go channels, with deterministic timestamp-sorted merging of
// multi-input operators. Provenance side effects are delegated to a
// core.Instrumenter so the same operator code serves the NP, GL and BL
// evaluation modes.
package ops

import (
	"context"
	"fmt"
	"sync/atomic"

	"genealog/internal/core"
	"genealog/internal/telemetry"
)

// DefaultStreamCapacity is the buffering budget used when a stream is created
// without an explicit capacity. Streams are the inter-operator queues of an
// SPE instance (paper §2); they need slack for pipelining, unlike the
// signalling channels for which idiomatic Go prefers capacity one or none.
// The capacity counts buffered *tuples*, not batches, so backpressure engages
// at the same depth whatever the batch size — and keeps doing so when the
// adaptive controller resizes batches mid-run.
const DefaultStreamCapacity = 256

// Batch is a vector of tuples moved across a stream in one channel
// operation. Batches are never empty and preserve the stream's timestamp
// order; the batch boundaries themselves carry no meaning — consumers may
// observe different boundaries than the producer created (a consumer-side
// remainder after per-tuple Recv calls is returned as a smaller batch).
type Batch []core.Tuple

// Stream is a named, bounded, timestamp-sorted sequence of tuples connecting
// exactly one producer operator to exactly one consumer operator. The
// producer closes the stream to signal end-of-stream.
//
// Tuples cross the underlying channel in batches of up to the stream's batch
// size, amortising channel synchronisation across the batch (the framework
// overhead the paper's small-constant-per-tuple claim competes with). A
// batch is flushed downstream when it reaches the batch size, when the
// producer calls Flush — operators flush whenever they would otherwise block
// waiting for input, so a batch never stalls a downstream merge that is
// ready to consume it — and on CloseSend (flush-on-close). Within a pending
// batch, a watermark heartbeat is coalesced into whatever follows it: a
// later heartbeat replaces it, and a data tuple at or past its event time
// subsumes it (both advertise at least the same watermark), so batching
// strictly reduces heartbeat traffic.
type Stream struct {
	name string
	ch   chan Batch

	// max is the live batch size: the flush threshold every Send/SendRun/
	// SendGather call loads exactly once per flush decision. It is atomic so
	// the adaptive controller (internal/adapt) can resize a running stream;
	// limit is the static ceiling SetBatchSize clamps against, fixed at
	// construction (or raised by SetBatchSizeLimit before the query runs) so
	// decisions that must not flap with the live size — wire batch framing,
	// frame-bound validation — key off it instead.
	max   atomic.Int64
	limit int

	// capTuples bounds the tuples buffered in the channel; buffered tracks
	// them (producer adds at publish, consumer subtracts at dequeue) and
	// space wakes a producer blocked on a full stream. The channel's slot
	// capacity equals capTuples — every batch holds at least one tuple, so
	// the tuple budget is the binding constraint and the channel send after
	// an admitted budget reservation never blocks.
	capTuples int
	buffered  atomic.Int64
	space     chan struct{}

	// pending is the producer-side accumulating batch; owned by the single
	// producer goroutine, so it needs no lock. nextCap adapts the capacity
	// of each fresh pending batch to the size of the last flushed one, so a
	// stream that flushes small partial batches (a starving merge, a sparse
	// filter) does not allocate full-size vectors for them.
	pending Batch
	nextCap int

	// free recycles drained batch backing arrays from the consumer back to
	// the producer (synchronised by the channel itself), so steady-state
	// transport allocates nothing per batch — and, at batch size 1, nothing
	// per tuple, matching the pre-batching chan-of-tuples transport.
	free chan Batch

	// rq is the consumer-side dequeued batch being drained by Recv; owned by
	// the single consumer goroutine. lent is the batch most recently handed
	// out by RecvBatch; it is reclaimed at the consumer's next receive call,
	// by which point the operator loop that borrowed it has fully processed
	// it (returned batches are valid only until that next call).
	rq    Batch
	rqi   int
	lent  Batch
	ended bool

	// telem, when non-nil, receives one producer-side note per published
	// batch and one consumer-side note per dequeued batch. It is the
	// telemetry subsystem's only hot-path presence: disabled streams pay a
	// single nil check per batch, never anything per tuple.
	telem *telemetry.StreamStats
}

// NewStream returns an unbatched stream (batch size 1) with the given name
// and capacity (capacity <= 0 selects DefaultStreamCapacity): every Send
// publishes immediately, the pre-batching behaviour.
func NewStream(name string, capacity int) *Stream {
	return NewBatchedStream(name, capacity, 1)
}

// NewBatchedStream returns a stream with the given name, buffering capacity
// (in tuples; <= 0 selects DefaultStreamCapacity) and batch size (<= 0
// selects 1, i.e. unbatched).
func NewBatchedStream(name string, capacity, batch int) *Stream {
	if capacity <= 0 {
		capacity = DefaultStreamCapacity
	}
	if batch <= 0 {
		batch = 1
	}
	s := &Stream{
		name:      name,
		ch:        make(chan Batch, capacity),
		limit:     batch,
		capTuples: capacity,
		space:     make(chan struct{}, 1),
		nextCap:   batch,
		free:      make(chan Batch, 8),
	}
	s.max.Store(int64(batch))
	return s
}

// Name returns the stream's name.
func (s *Stream) Name() string { return s.name }

// PendingLen returns the number of tuples accumulated in the producer-side
// pending batch (0 right after a flush). Only the producer may call it.
func (s *Stream) PendingLen() int { return len(s.pending) }

// BatchSize returns the stream's current batch size. Safe from any
// goroutine; the adaptive controller may change it at any time.
func (s *Stream) BatchSize() int { return int(s.max.Load()) }

// SetBatchSize resizes the stream's live batch size, clamped to
// [1, BatchSizeLimit]. Safe from any goroutine at any time: the producer
// loads the size once per flush decision, so a resize takes effect at its
// next Send/Flush. An already-accumulated pending batch larger than the new
// size flushes whole on the next Send — batch boundaries carry no meaning,
// so resizing never changes what is delivered, only how it is grouped.
func (s *Stream) SetBatchSize(n int) {
	if n < 1 {
		n = 1
	}
	if n > s.limit {
		n = s.limit
	}
	s.max.Store(int64(n))
}

// BatchSizeLimit returns the static ceiling SetBatchSize clamps against.
// Unlike the live size it never changes while the query runs, so both ends
// of a transport link can key their wire framing off it.
func (s *Stream) BatchSizeLimit() int { return s.limit }

// SetBatchSizeLimit raises (or lowers) the resize ceiling. Call it before
// the query starts (query.Build does, for adaptive queries); it is not
// synchronised with a running producer.
func (s *Stream) SetBatchSizeLimit(n int) {
	if n < 1 {
		n = 1
	}
	s.limit = n
	if int(s.max.Load()) > n {
		s.max.Store(int64(n))
	}
}

// SetTelemetry attaches per-batch counters to the stream. Call it before
// the query starts (query.Build does); attaching mid-run would race the
// producer and consumer goroutines.
func (s *Stream) SetTelemetry(st *telemetry.StreamStats) { s.telem = st }

// QueueLen returns the number of tuples currently buffered in the stream's
// channel. Safe to call from any goroutine at any time; telemetry samples
// it at scrape time and the adaptive controller reads occupancy from it.
func (s *Stream) QueueLen() int { return int(s.buffered.Load()) }

// QueueCap returns the stream's buffering capacity, in tuples.
func (s *Stream) QueueCap() int { return s.capTuples }

// Send delivers t downstream, blocking while the stream is full. With a
// batch size above one, t is first accumulated into the pending batch and
// only published when the batch fills (or on Flush/CloseSend). It fails
// with ctx.Err() only if the query is cancelled while the stream is full:
// like Recv it prefers progress over reporting cancellation, so after a
// cancellation operators drain deterministically — a shard worker that can
// still move tuples does so until a peer that noticed the cancellation
// closes or stops consuming its stream — instead of racing ctx.Done against
// a ready channel.
func (s *Stream) Send(ctx context.Context, t core.Tuple) error {
	if n := len(s.pending); n > 0 && core.IsHeartbeat(s.pending[n-1]) && s.pending[n-1].Timestamp() <= t.Timestamp() {
		// A trailing pending heartbeat is subsumed by anything at or past
		// its event time: the successor advertises at least the same
		// watermark.
		s.pending[n-1] = t
	} else {
		if s.pending == nil {
			select {
			case b := <-s.free:
				s.pending = b
			default:
				s.pending = make(Batch, 0, s.nextCap)
			}
		}
		s.pending = append(s.pending, t)
	}
	if len(s.pending) >= int(s.max.Load()) {
		return s.Flush(ctx)
	}
	return nil
}

// SendRun delivers a run of timestamp-sorted data tuples in one call,
// exactly as the equivalent sequence of Send calls would — same pending
// accumulation, same flush boundaries, same coalescing of a trailing
// pending heartbeat into the run's first tuple — minus the per-tuple call
// and bookkeeping overhead. The run must not contain heartbeats. The
// vectorized ColChain uses it to deliver each materialised survivor
// stretch; tuple-at-a-time producers keep Send.
func (s *Stream) SendRun(ctx context.Context, run []core.Tuple) error {
	if len(run) == 0 {
		return nil
	}
	if n := len(s.pending); n > 0 && core.IsHeartbeat(s.pending[n-1]) && s.pending[n-1].Timestamp() <= run[0].Timestamp() {
		s.pending[n-1] = run[0]
		run = run[1:]
	}
	max := int(s.max.Load())
	for len(run) > 0 {
		if len(s.pending) >= max {
			if err := s.Flush(ctx); err != nil {
				return err
			}
		}
		if s.pending == nil {
			select {
			case b := <-s.free:
				s.pending = b
			default:
				s.pending = make(Batch, 0, s.nextCap)
			}
		}
		take := max - len(s.pending)
		if take > len(run) {
			take = len(run)
		}
		s.pending = append(s.pending, run[:take]...)
		run = run[take:]
	}
	if len(s.pending) >= max {
		return s.Flush(ctx)
	}
	return nil
}

// SendGather delivers rows[sel[0]], rows[sel[1]], ... exactly as the
// equivalent sequence of Send calls would, gathering the selected tuples
// straight into the pending batch with no intermediate buffer. The same
// contract as SendRun applies: selected tuples must be timestamp-sorted
// data tuples, never heartbeats. The vectorized ColChain uses it to
// materialise filter survivors from a run's selection vector.
func (s *Stream) SendGather(ctx context.Context, rows []core.Tuple, sel []int) error {
	if len(sel) == 0 {
		return nil
	}
	if n := len(s.pending); n > 0 && core.IsHeartbeat(s.pending[n-1]) && s.pending[n-1].Timestamp() <= rows[sel[0]].Timestamp() {
		s.pending[n-1] = rows[sel[0]]
		sel = sel[1:]
	}
	max := int(s.max.Load())
	for len(sel) > 0 {
		if len(s.pending) >= max {
			if err := s.Flush(ctx); err != nil {
				return err
			}
		}
		if s.pending == nil {
			select {
			case b := <-s.free:
				s.pending = b
			default:
				s.pending = make(Batch, 0, s.nextCap)
			}
		}
		take := max - len(s.pending)
		if take > len(sel) {
			take = len(sel)
		}
		for _, i := range sel[:take] {
			s.pending = append(s.pending, rows[i])
		}
		sel = sel[take:]
	}
	if len(s.pending) >= max {
		return s.Flush(ctx)
	}
	return nil
}

// Flush publishes the pending batch, if any. Operators call it after
// processing each input batch and before blocking for more input, so every
// tuple an operator has produced is visible downstream whenever the
// operator is idle — the liveness property deterministic multi-input merges
// rely on.
func (s *Stream) Flush(ctx context.Context) error {
	if len(s.pending) == 0 {
		return nil
	}
	b := s.pending
	s.pending = nil
	max := int(s.max.Load())
	// The next batch will likely be about this size; cap the fresh
	// allocation accordingly (append still grows it when traffic bursts
	// past the estimate). Clamping against the live size — not the size at
	// construction — is what makes a downward resize stick: a shrunken
	// stream stops sizing fresh arrays for the old batch size.
	s.nextCap = len(b)
	if lo := min(4, max); s.nextCap < lo {
		s.nextCap = lo
	}
	if s.nextCap > max {
		s.nextCap = max
	}
	// Reserve tuple budget before publishing. A batch is admitted when it
	// fits under capTuples — or, so a batch larger than the whole capacity
	// can still make progress, when the stream is empty. The channel has
	// one slot per capacity tuple and every batch holds at least one tuple,
	// so the send after an admitted reservation never blocks.
	n := int64(len(b))
	for {
		cur := s.buffered.Load()
		if cur == 0 || cur+n <= int64(s.capTuples) {
			if s.buffered.CompareAndSwap(cur, cur+n) {
				break
			}
			continue
		}
		// Drain a stale wake-up signal, then wait for the consumer.
		select {
		case <-s.space:
			continue
		default:
		}
		select {
		case <-s.space:
		case <-ctx.Done():
			return fmt.Errorf("stream %q: send: %w", s.name, ctx.Err())
		}
	}
	if st := s.telem; st != nil {
		// Before the send: once published, the consumer may recycle the
		// batch's backing array concurrently.
		st.NoteFlush(b, max)
	}
	s.ch <- b
	return nil
}

// Recv returns the next tuple. ok is false when the stream has ended.
// Buffered tuples and end-of-stream are preferred over reporting
// cancellation (see Send); ctx.Err() is returned only when the stream is
// empty and still open.
func (s *Stream) Recv(ctx context.Context) (t core.Tuple, ok bool, err error) {
	if s.rqi < len(s.rq) {
		t = s.rq[s.rqi]
		s.rq[s.rqi] = nil
		s.rqi++
		if s.rqi == len(s.rq) {
			s.recycle(s.rq)
			s.rq, s.rqi = nil, 0
		}
		return t, true, nil
	}
	b, ok, err := s.recvBatch(ctx)
	if !ok || err != nil {
		return nil, false, err
	}
	t, b[0] = b[0], nil
	if len(b) == 1 {
		s.recycle(b)
	} else {
		s.rq, s.rqi = b, 1
	}
	return t, true, nil
}

// RecvBatch returns the next batch of tuples — the remainder of a batch
// partially drained by Recv, or the next published batch. ok is false when
// the stream has ended. Cancellation semantics match Recv. The returned
// batch is only valid until the consumer's next Recv/RecvBatch/CanRecv
// call, which reclaims its backing array for reuse; operator loops fully
// process one batch before requesting the next, so they never observe the
// reuse.
func (s *Stream) RecvBatch(ctx context.Context) (b Batch, ok bool, err error) {
	if s.rqi < len(s.rq) {
		b = s.rq[s.rqi:]
		s.lent, s.rq, s.rqi = s.rq, nil, 0
		return b, true, nil
	}
	b, ok, err = s.recvBatch(ctx)
	if ok {
		s.lent = b
	}
	return b, ok, err
}

// recvBatch dequeues the next published batch, blocking while the stream is
// empty and open. It first reclaims the batch lent out by the previous
// RecvBatch, which the operator loop has finished with by now.
func (s *Stream) recvBatch(ctx context.Context) (b Batch, ok bool, err error) {
	if s.lent != nil {
		s.recycle(s.lent)
		s.lent = nil
	}
	if s.ended {
		return nil, false, nil
	}
	select {
	case b, ok = <-s.ch:
		if !ok {
			s.ended = true
			return nil, false, nil
		}
		s.release(b)
		return b, true, nil
	default:
	}
	select {
	case b, ok = <-s.ch:
		if !ok {
			s.ended = true
			return nil, false, nil
		}
		s.release(b)
		return b, true, nil
	case <-ctx.Done():
		return nil, false, fmt.Errorf("stream %q: recv: %w", s.name, ctx.Err())
	}
}

// release returns a dequeued batch's tuple budget to the producer and notes
// the dequeue for telemetry. Called at every dequeue point — the batch has
// left the channel, so its tuples no longer occupy buffering capacity even
// though the consumer is still draining them.
func (s *Stream) release(b Batch) {
	s.buffered.Add(-int64(len(b)))
	select {
	case s.space <- struct{}{}:
	default:
	}
	if st := s.telem; st != nil {
		st.NoteRecv(b)
	}
}

// recycle clears a drained batch and offers its backing array back to the
// producer. Slots at or past len are nil by construction (fresh arrays are
// zeroed and recycles clear the used prefix), so clearing the used prefix
// keeps the whole array reference-free.
func (s *Stream) recycle(b Batch) {
	if cap(b) == 0 {
		return
	}
	for i := range b {
		b[i] = nil
	}
	select {
	case s.free <- b[:0]:
	default:
	}
}

// CanRecv reports whether Recv (or RecvBatch) would return without blocking
// on the channel: a batch is being drained, a published batch is waiting, or
// the stream has ended. Multi-input merges use it to flush their own output
// before a refill that would block.
func (s *Stream) CanRecv() bool {
	if s.rqi < len(s.rq) || s.ended {
		return true
	}
	if s.lent != nil {
		s.recycle(s.lent)
		s.lent = nil
	}
	select {
	case b, ok := <-s.ch:
		if !ok {
			s.ended = true
			return true
		}
		s.release(b)
		s.rq, s.rqi = b, 0
		return true
	default:
		return false
	}
}

// CloseSend flushes the pending batch and signals end-of-stream to the
// consumer (flush-on-close). Only the producer may call it, exactly once.
// If the query is cancelled while the stream is full, the pending batch is
// dropped — the consumer is aborting anyway — so close never blocks past
// cancellation.
func (s *Stream) CloseSend(ctx context.Context) {
	_ = s.Flush(ctx)
	close(s.ch)
}

// Close signals end-of-stream without flushing; callers that batch (batch
// size > 1) must use CloseSend. It remains for producers that bypass Send,
// e.g. tests pre-filling a stream.
func (s *Stream) Close() { close(s.ch) }

// Operator is a runnable query vertex. Run consumes the operator's input
// streams until they end (or ctx is cancelled), produces output tuples, and
// closes every output stream before returning. Run is called exactly once,
// on its own goroutine.
type Operator interface {
	Name() string
	Run(ctx context.Context) error
}

// closeAll flush-closes every stream in outs; operators defer it so
// downstream consumers always observe end-of-stream, even on error paths.
func closeAll(ctx context.Context, outs []*Stream) {
	for _, s := range outs {
		s.CloseSend(ctx)
	}
}
