// Package ops implements the standard data-streaming operators of the paper's
// §2 — Source, Sink, Map, Filter, Multiplex, Union, Aggregate and Join — on
// top of bounded Go channels, with deterministic timestamp-sorted merging of
// multi-input operators. Provenance side effects are delegated to a
// core.Instrumenter so the same operator code serves the NP, GL and BL
// evaluation modes.
package ops

import (
	"context"
	"fmt"

	"genealog/internal/core"
)

// DefaultStreamCapacity is the channel capacity used when a stream is created
// without an explicit capacity. Streams are the inter-operator queues of an
// SPE instance (paper §2); they need slack for pipelining, unlike the
// signalling channels for which idiomatic Go prefers capacity one or none.
const DefaultStreamCapacity = 256

// Stream is a named, bounded, timestamp-sorted sequence of tuples connecting
// exactly one producer operator to exactly one consumer operator. The
// producer closes the stream to signal end-of-stream.
type Stream struct {
	name string
	ch   chan core.Tuple
}

// NewStream returns a stream with the given name and capacity (capacity <= 0
// selects DefaultStreamCapacity).
func NewStream(name string, capacity int) *Stream {
	if capacity <= 0 {
		capacity = DefaultStreamCapacity
	}
	return &Stream{name: name, ch: make(chan core.Tuple, capacity)}
}

// Name returns the stream's name.
func (s *Stream) Name() string { return s.name }

// Send delivers t downstream, blocking while the stream is full. It fails
// with ctx.Err() only if the query is cancelled while the stream is full:
// like Recv it prefers progress over reporting cancellation, so after a
// cancellation operators drain deterministically — a shard worker that can
// still move tuples does so until a peer that noticed the cancellation
// closes or stops consuming its stream — instead of racing ctx.Done against
// a ready channel.
func (s *Stream) Send(ctx context.Context, t core.Tuple) error {
	select {
	case s.ch <- t:
		return nil
	default:
	}
	select {
	case s.ch <- t:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("stream %q: send: %w", s.name, ctx.Err())
	}
}

// Recv returns the next tuple. ok is false when the stream has ended.
// Buffered tuples and end-of-stream are preferred over reporting
// cancellation (see Send); ctx.Err() is returned only when the stream is
// empty and still open.
func (s *Stream) Recv(ctx context.Context) (t core.Tuple, ok bool, err error) {
	select {
	case t, ok = <-s.ch:
		return t, ok, nil
	default:
	}
	select {
	case t, ok = <-s.ch:
		return t, ok, nil
	case <-ctx.Done():
		return nil, false, fmt.Errorf("stream %q: recv: %w", s.name, ctx.Err())
	}
}

// Close signals end-of-stream to the consumer. Only the producer may call it,
// exactly once.
func (s *Stream) Close() { close(s.ch) }

// Operator is a runnable query vertex. Run consumes the operator's input
// streams until they end (or ctx is cancelled), produces output tuples, and
// closes every output stream before returning. Run is called exactly once,
// on its own goroutine.
type Operator interface {
	Name() string
	Run(ctx context.Context) error
}

// closeAll closes every stream in outs; operators defer it so downstream
// consumers always observe end-of-stream, even on error paths.
func closeAll(outs []*Stream) {
	for _, s := range outs {
		s.Close()
	}
}
