package ops

import (
	"context"
	"fmt"
	"time"

	"genealog/internal/core"
)

// SinkFunc consumes a sink tuple. Returning an error aborts the query.
type SinkFunc func(core.Tuple) error

// Sink receives the sink tuples produced by a query (paper §2) and reports
// per-tuple latency — emission instant minus the tuple's stimulus, i.e. the
// wall-clock arrival of the most recent contributing source tuple, which is
// the paper's latency definition (§7).
type Sink struct {
	name string
	in   *Stream
	fn   SinkFunc

	// Now supplies the wall clock for latency; defaults to time.Now().UnixNano.
	Now func() int64
	// OnLatency, when non-nil, observes each sink tuple's latency in
	// nanoseconds (metrics hook).
	OnLatency func(t core.Tuple, latencyNs int64)
}

var _ Operator = (*Sink)(nil)

// NewSink returns a Sink named name consuming in with fn. A nil fn discards
// tuples (useful for throughput measurements).
func NewSink(name string, in *Stream, fn SinkFunc) *Sink {
	if fn == nil {
		fn = func(core.Tuple) error { return nil }
	}
	return &Sink{name: name, in: in, fn: fn}
}

// Name implements Operator.
func (s *Sink) Name() string { return s.name }

// Run implements Operator.
func (s *Sink) Run(ctx context.Context) error {
	now := s.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	for {
		batch, ok, err := s.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("sink %q: %w", s.name, err)
		}
		if !ok {
			return nil
		}
		for _, t := range batch {
			if core.IsHeartbeat(t) {
				continue // watermark markers never reach the sink function
			}
			if s.OnLatency != nil {
				if m := core.MetaOf(t); m != nil && m.Stimulus() > 0 {
					s.OnLatency(t, now()-m.Stimulus())
				}
			}
			if err := s.fn(t); err != nil {
				return fmt.Errorf("sink %q: %w", s.name, err)
			}
		}
	}
}
